/**
 * @file
 * Regenerates paper Figure 7: whole-binary instruction-access heat maps
 * for the Clang benchmark — baseline, Propeller-optimized and
 * BOLT-optimized.
 *
 * Expected shape: the baseline's accesses scatter across the address
 * space; Propeller's concentrate in a tight band at the bottom (hot text
 * packed first); BOLT's form a tight band at a *higher* offset (its new
 * text segment sits past the retained original text).
 */

#include "common.h"

using namespace propeller;

namespace {

void
showHeatMap(const char *label, const linker::Executable &exe,
            const workload::WorkloadConfig &cfg)
{
    sim::MachineOptions opts = workload::evalOptions(cfg);
    opts.recordHeatMap = true;
    opts.heatAddrBuckets = 28;
    opts.heatTimeBuckets = 72;
    sim::RunResult r = sim::run(exe, opts);
    std::printf("\n(%s)  text span %s, %llu cycles\n", label,
                formatBytes(exe.text.size()).c_str(),
                static_cast<unsigned long long>(r.counters.cycles()));
    std::printf("%s", renderHeatMap(r.heatMap, "address", "time").c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 7", "Instruction access heat maps (Clang)",
        "baseline scattered; Propeller/BOLT tightly banded; BOLT's band "
        "at a higher offset (new segment)");

    const workload::WorkloadConfig &cfg = workload::configByName("clang");
    buildsys::Workflow &wf = bench::workflowFor("clang");

    showHeatMap("a: Baseline PGO+ThinLTO", wf.baseline(), cfg);
    showHeatMap("b: + Propeller", wf.propellerBinary(), cfg);
    linker::Executable bo = wf.boltBinary();
    showHeatMap("c: + BOLT", bo, cfg);
    return 0;
}
