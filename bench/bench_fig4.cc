/**
 * @file
 * Regenerates paper Figure 4: peak memory during profile conversion and
 * whole-program analysis — Propeller's Phase 3 vs. BOLT's perf2bolt — for
 * the warehouse-scale/open-source workloads (left) and SPEC2017 (right).
 *
 * Expected shape: Propeller stays within the per-action limit everywhere
 * and scales with *hot* code; BOLT scales with total binary size, drawing
 * level only on the smallest SPEC benchmarks.
 */

#include "common.h"

using namespace propeller;

namespace {

void
section(const std::vector<workload::WorkloadConfig> &configs,
        const char *label)
{
    std::printf("\n-- %s --\n", label);
    Table table({"Benchmark", "Propeller Phase 3", "BOLT perf2bolt",
                 "BOLT (selective)", "BOLT / Propeller", "Limit OK?"});
    BarChart chart(44);
    for (const auto &cfg : configs) {
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        wf.wpa();
        bolt::BoltStats bolt_stats;
        bolt::convertProfile(wf.boltInputBinary(), wf.profile(),
                             &bolt_stats);
        bolt::BoltStats lite_stats;
        bolt::convertProfile(wf.boltInputBinary(), wf.profile(),
                             &lite_stats, nullptr, /*selective=*/true);

        uint64_t prop = wf.report("phase3.wpa").peakActionMemory;
        uint64_t bolt_mem = bolt_stats.convertPeakMemory;
        bool ok = prop <= wf.limits().ramPerAction;
        table.addRow({cfg.name, formatBytes(prop), formatBytes(bolt_mem),
                      formatBytes(lite_stats.convertPeakMemory),
                      formatFixed(static_cast<double>(bolt_mem) /
                                      static_cast<double>(prop),
                                  1) + "x",
                      ok ? "yes" : "NO"});
        chart.addBar(cfg.name + " [prop]", static_cast<double>(prop),
                     formatBytes(prop));
        chart.addBar(cfg.name + " [bolt]", static_cast<double>(bolt_mem),
                     formatBytes(bolt_mem));
    }
    std::printf("%s%s", table.render().c_str(), chart.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 4", "Peak memory: profile conversion + WPA",
        "Propeller <3GB on all workloads (within build-system limits); "
        "BOLT up to 14-30x more on large binaries, on par for tiny SPEC");

    section(workload::appConfigs(), "warehouse-scale + open source (L)");
    section(workload::specConfigs(), "SPEC2017 (R)");

    std::printf("\nNotes: memory is modelled (deterministic footprints), "
                "scaled with the 1/100\nworkloads; the per-action limit is "
                "the scaled 12 GB analogue.  'BOLT (selective)'\nis the "
                "Lightning-BOLT selective-processing improvement the paper "
                "(5.1) suggests\nwould close part of the gap — implemented "
                "here for completeness.\n");
    return 0;
}
