/**
 * @file
 * Static-verifier gate: the mutation-tested oracle for the relink
 * pipeline (paper section 2.4 — Propeller's safety argument over binary
 * rewriting, made checkable per binary).
 *
 * Two gates, both required:
 *
 *  - **No false positives.**  A clean end-to-end build must verify with
 *    zero diagnostics (errors, warnings *and* notes) at 1 and at 8
 *    codegen threads, and the verification twin's text must be
 *    byte-identical to the shipped PO binary.
 *
 *  - **No false negatives.**  Every seeded defect class (src/analysis
 *    mutate.h: corrupted branches, addr-map skews, dropped unwind
 *    coverage, bad directives, flow anomalies, ...) injected into the
 *    clean products at several seeds must be caught by exactly the
 *    check id paired with the class — 100% detection, every class
 *    exercised.
 *
 * Emits BENCH_verify.json (per-class detection matrix, for CI and
 * EXPERIMENTS.md) and exits nonzero if any gate fails.
 *
 * Usage: bench_verify [output.json]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/mutate.h"
#include "analysis/verifier.h"
#include "build/workflow.h"
#include "common.h"
#include "propeller/addr_map_index.h"
#include "propeller/profile_mapper.h"

using namespace propeller;

namespace {

/** bigtable: mid-size app workload *with* startup integrity checks, so
 *  every defect class (including IntegritySkew) has eligible sites. */
const char *kWorkload = "bigtable";

constexpr uint64_t kSeeds = 3;

struct ClassResult
{
    analysis::DefectClass cls;
    uint32_t injected = 0;
    uint32_t detected = 0;
    std::vector<std::string> sites;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_verify.json";
    bench::printHeader(
        "VERIFY", "whole-binary static verification gate",
        "relinking from compiler metadata is safe; the verifier proves "
        "it per binary (section 2.4)");

    // ---- Gate 1: clean builds verify clean, at 1 and 8 threads ------
    bool clean_gate = true;
    std::printf("\nclean-build verification (must be zero diagnostics):\n");
    std::printf("%8s %6s %9s %9s %12s %7s %7s %6s\n", "workload", "jobs",
                "functions", "ranges", "instructions", "errors",
                "warnings", "notes");
    for (unsigned jobs : {1u, 8u}) {
        workload::WorkloadConfig cfg = workload::configByName(kWorkload);
        cfg.jobs = jobs;
        buildsys::Workflow wf(cfg);
        const analysis::VerifyReport &rep = wf.verifyReport();
        bool ok = rep.clean() && rep.engine.noteCount() == 0 &&
                  wf.verifiedBinary().text == wf.propellerBinary().text;
        clean_gate = clean_gate && ok;
        std::printf("%8s %6u %9u %9u %12llu %7u %7u %6u%s\n", kWorkload,
                    jobs, rep.functionsChecked, rep.rangesDecoded,
                    static_cast<unsigned long long>(
                        rep.instructionsDecoded),
                    rep.engine.errorCount(), rep.engine.warningCount(),
                    rep.engine.noteCount(), ok ? "" : "  FALSE POSITIVE");
        if (!ok)
            std::printf("%s", rep.engine.renderText().c_str());
    }

    // ---- Gate 2: every seeded defect class is detected --------------
    buildsys::Workflow &wf = bench::workflowFor(kWorkload);
    const analysis::VerifyReport &baseline = wf.verifyReport();
    if (!baseline.clean())
        clean_gate = false;
    const linker::Executable &twin = wf.verifiedBinary();
    profile::AggregatedProfile agg = profile::aggregate(wf.profile());
    core::AddrMapIndex index(wf.metadataBinary());

    std::printf("\nmutation matrix (%llu seeds per class, detection "
                "must be 100%%):\n",
                static_cast<unsigned long long>(kSeeds));
    std::printf("%-24s %6s %9s %9s  %s\n", "defect class", "check",
                "injected", "detected", "verdict");

    std::vector<ClassResult> matrix;
    bool detect_gate = true;
    for (size_t c = 0; c < analysis::kDefectClassCount; ++c) {
        ClassResult res;
        res.cls = analysis::allDefectClasses()[c];
        analysis::CheckId want = analysis::expectedCheck(res.cls);
        for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
            linker::Executable exe = twin;
            core::CcProfile cc = wf.wpa().ccProf;
            core::LdProfile ld = wf.wpa().ldProf;
            core::WholeProgramDcfg dcfg = core::buildDcfg(agg, index);
            analysis::MutationTarget target{&exe, &cc, &ld, &dcfg};
            std::string desc =
                analysis::injectDefect(res.cls, seed, target);
            if (desc.empty())
                continue; // No eligible site: not an injection.
            ++res.injected;
            res.sites.push_back(desc);

            analysis::VerifyOptions opts;
            opts.expectedOrder = &ld;
            analysis::VerifyReport rep =
                analysis::verifyExecutable(exe, opts);
            rep.merge(analysis::lintDirectives(cc, ld,
                                               wf.metadataBinary(),
                                               opts));
            rep.merge(analysis::lintProfileFlow(dcfg, opts));
            for (const auto &d : rep.engine.diagnostics()) {
                if (d.id == want) {
                    ++res.detected;
                    break;
                }
            }
        }
        // Every class must both find sites and catch every injection.
        bool ok = res.injected == kSeeds && res.detected == res.injected;
        detect_gate = detect_gate && ok;
        std::printf("%-24s %6s %9u %9u  %s\n",
                    analysis::defectName(res.cls),
                    analysis::checkName(want), res.injected, res.detected,
                    ok ? "pass" : "FAIL");
        matrix.push_back(std::move(res));
    }

    std::printf("\ngates: clean builds zero-diagnostic %s; mutation "
                "detection 100%% over %zu classes %s\n",
                clean_gate ? "PASS" : "FAIL", matrix.size(),
                detect_gate ? "PASS" : "FAIL");

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out,
                 "{\n  \"workload\": \"%s\",\n  \"seeds\": %llu,\n"
                 "  \"clean_gate\": %s,\n  \"detect_gate\": %s,\n"
                 "  \"classes\": [\n",
                 kWorkload, static_cast<unsigned long long>(kSeeds),
                 clean_gate ? "true" : "false",
                 detect_gate ? "true" : "false");
    for (size_t i = 0; i < matrix.size(); ++i) {
        const ClassResult &res = matrix[i];
        std::fprintf(out,
                     "    {\"class\": \"%s\", \"check\": \"%s\", "
                     "\"injected\": %u, \"detected\": %u}%s\n",
                     analysis::defectName(res.cls),
                     analysis::checkName(analysis::expectedCheck(res.cls)),
                     res.injected, res.detected,
                     i + 1 < matrix.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return (clean_gate && detect_gate) ? 0 : 1;
}
