/**
 * @file
 * Ablation for paper section 4.6 — low-overhead function splitting:
 *
 *  - block reordering without splitting;
 *  - splitting without reordering;
 *  - both (the Propeller default);
 *  - both plus a second profiling round on the optimized binary (the
 *    extra ~1% the paper reports for Clang).
 *
 * Expected shape: splitting drives large iTLB/i-cache reductions (the
 * paper reports up to -40% iTLB and -5% icache for splitting on Clang),
 * the combination wins, and re-profiling adds a little more.
 */

#include <set>

#include "codegen/codegen.h"
#include "linker/linker.h"

#include "common.h"

using namespace propeller;

namespace {

/**
 * Blocks the *instrumented PGO profile* would call cold: reachable from
 * the entry only through edges its training run never took (bias == 0).
 * The stale profile misses the rarely-but-occasionally executed paths
 * that hardware samples from production load expose — the paper's
 * section 2.4 observation.
 */
std::set<uint32_t>
staticPgoColdBlocks(const ir::Function &fn)
{
    std::set<uint32_t> warm;
    std::vector<uint32_t> stack = {fn.entry().id};
    while (!stack.empty()) {
        uint32_t id = stack.back();
        stack.pop_back();
        if (!warm.insert(id).second)
            continue;
        const ir::BasicBlock *bb = fn.findBlock(id);
        const ir::Inst &term = bb->terminator();
        switch (term.kind) {
          case ir::InstKind::CondBr:
            if (term.bias > 0 || term.periodic)
                stack.push_back(term.trueTarget);
            if (term.periodic || term.bias < 255)
                stack.push_back(term.falseTarget);
            break;
          case ir::InstKind::Br:
            stack.push_back(term.target);
            break;
          default:
            break;
        }
    }
    std::set<uint32_t> cold;
    for (const auto &bb : fn.blocks) {
        if (!warm.count(bb->id))
            cold.insert(bb->id);
    }
    return cold;
}

/**
 * Rewrite sample-driven cluster specs so that only the blocks the PGO
 * profile knew to be cold are split out; sample-cold-but-PGO-warm blocks
 * return to the primary cluster.
 */
codegen::ClusterMap
pgoDrivenSpecs(const ir::Program &program, const codegen::ClusterMap &wpa)
{
    codegen::ClusterMap out;
    for (const auto &[fn_name, spec] : wpa) {
        const ir::Function *fn = program.findFunction(fn_name);
        std::set<uint32_t> pgo_cold = staticPgoColdBlocks(*fn);
        codegen::ClusterSpec rewritten;
        rewritten.clusters.push_back(spec.clusters[0]);
        std::vector<uint32_t> cold;
        if (spec.coldIndex >= 0) {
            for (uint32_t id : spec.clusters[spec.coldIndex]) {
                if (pgo_cold.count(id))
                    cold.push_back(id);
                else
                    rewritten.clusters[0].push_back(id);
            }
        }
        for (size_t c = 1; c < spec.clusters.size(); ++c) {
            if (static_cast<int>(c) == spec.coldIndex)
                continue;
            rewritten.clusters.push_back(spec.clusters[c]);
        }
        if (!cold.empty()) {
            rewritten.coldIndex =
                static_cast<int>(rewritten.clusters.size());
            rewritten.clusters.push_back(std::move(cold));
        }
        out.emplace(fn_name, std::move(rewritten));
    }
    return out;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Section 4.6", "Function splitting ablation (Clang)",
        "splitting cuts iTLB misses up to 40% and icache misses ~5%; an "
        "extra profiling round adds ~1%");

    const workload::WorkloadConfig &cfg = workload::configByName("clang");
    buildsys::Workflow &wf = bench::workflowFor("clang");
    sim::RunResult base = bench::evalRun(wf.baseline(), cfg);

    Table table({"Configuration", "Perf", "iTLB (T1)", "L1i (I1)",
                 "Taken (B2)"});
    auto red = [](double r) { return formatFixed(-100.0 * r, 0) + "%"; };
    auto addRow = [&](const char *label, const sim::RunResult &r) {
        table.addRow({label, formatPercentDelta(bench::improvement(base, r)),
                      red(bench::reduction(base.counters.itlbMisses,
                                           r.counters.itlbMisses)),
                      red(bench::reduction(base.counters.l1iMisses,
                                           r.counters.l1iMisses)),
                      red(bench::reduction(base.counters.takenBranches,
                                           r.counters.takenBranches))});
    };

    core::LayoutOptions opts;
    opts.splitFunctions = false;
    opts.reorderBlocks = true;
    addRow("reorder only",
           bench::evalRun(wf.propellerBinaryWith(opts), cfg));

    opts.splitFunctions = true;
    opts.reorderBlocks = false;
    addRow("split only",
           bench::evalRun(wf.propellerBinaryWith(opts), cfg));

    // Section 2.4: splitting driven by the *stale instrumented profile*
    // instead of hardware samples (cold = never-executed-in-training).
    {
        const core::WpaResult &wpa = wf.wpa();
        codegen::ClusterMap pgo_specs =
            pgoDrivenSpecs(wf.program(), wpa.ccProf.clusters);
        codegen::Options copts;
        copts.bbSections = codegen::BbSectionsMode::Clusters;
        copts.clusters = &pgo_specs;
        auto objects = codegen::compileProgram(wf.program(), copts);
        linker::Options lopts;
        lopts.entrySymbol = "main";
        lopts.symbolOrder = wpa.ldProf.symbolOrder;
        addRow("split from stale PGO profile",
               bench::evalRun(linker::link(objects, lopts), cfg));
    }

    addRow("reorder + split (Propeller)",
           bench::evalRun(wf.propellerBinary(), cfg));

    addRow("+ second profiling round",
           bench::evalRun(wf.iterativePropellerBinary(), cfg));

    std::printf("%s", table.render().c_str());
    std::printf("\nNotes: 'split only' isolates the paper's machine-"
                "function-splitting use case;\n'split from stale PGO "
                "profile' reproduces section 2.4 (sample-driven cold\n"
                "detection beats PGO-profile-driven detection); the second "
                "round profiles the\noptimized binary and relinks, as in "
                "section 4.6's extra hardware-profiling round.\n");
    return 0;
}
