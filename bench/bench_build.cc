/**
 * @file
 * Build-system bench: phase makespans, cold-object cache effectiveness and
 * the wall-clock speedup of the parallel per-function layout loop.  Emits
 * BENCH_build.json so CI tracks the perf trajectory over time.
 *
 * Usage: bench_build [output.json]
 */

#include <algorithm>
#include <chrono>
#include <vector>

#include "common.h"
#include "propeller/propeller.h"
#include "support/thread_pool.h"

using namespace propeller;

namespace {

/** Median wall-clock seconds of the WPA layout pass at @p threads. */
double
timeLayout(buildsys::Workflow &wf, unsigned threads, int reps)
{
    std::vector<double> secs;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        core::WpaResult wpa = core::runWholeProgramAnalysis(
            wf.metadataBinary(), wf.profile(), {}, threads);
        auto t1 = std::chrono::steady_clock::now();
        secs.push_back(std::chrono::duration<double>(t1 - t0).count());
        // Keep the result alive past the timestamp.
        if (wpa.hotFunctions.empty())
            std::printf("(no hot functions?)\n");
    }
    std::sort(secs.begin(), secs.end());
    return secs[secs.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_build.json";
    bench::printHeader(
        "BENCH build", "relink workflow cost and parallel layout",
        "cold objects come from the content cache, so the Phase 4 relink "
        "is far cheaper than a full build; WPA is per-function and "
        "parallelizes");

    buildsys::Workflow &wf = bench::workflowFor("clang");
    wf.baseline();
    wf.propellerBinary();

    std::printf("\n%-16s %12s %9s %9s\n", "phase", "makespan", "actions",
                "cached");
    static const char *kPhases[] = {
        "phase1",       "phase2.codegen", "baseline.link",
        "phase3.collect", "phase3.wpa",   "phase4.codegen",
        "phase4.link",
    };
    for (const char *phase : kPhases) {
        const buildsys::PhaseReport &r = wf.report(phase);
        std::printf("%-16s %9.1f min %9u %9u\n", phase,
                    r.makespanMinutes(), r.actions, r.cacheHits);
    }

    const buildsys::CacheStats &cache = wf.cacheStats();
    std::printf("\nartifact cache: %.0f%% hit rate (%llu hits / %llu "
                "lookups), %s stored\n",
                cache.hitRate() * 100.0,
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.hits + cache.misses),
                formatBytes(cache.storedBytes).c_str());

    const int kReps = 5;
    double t1 = timeLayout(wf, 1, kReps);
    double t4 = timeLayout(wf, 4, kReps);
    double speedup = t4 > 0.0 ? t1 / t4 : 0.0;
    std::printf("\nlayout wall clock (median of %d): %.1f ms at 1 thread, "
                "%.1f ms at 4 threads — %.2fx\n",
                kReps, t1 * 1e3, t4 * 1e3, speedup);
    std::printf("(hardware threads available: %u; speedup needs >= 4)\n",
                resolveThreadCount(0));

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"workload\": \"clang\",\n");
    std::fprintf(out, "  \"phase_makespan_sec\": {\n");
    for (size_t i = 0; i < std::size(kPhases); ++i) {
        std::fprintf(out, "    \"%s\": %.3f%s\n", kPhases[i],
                     wf.report(kPhases[i]).makespanSec,
                     i + 1 < std::size(kPhases) ? "," : "");
    }
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"cache_hit_rate\": %.4f,\n", cache.hitRate());
    std::fprintf(out, "  \"cache_stored_bytes\": %llu,\n",
                 static_cast<unsigned long long>(cache.storedBytes));
    std::fprintf(out, "  \"layout_wall_sec_1_thread\": %.6f,\n", t1);
    std::fprintf(out, "  \"layout_wall_sec_4_threads\": %.6f,\n", t4);
    std::fprintf(out, "  \"layout_speedup_4_threads\": %.3f,\n", speedup);
    std::fprintf(out, "  \"hardware_threads\": %u\n",
                 resolveThreadCount(0));
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
    return 0;
}
