/**
 * @file
 * Regenerates paper Figure 8 / Table 4: hardware performance counters of
 * the Propeller- and BOLT-optimized binaries normalized to the baseline,
 * for Search (huge pages) and Clang.
 *
 * Events (Table 4):
 *   I1 frontend_retired.l1i_miss        L1 i-cache misses causing stalls
 *   I2 l2_rqsts.code_rd_miss            L2 code read misses
 *   I3 (i-fetch stall cycles)           stall cycles from code fetch
 *   T1 icache_64b.iftag_miss            iTLB misses
 *   T2 frontend_retired.itlb_miss       iTLB misses causing stalls (walks)
 *   B1 baclears.any                     front-end resteers
 *   B2 br_inst_retired.near_taken       retired taken branches
 *
 * Expected shape: I1/I2 down up to 30-40%, T1 down ~23-27%, T2 down up to
 * ~85% on Search (huge pages), B1 down ~22-30%, B2 down ~15-20%.
 */

#include "common.h"

using namespace propeller;

namespace {

struct Events
{
    uint64_t values[7];

    static Events
    of(const sim::Counters &c)
    {
        return {{c.l1iMisses, c.l2CodeMisses, c.fetchStallQC / 4,
                 c.itlbMisses, c.itlbStallMisses, c.baclears,
                 c.takenBranches}};
    }
};

const char *kLabels[7] = {"I1", "I2", "I3", "T1", "T2", "B1", "B2"};

void
section(const std::string &name)
{
    const workload::WorkloadConfig &cfg = workload::configByName(name);
    buildsys::Workflow &wf = bench::workflowFor(name);
    sim::RunResult base = bench::evalRun(wf.baseline(), cfg);
    sim::RunResult prop = bench::evalRun(wf.propellerBinary(), cfg);
    bolt::BoltOptions bopts;
    bopts.lite = false;
    linker::Executable bo = wf.boltBinary(bopts);
    sim::RunResult bolted = bench::evalRun(bo, cfg);

    Events eb = Events::of(base.counters);
    Events ep = Events::of(prop.counters);
    Events eo = Events::of(bolted.counters);

    std::printf("\n-- %s (%s; lower is better, %% of baseline) --\n",
                name.c_str(), cfg.hugePages ? "2M huge pages" : "4K pages");
    Table table({"Event", "Propeller", "BOLT"});
    BarChart chart(40);
    for (int i = 0; i < 7; ++i) {
        if (eb.values[i] < 100) {
            // At 1/100 workload scale some events all but vanish (e.g.
            // two 2 MiB iTLB entries cover the whole scaled Search
            // binary); a percentage of a near-zero baseline is noise.
            table.addRow({kLabels[i], "n/a (<100 events)", "n/a"});
            continue;
        }
        auto norm = [&](const Events &e) {
            return 100.0 * static_cast<double>(e.values[i]) /
                   static_cast<double>(eb.values[i]);
        };
        if (!bolted.startupOk) {
            table.addRow({kLabels[i],
                          formatFixed(norm(ep), 1) + "%", "Crash"});
            continue;
        }
        table.addRow({kLabels[i], formatFixed(norm(ep), 1) + "%",
                      formatFixed(norm(eo), 1) + "%"});
        chart.addBar(std::string(kLabels[i]) + " prop", norm(ep),
                     formatFixed(norm(ep), 0) + "%");
        chart.addBar(std::string(kLabels[i]) + " bolt", norm(eo),
                     formatFixed(norm(eo), 0) + "%");
    }
    std::printf("%s%s", table.render().c_str(), chart.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 8 / Table 4", "Performance counters vs baseline",
        "i-cache misses -30-40%, iTLB stalls up to -85% with huge pages "
        "(Search), resteers -22-30%, taken branches -15-20%");
    section("search");
    section("clang");
    return 0;
}
