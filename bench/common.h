#ifndef PROPELLER_BENCH_COMMON_H
#define PROPELLER_BENCH_COMMON_H

/**
 * @file
 * Shared bench-harness helpers.
 *
 * Every bench binary regenerates one table or figure of the paper.  The
 * conventions:
 *  - print a header naming the experiment and the paper's headline claim;
 *  - print paper-reported values next to measured ones where available;
 *  - absolute values are simulator-scale; the *shape* (who wins, rough
 *    factors, crossovers) is the reproduction target (see EXPERIMENTS.md).
 */

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "build/workflow.h"
#include "sim/machine.h"
#include "support/table.h"
#include "support/units.h"
#include "workload/workload.h"

namespace propeller::bench {

/** Print the standard experiment banner. */
inline void
printHeader(const char *id, const char *title, const char *claim)
{
    std::printf("================================================================================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("Paper claim: %s\n", claim);
    std::printf("================================================================================\n");
}

/** Process-lifetime workflow cache (workflows are expensive to build). */
inline buildsys::Workflow &
workflowFor(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<buildsys::Workflow>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<buildsys::Workflow>(
                                    workload::configByName(name)))
                 .first;
    }
    return *it->second;
}

/** Evaluation run of a binary under a workload's standard options. */
inline sim::RunResult
evalRun(const linker::Executable &exe, const workload::WorkloadConfig &cfg)
{
    return sim::run(exe, workload::evalOptions(cfg));
}

/** Cycles-based improvement of @p opt over @p base, as a fraction. */
inline double
improvement(const sim::RunResult &base, const sim::RunResult &opt)
{
    return static_cast<double>(base.counters.cycles()) /
               static_cast<double>(opt.counters.cycles()) -
           1.0;
}

/** Reduction of a counter, as a fraction (positive = fewer events). */
inline double
reduction(uint64_t base, uint64_t opt)
{
    if (base == 0)
        return 0.0;
    return 1.0 - static_cast<double>(opt) / static_cast<double>(base);
}

} // namespace propeller::bench

#endif // PROPELLER_BENCH_COMMON_H
