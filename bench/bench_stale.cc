/**
 * @file
 * Stale-profile tolerance gate: profile last week's binary A, optimize
 * this week's drifted binary B through src/stale, and measure how much of
 * the fresh-profile layout quality survives.
 *
 * For each drift rate the harness generates the same program twice,
 * mutates one copy with workload::applyDrift, profiles the pristine build
 * and runs both pipelines:
 *
 *   fresh:  profile(B) -> WPA -> layout        (ground truth)
 *   stale:  profile(A) -> match onto B -> infer -> layout
 *
 * Layout quality is the Ext-TSP score of each layout evaluated on the
 * *fresh* DCFG of B; retention is the stale layout's share of the fresh
 * layout's score improvement over the original (address-order) layout.
 *
 * Emits BENCH_stale.json and exits nonzero if a gate fails:
 *  - at 0%% drift the match must be perfect (every function matched by
 *    function hash) and cc_prof/ld_prof byte-identical to the fresh path;
 *  - at 10%% drift retention must stay >= 0.90.
 *
 * Usage: bench_stale [output.json]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/codegen.h"
#include "common.h"
#include "linker/linker.h"
#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/ext_tsp.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"
#include "propeller/propeller.h"
#include "sim/machine.h"
#include "stale/stale.h"
#include "workload/workload.h"

using namespace propeller;
using namespace propeller::core;

namespace {

/** Retention floor at 10% drift (the gate the ISSUE fixes). */
constexpr double kRetentionFloor = 0.90;

workload::WorkloadConfig
staleConfig()
{
    workload::WorkloadConfig cfg;
    cfg.name = "staleapp";
    cfg.seed = 47;
    cfg.modules = 12;
    cfg.functions = 80;
    cfg.hotFunctions = 26;
    cfg.coldObjectFraction = 0.6;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 26;
    cfg.coldPathDensity = 0.35;
    cfg.pgoStaleness = 0.4;
    cfg.handAsmFunctions = 1;
    cfg.multiModalFunctions = 2;
    cfg.evalInstructions = 600'000;
    cfg.profileInstructions = 600'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

linker::Executable
buildMetadata(const ir::Program &program)
{
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    linker::Options lopts;
    lopts.entrySymbol = program.entryFunction;
    return linker::link(codegen::compileProgram(program, copts), lopts);
}

/**
 * Ext-TSP score of @p clusters evaluated over @p dcfg (nullptr scores the
 * original address-order layout).  Blocks the directives do not mention
 * are appended after the directed ones.
 */
double
scoreLayout(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
            const codegen::ClusterMap *clusters)
{
    double total = 0.0;
    for (const auto &fn : dcfg.functions) {
        std::vector<LayoutNode> nodes(fn.nodes.size());
        std::unordered_map<uint32_t, uint32_t> node_of;
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            nodes[i] = {std::max<uint64_t>(fn.nodes[i].size, 1),
                        fn.nodes[i].freq};
            node_of.emplace(fn.nodes[i].bbId, static_cast<uint32_t>(i));
        }
        std::vector<LayoutEdge> edges;
        edges.reserve(fn.edges.size());
        for (const auto &e : fn.edges)
            edges.push_back({e.fromNode, e.toNode, e.weight});

        // The bbId order this layout gives the function.
        std::vector<uint32_t> bb_order;
        const codegen::ClusterSpec *spec = nullptr;
        if (clusters) {
            auto it = clusters->find(fn.function);
            if (it != clusters->end())
                spec = &it->second;
        }
        if (spec) {
            for (const auto &cluster : spec->clusters)
                bb_order.insert(bb_order.end(), cluster.begin(),
                                cluster.end());
        } else {
            int f = index.findFunction(fn.function);
            if (f >= 0) {
                for (const auto &block :
                     index.blocksOf(static_cast<uint32_t>(f)))
                    bb_order.push_back(block.bbId);
            }
        }

        std::vector<uint32_t> order;
        std::vector<char> placed(nodes.size(), 0);
        for (uint32_t bb : bb_order) {
            auto it = node_of.find(bb);
            if (it == node_of.end() || placed[it->second])
                continue;
            placed[it->second] = 1;
            order.push_back(it->second);
        }
        for (uint32_t i = 0; i < nodes.size(); ++i) {
            if (!placed[i])
                order.push_back(i);
        }
        total += extTspScore(nodes, edges, order);
    }
    return total;
}

struct DriftPoint
{
    double rate = 0.0;
    workload::DriftStats drift;
    stale::StaleMatchStats match;
    stale::InferenceStats inference;
    double scoreBaseline = 0.0;
    double scoreFresh = 0.0;
    double scoreStale = 0.0;
    double retention = 0.0;
    bool zeroIdentical = false; ///< Only meaningful at rate 0.
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_stale.json";
    bench::printHeader(
        "BENCH stale", "stale-profile matching and count inference",
        "a week-old profile keeps most of Propeller's layout win when "
        "matched by CFG fingerprint instead of dropped on binary mismatch");

    workload::WorkloadConfig cfg = staleConfig();

    // Binary A: last week's build, and the profile collected on it.
    ir::Program program_a = workload::generate(cfg);
    linker::Executable exe_a = buildMetadata(program_a);
    profile::Profile prof_a =
        sim::run(exe_a, workload::profileOptions(cfg)).profile;

    static const double kRates[] = {0.0, 0.05, 0.10, 0.25, 0.50};
    std::vector<DriftPoint> points;
    LayoutOptions lo;

    std::printf("\n%6s %8s %8s %8s %10s %10s %10s %10s\n", "drift",
                "mutated", "blk%", "wt%", "baseline", "fresh", "stale",
                "retain");
    for (double rate : kRates) {
        DriftPoint pt;
        pt.rate = rate;

        // Binary B: this week's build — the same program, drifted.
        ir::Program program_b = workload::generate(cfg);
        pt.drift = workload::applyDrift(
            program_b,
            {cfg.seed + static_cast<uint64_t>(rate * 100.0), rate});
        linker::Executable exe_b = buildMetadata(program_b);

        // Ground truth: a fresh profile of B and its layout.
        profile::Profile prof_b =
            sim::run(exe_b, workload::profileOptions(cfg)).profile;
        AddrMapIndex index_b(exe_b);
        WholeProgramDcfg dcfg_b =
            buildDcfg(profile::aggregate(prof_b), index_b);
        LayoutResult fresh = computeLayout(dcfg_b, index_b, lo);

        // The stale pipeline: A's profile onto B.
        stale::StaleWpaResult swr =
            stale::runStaleWholeProgramAnalysis(exe_b, exe_a, prof_a, lo);
        pt.match = swr.match;
        pt.inference = swr.inference;

        pt.scoreBaseline = scoreLayout(dcfg_b, index_b, nullptr);
        pt.scoreFresh =
            scoreLayout(dcfg_b, index_b, &fresh.ccProf.clusters);
        pt.scoreStale =
            scoreLayout(dcfg_b, index_b, &swr.wpa.ccProf.clusters);
        double lift = pt.scoreFresh - pt.scoreBaseline;
        pt.retention =
            lift > 0.0 ? (pt.scoreStale - pt.scoreBaseline) / lift : 1.0;

        if (rate == 0.0) {
            // At zero drift A and B are the same build: the stale path
            // must collapse to the fresh pipeline, byte for byte.
            WpaResult fresh_from_a =
                runWholeProgramAnalysis(exe_b, prof_a, lo);
            pt.zeroIdentical =
                swr.wpa.ccProf.serialize() ==
                    fresh_from_a.ccProf.serialize() &&
                swr.wpa.ldProf.serialize() ==
                    fresh_from_a.ldProf.serialize();
        }

        std::printf("%5.0f%% %8u %7.1f%% %7.1f%% %10.0f %10.0f %10.0f "
                    "%9.3f\n",
                    rate * 100.0, pt.drift.total(),
                    pt.match.blockMatchRate() * 100.0,
                    pt.match.weightMatchRate() * 100.0, pt.scoreBaseline,
                    pt.scoreFresh, pt.scoreStale, pt.retention);
        points.push_back(pt);
    }

    const DriftPoint &zero = points[0];
    const DriftPoint &ten = points[2];
    bool zero_gate = zero.match.blockMatchRate() == 1.0 &&
                     zero.match.functionsIdentical ==
                         zero.match.functionsTotal &&
                     zero.match.functionsDropped == 0 && zero.zeroIdentical;
    bool retention_gate = ten.retention >= kRetentionFloor;

    std::printf("\ngates: zero-drift perfect match + byte-identical "
                "artifacts %s; retention at 10%% drift %.3f (need >= "
                "%.2f) %s\n",
                zero_gate ? "PASS" : "FAIL", ten.retention, kRetentionFloor,
                retention_gate ? "PASS" : "FAIL");

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"workload\": \"%s\",\n  \"points\": [\n",
                 cfg.name.c_str());
    for (size_t i = 0; i < points.size(); ++i) {
        const DriftPoint &pt = points[i];
        std::fprintf(out, "    {\n      \"drift_pct\": %.0f,\n",
                     pt.rate * 100.0);
        std::fprintf(out,
                     "      \"mutations\": {\"split\": %u, \"inserted\": "
                     "%u, \"deleted\": %u, \"edited\": %u, "
                     "\"fn_added\": %u, \"fn_removed\": %u},\n",
                     pt.drift.blocksSplit, pt.drift.blocksInserted,
                     pt.drift.blocksDeleted, pt.drift.blocksEdited,
                     pt.drift.functionsAdded, pt.drift.functionsRemoved);
        std::fprintf(
            out,
            "      \"match\": {\"block_rate\": %.6f, \"weight_rate\": "
            "%.6f, \"functions_identical\": %u, \"functions_matched\": "
            "%u, \"functions_dropped\": %u, \"blocks_exact\": %llu, "
            "\"blocks_anchor\": %llu, \"blocks_dropped\": %llu},\n",
            pt.match.blockMatchRate(), pt.match.weightMatchRate(),
            pt.match.functionsIdentical, pt.match.functionsMatched,
            pt.match.functionsDropped,
            static_cast<unsigned long long>(pt.match.blocksExact),
            static_cast<unsigned long long>(pt.match.blocksAnchor),
            static_cast<unsigned long long>(pt.match.blocksDropped));
        std::fprintf(
            out,
            "      \"inference\": {\"functions\": %u, \"nodes_added\": "
            "%llu, \"edges_rerouted\": %llu, \"edges_added\": %llu},\n",
            pt.inference.functionsInferred,
            static_cast<unsigned long long>(pt.inference.nodesAdded),
            static_cast<unsigned long long>(pt.inference.edgesRerouted),
            static_cast<unsigned long long>(pt.inference.edgesAdded));
        std::fprintf(out,
                     "      \"score_baseline\": %.3f,\n      "
                     "\"score_fresh\": %.3f,\n      \"score_stale\": "
                     "%.3f,\n      \"retention\": %.6f\n    }%s\n",
                     pt.scoreBaseline, pt.scoreFresh, pt.scoreStale,
                     pt.retention, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"retention_at_10pct\": %.6f,\n", ten.retention);
    std::fprintf(out, "  \"gate_zero_drift_identical\": %s,\n",
                 zero_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_retention_floor\": %s\n",
                 retention_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return (zero_gate && retention_gate) ? 0 : 1;
}
