/**
 * @file
 * Ablation for paper section 4.2 — the bespoke linker relaxation pass:
 * link the Propeller-optimized Clang binary with and without relaxation
 * and report deleted fall-through jumps, shrunk branches, text size and
 * cycles.
 *
 * Expected shape: relaxation removes the redundant explicit fall-through
 * jumps between adjacent sections and shrinks most branch encodings,
 * recovering the size the basic-block-sections abstraction would
 * otherwise cost, with a small performance benefit.
 */

#include "common.h"

#include "codegen/codegen.h"
#include "linker/linker.h"

using namespace propeller;

int
main()
{
    bench::printHeader(
        "Section 4.2", "Linker relaxation ablation (Clang)",
        "fall-through deletion + branch shrinking keep basic block "
        "sections nearly free in size");

    const workload::WorkloadConfig &cfg = workload::configByName("clang");
    buildsys::Workflow &wf = bench::workflowFor("clang");
    const core::WpaResult &wpa = wf.wpa();

    // Recompile the hot modules with clusters, then link twice.
    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::Clusters;
    copts.clusters = &wpa.ccProf.clusters;
    copts.emitAddrMapSection = true;
    auto objects = codegen::compileProgram(wf.program(), copts);

    Table table({"Link", "Text size", "FT jumps deleted",
                 "Branches shrunk", "Cycles", "Perf delta"});
    sim::RunResult relaxed_run;
    sim::RunResult fat_run;
    for (bool relax : {true, false}) {
        linker::Options lopts;
        lopts.entrySymbol = "main";
        lopts.symbolOrder = wpa.ldProf.symbolOrder;
        lopts.relax = relax;
        linker::LinkStats stats;
        linker::Executable exe = linker::link(objects, lopts, &stats);
        sim::RunResult run = bench::evalRun(exe, cfg);
        (relax ? relaxed_run : fat_run) = run;
        table.addRow({relax ? "with relaxation" : "without",
                      formatBytes(exe.sizes.text),
                      formatCount(stats.fallThroughsDeleted),
                      formatCount(stats.branchesShrunk),
                      formatCount(run.counters.cycles()), relax ? "-" : ""});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nrelaxation is worth %+0.2f%% performance and the size "
                "delta above.\n",
                100.0 * bench::improvement(fat_run, relaxed_run));
    return 0;
}
