/**
 * @file
 * Continuous-profiling fleet-service gate: run a mixed-version fleet to
 * steady state and check that the incremental, cache-backed relink loop
 * converges to the one-shot ground truth.
 *
 * The scenario is the paper's deployment story end to end: 8 machines
 * start spread over versions v0/v1 of a binary (10% drift between
 * versions), v2 releases at epoch 2, machines migrate two per epoch, and
 * the service ingests streaming LBR shards, folds the recency-weighted
 * aggregate, and relinks whenever the drift metric crosses the
 * threshold.  After the fleet converges on v2 the harness forces two
 * back-to-back relinks and compares against a cold one-shot relink of
 * the converged aggregate.
 *
 * Emits BENCH_fleet.json and exits nonzero if a gate fails:
 *  - steady_state_retention >= 0.98: the converged layout keeps at
 *    least 98% of the fresh-profile Ext-TSP win on the final version;
 *  - relinks_triggered == drift_crossings exactly (every threshold
 *    crossing relinked, nothing else did);
 *  - the second forced relink is 100% layout-warm (0 misses) and its
 *    binary is byte-identical to the first — steady state really is a
 *    fixed point;
 *  - a cold one-shot relink driven by the same converged DCFG is
 *    byte-identical to the service's shipped binary (the incremental
 *    path changes cost, never artifacts);
 *  - primed_hits >= 1 in the dedicated drifted-function scenario (a
 *    layout-neutral code edit is served from the digest-alias tier).
 *
 * Usage: bench_fleet [output.json]
 */

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "build/workflow.h"
#include "common.h"
#include "ir/ir.h"
#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/ext_tsp.h"
#include "propeller/profile_mapper.h"
#include "propeller/propeller.h"
#include "service/fleet.h"
#include "sim/machine.h"
#include "workload/workload.h"

using namespace propeller;
using namespace propeller::core;

namespace {

constexpr double kRetentionFloor = 0.98;

workload::WorkloadConfig
fleetAppConfig()
{
    workload::WorkloadConfig cfg;
    cfg.name = "fleetapp";
    cfg.seed = 1009;
    cfg.modules = 12;
    cfg.functions = 80;
    cfg.hotFunctions = 26;
    cfg.coldObjectFraction = 0.6;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 26;
    cfg.coldPathDensity = 0.35;
    cfg.pgoStaleness = 0.4;
    cfg.handAsmFunctions = 1;
    cfg.multiModalFunctions = 2;
    cfg.evalInstructions = 600'000;
    cfg.profileInstructions = 600'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

/** Ext-TSP score of @p clusters over @p dcfg (nullptr = address order). */
double
scoreLayout(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
            const codegen::ClusterMap *clusters)
{
    double total = 0.0;
    for (const auto &fn : dcfg.functions) {
        std::vector<LayoutNode> nodes(fn.nodes.size());
        std::unordered_map<uint32_t, uint32_t> node_of;
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            nodes[i] = {std::max<uint64_t>(fn.nodes[i].size, 1),
                        fn.nodes[i].freq};
            node_of.emplace(fn.nodes[i].bbId, static_cast<uint32_t>(i));
        }
        std::vector<LayoutEdge> edges;
        edges.reserve(fn.edges.size());
        for (const auto &e : fn.edges)
            edges.push_back({e.fromNode, e.toNode, e.weight});

        std::vector<uint32_t> bb_order;
        const codegen::ClusterSpec *spec = nullptr;
        if (clusters) {
            auto it = clusters->find(fn.function);
            if (it != clusters->end())
                spec = &it->second;
        }
        if (spec) {
            for (const auto &cluster : spec->clusters)
                bb_order.insert(bb_order.end(), cluster.begin(),
                                cluster.end());
        } else {
            int f = index.findFunction(fn.function);
            if (f >= 0) {
                for (const auto &block :
                     index.blocksOf(static_cast<uint32_t>(f)))
                    bb_order.push_back(block.bbId);
            }
        }

        std::vector<uint32_t> order;
        std::vector<char> placed(nodes.size(), 0);
        for (uint32_t bb : bb_order) {
            auto it = node_of.find(bb);
            if (it == node_of.end() || placed[it->second])
                continue;
            placed[it->second] = 1;
            order.push_back(it->second);
        }
        for (uint32_t i = 0; i < nodes.size(); ++i) {
            if (!placed[i])
                order.push_back(i);
        }
        total += extTspScore(nodes, edges, order);
    }
    return total;
}

/**
 * The dedicated priming scenario: a Work immediate edited in a sampled
 * function changes its hash (exact memo key) but none of the inputs
 * layout reads, so the primed digest-alias tier must serve it warm.
 */
uint64_t
primedHitScenario(const workload::WorkloadConfig &cfg)
{
    const char *cache = "BENCH_fleet_prime.cache";
    std::remove(cache);

    buildsys::Workflow cold_wf(cfg);
    cold_wf.propellerBinary();
    if (!cold_wf.saveCacheFile(cache))
        return 0;

    ir::Program edited = workload::generate(cfg);
    std::string victim;
    for (const std::string &hot : cold_wf.wpa().hotFunctions) {
        for (auto &module : edited.modules) {
            for (auto &fn : module->functions) {
                if (fn->name != hot || fn->isHandAsm || !victim.empty())
                    continue;
                for (auto &bb : fn->blocks) {
                    for (ir::Inst &inst : bb->insts) {
                        if (inst.kind == ir::InstKind::Work &&
                            victim.empty()) {
                            inst.imm += 0x5eed;
                            victim = fn->name;
                        }
                    }
                }
            }
        }
        if (!victim.empty())
            break;
    }
    if (victim.empty())
        return 0;

    buildsys::Workflow warm_wf(cfg);
    warm_wf.overrideProgram(std::move(edited));
    if (!warm_wf.loadCacheFile(cache))
        return 0;
    warm_wf.setLayoutPrimeFunctions({victim});
    warm_wf.propellerBinary();
    return warm_wf.layoutCacheStats().primedHits;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
    bench::printHeader(
        "BENCH fleet", "continuous-profiling fleet service",
        "streaming mixed-version shard ingestion with drift-triggered "
        "incremental relinks converges to the one-shot fresh-profile "
        "layout, and the persisted cache keeps steady state fully warm");

    fleet::FleetOptions fo;
    fo.base = fleetAppConfig();
    fo.machines = 8;
    fo.versions = 3;
    fo.interVersionDrift = 0.10;
    fo.driftThreshold = 0.10;
    fo.cachePath = "BENCH_fleet.cache";
    std::remove(fo.cachePath.c_str());
    const fleet::FleetOptions fo_copy = fo;

    fleet::FleetService svc(std::move(fo));
    const uint32_t epochs = 14;
    svc.run(epochs);
    for (const fleet::EpochStats &es : svc.history())
        std::printf("epoch %2u: %3u shards, drift %.4f%s\n", es.epoch,
                    es.shardsIngested, es.driftMetric,
                    es.relinked ? "  -> relink" : "");

    // Gate: relinks fired exactly on the threshold crossings.
    uint32_t crossings = svc.driftCrossings();
    uint64_t triggered = 0;
    for (const fleet::RelinkRecord &r : svc.relinks()) {
        if (!r.forced)
            ++triggered;
    }
    bool trigger_gate = triggered == crossings && crossings >= 1;

    // Two forced relinks at steady state: the second must be served
    // entirely from the persisted layout tier and reproduce the first's
    // bytes exactly.
    svc.relinkNow();
    linker::Executable first = svc.shippedBinary();
    svc.relinkNow();
    const fleet::RelinkRecord &steady = svc.relinks().back();
    double warm_rate =
        steady.layoutHits + steady.layoutPrimedHits + steady.layoutMisses >
                0
            ? static_cast<double>(steady.layoutHits +
                                  steady.layoutPrimedHits) /
                  static_cast<double>(steady.layoutHits +
                                      steady.layoutPrimedHits +
                                      steady.layoutMisses)
            : 0.0;
    bool steady_gate = steady.layoutMisses == 0 &&
                       svc.shippedBinary().text == first.text &&
                       svc.shippedBinary().identityHash ==
                           first.identityHash;

    // Cold one-shot relink on the converged aggregate: same DCFG, no
    // cache — must reproduce the service's bytes (the incremental path
    // changes cost, never artifacts).
    buildsys::Workflow oneshot(fo_copy.base);
    oneshot.overrideProgram(
        fleet::makeVersionProgram(fo_copy, svc.targetVersion()));
    profile::Profile stamp;
    stamp.binaryHash =
        svc.versionBinary(svc.targetVersion()).identityHash;
    stamp.totalRetired = 1;
    oneshot.overrideProfile(std::move(stamp));
    oneshot.overrideDcfg(WholeProgramDcfg(svc.lastRelinkDcfg()));
    const linker::Executable &oneshot_exe = oneshot.propellerBinary();
    bool oneshot_gate =
        oneshot_exe.text == svc.shippedBinary().text &&
        oneshot_exe.identityHash == svc.shippedBinary().identityHash;

    // Retention: fresh-profile ground truth on the final version.
    const linker::Executable &target_exe =
        svc.versionBinary(svc.targetVersion());
    AddrMapIndex index(target_exe);
    profile::Profile fresh_prof =
        sim::run(target_exe, workload::profileOptions(fo_copy.base))
            .profile;
    WholeProgramDcfg fresh_dcfg =
        buildDcfg(profile::aggregate(fresh_prof), index);
    WpaResult fresh = runWholeProgramAnalysis(target_exe, fresh_prof, {});

    double base_score = scoreLayout(fresh_dcfg, index, nullptr);
    double fresh_score =
        scoreLayout(fresh_dcfg, index, &fresh.ccProf.clusters);
    double steady_score = scoreLayout(
        fresh_dcfg, index, &svc.lastRelinkWpa().ccProf.clusters);
    double retention = fresh_score > base_score
                           ? (steady_score - base_score) /
                                 (fresh_score - base_score)
                           : 0.0;
    bool retention_gate = retention >= kRetentionFloor;

    // The dedicated primed-hit scenario.
    uint64_t primed = primedHitScenario(fo_copy.base);
    bool primed_gate = primed >= 1;

    std::printf("\nsteady state after %u epochs on %u machines:\n",
                epochs, fo_copy.machines);
    std::printf("  relinks triggered %llu, drift crossings %u -> %s\n",
                static_cast<unsigned long long>(triggered), crossings,
                trigger_gate ? "PASS" : "FAIL");
    std::printf("  second forced relink: %llu hit(s) + %llu primed, "
                "%llu miss(es), warm rate %.3f, byte-identical %s\n",
                static_cast<unsigned long long>(steady.layoutHits),
                static_cast<unsigned long long>(steady.layoutPrimedHits),
                static_cast<unsigned long long>(steady.layoutMisses),
                warm_rate, steady_gate ? "PASS" : "FAIL");
    std::printf("  one-shot relink byte-identical: %s\n",
                oneshot_gate ? "PASS" : "FAIL");
    std::printf("  layout retention %.4f (need >= %.2f) %s\n", retention,
                kRetentionFloor, retention_gate ? "PASS" : "FAIL");
    std::printf("  primed digest-alias hits %llu (need >= 1) %s\n",
                static_cast<unsigned long long>(primed),
                primed_gate ? "PASS" : "FAIL");

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"workload\": \"%s\",\n",
                 fo_copy.base.name.c_str());
    std::fprintf(out, "  \"machines\": %u,\n", fo_copy.machines);
    std::fprintf(out, "  \"versions\": %u,\n", fo_copy.versions);
    std::fprintf(out, "  \"epochs\": %u,\n", epochs);
    std::fprintf(out, "  \"drift_history\": [");
    for (size_t i = 0; i < svc.history().size(); ++i)
        std::fprintf(out, "%s%.6f", i ? ", " : "",
                     svc.history()[i].driftMetric);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"relinks_triggered\": %llu,\n",
                 static_cast<unsigned long long>(triggered));
    std::fprintf(out, "  \"drift_crossings\": %u,\n", crossings);
    std::fprintf(out, "  \"steady_state_retention\": %.6f,\n", retention);
    std::fprintf(out, "  \"warm_hit_rate_steady\": %.6f,\n", warm_rate);
    std::fprintf(out, "  \"primed_hits\": %llu,\n",
                 static_cast<unsigned long long>(primed));
    std::fprintf(out, "  \"score_baseline\": %.3f,\n", base_score);
    std::fprintf(out, "  \"score_fresh\": %.3f,\n", fresh_score);
    std::fprintf(out, "  \"score_steady\": %.3f,\n", steady_score);
    std::fprintf(out, "  \"gate_trigger_exact\": %s,\n",
                 trigger_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_steady_warm_identical\": %s,\n",
                 steady_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_oneshot_identical\": %s,\n",
                 oneshot_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_retention_floor\": %s,\n",
                 retention_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_primed_hits\": %s\n",
                 primed_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return (trigger_gate && steady_gate && oneshot_gate &&
            retention_gate && primed_gate)
               ? 0
               : 1;
}
