/**
 * @file
 * Regenerates paper Table 3: performance improvement of Propeller and
 * BOLT (-lite=0) over the PGO+ThinLTO baseline on the six applications.
 *
 * Expected shape: single-digit improvements for both (clang ~7%, mysql
 * ~1%, search ~3-4%, superroot ~1%), and BOLT *crashing at startup* on
 * the integrity-checked warehouse applications (Spanner, Superroot,
 * Bigtable).
 */

#include "common.h"

using namespace propeller;

namespace {

const char *
metricFor(const std::string &name)
{
    if (name == "clang")
        return "Walltime";
    if (name == "mysql" || name == "spanner")
        return "Latency";
    return "QPS";
}

const char *
paperFor(const std::string &name)
{
    if (name == "clang")
        return "+7.3% / +7.3%";
    if (name == "mysql")
        return "+1% / +0.8%";
    if (name == "spanner")
        return "+7% / Crash";
    if (name == "search")
        return "+3% / +4%";
    if (name == "superroot")
        return "+1.1% / Crash";
    return "+3% / Crash"; // bigtable
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 3", "Performance over PGO+ThinLTO baseline",
        "Propeller +1.1% to +7.3%; BOLT comparable where it runs, but "
        "crashes at startup on 3 of 4 warehouse-scale applications");

    Table table({"Benchmark", "Metric", "Propeller", "BOLT (-lite=0)",
                 "(paper P/B)"});
    for (const auto &cfg : workload::appConfigs()) {
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        sim::RunResult base = bench::evalRun(wf.baseline(), cfg);
        sim::RunResult prop = bench::evalRun(wf.propellerBinary(), cfg);

        bolt::BoltOptions bolt_opts;
        bolt_opts.lite = false;
        linker::Executable bo = wf.boltBinary(bolt_opts);
        sim::RunResult bolted = bench::evalRun(bo, cfg);

        std::string bolt_cell =
            bolted.startupOk
                ? formatPercentDelta(bench::improvement(base, bolted))
                : std::string("Crash");
        table.addRow({cfg.name, metricFor(cfg.name),
                      formatPercentDelta(bench::improvement(base, prop)),
                      bolt_cell, paperFor(cfg.name)});
    }
    std::printf("%s", table.render().c_str());

    std::printf("\nNotes: improvements are simulated-cycle ratios on "
                "identical logical work;\nQPS/latency map 1:1 onto cycles "
                "in this closed system.  BOLT's crashes come\nfrom startup "
                "code-integrity checks (FIPS-style known-answer tests) "
                "whose baked-in\nconstants binary rewriting cannot "
                "regenerate (paper section 5.8).\n");
    return 0;
}
