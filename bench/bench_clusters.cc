/**
 * @file
 * Ablation for paper section 4.1 — object file metadata overhead of
 * basic block sections: compare function sections (baseline), one
 * section per basic block (the naive abstraction) and Propeller's
 * profile-driven clusters on Clang.
 *
 * Expected shape: all-blocks sections blow up object sizes (per-section
 * headers, relocations, per-fragment CFI) and link memory; clustering
 * only where the profile demands it keeps the overhead near the
 * baseline — the reason paper section 4.1 exists.
 */

#include "common.h"

#include "codegen/codegen.h"
#include "linker/linker.h"

using namespace propeller;

namespace {

struct Variant
{
    const char *label;
    codegen::Options options;
};

} // namespace

int
main()
{
    bench::printHeader(
        "Section 4.1", "Basic block section granularity (Clang)",
        "one-section-per-block inflates objects and relink memory; "
        "clusters keep overheads low");

    buildsys::Workflow &wf = bench::workflowFor("clang");
    const core::WpaResult &wpa = wf.wpa();

    codegen::Options none;
    none.emitAddrMapSection = true;
    codegen::Options all;
    all.bbSections = codegen::BbSectionsMode::All;
    all.emitAddrMapSection = true;
    codegen::Options clusters;
    clusters.bbSections = codegen::BbSectionsMode::Clusters;
    clusters.clusters = &wpa.ccProf.clusters;
    clusters.emitAddrMapSection = true;

    Table table({"Codegen", "Object bytes", "Text sections", "Relocs",
                 "eh_frame", "Link peak mem"});
    for (const Variant &variant :
         {Variant{"function sections", none},
          Variant{"bb sections=all", all},
          Variant{"bb sections=clusters (Propeller)", clusters}}) {
        auto objects =
            codegen::compileProgram(wf.program(), variant.options);
        uint64_t bytes = 0;
        uint64_t sections = 0;
        uint64_t relocs = 0;
        uint64_t eh = 0;
        for (const auto &obj : objects) {
            bytes += obj.sizeInBytes();
            auto breakdown = obj.sizeBreakdown();
            relocs += breakdown.relocs / elf::kRelaEntrySize;
            eh += breakdown.ehFrame;
            for (const auto &sec : obj.sections)
                sections += (sec.type == elf::SectionType::Text);
        }
        linker::Options lopts;
        lopts.entrySymbol = "main";
        linker::LinkStats stats;
        linker::link(objects, lopts, &stats);
        table.addRow({variant.label, formatBytes(bytes),
                      formatCount(sections), formatCount(relocs),
                      formatBytes(eh), formatBytes(stats.peakMemory)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(clang has %s basic blocks in %s functions; the paper's "
                "clang has 2.1M in 160K)\n",
                formatCount(wf.program().blockCount()).c_str(),
                formatCount(wf.program().functionCount()).c_str());
    return 0;
}
