/**
 * @file
 * Regenerates paper Table 2: benchmark characteristics — text size,
 * function count, basic block count and the fraction of cold object
 * files, for the six applications and the SPEC2017-like suite.
 *
 * Paper values are printed alongside; the synthetic workloads are scaled
 * ~100x down, so sizes should match at that scale and the cold-object
 * fractions should match directly.
 */

#include <set>

#include "common.h"

using namespace propeller;

namespace {

/** Measured fraction of object files containing no sampled function. */
double
coldObjectFraction(buildsys::Workflow &wf)
{
    const core::WpaResult &wpa = wf.wpa();
    std::set<std::string> hot(wpa.hotFunctions.begin(),
                              wpa.hotFunctions.end());
    size_t cold_modules = 0;
    for (const auto &mod : wf.program().modules) {
        bool has_hot = false;
        for (const auto &fn : mod->functions)
            has_hot |= hot.count(fn->name) != 0;
        cold_modules += !has_hot;
    }
    return static_cast<double>(cold_modules) /
           static_cast<double>(wf.program().modules.size());
}

void
addRow(Table &table, const std::string &name)
{
    buildsys::Workflow &wf = bench::workflowFor(name);
    const workload::WorkloadConfig &cfg = wf.config();
    table.addRow({name, formatBytes(wf.baseline().sizes.text),
                  cfg.paperText + " /100",
                  formatCount(wf.program().functionCount()),
                  cfg.paperFuncs + " /100",
                  formatCount(wf.program().blockCount()),
                  cfg.paperBlocks + " /100",
                  formatPercent(coldObjectFraction(wf)), cfg.paperCold});
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 2", "Benchmark characteristics",
        "text 26-598 MB, 61K-2.7M funcs, 1.4-30M BBs, 67-95% cold objects "
        "(WSC apps); SPEC much smaller and mostly hot");

    Table table({"Benchmark", "Text", "(paper)", "#Funcs", "(paper)",
                 "#BBs", "(paper)", "% Cold", "(paper)"});
    for (const auto &cfg : workload::appConfigs())
        addRow(table, cfg.name);
    table.addSeparator();
    for (const auto &cfg : workload::specConfigs())
        addRow(table, cfg.name);
    std::printf("%s", table.render().c_str());

    std::printf("\nNotes: workloads are generated at ~1/100 of paper scale;"
                " '%% Cold' is measured\nfrom the hardware profile as the"
                " fraction of objects with no sampled function.\n");
    return 0;
}
