/**
 * @file
 * Fault-tolerance gate: run the full relink pipeline under seeded
 * corruption of profile shards, cached artifacts and `.bb_addr_map`
 * payloads plus transient executor failures, and assert the deployment
 * contract (paper section 6): the workflow completes with **zero
 * aborts**, every injected corruption is **detected and attributed** by
 * a counter, and layout quality on unaffected functions is retained.
 *
 * For each fault rate the harness runs a fresh Workflow with a
 * faultinject::FaultInjector attached and compares:
 *
 *   injected   what the harness actually corrupted (ground truth);
 *   detected   shard rejections, cache corruption evictions (lookup +
 *              final scrub), addr-map rejections, action retries;
 *   retention  Ext-TSP score of the faulted run's layout vs the clean
 *              run's, both evaluated on the clean DCFG, restricted to
 *              functions no fault touched.
 *
 * Emits BENCH_faults.json and exits nonzero if a gate fails:
 *  - at rate 0 (hooks attached, nothing injected) the optimized binary
 *    must be byte-identical to the hook-free pipeline's;
 *  - at every rate, detected == injected per category;
 *  - at the CI rate (25%) retention on unaffected functions >= 0.95.
 *
 * Usage: bench_faults [output.json]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "build/workflow.h"
#include "common.h"
#include "faultinject/faultinject.h"
#include "propeller/addr_map_index.h"
#include "propeller/ext_tsp.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"

using namespace propeller;
using namespace propeller::core;

namespace {

constexpr double kRetentionFloor = 0.95;
constexpr double kGateRate = 0.25;
constexpr uint64_t kFaultSeed = 977;

workload::WorkloadConfig
faultConfig()
{
    workload::WorkloadConfig cfg;
    cfg.name = "faultapp";
    cfg.seed = 61;
    cfg.modules = 16;
    cfg.functions = 96;
    cfg.hotFunctions = 30;
    cfg.coldObjectFraction = 0.6;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 24;
    cfg.coldPathDensity = 0.35;
    cfg.evalInstructions = 400'000;
    cfg.profileInstructions = 2'000'000;
    cfg.sampleLbrPeriod = 500;
    return cfg;
}

/**
 * Ext-TSP score of @p clusters over @p dcfg (nullptr scores the original
 * address-order layout), skipping functions in @p exclude.  Same scoring
 * as bench_stale, restricted to the unaffected set.
 */
double
scoreLayout(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
            const codegen::ClusterMap *clusters,
            const std::set<std::string> &exclude)
{
    double total = 0.0;
    for (const auto &fn : dcfg.functions) {
        if (exclude.count(fn.function))
            continue;
        std::vector<LayoutNode> nodes(fn.nodes.size());
        std::unordered_map<uint32_t, uint32_t> node_of;
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            nodes[i] = {std::max<uint64_t>(fn.nodes[i].size, 1),
                        fn.nodes[i].freq};
            node_of.emplace(fn.nodes[i].bbId, static_cast<uint32_t>(i));
        }
        std::vector<LayoutEdge> edges;
        edges.reserve(fn.edges.size());
        for (const auto &e : fn.edges)
            edges.push_back({e.fromNode, e.toNode, e.weight});

        std::vector<uint32_t> bb_order;
        const codegen::ClusterSpec *spec = nullptr;
        if (clusters) {
            auto it = clusters->find(fn.function);
            if (it != clusters->end())
                spec = &it->second;
        }
        if (spec) {
            for (const auto &cluster : spec->clusters)
                bb_order.insert(bb_order.end(), cluster.begin(),
                                cluster.end());
        } else {
            int f = index.findFunction(fn.function);
            if (f >= 0) {
                for (const auto &block :
                     index.blocksOf(static_cast<uint32_t>(f)))
                    bb_order.push_back(block.bbId);
            }
        }

        std::vector<uint32_t> order;
        std::vector<char> placed(nodes.size(), 0);
        for (uint32_t bb : bb_order) {
            auto it = node_of.find(bb);
            if (it == node_of.end() || placed[it->second])
                continue;
            placed[it->second] = 1;
            order.push_back(it->second);
        }
        for (uint32_t i = 0; i < nodes.size(); ++i) {
            if (!placed[i])
                order.push_back(i);
        }
        total += extTspScore(nodes, edges, order);
    }
    return total;
}

/** Failure-summary lines of @p report starting with @p prefix. */
uint32_t
countFailures(const buildsys::PhaseReport &report, const char *prefix)
{
    uint32_t n = 0;
    for (const auto &line : report.failures) {
        if (line.rfind(prefix, 0) == 0)
            ++n;
    }
    return n;
}

struct FaultPoint
{
    double rate = 0.0;
    faultinject::FaultStats injected;
    uint32_t shardsRejected = 0;
    uint32_t addrMapsRejected = 0;
    uint64_t cacheDetected = 0;
    uint32_t retries = 0;
    uint32_t functionsAffected = 0;
    double retention = 0.0;
    bool identicalAtZero = false;
    bool detectionOk = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
    bench::printHeader(
        "BENCH faults", "fault-injected relink pipeline",
        "relinking must never ship a broken binary: corrupt profiles, "
        "cached objects and BB address maps are detected, quarantined "
        "and absorbed, never fatal");

    workload::WorkloadConfig cfg = faultConfig();

    // The clean reference pipeline (no hooks attached at all).
    buildsys::Workflow clean(cfg);
    const linker::Executable &clean_po = clean.propellerBinary();
    AddrMapIndex index(clean.metadataBinary());
    WholeProgramDcfg dcfg =
        buildDcfg(profile::aggregate(clean.profile()), index);
    const codegen::ClusterMap &clean_clusters =
        clean.wpa().ccProf.clusters;

    // Object name -> function names, for mapping injected addr-map
    // corruption to the functions it is allowed to affect.
    std::unordered_map<std::string, std::vector<std::string>> funcs_of;
    for (const auto &mod : clean.program().modules) {
        auto &names = funcs_of[mod->name + ".o"];
        for (const auto &fn : mod->functions)
            names.push_back(fn->name);
    }

    static const double kRates[] = {0.0, 0.10, 0.25, 0.50};
    std::vector<FaultPoint> points;

    std::printf("\n%6s %8s %8s %8s %8s %8s %8s %9s\n", "rate", "shards",
                "cache", "addrmap", "exec", "detect", "affect", "retain");
    for (double rate : kRates) {
        FaultPoint pt;
        pt.rate = rate;

        faultinject::FaultSpec spec;
        spec.seed = kFaultSeed;
        spec.profileRate = rate;
        spec.cacheRate = rate;
        spec.addrMapRate = rate;
        spec.execFailRate = rate * 0.4;
        faultinject::FaultInjector injector(spec);

        buildsys::Workflow wf(cfg);
        wf.setFaultHooks(&injector);

        // The full pipeline; reaching the other side of this call with
        // faults injected IS the zero-abort property.
        const linker::Executable &po = wf.propellerBinary();

        // End-of-build integrity sweep catches corrupt entries whose key
        // was never looked up again (e.g. phase-4 keys of hot modules).
        wf.scrubCache();

        pt.injected = injector.stats();
        pt.shardsRejected = wf.report("phase3.collect").quarantined;
        pt.addrMapsRejected = countFailures(wf.report("phase2.link"),
                                            ".bb_addr_map rejected: ");
        pt.cacheDetected = wf.cacheStats().corruptions;
        pt.retries = wf.report("phase2.codegen").retries +
                     wf.report("phase4.codegen").retries;

        pt.detectionOk =
            pt.shardsRejected == pt.injected.profileShardsCorrupted &&
            pt.addrMapsRejected == pt.injected.addrMapsCorrupted &&
            pt.cacheDetected == pt.injected.cacheEntriesCorrupted &&
            pt.retries == pt.injected.actionFailures;

        // Functions a fault was *allowed* to touch: everything in an
        // object with a corrupted addr map, everything WPA or the linker
        // quarantined, every dropped cluster directive.
        std::set<std::string> affected;
        for (const auto &obj : pt.injected.corruptedObjectNames) {
            auto it = funcs_of.find(obj);
            if (it != funcs_of.end())
                affected.insert(it->second.begin(), it->second.end());
        }
        for (const auto &name : wf.wpa().stats.quarantinedFunctions)
            affected.insert(name);
        for (const char *phase : {"phase4.codegen", "phase4.link"}) {
            for (const auto &line : wf.report(phase).failures) {
                for (const char *prefix :
                     {"cluster directive dropped: ",
                      "function quarantined: "}) {
                    if (line.rfind(prefix, 0) == 0)
                        affected.insert(line.substr(strlen(prefix)));
                }
            }
        }
        pt.functionsAffected = static_cast<uint32_t>(affected.size());

        double base_u = scoreLayout(dcfg, index, nullptr, affected);
        double clean_u =
            scoreLayout(dcfg, index, &clean_clusters, affected);
        double fault_u = scoreLayout(dcfg, index,
                                     &wf.wpa().ccProf.clusters, affected);
        double lift = clean_u - base_u;
        pt.retention = lift > 0.0 ? (fault_u - base_u) / lift : 1.0;

        if (rate == 0.0) {
            // Hooks attached but nothing injected: the shard round-trip
            // and sanitation passes must be perfectly transparent.
            pt.identicalAtZero =
                po.text == clean_po.text &&
                po.identityHash == clean_po.identityHash;
        }

        std::printf("%5.0f%% %8u %8u %8u %8u %8s %8u %9.3f\n",
                    rate * 100.0, pt.injected.profileShardsCorrupted,
                    pt.injected.cacheEntriesCorrupted,
                    pt.injected.addrMapsCorrupted,
                    pt.injected.actionFailures,
                    pt.detectionOk ? "exact" : "MISS",
                    pt.functionsAffected, pt.retention);
        points.push_back(pt);
    }

    bool zero_gate = points[0].identicalAtZero &&
                     points[0].injected.corruptions() == 0;
    bool detect_gate = true;
    bool coverage_gate = false;
    double gate_retention = 1.0;
    bool retention_gate = true;
    for (const FaultPoint &pt : points) {
        detect_gate = detect_gate && pt.detectionOk;
        if (pt.rate == kGateRate) {
            gate_retention = pt.retention;
            retention_gate = pt.retention >= kRetentionFloor;
            // The gate point must actually exercise all four fault
            // classes, or "everything detected" is vacuous.
            coverage_gate = pt.injected.profileShardsCorrupted > 0 &&
                            pt.injected.cacheEntriesCorrupted > 0 &&
                            pt.injected.addrMapsCorrupted > 0 &&
                            pt.injected.actionFailures > 0;
        }
    }

    std::printf("\ngates: zero-fault byte-identical %s; detection exact "
                "at all rates %s; all fault classes exercised at %.0f%% "
                "%s; retention %.3f (need >= %.2f) %s\n",
                zero_gate ? "PASS" : "FAIL",
                detect_gate ? "PASS" : "FAIL", kGateRate * 100.0,
                coverage_gate ? "PASS" : "FAIL", gate_retention,
                kRetentionFloor, retention_gate ? "PASS" : "FAIL");

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"workload\": \"%s\",\n  \"seed\": %llu,\n",
                 cfg.name.c_str(),
                 static_cast<unsigned long long>(kFaultSeed));
    std::fprintf(out, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const FaultPoint &pt = points[i];
        std::fprintf(out, "    {\n      \"rate_pct\": %.0f,\n",
                     pt.rate * 100.0);
        std::fprintf(
            out,
            "      \"injected\": {\"profile_shards\": %u, "
            "\"cache_entries\": %u, \"addr_maps\": %u, \"exec_faults\": "
            "%u, \"bit_flips\": %u, \"truncations\": %u, \"zero_runs\": "
            "%u},\n",
            pt.injected.profileShardsCorrupted,
            pt.injected.cacheEntriesCorrupted,
            pt.injected.addrMapsCorrupted, pt.injected.actionFailures,
            pt.injected.bitFlips, pt.injected.truncations,
            pt.injected.zeroRuns);
        std::fprintf(
            out,
            "      \"detected\": {\"shards_rejected\": %u, "
            "\"cache_corruptions\": %llu, \"addr_maps_rejected\": %u, "
            "\"action_retries\": %u},\n",
            pt.shardsRejected,
            static_cast<unsigned long long>(pt.cacheDetected),
            pt.addrMapsRejected, pt.retries);
        std::fprintf(out,
                     "      \"detection_exact\": %s,\n      "
                     "\"functions_affected\": %u,\n      \"retention\": "
                     "%.6f\n    }%s\n",
                     pt.detectionOk ? "true" : "false",
                     pt.functionsAffected, pt.retention,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"gate_zero_fault_identical\": %s,\n",
                 zero_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_detection_exact\": %s,\n",
                 detect_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_all_classes_exercised\": %s,\n",
                 coverage_gate ? "true" : "false");
    std::fprintf(out, "  \"retention_at_gate_rate\": %.6f,\n",
                 gate_retention);
    std::fprintf(out, "  \"gate_retention_floor\": %s\n",
                 retention_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return (zero_gate && detect_gate && coverage_gate && retention_gate)
               ? 0
               : 1;
}
