/**
 * @file
 * Ablation for paper section 4.7 — inter-procedural code layout: run the
 * whole-program Ext-TSP (call edges included), cut the global chain into
 * per-function section runs, and compare against the intra-procedural
 * default on Clang.
 *
 * Expected shape: a modest extra gain (+0.8% on clang in the paper, with
 * icache -11% and iTLB -13% vs intra), bought with noticeably more layout
 * computation (3-10x in the paper) and more section fragments.
 */

#include "common.h"

using namespace propeller;

int
main()
{
    bench::printHeader(
        "Section 4.7", "Inter-procedural layout vs intra (Clang)",
        "+0.8% over intra-function layout; icache -11%, iTLB -13%; "
        "3-10x longer layout computation");

    const workload::WorkloadConfig &cfg = workload::configByName("clang");
    buildsys::Workflow &wf = bench::workflowFor("clang");
    sim::RunResult base = bench::evalRun(wf.baseline(), cfg);

    core::WpaResult intra_wpa;
    core::LayoutOptions intra;
    linker::Executable intra_bin = wf.propellerBinaryWith(intra, &intra_wpa);
    sim::RunResult intra_run = bench::evalRun(intra_bin, cfg);

    core::WpaResult inter_wpa;
    core::LayoutOptions inter;
    inter.interProcedural = true;
    linker::Executable inter_bin = wf.propellerBinaryWith(inter, &inter_wpa);
    sim::RunResult inter_run = bench::evalRun(inter_bin, cfg);

    Table table({"Layout", "Perf vs base", "L1i", "iTLB",
                 "Ext-TSP edge scorings", "Sections (ld_prof)"});
    table.addRow(
        {"intra-procedural",
         formatPercentDelta(bench::improvement(base, intra_run)),
         formatCount(intra_run.counters.l1iMisses),
         formatCount(intra_run.counters.itlbMisses),
         formatCount(intra_wpa.stats.extTsp.candidateEvals),
         formatCount(intra_wpa.ldProf.symbolOrder.size())});
    table.addRow(
        {"inter-procedural",
         formatPercentDelta(bench::improvement(base, inter_run)),
         formatCount(inter_run.counters.l1iMisses),
         formatCount(inter_run.counters.itlbMisses),
         formatCount(inter_wpa.stats.extTsp.candidateEvals),
         formatCount(inter_wpa.ldProf.symbolOrder.size())});
    std::printf("%s", table.render().c_str());

    double icache_delta = bench::reduction(intra_run.counters.l1iMisses,
                                           inter_run.counters.l1iMisses);
    double work_factor =
        static_cast<double>(inter_wpa.stats.extTsp.candidateEvals) /
        static_cast<double>(
            std::max<uint64_t>(intra_wpa.stats.extTsp.candidateEvals, 1));
    std::printf("\ninter vs intra (clang): perf %+0.2f%%, icache %+0.0f%%, "
                "layout work %.1fx\n(paper: +0.8%%, -11%% icache, 3-10x "
                "work; the paper also leaves inter-procedural\nlayout as "
                "future work needing more extensive study)\n",
                100.0 * (bench::improvement(base, inter_run) -
                         bench::improvement(base, intra_run)),
                -100.0 * icache_delta, work_factor);

    // ---- The Figure 3 scenario isolated: multi-modal-heavy code --------
    // Large functions with two loops calling distinct non-inlined callees;
    // splitting the loops next to their callees is where inter-procedural
    // layout pays.
    {
        workload::WorkloadConfig mm = workload::configByName("clang");
        mm.name = "multimodal";
        mm.seed = 7001;
        mm.modules = 40;
        mm.functions = 400;
        mm.hotFunctions = 64;
        mm.multiModalFunctions = 16;
        mm.pgoStaleness = 0.2;
        buildsys::Workflow wfm(mm);
        sim::RunResult mbase = bench::evalRun(wfm.baseline(), mm);

        core::LayoutOptions li;
        sim::RunResult mintra =
            bench::evalRun(wfm.propellerBinaryWith(li), mm);
        li.interProcedural = true;
        li.interProcMinRunBlocks = 1; // Multi-modal loops are tiny.
        sim::RunResult minter =
            bench::evalRun(wfm.propellerBinaryWith(li), mm);
        std::printf("\nmulti-modal scenario (Figure 3): intra %+0.2f%%, "
                    "inter %+0.2f%% vs baseline\n",
                    100.0 * bench::improvement(mbase, mintra),
                    100.0 * bench::improvement(mbase, minter));
    }
    return 0;
}
