/**
 * @file
 * Regenerates paper Figure 5: peak memory of Phase 4 (Propeller code
 * layout + relink) vs. BOLT optimization vs. the baseline link action.
 *
 * Expected shape: Propeller's relink peaks near the baseline link (same
 * inputs, slightly more sections); BOLT's monolithic rewrite peaks far
 * above both, shifting the memory bottleneck from the linker to the
 * binary optimizer.
 */

#include "common.h"

using namespace propeller;

namespace {

void
section(const std::vector<workload::WorkloadConfig> &configs,
        const char *label)
{
    std::printf("\n-- %s --\n", label);
    Table table({"Benchmark", "Baseline link", "Propeller Phase 4",
                 "BOLT opt", "BOLT / link"});
    for (const auto &cfg : configs) {
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        wf.baseline();
        wf.propellerBinary();
        bolt::BoltStats bolt_stats;
        wf.boltBinary({}, &bolt_stats);

        // Paper methodology (5.2): "we profile the relink action in
        // Phase 4 and for BOLT, we profile the llvm-bolt tool".
        uint64_t base_link = wf.report("baseline.link").peakActionMemory;
        uint64_t phase4 = wf.report("phase4.link").peakActionMemory;
        uint64_t bolt_mem = bolt_stats.optPeakMemory;
        table.addRow({cfg.name, formatBytes(base_link),
                      formatBytes(phase4), formatBytes(bolt_mem),
                      formatFixed(static_cast<double>(bolt_mem) /
                                      static_cast<double>(base_link),
                                  1) + "x"});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 5", "Peak memory: Phase 4 relink vs BOLT vs baseline link",
        "Propeller's code layout does not increase peak memory over the "
        "baseline link; BOLT can peak at up to 5x the baseline link");

    section(workload::appConfigs(), "warehouse-scale + open source (L)");
    section(workload::specConfigs(), "SPEC2017 (R)");
    return 0;
}
