/**
 * @file
 * Regenerates paper Figure 6: normalized binary-size breakdown — baseline
 * (Base), Propeller metadata (PM), Propeller optimized (PO), BOLT
 * metadata (BM) and BOLT optimized (BO) — split into .text, .eh_frame,
 * .bb_addr_map, relocations and other.
 *
 * Expected shape: PM 7-9%% over Base (address map), BM 20-60%% over Base
 * (static relocations), PO ~1%% over Base, BO 45-150%% over Base (retained
 * original text + 2M alignment).
 */

#include "codegen/codegen.h"
#include "linker/linker.h"

#include "common.h"

using namespace propeller;

namespace {

void
addRows(Table &table, const std::string &name)
{
    buildsys::Workflow &wf = bench::workflowFor(name);
    const linker::Executable &base = wf.baseline();
    const linker::Executable &pm = wf.metadataBinary();
    const linker::Executable &bm = wf.boltInputBinary();
    const linker::Executable &po = wf.propellerBinary();
    linker::Executable bo = wf.boltBinary();

    double denom = static_cast<double>(base.sizes.total());
    auto pct = [&](uint64_t v) {
        return formatFixed(100.0 * static_cast<double>(v) / denom, 1);
    };
    auto row = [&](const char *label, const linker::SectionSizes &s) {
        table.addRow({name, label, pct(s.text), pct(s.ehFrame),
                      pct(s.bbAddrMap), pct(s.relocs), pct(s.other),
                      pct(s.total())});
    };
    row("Base", base.sizes);
    row("PM", pm.sizes);
    row("PO", po.sizes);
    row("BM", bm.sizes);
    row("BO", bo.sizes);
    table.addSeparator();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 6", "Normalized section-size breakdown (% of Base total)",
        "PM +7-9%, BM +20-60%, PO ~+1%, BO +45% (WSC) to +150% (SPEC)");

    Table table({"Benchmark", "Binary", "text", "eh_frame", "bb_addr_map",
                 "relocs", "other", "TOTAL"});
    for (const auto &cfg : workload::appConfigs())
        addRows(table, cfg.name);
    for (const auto &name : {"502.gcc", "505.mcf", "541.leela"})
        addRows(table, name);
    std::printf("%s", table.render().c_str());

    std::printf("\nNotes: BO includes the retained original .text plus the "
                "2 MiB-aligned new\nsegment; PM/BM sections are not loaded "
                "at run time.\n");

    // ---- The section 5.3 debug-build observation ------------------------
    // "Measured on a debug build of Clang, the .rela section (required by
    //  BOLT) can be up to 43% of the overall binary size (1.7G)."
    {
        buildsys::Workflow &wf = bench::workflowFor("clang");
        codegen::Options copts;
        copts.emitDebugInfo = true;
        auto objects = codegen::compileProgram(wf.program(), copts);
        linker::Options lopts;
        lopts.entrySymbol = "main";
        lopts.emitRelocs = true; // BOLT metadata requirement.
        linker::Executable bm_debug = linker::link(objects, lopts);
        double share = 100.0 *
                       static_cast<double>(bm_debug.sizes.relocs) /
                       static_cast<double>(bm_debug.sizes.total());
        std::printf("\nDebug build of clang with --emit-relocs (BOLT "
                    "metadata): .rela is %.0f%% of the\n%s binary "
                    "(paper: up to 43%% of 1.7 GB).\n",
                    share, formatBytes(bm_debug.sizes.total()).c_str());
    }
    return 0;
}
