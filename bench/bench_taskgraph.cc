/**
 * @file
 * Task-graph relink engine gate: on bigtable at 8 modelled workers the
 * work-stealing schedule must land within 1.03x of the critical-path
 * lower bound, beat the phase-barriered engine's summed makespan, and
 * ship byte-identical artifacts at every worker count and under the
 * barrier ablation.
 *
 * Incremental-relink gates (the layout memoization tier):
 *  - a warm rerun against the cold run's cache must hit for every
 *    function (layout hit rate 1.0), cut layout+codegen modelled work
 *    by >= 3x, and stay byte-identical at jobs {1, 2, 8};
 *  - a 10%-drifted profile must miss for exactly the drifted functions
 *    and match a cold run on the same drifted profile byte for byte;
 *  - with --cache FILE the cold run persists its cache image; a second
 *    process pointed at the same file demonstrates the cross-process
 *    warm path (persisted_cache_loaded / persisted_layout_hit_rate).
 *
 * Emits BENCH_taskgraph.json so CI tracks the schedule-quality and
 * memoization trajectory over time; --trace FILE additionally exports
 * the modelled schedule as a Chrome trace_event JSON.
 *
 * Usage: bench_taskgraph [output.json] [--cache FILE] [--trace FILE]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common.h"
#include "propeller/addr_map_index.h"
#include "sched/sched.h"

using namespace propeller;

namespace {

constexpr const char *kWorkload = "bigtable";
constexpr double kRatioGate = 1.03;
constexpr double kWarmSpeedupGate = 3.0;

/** Everything one engine run can vary on. */
struct EngineParams
{
    unsigned jobs = 8;
    bool barrier = false;
    uint32_t workers = 8;
    /** Seed the artifact cache from this image before the run. */
    const char *loadCache = nullptr;
    /** Persist the artifact cache image here after the run. */
    const char *saveCache = nullptr;
    /** Replace the collected profile (drift injection). */
    const profile::Profile *profileOverride = nullptr;
    /** Export the modelled schedule as a Chrome trace. */
    const char *tracePath = nullptr;
};

/** One engine run: shipped bytes, modelled schedule, relink wall clock. */
struct RunOutcome
{
    std::vector<uint8_t> text;
    double wallSec = 0.0;
    double modelMakespanSec = 0.0;
    double lowerBoundSec = 0.0;
    double criticalPathSec = 0.0;
    double efficiency = 0.0;
    uint64_t steals = 0;
    uint64_t stealAttempts = 0;
    double stealHitRate = 1.0;
    std::vector<double> workerIdleSec;
    uint32_t tasks = 0;
    bool cacheLoaded = false;
    uint64_t layoutHits = 0;
    uint64_t layoutMisses = 0;
    /** Barrier engine only: sum of the three relink phase makespans. */
    double barrierSumSec = 0.0;
    std::vector<sched::TaskSpan> spans;
    std::vector<std::pair<std::string, sched::ScheduleReport::Window>>
        windows;

    double
    layoutHitRate() const
    {
        uint64_t total = layoutHits + layoutMisses;
        return total == 0 ? 0.0
                          : static_cast<double>(layoutHits) /
                                static_cast<double>(total);
    }

    /** Modelled work of the memoizable stages: per-function layout
     *  spans plus the codegen phase. */
    double
    layoutCodegenWorkSec() const
    {
        double work = 0.0;
        for (const sched::TaskSpan &s : spans) {
            if (s.phase == "phase4.codegen" ||
                (s.phase == "phase3.wpa" &&
                 s.label.rfind("layout:", 0) == 0))
                work += s.costSec;
        }
        return work;
    }
};

RunOutcome
runEngine(const EngineParams &p)
{
    workload::WorkloadConfig cfg = workload::configByName(kWorkload);
    cfg.jobs = p.jobs;
    cfg.barrierScheduler = p.barrier;
    buildsys::Workflow wf(cfg);

    // The gate is specified at 8 workers; bigtable's distributed build
    // would otherwise model 40.
    buildsys::BuildLimits limits;
    limits.workers = p.workers;
    wf.setBuildLimits(limits);

    RunOutcome out;
    if (p.loadCache)
        out.cacheLoaded = wf.loadCacheFile(p.loadCache);
    if (p.profileOverride)
        wf.overrideProfile(*p.profileOverride);

    // Prime the serial upstream phases so the wall clock below times
    // the relink (WPA + codegen + link), not profile collection.
    wf.metadataBinary();
    wf.profile();

    auto t0 = std::chrono::steady_clock::now();
    out.text = wf.propellerBinary().text;
    auto t1 = std::chrono::steady_clock::now();
    out.wallSec = std::chrono::duration<double>(t1 - t0).count();
    out.layoutHits = wf.layoutCacheStats().hits;
    out.layoutMisses = wf.layoutCacheStats().misses;
    if (p.saveCache)
        wf.saveCacheFile(p.saveCache);

    if (p.barrier) {
        for (const char *phase :
             {"phase3.wpa", "phase4.codegen", "phase4.link"})
            out.barrierSumSec += wf.report(phase).makespanSec;
    } else {
        const sched::ScheduleReport &s = wf.relinkSchedule();
        out.modelMakespanSec = s.makespanSec;
        out.lowerBoundSec = s.lowerBoundSec;
        out.criticalPathSec = s.criticalPathSec;
        out.efficiency = s.parallelEfficiency;
        out.steals = s.steals;
        out.stealAttempts = s.stealAttempts;
        out.stealHitRate = s.stealHitRate();
        out.workerIdleSec = s.workerIdleSec;
        out.tasks = s.tasksExecuted;
        out.spans = s.spans;
        for (const char *phase :
             {"phase3.wpa", "phase4.codegen", "phase4.link"})
            out.windows.push_back({phase, s.phaseWindow(phase)});
        if (p.tracePath && !sched::writeChromeTrace(s, p.tracePath))
            std::printf("warning: cannot write trace %s\n", p.tracePath);
    }
    return out;
}

/**
 * A lightly drifted profile: for roughly every 10th sampled function,
 * append one single-record sample duplicating an existing
 * *intra-function* branch (target at a non-entry block start, so the
 * mapper classifies it as a plain branch).  Only those functions'
 * branch weights — and hence layout fingerprints — change.
 * @return the number of drifted functions via @p drifted_out.
 */
profile::Profile
makeDriftedProfile(const profile::Profile &prof,
                   const linker::Executable &pm, size_t *drifted_out)
{
    core::AddrMapIndex index(pm);
    profile::Profile drifted = prof;
    std::set<uint32_t> seen;
    std::set<uint32_t> chosen;
    std::vector<profile::BranchRecord> extras;
    for (const profile::LbrSample &sample : prof.samples) {
        for (uint8_t r = 0; r < sample.count; ++r) {
            const profile::BranchRecord &rec = sample.records[r];
            auto bf = index.lookup(rec.from);
            auto bt = index.lookup(rec.to);
            if (!bf || !bt || bf->funcIndex != bt->funcIndex)
                continue;
            if (bt->blockStart != rec.to ||
                bt->bbId == index.entryBlock(bt->funcIndex))
                continue;
            if (!seen.insert(bf->funcIndex).second)
                continue;
            if (seen.size() % 10 != 1)
                continue; // every 10th distinct eligible function
            chosen.insert(bf->funcIndex);
            extras.push_back(rec);
        }
    }
    for (const profile::BranchRecord &rec : extras) {
        profile::LbrSample sample;
        sample.records[0] = rec;
        sample.count = 1;
        drifted.samples.push_back(sample);
    }
    *drifted_out = chosen.size();
    return drifted;
}

bool
fileExists(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_taskgraph.json";
    const char *cache_path = nullptr;
    const char *trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc)
            cache_path = argv[++i];
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else
            out_path = argv[i];
    }

    bench::printHeader(
        "BENCH taskgraph", "incremental relink on the task graph",
        "profile ingestion, WPA, codegen, link and verify share one "
        "dependency-ordered schedule with critical-path-priority "
        "stealing, and per-function layouts memoize in the artifact "
        "cache, so a relink with an unchanged or lightly drifted "
        "profile re-does only the work the profile actually touched");

    // ---- Cross-process warm check (before this run overwrites the
    // cache image).
    bool persisted_loaded = false;
    double persisted_hit_rate = 0.0;
    std::vector<uint8_t> persisted_text;
    if (cache_path && fileExists(cache_path)) {
        EngineParams p;
        p.loadCache = cache_path;
        RunOutcome persisted = runEngine(p);
        persisted_loaded = persisted.cacheLoaded;
        persisted_hit_rate = persisted.layoutHitRate();
        persisted_text = std::move(persisted.text);
    }

    // ---- Cold engine comparison ----------------------------------------
    const char *save_path = cache_path;
    RunOutcome graph1 = runEngine({1, false});
    RunOutcome graph2 = runEngine({2, false});
    RunOutcome graph8 =
        runEngine({8, false, 8, nullptr, save_path, nullptr, trace_path});
    RunOutcome barrier = runEngine({8, true});

    bool bytes_identical = graph1.text == graph8.text &&
                           graph2.text == graph8.text &&
                           barrier.text == graph8.text;
    double ratio = graph8.lowerBoundSec > 0.0
                       ? graph8.modelMakespanSec / graph8.lowerBoundSec
                       : 1.0;
    double speedup = graph8.modelMakespanSec > 0.0
                         ? barrier.barrierSumSec / graph8.modelMakespanSec
                         : 0.0;

    std::printf("\n%s relink, %u tasks, 8 modelled workers:\n", kWorkload,
                graph8.tasks);
    std::printf("  %-26s %10.1f s\n", "critical path",
                graph8.criticalPathSec);
    std::printf("  %-26s %10.1f s\n", "lower bound",
                graph8.lowerBoundSec);
    std::printf("  %-26s %10.1f s  (%.3fx bound, gate <= %.2fx)\n",
                "task-graph makespan", graph8.modelMakespanSec, ratio,
                kRatioGate);
    std::printf("  %-26s %10.1f s  (%.2fx slower than task graph)\n",
                "barrier phase sum", barrier.barrierSumSec, speedup);
    std::printf("  %-26s %9.0f%%\n", "parallel efficiency",
                graph8.efficiency * 100.0);

    std::printf("\nphase overlap windows (modelled, would be disjoint "
                "under barriers):\n");
    for (const auto &[phase, win] : graph8.windows)
        std::printf("  %-16s [%7.1f, %7.1f] s\n", phase.c_str(),
                    win.startSec, win.endSec);
    std::vector<sched::TaskSpan> top = graph8.spans;
    std::sort(top.begin(), top.end(),
              [](const sched::TaskSpan &a, const sched::TaskSpan &b) {
                  return a.costSec > b.costSec;
              });
    std::printf("costliest tasks:\n");
    for (size_t i = 0; i < top.size() && i < 8; ++i)
        std::printf("  %-24s %7.2f s  [%7.1f, %7.1f]\n",
                    top[i].label.c_str(), top[i].costSec,
                    top[i].startSec, top[i].endSec);

    // Makespan vs. modelled workers: how each engine scales as the
    // build system grants more executors (EXPERIMENTS.md table).
    const uint32_t kWorkerSweep[] = {1, 2, 4, 8, 16};
    std::vector<double> sweep_graph, sweep_barrier;
    std::printf("\nmakespan vs modelled workers (graph vs barrier "
                "sum):\n  %-8s %12s %14s %8s\n", "workers",
                "task graph", "barrier sum", "speedup");
    for (uint32_t w : kWorkerSweep) {
        double g = w == 8 ? graph8.modelMakespanSec
                          : runEngine({8, false, w}).modelMakespanSec;
        double b = w == 8 ? barrier.barrierSumSec
                          : runEngine({8, true, w}).barrierSumSec;
        sweep_graph.push_back(g);
        sweep_barrier.push_back(b);
        std::printf("  %-8u %10.1f s %12.1f s %7.2fx\n", w, g, b,
                    g > 0.0 ? b / g : 0.0);
    }

    // ---- Warm rerun: the layout memoization tier ------------------------
    //
    // Re-run against the cold run's cache image at jobs {1, 2, 8}: every
    // per-function layout must hit (decode instead of Ext-TSP), every
    // codegen action must hit, and the shipped bytes must not move.
    const std::string tmp_cache =
        cache_path ? std::string(cache_path)
                   : std::string(out_path) + ".cache";
    if (!cache_path) {
        // The cold jobs=8 run only saved when --cache was given.
        EngineParams p;
        p.saveCache = tmp_cache.c_str();
        runEngine(p);
    }
    EngineParams warm_params;
    warm_params.loadCache = tmp_cache.c_str();
    warm_params.jobs = 1;
    RunOutcome warm1 = runEngine(warm_params);
    warm_params.jobs = 2;
    RunOutcome warm2 = runEngine(warm_params);
    warm_params.jobs = 8;
    RunOutcome warm8 = runEngine(warm_params);
    const uint64_t layout_functions =
        warm8.layoutHits + warm8.layoutMisses;
    bool warm_identical = warm1.text == graph8.text &&
                          warm2.text == graph8.text &&
                          warm8.text == graph8.text;
    bool warm_all_hits =
        warm8.layoutMisses == 0 && warm8.layoutHits > 0 &&
        warm1.layoutMisses == 0 && warm2.layoutMisses == 0;
    double cold_stage_work = graph8.layoutCodegenWorkSec();
    double warm_stage_work = warm8.layoutCodegenWorkSec();
    double warm_speedup = warm_stage_work > 0.0
                              ? cold_stage_work / warm_stage_work
                              : 0.0;

    std::printf("\nwarm rerun against the cold cache image:\n");
    std::printf("  %-26s %10llu / %llu\n", "layout hits (jobs=8)",
                static_cast<unsigned long long>(warm8.layoutHits),
                static_cast<unsigned long long>(layout_functions));
    std::printf("  %-26s %10.1f s cold -> %.1f s warm  (%.1fx, gate >= "
                "%.1fx)\n",
                "layout+codegen work", cold_stage_work, warm_stage_work,
                warm_speedup, kWarmSpeedupGate);
    std::printf("  %-26s %10.1f s  (cold %.1f s)\n", "warm makespan",
                warm8.modelMakespanSec, graph8.modelMakespanSec);
    std::printf("  byte-identical to cold at jobs {1,2,8}: %s\n",
                warm_identical ? "yes" : "NO");

    // ---- Drifted profile: only the drift misses -------------------------
    size_t drift_functions = 0;
    profile::Profile drifted;
    {
        workload::WorkloadConfig cfg = workload::configByName(kWorkload);
        cfg.jobs = 8;
        buildsys::Workflow ref(cfg);
        buildsys::BuildLimits limits;
        limits.workers = 8;
        ref.setBuildLimits(limits);
        drifted = makeDriftedProfile(ref.profile(), ref.metadataBinary(),
                                     &drift_functions);
    }
    EngineParams drift_warm_params;
    drift_warm_params.loadCache = tmp_cache.c_str();
    drift_warm_params.profileOverride = &drifted;
    RunOutcome drift_warm = runEngine(drift_warm_params);
    EngineParams drift_cold_params;
    drift_cold_params.profileOverride = &drifted;
    RunOutcome drift_cold = runEngine(drift_cold_params);

    bool drift_misses_exact =
        drift_functions > 0 &&
        drift_warm.layoutMisses == drift_functions &&
        drift_warm.layoutHits + drift_warm.layoutMisses ==
            layout_functions;
    bool drift_identical = drift_warm.text == drift_cold.text;
    std::printf("\ndrifted profile (%zu of %llu functions perturbed):\n",
                drift_functions,
                static_cast<unsigned long long>(layout_functions));
    std::printf("  %-26s %10llu  (expected %zu)\n", "layout misses",
                static_cast<unsigned long long>(drift_warm.layoutMisses),
                drift_functions);
    std::printf("  %-26s %10.3f\n", "layout hit rate",
                drift_warm.layoutHitRate());
    std::printf("  byte-identical to a cold drifted run: %s\n",
                drift_identical ? "yes" : "NO");

    std::printf("\nsteal efficiency (real execution, jobs=8 cold):\n");
    std::printf("  %-26s %llu / %llu  (%.3f hit rate)\n", "steals",
                static_cast<unsigned long long>(graph8.steals),
                static_cast<unsigned long long>(graph8.stealAttempts),
                graph8.stealHitRate);
    std::printf("  %-26s", "worker idle sec");
    for (double idle : graph8.workerIdleSec)
        std::printf(" %.3f", idle);
    std::printf("\n");

    std::printf("\nwall clock of the real relink (this machine):\n");
    std::printf("  jobs=1 %.2fs   jobs=2 %.2fs   jobs=8 %.2fs\n",
                graph1.wallSec, graph2.wallSec, graph8.wallSec);
    std::printf("\nartifacts byte-identical across jobs {1,2,8} and the "
                "barrier ablation: %s\n",
                bytes_identical ? "yes" : "NO");
    if (cache_path)
        std::printf("persisted cache image: %s (pre-existing image "
                    "loaded: %s, layout hit rate %.3f)\n",
                    cache_path, persisted_loaded ? "yes" : "no",
                    persisted_hit_rate);

    bool ratio_ok = ratio <= kRatioGate;
    bool beats_barrier =
        graph8.modelMakespanSec < barrier.barrierSumSec;
    bool warm_speedup_ok = warm_speedup >= kWarmSpeedupGate;
    bool persisted_ok =
        !persisted_loaded ||
        (persisted_hit_rate == 1.0 && persisted_text == graph8.text);

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"workload\": \"%s\",\n", kWorkload);
    std::fprintf(out, "  \"model_workers\": 8,\n");
    std::fprintf(out, "  \"tasks\": %u,\n", graph8.tasks);
    std::fprintf(out, "  \"critical_path_sec\": %.3f,\n",
                 graph8.criticalPathSec);
    std::fprintf(out, "  \"lower_bound_sec\": %.3f,\n",
                 graph8.lowerBoundSec);
    std::fprintf(out, "  \"makespan_sec\": %.3f,\n",
                 graph8.modelMakespanSec);
    std::fprintf(out, "  \"makespan_over_lower_bound\": %.4f,\n", ratio);
    std::fprintf(out, "  \"ratio_gate\": %.2f,\n", kRatioGate);
    std::fprintf(out, "  \"barrier_phase_sum_sec\": %.3f,\n",
                 barrier.barrierSumSec);
    std::fprintf(out, "  \"speedup_over_barrier\": %.4f,\n", speedup);
    std::fprintf(out, "  \"parallel_efficiency\": %.4f,\n",
                 graph8.efficiency);
    std::fprintf(out, "  \"wall_sec_jobs1\": %.4f,\n", graph1.wallSec);
    std::fprintf(out, "  \"wall_sec_jobs2\": %.4f,\n", graph2.wallSec);
    std::fprintf(out, "  \"wall_sec_jobs8\": %.4f,\n", graph8.wallSec);
    std::fprintf(out, "  \"steals_jobs8\": %llu,\n",
                 static_cast<unsigned long long>(graph8.steals));
    std::fprintf(out, "  \"steal_attempts_jobs8\": %llu,\n",
                 static_cast<unsigned long long>(graph8.stealAttempts));
    std::fprintf(out, "  \"steal_hit_rate_jobs8\": %.4f,\n",
                 graph8.stealHitRate);
    std::fprintf(out, "  \"worker_idle_sec_jobs8\": [");
    for (size_t i = 0; i < graph8.workerIdleSec.size(); ++i)
        std::fprintf(out, "%s%.4f", i ? ", " : "",
                     graph8.workerIdleSec[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"worker_sweep\": [1, 2, 4, 8, 16],\n");
    std::fprintf(out, "  \"sweep_graph_makespan_sec\": [");
    for (size_t i = 0; i < sweep_graph.size(); ++i)
        std::fprintf(out, "%s%.3f", i ? ", " : "", sweep_graph[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"sweep_barrier_makespan_sec\": [");
    for (size_t i = 0; i < sweep_barrier.size(); ++i)
        std::fprintf(out, "%s%.3f", i ? ", " : "", sweep_barrier[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"layout_functions\": %llu,\n",
                 static_cast<unsigned long long>(layout_functions));
    std::fprintf(out, "  \"warm_layout_hit_rate\": %.4f,\n",
                 warm8.layoutHitRate());
    std::fprintf(out, "  \"warm_layout_codegen_work_cold_sec\": %.3f,\n",
                 cold_stage_work);
    std::fprintf(out, "  \"warm_layout_codegen_work_warm_sec\": %.3f,\n",
                 warm_stage_work);
    std::fprintf(out, "  \"warm_stage_speedup\": %.4f,\n", warm_speedup);
    std::fprintf(out, "  \"warm_speedup_gate\": %.1f,\n",
                 kWarmSpeedupGate);
    std::fprintf(out, "  \"warm_makespan_sec\": %.3f,\n",
                 warm8.modelMakespanSec);
    std::fprintf(out, "  \"warm_bytes_identical\": %s,\n",
                 warm_identical ? "true" : "false");
    std::fprintf(out, "  \"drift_functions\": %zu,\n", drift_functions);
    std::fprintf(out, "  \"drift_layout_misses\": %llu,\n",
                 static_cast<unsigned long long>(
                     drift_warm.layoutMisses));
    std::fprintf(out, "  \"drift_layout_hit_rate\": %.4f,\n",
                 drift_warm.layoutHitRate());
    std::fprintf(out, "  \"drift_bytes_identical\": %s,\n",
                 drift_identical ? "true" : "false");
    std::fprintf(out, "  \"persisted_cache_loaded\": %s,\n",
                 persisted_loaded ? "true" : "false");
    std::fprintf(out, "  \"persisted_layout_hit_rate\": %.4f,\n",
                 persisted_hit_rate);
    std::fprintf(out, "  \"bytes_identical\": %s,\n",
                 bytes_identical ? "true" : "false");
    std::fprintf(out, "  \"ratio_within_gate\": %s,\n",
                 ratio_ok ? "true" : "false");
    std::fprintf(out, "  \"beats_barrier\": %s\n",
                 beats_barrier ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    bool failed = false;
    if (!bytes_identical) {
        std::printf("GATE FAILED: artifacts differ across engines or "
                    "worker counts\n");
        failed = true;
    }
    if (!ratio_ok) {
        std::printf("GATE FAILED: makespan is %.3fx the lower bound "
                    "(gate %.2fx)\n",
                    ratio, kRatioGate);
        failed = true;
    }
    if (!beats_barrier) {
        std::printf("GATE FAILED: task graph (%.1fs) does not beat the "
                    "barrier phase sum (%.1fs)\n",
                    graph8.modelMakespanSec, barrier.barrierSumSec);
        failed = true;
    }
    if (!warm_identical) {
        std::printf("GATE FAILED: warm rerun artifacts differ from the "
                    "cold run\n");
        failed = true;
    }
    if (!warm_all_hits) {
        std::printf("GATE FAILED: warm rerun missed the layout cache "
                    "(%llu misses)\n",
                    static_cast<unsigned long long>(
                        warm8.layoutMisses));
        failed = true;
    }
    if (!warm_speedup_ok) {
        std::printf("GATE FAILED: warm layout+codegen work only %.2fx "
                    "faster (gate %.1fx)\n",
                    warm_speedup, kWarmSpeedupGate);
        failed = true;
    }
    if (!drift_misses_exact) {
        std::printf("GATE FAILED: drifted run missed %llu layouts, "
                    "expected exactly %zu of %llu\n",
                    static_cast<unsigned long long>(
                        drift_warm.layoutMisses),
                    drift_functions,
                    static_cast<unsigned long long>(layout_functions));
        failed = true;
    }
    if (!drift_identical) {
        std::printf("GATE FAILED: drifted warm run differs from the "
                    "cold drifted run\n");
        failed = true;
    }
    if (!persisted_ok) {
        std::printf("GATE FAILED: persisted cache image served %.3f "
                    "layout hit rate (expected 1.0, identical bytes)\n",
                    persisted_hit_rate);
        failed = true;
    }
    return failed ? 1 : 0;
}
