/**
 * @file
 * Task-graph relink engine gate: on bigtable at 8 modelled workers the
 * work-stealing schedule must land within 1.15x of the critical-path
 * lower bound, beat the phase-barriered engine's summed makespan, and
 * ship byte-identical artifacts at every worker count and under the
 * barrier ablation.  Emits BENCH_taskgraph.json so CI tracks the
 * schedule-quality trajectory over time.
 *
 * Usage: bench_taskgraph [output.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common.h"
#include "sched/sched.h"

using namespace propeller;

namespace {

constexpr const char *kWorkload = "bigtable";
constexpr double kRatioGate = 1.15;

/** One engine run: shipped bytes, modelled schedule, relink wall clock. */
struct RunOutcome
{
    std::vector<uint8_t> text;
    double wallSec = 0.0;
    double modelMakespanSec = 0.0;
    double lowerBoundSec = 0.0;
    double criticalPathSec = 0.0;
    double efficiency = 0.0;
    uint64_t steals = 0;
    uint32_t tasks = 0;
    /** Barrier engine only: sum of the three relink phase makespans. */
    double barrierSumSec = 0.0;
    std::vector<sched::TaskSpan> spans;
    std::vector<std::pair<std::string, sched::ScheduleReport::Window>>
        windows;
};

RunOutcome
runEngine(unsigned jobs, bool barrier, uint32_t workers = 8)
{
    workload::WorkloadConfig cfg = workload::configByName(kWorkload);
    cfg.jobs = jobs;
    cfg.barrierScheduler = barrier;
    buildsys::Workflow wf(cfg);

    // The gate is specified at 8 workers; bigtable's distributed build
    // would otherwise model 40.
    buildsys::BuildLimits limits;
    limits.workers = workers;
    wf.setBuildLimits(limits);

    // Prime the serial upstream phases so the wall clock below times
    // the relink (WPA + codegen + link), not profile collection.
    wf.metadataBinary();
    wf.profile();

    auto t0 = std::chrono::steady_clock::now();
    RunOutcome out;
    out.text = wf.propellerBinary().text;
    auto t1 = std::chrono::steady_clock::now();
    out.wallSec = std::chrono::duration<double>(t1 - t0).count();

    if (barrier) {
        for (const char *phase :
             {"phase3.wpa", "phase4.codegen", "phase4.link"})
            out.barrierSumSec += wf.report(phase).makespanSec;
    } else {
        const sched::ScheduleReport &s = wf.relinkSchedule();
        out.modelMakespanSec = s.makespanSec;
        out.lowerBoundSec = s.lowerBoundSec;
        out.criticalPathSec = s.criticalPathSec;
        out.efficiency = s.parallelEfficiency;
        out.steals = s.steals;
        out.tasks = s.tasksExecuted;
        if (jobs == 8) {
            out.spans = s.spans;
            for (const char *phase :
                 {"phase3.wpa", "phase4.codegen", "phase4.link"})
                out.windows.push_back({phase, s.phaseWindow(phase)});
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_taskgraph.json";
    bench::printHeader(
        "BENCH taskgraph", "work-stealing relink vs phase barriers",
        "fine-grained task dependencies let codegen start the moment a "
        "module's last layout lands and verification overlap the link "
        "tail, so the relink makespan approaches the critical-path "
        "lower bound instead of the sum of phase barriers");

    RunOutcome graph1 = runEngine(1, false);
    RunOutcome graph2 = runEngine(2, false);
    RunOutcome graph8 = runEngine(8, false);
    RunOutcome barrier = runEngine(8, true);

    bool bytes_identical = graph1.text == graph8.text &&
                           graph2.text == graph8.text &&
                           barrier.text == graph8.text;
    double ratio = graph8.lowerBoundSec > 0.0
                       ? graph8.modelMakespanSec / graph8.lowerBoundSec
                       : 1.0;
    double speedup = graph8.modelMakespanSec > 0.0
                         ? barrier.barrierSumSec / graph8.modelMakespanSec
                         : 0.0;

    std::printf("\n%s relink, %u tasks, 8 modelled workers:\n", kWorkload,
                graph8.tasks);
    std::printf("  %-26s %10.1f s\n", "critical path",
                graph8.criticalPathSec);
    std::printf("  %-26s %10.1f s\n", "lower bound",
                graph8.lowerBoundSec);
    std::printf("  %-26s %10.1f s  (%.3fx bound, gate <= %.2fx)\n",
                "task-graph makespan", graph8.modelMakespanSec, ratio,
                kRatioGate);
    std::printf("  %-26s %10.1f s  (%.2fx slower than task graph)\n",
                "barrier phase sum", barrier.barrierSumSec, speedup);
    std::printf("  %-26s %9.0f%%\n", "parallel efficiency",
                graph8.efficiency * 100.0);

    std::printf("\nphase overlap windows (modelled, would be disjoint "
                "under barriers):\n");
    for (const auto &[phase, win] : graph8.windows)
        std::printf("  %-16s [%7.1f, %7.1f] s\n", phase.c_str(),
                    win.startSec, win.endSec);
    std::vector<sched::TaskSpan> top = graph8.spans;
    std::sort(top.begin(), top.end(),
              [](const sched::TaskSpan &a, const sched::TaskSpan &b) {
                  return a.costSec > b.costSec;
              });
    std::printf("costliest tasks:\n");
    for (size_t i = 0; i < top.size() && i < 8; ++i)
        std::printf("  %-24s %7.2f s  [%7.1f, %7.1f]\n",
                    top[i].label.c_str(), top[i].costSec,
                    top[i].startSec, top[i].endSec);
    // Makespan vs. modelled workers: how each engine scales as the
    // build system grants more executors (EXPERIMENTS.md table).
    const uint32_t kWorkerSweep[] = {1, 2, 4, 8, 16};
    std::vector<double> sweep_graph, sweep_barrier;
    std::printf("\nmakespan vs modelled workers (graph vs barrier "
                "sum):\n  %-8s %12s %14s %8s\n", "workers",
                "task graph", "barrier sum", "speedup");
    for (uint32_t w : kWorkerSweep) {
        double g = w == 8 ? graph8.modelMakespanSec
                          : runEngine(8, false, w).modelMakespanSec;
        double b = w == 8 ? barrier.barrierSumSec
                          : runEngine(8, true, w).barrierSumSec;
        sweep_graph.push_back(g);
        sweep_barrier.push_back(b);
        std::printf("  %-8u %10.1f s %12.1f s %7.2fx\n", w, g, b,
                    g > 0.0 ? b / g : 0.0);
    }

    std::printf("\nwall clock of the real relink (this machine):\n");
    std::printf("  jobs=1 %.2fs   jobs=2 %.2fs   jobs=8 %.2fs   "
                "(%llu steals at 8)\n",
                graph1.wallSec, graph2.wallSec, graph8.wallSec,
                static_cast<unsigned long long>(graph8.steals));
    std::printf("\nartifacts byte-identical across jobs {1,2,8} and the "
                "barrier ablation: %s\n",
                bytes_identical ? "yes" : "NO");

    bool ratio_ok = ratio <= kRatioGate;
    bool beats_barrier =
        graph8.modelMakespanSec < barrier.barrierSumSec;

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"workload\": \"%s\",\n", kWorkload);
    std::fprintf(out, "  \"model_workers\": 8,\n");
    std::fprintf(out, "  \"tasks\": %u,\n", graph8.tasks);
    std::fprintf(out, "  \"critical_path_sec\": %.3f,\n",
                 graph8.criticalPathSec);
    std::fprintf(out, "  \"lower_bound_sec\": %.3f,\n",
                 graph8.lowerBoundSec);
    std::fprintf(out, "  \"makespan_sec\": %.3f,\n",
                 graph8.modelMakespanSec);
    std::fprintf(out, "  \"makespan_over_lower_bound\": %.4f,\n", ratio);
    std::fprintf(out, "  \"ratio_gate\": %.2f,\n", kRatioGate);
    std::fprintf(out, "  \"barrier_phase_sum_sec\": %.3f,\n",
                 barrier.barrierSumSec);
    std::fprintf(out, "  \"speedup_over_barrier\": %.4f,\n", speedup);
    std::fprintf(out, "  \"parallel_efficiency\": %.4f,\n",
                 graph8.efficiency);
    std::fprintf(out, "  \"wall_sec_jobs1\": %.4f,\n", graph1.wallSec);
    std::fprintf(out, "  \"wall_sec_jobs2\": %.4f,\n", graph2.wallSec);
    std::fprintf(out, "  \"wall_sec_jobs8\": %.4f,\n", graph8.wallSec);
    std::fprintf(out, "  \"steals_jobs8\": %llu,\n",
                 static_cast<unsigned long long>(graph8.steals));
    std::fprintf(out, "  \"worker_sweep\": [1, 2, 4, 8, 16],\n");
    std::fprintf(out, "  \"sweep_graph_makespan_sec\": [");
    for (size_t i = 0; i < sweep_graph.size(); ++i)
        std::fprintf(out, "%s%.3f", i ? ", " : "", sweep_graph[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"sweep_barrier_makespan_sec\": [");
    for (size_t i = 0; i < sweep_barrier.size(); ++i)
        std::fprintf(out, "%s%.3f", i ? ", " : "", sweep_barrier[i]);
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"bytes_identical\": %s,\n",
                 bytes_identical ? "true" : "false");
    std::fprintf(out, "  \"ratio_within_gate\": %s,\n",
                 ratio_ok ? "true" : "false");
    std::fprintf(out, "  \"beats_barrier\": %s\n",
                 beats_barrier ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    if (!bytes_identical) {
        std::printf("GATE FAILED: artifacts differ across engines or "
                    "worker counts\n");
        return 1;
    }
    if (!ratio_ok) {
        std::printf("GATE FAILED: makespan is %.3fx the lower bound "
                    "(gate %.2fx)\n",
                    ratio, kRatioGate);
        return 1;
    }
    if (!beats_barrier) {
        std::printf("GATE FAILED: task graph (%.1fs) does not beat the "
                    "barrier phase sum (%.1fs)\n",
                    graph8.modelMakespanSec, barrier.barrierSumSec);
        return 1;
    }
    return 0;
}
