/**
 * @file
 * The section 3.5 extension experiment: profile-guided post-link software
 * prefetch insertion through the Propeller framework.
 *
 * The paper sketches the design ("the whole-program analysis of cache
 * miss profiles determine prefetch insertion points; a summary-based
 * directive can then drive the distributed code generation actions") but
 * does not evaluate it; this bench runs it end to end on Clang and MySQL
 * with the data-cache model enabled:
 *
 *   baseline -> Propeller layout -> Propeller layout + prefetching,
 *
 * reporting data-cache misses, data-stall cycles and total cycles, plus
 * the number of objects the prefetch directives actually touched (the
 * rest stay content-cache hits).
 */

#include "common.h"

using namespace propeller;

namespace {

void
section(const std::string &name)
{
    const workload::WorkloadConfig &cfg = workload::configByName(name);
    buildsys::Workflow &wf = bench::workflowFor(name);

    sim::MachineOptions opts = workload::evalOptions(cfg);
    opts.modelDataCache = true;

    sim::RunResult base = sim::run(wf.baseline(), opts);
    sim::RunResult layout = sim::run(wf.propellerBinary(), opts);
    core::PrefetchMap directives;
    linker::Executable pf_bin = wf.propellerBinaryWithPrefetch(&directives);
    sim::RunResult fetched = sim::run(pf_bin, opts);

    std::printf("\n-- %s (data-cache model enabled) --\n", name.c_str());
    Table table({"Binary", "Cycles", "Perf", "D-cache misses",
                 "Data stall cyc", "Prefetches"});
    auto row = [&](const char *label, const sim::RunResult &r) {
        table.addRow({label, formatCount(r.counters.cycles()),
                      formatPercentDelta(bench::improvement(base, r)),
                      formatCount(r.counters.dcacheMisses),
                      formatCount(r.counters.dataStallQC / 4),
                      formatCount(r.counters.prefetchesIssued)});
    };
    row("baseline", base);
    row("+ propeller layout", layout);
    row("+ layout + prefetch", fetched);
    std::printf("%s", table.render().c_str());

    const buildsys::PhaseReport &codegen = wf.report("prefetch.codegen");
    std::printf("directives: %zu load sites; codegen actions re-run: %u of "
                "%u (%u cache hits)\n",
                directives.size(), codegen.actions,
                codegen.actions + codegen.cacheHits, codegen.cacheHits);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Section 3.5 (extension)",
        "Profile-guided post-link software prefetch insertion",
        "sketched but not evaluated in the paper: miss-profile WPA + "
        "summary directives driving distributed codegen");
    section("clang");
    section("mysql");
    return 0;
}
