/**
 * @file
 * Regenerates the paper's section 5.4 SPEC2017 analysis: per-benchmark
 * performance deltas for Propeller and BOLT plus the branch / i-cache /
 * DSB effects.
 *
 * Expected shape: small wins and small regressions scattered around zero
 * (the paper reports 505.mcf regressing for both, ~1-6% swings overall),
 * with taken branches and i-cache misses down ~10-20% on average and DSB
 * behaviour the wildcard.
 */

#include "common.h"

using namespace propeller;

int
main()
{
    bench::printHeader(
        "Section 5.4", "SPEC2017 integer benchmarks",
        "BOLT +0.4% best / -6.3% worst; Propeller +1% best / -3.9% worst; "
        "taken branches -10%, icache misses -20% on average");

    Table table({"Benchmark", "Prop perf", "BOLT perf", "Prop taken",
                 "Prop l1i", "Prop DSB miss"});
    double taken_sum = 0.0;
    double icache_sum = 0.0;
    int rows = 0;
    for (const auto &cfg : workload::specConfigs()) {
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        sim::RunResult base = bench::evalRun(wf.baseline(), cfg);
        sim::RunResult prop = bench::evalRun(wf.propellerBinary(), cfg);
        bolt::BoltOptions bopts;
        bopts.lite = false;
        linker::Executable bo = wf.boltBinary(bopts);
        sim::RunResult bolted = bench::evalRun(bo, cfg);

        double taken = bench::reduction(base.counters.takenBranches,
                                        prop.counters.takenBranches);
        double icache = bench::reduction(base.counters.l1iMisses,
                                         prop.counters.l1iMisses);
        double dsb = bench::reduction(base.counters.dsbMisses,
                                      prop.counters.dsbMisses);
        taken_sum += taken;
        icache_sum += icache;
        ++rows;
        auto red = [](double r) {
            return formatFixed(-100.0 * r, 0) + "%";
        };
        table.addRow({cfg.name,
                      formatPercentDelta(bench::improvement(base, prop)),
                      formatPercentDelta(bench::improvement(base, bolted)),
                      red(taken), red(icache), red(dsb)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nAverage reductions with Propeller: taken branches "
                "%.0f%%, L1i misses %.0f%%\n(paper: ~10%% and ~20%%).\n",
                100.0 * taken_sum / rows, 100.0 * icache_sum / rows);
    return 0;
}
