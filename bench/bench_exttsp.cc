/**
 * @file
 * Ext-TSP solver bench: the incremental solver (delta gain scoring +
 * lazy-heap retrieval + windowed split sweep) against (a) the full-scan
 * reference retrieval, which must produce bit-identical layouts, and (b)
 * the legacy full-rescan evaluator at its historical maxSplitChainLen=96,
 * the solver as it shipped before incremental scoring.
 *
 * Emits BENCH_exttsp.json so CI tracks the trajectory, and exits nonzero
 * if a regression gate fails:
 *  - heap and reference retrieval disagree on any chain order or final
 *    score (they share scoring and tie-breaks, so equality is exact);
 *  - candidateEvals (edge scorings while evaluating candidate merges) is
 *    not reduced >= 3x vs the legacy evaluator on the largest workload;
 *  - no wall-clock win vs the legacy evaluator on the largest workload.
 *
 * Usage: bench_exttsp [output.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "propeller/ext_tsp.h"
#include "support/rng.h"

using namespace propeller;
using namespace propeller::core;

namespace {

/** Synthetic CFG shaped like merged function chains with cross calls. */
void
makeGraph(size_t n, std::vector<LayoutNode> &nodes,
          std::vector<LayoutEdge> &edges)
{
    Rng rng(n * 2654435761u + 5);
    nodes.resize(n);
    for (auto &node : nodes)
        node = {8 + rng.below(48), rng.below(1000)};
    edges.clear();
    // Chain backbone plus random cross edges (calls / branches).
    for (uint32_t i = 0; i + 1 < n; ++i) {
        if (rng.chance(0.8))
            edges.push_back({i, i + 1, 50 + rng.below(500)});
    }
    for (size_t i = 0; i < n * 2; ++i) {
        edges.push_back({static_cast<uint32_t>(rng.below(n)),
                         static_cast<uint32_t>(rng.below(n)),
                         1 + rng.below(200)});
    }
}

struct SolverRun
{
    std::vector<uint32_t> order;
    ExtTspStats stats;
    double wallMs = 0.0;
};

SolverRun
runSolver(const std::vector<LayoutNode> &nodes,
          const std::vector<LayoutEdge> &edges, const ExtTspOptions &opts,
          int reps)
{
    SolverRun run;
    std::vector<double> ms;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        run.order = extTspOrder(nodes, edges, 0, opts, &run.stats);
        auto t1 = std::chrono::steady_clock::now();
        ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(ms.begin(), ms.end());
    run.wallMs = ms[ms.size() / 2];
    return run;
}

struct SizeResult
{
    size_t n = 0;
    size_t edgeCount = 0;
    SolverRun incremental;
    SolverRun reference;
    SolverRun legacy;
    bool identical = false; ///< incremental == reference (order and score).
};

void
printVariant(const char *name, const SolverRun &run)
{
    std::printf("  %-12s %12llu evals %8llu merges %10llu pops "
                "%10llu stale %9.2f ms  score %.1f\n",
                name,
                static_cast<unsigned long long>(run.stats.candidateEvals),
                static_cast<unsigned long long>(run.stats.merges),
                static_cast<unsigned long long>(run.stats.heapPops),
                static_cast<unsigned long long>(run.stats.staleSkips),
                run.wallMs, run.stats.finalScore);
}

void
emitVariant(FILE *out, const char *name, const SolverRun &run,
            const char *suffix)
{
    std::fprintf(out,
                 "      \"%s\": {\"candidate_evals\": %llu, "
                 "\"merges\": %llu, \"heap_pops\": %llu, "
                 "\"stale_skips\": %llu, \"wall_ms\": %.3f, "
                 "\"score\": %.6f}%s\n",
                 name,
                 static_cast<unsigned long long>(run.stats.candidateEvals),
                 static_cast<unsigned long long>(run.stats.merges),
                 static_cast<unsigned long long>(run.stats.heapPops),
                 static_cast<unsigned long long>(run.stats.staleSkips),
                 run.wallMs, run.stats.finalScore, suffix);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_exttsp.json";
    bench::printHeader(
        "BENCH exttsp", "incremental Ext-TSP solver ablation",
        "the chain-merge loop scales to whole-program CFGs only with "
        "incremental gain maintenance and logarithmic-time retrieval");

    static const size_t kSizes[] = {64, 256, 1024, 4096};
    std::vector<SizeResult> results;

    for (size_t n : kSizes) {
        std::vector<LayoutNode> nodes;
        std::vector<LayoutEdge> edges;
        makeGraph(n, nodes, edges);

        SizeResult res;
        res.n = n;
        res.edgeCount = edges.size();

        ExtTspOptions incremental_opts; // Shipping configuration.
        ExtTspOptions reference_opts;
        reference_opts.referenceSolver = true;
        ExtTspOptions legacy_opts; // Pre-incremental solver as shipped.
        legacy_opts.legacyRescore = true;
        legacy_opts.maxSplitChainLen = 96;

        const int reps = n >= 4096 ? 3 : 5;
        res.incremental = runSolver(nodes, edges, incremental_opts, reps);
        res.reference = runSolver(nodes, edges, reference_opts, reps);
        res.legacy = runSolver(nodes, edges, legacy_opts,
                               n >= 4096 ? 1 : 3);
        res.identical =
            res.incremental.order == res.reference.order &&
            res.incremental.stats.finalScore ==
                res.reference.stats.finalScore;

        std::printf("\nn=%zu (%zu edges)\n", n, res.edgeCount);
        printVariant("incremental", res.incremental);
        printVariant("reference", res.reference);
        printVariant("legacy", res.legacy);
        std::printf("  heap vs reference: %s; evals vs legacy: %.2fx "
                    "fewer; score old->new: %.1f -> %.1f\n",
                    res.identical ? "identical layout and score"
                                  : "MISMATCH",
                    static_cast<double>(res.legacy.stats.candidateEvals) /
                        static_cast<double>(std::max<uint64_t>(
                            res.incremental.stats.candidateEvals, 1)),
                    res.legacy.stats.finalScore,
                    res.incremental.stats.finalScore);
        results.push_back(std::move(res));
    }

    const SizeResult &largest = results.back();
    double largest_reduction =
        static_cast<double>(largest.legacy.stats.candidateEvals) /
        static_cast<double>(
            std::max<uint64_t>(largest.incremental.stats.candidateEvals, 1));
    bool all_identical = true;
    for (const SizeResult &res : results)
        all_identical = all_identical && res.identical;
    bool evals_gate = largest_reduction >= 3.0;
    bool wall_gate = largest.incremental.wallMs < largest.legacy.wallMs;

    std::printf("\ngates: score identity %s; evals reduction %.2fx "
                "(need >= 3x) %s; wall win %s\n",
                all_identical ? "PASS" : "FAIL", largest_reduction,
                evals_gate ? "PASS" : "FAIL",
                wall_gate ? "PASS" : "FAIL");

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"sizes\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
        const SizeResult &res = results[i];
        std::fprintf(out, "    {\n      \"n\": %zu,\n      \"edges\": %zu,\n",
                     res.n, res.edgeCount);
        emitVariant(out, "incremental", res.incremental, ",");
        emitVariant(out, "reference", res.reference, ",");
        emitVariant(out, "legacy", res.legacy, ",");
        std::fprintf(out, "      \"heap_matches_reference\": %s,\n",
                     res.identical ? "true" : "false");
        std::fprintf(
            out, "      \"evals_reduction_vs_legacy\": %.3f\n    }%s\n",
            static_cast<double>(res.legacy.stats.candidateEvals) /
                static_cast<double>(std::max<uint64_t>(
                    res.incremental.stats.candidateEvals, 1)),
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"largest_evals_reduction\": %.3f,\n",
                 largest_reduction);
    std::fprintf(out, "  \"gate_score_identity\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(out, "  \"gate_evals_reduction_3x\": %s,\n",
                 evals_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_wall_win\": %s\n", wall_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    return (all_identical && evals_gate && wall_gate) ? 0 : 1;
}
