/**
 * @file
 * Google-benchmark microbenchmark for the Ext-TSP solver, ablating the
 * paper's section 4.7 scalability improvement: logarithmic-time retrieval
 * of the most profitable chain merge (lazy max-heap) vs. the vanilla
 * full-scan retrieval, on synthetic whole-program-like CFGs of growing
 * size.
 *
 * Expected shape: both produce the same layouts, but vanilla retrieval's
 * cost explodes with graph size ("the unmodified algorithm does not
 * scale with the size of whole program CFGs").
 */

#include <benchmark/benchmark.h>

#include "propeller/ext_tsp.h"
#include "support/rng.h"

using namespace propeller;
using namespace propeller::core;

namespace {

/** Synthetic CFG shaped like merged function chains with cross calls. */
void
makeGraph(size_t n, std::vector<LayoutNode> &nodes,
          std::vector<LayoutEdge> &edges)
{
    Rng rng(n * 2654435761u + 5);
    nodes.resize(n);
    for (auto &node : nodes)
        node = {8 + rng.below(48), rng.below(1000)};
    edges.clear();
    // Chain backbone plus random cross edges (calls / branches).
    for (uint32_t i = 0; i + 1 < n; ++i) {
        if (rng.chance(0.8))
            edges.push_back({i, i + 1, 50 + rng.below(500)});
    }
    for (size_t i = 0; i < n * 2; ++i) {
        edges.push_back({static_cast<uint32_t>(rng.below(n)),
                         static_cast<uint32_t>(rng.below(n)),
                         1 + rng.below(200)});
    }
}

void
BM_ExtTspLazyHeap(benchmark::State &state)
{
    std::vector<LayoutNode> nodes;
    std::vector<LayoutEdge> edges;
    makeGraph(state.range(0), nodes, edges);
    ExtTspOptions opts;
    opts.useLazyHeap = true;
    ExtTspStats stats;
    for (auto _ : state) {
        auto order = extTspOrder(nodes, edges, 0, opts, &stats);
        benchmark::DoNotOptimize(order);
    }
    state.counters["retrievals"] = static_cast<double>(stats.retrievals);
    state.counters["score"] = stats.finalScore;
}

void
BM_ExtTspVanillaScan(benchmark::State &state)
{
    std::vector<LayoutNode> nodes;
    std::vector<LayoutEdge> edges;
    makeGraph(state.range(0), nodes, edges);
    ExtTspOptions opts;
    opts.useLazyHeap = false;
    ExtTspStats stats;
    for (auto _ : state) {
        auto order = extTspOrder(nodes, edges, 0, opts, &stats);
        benchmark::DoNotOptimize(order);
    }
    state.counters["retrievals"] = static_cast<double>(stats.retrievals);
    state.counters["score"] = stats.finalScore;
}

} // namespace

BENCHMARK(BM_ExtTspLazyHeap)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK(BM_ExtTspVanillaScan)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

BENCHMARK_MAIN();
