/**
 * @file
 * Chaos-hardening gate for the continuous-profiling fleet service: run
 * the deployment loop under a seeded storm of transport and relink
 * faults and check that nothing silently degrades.
 *
 * Scenario A (transport storm): epochs 0-5 drop, duplicate, delay,
 * corrupt and reorder wire shards; the run then drains long enough for
 * every delayed shard to land and every batch gap to cross the lag
 * horizon.  Scenario B (relink blackout): every relink attempt in a
 * two-epoch window crashes, forcing retry exhaustion, quarantine and
 * last-good serving until the window passes.  Scenario C (torn cache):
 * the journaled cache save is crashed at every byte-boundary class and
 * the service restarted over the debris.
 *
 * Emits BENCH_chaos.json and exits nonzero if a gate fails:
 *  - gate_detection_exact: the service's detection counters equal the
 *    chaos schedule's injected ground truth per fault class — losses ==
 *    drops, dedupes == duplicates, rejects == corruptions, late +
 *    expired == delays, inversions == inversions;
 *  - gate_convergence_identical: after the decay window outlives the
 *    chaos epochs, a relink ships bytes identical to a chaos-free twin
 *    (the storm perturbs the transient mix, never the converged one);
 *  - gate_lastgood_stable: during quarantine the served artifact stays
 *    byte-identical to the last verifier-clean generation, the
 *    generation stamp does not advance, and the service reports
 *    degraded mode;
 *  - gate_recovery: once the blackout lifts, the per-epoch re-attempt
 *    ships a verifier-clean artifact, bumps the generation, and clears
 *    degraded mode;
 *  - gate_torn_cache: every crashed save leaves either the previous
 *    good image (which still loads, generation intact) or a detectable
 *    torn image (which cold-starts cleanly) — never a corrupt load;
 *  - zero aborts anywhere (the process exiting through main *is* the
 *    gate: every fault path above is a counted Status path, not a
 *    crash).
 *
 * Usage: bench_chaos [output.json]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "build/journal.h"
#include "build/workflow.h"
#include "common.h"
#include "faultinject/chaos.h"
#include "linker/executable.h"
#include "service/fleet.h"
#include "workload/workload.h"

using namespace propeller;

namespace {

workload::WorkloadConfig
chaosAppConfig()
{
    workload::WorkloadConfig cfg;
    cfg.name = "chaosapp";
    cfg.seed = 2027;
    cfg.modules = 8;
    cfg.functions = 48;
    cfg.hotFunctions = 14;
    cfg.profileInstructions = 200'000;
    cfg.evalInstructions = 200'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

fleet::FleetOptions
chaosFleetOptions(const std::string &cache)
{
    fleet::FleetOptions fo;
    fo.base = chaosAppConfig();
    fo.machines = 6;
    fo.versions = 3;
    fo.shardSamples = 8; // Multi-shard batches: drop-able streams.
    fo.cachePath = cache;
    std::remove(cache.c_str());
    return fo;
}

/** Fail every relink attempt while armed. */
class Blackout : public fleet::FleetChaosHooks
{
  public:
    bool armed = false;
    uint64_t failures = 0;

    bool
    failRelink(uint32_t, uint32_t) override
    {
        if (armed)
            ++failures;
        return armed;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_chaos.json";
    bench::printHeader(
        "BENCH chaos", "fleet-service chaos hardening",
        "a warehouse-scale profiling pipeline tolerates lossy, lagging, "
        "corrupting transport and relink crashes: every fault is "
        "detected and attributed, the served binary is always a "
        "verifier-clean generation, and the steady state converges to "
        "the fault-free artifact");

    // --- Scenario A: transport storm, then drain -----------------------
    faultinject::ChaosSpec spec;
    spec.seed = 424242;
    spec.dropRate = 0.12;
    spec.dupRate = 0.10;
    spec.delayRate = 0.15;
    spec.corruptRate = 0.08;
    spec.reorderRate = 0.30;
    spec.maxDelayEpochs = 2;
    spec.chaosStartEpoch = 0;
    spec.chaosEndEpoch = 5;
    faultinject::ChaosSchedule storm(spec);

    fleet::FleetOptions fo = chaosFleetOptions("BENCH_chaos_a.cache");
    const uint32_t drain = spec.maxDelayEpochs + fo.decayWindow;
    const uint32_t epochs = spec.chaosEndEpoch + 1 + drain;
    fleet::FleetService svc(std::move(fo));
    svc.setChaosHooks(&storm);
    svc.run(epochs);

    const faultinject::ChaosStats &inj = storm.stats();
    const fleet::FaultDetection &det = svc.detection();
    std::printf("\ntransport storm (%u chaos epochs + %u drain):\n",
                spec.chaosEndEpoch + 1, drain);
    std::printf("  %-12s %10s %10s\n", "fault class", "injected",
                "detected");
    auto row = [](const char *name, uint64_t injected,
                  uint64_t detected) {
        std::printf("  %-12s %10llu %10llu %s\n", name,
                    static_cast<unsigned long long>(injected),
                    static_cast<unsigned long long>(detected),
                    injected == detected ? "" : "  <-- MISMATCH");
    };
    row("dropped", inj.shardsDropped, det.losses);
    row("duplicated", inj.shardsDuplicated, det.duplicates);
    row("corrupted", inj.shardsCorrupted, det.corrupt);
    row("delayed", inj.shardsDelayed, det.late + det.expired);
    row("inversions", inj.arrivalInversions, det.inversions);
    bool detection_gate =
        inj.shardsSeen > 0 && inj.shardsDropped > 0 &&
        inj.shardsDuplicated > 0 && inj.shardsDelayed > 0 &&
        inj.shardsCorrupted > 0 && det.losses == inj.shardsDropped &&
        det.duplicates == inj.shardsDuplicated &&
        det.corrupt == inj.shardsCorrupted &&
        det.late + det.expired == inj.shardsDelayed &&
        det.inversions == inj.arrivalInversions;

    uint32_t lag_peak = 0;
    for (const fleet::EpochStats &es : svc.history())
        lag_peak = std::max(lag_peak, es.shardLagPeak);
    detection_gate = detection_gate && lag_peak == inj.maxDelayInjected;
    std::printf("  lag peak %u epoch(s), max delay injected %u\n",
                lag_peak, inj.maxDelayInjected);

    // Post-chaos convergence: the drained mix holds only clean epochs,
    // so a relink must ship the chaos-free twin's bytes.
    svc.relinkNow();
    fleet::FleetService twin(chaosFleetOptions("BENCH_chaos_b.cache"));
    twin.run(epochs);
    twin.relinkNow();
    bool convergence_gate =
        svc.shippedBinary().text == twin.shippedBinary().text &&
        svc.shippedBinary().identityHash ==
            twin.shippedBinary().identityHash;
    std::printf("  post-chaos relink byte-identical to chaos-free twin: "
                "%s\n",
                convergence_gate ? "PASS" : "FAIL");

    // --- Scenario B: relink blackout, quarantine, recovery -------------
    fleet::FleetOptions bo = chaosFleetOptions("BENCH_chaos_q.cache");
    bo.driftThreshold = 2.0; // Relinks fire only when forced/pending.
    const uint32_t retries = bo.maxRelinkRetries;
    Blackout blackout;
    fleet::FleetService qsvc(std::move(bo));
    qsvc.setChaosHooks(&blackout);

    qsvc.stepEpoch();
    qsvc.relinkNow(); // Generation 1: the last-good artifact.
    bool lastgood_gate = qsvc.generation() == 1 && !qsvc.degraded() &&
                         qsvc.relinks().back().verifierClean;
    const linker::Executable lastGood = qsvc.shippedBinary();

    blackout.armed = true;
    qsvc.stepEpoch();
    qsvc.relinkNow(); // Exhausts 1 + retries attempts, quarantines.
    const fleet::RelinkRecord &qrec = qsvc.relinks().back();
    lastgood_gate = lastgood_gate && qrec.quarantined &&
                    !qrec.verifierClean &&
                    qrec.attempts == 1 + retries &&
                    qsvc.degraded() && qsvc.generation() == 1 &&
                    qsvc.shippedBinary().text == lastGood.text &&
                    qsvc.shippedBinary().identityHash ==
                        lastGood.identityHash;
    std::printf("\nrelink blackout:\n");
    std::printf("  quarantined after %u failed attempt(s), backoff %.0fs, "
                "serving generation %llu degraded=%d: %s\n",
                qrec.failedAttempts, qrec.backoffSec,
                static_cast<unsigned long long>(qsvc.generation()),
                qsvc.degraded() ? 1 : 0,
                lastgood_gate ? "PASS" : "FAIL");

    // Blackout persists one more epoch: the re-attempt fails again and
    // the last-good keeps serving.
    qsvc.stepEpoch();
    lastgood_gate = lastgood_gate && qsvc.degraded() &&
                    qsvc.generation() == 1 &&
                    qsvc.relinks().back().quarantined &&
                    qsvc.shippedBinary().text == lastGood.text;
    uint32_t recovery_epochs = 1;

    // Lift it: the next epoch's pending re-attempt ships clean.
    blackout.armed = false;
    qsvc.stepEpoch();
    ++recovery_epochs;
    const fleet::RelinkRecord &rrec = qsvc.relinks().back();
    bool recovery_gate = !qsvc.degraded() && qsvc.generation() == 2 &&
                         !rrec.quarantined && rrec.verifierClean &&
                         qsvc.history().back().relinkRetried;
    std::printf("  recovery after blackout lift: generation %llu, "
                "verifier clean, %u epoch(s) degraded: %s\n",
                static_cast<unsigned long long>(qsvc.generation()),
                recovery_epochs, recovery_gate ? "PASS" : "FAIL");

    // --- Scenario C: torn-cache crash sweep -----------------------------
    const std::string cpath = "BENCH_chaos_torn.cache";
    std::remove(cpath.c_str());
    workload::WorkloadConfig ccfg = chaosAppConfig();
    buildsys::Workflow seedwf(ccfg);
    seedwf.propellerBinary();
    bool torn_gate = seedwf.saveCacheFile(cpath, /*generation=*/1);

    std::vector<uint8_t> good;
    torn_gate = torn_gate && buildsys::readFile(cpath, good);
    const std::vector<uint8_t> next = buildsys::encodeJournal(2, good);
    uint32_t crash_points = 0;
    if (torn_gate) {
        // Crash the overwrite at every boundary class: mid-header,
        // strided through the payload, mid-footer, and written in full
        // but never renamed.
        std::vector<long> crashes;
        for (size_t b = 0; b <= buildsys::kJournalHeaderBytes; ++b)
            crashes.push_back(static_cast<long>(b));
        for (size_t b = buildsys::kJournalHeaderBytes; b < next.size();
             b += 97)
            crashes.push_back(static_cast<long>(b));
        for (size_t b = next.size() - buildsys::kJournalFooterBytes;
             b <= next.size(); ++b)
            crashes.push_back(static_cast<long>(b));
        for (long crash : crashes) {
            ++crash_points;
            if (buildsys::atomicWriteFile(cpath, next, crash)) {
                torn_gate = false; // A crashed write must report so.
                break;
            }
            buildsys::Workflow survivor(ccfg);
            uint64_t gen = 0;
            if (!survivor.loadCacheFile(cpath, &gen) || gen != 1) {
                torn_gate = false;
                break;
            }
        }
    }
    // A deliberately torn image at the destination cold-starts cleanly.
    if (torn_gate) {
        std::vector<uint8_t> torn(good.begin(),
                                  good.begin() + good.size() / 2);
        torn_gate = buildsys::atomicWriteFile(cpath, torn);
        buildsys::Workflow cold(ccfg);
        uint64_t gen = 77;
        torn_gate = torn_gate && !cold.loadCacheFile(cpath, &gen) &&
                    gen == 77;
        cold.propellerBinary();
        torn_gate = torn_gate && cold.saveCacheFile(cpath, 3);
        buildsys::Workflow reread(ccfg);
        uint64_t gen2 = 0;
        torn_gate = torn_gate && reread.loadCacheFile(cpath, &gen2) &&
                    gen2 == 3;
    }
    std::printf("\ntorn-cache sweep: %u crash point(s), cold-start over "
                "debris: %s\n",
                crash_points, torn_gate ? "PASS" : "FAIL");
    std::remove(cpath.c_str());
    std::remove((cpath + ".tmp").c_str());

    FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::printf("cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"workload\": \"%s\",\n",
                 chaosAppConfig().name.c_str());
    std::fprintf(out, "  \"chaos_epochs\": %u,\n",
                 spec.chaosEndEpoch + 1);
    std::fprintf(out, "  \"drain_epochs\": %u,\n", drain);
    std::fprintf(out, "  \"shards_seen\": %llu,\n",
                 static_cast<unsigned long long>(inj.shardsSeen));
    std::fprintf(out, "  \"injected_dropped\": %llu,\n",
                 static_cast<unsigned long long>(inj.shardsDropped));
    std::fprintf(out, "  \"detected_losses\": %llu,\n",
                 static_cast<unsigned long long>(det.losses));
    std::fprintf(out, "  \"injected_duplicated\": %llu,\n",
                 static_cast<unsigned long long>(inj.shardsDuplicated));
    std::fprintf(out, "  \"detected_duplicates\": %llu,\n",
                 static_cast<unsigned long long>(det.duplicates));
    std::fprintf(out, "  \"injected_corrupted\": %llu,\n",
                 static_cast<unsigned long long>(inj.shardsCorrupted));
    std::fprintf(out, "  \"detected_corrupt\": %llu,\n",
                 static_cast<unsigned long long>(det.corrupt));
    std::fprintf(out, "  \"injected_delayed\": %llu,\n",
                 static_cast<unsigned long long>(inj.shardsDelayed));
    std::fprintf(out, "  \"detected_late\": %llu,\n",
                 static_cast<unsigned long long>(det.late));
    std::fprintf(out, "  \"detected_expired\": %llu,\n",
                 static_cast<unsigned long long>(det.expired));
    std::fprintf(out, "  \"inversions\": %llu,\n",
                 static_cast<unsigned long long>(det.inversions));
    std::fprintf(out, "  \"lag_peak_epochs\": %u,\n", lag_peak);
    std::fprintf(out, "  \"relink_failures\": %llu,\n",
                 static_cast<unsigned long long>(blackout.failures));
    std::fprintf(out, "  \"degraded_epochs\": %u,\n", recovery_epochs);
    std::fprintf(out, "  \"torn_cache_crash_points\": %u,\n",
                 crash_points);
    std::fprintf(out, "  \"gate_detection_exact\": %s,\n",
                 detection_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_convergence_identical\": %s,\n",
                 convergence_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_lastgood_stable\": %s,\n",
                 lastgood_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_recovery\": %s,\n",
                 recovery_gate ? "true" : "false");
    std::fprintf(out, "  \"gate_torn_cache\": %s\n",
                 torn_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    std::remove("BENCH_chaos_a.cache");
    std::remove("BENCH_chaos_b.cache");
    std::remove("BENCH_chaos_q.cache");

    return (detection_gate && convergence_gate && lastgood_gate &&
            recovery_gate && torn_gate)
               ? 0
               : 1;
}
