/**
 * @file
 * Regenerates paper Table 5: build-phase wall times (in minutes) for the
 * warehouse-scale applications — the instrumented-PGO pipeline (build,
 * profile, optimized build) followed by the Propeller phases (profile,
 * convert/WPA, optimized relink).
 *
 * Expected shape: the mundane parts (load tests, full builds) dwarf the
 * Propeller-specific steps; convert+relink stay a small fraction (~18%)
 * of the whole.
 */

#include "common.h"

using namespace propeller;

int
main()
{
    bench::printHeader(
        "Table 5", "Build phase times (modelled minutes)",
        "Propeller extends release pipelines ~78% on average, but its own "
        "optimization steps are ~18% of the total");

    Table table({"Benchmark", "PGO Instr.", "PGO Profile", "PGO Opt.",
                 "Prop Profile", "Prop Convert", "Prop Opt.",
                 "(paper row)"});

    const std::map<std::string, std::string> paper = {
        {"spanner", "7/48/17 | 45/3/9"},
        {"search", "10/8/10 | 8/2/16"},
        {"superroot", "23/37/36 | 18/3/15"},
        {"bigtable", "9/30/13 | 43/18/10"},
    };

    double total_all = 0.0;
    double total_prop_steps = 0.0;
    for (const auto &cfg : workload::appConfigs()) {
        if (!cfg.distributedBuild)
            continue;
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        buildsys::PhaseReport instr = wf.instrumentedBuildReport();
        wf.baseline();
        wf.propellerBinary();

        double pgo_opt = wf.report("phase2.codegen").makespanMinutes() +
                         wf.report("baseline.link").makespanMinutes();
        double convert = wf.report("phase3.wpa").makespanMinutes();
        double prop_opt = wf.report("phase4.codegen").makespanMinutes() +
                          wf.report("phase4.link").makespanMinutes();

        auto m = [](double v) { return formatFixed(v, 0); };
        table.addRow({cfg.name, m(instr.makespanMinutes()),
                      m(cfg.pgoTrainMinutes), m(pgo_opt),
                      m(cfg.propTrainMinutes), m(convert), m(prop_opt),
                      paper.at(cfg.name)});

        total_all += instr.makespanMinutes() + cfg.pgoTrainMinutes +
                     pgo_opt + cfg.propTrainMinutes + convert + prop_opt;
        total_prop_steps += convert + prop_opt;
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPropeller-specific steps (convert + opt) are %.0f%% of "
                "the end-to-end pipeline\n(paper: ~18%%).\n",
                100.0 * total_prop_steps / total_all);
    return 0;
}
