/**
 * @file
 * Regenerates paper Figure 9: optimization run time — Propeller Phase 4
 * (backends + relink) vs. BOLT's llvm-bolt rewrite vs. the baseline
 * build (backends + link), normalized to the baseline.
 *
 * Expected shape: on developer workstations (Clang, MySQL, SPEC) BOLT is
 * fastest (Propeller pays for re-running backends); on the distributed
 * build system the order flips — Propeller's relink is ~35% cheaper than
 * the baseline (cold objects are cache hits) and far cheaper than BOLT's
 * monolithic processing.
 */

#include "common.h"

using namespace propeller;

namespace {

void
section(const std::vector<workload::WorkloadConfig> &configs,
        const char *label)
{
    std::printf("\n-- %s --\n", label);
    Table table({"Benchmark", "Base backends", "Base link",
                 "Prop backends", "Prop relink", "BOLT", "Prop total %",
                 "BOLT total %"});
    for (const auto &cfg : configs) {
        buildsys::Workflow &wf = bench::workflowFor(cfg.name);
        wf.baseline();
        wf.propellerBinary();
        wf.boltBinary();

        double base_cg = wf.report("phase2.codegen").makespanSec;
        double base_ld = wf.report("baseline.link").makespanSec;
        double prop_cg = wf.report("phase4.codegen").makespanSec;
        double prop_ld = wf.report("phase4.link").makespanSec;
        double bolt_t = wf.report("bolt.opt").makespanSec;
        double base = base_cg + base_ld;

        auto s = [](double v) { return formatFixed(v, 0) + "s"; };
        table.addRow(
            {cfg.name, s(base_cg), s(base_ld), s(prop_cg), s(prop_ld),
             s(bolt_t),
             formatFixed(100.0 * (prop_cg + prop_ld) / base, 0) + "%",
             formatFixed(100.0 * bolt_t / base, 0) + "%"});
    }
    std::printf("%s", table.render().c_str());
}

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 9", "Optimization run time (normalized to baseline build)",
        "workstation: BOLT fastest, Propeller backend-bound; distributed: "
        "Propeller ~35% below baseline and ~62% faster than BOLT");

    std::vector<workload::WorkloadConfig> workstation;
    std::vector<workload::WorkloadConfig> distributed;
    for (const auto &cfg : workload::appConfigs()) {
        (cfg.distributedBuild ? distributed : workstation).push_back(cfg);
    }
    for (const auto &cfg : workload::specConfigs())
        workstation.push_back(cfg);

    section(distributed, "distributed build system (L)");
    section(workstation, "developer workstation (R: Clang, MySQL, SPEC)");
    return 0;
}
