/**
 * @file
 * Unit tests for the linker: symbol ordering, relocation resolution, the
 * relaxation pass (fall-through deletion and branch shrinking), metadata
 * handling and integrity-check generation.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "linker/linker.h"
#include "test_util.h"

namespace propeller::linker {
namespace {

std::vector<elf::ObjectFile>
compiled(const ir::Program &program, codegen::Options copts = {})
{
    return codegen::compileProgram(program, copts);
}

Options
baseOptions()
{
    Options opts;
    opts.entrySymbol = "main";
    return opts;
}

TEST(Linker, ResolvesSymbolsAndEntry)
{
    ir::Program program = test::tinyProgram();
    Executable exe = link(compiled(program), baseOptions());

    const FuncRange *main_range = exe.findSymbol("main");
    ASSERT_NE(main_range, nullptr);
    EXPECT_EQ(exe.entryAddress, main_range->start);
    EXPECT_TRUE(main_range->isPrimary);
    ASSERT_NE(exe.findSymbol("work"), nullptr);
    EXPECT_EQ(exe.findSymbol("ghost"), nullptr);
    EXPECT_GE(exe.textBase, 0x400000u);
    EXPECT_FALSE(exe.text.empty());
}

TEST(Linker, SymbolOrderControlsLayout)
{
    ir::Program program = test::tinyProgram();
    Options opts = baseOptions();
    opts.symbolOrder = {"main", "work"};
    Executable a = link(compiled(program), opts);
    opts.symbolOrder = {"work", "main"};
    Executable b = link(compiled(program), opts);

    EXPECT_LT(a.findSymbol("main")->start, a.findSymbol("work")->start);
    EXPECT_LT(b.findSymbol("work")->start, b.findSymbol("main")->start);
}

TEST(Linker, UnknownOrderEntriesIgnored)
{
    ir::Program program = test::tinyProgram();
    Options opts = baseOptions();
    opts.symbolOrder = {"nonexistent", "work"};
    Executable exe = link(compiled(program), opts);
    EXPECT_LT(exe.findSymbol("work")->start, exe.findSymbol("main")->start);
}

/** Decode every instruction of every non-hand-asm symbol range. */
void
verifyDecodable(const Executable &exe)
{
    for (const auto &sym : exe.symbols) {
        if (sym.isHandAsm)
            continue;
        uint64_t pc = sym.start;
        while (pc < sym.end) {
            auto inst = isa::decode(exe.text.data() + (pc - exe.textBase),
                                    sym.end - pc);
            ASSERT_TRUE(inst.has_value())
                << "undecodable byte at " << std::hex << pc << " in "
                << sym.name;
            // Branch targets must land inside the image.
            if (inst->isCondBranch() || inst->isUncondBranch() ||
                inst->isCall()) {
                uint64_t target =
                    pc + inst->size() + static_cast<int64_t>(inst->rel);
                EXPECT_TRUE(exe.containsText(target))
                    << "wild branch at " << std::hex << pc;
            }
            pc += inst->size();
        }
    }
}

TEST(Linker, AllInstructionsDecodableAndTargetsInImage)
{
    ir::Program program = test::tinyProgram();
    Executable exe = link(compiled(program), baseOptions());
    verifyDecodable(exe);
}

TEST(LinkerRelax, ShrinksShortRangeBranches)
{
    ir::Program program = test::tinyProgram();
    LinkStats stats;
    Options opts = baseOptions();
    link(compiled(program), opts, &stats);
    EXPECT_GT(stats.branchesShrunk, 0u)
        << "tiny program branches all fit in rel8";

    opts.relax = false;
    link(compiled(program), opts, &stats);
    EXPECT_EQ(stats.branchesShrunk, 0u);
    EXPECT_EQ(stats.fallThroughsDeleted, 0u);
}

TEST(LinkerRelax, DeletesFallThroughJumpsInAllBlockSections)
{
    // One section per block keeps original order at link time, so every
    // explicit fall-through jump whose target follows it is deletable.
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::All;
    LinkStats stats;
    Executable exe = link(compiled(program, copts), baseOptions(), &stats);
    EXPECT_GT(stats.fallThroughsDeleted, 0u);
    verifyDecodable(exe);
}

TEST(LinkerRelax, RelaxedBinaryIsSmaller)
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::All;
    Options opts = baseOptions();
    Executable relaxed = link(compiled(program, copts), opts);
    opts.relax = false;
    Executable fat = link(compiled(program, copts), opts);
    EXPECT_LT(relaxed.text.size(), fat.text.size());
}

TEST(LinkerRelax, ConvergesWithinIterationCap)
{
    ir::Program program = test::tinyProgram();
    LinkStats stats;
    link(compiled(program), baseOptions(), &stats);
    EXPECT_LE(stats.relaxIterations, 8u);
    EXPECT_GE(stats.relaxIterations, 2u);
}

TEST(Linker, BbAddrMapHasAbsoluteContiguousBlocks)
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    Executable exe = link(compiled(program, copts), baseOptions());

    ASSERT_EQ(exe.bbAddrMap.size(), 2u);
    for (const auto &map : exe.bbAddrMap) {
        const FuncRange *range = exe.findSymbol(map.function);
        ASSERT_NE(range, nullptr);
        for (const auto &block : map.blocks) {
            EXPECT_GE(block.address, range->start);
            EXPECT_LE(block.address + block.size, range->end);
        }
    }
}

TEST(Linker, AddrMapsDroppedWithoutMetadataSection)
{
    ir::Program program = test::tinyProgram();
    Executable exe = link(compiled(program), baseOptions());
    EXPECT_TRUE(exe.bbAddrMap.empty())
        << "no .bb_addr_map sections -> no executable map";
}

TEST(Linker, DropAddrMapsOfColdObjects)
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    auto objects = compiled(program, copts);

    std::set<std::string> cold = {"tiny_mod.o"};
    Options opts = baseOptions();
    opts.dropAddrMapsOf = &cold;
    Executable exe = link(objects, opts);
    EXPECT_TRUE(exe.bbAddrMap.empty());
    EXPECT_EQ(exe.sizes.bbAddrMap, 0u);

    Options keep = baseOptions();
    Executable exe2 = link(objects, keep);
    EXPECT_GT(exe2.sizes.bbAddrMap, 0u);
    EXPECT_FALSE(exe2.bbAddrMap.empty());
}

TEST(Linker, EmitRelocsCountsRelaSizes)
{
    ir::Program program = test::tinyProgram();
    auto objects = compiled(program);
    Options opts = baseOptions();
    Executable plain = link(objects, opts);
    EXPECT_EQ(plain.sizes.relocs, 0u);

    opts.emitRelocs = true;
    Executable bm = link(objects, opts);
    EXPECT_GT(bm.sizes.relocs, 0u);
    EXPECT_EQ(bm.sizes.relocs % elf::kRelaEntrySize, 0u);
    EXPECT_EQ(bm.text, plain.text) << "relocs do not change the image";
}

TEST(Linker, HugePagesAlignBase)
{
    ir::Program program = test::tinyProgram();
    Options opts = baseOptions();
    opts.hugePagesText = true;
    Executable exe = link(compiled(program), opts);
    EXPECT_TRUE(exe.hugePagesText);
    EXPECT_EQ(exe.textBase % (2ull * 1024 * 1024), 0u);
}

TEST(Linker, IntegrityChecksHashPrimaryRanges)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->functions[0]->hasIntegrityCheck = true;
    Executable exe = link(compiled(program), baseOptions());
    ASSERT_EQ(exe.integrityChecks.size(), 1u);
    EXPECT_EQ(exe.integrityChecks[0].function, "work");
    EXPECT_NE(exe.integrityChecks[0].expectedHash, 0u);

    // Different layouts produce different hashes (same function content).
    Options opts = baseOptions();
    opts.symbolOrder = {"main", "work"};
    Executable other = link(compiled(program), opts);
    // Hash may or may not change depending on displacement encodings, but
    // the mechanism must recompute; at minimum it is self-consistent.
    ASSERT_EQ(other.integrityChecks.size(), 1u);
}

TEST(Linker, MemoryModelScalesWithInputs)
{
    ir::Program program = test::tinyProgram();
    LinkStats stats;
    link(compiled(program), baseOptions(), &stats);
    // Runtime floor plus a multiple of the inputs.
    constexpr uint64_t kFloor = 192 * 1024;
    EXPECT_GT(stats.peakMemory, kFloor + stats.inputBytes);
    EXPECT_LT(stats.peakMemory, kFloor + stats.inputBytes * 4);
}

TEST(Linker, ExternalMeterPulsed)
{
    ir::Program program = test::tinyProgram();
    MemoryMeter meter;
    Options opts = baseOptions();
    opts.meter = &meter;
    LinkStats stats;
    link(compiled(program), opts, &stats);
    EXPECT_EQ(meter.peak(), stats.peakMemory);
    EXPECT_EQ(meter.live(), 0u);
}

TEST(Linker, SizesBreakdownConsistent)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->rodataBytes = 128;
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    Executable exe = link(compiled(program, copts), baseOptions());
    EXPECT_EQ(exe.sizes.text, exe.text.size());
    EXPECT_GT(exe.sizes.ehFrame, 0u);
    EXPECT_GT(exe.sizes.bbAddrMap, 0u);
    EXPECT_GE(exe.sizes.other, 128u);
    EXPECT_EQ(exe.fileSize(), 4096 + exe.sizes.total());
}

TEST(Linker, DebugRelocsOnlyWithEmitRelocs)
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.emitDebugInfo = true;
    auto objects = compiled(program, copts);

    Options opts = baseOptions();
    Executable stripped = link(objects, opts);
    EXPECT_GT(stripped.sizes.debug, 0u);
    EXPECT_EQ(stripped.sizes.relocs, 0u);

    opts.emitRelocs = true;
    Executable bm = link(objects, opts);
    EXPECT_GT(bm.sizes.relocs, 0u);
    EXPECT_GT(bm.sizes.relocs,
              link(compiled(program), opts).sizes.relocs)
        << "debug relocations inflate --emit-relocs binaries";
}

TEST(Linker, DeterministicOutput)
{
    ir::Program program = test::tinyProgram();
    Executable a = link(compiled(program), baseOptions());
    Executable b = link(compiled(program), baseOptions());
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.entryAddress, b.entryAddress);
}

} // namespace
} // namespace propeller::linker
