/**
 * @file
 * Tests for the continuous-profiling fleet service (src/service): the
 * recency-weighted DecayedAggregate, shard version stamps, service
 * determinism across arrival orders and thread counts, the drift-trigger
 * property, layout-cache priming through the Workflow seams, and the
 * persisted cache image across service restarts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "build/journal.h"
#include "build/workflow.h"
#include "faultinject/chaos.h"
#include "ir/ir.h"
#include "profile/profile.h"
#include "service/fleet.h"
#include "support/status.h"
#include "test_util.h"
#include "workload/workload.h"

namespace propeller {
namespace {

/** Small fleet: three binary versions, a handful of machines. */
workload::WorkloadConfig
fleetConfig(uint64_t seed = 47)
{
    workload::WorkloadConfig cfg = test::smallConfig(seed);
    cfg.name = "fleetapp";
    cfg.modules = 8;
    cfg.functions = 48;
    cfg.hotFunctions = 14;
    cfg.profileInstructions = 200'000;
    cfg.evalInstructions = 200'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

fleet::FleetOptions
fleetOptions(const std::string &cache, uint64_t seed = 47)
{
    fleet::FleetOptions fo;
    fo.base = fleetConfig(seed);
    fo.machines = 4;
    fo.versions = 3;
    fo.cachePath = cache;
    std::remove(cache.c_str());
    return fo;
}

// ---------------------------------------------------------------------
// DecayedAggregate

TEST(DecayedAggregate, MonotoneDecayUntilWindowExit)
{
    const uint64_t key = profile::AggregatedProfile::key(0x100, 0x200);
    profile::AggregatedProfile epoch;
    epoch.branches[key] = 1000;
    epoch.totalBranchEvents = 1000;

    profile::DecayedAggregate agg(4);
    agg.fold(epoch, 0.5);

    // Aging: each empty epoch halves the key's weight; after the window
    // slides past the non-empty epoch the aggregate reads empty.
    uint64_t prev = agg.quantize().branches.at(key);
    EXPECT_EQ(prev, 1000u);
    profile::AggregatedProfile empty;
    for (int age = 1; age < 4; ++age) {
        agg.fold(empty, 0.5);
        uint64_t cur = agg.quantize().branches.at(key);
        EXPECT_LT(cur, prev) << "age " << age;
        EXPECT_EQ(cur, 1000u >> age);
        EXPECT_FALSE(agg.empty());
        prev = cur;
    }
    agg.fold(empty, 0.5);
    EXPECT_TRUE(agg.empty());
    EXPECT_EQ(agg.quantize().branches.count(key), 0u);
    EXPECT_EQ(agg.epochs(), 5u);
}

TEST(DecayedAggregate, ScaledQuantizeExactlyStableAtConstantMix)
{
    profile::AggregatedProfile epoch;
    epoch.branches[profile::AggregatedProfile::key(1, 2)] = 977;
    epoch.branches[profile::AggregatedProfile::key(3, 4)] = 311;
    epoch.ranges[profile::AggregatedProfile::key(2, 3)] = 613;
    epoch.totalBranchEvents = 1288;

    profile::DecayedAggregate agg(3);
    std::vector<profile::AggregatedProfile> snaps;
    for (int i = 0; i < 6; ++i) {
        agg.fold(epoch, 0.7);
        snaps.push_back(agg.quantize(1'000'000));
    }
    // Once the window fills (3 folds) every snapshot is byte-identical:
    // same window contents, same arithmetic — no geometric residue.
    for (size_t i = 3; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].branches, snaps[2].branches) << "fold " << i;
        EXPECT_EQ(snaps[i].ranges, snaps[2].ranges) << "fold " << i;
    }
    // The heaviest branch lands exactly on the requested resolution.
    EXPECT_EQ(
        snaps.back().branches.at(profile::AggregatedProfile::key(1, 2)),
        1'000'000u);
}

// ---------------------------------------------------------------------
// Per-shard version stamps

TEST(ShardVersions, MixedVersionShardSetIsDiagnosedPerShard)
{
    profile::Profile a;
    a.binaryHash = 0x1111;
    a.totalRetired = 10;
    a.samples.resize(3);
    profile::Profile b = a;
    b.binaryHash = 0x2222;

    std::vector<std::vector<uint8_t>> shards =
        profile::serializeShards(a, 1);
    std::vector<std::vector<uint8_t>> sb = profile::serializeShards(b, 1);
    shards.insert(shards.end(), sb.begin(), sb.end());

    profile::ShardLoadStats stats;
    profile::Profile merged = profile::loadShards(shards, &stats);
    EXPECT_EQ(stats.shardsRejected, 0u);
    ASSERT_EQ(stats.shardVersions.size(), 6u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(stats.shardVersions[i], 0x1111u) << i;
        EXPECT_EQ(stats.shardVersions[i + 3], 0x2222u) << i;
    }
    EXPECT_EQ(stats.distinctVersions, 2u);
    EXPECT_EQ(merged.samples.size(), 6u);
}

// ---------------------------------------------------------------------
// Service determinism

TEST(FleetService, DeterministicAcrossArrivalOrderAndThreads)
{
    fleet::FleetOptions a = fleetOptions("test_fleet_det_a.cache");
    a.base.jobs = 1;
    a.arrivalShuffleSeed = 0;
    fleet::FleetOptions b = fleetOptions("test_fleet_det_b.cache");
    b.base.jobs = 8;
    b.arrivalShuffleSeed = 0xfeedface;

    fleet::FleetService sa(std::move(a));
    fleet::FleetService sb(std::move(b));
    sa.run(4);
    sb.run(4);

    ASSERT_EQ(sa.history().size(), 4u);
    for (size_t e = 0; e < 4; ++e) {
        const fleet::EpochStats &ea = sa.history()[e];
        const fleet::EpochStats &eb = sb.history()[e];
        EXPECT_EQ(ea.driftMetric, eb.driftMetric) << "epoch " << e;
        EXPECT_EQ(ea.relinked, eb.relinked) << "epoch " << e;
        EXPECT_EQ(ea.shardsIngested, eb.shardsIngested) << "epoch " << e;
        EXPECT_EQ(ea.samplesByVersion, eb.samplesByVersion)
            << "epoch " << e;
        EXPECT_EQ(ea.machinesByVersion, eb.machinesByVersion)
            << "epoch " << e;
    }
    EXPECT_EQ(sa.driftCrossings(), sb.driftCrossings());
    ASSERT_GE(sa.relinks().size(), 1u);

    // Same shipped bytes regardless of shard arrival order or threads.
    EXPECT_EQ(sa.shippedBinary().identityHash,
              sb.shippedBinary().identityHash);
    EXPECT_EQ(sa.shippedBinary().text, sb.shippedBinary().text);
}

// ---------------------------------------------------------------------
// Drift-trigger property

TEST(FleetService, RelinkFiresIffMetricCrossesThreshold)
{
    const double thresholds[] = {0.02, 0.25};
    for (uint64_t seed = 101; seed <= 105; ++seed) {
        for (double threshold : thresholds) {
            fleet::FleetOptions fo =
                fleetOptions("test_fleet_trigger.cache", seed);
            fo.driftThreshold = threshold;
            fleet::FleetService svc(std::move(fo));
            svc.run(4);

            uint32_t expected_crossings = 0;
            for (const fleet::EpochStats &es : svc.history()) {
                EXPECT_EQ(es.relinked, es.driftMetric > threshold)
                    << "seed " << seed << " threshold " << threshold
                    << " epoch " << es.epoch;
                if (es.driftMetric > threshold)
                    ++expected_crossings;
            }
            EXPECT_EQ(svc.driftCrossings(), expected_crossings);

            // Every triggered relink is recorded, none forced.
            EXPECT_EQ(svc.relinks().size(), expected_crossings);
            for (const fleet::RelinkRecord &r : svc.relinks())
                EXPECT_FALSE(r.forced);
        }
    }
}

// ---------------------------------------------------------------------
// Layout-cache priming through the Workflow seams

TEST(FleetWorkflow, PrimedDigestHitAfterLayoutNeutralEdit)
{
    workload::WorkloadConfig cfg = fleetConfig();
    const char *cache = "test_fleet_prime.cache";
    std::remove(cache);

    buildsys::Workflow cold(cfg);
    cold.propellerBinary();
    ASSERT_TRUE(cold.saveCacheFile(cache));
    ASSERT_FALSE(cold.wpa().hotFunctions.empty());

    // Edit a Work immediate in a sampled function: the function hash
    // (and the exact-match memo key) changes, but the layout inputs —
    // CFG shape, block sizes, counts — do not.
    ir::Program edited = workload::generate(cfg);
    std::string victim;
    for (const std::string &hot : cold.wpa().hotFunctions) {
        for (auto &module : edited.modules) {
            for (auto &fn : module->functions) {
                if (fn->name != hot || fn->isHandAsm)
                    continue;
                for (auto &bb : fn->blocks) {
                    for (ir::Inst &inst : bb->insts) {
                        if (inst.kind == ir::InstKind::Work &&
                            victim.empty()) {
                            inst.imm += 0x5eed;
                            victim = fn->name;
                        }
                    }
                }
            }
        }
        if (!victim.empty())
            break;
    }
    ASSERT_FALSE(victim.empty());

    buildsys::Workflow warm(cfg);
    warm.overrideProgram(std::move(edited));
    ASSERT_TRUE(warm.loadCacheFile(cache));
    warm.setLayoutPrimeFunctions({victim});
    warm.propellerBinary();

    EXPECT_GE(warm.layoutCacheStats().primedHits, 1u);
    EXPECT_GE(warm.layoutCacheStats().hits, 1u);
}

// ---------------------------------------------------------------------
// Persisted cache image across service restarts

TEST(FleetService, RestartedServiceRelinksFullyWarm)
{
    const char *cache = "test_fleet_restart.cache";
    {
        fleet::FleetService first(fleetOptions(cache));
        first.run(1); // Epoch 0's metric is 1.0: always relinks.
        ASSERT_EQ(first.relinks().size(), 1u);
        EXPECT_FALSE(first.relinks()[0].cacheLoaded);
        EXPECT_GT(first.relinks()[0].layoutMisses, 0u);
    }

    fleet::FleetOptions fo;
    fo.base = fleetConfig();
    fo.machines = 4;
    fo.versions = 3;
    fo.cachePath = cache; // Deliberately not removed: the restart image.
    fleet::FleetService second(std::move(fo));
    second.run(1);
    ASSERT_EQ(second.relinks().size(), 1u);
    const fleet::RelinkRecord &r = second.relinks()[0];
    EXPECT_TRUE(r.cacheLoaded);
    EXPECT_GT(r.layoutHits, 0u);
    EXPECT_EQ(r.layoutMisses, 0u);
}

// ---------------------------------------------------------------------
// Forced relinks and statusz rendering

TEST(FleetService, ForcedRelinkIsFlaggedAndExcludedFromCrossings)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_forced.cache");
    fo.driftThreshold = 2.0; // Unreachable: no triggered relinks.
    fleet::FleetService svc(std::move(fo));
    svc.run(2);
    EXPECT_EQ(svc.driftCrossings(), 0u);
    EXPECT_TRUE(svc.relinks().empty());

    svc.relinkNow();
    ASSERT_EQ(svc.relinks().size(), 1u);
    EXPECT_TRUE(svc.relinks()[0].forced);
    EXPECT_EQ(svc.driftCrossings(), 0u);
}

TEST(FleetService, StatuszRendersHistoryAndRelinks)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_statusz.cache");
    fleet::FleetService svc(std::move(fo));
    svc.run(3);

    std::string text = fleet::renderStatuszText(svc);
    EXPECT_NE(text.find("fleet statusz: fleetapp"), std::string::npos);
    EXPECT_NE(text.find("drift history"), std::string::npos);
    EXPECT_NE(text.find("layout tier:"), std::string::npos);
    EXPECT_NE(text.find("makespan"), std::string::npos);

    std::string json = fleet::renderStatuszJson(svc);
    EXPECT_NE(json.find("\"workload\": \"fleetapp\""), std::string::npos);
    EXPECT_NE(json.find("\"epochs\": ["), std::string::npos);
    EXPECT_NE(json.find("\"relinks\": ["), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------
// Late folds into the emission epoch's slot

TEST(DecayedAggregate, AddAtFoldsIntoEmissionSlotAndRejectsExpired)
{
    const uint64_t key = profile::AggregatedProfile::key(0x10, 0x20);
    profile::AggregatedProfile epoch;
    epoch.branches[key] = 1000;
    epoch.totalBranchEvents = 1000;
    profile::AggregatedProfile empty;

    // Reference: the shard arrived on time, then aged two epochs.
    profile::DecayedAggregate onTime(4);
    onTime.fold(epoch, 0.5);
    onTime.fold(empty, 0.5);
    onTime.fold(empty, 0.5);

    // Same shard arriving two epochs late lands in the same slot:
    // identical windowed state, so identical snapshots.
    profile::DecayedAggregate late(4);
    late.fold(empty, 0.5);
    late.fold(empty, 0.5);
    late.fold(empty, 0.5);
    ASSERT_TRUE(late.addAt(2, epoch));
    EXPECT_EQ(late.quantize().branches.at(key),
              onTime.quantize().branches.at(key));

    // A slot that already slid out of the window folds nothing.
    profile::AggregatedProfile before = late.quantize();
    EXPECT_FALSE(late.addAt(4, epoch));
    EXPECT_EQ(late.quantize().branches, before.branches);
}

// ---------------------------------------------------------------------
// Chaos-free runs report a quiet transport (satellite: the lag peak is
// a real measurement now, not a shard count)

TEST(FleetService, ChaosFreeTransportIsQuiet)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_quiet.cache");
    fleet::FleetService svc(std::move(fo));
    svc.run(4);

    for (const fleet::EpochStats &es : svc.history()) {
        EXPECT_EQ(es.shardLagPeak, 0u) << "epoch " << es.epoch;
        EXPECT_EQ(es.shardsDuplicated, 0u) << "epoch " << es.epoch;
        EXPECT_EQ(es.shardsLate, 0u) << "epoch " << es.epoch;
        EXPECT_EQ(es.shardsExpired, 0u) << "epoch " << es.epoch;
        EXPECT_EQ(es.shardsLost, 0u) << "epoch " << es.epoch;
        EXPECT_EQ(es.shardsRejected, 0u) << "epoch " << es.epoch;
        EXPECT_FALSE(es.relinkRetried) << "epoch " << es.epoch;
    }
    EXPECT_EQ(svc.detection(), fleet::FaultDetection{});
    for (const auto &[m, h] : svc.machineHealth()) {
        EXPECT_GT(h.shardsIngested, 0u) << "machine " << m;
        EXPECT_EQ(h.lagPeakEpochs, 0u) << "machine " << m;
        EXPECT_EQ(h.duplicates + h.losses + h.corrupt + h.late +
                      h.expired,
                  0u)
            << "machine " << m;
    }
    EXPECT_FALSE(svc.degraded());
    EXPECT_GE(svc.generation(), 1u);
}

// ---------------------------------------------------------------------
// Injected == detected, per fault class

TEST(FleetChaos, DetectionMatchesInjectionPerFaultClass)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_chaos_det.cache");
    fo.shardSamples = 8; // Multi-shard batches: real drop-able streams.
    const uint32_t decayWindow = fo.decayWindow;

    faultinject::ChaosSpec spec;
    spec.seed = 1234;
    spec.dropRate = 0.12;
    spec.dupRate = 0.10;
    spec.delayRate = 0.15;
    spec.corruptRate = 0.08;
    spec.reorderRate = 0.30;
    spec.maxDelayEpochs = 2; // <= decayWindow
    ASSERT_LE(spec.maxDelayEpochs, decayWindow);
    spec.chaosStartEpoch = 0;
    spec.chaosEndEpoch = 5;
    faultinject::ChaosSchedule chaos(spec);

    fleet::FleetService svc(std::move(fo));
    svc.setChaosHooks(&chaos);
    // Drain long enough for every delayed shard to land and every
    // outstanding batch gap to cross the lag horizon.
    svc.run(spec.chaosEndEpoch + 1 + spec.maxDelayEpochs + decayWindow);

    const faultinject::ChaosStats &inj = chaos.stats();
    const fleet::FaultDetection &det = svc.detection();
    ASSERT_GT(inj.shardsSeen, 0u);
    EXPECT_GT(inj.shardsDropped, 0u);
    EXPECT_GT(inj.shardsDuplicated, 0u);
    EXPECT_GT(inj.shardsDelayed, 0u);
    EXPECT_GT(inj.shardsCorrupted, 0u);

    EXPECT_EQ(det.losses, inj.shardsDropped);
    EXPECT_EQ(det.duplicates, inj.shardsDuplicated);
    EXPECT_EQ(det.corrupt, inj.shardsCorrupted);
    EXPECT_EQ(det.late + det.expired, inj.shardsDelayed);
    EXPECT_EQ(det.inversions, inj.arrivalInversions);
    EXPECT_EQ(det.relinkFailures, 0u);

    // The epoch counters are the same totals, epoch-sliced.
    uint64_t lost = 0, dup = 0, rej = 0, lateN = 0, expired = 0;
    uint32_t lagPeak = 0;
    for (const fleet::EpochStats &es : svc.history()) {
        lost += es.shardsLost;
        dup += es.shardsDuplicated;
        rej += es.shardsRejected;
        lateN += es.shardsLate;
        expired += es.shardsExpired;
        lagPeak = std::max(lagPeak, es.shardLagPeak);
    }
    EXPECT_EQ(lost, det.losses);
    EXPECT_EQ(dup, det.duplicates);
    EXPECT_EQ(rej, det.corrupt);
    EXPECT_EQ(lateN, det.late);
    EXPECT_EQ(expired, det.expired);
    EXPECT_EQ(lagPeak, inj.maxDelayInjected);

    // Per-machine health sums to the service-wide totals.
    fleet::MachineHealth sum;
    for (const auto &[m, h] : svc.machineHealth()) {
        sum.duplicates += h.duplicates;
        sum.losses += h.losses;
        sum.corrupt += h.corrupt;
        sum.late += h.late;
        sum.expired += h.expired;
        sum.lagPeakEpochs = std::max(sum.lagPeakEpochs, h.lagPeakEpochs);
    }
    EXPECT_EQ(sum.duplicates, det.duplicates);
    EXPECT_EQ(sum.losses, det.losses);
    EXPECT_EQ(sum.corrupt, det.corrupt);
    EXPECT_EQ(sum.late, det.late);
    EXPECT_EQ(sum.expired, det.expired);
    EXPECT_EQ(sum.lagPeakEpochs, inj.maxDelayInjected);
}

// ---------------------------------------------------------------------
// Post-chaos convergence: once the window outlives the chaos epochs,
// a relink ships the same bytes as a chaos-free twin

TEST(FleetChaos, PostChaosRelinkConvergesToChaosFreeBytes)
{
    // Chaos only in epochs [0, 1]; by the time the decay window has
    // slid past them the mix holds only clean epochs.
    faultinject::ChaosSpec spec;
    spec.seed = 77;
    spec.dropRate = 0.20;
    spec.dupRate = 0.15;
    spec.corruptRate = 0.10;
    spec.reorderRate = 0.50;
    spec.delayRate = 0.0;
    spec.chaosStartEpoch = 0;
    spec.chaosEndEpoch = 1;
    faultinject::ChaosSchedule chaos(spec);

    fleet::FleetOptions a = fleetOptions("test_fleet_conv_a.cache");
    a.shardSamples = 8;
    const uint32_t epochs = spec.chaosEndEpoch + 1 + a.decayWindow;
    fleet::FleetService chaotic(std::move(a));
    chaotic.setChaosHooks(&chaos);
    chaotic.run(epochs);
    chaotic.relinkNow();

    fleet::FleetOptions b = fleetOptions("test_fleet_conv_b.cache");
    b.shardSamples = 8;
    fleet::FleetService clean(std::move(b));
    clean.run(epochs);
    clean.relinkNow();

    ASSERT_GT(chaos.stats().shardsDropped +
                  chaos.stats().shardsDuplicated +
                  chaos.stats().shardsCorrupted,
              0u);
    EXPECT_EQ(chaotic.shippedBinary().identityHash,
              clean.shippedBinary().identityHash);
    EXPECT_EQ(chaotic.shippedBinary().text, clean.shippedBinary().text);
}

// ---------------------------------------------------------------------
// Relink failure, quarantine, last-good serving, recovery

namespace chaostest {

/** Fail the next `failNext` relink attempts, then heal. */
class CountedFailHooks : public fleet::FleetChaosHooks
{
  public:
    uint32_t failNext = 0;

    bool
    failRelink(uint32_t, uint32_t) override
    {
        if (failNext == 0)
            return false;
        --failNext;
        return true;
    }
};

} // namespace chaostest

TEST(FleetChaos, QuarantineServesLastGoodThenRecovers)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_rollback.cache");
    fo.driftThreshold = 2.0; // Only forced relinks fire.
    const uint32_t retries = fo.maxRelinkRetries;
    fleet::FleetService svc(std::move(fo));
    chaostest::CountedFailHooks blackout;
    svc.setChaosHooks(&blackout);

    // Epoch 0: clean relink establishes generation 1 (the last-good).
    svc.stepEpoch();
    svc.relinkNow();
    ASSERT_EQ(svc.relinks().size(), 1u);
    EXPECT_TRUE(svc.relinks()[0].verifierClean);
    EXPECT_EQ(svc.generation(), 1u);
    EXPECT_FALSE(svc.degraded());
    const uint64_t goodHash = svc.shippedBinary().identityHash;

    // Epoch 1: every attempt of the next relink crashes; it quarantines
    // and the last-good artifact keeps serving.
    blackout.failNext = 1 + retries;
    svc.stepEpoch();
    svc.relinkNow();
    ASSERT_EQ(svc.relinks().size(), 2u);
    const fleet::RelinkRecord &q = svc.relinks()[1];
    EXPECT_TRUE(q.quarantined);
    EXPECT_FALSE(q.verifierClean);
    EXPECT_EQ(q.attempts, 1 + retries);
    EXPECT_EQ(q.failedAttempts, 1 + retries);
    EXPECT_GT(q.backoffSec, 0.0);
    EXPECT_EQ(q.generation, 1u); // Unchanged: nothing new shipped.
    EXPECT_TRUE(svc.degraded());
    EXPECT_EQ(svc.generation(), 1u);
    EXPECT_EQ(svc.shippedBinary().identityHash, goodHash);
    EXPECT_EQ(svc.detection().relinkFailures,
              static_cast<uint64_t>(1 + retries));

    // Epoch 2: the blackout has passed; the pending relink re-attempts
    // without a fresh crossing, succeeds, and clears degraded mode.
    svc.stepEpoch();
    ASSERT_EQ(svc.relinks().size(), 3u);
    EXPECT_TRUE(svc.history().back().relinkRetried);
    const fleet::RelinkRecord &r = svc.relinks()[2];
    EXPECT_FALSE(r.quarantined);
    EXPECT_TRUE(r.verifierClean);
    EXPECT_EQ(r.generation, 2u);
    EXPECT_FALSE(svc.degraded());
    EXPECT_EQ(svc.generation(), 2u);
}

// ---------------------------------------------------------------------
// Runtime fleet configuration: canary rollout and rollback

TEST(FleetService, CanaryAddTargetRetireRollsBackCleanly)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_canary.cache");
    fo.releaseEpoch = 1;
    fleet::FleetService svc(std::move(fo));
    const uint32_t baseVersions = svc.versionCount();
    svc.run(3); // Past the release: migration toward the target began.
    const uint32_t oldTarget = svc.targetVersion();

    // Roll out a canary: new version, retarget at it.
    const uint32_t canary = svc.addVersion();
    EXPECT_EQ(canary, baseVersions);
    EXPECT_EQ(svc.versionCount(), baseVersions + 1);
    svc.setTargetVersion(canary);
    EXPECT_EQ(svc.targetVersion(), canary);
    svc.run(2);

    // Machines migrated onto the canary and it emits samples.
    const fleet::EpochStats &mid = svc.history().back();
    ASSERT_NE(mid.machinesByVersion.count(canary), 0u);
    EXPECT_GT(mid.machinesByVersion.at(canary), 0u);
    EXPECT_GT(mid.samplesByVersion.at(canary), 0u);

    // Roll it back: retiring the target repoints at the newest live
    // version and pulls every machine off the canary immediately.
    svc.retireVersion(canary);
    EXPECT_TRUE(svc.versionRetired(canary));
    EXPECT_EQ(svc.targetVersion(), oldTarget);
    svc.run(2);
    const fleet::EpochStats &after = svc.history().back();
    EXPECT_EQ(after.machinesByVersion.count(canary), 0u);
    EXPECT_EQ(after.samplesByVersion.count(canary), 0u);

    // The post-rollback service still relinks a verified artifact.
    svc.relinkNow();
    EXPECT_TRUE(svc.relinks().back().verifierClean);
    EXPECT_FALSE(svc.degraded());

    // The program recipe for runtime-added versions is reproducible.
    ir::Program replay = fleet::makeVersionProgram(
        fleetOptions("test_fleet_canary2.cache"), canary);
    EXPECT_EQ(replay.modules.size(),
              svc.versionProgram(canary).modules.size());
}

// ---------------------------------------------------------------------
// Byte-size-weighted drift metric (satellite)

TEST(FleetDrift, WeightedAndUnweightedMetricsDiffer)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_wdrift.cache");
    fo.weightedDrift = true;
    fleet::FleetService svc(std::move(fo));
    svc.run(4);

    bool sawDifference = false;
    for (const fleet::EpochStats &es : svc.history()) {
        EXPECT_GE(es.driftMetric, 0.0);
        EXPECT_LE(es.driftMetric, 1.0);
        EXPECT_GE(es.driftMetricUnweighted, 0.0);
        EXPECT_LE(es.driftMetricUnweighted, 1.0);
        if (es.driftMetric != es.driftMetricUnweighted)
            sawDifference = true;
        // The active metric drives the trigger.
        EXPECT_EQ(es.relinked,
                  es.driftMetric > svc.options().driftThreshold)
            << "epoch " << es.epoch;
    }
    EXPECT_TRUE(sawDifference);

    // The unweighted twin equals what an unweighted service computes.
    fleet::FleetOptions uo = fleetOptions("test_fleet_udrift.cache");
    uo.weightedDrift = false;
    fleet::FleetService usvc(std::move(uo));
    usvc.run(4);
    for (size_t e = 0; e < 4; ++e) {
        EXPECT_EQ(usvc.history()[e].driftMetric,
                  usvc.history()[e].driftMetricUnweighted)
            << "epoch " << e;
        EXPECT_EQ(svc.history()[e].driftMetricUnweighted,
                  usvc.history()[e].driftMetricUnweighted)
            << "epoch " << e;
    }
}

TEST(FleetDrift, TotalVariationHelperProperties)
{
    using Dist = std::map<std::pair<std::string, uint32_t>, double>;
    Dist empty;
    Dist a = {{{"f", 0}, 0.5}, {{"f", 1}, 0.5}};
    Dist b = {{{"g", 0}, 1.0}};
    EXPECT_EQ(fleet::totalVariation(empty, empty), 0.0);
    EXPECT_EQ(fleet::totalVariation(a, empty), 1.0);
    EXPECT_EQ(fleet::totalVariation(empty, a), 1.0);
    EXPECT_EQ(fleet::totalVariation(a, a), 0.0);
    EXPECT_EQ(fleet::totalVariation(a, b), 1.0); // Disjoint supports.

    Dist c = {{{"f", 0}, 0.75}, {{"f", 1}, 0.25}};
    EXPECT_DOUBLE_EQ(fleet::totalVariation(a, c), 0.25);
}

// ---------------------------------------------------------------------
// Statusz coverage (satellite): golden keys and typed path errors

TEST(FleetStatusz, JsonCarriesChaosAndRollbackKeys)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_szkeys.cache");
    fleet::FleetService svc(std::move(fo));
    svc.run(2);

    const std::string json = fleet::renderStatuszJson(svc);
    const char *keys[] = {
        "\"workload\"",       "\"weighted_drift\"",
        "\"generation\"",     "\"degraded\"",
        "\"detection\"",      "\"machine_health\"",
        "\"corrupt\"",        "\"duplicates\"",
        "\"losses\"",         "\"late\"",
        "\"expired\"",        "\"inversions\"",
        "\"relink_failures\"",
        "\"shards_duplicated\"", "\"shards_late\"",
        "\"shards_expired\"", "\"shards_lost\"",
        "\"arrival_inversions\"", "\"shard_lag_peak\"",
        "\"drift_metric_unweighted\"", "\"relink_retried\"",
        "\"attempts\"",       "\"failed_attempts\"",
        "\"backoff_sec\"",    "\"quarantined\"",
        "\"verifier_clean\"",
    };
    for (const char *key : keys)
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    const std::string text = fleet::renderStatuszText(svc);
    EXPECT_NE(text.find("transport health"), std::string::npos);
    EXPECT_NE(text.find("serving generation"), std::string::npos);
}

TEST(FleetStatusz, WriteFileReportsTypedPathErrors)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_szfile.cache");
    fleet::FleetService svc(std::move(fo));
    svc.run(1);

    support::Status bad = fleet::writeStatuszFile(svc, "");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), support::ErrorCode::kMalformed);

    support::Status unopenable = fleet::writeStatuszFile(
        svc, "no_such_dir/definitely/statusz.json");
    EXPECT_FALSE(unopenable.ok());
    EXPECT_EQ(unopenable.code(), support::ErrorCode::kUnresolved);
    EXPECT_NE(unopenable.message().find("no_such_dir"),
              std::string::npos);

    const char *path = "test_fleet_statusz_out.json";
    std::remove(path);
    support::Status ok = fleet::writeStatuszFile(svc, path);
    EXPECT_TRUE(ok.ok()) << ok.message();
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(buildsys::readFile(path, bytes));
    EXPECT_FALSE(bytes.empty());
    std::remove(path);
}

} // namespace
} // namespace propeller
