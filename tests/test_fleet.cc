/**
 * @file
 * Tests for the continuous-profiling fleet service (src/service): the
 * recency-weighted DecayedAggregate, shard version stamps, service
 * determinism across arrival orders and thread counts, the drift-trigger
 * property, layout-cache priming through the Workflow seams, and the
 * persisted cache image across service restarts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "build/workflow.h"
#include "ir/ir.h"
#include "profile/profile.h"
#include "service/fleet.h"
#include "test_util.h"
#include "workload/workload.h"

namespace propeller {
namespace {

/** Small fleet: three binary versions, a handful of machines. */
workload::WorkloadConfig
fleetConfig(uint64_t seed = 47)
{
    workload::WorkloadConfig cfg = test::smallConfig(seed);
    cfg.name = "fleetapp";
    cfg.modules = 8;
    cfg.functions = 48;
    cfg.hotFunctions = 14;
    cfg.profileInstructions = 200'000;
    cfg.evalInstructions = 200'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

fleet::FleetOptions
fleetOptions(const std::string &cache, uint64_t seed = 47)
{
    fleet::FleetOptions fo;
    fo.base = fleetConfig(seed);
    fo.machines = 4;
    fo.versions = 3;
    fo.cachePath = cache;
    std::remove(cache.c_str());
    return fo;
}

// ---------------------------------------------------------------------
// DecayedAggregate

TEST(DecayedAggregate, MonotoneDecayUntilWindowExit)
{
    const uint64_t key = profile::AggregatedProfile::key(0x100, 0x200);
    profile::AggregatedProfile epoch;
    epoch.branches[key] = 1000;
    epoch.totalBranchEvents = 1000;

    profile::DecayedAggregate agg(4);
    agg.fold(epoch, 0.5);

    // Aging: each empty epoch halves the key's weight; after the window
    // slides past the non-empty epoch the aggregate reads empty.
    uint64_t prev = agg.quantize().branches.at(key);
    EXPECT_EQ(prev, 1000u);
    profile::AggregatedProfile empty;
    for (int age = 1; age < 4; ++age) {
        agg.fold(empty, 0.5);
        uint64_t cur = agg.quantize().branches.at(key);
        EXPECT_LT(cur, prev) << "age " << age;
        EXPECT_EQ(cur, 1000u >> age);
        EXPECT_FALSE(agg.empty());
        prev = cur;
    }
    agg.fold(empty, 0.5);
    EXPECT_TRUE(agg.empty());
    EXPECT_EQ(agg.quantize().branches.count(key), 0u);
    EXPECT_EQ(agg.epochs(), 5u);
}

TEST(DecayedAggregate, ScaledQuantizeExactlyStableAtConstantMix)
{
    profile::AggregatedProfile epoch;
    epoch.branches[profile::AggregatedProfile::key(1, 2)] = 977;
    epoch.branches[profile::AggregatedProfile::key(3, 4)] = 311;
    epoch.ranges[profile::AggregatedProfile::key(2, 3)] = 613;
    epoch.totalBranchEvents = 1288;

    profile::DecayedAggregate agg(3);
    std::vector<profile::AggregatedProfile> snaps;
    for (int i = 0; i < 6; ++i) {
        agg.fold(epoch, 0.7);
        snaps.push_back(agg.quantize(1'000'000));
    }
    // Once the window fills (3 folds) every snapshot is byte-identical:
    // same window contents, same arithmetic — no geometric residue.
    for (size_t i = 3; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].branches, snaps[2].branches) << "fold " << i;
        EXPECT_EQ(snaps[i].ranges, snaps[2].ranges) << "fold " << i;
    }
    // The heaviest branch lands exactly on the requested resolution.
    EXPECT_EQ(
        snaps.back().branches.at(profile::AggregatedProfile::key(1, 2)),
        1'000'000u);
}

// ---------------------------------------------------------------------
// Per-shard version stamps

TEST(ShardVersions, MixedVersionShardSetIsDiagnosedPerShard)
{
    profile::Profile a;
    a.binaryHash = 0x1111;
    a.totalRetired = 10;
    a.samples.resize(3);
    profile::Profile b = a;
    b.binaryHash = 0x2222;

    std::vector<std::vector<uint8_t>> shards =
        profile::serializeShards(a, 1);
    std::vector<std::vector<uint8_t>> sb = profile::serializeShards(b, 1);
    shards.insert(shards.end(), sb.begin(), sb.end());

    profile::ShardLoadStats stats;
    profile::Profile merged = profile::loadShards(shards, &stats);
    EXPECT_EQ(stats.shardsRejected, 0u);
    ASSERT_EQ(stats.shardVersions.size(), 6u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(stats.shardVersions[i], 0x1111u) << i;
        EXPECT_EQ(stats.shardVersions[i + 3], 0x2222u) << i;
    }
    EXPECT_EQ(stats.distinctVersions, 2u);
    EXPECT_EQ(merged.samples.size(), 6u);
}

// ---------------------------------------------------------------------
// Service determinism

TEST(FleetService, DeterministicAcrossArrivalOrderAndThreads)
{
    fleet::FleetOptions a = fleetOptions("test_fleet_det_a.cache");
    a.base.jobs = 1;
    a.arrivalShuffleSeed = 0;
    fleet::FleetOptions b = fleetOptions("test_fleet_det_b.cache");
    b.base.jobs = 8;
    b.arrivalShuffleSeed = 0xfeedface;

    fleet::FleetService sa(std::move(a));
    fleet::FleetService sb(std::move(b));
    sa.run(4);
    sb.run(4);

    ASSERT_EQ(sa.history().size(), 4u);
    for (size_t e = 0; e < 4; ++e) {
        const fleet::EpochStats &ea = sa.history()[e];
        const fleet::EpochStats &eb = sb.history()[e];
        EXPECT_EQ(ea.driftMetric, eb.driftMetric) << "epoch " << e;
        EXPECT_EQ(ea.relinked, eb.relinked) << "epoch " << e;
        EXPECT_EQ(ea.shardsIngested, eb.shardsIngested) << "epoch " << e;
        EXPECT_EQ(ea.samplesByVersion, eb.samplesByVersion)
            << "epoch " << e;
        EXPECT_EQ(ea.machinesByVersion, eb.machinesByVersion)
            << "epoch " << e;
    }
    EXPECT_EQ(sa.driftCrossings(), sb.driftCrossings());
    ASSERT_GE(sa.relinks().size(), 1u);

    // Same shipped bytes regardless of shard arrival order or threads.
    EXPECT_EQ(sa.shippedBinary().identityHash,
              sb.shippedBinary().identityHash);
    EXPECT_EQ(sa.shippedBinary().text, sb.shippedBinary().text);
}

// ---------------------------------------------------------------------
// Drift-trigger property

TEST(FleetService, RelinkFiresIffMetricCrossesThreshold)
{
    const double thresholds[] = {0.02, 0.25};
    for (uint64_t seed = 101; seed <= 105; ++seed) {
        for (double threshold : thresholds) {
            fleet::FleetOptions fo =
                fleetOptions("test_fleet_trigger.cache", seed);
            fo.driftThreshold = threshold;
            fleet::FleetService svc(std::move(fo));
            svc.run(4);

            uint32_t expected_crossings = 0;
            for (const fleet::EpochStats &es : svc.history()) {
                EXPECT_EQ(es.relinked, es.driftMetric > threshold)
                    << "seed " << seed << " threshold " << threshold
                    << " epoch " << es.epoch;
                if (es.driftMetric > threshold)
                    ++expected_crossings;
            }
            EXPECT_EQ(svc.driftCrossings(), expected_crossings);

            // Every triggered relink is recorded, none forced.
            EXPECT_EQ(svc.relinks().size(), expected_crossings);
            for (const fleet::RelinkRecord &r : svc.relinks())
                EXPECT_FALSE(r.forced);
        }
    }
}

// ---------------------------------------------------------------------
// Layout-cache priming through the Workflow seams

TEST(FleetWorkflow, PrimedDigestHitAfterLayoutNeutralEdit)
{
    workload::WorkloadConfig cfg = fleetConfig();
    const char *cache = "test_fleet_prime.cache";
    std::remove(cache);

    buildsys::Workflow cold(cfg);
    cold.propellerBinary();
    ASSERT_TRUE(cold.saveCacheFile(cache));
    ASSERT_FALSE(cold.wpa().hotFunctions.empty());

    // Edit a Work immediate in a sampled function: the function hash
    // (and the exact-match memo key) changes, but the layout inputs —
    // CFG shape, block sizes, counts — do not.
    ir::Program edited = workload::generate(cfg);
    std::string victim;
    for (const std::string &hot : cold.wpa().hotFunctions) {
        for (auto &module : edited.modules) {
            for (auto &fn : module->functions) {
                if (fn->name != hot || fn->isHandAsm)
                    continue;
                for (auto &bb : fn->blocks) {
                    for (ir::Inst &inst : bb->insts) {
                        if (inst.kind == ir::InstKind::Work &&
                            victim.empty()) {
                            inst.imm += 0x5eed;
                            victim = fn->name;
                        }
                    }
                }
            }
        }
        if (!victim.empty())
            break;
    }
    ASSERT_FALSE(victim.empty());

    buildsys::Workflow warm(cfg);
    warm.overrideProgram(std::move(edited));
    ASSERT_TRUE(warm.loadCacheFile(cache));
    warm.setLayoutPrimeFunctions({victim});
    warm.propellerBinary();

    EXPECT_GE(warm.layoutCacheStats().primedHits, 1u);
    EXPECT_GE(warm.layoutCacheStats().hits, 1u);
}

// ---------------------------------------------------------------------
// Persisted cache image across service restarts

TEST(FleetService, RestartedServiceRelinksFullyWarm)
{
    const char *cache = "test_fleet_restart.cache";
    {
        fleet::FleetService first(fleetOptions(cache));
        first.run(1); // Epoch 0's metric is 1.0: always relinks.
        ASSERT_EQ(first.relinks().size(), 1u);
        EXPECT_FALSE(first.relinks()[0].cacheLoaded);
        EXPECT_GT(first.relinks()[0].layoutMisses, 0u);
    }

    fleet::FleetOptions fo;
    fo.base = fleetConfig();
    fo.machines = 4;
    fo.versions = 3;
    fo.cachePath = cache; // Deliberately not removed: the restart image.
    fleet::FleetService second(std::move(fo));
    second.run(1);
    ASSERT_EQ(second.relinks().size(), 1u);
    const fleet::RelinkRecord &r = second.relinks()[0];
    EXPECT_TRUE(r.cacheLoaded);
    EXPECT_GT(r.layoutHits, 0u);
    EXPECT_EQ(r.layoutMisses, 0u);
}

// ---------------------------------------------------------------------
// Forced relinks and statusz rendering

TEST(FleetService, ForcedRelinkIsFlaggedAndExcludedFromCrossings)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_forced.cache");
    fo.driftThreshold = 2.0; // Unreachable: no triggered relinks.
    fleet::FleetService svc(std::move(fo));
    svc.run(2);
    EXPECT_EQ(svc.driftCrossings(), 0u);
    EXPECT_TRUE(svc.relinks().empty());

    svc.relinkNow();
    ASSERT_EQ(svc.relinks().size(), 1u);
    EXPECT_TRUE(svc.relinks()[0].forced);
    EXPECT_EQ(svc.driftCrossings(), 0u);
}

TEST(FleetService, StatuszRendersHistoryAndRelinks)
{
    fleet::FleetOptions fo = fleetOptions("test_fleet_statusz.cache");
    fleet::FleetService svc(std::move(fo));
    svc.run(3);

    std::string text = fleet::renderStatuszText(svc);
    EXPECT_NE(text.find("fleet statusz: fleetapp"), std::string::npos);
    EXPECT_NE(text.find("drift history"), std::string::npos);
    EXPECT_NE(text.find("layout tier:"), std::string::npos);
    EXPECT_NE(text.find("makespan"), std::string::npos);

    std::string json = fleet::renderStatuszJson(svc);
    EXPECT_NE(json.find("\"workload\": \"fleetapp\""), std::string::npos);
    EXPECT_NE(json.find("\"epochs\": ["), std::string::npos);
    EXPECT_NE(json.find("\"relinks\": ["), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

} // namespace
} // namespace propeller
