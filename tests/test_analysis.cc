/**
 * @file
 * Tests for the post-link static verifier (src/analysis): the
 * diagnostics engine, zero false positives on clean end-to-end builds at
 * multiple thread counts, 100% detection of seeded defect classes, the
 * pre-link directive and flow lints, and the workflow phase-5 wiring.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/mutate.h"
#include "analysis/verifier.h"
#include "build/workflow.h"
#include "propeller/addr_map_index.h"
#include "propeller/profile_mapper.h"
#include "test_util.h"
#include "workload/workload.h"

namespace propeller::analysis {
namespace {

/** smallConfig plus integrity checks, so every defect class has sites. */
workload::WorkloadConfig
verifyConfig(unsigned jobs = 1)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    cfg.integrityCheckedFunctions = 2;
    cfg.jobs = jobs;
    return cfg;
}

TEST(DiagnosticEngine, CountsRendersAndSuppresses)
{
    DiagnosticEngine engine;
    EXPECT_TRUE(engine.clean());
    engine.report(CheckId::PV004, Severity::Error, "fn_a", 0x4010,
                  "invalid opcode");
    engine.report(CheckId::PV016, Severity::Warning, "fn_b", 0,
                  "flow imbalance");
    engine.report(CheckId::PV001, Severity::Note, "", 0, "fyi");
    EXPECT_EQ(engine.errorCount(), 1u);
    EXPECT_EQ(engine.warningCount(), 1u);
    EXPECT_EQ(engine.noteCount(), 1u);
    EXPECT_FALSE(engine.clean());

    std::string text = engine.renderText();
    EXPECT_NE(text.find("error[PV004] fn_a@0x4010: invalid opcode"),
              std::string::npos);
    EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 note(s)"),
              std::string::npos);

    std::string json = engine.renderJson();
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"PV004\""), std::string::npos);

    std::vector<std::string> affected = engine.affectedFunctions();
    ASSERT_EQ(affected.size(), 2u);
    EXPECT_EQ(affected[0], "fn_a");
    EXPECT_EQ(affected[1], "fn_b");
}

TEST(DiagnosticEngine, SuppressedFindingsAreCountedNotStored)
{
    DiagnosticEngine engine;
    ASSERT_TRUE(engine.parseSuppressions("PV004,PV011"));
    engine.report(CheckId::PV004, Severity::Error, "fn", 0, "muted");
    engine.report(CheckId::PV005, Severity::Error, "fn", 0, "kept");
    EXPECT_EQ(engine.suppressedCount(), 1u);
    EXPECT_EQ(engine.errorCount(), 1u);
    ASSERT_EQ(engine.diagnostics().size(), 1u);
    EXPECT_EQ(engine.diagnostics()[0].id, CheckId::PV005);

    DiagnosticEngine bad;
    EXPECT_FALSE(bad.parseSuppressions("PV004,PV999"));
    EXPECT_FALSE(bad.parseSuppressions("bogus"));
    EXPECT_TRUE(bad.parseSuppressions(""));
}

TEST(DiagnosticEngine, CheckIdsRoundTrip)
{
    for (uint16_t i = 1; i <= 16; ++i) {
        CheckId id = static_cast<CheckId>(i);
        CheckId parsed;
        ASSERT_TRUE(parseCheckId(checkName(id), parsed)) << checkName(id);
        EXPECT_EQ(parsed, id);
        EXPECT_NE(std::string(checkTitle(id)), "");
    }
}

/** The core no-false-positives gate: clean builds verify clean. */
TEST(Verifier, CleanWorkflowHasZeroDiagnostics)
{
    for (unsigned jobs : {1u, 8u}) {
        buildsys::Workflow wf(verifyConfig(jobs));
        const VerifyReport &rep = wf.verifyReport();
        EXPECT_TRUE(rep.clean())
            << "jobs=" << jobs << "\n"
            << rep.engine.renderText();
        EXPECT_EQ(rep.engine.noteCount(), 0u);
        EXPECT_GT(rep.functionsChecked, 0u);
        EXPECT_GT(rep.instructionsDecoded, 0u);

        // The twin the verifier ran over is byte-identical to PO.
        EXPECT_EQ(wf.verifiedBinary().text, wf.propellerBinary().text);
        EXPECT_FALSE(wf.verifiedBinary().bbAddrMap.empty());

        // Phase 5 is recorded like any other phase.
        ASSERT_TRUE(wf.hasReport("phase5.verify"));
        const buildsys::PhaseReport &pr = wf.report("phase5.verify");
        EXPECT_EQ(pr.quarantined, 0u);
        EXPECT_TRUE(pr.failures.empty());
        EXPECT_GT(pr.makespanSec, 0.0);
    }
}

TEST(Verifier, MetadataBinaryAlsoVerifiesClean)
{
    buildsys::Workflow wf(verifyConfig());
    VerifyOptions opts;
    VerifyReport rep = verifyExecutable(wf.metadataBinary(), opts);
    EXPECT_TRUE(rep.clean()) << rep.engine.renderText();
}

/** Every defect class must be caught by exactly the paired check. */
TEST(Verifier, DetectsEverySeededDefectClass)
{
    buildsys::Workflow wf(verifyConfig());
    ASSERT_TRUE(wf.verifyReport().clean());
    const linker::Executable &twin = wf.verifiedBinary();
    profile::AggregatedProfile agg = profile::aggregate(wf.profile());
    core::AddrMapIndex index(wf.metadataBinary());

    for (size_t c = 0; c < kDefectClassCount; ++c) {
        DefectClass cls = allDefectClasses()[c];
        CheckId want = expectedCheck(cls);
        for (uint64_t seed = 1; seed <= 2; ++seed) {
            linker::Executable exe = twin;
            core::CcProfile cc = wf.wpa().ccProf;
            core::LdProfile ld = wf.wpa().ldProf;
            core::WholeProgramDcfg dcfg = core::buildDcfg(agg, index);
            MutationTarget target{&exe, &cc, &ld, &dcfg};
            std::string desc = injectDefect(cls, seed, target);
            ASSERT_NE(desc, "") << defectName(cls) << " seed " << seed
                                << ": no eligible site";

            VerifyOptions opts;
            opts.expectedOrder = &ld;
            VerifyReport rep = verifyExecutable(exe, opts);
            rep.merge(
                lintDirectives(cc, ld, wf.metadataBinary(), opts));
            rep.merge(lintProfileFlow(dcfg, opts));

            bool hit = false;
            for (const auto &d : rep.engine.diagnostics())
                hit = hit || d.id == want;
            EXPECT_TRUE(hit)
                << defectName(cls) << " seed " << seed << " [" << desc
                << "] expected " << checkName(want) << ", got:\n"
                << rep.engine.renderText();
        }
    }
}

TEST(Verifier, InjectionIsDeterministicPerSeed)
{
    buildsys::Workflow wf(verifyConfig());
    const linker::Executable &twin = wf.verifiedBinary();
    for (DefectClass cls :
         {DefectClass::BranchDisplacement, DefectClass::EmbeddedData}) {
        linker::Executable a = twin;
        linker::Executable b = twin;
        MutationTarget ta{&a, nullptr, nullptr, nullptr};
        MutationTarget tb{&b, nullptr, nullptr, nullptr};
        EXPECT_EQ(injectDefect(cls, 9, ta), injectDefect(cls, 9, tb));
        EXPECT_EQ(a.text, b.text);
    }
}

TEST(Verifier, SuppressionMutesButCounts)
{
    buildsys::Workflow wf(verifyConfig());
    linker::Executable exe = wf.verifiedBinary();
    MutationTarget target{&exe, nullptr, nullptr, nullptr};
    ASSERT_NE(injectDefect(DefectClass::EmbeddedData, 1, target), "");

    VerifyOptions opts;
    opts.suppress = "PV004";
    VerifyReport rep = verifyExecutable(exe, opts);
    EXPECT_TRUE(rep.clean()) << rep.engine.renderText();
    EXPECT_GT(rep.engine.suppressedCount(), 0u);
}

TEST(LintDirectives, RejectsWhatCodegenWouldQuarantine)
{
    buildsys::Workflow wf(verifyConfig());
    const linker::Executable &pm = wf.metadataBinary();
    const core::WpaResult &wpa = wf.wpa();
    ASSERT_FALSE(wpa.ccProf.clusters.empty());

    // The canonical artifacts lint clean.
    {
        VerifyReport rep =
            lintDirectives(wpa.ccProf, wpa.ldProf, pm, {});
        EXPECT_TRUE(rep.clean()) << rep.engine.renderText();
    }

    auto expectLint = [&](const core::CcProfile &cc,
                          const core::LdProfile &ld, CheckId want,
                          const char *what) {
        VerifyReport rep = lintDirectives(cc, ld, pm, {});
        bool hit = false;
        for (const auto &d : rep.engine.diagnostics())
            hit = hit || d.id == want;
        EXPECT_TRUE(hit) << what << ": expected " << checkName(want)
                         << ", got:\n"
                         << rep.engine.renderText();
    };

    // PV013 variants.
    {
        core::CcProfile cc = wpa.ccProf;
        cc.clusters.begin()->second.clusters[0].push_back(0xDEAD);
        expectLint(cc, wpa.ldProf, CheckId::PV013, "unknown block id");
    }
    {
        core::CcProfile cc = wpa.ccProf;
        auto &fc = cc.clusters.begin()->second;
        fc.clusters[0].push_back(fc.clusters[0][0]);
        expectLint(cc, wpa.ldProf, CheckId::PV013, "duplicate block id");
    }
    {
        core::CcProfile cc = wpa.ccProf;
        codegen::ClusterSpec orphan;
        orphan.clusters = {{0}};
        cc.clusters["no_such_function"] = orphan;
        expectLint(cc, wpa.ldProf, CheckId::PV013, "unknown function");
    }
    {
        core::CcProfile cc = wpa.ccProf;
        cc.clusters.begin()->second.clusters.clear();
        expectLint(cc, wpa.ldProf, CheckId::PV013, "no clusters");
    }

    // PV014 variants.
    {
        core::LdProfile ld = wpa.ldProf;
        ASSERT_FALSE(ld.symbolOrder.empty());
        ld.symbolOrder.push_back(ld.symbolOrder.front());
        expectLint(wpa.ccProf, ld, CheckId::PV014, "duplicate entry");
    }
    {
        core::LdProfile ld = wpa.ldProf;
        ld.symbolOrder.push_back("no_such_function");
        expectLint(wpa.ccProf, ld, CheckId::PV014, "phantom symbol");
    }
}

TEST(LintProfileFlow, CleanDcfgThenInjectedAnomaly)
{
    buildsys::Workflow wf(verifyConfig());
    profile::AggregatedProfile agg = profile::aggregate(wf.profile());
    core::AddrMapIndex index(wf.metadataBinary());
    core::WholeProgramDcfg dcfg = core::buildDcfg(agg, index);

    VerifyReport clean = lintProfileFlow(dcfg, {});
    EXPECT_TRUE(clean.clean()) << clean.engine.renderText();

    MutationTarget target{nullptr, nullptr, nullptr, &dcfg};
    std::string desc = injectDefect(DefectClass::FlowAnomaly, 1, target);
    ASSERT_NE(desc, "");
    VerifyReport dirty = lintProfileFlow(dcfg, {});
    EXPECT_GT(dirty.engine.warningCount(), 0u) << desc;
}

/** Reports merge additively — counters and diagnostics both. */
TEST(VerifyReport, MergeAccumulates)
{
    VerifyReport a;
    a.functionsChecked = 2;
    a.engine.report(CheckId::PV001, Severity::Error, "x", 0, "one");
    VerifyReport b;
    b.functionsChecked = 3;
    b.engine.report(CheckId::PV002, Severity::Warning, "y", 0, "two");
    a.merge(b);
    EXPECT_EQ(a.functionsChecked, 5u);
    EXPECT_EQ(a.engine.errorCount(), 1u);
    EXPECT_EQ(a.engine.warningCount(), 1u);
    EXPECT_EQ(a.engine.diagnostics().size(), 2u);
}

/** Phase-5 failures surface per function, like every other phase. */
TEST(Workflow, VerifyFailureAttributionInPhaseReport)
{
    buildsys::Workflow wf(verifyConfig());
    linker::Executable exe = wf.verifiedBinary();
    MutationTarget target{&exe, nullptr, nullptr, nullptr};
    std::string desc = injectDefect(DefectClass::EmbeddedData, 3, target);
    ASSERT_NE(desc, "");

    VerifyReport rep = verifyExecutable(exe, {});
    ASSERT_FALSE(rep.clean());
    std::vector<std::string> affected = rep.engine.affectedFunctions();
    ASSERT_FALSE(affected.empty());
    // Every diagnostic names a function that the attribution list has.
    std::set<std::string> names(affected.begin(), affected.end());
    for (const auto &d : rep.engine.diagnostics())
        EXPECT_TRUE(d.function.empty() || names.count(d.function))
            << d.render();
}

} // namespace
} // namespace propeller::analysis
