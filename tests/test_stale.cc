/**
 * @file
 * Tests for stale-profile tolerance (src/stale): the drift mutation
 * generator, the fingerprint matcher, count inference and the end-to-end
 * identity property at zero drift.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "codegen/codegen.h"
#include "ir/verifier.h"
#include "linker/linker.h"
#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/profile_mapper.h"
#include "propeller/propeller.h"
#include "sim/machine.h"
#include "stale/stale.h"
#include "test_util.h"
#include "workload/workload.h"

namespace propeller {
namespace {

linker::Executable
buildMetadata(const ir::Program &program)
{
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    linker::Options lopts;
    lopts.entrySymbol = program.entryFunction;
    return linker::link(codegen::compileProgram(program, copts), lopts);
}

profile::Profile
profileOf(const linker::Executable &exe,
          const workload::WorkloadConfig &cfg)
{
    return sim::run(exe, workload::profileOptions(cfg)).profile;
}

/** A very small workload for the many-seed sweeps. */
workload::WorkloadConfig
microConfig()
{
    workload::WorkloadConfig cfg;
    cfg.name = "microapp";
    cfg.seed = 7;
    cfg.modules = 4;
    cfg.functions = 24;
    cfg.hotFunctions = 8;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 14;
    cfg.evalInstructions = 200'000;
    cfg.profileInstructions = 200'000;
    cfg.sampleLbrPeriod = 1'000;
    return cfg;
}

// ---------------------------------------------------------------------------
// The drift mutation generator.

TEST(DriftMutator, ZeroRateIsIdentity)
{
    ir::Program program = workload::generate(test::smallConfig());
    workload::DriftStats stats = workload::applyDrift(program, {1, 0.0});
    EXPECT_EQ(stats.total(), 0u);
}

TEST(DriftMutator, MutatedProgramsStayVerifierClean)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        for (double rate : {0.05, 0.25, 0.5}) {
            ir::Program program = workload::generate(cfg);
            workload::DriftStats stats =
                workload::applyDrift(program, {seed, rate});
            EXPECT_GT(stats.total(), 0u);
            support::Status status = ir::verify(program);
            EXPECT_TRUE(status.ok()) << "seed " << seed << " rate "
                                     << rate << ": " << status.toString();
        }
    }
}

TEST(DriftMutator, DeterministicInTheSpec)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    ir::Program a = workload::generate(cfg);
    ir::Program b = workload::generate(cfg);
    workload::applyDrift(a, {9, 0.25});
    workload::applyDrift(b, {9, 0.25});
    EXPECT_EQ(buildMetadata(a).identityHash, buildMetadata(b).identityHash);
}

TEST(DriftMutator, DriftedProgramsStillRunAndProfile)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    ir::Program program = workload::generate(cfg);
    workload::applyDrift(program, {3, 0.25});
    ASSERT_TRUE(ir::verify(program).ok());
    linker::Executable exe = buildMetadata(program);
    sim::RunResult run = sim::run(exe, workload::profileOptions(cfg));
    EXPECT_TRUE(run.startupOk);
    EXPECT_FALSE(run.profile.samples.empty());
}

// ---------------------------------------------------------------------------
// Binary identity.

TEST(BinaryIdentity, DriftChangesIdentityAndFlagsMismatch)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    ir::Program pristine = workload::generate(cfg);
    ir::Program drifted = workload::generate(cfg);
    workload::applyDrift(drifted, {11, 0.10});

    linker::Executable exe_a = buildMetadata(pristine);
    linker::Executable exe_b = buildMetadata(drifted);
    EXPECT_NE(exe_a.identityHash, exe_b.identityHash);

    profile::Profile prof = profileOf(exe_a, cfg);
    EXPECT_EQ(prof.binaryHash, exe_a.identityHash);

    // Fresh WPA flags the cross-build application, not the same-build one.
    EXPECT_FALSE(
        core::runWholeProgramAnalysis(exe_a, prof).stats.profileMismatch);
    EXPECT_TRUE(
        core::runWholeProgramAnalysis(exe_b, prof).stats.profileMismatch);

    // The stale pipeline accepts it: the profile matches the binary it
    // was *collected* on.
    stale::StaleWpaResult swr =
        stale::runStaleWholeProgramAnalysis(exe_b, exe_a, prof);
    EXPECT_FALSE(swr.wpa.stats.profileMismatch);
}

// ---------------------------------------------------------------------------
// The identity-drift property: at zero drift the stale pipeline is the
// fresh pipeline, byte for byte.

TEST(StaleMatcher, ZeroDriftIsPerfectAndByteIdentical)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    linker::Executable exe = buildMetadata(workload::generate(cfg));
    profile::Profile prof = profileOf(exe, cfg);

    core::WpaResult fresh = core::runWholeProgramAnalysis(exe, prof);
    stale::StaleWpaResult swr =
        stale::runStaleWholeProgramAnalysis(exe, exe, prof);

    EXPECT_EQ(swr.match.functionsIdentical, swr.match.functionsTotal);
    EXPECT_EQ(swr.match.functionsDropped, 0u);
    EXPECT_EQ(swr.match.blocksDropped, 0u);
    EXPECT_DOUBLE_EQ(swr.match.blockMatchRate(), 1.0);
    EXPECT_DOUBLE_EQ(swr.match.weightMatchRate(), 1.0);
    EXPECT_EQ(swr.inference.functionsInferred, 0u);

    EXPECT_EQ(swr.wpa.ccProf.serialize(), fresh.ccProf.serialize());
    EXPECT_EQ(swr.wpa.ldProf.serialize(), fresh.ldProf.serialize());
}

// ---------------------------------------------------------------------------
// Count inference.

TEST(StaleInference, FlowConservationNeverDegradesAtMatchedBlocks)
{
    workload::WorkloadConfig cfg = test::smallConfig();
    linker::Executable exe_a = buildMetadata(workload::generate(cfg));
    ir::Program drifted = workload::generate(cfg);
    workload::applyDrift(drifted, {13, 0.25});
    linker::Executable exe_b = buildMetadata(drifted);

    profile::Profile prof = profileOf(exe_a, cfg);
    core::AddrMapIndex index_a(exe_a);
    core::AddrMapIndex index_b(exe_b);
    core::WholeProgramDcfg dcfg =
        core::buildDcfg(profile::aggregate(prof), index_a);

    stale::StaleMatchResult match =
        stale::matchStaleProfile(dcfg, index_a, index_b);

    // Imbalance |freq - inflow| and |freq - outflow| per pre-inference
    // node of every function inference will touch.
    auto imbalances = [](const core::FunctionDcfg &fn, size_t n_nodes) {
        std::vector<std::pair<uint64_t, uint64_t>> result(n_nodes);
        std::vector<uint64_t> in(fn.nodes.size(), 0),
            out(fn.nodes.size(), 0);
        for (const auto &e : fn.edges) {
            out[e.fromNode] += e.weight;
            in[e.toNode] += e.weight;
        }
        for (size_t i = 0; i < n_nodes; ++i) {
            uint64_t f = fn.nodes[i].freq;
            result[i] = {f > in[i] ? f - in[i] : in[i] - f,
                         f > out[i] ? f - out[i] : out[i] - f};
        }
        return result;
    };

    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> before;
    std::vector<size_t> counts;
    for (size_t fi = 0; fi < match.dcfg.functions.size(); ++fi) {
        size_t n = match.dcfg.functions[fi].nodes.size();
        counts.push_back(n);
        before.push_back(imbalances(match.dcfg.functions[fi], n));
    }

    stale::InferenceStats stats =
        stale::inferStaleCounts(match, index_b);
    EXPECT_GT(stats.functionsInferred, 0u);

    for (size_t fi = 0; fi < match.dcfg.functions.size(); ++fi) {
        auto after = imbalances(match.dcfg.functions[fi], counts[fi]);
        for (size_t i = 0; i < counts[fi]; ++i) {
            EXPECT_LE(after[i].first, before[fi][i].first)
                << match.dcfg.functions[fi].function << " node " << i
                << ": inflow imbalance grew";
            EXPECT_LE(after[i].second, before[fi][i].second)
                << match.dcfg.functions[fi].function << " node " << i
                << ": outflow imbalance grew";
        }
    }
}

// ---------------------------------------------------------------------------
// Match rate vs drift, aggregated over many random drift episodes.

TEST(StaleMatcher, MatchRateDegradesMonotonicallyWithDrift)
{
    workload::WorkloadConfig cfg = microConfig();
    linker::Executable exe_a = buildMetadata(workload::generate(cfg));
    core::AddrMapIndex index_a(exe_a);
    profile::Profile prof = profileOf(exe_a, cfg);
    core::WholeProgramDcfg dcfg =
        core::buildDcfg(profile::aggregate(prof), index_a);
    ASSERT_FALSE(dcfg.functions.empty());

    const double kRates[] = {0.05, 0.25, 0.50};
    double mean_rate[3] = {0, 0, 0};
    constexpr int kSeeds = 100;

    for (int seed = 1; seed <= kSeeds; ++seed) {
        for (int r = 0; r < 3; ++r) {
            ir::Program drifted = workload::generate(cfg);
            workload::applyDrift(
                drifted, {static_cast<uint64_t>(seed), kRates[r]});
            ASSERT_TRUE(ir::verify(drifted).ok());
            linker::Executable exe_b = buildMetadata(drifted);
            core::AddrMapIndex index_b(exe_b);
            stale::StaleMatchResult match =
                stale::matchStaleProfile(dcfg, index_a, index_b);
            mean_rate[r] += match.stats.blockMatchRate() / kSeeds;
        }
    }

    // More drift, fewer matches — on average across the 100 episodes
    // (individual episodes can be lucky).
    EXPECT_GE(mean_rate[0], mean_rate[1]);
    EXPECT_GE(mean_rate[1], mean_rate[2]);
    // And light drift stays highly matchable.
    EXPECT_GT(mean_rate[0], 0.9);
}

} // namespace
} // namespace propeller
