#ifndef PROPELLER_TESTS_TEST_UTIL_H
#define PROPELLER_TESTS_TEST_UTIL_H

/**
 * @file
 * Shared helpers for the test suite: tiny hand-built IR programs and a
 * small synthetic workload config that keeps tests fast.
 */

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "workload/workload.h"

namespace propeller::test {

/** A small but structurally complete workload (fast to build and run). */
inline workload::WorkloadConfig
smallConfig(uint64_t seed = 47)
{
    workload::WorkloadConfig cfg;
    cfg.name = "testapp";
    cfg.seed = seed;
    cfg.modules = 12;
    cfg.functions = 80;
    cfg.hotFunctions = 26;
    cfg.coldObjectFraction = 0.6;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 26;
    cfg.coldPathDensity = 0.35;
    // Enough profile staleness that layout has something to fix even at
    // this tiny scale.
    cfg.pgoStaleness = 0.4;
    cfg.handAsmFunctions = 1;
    cfg.multiModalFunctions = 2;
    cfg.evalInstructions = 600'000;
    cfg.profileInstructions = 600'000;
    cfg.sampleLbrPeriod = 2'000;
    return cfg;
}

/**
 * Build a function from a compact description: each entry is a block; the
 * caller wires terminators manually afterwards if needed.
 */
inline std::unique_ptr<ir::Function>
makeFunction(const std::string &name, size_t blocks)
{
    auto fn = std::make_unique<ir::Function>();
    fn->name = name;
    for (size_t i = 0; i < blocks; ++i) {
        auto bb = std::make_unique<ir::BasicBlock>();
        bb->id = static_cast<uint32_t>(i);
        fn->blocks.push_back(std::move(bb));
    }
    return fn;
}

/**
 * A tiny two-function program: main loops calling "work"; work has a hot
 * diamond plus a cold error path.  Used across linker/sim/propeller tests.
 */
inline ir::Program
tinyProgram()
{
    using namespace ir;
    Program program;
    program.name = "tiny";
    program.entryFunction = "main";

    auto mod = std::make_unique<Module>();
    mod->name = "tiny_mod";

    // work(): bb0 -> (bb1 hot | bb2 cold) -> bb3 ret
    auto work = makeFunction("work", 4);
    work->blocks[0]->insts = {makeWork(1, 10),
                              makeCondBr(1, 2, 240, 1000)};
    work->blocks[1]->insts = {makeWork(2, 20), makeWork(3, 30),
                              makeBr(3)};
    work->blocks[2]->insts = {makeWork(4, 40), makeWork(4, 41),
                              makeWork(4, 42), makeBr(3)};
    work->blocks[3]->insts = {makeWork(5, 50), makeRet()};

    // main(): two nested periodic request loops (~65K iterations), so
    // simulation runs are budget-bound and comparable across seeds.
    auto main_fn = makeFunction("main", 4);
    main_fn->blocks[0]->insts = {makeWork(0, 1), makeBr(1)};
    main_fn->blocks[1]->insts = {makeCall("work"),
                                 makeLoopBr(1, 2, 255, 1001)};
    main_fn->blocks[2]->insts = {makeWork(0, 2),
                                 makeLoopBr(1, 3, 255, 1002)};
    main_fn->blocks[3]->insts = {makeRet()};

    mod->functions.push_back(std::move(work));
    mod->functions.push_back(std::move(main_fn));
    program.modules.push_back(std::move(mod));
    return program;
}

} // namespace propeller::test

#endif // PROPELLER_TESTS_TEST_UTIL_H
