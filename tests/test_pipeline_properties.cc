/**
 * @file
 * Property tests over randomly generated workloads (parameterized by
 * seed): the invariants every optimizer path must preserve, checked on
 * eight different synthetic programs end to end.
 */

#include <gtest/gtest.h>

#include <set>

#include "build/workflow.h"
#include "ir/verifier.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller {
namespace {

class PipelineProperties : public ::testing::TestWithParam<uint64_t>
{
  protected:
    workload::WorkloadConfig
    config() const
    {
        workload::WorkloadConfig cfg = test::smallConfig(GetParam());
        cfg.name = "prop" + std::to_string(GetParam());
        // Vary the structure knobs with the seed for diversity.
        cfg.coldPathDensity = 0.2 + 0.03 * (GetParam() % 7);
        cfg.pgoStaleness = 0.1 + 0.05 * (GetParam() % 5);
        cfg.integrityCheckedFunctions = GetParam() % 2;
        return cfg;
    }
};

TEST_P(PipelineProperties, GeneratedProgramIsValid)
{
    ir::Program program = workload::generate(config());
    EXPECT_TRUE(ir::verify(program).ok());
}

TEST_P(PipelineProperties, AllBinariesRetireIdenticalLogicalWork)
{
    buildsys::Workflow wf(config());
    sim::MachineOptions opts = workload::evalOptions(wf.config());

    sim::RunResult base = sim::run(wf.baseline(), opts);
    ASSERT_FALSE(base.fault);

    sim::RunResult prop = sim::run(wf.propellerBinary(), opts);
    ASSERT_TRUE(prop.startupOk);
    ASSERT_FALSE(prop.fault) << std::hex << prop.faultPc;
    EXPECT_EQ(base.counters.logicalInstructions,
              prop.counters.logicalInstructions);
    EXPECT_EQ(base.counters.condBranches, prop.counters.condBranches);
    EXPECT_EQ(base.counters.calls, prop.counters.calls);
    EXPECT_EQ(base.counters.returns, prop.counters.returns);

    linker::Executable bo = wf.boltBinary();
    sim::RunResult bolt = sim::run(bo, opts);
    ASSERT_FALSE(bolt.fault) << std::hex << bolt.faultPc;
    if (bolt.startupOk) {
        EXPECT_EQ(base.counters.logicalInstructions,
                  bolt.counters.logicalInstructions);
        EXPECT_EQ(base.counters.condBranches,
                  bolt.counters.condBranches);
    } else {
        // Startup crash is legitimate exactly when checks exist.
        EXPECT_GT(wf.config().integrityCheckedFunctions, 0u);
    }
}

TEST_P(PipelineProperties, BoltLiteAlsoCorrect)
{
    buildsys::Workflow wf(config());
    sim::MachineOptions opts = workload::evalOptions(wf.config());
    sim::RunResult base = sim::run(wf.baseline(), opts);

    bolt::BoltOptions lite;
    lite.lite = true;
    linker::Executable bo = wf.boltBinary(lite);
    sim::RunResult bolt = sim::run(bo, opts);
    ASSERT_FALSE(bolt.fault);
    if (bolt.startupOk) {
        EXPECT_EQ(base.counters.logicalInstructions,
                  bolt.counters.logicalInstructions);
    }
}

TEST_P(PipelineProperties, ClusterSpecsCoverEveryFunctionExactly)
{
    buildsys::Workflow wf(config());
    const core::WpaResult &wpa = wf.wpa();
    for (const auto &[fn_name, spec] : wpa.ccProf.clusters) {
        const ir::Function *fn = wf.program().findFunction(fn_name);
        ASSERT_NE(fn, nullptr) << fn_name;
        std::set<uint32_t> listed;
        for (const auto &cluster : spec.clusters) {
            for (uint32_t id : cluster)
                EXPECT_TRUE(listed.insert(id).second) << fn_name;
        }
        EXPECT_EQ(listed.size(), fn->blocks.size()) << fn_name;
        EXPECT_EQ(spec.clusters[0][0], fn->entry().id) << fn_name;
    }
}

TEST_P(PipelineProperties, LdProfSymbolsResolveInBinary)
{
    buildsys::Workflow wf(config());
    const core::WpaResult &wpa = wf.wpa();
    const linker::Executable &po = wf.propellerBinary();
    for (const auto &sym : wpa.ldProf.symbolOrder)
        EXPECT_NE(po.findSymbol(sym), nullptr) << sym;
    // And the listed order is honoured: addresses ascend.
    uint64_t prev = 0;
    for (const auto &sym : wpa.ldProf.symbolOrder) {
        const linker::FuncRange *range = po.findSymbol(sym);
        ASSERT_NE(range, nullptr);
        EXPECT_GE(range->start, prev) << sym;
        prev = range->start;
    }
}

TEST_P(PipelineProperties, UnrelaxedBinaryBehavesIdentically)
{
    buildsys::Workflow wf(config());
    const core::WpaResult &wpa = wf.wpa();

    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::Clusters;
    copts.clusters = &wpa.ccProf.clusters;
    auto objects = codegen::compileProgram(wf.program(), copts);

    linker::Options with;
    with.entrySymbol = "main";
    with.symbolOrder = wpa.ldProf.symbolOrder;
    linker::Options without = with;
    without.relax = false;

    sim::MachineOptions opts = workload::evalOptions(wf.config());
    sim::RunResult relaxed = sim::run(linker::link(objects, with), opts);
    sim::RunResult fat = sim::run(linker::link(objects, without), opts);
    ASSERT_FALSE(relaxed.fault);
    ASSERT_FALSE(fat.fault);
    EXPECT_EQ(relaxed.counters.logicalInstructions,
              fat.counters.logicalInstructions);
    EXPECT_EQ(relaxed.counters.condTaken, fat.counters.condTaken)
        << "relaxation only changes encodings, never branch outcomes";
}

TEST_P(PipelineProperties, LinkIsDeterministic)
{
    buildsys::Workflow a(config());
    buildsys::Workflow b(config());
    EXPECT_EQ(a.propellerBinary().text, b.propellerBinary().text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperties,
                         ::testing::Values(201, 202, 203, 204, 205, 206,
                                           207, 208));

} // namespace
} // namespace propeller
