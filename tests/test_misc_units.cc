/**
 * @file
 * Coverage for the remaining small units: DCFG containers, address-map
 * index footprints, Ext-TSP option variants, hfsort thresholds, machine
 * cache-line straddling, DSB behaviour and chart edge cases.
 */

#include <gtest/gtest.h>

#include "build/workflow.h"
#include "codegen/codegen.h"
#include "linker/linker.h"
#include "propeller/addr_map_index.h"
#include "propeller/dcfg.h"
#include "propeller/ext_tsp.h"
#include "propeller/hfsort.h"
#include "sim/machine.h"
#include "support/table.h"
#include "test_util.h"

namespace propeller {
namespace {

TEST(Dcfg, FootprintsScaleWithContent)
{
    core::FunctionDcfg fn;
    fn.function = "f";
    uint64_t empty = fn.footprint();
    fn.nodes.resize(10);
    fn.edges.resize(20);
    EXPECT_GT(fn.footprint(), empty);

    core::WholeProgramDcfg graph;
    graph.functions.push_back(fn);
    graph.callEdges.resize(5);
    EXPECT_GT(graph.footprint(), fn.footprint());
    EXPECT_EQ(graph.findFunction("f"), 0);
    EXPECT_EQ(graph.findFunction("g"), -1);
}

TEST(Dcfg, TotalWeightSumsEdges)
{
    core::FunctionDcfg fn;
    fn.nodes.resize(2);
    fn.edges = {{0, 1, 10, core::EdgeKind::Branch},
                {1, 0, 5, core::EdgeKind::FallThrough}};
    EXPECT_EQ(fn.totalWeight(), 15u);
}

TEST(AddrMapIndex, FootprintNonZero)
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable exe =
        linker::link(codegen::compileProgram(program, copts), lopts);
    core::AddrMapIndex index(exe);
    EXPECT_GT(index.footprint(), index.blockCount() * 16);
}

TEST(ExtTsp, CustomWeightsChangeScores)
{
    std::vector<core::LayoutNode> nodes = {{10, 1}, {10, 1}};
    std::vector<core::LayoutEdge> edges = {{0, 1, 100}};
    core::ExtTspOptions heavy;
    heavy.fallthroughWeight = 2.0;
    EXPECT_DOUBLE_EQ(core::extTspScore(nodes, edges, {0, 1}, heavy),
                     200.0);
    core::ExtTspOptions narrow;
    narrow.forwardDistance = 4; // The 10-byte gap falls outside.
    EXPECT_DOUBLE_EQ(core::extTspScore(nodes, edges, {1, 0},
                                       core::ExtTspOptions{}),
                     core::extTspScore(nodes, edges, {1, 0}, narrow))
        << "backward scoring unaffected by the forward window";
}

TEST(ExtTsp, SplitMergeBeatsConcatWhenProfitable)
{
    // Chain X = [0,1] with a heavy edge 0 -> 2 -> 1: inserting node 2
    // inside X (split merge) scores higher than appending it.
    std::vector<core::LayoutNode> nodes = {{8, 10}, {8, 10}, {8, 10}};
    std::vector<core::LayoutEdge> edges = {
        {0, 1, 5}, {0, 2, 100}, {2, 1, 100}};
    auto order = core::extTspOrder(nodes, edges, 0);
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 1}));
}

TEST(Hfsort, ArcThresholdFiltersWeakCallers)
{
    core::HfsortOptions opts;
    opts.arcThreshold = 0.9; // Only near-exclusive callers cluster.
    std::vector<core::HfsortNode> nodes = {{64, 1000}, {64, 500}};
    std::vector<core::HfsortArc> weak = {{0, 1, 100}}; // 100 < 0.9*500.
    auto order = core::hfsortOrder(nodes, weak, opts);
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1}))
        << "no merge, plain hotness order";

    std::vector<core::HfsortArc> strong = {{0, 1, 490}};
    order = core::hfsortOrder(nodes, strong, opts);
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1}))
        << "merged cluster preserves call order";
}

TEST(Machine, StraddlingInstructionsTouchTwoLines)
{
    // A run on any binary: the straddle path is exercised whenever an
    // instruction crosses a 64-byte boundary; verify determinism holds
    // and no counters go inconsistent.
    ir::Program program = test::tinyProgram();
    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable exe =
        linker::link(codegen::compileProgram(program, {}), lopts);
    sim::MachineOptions opts;
    opts.maxInstructions = 30'000;
    sim::RunResult r = sim::run(exe, opts);
    EXPECT_GE(r.counters.dsbAccesses, r.counters.instructions);
    EXPECT_LE(r.counters.l1iMisses, r.counters.instructions * 2);
}

TEST(Machine, DsbMissesDropOnceWarm)
{
    ir::Program program = test::tinyProgram();
    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable exe =
        linker::link(codegen::compileProgram(program, {}), lopts);
    sim::MachineOptions opts;
    opts.maxInstructions = 100'000;
    sim::RunResult r = sim::run(exe, opts);
    // The tiny loop fits the DSB: misses are a vanishing fraction.
    EXPECT_LT(r.counters.dsbMisses, r.counters.dsbAccesses / 100);
}

TEST(Charts, EmptyAndZeroInputsAreSafe)
{
    BarChart chart(10);
    EXPECT_TRUE(chart.render().empty());
    chart.addBar("zero", 0.0, "0");
    EXPECT_NE(chart.render().find("zero"), std::string::npos);

    std::vector<std::vector<uint64_t>> empty_cells;
    EXPECT_FALSE(renderHeatMap(empty_cells, "a", "t").empty());
    std::vector<std::vector<uint64_t>> zeros(2,
                                             std::vector<uint64_t>(3, 0));
    std::string out = renderHeatMap(zeros, "a", "t");
    EXPECT_NE(out.find("|   |"), std::string::npos);
}

TEST(Charts, TableWithOnlyHeader)
{
    Table t({"A", "B"});
    std::string out = t.render();
    EXPECT_NE(out.find("| A"), std::string::npos);
}

TEST(MapperStats, TruncationAndReturnsReported)
{
    buildsys::Workflow wf(test::smallConfig(47));
    const core::WpaResult &wpa = wf.wpa();
    // Calls return mid-block constantly: returnRecords must be large.
    EXPECT_GT(wpa.stats.mapper.returnRecords, 0u);
    EXPECT_EQ(wpa.stats.mapper.unmappedRecords, 0u)
        << "every sample address must resolve through the address map";
}

} // namespace
} // namespace propeller
