/**
 * @file
 * Unit tests for the compiler backend: section planning, basic block
 * sections, branch-site emission, address maps, CFI and the landing-pad
 * rule of paper section 4.5.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "test_util.h"

namespace propeller::codegen {
namespace {

using elf::ObjectFile;
using elf::SectionType;

const ir::Module &
tinyModule(ir::Program &program)
{
    return *program.modules[0];
}

TEST(CodegenBaseline, OneSectionPerFunction)
{
    ir::Program program = test::tinyProgram();
    Options opts;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    int text_sections = 0;
    for (const auto &sec : obj.sections)
        text_sections += (sec.type == SectionType::Text);
    EXPECT_EQ(text_sections, 2);
    EXPECT_GE(obj.findSection(".text.work"), 0);
    EXPECT_GE(obj.findSection(".text.main"), 0);
    ASSERT_EQ(obj.symbols.size(), 2u);
    for (const auto &sym : obj.symbols)
        EXPECT_EQ(sym.kind, elf::SymbolKind::Function);
}

TEST(CodegenBaseline, CallSitesBecomeBranchSites)
{
    ir::Program program = test::tinyProgram();
    ObjectFile obj = compileModule(tinyModule(program), Options{});
    const elf::Section &main_sec =
        obj.sections[obj.findSection(".text.main")];
    int calls = 0;
    for (const auto &piece : main_sec.pieces) {
        if (piece.site && piece.site->op == isa::Opcode::Call) {
            ++calls;
            EXPECT_EQ(piece.site->targetSymbol, "work");
            EXPECT_EQ(piece.site->targetBb, elf::kSectionStart);
        }
    }
    EXPECT_EQ(calls, 1);
}

TEST(CodegenBaseline, IntraSectionFallthroughEmitsNoJump)
{
    // In "work", bb1 ends with Br(3) and bb2 follows bb1; bb2's Br(3)
    // falls through to bb3 with no instruction.
    ir::Program program = test::tinyProgram();
    ObjectFile obj = compileModule(tinyModule(program), Options{});
    const elf::Section &sec = obj.sections[obj.findSection(".text.work")];
    int jumps = 0;
    for (const auto &piece : sec.pieces) {
        if (piece.site && piece.site->op == isa::Opcode::JmpNear)
            ++jumps;
    }
    // bb1 -> bb3 needs a jump over bb2; bb2 -> bb3 falls through.
    EXPECT_EQ(jumps, 1);
}

TEST(CodegenBaseline, AddrMapMatchesEmittedSizes)
{
    ir::Program program = test::tinyProgram();
    Options opts;
    opts.emitAddrMapSection = true;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    ASSERT_EQ(obj.addrMaps.size(), 2u);
    for (const auto &map : obj.addrMaps) {
        for (const auto &range : map.ranges) {
            int sec_idx = obj.findSection(".text." + range.sectionSymbol);
            ASSERT_GE(sec_idx, 0);
            uint64_t sec_size = obj.sections[sec_idx].size();
            const auto &blocks = range.blocks;
            ASSERT_FALSE(blocks.empty());
            EXPECT_EQ(blocks.front().offset, 0u);
            for (size_t i = 0; i + 1 < blocks.size(); ++i) {
                EXPECT_EQ(blocks[i].offset + blocks[i].size,
                          blocks[i + 1].offset);
            }
            EXPECT_EQ(blocks.back().offset + blocks.back().size, sec_size);
        }
    }
    EXPECT_GE(obj.findSection(".bb_addr_map"), 0);
}

TEST(CodegenBaseline, AddrMapSectionOnlyWhenRequested)
{
    ir::Program program = test::tinyProgram();
    ObjectFile obj = compileModule(tinyModule(program), Options{});
    EXPECT_EQ(obj.findSection(".bb_addr_map"), -1);
    EXPECT_FALSE(obj.addrMaps.empty())
        << "structured maps always travel with the object";
}

TEST(CodegenClusters, SplitsIntoNamedSections)
{
    ir::Program program = test::tinyProgram();
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0, 1, 3}, {2}};
    spec.coldIndex = 1;
    clusters.emplace("work", spec);

    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    EXPECT_GE(obj.findSection(".text.work"), 0);
    EXPECT_GE(obj.findSection(".text.work.cold"), 0);
    // main has no spec: single section.
    EXPECT_GE(obj.findSection(".text.main"), 0);
    EXPECT_EQ(obj.findSection(".text.main.cold"), -1);

    bool found_cold_symbol = false;
    for (const auto &sym : obj.symbols) {
        if (sym.name == "work.cold") {
            found_cold_symbol = true;
            EXPECT_EQ(sym.kind, elf::SymbolKind::Cluster);
            EXPECT_EQ(sym.parentFunction, "work");
        }
    }
    EXPECT_TRUE(found_cold_symbol);
}

TEST(CodegenClusters, NumericSuffixesForExtraClusters)
{
    ir::Program program = test::tinyProgram();
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0}, {1}, {3}, {2}};
    spec.coldIndex = 3;
    clusters.emplace("work", spec);

    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    EXPECT_GE(obj.findSection(".text.work.1"), 0);
    EXPECT_GE(obj.findSection(".text.work.2"), 0);
    EXPECT_GE(obj.findSection(".text.work.cold"), 0);

    // Four ranges in the address map, one per cluster.
    for (const auto &map : obj.addrMaps) {
        if (map.functionName == "work") {
            EXPECT_EQ(map.ranges.size(), 4u);
        }
    }
}

TEST(CodegenClusters, CrossSectionCondBrGetsExplicitFallthrough)
{
    // Cluster {0} alone: its CondBr(1, 2) has both successors in other
    // sections -> Jcc site plus a fall-through Jmp site.
    ir::Program program = test::tinyProgram();
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0}, {1}, {2}, {3}};
    clusters.emplace("work", spec);

    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    const elf::Section &sec = obj.sections[obj.findSection(".text.work")];
    ASSERT_EQ(sec.pieces.size(), 2u);
    ASSERT_TRUE(sec.pieces[0].site.has_value());
    EXPECT_EQ(sec.pieces[0].site->op, isa::Opcode::JccNear);
    EXPECT_EQ(sec.pieces[0].site->targetBb, 1u);
    ASSERT_TRUE(sec.pieces[1].site.has_value());
    EXPECT_EQ(sec.pieces[1].site->op, isa::Opcode::JmpNear);
    EXPECT_TRUE(sec.pieces[1].site->isFallThrough);
    EXPECT_EQ(sec.pieces[1].site->targetBb, 2u);
}

TEST(CodegenClusters, InvertedPolarityWhenTrueTargetIsNext)
{
    // Cluster {0, 1, ...}: trueTarget 1 follows the CondBr -> inverted
    // Jcc targeting the false successor.
    ir::Program program = test::tinyProgram();
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0, 1, 3}, {2}};
    spec.coldIndex = 1;
    clusters.emplace("work", spec);

    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    const elf::Section &sec = obj.sections[obj.findSection(".text.work")];
    ASSERT_TRUE(sec.pieces[0].site.has_value());
    const elf::BranchSite &site = *sec.pieces[0].site;
    EXPECT_EQ(site.op, isa::Opcode::JccNear);
    EXPECT_TRUE(site.flags & isa::kJccInvert);
    EXPECT_EQ(site.targetBb, 2u) << "targets the false successor";
}

TEST(CodegenAllMode, OneSectionPerBlock)
{
    ir::Program program = test::tinyProgram();
    Options opts;
    opts.bbSections = BbSectionsMode::All;
    ObjectFile obj = compileModule(tinyModule(program), opts);
    // work: 4 blocks, main: 4 blocks -> 8 text sections.
    int text_sections = 0;
    for (const auto &sec : obj.sections)
        text_sections += (sec.type == SectionType::Text);
    EXPECT_EQ(text_sections, 8);
    EXPECT_GE(obj.findSection(".text.work.b2"), 0);
}

TEST(CodegenEh, LandingPadSectionGetsNopPrefix)
{
    ir::Program program = test::tinyProgram();
    // Mark bb2 of work as a landing pad and isolate it in a section.
    program.modules[0]->functions[0]->blocks[2]->isLandingPad = true;
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0, 1, 3}, {2}};
    spec.coldIndex = 1;
    clusters.emplace("work", spec);

    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);

    const elf::Section &cold =
        obj.sections[obj.findSection(".text.work.cold")];
    ASSERT_FALSE(cold.pieces.empty());
    EXPECT_FALSE(cold.pieces[0].block.has_value())
        << "first piece is the nop prefix, not a block";
    ASSERT_EQ(cold.pieces[0].bytes.size(), 1u);
    EXPECT_EQ(cold.pieces[0].bytes[0],
              static_cast<uint8_t>(isa::Opcode::Nop));
    // The landing-pad block therefore starts at a nonzero offset.
    for (const auto &map : obj.addrMaps) {
        if (map.functionName != "work")
            continue;
        EXPECT_EQ(map.ranges[1].blocks[0].offset, 1u);
        EXPECT_TRUE(map.ranges[1].blocks[0].flags & elf::kBbLandingPad);
    }
}

TEST(CodegenEh, FrameDescriptorsPerSection)
{
    ir::Program program = test::tinyProgram();
    ClusterMap clusters;
    ClusterSpec spec;
    spec.clusters = {{0, 1, 3}, {2}};
    spec.coldIndex = 1;
    clusters.emplace("work", spec);
    Options opts;
    opts.bbSections = BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    ObjectFile obj = compileModule(tinyModule(program), opts);
    // work: 2 fragments, main: 1 -> 3 FDEs (paper 4.4).
    EXPECT_EQ(obj.frames.size(), 3u);
    int eh = obj.findSection(".eh_frame");
    ASSERT_GE(eh, 0);
    uint64_t expected = 0;
    for (const auto &fde : obj.frames)
        expected += fde.byteSize();
    EXPECT_GE(obj.sections[eh].size(), expected);
}

TEST(CodegenHandAsm, EmitsBlobWithoutAddrMap)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->functions[0]->isHandAsm = true;
    Options opts;
    opts.bbSections = BbSectionsMode::All; // Must be ignored for hand-asm.
    ObjectFile obj = compileModule(tinyModule(program), opts);

    const elf::Section &sec = obj.sections[obj.findSection(".text.work")];
    EXPECT_TRUE(sec.isHandAsm);
    // Trailing data blob piece has no block mark.
    EXPECT_FALSE(sec.pieces.back().block.has_value());
    EXPECT_FALSE(sec.pieces.back().bytes.empty());
    for (const auto &map : obj.addrMaps)
        EXPECT_NE(map.functionName, "work");
}

TEST(CodegenIntegrity, CheckedFunctionsRecorded)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->functions[1]->hasIntegrityCheck = true;
    ObjectFile obj = compileModule(tinyModule(program), Options{});
    ASSERT_EQ(obj.integrityCheckedFunctions.size(), 1u);
    EXPECT_EQ(obj.integrityCheckedFunctions[0], "main");
}

TEST(CodegenRodata, EmittedWhenConfigured)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->rodataBytes = 256;
    ObjectFile obj = compileModule(tinyModule(program), Options{});
    int idx = obj.findSection(".rodata.tiny_mod");
    ASSERT_GE(idx, 0);
    EXPECT_EQ(obj.sections[idx].size(), 256u);
    EXPECT_EQ(obj.sections[idx].type, SectionType::RoData);
}

TEST(CodegenDeterminism, SameInputSameBytes)
{
    ir::Program p1 = test::tinyProgram();
    ir::Program p2 = test::tinyProgram();
    Options opts;
    opts.emitAddrMapSection = true;
    EXPECT_EQ(compileModule(*p1.modules[0], opts).serialize(),
              compileModule(*p2.modules[0], opts).serialize());
}

TEST(CodegenDebugInfo, EmitsSectionAndRelocations)
{
    ir::Program program = test::tinyProgram();
    Options opts;
    opts.emitDebugInfo = true;
    ObjectFile obj = compileModule(tinyModule(program), opts);
    int dbg = obj.findSection(".debug_info");
    ASSERT_GE(dbg, 0);
    EXPECT_EQ(obj.sections[dbg].type, SectionType::Debug);
    EXPECT_GT(obj.sections[dbg].size(), 0u);
    EXPECT_GT(obj.debugRelocs, 0u);
    // Debug relocations land in the size breakdown's .rela bucket.
    auto with = obj.sizeBreakdown();
    ObjectFile plain = compileModule(tinyModule(program), Options{});
    auto without = plain.sizeBreakdown();
    EXPECT_GT(with.relocs, without.relocs);
    EXPECT_GT(with.debug, 0u);
    EXPECT_EQ(without.debug, 0u);
}

TEST(CodegenDebugInfo, MoreFragmentsMoreRangeEntries)
{
    ir::Program program = test::tinyProgram();
    Options single;
    single.emitDebugInfo = true;
    Options split;
    split.emitDebugInfo = true;
    split.bbSections = BbSectionsMode::All;
    ObjectFile a = compileModule(tinyModule(program), single);
    ObjectFile b = compileModule(tinyModule(program), split);
    EXPECT_GT(b.debugRelocs, a.debugRelocs)
        << "each extra fragment needs DW_AT_ranges endpoint relocations";
}

TEST(CodegenNames, ClusterSymbolNaming)
{
    EXPECT_EQ(clusterSymbolName("f", 0, false), "f");
    EXPECT_EQ(clusterSymbolName("f", 1, true), "f.cold");
    EXPECT_EQ(clusterSymbolName("f", 2, false), "f.2");
}

} // namespace
} // namespace propeller::codegen
