/**
 * @file
 * Death tests for the structural guardrails: producer bugs (unresolved
 * symbols, duplicate symbols, malformed cluster specs) must be caught by
 * assertions rather than corrupting output binaries.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "linker/linker.h"
#include "test_util.h"

namespace propeller {
namespace {

// The linker guardrails are PROPELLER_CHECKs on the abort-on-corruption
// wrapper (linker::link), which stay armed in Release builds, so these
// death tests run unconditionally.  Typed-error behaviour of the same
// failures via linkChecked() is covered in test_faults.cc.

TEST(GuardrailsDeathTest, LinkerRejectsUnresolvedSymbol)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    // Corrupt a call site to target a ghost symbol.
    for (auto &sec : objects[0].sections) {
        for (auto &piece : sec.pieces) {
            if (piece.site && piece.site->op == isa::Opcode::Call)
                piece.site->targetSymbol = "ghost";
        }
    }
    linker::Options opts;
    opts.entrySymbol = "main";
    EXPECT_DEATH(linker::link(objects, opts), "unresolved symbol");
}

TEST(GuardrailsDeathTest, LinkerRejectsDuplicateSectionSymbols)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    auto duplicate = objects;
    duplicate[0].name = "copy.o";
    objects.push_back(duplicate[0]);
    linker::Options opts;
    opts.entrySymbol = "main";
    EXPECT_DEATH(linker::link(objects, opts), "duplicate section symbol");
}

TEST(GuardrailsDeathTest, LinkerRejectsMissingEntry)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    linker::Options opts;
    opts.entrySymbol = "nonexistent";
    EXPECT_DEATH(linker::link(objects, opts), "entry symbol");
}

// The codegen guardrails are plain asserts (cluster specs reaching the
// backend have been sanitized; a violation is a producer bug), so their
// death tests only exist in Debug builds.
#ifndef NDEBUG

TEST(GuardrailsDeathTest, CodegenRejectsIncompleteClusterSpec)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ir::Program program = test::tinyProgram();
    codegen::ClusterMap clusters;
    codegen::ClusterSpec spec;
    spec.clusters = {{0, 1}}; // Blocks 2 and 3 of "work" unlisted.
    clusters.emplace("work", spec);
    codegen::Options opts;
    opts.bbSections = codegen::BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    EXPECT_DEATH(codegen::compileProgram(program, opts),
                 "cover every block");
}

TEST(GuardrailsDeathTest, CodegenRejectsWrongPrimaryHead)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ir::Program program = test::tinyProgram();
    codegen::ClusterMap clusters;
    codegen::ClusterSpec spec;
    spec.clusters = {{1, 0, 2, 3}}; // Entry not first.
    clusters.emplace("work", spec);
    codegen::Options opts;
    opts.bbSections = codegen::BbSectionsMode::Clusters;
    opts.clusters = &clusters;
    EXPECT_DEATH(codegen::compileProgram(program, opts),
                 "start with the entry block");
}

#endif // NDEBUG

} // namespace
} // namespace propeller
