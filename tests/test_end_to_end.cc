/**
 * @file
 * End-to-end integration tests: the full 4-phase Propeller workflow, the
 * BOLT path, and the cross-binary invariants the evaluation relies on
 * (identical logical execution across layouts, performance improvements,
 * startup integrity behaviour).
 */

#include <gtest/gtest.h>

#include "build/workflow.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller {
namespace {

using buildsys::Workflow;
using test::smallConfig;

class EndToEndTest : public ::testing::Test
{
  protected:
    static Workflow &
    workflow()
    {
        static Workflow wf(smallConfig());
        return wf;
    }
};

TEST_F(EndToEndTest, BaselineRuns)
{
    const linker::Executable &exe = workflow().baseline();
    sim::RunResult run =
        sim::run(exe, workload::evalOptions(workflow().config()));
    EXPECT_TRUE(run.startupOk);
    EXPECT_FALSE(run.fault) << "fault at pc " << run.faultPc;
    EXPECT_GT(run.counters.instructions, 100'000u);
}

TEST_F(EndToEndTest, MetadataBinaryMatchesBaselinePerformance)
{
    sim::MachineOptions opts = workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), opts);
    sim::RunResult meta = sim::run(workflow().metadataBinary(), opts);
    // The metadata section is not loaded: identical text, identical run.
    EXPECT_EQ(base.counters.instructions, meta.counters.instructions);
    EXPECT_EQ(base.counters.cycles(), meta.counters.cycles());
}

TEST_F(EndToEndTest, ProfileHasSamples)
{
    const profile::Profile &prof = workflow().profile();
    EXPECT_GT(prof.samples.size(), 20u);
    EXPECT_GT(prof.totalRetired, 0u);
}

TEST_F(EndToEndTest, PropellerBinaryExecutesIdenticalWork)
{
    sim::MachineOptions opts = workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), opts);
    sim::RunResult prop = sim::run(workflow().propellerBinary(), opts);
    ASSERT_TRUE(prop.startupOk);
    ASSERT_FALSE(prop.fault) << "fault at pc " << prop.faultPc;
    // Layout-invariant branch semantics: identical logical work (total
    // retired differs by exactly the layout-dependent jumps and padding).
    EXPECT_EQ(base.counters.logicalInstructions,
              prop.counters.logicalInstructions);
    EXPECT_EQ(base.counters.condBranches, prop.counters.condBranches);
    EXPECT_EQ(base.counters.calls, prop.counters.calls);
    EXPECT_EQ(base.counters.returns, prop.counters.returns);
}

TEST_F(EndToEndTest, PropellerImprovesPerformance)
{
    sim::MachineOptions opts = workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), opts);
    sim::RunResult prop = sim::run(workflow().propellerBinary(), opts);
    // Code layout must reduce cycles and taken branches.
    EXPECT_LT(prop.counters.cycles(), base.counters.cycles());
    EXPECT_LT(prop.counters.takenBranches, base.counters.takenBranches);
}

TEST_F(EndToEndTest, Phase4ReusesColdObjects)
{
    workflow().propellerBinary();
    const buildsys::PhaseReport &codegen =
        workflow().report("phase4.codegen");
    EXPECT_GT(codegen.cacheHits, 0u) << "cold objects must be cache hits";
    EXPECT_GT(codegen.actions, 0u) << "hot objects must be regenerated";
    EXPECT_LT(codegen.actions,
              workflow().program().modules.size());
}

TEST_F(EndToEndTest, BoltBinaryExecutesIdenticalWorkAndImproves)
{
    sim::MachineOptions opts = workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), opts);
    linker::Executable bo = workflow().boltBinary();
    sim::RunResult bolt = sim::run(bo, opts);
    ASSERT_TRUE(bolt.startupOk); // testapp has no integrity checks.
    ASSERT_FALSE(bolt.fault) << "fault at pc " << bolt.faultPc;
    EXPECT_EQ(base.counters.logicalInstructions,
              bolt.counters.logicalInstructions);
    EXPECT_EQ(base.counters.condBranches, bolt.counters.condBranches);
    EXPECT_LT(bolt.counters.cycles(), base.counters.cycles());
}

TEST_F(EndToEndTest, BoltBinaryIsLarger)
{
    linker::Executable bo = workflow().boltBinary();
    EXPECT_GT(bo.fileSize(), workflow().baseline().fileSize());
    // Propeller's optimized binary stays close to baseline size.
    EXPECT_LT(workflow().propellerBinary().sizes.text,
              bo.sizes.text / 2);
}

TEST_F(EndToEndTest, IntegrityCheckedAppCrashesUnderBoltNotPropeller)
{
    workload::WorkloadConfig cfg = smallConfig(77);
    cfg.name = "checkedapp";
    cfg.integrityCheckedFunctions = 2;
    Workflow wf(cfg);

    sim::MachineOptions opts = workload::evalOptions(cfg);
    sim::RunResult base = sim::run(wf.baseline(), opts);
    EXPECT_TRUE(base.startupOk);

    sim::RunResult prop = sim::run(wf.propellerBinary(), opts);
    EXPECT_TRUE(prop.startupOk) << "relinking regenerates the constants";

    linker::Executable bo = wf.boltBinary();
    sim::RunResult bolt = sim::run(bo, opts);
    EXPECT_FALSE(bolt.startupOk)
        << "binary rewriting must trip the startup integrity check";
}

TEST_F(EndToEndTest, IterativePropellerStillCorrect)
{
    sim::MachineOptions opts = workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), opts);
    linker::Executable po2 = workflow().iterativePropellerBinary();
    sim::RunResult iter = sim::run(po2, opts);
    ASSERT_TRUE(iter.startupOk);
    ASSERT_FALSE(iter.fault);
    EXPECT_EQ(base.counters.logicalInstructions,
              iter.counters.logicalInstructions);
}

} // namespace
} // namespace propeller
