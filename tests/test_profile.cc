/**
 * @file
 * Unit tests for the profile container: serialization, size accounting
 * and LBR aggregation into branch/fall-through counts.
 */

#include <gtest/gtest.h>

#include "profile/profile.h"

namespace propeller::profile {
namespace {

Profile
sampleProfile()
{
    Profile p;
    p.binaryHash = 0xfeedface;
    p.totalRetired = 123456;

    LbrSample s1;
    s1.count = 3;
    s1.records[0] = {0x400010, 0x400100}; // Taken branch.
    s1.records[1] = {0x400120, 0x400200}; // Fall-through 100..120 between.
    s1.records[2] = {0x400210, 0x400050};
    p.samples.push_back(s1);

    LbrSample s2;
    s2.count = 2;
    s2.records[0] = {0x400010, 0x400100}; // Same branch again.
    s2.records[1] = {0x400120, 0x400200};
    p.samples.push_back(s2);
    return p;
}

TEST(Profile, SerializeRoundtrip)
{
    Profile p = sampleProfile();
    Profile q = Profile::deserialize(p.serialize());
    EXPECT_EQ(q.binaryHash, p.binaryHash);
    EXPECT_EQ(q.totalRetired, p.totalRetired);
    ASSERT_EQ(q.samples.size(), p.samples.size());
    for (size_t i = 0; i < p.samples.size(); ++i) {
        ASSERT_EQ(q.samples[i].count, p.samples[i].count);
        for (unsigned j = 0; j < p.samples[i].count; ++j)
            EXPECT_EQ(q.samples[i].records[j], p.samples[i].records[j]);
    }
}

TEST(Profile, SizeScalesWithRecords)
{
    Profile p = sampleProfile();
    uint64_t base = p.sizeInBytes();
    LbrSample full;
    full.count = kLbrDepth;
    p.samples.push_back(full);
    EXPECT_EQ(p.sizeInBytes(), base + 8 + kLbrDepth * 16ull);
}

TEST(Profile, EmptyProfileRoundtrip)
{
    Profile p;
    Profile q = Profile::deserialize(p.serialize());
    EXPECT_TRUE(q.samples.empty());
    EXPECT_EQ(q.totalRetired, 0u);
}

TEST(Aggregate, CountsBranches)
{
    AggregatedProfile agg = aggregate(sampleProfile());
    // (0x400010 -> 0x400100) appears twice across samples.
    uint64_t key = AggregatedProfile::key(0x400010, 0x400100);
    ASSERT_TRUE(agg.branches.count(key));
    EXPECT_EQ(agg.branches.at(key), 2u);
    EXPECT_EQ(agg.totalBranchEvents, 5u);
}

TEST(Aggregate, BuildsFallThroughRanges)
{
    AggregatedProfile agg = aggregate(sampleProfile());
    // Between record 0 (to=0x400100) and record 1 (from=0x400120).
    uint64_t key = AggregatedProfile::key(0x400100, 0x400120);
    ASSERT_TRUE(agg.ranges.count(key));
    EXPECT_EQ(agg.ranges.at(key), 2u);
}

TEST(Aggregate, SkipsBackwardRanges)
{
    Profile p;
    LbrSample s;
    s.count = 2;
    s.records[0] = {0x400010, 0x400500};
    s.records[1] = {0x400100, 0x400000}; // from < previous to.
    p.samples.push_back(s);
    AggregatedProfile agg = aggregate(p);
    EXPECT_TRUE(agg.ranges.empty())
        << "inconsistent (wrapped) ranges must be dropped";
    EXPECT_EQ(agg.branches.size(), 2u);
}

TEST(Aggregate, KeyHelpersInvert)
{
    uint64_t key = AggregatedProfile::key(0x12345, 0x678);
    EXPECT_EQ(AggregatedProfile::keyFrom(key), 0x12345u);
    EXPECT_EQ(AggregatedProfile::keyTo(key), 0x678u);
}

} // namespace
} // namespace propeller::profile
