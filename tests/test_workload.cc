/**
 * @file
 * Unit tests for the workload generator: structural validity of every
 * named configuration (parameterized), characteristic targets and
 * determinism.
 */

#include <gtest/gtest.h>

#include <map>

#include "ir/verifier.h"
#include "workload/workload.h"

namespace propeller::workload {
namespace {

class NamedConfig : public ::testing::TestWithParam<const char *>
{
  protected:
    const WorkloadConfig &config() { return configByName(GetParam()); }
};

TEST_P(NamedConfig, GeneratesValidProgram)
{
    ir::Program program = generate(config());
    std::vector<support::Status> errors = ir::verifyAll(program);
    EXPECT_TRUE(errors.empty())
        << errors.size() << " errors, first: "
        << (errors.empty() ? "ok" : errors[0].toString());
}

TEST_P(NamedConfig, CharacteristicsNearTargets)
{
    const WorkloadConfig &cfg = config();
    ir::Program program = generate(cfg);
    // +1 for the entry function.
    EXPECT_EQ(program.functionCount(), cfg.functions + 1u);
    EXPECT_LE(program.modules.size(), cfg.modules);
    EXPECT_GE(program.modules.size(), cfg.modules * 9 / 10);

    // Block count within a factor band of min..max expectation.
    double mean_blocks =
        cfg.minBlocks + (cfg.maxBlocks - cfg.minBlocks) / 3.0;
    double expected = mean_blocks * cfg.functions;
    EXPECT_GT(program.blockCount(), expected * 0.5);
    EXPECT_LT(program.blockCount(), expected * 1.6);

    // Structural features present as configured.
    uint32_t hand_asm = 0;
    uint32_t checked = 0;
    for (const auto &mod : program.modules) {
        for (const auto &fn : mod->functions) {
            hand_asm += fn->isHandAsm;
            checked += fn->hasIntegrityCheck;
        }
    }
    EXPECT_EQ(hand_asm, cfg.handAsmFunctions);
    EXPECT_EQ(checked, cfg.integrityCheckedFunctions);
}

INSTANTIATE_TEST_SUITE_P(Apps, NamedConfig,
                         ::testing::Values("clang", "mysql", "spanner",
                                           "search", "superroot",
                                           "bigtable"));
INSTANTIATE_TEST_SUITE_P(Spec, NamedConfig,
                         ::testing::Values("500.perlbench", "502.gcc",
                                           "505.mcf", "523.xalancbmk",
                                           "525.x264", "531.deepsjeng",
                                           "541.leela", "557.xz"));

TEST(Workload, Deterministic)
{
    WorkloadConfig cfg = configByName("505.mcf");
    ir::Program a = generate(cfg);
    ir::Program b = generate(cfg);
    ASSERT_EQ(a.modules.size(), b.modules.size());
    EXPECT_EQ(a.instCount(), b.instCount());
    EXPECT_EQ(a.blockCount(), b.blockCount());
    for (size_t m = 0; m < a.modules.size(); ++m) {
        ASSERT_EQ(a.modules[m]->functions.size(),
                  b.modules[m]->functions.size());
        EXPECT_EQ(a.modules[m]->name, b.modules[m]->name);
    }
}

TEST(Workload, SeedChangesProgram)
{
    WorkloadConfig cfg = configByName("505.mcf");
    ir::Program a = generate(cfg);
    cfg.seed += 1;
    ir::Program b = generate(cfg);
    EXPECT_NE(a.instCount(), b.instCount());
}

TEST(Workload, EntryIsMain)
{
    ir::Program program = generate(configByName("505.mcf"));
    EXPECT_EQ(program.entryFunction, "main");
    ASSERT_NE(program.findFunction("main"), nullptr);
}

TEST(Workload, ColdBlocksSunkToFunctionEnd)
{
    // PGO-quality baseline: no never-executed branch target should sit
    // between two hot blocks in the original order.  Spot check: every
    // CondBr with bias 0 targets a block at a higher position than its
    // own block.
    ir::Program program = generate(configByName("541.leela"));
    int checked = 0;
    for (const auto &mod : program.modules) {
        for (const auto &fn : mod->functions) {
            std::map<uint32_t, size_t> pos;
            for (size_t i = 0; i < fn->blocks.size(); ++i)
                pos[fn->blocks[i]->id] = i;
            for (size_t i = 0; i < fn->blocks.size(); ++i) {
                const ir::Inst &term = fn->blocks[i]->terminator();
                if (term.kind == ir::InstKind::CondBr && term.bias == 0) {
                    EXPECT_GT(pos[term.trueTarget], i)
                        << fn->name << " cold target before branch";
                    ++checked;
                }
            }
        }
    }
    EXPECT_GT(checked, 5) << "workload must contain never-taken paths";
}

TEST(Workload, ConfigTablesComplete)
{
    EXPECT_EQ(appConfigs().size(), 6u);
    EXPECT_EQ(specConfigs().size(), 8u);
    for (const auto &cfg : appConfigs()) {
        EXPECT_FALSE(cfg.paperText.empty());
        EXPECT_GT(cfg.hotFunctions, 0u);
        EXPECT_GT(cfg.functions, cfg.hotFunctions);
    }
    EXPECT_TRUE(configByName("search").hugePages);
    EXPECT_TRUE(configByName("spanner").distributedBuild);
    EXPECT_FALSE(configByName("clang").distributedBuild);
    EXPECT_GT(configByName("superroot").integrityCheckedFunctions, 0u);
    EXPECT_EQ(configByName("clang").integrityCheckedFunctions, 0u);
}

TEST(Workload, OptionsDeriveFromConfig)
{
    const WorkloadConfig &cfg = configByName("search");
    sim::MachineOptions eval = evalOptions(cfg);
    sim::MachineOptions prof = profileOptions(cfg);
    EXPECT_EQ(eval.maxInstructions, cfg.evalInstructions);
    EXPECT_FALSE(eval.collectLbr);
    EXPECT_TRUE(prof.collectLbr);
    EXPECT_NE(eval.seed, prof.seed)
        << "profiling uses a different input stream than evaluation";
}

} // namespace
} // namespace propeller::workload
