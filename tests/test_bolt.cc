/**
 * @file
 * Unit tests for the BOLT baseline: disassembly, CFG reconstruction,
 * profile conversion and the monolithic rewriter.
 */

#include <gtest/gtest.h>

#include "bolt/bolt.h"
#include "analysis/verifier.h"
#include "bolt/disassembler.h"
#include "build/workflow.h"
#include "codegen/codegen.h"
#include "linker/linker.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller::bolt {
namespace {

linker::Executable
linkTiny(bool with_handasm = false)
{
    ir::Program program = test::tinyProgram();
    if (with_handasm)
        program.modules[0]->functions[0]->isHandAsm = true;
    linker::Options lopts;
    lopts.entrySymbol = "main";
    lopts.emitRelocs = true;
    return linker::link(codegen::compileProgram(program, {}), lopts);
}

TEST(Disassembler, DiscoversAndDecodesFunctions)
{
    linker::Executable exe = linkTiny();
    auto funcs = disassembleBinary(exe);
    ASSERT_EQ(funcs.size(), 2u);
    for (const auto &fn : funcs) {
        EXPECT_TRUE(fn.ok) << fn.name;
        EXPECT_FALSE(fn.insts.empty());
        EXPECT_FALSE(fn.blocks.empty());
        // Instructions tile the range exactly.
        uint64_t covered = 0;
        for (const auto &bi : fn.insts)
            covered += bi.inst.size();
        EXPECT_EQ(covered, fn.end - fn.start);
        // Blocks tile the range exactly.
        EXPECT_EQ(fn.blocks.front().start, fn.start);
        for (size_t b = 0; b + 1 < fn.blocks.size(); ++b)
            EXPECT_EQ(fn.blocks[b].end, fn.blocks[b + 1].start);
        EXPECT_EQ(fn.blocks.back().end, fn.end);
    }
}

TEST(Disassembler, BlockAtResolvesAddresses)
{
    linker::Executable exe = linkTiny();
    auto funcs = disassembleBinary(exe);
    const BoltFunction &fn = funcs[0];
    EXPECT_EQ(fn.blockAt(fn.start), 0);
    EXPECT_EQ(fn.blockAt(fn.end), -1);
    EXPECT_GE(fn.blockAt(fn.end - 1), 0);
}

TEST(Disassembler, HandAsmEmbeddedDataFailsDecoding)
{
    linker::Executable exe = linkTiny(true);
    auto funcs = disassembleBinary(exe);
    bool saw_failure = false;
    for (const auto &fn : funcs) {
        if (fn.name == "work") {
            EXPECT_FALSE(fn.ok)
                << "embedded data must defeat linear disassembly";
            saw_failure = true;
        }
    }
    EXPECT_TRUE(saw_failure);
}

TEST(Disassembler, FootprintScalesWithCode)
{
    linker::Executable exe = linkTiny();
    auto funcs = disassembleBinary(exe);
    for (const auto &fn : funcs)
        EXPECT_GT(fn.footprint(), fn.insts.size() * 56);
}

profile::Profile
profileOf(const linker::Executable &exe)
{
    sim::MachineOptions opts;
    opts.seed = 5;
    opts.maxInstructions = 300'000;
    opts.collectLbr = true;
    opts.lbrSamplePeriod = 1'000;
    sim::RunResult r = sim::run(exe, opts);
    return r.profile;
}

TEST(Perf2Bolt, ConvertsAndChargesMemory)
{
    linker::Executable exe = linkTiny();
    profile::Profile prof = profileOf(exe);
    BoltStats stats;
    MemoryMeter meter;
    BoltProfile converted = convertProfile(exe, prof, &stats, &meter);
    EXPECT_FALSE(converted.agg.branches.empty());
    EXPECT_GT(stats.convertPeakMemory, exe.text.size())
        << "conversion disassembles the whole binary";
    EXPECT_GT(stats.disassembledInsts, 0u);
    EXPECT_EQ(meter.peak(), stats.convertPeakMemory);
    EXPECT_EQ(meter.live(), 0u);
}

TEST(Perf2Bolt, SelectiveProcessingCutsMemory)
{
    // Lightning-BOLT selective processing (paper section 5.1): resolve
    // sampled functions from the symbol table and disassemble only those.
    workload::WorkloadConfig cfg = test::smallConfig(61);
    cfg.name = "selective";
    buildsys::Workflow wf(cfg);
    BoltStats full;
    convertProfile(wf.boltInputBinary(), wf.profile(), &full);
    BoltStats lite;
    convertProfile(wf.boltInputBinary(), wf.profile(), &lite, nullptr,
                   /*selective=*/true);
    EXPECT_LT(lite.convertPeakMemory, full.convertPeakMemory);
    EXPECT_LT(lite.disassembledInsts, full.disassembledInsts);
    EXPECT_GT(lite.disassembledInsts, 0u);
}

TEST(BoltOptimize, RewrittenBinaryRunsIdenticalWork)
{
    linker::Executable exe = linkTiny();
    profile::Profile prof = profileOf(exe);
    BoltProfile converted = convertProfile(exe, prof);
    BoltStats stats;
    linker::Executable bo = optimize(exe, converted, {}, &stats);

    sim::MachineOptions opts;
    opts.seed = 5;
    opts.maxInstructions = 100'000;
    sim::RunResult base = sim::run(exe, opts);
    sim::RunResult bolted = sim::run(bo, opts);
    ASSERT_TRUE(bolted.startupOk);
    ASSERT_FALSE(bolted.fault) << "fault at " << std::hex << bolted.faultPc;
    EXPECT_EQ(base.counters.logicalInstructions,
              bolted.counters.logicalInstructions);
    EXPECT_EQ(base.counters.condBranches, bolted.counters.condBranches);
    EXPECT_EQ(base.counters.calls, bolted.counters.calls);
}

TEST(BoltOptimize, NewSegmentIs2MAligned)
{
    linker::Executable exe = linkTiny();
    BoltProfile converted = convertProfile(exe, profileOf(exe));
    BoltStats stats;
    linker::Executable bo = optimize(exe, converted, {}, &stats);
    EXPECT_GT(stats.newTextBytes, 0u);
    // The entry moved to the new segment, which starts 2M-aligned past
    // the original text.
    EXPECT_GE(bo.entryAddress, 2ull * 1024 * 1024);
    EXPECT_GT(bo.text.size(), exe.text.size())
        << "original text is retained";
}

TEST(BoltOptimize, AlignmentCanBeDisabled)
{
    linker::Executable exe = linkTiny();
    BoltProfile converted = convertProfile(exe, profileOf(exe));
    BoltOptions opts;
    opts.alignTextTo2M = false;
    linker::Executable bo = optimize(exe, converted, opts);
    EXPECT_LT(bo.text.size(), 2ull * 1024 * 1024);
}

TEST(BoltOptimize, SymbolsUpdatedToNewSegment)
{
    linker::Executable exe = linkTiny();
    BoltProfile converted = convertProfile(exe, profileOf(exe));
    linker::Executable bo = optimize(exe, converted, {});
    const linker::FuncRange *range = bo.findSymbol("main");
    ASSERT_NE(range, nullptr);
    EXPECT_GT(range->start, exe.textEnd());
}

TEST(BoltOptimize, LiteModeSkipsColdFunctions)
{
    linker::Executable exe = linkTiny();
    BoltProfile converted = convertProfile(exe, profileOf(exe));
    BoltOptions lite;
    lite.lite = true;
    BoltStats lite_stats;
    optimize(exe, converted, lite, &lite_stats);
    BoltStats full_stats;
    optimize(exe, converted, {}, &full_stats);
    EXPECT_LE(lite_stats.functionsProcessed,
              full_stats.functionsProcessed);
    EXPECT_LE(lite_stats.newTextBytes, full_stats.newTextBytes);
}

TEST(BoltOptimize, HandAsmFunctionStaysInPlace)
{
    linker::Executable exe = linkTiny(true);
    BoltProfile converted = convertProfile(exe, profileOf(exe));
    BoltStats stats;
    linker::Executable bo = optimize(exe, converted, {}, &stats);
    EXPECT_GT(stats.functionsSkipped, 0u);
    const linker::FuncRange *work = bo.findSymbol("work");
    ASSERT_NE(work, nullptr);
    EXPECT_LT(work->start, exe.textEnd())
        << "non-disassemblable function keeps its old address";

    // The binary must still run correctly (calls into old text).
    sim::MachineOptions opts;
    opts.maxInstructions = 50'000;
    sim::RunResult r = sim::run(bo, opts);
    EXPECT_TRUE(r.startupOk);
    EXPECT_FALSE(r.fault);
}

TEST(BoltOptimize, IntegrityChecksCopiedVerbatim)
{
    ir::Program program = test::tinyProgram();
    program.modules[0]->functions[0]->hasIntegrityCheck = true;
    linker::Options lopts;
    lopts.entrySymbol = "main";
    lopts.emitRelocs = true;
    linker::Executable exe =
        linker::link(codegen::compileProgram(program, {}), lopts);

    BoltProfile converted = convertProfile(exe, profileOf(exe));
    linker::Executable bo = optimize(exe, converted, {});
    ASSERT_EQ(bo.integrityChecks.size(), 1u);
    EXPECT_EQ(bo.integrityChecks[0].expectedHash,
              exe.integrityChecks[0].expectedHash);

    sim::MachineOptions opts;
    opts.maxInstructions = 1'000;
    EXPECT_FALSE(sim::run(bo, opts).startupOk)
        << "moved code no longer matches the baked-in constant";
}

TEST(BoltOptimize, ReducesTakenBranches)
{
    workload::WorkloadConfig cfg = test::smallConfig(21);
    cfg.name = "bolttest";
    buildsys::Workflow wf(cfg);
    sim::MachineOptions opts = workload::evalOptions(cfg);
    sim::RunResult base = sim::run(wf.baseline(), opts);
    linker::Executable bo = wf.boltBinary();
    sim::RunResult bolted = sim::run(bo, opts);
    EXPECT_LT(bolted.counters.takenBranches, base.counters.takenBranches);
}

/**
 * The disassembler's failure classification and the static verifier's
 * PV004 verdict come from the same decode walk: whatever range decode
 * rejects, the verifier must flag — on the same inputs, for the same
 * reason.
 */
TEST(Disassembler, EmbeddedDataClassifiedAndVerifierAgrees)
{
    linker::Executable exe = linkTiny();
    const linker::FuncRange *victim = nullptr;
    for (const auto &sym : exe.symbols)
        if (sym.isPrimary && !victim)
            victim = &sym;
    ASSERT_NE(victim, nullptr);

    // Plant an invalid-opcode byte at the second instruction boundary.
    RangeDisassembly clean =
        disassembleRange(exe, victim->start, victim->end);
    ASSERT_TRUE(clean.ok());
    ASSERT_GT(clean.insts.size(), 1u);
    uint64_t plant = clean.insts[1].addr;
    exe.text[plant - exe.textBase] = 0x00; // not a valid opcode

    RangeDisassembly dis =
        disassembleRange(exe, victim->start, victim->end);
    EXPECT_FALSE(dis.ok());
    EXPECT_EQ(dis.error, DecodeError::InvalidOpcode);
    EXPECT_EQ(dis.errorAddr, plant);
    EXPECT_STREQ(decodeErrorName(dis.error), "invalid-opcode");

    analysis::VerifyOptions opts;
    opts.checkIntegrity = false; // byte patch invalidates the hash too
    analysis::VerifyReport rep = analysis::verifyExecutable(exe, opts);
    bool pv004 = false;
    for (const auto &d : rep.engine.diagnostics())
        pv004 = pv004 || (d.id == analysis::CheckId::PV004 &&
                          d.address == plant &&
                          d.function == victim->parentFunction);
    EXPECT_TRUE(pv004) << rep.engine.renderText();
}

TEST(Disassembler, TruncationClassifiedAndVerifierAgrees)
{
    linker::Executable exe = linkTiny();
    linker::FuncRange *victim = nullptr;
    for (auto &sym : exe.symbols)
        if (sym.isPrimary && !victim)
            victim = &sym;
    ASSERT_NE(victim, nullptr);

    // Cut the symbol one byte into its last multi-byte instruction.
    RangeDisassembly clean =
        disassembleRange(exe, victim->start, victim->end);
    ASSERT_TRUE(clean.ok());
    const BoltInst *wide = nullptr;
    for (const auto &bi : clean.insts)
        if (bi.inst.size() >= 2)
            wide = &bi;
    ASSERT_NE(wide, nullptr);
    uint64_t cut = wide->addr + 1;
    victim->end = cut;

    RangeDisassembly dis =
        disassembleRange(exe, victim->start, victim->end);
    EXPECT_FALSE(dis.ok());
    EXPECT_EQ(dis.error, DecodeError::Truncated);
    EXPECT_EQ(dis.errorAddr, wide->addr);

    analysis::VerifyOptions opts;
    opts.checkAddrMap = false;  // the shrunk symbol no longer tiles
    opts.checkEhFrame = false;  // nor matches its FDE length
    analysis::VerifyReport rep = analysis::verifyExecutable(exe, opts);
    bool pv004 = false;
    for (const auto &d : rep.engine.diagnostics())
        pv004 = pv004 || (d.id == analysis::CheckId::PV004 &&
                          d.function == victim->parentFunction);
    EXPECT_TRUE(pv004) << rep.engine.renderText();
}

TEST(Disassembler, RangeOutsideImageIsTruncated)
{
    linker::Executable exe = linkTiny();
    RangeDisassembly dis =
        disassembleRange(exe, exe.textBase - 16, exe.textBase);
    EXPECT_FALSE(dis.ok());
    EXPECT_EQ(dis.error, DecodeError::Truncated);
}

TEST(BoltOptimize, MemoryScalesWithWholeBinary)
{
    workload::WorkloadConfig cfg = test::smallConfig(31);
    cfg.name = "boltmem";
    buildsys::Workflow wf(cfg);
    bolt::BoltStats stats;
    wf.boltBinary({}, &stats);
    // BOLT's peak includes per-instruction state for the entire binary.
    EXPECT_GT(stats.optPeakMemory,
              wf.baseline().text.size() * 2)
        << "disassembly-driven memory must dominate binary size";
}

} // namespace
} // namespace propeller::bolt
