/**
 * @file
 * Tests for the section 3.5 extension: the data-cache model, PEBS-style
 * miss profiling, the whole-program prefetch pass, directive round-trips
 * and end-to-end prefetch insertion through the workflow.
 */

#include <gtest/gtest.h>

#include "build/workflow.h"
#include "codegen/codegen.h"
#include "linker/linker.h"
#include "propeller/prefetch.h"
#include "support/rng.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller::core {
namespace {

/** main loops over a block with a load from a streaming site. */
ir::Program
streamingProgram(uint32_t site)
{
    using namespace ir;
    Program program;
    program.name = "stream";
    program.entryFunction = "main";
    auto mod = std::make_unique<Module>();
    mod->name = "m";
    auto fn = test::makeFunction("main", 4);
    fn->blocks[0]->insts = {makeWork(0, 0), makeBr(1)};
    fn->blocks[1]->insts = {makeLoad(1, site), makeWork(1, 2),
                            makeLoopBr(1, 2, 255, 1)};
    fn->blocks[2]->insts = {makeLoopBr(1, 3, 255, 2)};
    fn->blocks[3]->insts = {makeRet()};
    mod->functions.push_back(std::move(fn));
    program.modules.push_back(std::move(mod));
    return program;
}

/** Find a site id with streaming behaviour (stride 64; see machine.cc). */
uint32_t
findStreamingSite()
{
    for (uint32_t site = 1; site < 4096; ++site) {
        if ((mix64(site ^ 0xd47aull) & 7) == 0)
            return site;
    }
    return 1;
}

/** Find a cache-resident site (stride 0). */
uint32_t
findResidentSite()
{
    for (uint32_t site = 1; site < 4096; ++site) {
        if ((mix64(site ^ 0xd47aull) & 7) >= 2)
            return site;
    }
    return 1;
}

linker::Executable
linkProgram(const ir::Program &program, const codegen::Options &copts = {})
{
    linker::Options lopts;
    lopts.entrySymbol = "main";
    return linker::link(codegen::compileProgram(program, copts), lopts);
}

TEST(DataCache, OffByDefault)
{
    ir::Program program = streamingProgram(findStreamingSite());
    sim::MachineOptions opts;
    opts.maxInstructions = 10'000;
    sim::RunResult r = sim::run(linkProgram(program), opts);
    EXPECT_EQ(r.counters.dcacheAccesses, 0u);
    EXPECT_EQ(r.counters.dcacheMisses, 0u);
}

TEST(DataCache, StreamingSiteMissesEveryAccess)
{
    ir::Program program = streamingProgram(findStreamingSite());
    sim::MachineOptions opts;
    opts.maxInstructions = 10'000;
    opts.modelDataCache = true;
    sim::RunResult r = sim::run(linkProgram(program), opts);
    EXPECT_GT(r.counters.dcacheAccesses, 1000u);
    // Stride 64 = a new line every access: ~100% miss rate.
    EXPECT_GT(r.counters.dcacheMisses,
              r.counters.dcacheAccesses * 95 / 100);
    EXPECT_GT(r.counters.dataStallQC, 0u);
}

TEST(DataCache, ResidentSiteHitsAfterWarmup)
{
    ir::Program program = streamingProgram(findResidentSite());
    sim::MachineOptions opts;
    opts.maxInstructions = 10'000;
    opts.modelDataCache = true;
    sim::RunResult r = sim::run(linkProgram(program), opts);
    EXPECT_LT(r.counters.dcacheMisses, 10u);
}

TEST(DataCache, MissProfileRanksStreamingSites)
{
    ir::Program program = streamingProgram(findStreamingSite());
    sim::MachineOptions opts;
    opts.maxInstructions = 50'000;
    opts.modelDataCache = true;
    opts.collectMissProfile = true;
    opts.missSamplePeriod = 4;
    sim::RunResult r = sim::run(linkProgram(program), opts);
    ASSERT_FALSE(r.missProfile.siteMisses.empty());
    EXPECT_GT(r.missProfile.totalSamples, 100u);
    EXPECT_TRUE(r.missProfile.siteMisses.count(
        static_cast<uint16_t>(findStreamingSite())));
}

TEST(PrefetchPass, SelectsHottestSites)
{
    profile::MissProfile misses;
    misses.siteMisses[10] = 1000;
    misses.siteMisses[20] = 500;
    misses.siteMisses[30] = 2; // Below the sample threshold.
    PrefetchOptions opts;
    opts.minMissSamples = 4;
    opts.maxSites = 8;
    opts.lookahead = 6;
    PrefetchMap map = computePrefetchDirectives(misses, opts);
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.at(10), 6);
    EXPECT_EQ(map.count(30), 0u);
}

TEST(PrefetchPass, MaxSitesCap)
{
    profile::MissProfile misses;
    for (uint16_t s = 0; s < 100; ++s)
        misses.siteMisses[s] = 100 + s;
    PrefetchOptions opts;
    opts.maxSites = 10;
    PrefetchMap map = computePrefetchDirectives(misses, opts);
    EXPECT_EQ(map.size(), 10u);
    // The cap keeps the hottest sites (largest counts = highest ids here).
    EXPECT_TRUE(map.count(99));
    EXPECT_FALSE(map.count(0));
}

TEST(PrefetchDirectives, TextRoundtrip)
{
    PrefetchMap map = {{7, 4}, {1000, 8}};
    PrefetchMap parsed;
    ASSERT_TRUE(
        parsePrefetchDirectives(serializePrefetchDirectives(map), parsed));
    EXPECT_EQ(parsed, map);
}

TEST(PrefetchDirectives, RejectsMalformed)
{
    PrefetchMap out;
    EXPECT_FALSE(parsePrefetchDirectives("abc\n", out));
    EXPECT_FALSE(parsePrefetchDirectives("1\n", out));
    EXPECT_FALSE(parsePrefetchDirectives("1 2 3\n", out));
    EXPECT_FALSE(parsePrefetchDirectives("99999 1\n", out));
    EXPECT_TRUE(parsePrefetchDirectives("# comment\n5 4\n", out));
    EXPECT_EQ(out.size(), 1u);
}

TEST(PrefetchCodegen, InsertsBeforeTargetedLoads)
{
    ir::Program program = streamingProgram(42);
    std::map<uint16_t, uint8_t> prefetches = {{42, 4}};
    codegen::Options copts;
    copts.prefetches = &prefetches;
    linker::Executable with = linkProgram(program, copts);
    linker::Executable without = linkProgram(program);
    EXPECT_GT(with.text.size(), without.text.size());

    // Decode the loop block: a Prefetch must appear before the load.
    sim::MachineOptions opts;
    opts.maxInstructions = 1'000;
    sim::RunResult r = sim::run(with, opts);
    EXPECT_GT(r.counters.prefetchesIssued, 100u);
}

TEST(PrefetchCodegen, EliminatesStreamingMisses)
{
    uint32_t site = findStreamingSite();
    ir::Program program = streamingProgram(site);
    std::map<uint16_t, uint8_t> prefetches = {
        {static_cast<uint16_t>(site), 4}};
    codegen::Options copts;
    copts.prefetches = &prefetches;

    sim::MachineOptions opts;
    opts.maxInstructions = 50'000;
    opts.modelDataCache = true;
    sim::RunResult plain = sim::run(linkProgram(program), opts);
    sim::RunResult fetched = sim::run(linkProgram(program, copts), opts);

    EXPECT_LT(fetched.counters.dcacheMisses,
              plain.counters.dcacheMisses / 5)
        << "prefetching the +4 access must turn misses into hits";
    EXPECT_LT(fetched.counters.cycles(), plain.counters.cycles());
    EXPECT_EQ(fetched.counters.logicalInstructions,
              plain.counters.logicalInstructions)
        << "prefetches are layout-class instructions, not logical work";
}

TEST(PrefetchWorkflow, EndToEndImprovesDataStalls)
{
    buildsys::Workflow wf(test::smallConfig(47));
    core::PrefetchMap directives;
    linker::Executable pf = wf.propellerBinaryWithPrefetch(&directives);
    EXPECT_FALSE(directives.empty()) << "workload must have miss sites";

    sim::MachineOptions opts = workload::evalOptions(wf.config());
    opts.modelDataCache = true;
    sim::RunResult base = sim::run(wf.propellerBinary(), opts);
    sim::RunResult fetched = sim::run(pf, opts);
    ASSERT_TRUE(fetched.startupOk);
    ASSERT_FALSE(fetched.fault);
    EXPECT_EQ(base.counters.logicalInstructions,
              fetched.counters.logicalInstructions);
    EXPECT_LT(fetched.counters.dcacheMisses, base.counters.dcacheMisses);
    EXPECT_LT(fetched.counters.cycles(), base.counters.cycles());
}

TEST(PrefetchWorkflow, OnlyAffectedObjectsRebuilt)
{
    buildsys::Workflow wf(test::smallConfig(47));
    wf.propellerBinary();
    wf.propellerBinaryWithPrefetch();
    const buildsys::PhaseReport &report = wf.report("prefetch.codegen");
    EXPECT_GT(report.cacheHits, 0u)
        << "objects without targeted load sites must stay cache hits";
}

} // namespace
} // namespace propeller::core
