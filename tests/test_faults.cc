/**
 * @file
 * Fault-tolerance tests: the fuzz property that corrupt inputs are
 * rejected with typed errors (never a crash, never silent acceptance),
 * artifact-cache integrity verification, shard salvage, fault-spec
 * parsing, deterministic injection, and the workflow-level degradation
 * paths (retry, poisoned-cache rebuild, zero-fault byte identity).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "build/cache.h"
#include "build/workflow.h"
#include "codegen/codegen.h"
#include "elf/bb_addr_map.h"
#include "elf/object.h"
#include "faultinject/faultinject.h"
#include "linker/linker.h"
#include "profile/profile.h"
#include "support/rng.h"
#include "test_util.h"

namespace propeller {
namespace {

using faultinject::FaultInjector;
using faultinject::FaultSpec;
using faultinject::mutateBytes;
using faultinject::parseFaultSpec;

/** A real .bb_addr_map payload as codegen emits it (v2, checksummed). */
std::vector<uint8_t>
validAddrMapBlob()
{
    ir::Program program = test::tinyProgram();
    codegen::Options opts;
    opts.emitAddrMapSection = true;
    auto objects = codegen::compileProgram(program, opts);
    int sect = objects[0].findSection(".bb_addr_map");
    EXPECT_GE(sect, 0);
    return objects[0].sections[sect].bytes;
}

/** A deterministic profile with enough samples to shard. */
profile::Profile
validProfile()
{
    profile::Profile p;
    p.binaryHash = 0xabcdef12345678ull;
    p.totalRetired = 987654;
    for (uint32_t i = 0; i < 40; ++i) {
        profile::LbrSample sample;
        sample.count = 4;
        for (uint32_t j = 0; j < sample.count; ++j) {
            sample.records[j].from = 0x400000 + i * 64 + j * 8;
            sample.records[j].to = 0x401000 + i * 32 + j * 4;
        }
        p.samples.push_back(sample);
    }
    return p;
}

size_t
countFailures(const buildsys::PhaseReport &report, const std::string &prefix)
{
    size_t n = 0;
    for (const auto &line : report.failures)
        if (line.rfind(prefix, 0) == 0)
            ++n;
    return n;
}

// ---- The ISSUE fuzz property: 200 random mutations of a valid blob ----
// must each produce a clean typed error — never a crash (the test binary
// would die) and never silent acceptance (ok() would be true).

TEST(FuzzRejection, AddrMapMutationsNeverAcceptedSilently)
{
    const std::vector<uint8_t> blob = validAddrMapBlob();
    ASSERT_FALSE(blob.empty());
    ASSERT_TRUE(elf::decodeAddrMapsChecked(blob).ok());

    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(mix64(0xbbaddbeef, seed));
        std::vector<uint8_t> mutated = blob;
        mutateBytes(mutated, rng);
        ASSERT_NE(mutated, blob) << "seed " << seed;
        auto decoded = elf::decodeAddrMapsChecked(mutated);
        EXPECT_FALSE(decoded.ok())
            << "seed " << seed << ": corrupt blob accepted silently";
        if (!decoded.ok()) {
            EXPECT_FALSE(decoded.status().message().empty())
                << "seed " << seed;
        }
    }
}

TEST(FuzzRejection, ProfileMutationsNeverAcceptedSilently)
{
    const std::vector<uint8_t> blob = validProfile().serialize();
    ASSERT_TRUE(profile::Profile::deserializeChecked(blob).ok());

    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(mix64(0x9e0f11e5, seed));
        std::vector<uint8_t> mutated = blob;
        mutateBytes(mutated, rng);
        ASSERT_NE(mutated, blob) << "seed " << seed;
        auto decoded = profile::Profile::deserializeChecked(mutated);
        EXPECT_FALSE(decoded.ok())
            << "seed " << seed << ": corrupt profile accepted silently";
    }
}

// ---- Artifact cache integrity -----------------------------------------

TEST(ArtifactCacheIntegrity, SilentRotEvictedOnLookup)
{
    buildsys::ArtifactCache cache;
    cache.put(7, {1, 2, 3, 4});
    ASSERT_TRUE(cache.corruptStored(
        7, [](std::vector<uint8_t> &bytes) { bytes[0] ^= 0x80; }));
    EXPECT_EQ(cache.lookup(7), nullptr);
    EXPECT_EQ(cache.stats().corruptions, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.contains(7));
}

TEST(ArtifactCacheIntegrity, ScrubSweepsCorruptEntries)
{
    buildsys::ArtifactCache cache;
    cache.put(1, {10, 11});
    cache.put(2, {20, 21});
    cache.put(3, {30, 31});
    ASSERT_TRUE(cache.corruptStored(
        2, [](std::vector<uint8_t> &bytes) { bytes[1] ^= 1; }));
    EXPECT_EQ(cache.scrub(), 1u);
    EXPECT_EQ(cache.stats().corruptions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    // A second sweep over the now-clean store finds nothing.
    EXPECT_EQ(cache.scrub(), 0u);
    EXPECT_EQ(cache.keys(), (std::vector<uint64_t>{1, 3}));
}

TEST(ArtifactCacheIntegrity, PoisonedEntryPassesHashNeedsEvictCorrupt)
{
    buildsys::ArtifactCache cache;
    cache.put(5, {1, 2, 3});
    // rehash=true models an artifact poisoned *before* it reached the
    // store: the hash describes the poisoned bytes, so byte verification
    // passes and only structural validation can catch it.
    ASSERT_TRUE(cache.corruptStored(
        5, [](std::vector<uint8_t> &bytes) { bytes = {0xde, 0xad}; },
        /*rehash=*/true));
    EXPECT_NE(cache.lookup(5), nullptr);
    EXPECT_EQ(cache.stats().corruptions, 0u);
    cache.evictCorrupt(5);
    EXPECT_EQ(cache.stats().corruptions, 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
    // Evicting an absent key is a no-op, not a double count.
    cache.evictCorrupt(5);
    EXPECT_EQ(cache.stats().corruptions, 1u);
}

TEST(ArtifactCacheIntegrity, CorruptStoredTracksSizeDelta)
{
    buildsys::ArtifactCache cache;
    cache.put(4, std::vector<uint8_t>(10, 0x55));
    EXPECT_EQ(cache.stats().storedBytes, 10u);
    ASSERT_TRUE(cache.corruptStored(
        4, [](std::vector<uint8_t> &bytes) { bytes.resize(4); }));
    EXPECT_EQ(cache.stats().storedBytes, 4u);
    EXPECT_FALSE(cache.corruptStored(
        99, [](std::vector<uint8_t> &bytes) { bytes.clear(); }));
}

// ---- Fault spec parsing -----------------------------------------------

TEST(FaultSpecParse, ParsesFullSpec)
{
    auto spec = parseFaultSpec("seed=7,profile=0.25,cache=0.5,addrmap=1,"
                               "exec=0");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->seed, 7u);
    EXPECT_DOUBLE_EQ(spec->profileRate, 0.25);
    EXPECT_DOUBLE_EQ(spec->cacheRate, 0.5);
    EXPECT_DOUBLE_EQ(spec->addrMapRate, 1.0);
    EXPECT_DOUBLE_EQ(spec->execFailRate, 0.0);
    EXPECT_TRUE(spec->any());

    auto empty = parseFaultSpec("");
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty->any());
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseFaultSpec("profile").ok());
    EXPECT_FALSE(parseFaultSpec("profile=2").ok());
    EXPECT_FALSE(parseFaultSpec("profile=-0.1").ok());
    EXPECT_FALSE(parseFaultSpec("profile=abc").ok());
    EXPECT_FALSE(parseFaultSpec("bogus=0.5").ok());
    EXPECT_FALSE(parseFaultSpec("seed=1.5").ok());
}

// ---- Sharded profile salvage ------------------------------------------

TEST(ShardSalvage, RoundTripIsLossless)
{
    profile::Profile p = validProfile();
    auto shards = profile::serializeShards(p, 16);
    ASSERT_EQ(shards.size(), 3u); // 16 + 16 + 8 samples.
    profile::ShardLoadStats stats;
    profile::Profile loaded = profile::loadShards(shards, &stats);
    EXPECT_EQ(stats.shardsTotal, 3u);
    EXPECT_EQ(stats.shardsRejected, 0u);
    EXPECT_EQ(loaded.serialize(), p.serialize());
}

TEST(ShardSalvage, CorruptShardCostsItsSamplesNotTheRun)
{
    profile::Profile p = validProfile();
    auto shards = profile::serializeShards(p, 16);
    ASSERT_EQ(shards.size(), 3u);
    Rng rng(mix64(0x5a17a6e, 1));
    mutateBytes(shards[1], rng);

    profile::ShardLoadStats stats;
    profile::Profile loaded = profile::loadShards(shards, &stats);
    EXPECT_EQ(stats.shardsRejected, 1u);
    EXPECT_FALSE(stats.firstError.empty());
    EXPECT_EQ(loaded.samples.size(), p.samples.size() - 16);
    // Session identity survives losing a middle shard.
    EXPECT_EQ(loaded.binaryHash, p.binaryHash);
    EXPECT_EQ(loaded.totalRetired, p.totalRetired);
}

// ---- Deterministic injection ------------------------------------------

TEST(FaultInjection, SameSpecSameDecisionsSameBytes)
{
    profile::Profile p = validProfile();
    FaultSpec spec;
    spec.seed = 41;
    spec.profileRate = 0.5;

    auto run = [&](std::vector<std::vector<uint8_t>> &shards) {
        FaultInjector injector(spec);
        injector.onProfileShards(shards);
        return injector.stats();
    };
    auto shards_a = profile::serializeShards(p, 8);
    auto shards_b = profile::serializeShards(p, 8);
    auto stats_a = run(shards_a);
    auto stats_b = run(shards_b);

    EXPECT_GT(stats_a.profileShardsCorrupted, 0u);
    EXPECT_EQ(stats_a.profileShardsCorrupted, stats_b.profileShardsCorrupted);
    EXPECT_EQ(stats_a.corruptedShardIndices, stats_b.corruptedShardIndices);
    EXPECT_EQ(shards_a, shards_b);
}

// ---- Cluster directive sanitizing -------------------------------------

TEST(SanitizeClusterMap, DropsInvalidSpecsKeepsValid)
{
    ir::Program program = test::tinyProgram();

    codegen::ClusterMap clusters;
    codegen::ClusterSpec good;
    good.clusters = {{0, 1}, {2, 3}};
    good.coldIndex = 1;
    clusters.emplace("work", good);

    codegen::ClusterSpec ghost;
    ghost.clusters = {{0}};
    clusters.emplace("ghost", ghost); // Unknown function.

    codegen::ClusterSpec partial;
    partial.clusters = {{0, 1}}; // Blocks 2 and 3 of "main" unlisted.
    clusters.emplace("main", partial);

    auto dropped = codegen::sanitizeClusterMap(program, clusters);
    EXPECT_EQ(dropped, (std::vector<std::string>{"ghost", "main"}));
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_TRUE(clusters.count("work"));

    // Entry block not first in the primary cluster.
    codegen::ClusterMap bad_head;
    codegen::ClusterSpec head;
    head.clusters = {{1, 0, 2, 3}};
    bad_head.emplace("work", head);
    EXPECT_EQ(codegen::sanitizeClusterMap(program, bad_head).size(), 1u);
    EXPECT_TRUE(bad_head.empty());

    // Cold index out of range.
    codegen::ClusterMap bad_cold;
    codegen::ClusterSpec cold = good;
    cold.coldIndex = 9;
    bad_cold.emplace("work", cold);
    EXPECT_EQ(codegen::sanitizeClusterMap(program, bad_cold).size(), 1u);

    // A sanitized-valid map is untouched.
    codegen::ClusterMap valid;
    valid.emplace("work", good);
    EXPECT_TRUE(codegen::sanitizeClusterMap(program, valid).empty());
    EXPECT_EQ(valid.size(), 1u);
}

// ---- Linker typed errors + overflow quarantine ------------------------

TEST(LinkerTypedErrors, UnresolvedSymbolIsError)
{
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    for (auto &sec : objects[0].sections)
        for (auto &piece : sec.pieces)
            if (piece.site && piece.site->op == isa::Opcode::Call)
                piece.site->targetSymbol = "ghost";
    linker::Options opts;
    opts.entrySymbol = "main";
    auto exe = linker::linkChecked(objects, opts);
    ASSERT_FALSE(exe.ok());
    EXPECT_EQ(exe.status().code(), support::ErrorCode::kUnresolved);
    EXPECT_NE(exe.status().message().find("unresolved symbol"),
              std::string::npos);
}

TEST(LinkerTypedErrors, DuplicateSectionSymbolIsError)
{
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    auto duplicate = objects[0];
    duplicate.name = "copy.o";
    objects.push_back(duplicate);
    linker::Options opts;
    opts.entrySymbol = "main";
    auto exe = linker::linkChecked(objects, opts);
    ASSERT_FALSE(exe.ok());
    EXPECT_EQ(exe.status().code(), support::ErrorCode::kMalformed);
}

TEST(LinkerTypedErrors, MissingEntrySymbolIsError)
{
    ir::Program program = test::tinyProgram();
    auto objects = codegen::compileProgram(program, {});
    linker::Options opts;
    opts.entrySymbol = "nonexistent";
    auto exe = linker::linkChecked(objects, opts);
    ASSERT_FALSE(exe.ok());
    EXPECT_NE(exe.status().message().find("entry symbol"),
              std::string::npos);
}

TEST(LinkerQuarantine, OverflowRevertsFunctionNotBuild)
{
    // tinyProgram plus a large pad function: an adversarial symbol order
    // places the pad between "work" and its out-of-line blocks, pushing
    // the conditional branch past the (narrowed) displacement limit.
    ir::Program program = test::tinyProgram();
    auto pad = test::makeFunction("pad", 1);
    for (int i = 0; i < 400; ++i)
        pad->blocks[0]->insts.push_back(ir::makeWork(6, 60 + i));
    pad->blocks[0]->insts.push_back(ir::makeRet());
    program.modules[0]->functions.push_back(std::move(pad));

    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::All;
    auto objects = codegen::compileProgram(program, copts);

    linker::Options opts;
    opts.entrySymbol = "main";
    opts.symbolOrder = {"work", "pad", "work.b1", "work.b2", "work.b3"};
    opts.maxBranchDisplacement = 256;

    linker::LinkStats stats;
    auto exe = linker::linkChecked(objects, opts, &stats);
    ASSERT_TRUE(exe.ok()) << exe.status().toString();
    EXPECT_GE(stats.quarantinedFunctions, 1u);
    EXPECT_EQ(stats.quarantinedFunctions, stats.quarantined.size());
    EXPECT_NE(std::find(stats.quarantined.begin(), stats.quarantined.end(),
                        "work"),
              stats.quarantined.end());

    // Without the quarantine the same inputs are a typed error, still
    // not a crash.
    opts.quarantineOnOverflow = false;
    auto failed = linker::linkChecked(objects, opts);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), support::ErrorCode::kOutOfRange);
}

// ---- Workflow-level degradation ---------------------------------------

TEST(WorkflowFaults, ZeroRateHooksKeepBinaryByteIdentical)
{
    buildsys::Workflow clean(test::smallConfig(71));
    buildsys::Workflow hooked(test::smallConfig(71));
    FaultInjector injector(FaultSpec{});
    hooked.setFaultHooks(&injector);

    // Hooks attached but inert: the profile still round-trips the shard
    // wire path, yet every product stays byte-identical.
    const auto &a = clean.propellerBinary();
    const auto &b = hooked.propellerBinary();
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.identityHash, b.identityHash);
    EXPECT_EQ(injector.stats().corruptions(), 0u);
    EXPECT_EQ(hooked.cacheStats().corruptions, 0u);
}

TEST(WorkflowFaults, InjectedFaultsDetectedExactly)
{
    buildsys::Workflow wf(test::smallConfig(71));
    FaultSpec spec;
    spec.seed = 11;
    spec.profileRate = 0.5;
    spec.cacheRate = 0.3;
    spec.addrMapRate = 0.3;
    spec.execFailRate = 0.15;
    FaultInjector injector(spec);
    wf.setFaultHooks(&injector);

    // The core property: the pipeline never aborts under injection.
    const auto &po = wf.propellerBinary();
    EXPECT_FALSE(po.text.empty());
    wf.scrubCache(); // End-of-build sweep catches never-served entries.

    const auto &stats = injector.stats();
    ASSERT_GT(stats.corruptions(), 0u);

    // Every injected fault is detected and attributed, class by class.
    EXPECT_EQ(wf.report("phase3.collect").quarantined,
              stats.profileShardsCorrupted);
    EXPECT_EQ(wf.cacheStats().corruptions, stats.cacheEntriesCorrupted);
    EXPECT_EQ(countFailures(wf.report("phase2.link"),
                            ".bb_addr_map rejected: "),
              stats.addrMapsCorrupted);
    uint32_t retries = wf.report("phase2.codegen").retries +
                       wf.report("phase4.codegen").retries;
    EXPECT_EQ(retries, stats.actionFailures);
}

TEST(WorkflowFaults, TransientActionFailureRetriedWithBackoff)
{
    struct FailOnce : buildsys::FaultHooks
    {
        bool
        failAction(const std::string &module_name, uint32_t attempt) override
        {
            return module_name == "mod_0000" && attempt == 1;
        }
    };

    buildsys::Workflow clean(test::smallConfig(71));
    buildsys::Workflow flaky(test::smallConfig(71));
    FailOnce hooks;
    flaky.setFaultHooks(&hooks);

    const auto &a = clean.metadataBinary();
    const auto &b = flaky.metadataBinary();
    EXPECT_EQ(a.text, b.text); // Degrades in makespan, never in output.
    EXPECT_EQ(flaky.report("phase2.codegen").retries, 1u);
    EXPECT_GT(flaky.report("phase2.codegen").makespanSec,
              clean.report("phase2.codegen").makespanSec);
}

TEST(WorkflowFaults, PoisonedCacheArtifactRebuiltStructurally)
{
    // Poison every artifact *after* rehash: byte verification passes, so
    // only the structural deserializeChecked on the hit path catches it.
    struct Poison : buildsys::FaultHooks
    {
        bool done = false;
        void
        onCachePopulated(buildsys::ArtifactCache &cache) override
        {
            if (done)
                return;
            done = true;
            for (uint64_t key : cache.keys())
                cache.corruptStored(
                    key,
                    [](std::vector<uint8_t> &bytes) {
                        bytes = {0xde, 0xad, 0xbe};
                    },
                    /*rehash=*/true);
        }
    };

    buildsys::Workflow clean(test::smallConfig(71));
    buildsys::Workflow poisoned(test::smallConfig(71));
    Poison hooks;
    poisoned.setFaultHooks(&hooks);

    const auto &a = clean.propellerBinary();
    const auto &b = poisoned.propellerBinary();
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.identityHash, b.identityHash);

    // Every cold-module hit was rejected structurally and rebuilt.
    const auto &report = poisoned.report("phase4.codegen");
    EXPECT_GT(report.cacheCorruptions, 0u);
    EXPECT_EQ(report.cacheHits, 0u);
    EXPECT_EQ(countFailures(report, "cache artifact rejected ("),
              report.cacheCorruptions);
}

} // namespace
} // namespace propeller
