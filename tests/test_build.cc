/**
 * @file
 * Unit tests for the distributed build system substrate: the artifact
 * cache, cost model, phase reports and caching behaviour across the
 * 4-phase workflow.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "build/cache.h"
#include "build/journal.h"
#include "build/workflow.h"
#include "test_util.h"

namespace propeller::buildsys {
namespace {

TEST(ArtifactCache, HitMissAccounting)
{
    ArtifactCache cache;
    EXPECT_EQ(cache.lookup(1), nullptr);
    cache.put(1, {1, 2, 3});
    const auto *hit = cache.lookup(1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().storedBytes, 3u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(ArtifactCache, ContainsDoesNotCount)
{
    ArtifactCache cache;
    cache.put(9, {0});
    EXPECT_TRUE(cache.contains(9));
    EXPECT_FALSE(cache.contains(10));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ArtifactCache, LayoutTierIsIndependentOfObjectTier)
{
    ArtifactCache cache;
    cache.put(7, {1, 2});
    cache.putLayout(7, {9, 9, 9});
    const auto *obj = cache.lookup(7);
    const auto *lay = cache.lookupLayout(7);
    ASSERT_NE(obj, nullptr);
    ASSERT_NE(lay, nullptr);
    EXPECT_EQ(obj->size(), 2u);
    EXPECT_EQ(lay->size(), 3u);
    // Counters are per tier.
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.layoutStats().hits, 1u);
    EXPECT_EQ(cache.layoutStats().misses, 0u);
    EXPECT_EQ(cache.lookupLayout(8), nullptr);
    EXPECT_EQ(cache.layoutStats().misses, 1u);
    // keys() stays an object-tier view (fault injection targets it).
    EXPECT_EQ(cache.keys().size(), 1u);
    EXPECT_EQ(cache.layoutKeys().size(), 1u);
}

TEST(ArtifactCache, SerializeRoundTripsBothTiers)
{
    ArtifactCache cache;
    cache.put(1, {10, 11});
    cache.put(2, {12});
    cache.putLayout(3, {13, 14, 15});
    std::vector<uint8_t> image = cache.serialize();

    ArtifactCache copy;
    ASSERT_TRUE(copy.deserialize(image));
    const auto *a = copy.lookup(1);
    const auto *b = copy.lookup(2);
    const auto *c = copy.lookupLayout(3);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(*a, (std::vector<uint8_t>{10, 11}));
    EXPECT_EQ(*b, (std::vector<uint8_t>{12}));
    EXPECT_EQ(*c, (std::vector<uint8_t>{13, 14, 15}));
    // A second serialize of the restored cache is a fixpoint.
    EXPECT_EQ(copy.serialize(), image);
}

TEST(ArtifactCache, DeserializeRejectsDamagedImages)
{
    ArtifactCache cache;
    cache.put(1, {10, 11});
    cache.putLayout(2, {20});
    std::vector<uint8_t> image = cache.serialize();

    // Bad magic, truncation, and a payload bit flip (checksum) must all
    // be rejected, leaving the target cache empty rather than poisoned.
    for (int damage = 0; damage < 3; ++damage) {
        std::vector<uint8_t> bad = image;
        if (damage == 0)
            bad[0] ^= 0xff;
        else if (damage == 1)
            bad.resize(bad.size() / 2);
        else
            bad[bad.size() / 2] ^= 0x01;
        ArtifactCache copy;
        copy.put(42, {1});
        EXPECT_FALSE(copy.deserialize(bad)) << "damage " << damage;
        EXPECT_EQ(copy.lookup(42), nullptr) << "damage " << damage;
        EXPECT_EQ(copy.keys().size(), 0u) << "damage " << damage;
    }
}

TEST(ArtifactCache, CorruptLayoutIsEvictedNotServed)
{
    ArtifactCache cache;
    cache.putLayout(5, {1, 2, 3, 4});
    ASSERT_TRUE(cache.corruptStoredLayout(
        5, [](std::vector<uint8_t> &bytes) { bytes[0] ^= 0xff; }));
    // The tier's hash check catches the rot on lookup; the engine then
    // evicts and recomputes.
    EXPECT_EQ(cache.lookupLayout(5), nullptr);
    cache.evictCorruptLayout(5);
    EXPECT_EQ(cache.layoutKeys().size(), 0u);
    EXPECT_GE(cache.layoutStats().corruptions, 1u);
}

TEST(CostModel, MakespanCombinesParallelismAndCriticalPath)
{
    CostModel cost;
    cost.actionOverheadSec = 0.0;
    std::vector<double> costs = {10, 10, 10, 10};
    // 4 actions on 2 workers: 40/2 + max(10) = 30.
    EXPECT_DOUBLE_EQ(cost.makespan(costs, 2), 30.0);
    // Unlimited workers: dominated by the longest action.
    EXPECT_NEAR(cost.makespan(costs, 4000), 10.0, 0.1);
}

class WorkflowTest : public ::testing::Test
{
  protected:
    static Workflow &
    wf()
    {
        static Workflow instance(test::smallConfig(55));
        return instance;
    }
};

TEST_F(WorkflowTest, PhaseReportsExist)
{
    wf().baseline();
    wf().propellerBinary();
    for (const char *name :
         {"phase1", "phase2.codegen", "phase2.link", "phase3.collect",
          "phase3.wpa", "phase4.codegen", "phase4.link",
          "baseline.link"}) {
        EXPECT_TRUE(wf().hasReport(name)) << name;
        if (wf().hasReport(name)) {
            const PhaseReport &report = wf().report(name);
            EXPECT_GE(report.makespanSec, 0.0) << name;
        }
    }
}

TEST_F(WorkflowTest, Phase4HitRateMatchesColdObjects)
{
    wf().propellerBinary();
    const PhaseReport &codegen = wf().report("phase4.codegen");
    size_t modules = wf().program().modules.size();
    EXPECT_EQ(codegen.actions + codegen.cacheHits, modules);
    EXPECT_EQ(wf().coldObjects().size(), codegen.cacheHits);
    // Most objects are cold (the paper's ~10-33% hot objects).
    EXPECT_GT(codegen.cacheHits, modules / 3);
}

TEST_F(WorkflowTest, RelinkCheaperThanBaselineLink)
{
    wf().baseline();
    wf().propellerBinary();
    // Cached cold inputs stream cheaper than fresh distributed outputs.
    EXPECT_LT(wf().report("phase4.link").makespanSec,
              wf().report("baseline.link").makespanSec);
}

TEST_F(WorkflowTest, WpaWithinActionMemoryLimit)
{
    wf().propellerBinary();
    EXPECT_FALSE(wf().report("phase3.wpa").memoryLimitExceeded);
    EXPECT_FALSE(wf().report("phase4.link").memoryLimitExceeded);
}

TEST_F(WorkflowTest, InstrumentedBuildModelled)
{
    PhaseReport report = wf().instrumentedBuildReport();
    EXPECT_GT(report.makespanSec, 0.0);
    EXPECT_GT(report.actions, 0u);
}

TEST_F(WorkflowTest, CacheHitRateHighAfterFullPipeline)
{
    wf().propellerBinary();
    // Re-request everything: all lookups now hit.
    const auto &stats_before = wf().cacheStats();
    EXPECT_GT(stats_before.hits, 0u);
}

TEST(WorkflowDeterminism, IdenticalBinariesAcrossInstances)
{
    Workflow a(test::smallConfig(77));
    Workflow b(test::smallConfig(77));
    EXPECT_EQ(a.baseline().text, b.baseline().text);
    EXPECT_EQ(a.propellerBinary().text, b.propellerBinary().text);
    EXPECT_EQ(a.propellerBinary().entryAddress,
              b.propellerBinary().entryAddress);
}

TEST(WorkflowBinaries, MetadataLargerThanBaseline)
{
    Workflow wf(test::smallConfig(88));
    uint64_t base = wf.baseline().fileSize();
    uint64_t pm = wf.metadataBinary().fileSize();
    uint64_t bm = wf.boltInputBinary().fileSize();
    EXPECT_GT(pm, base) << "PM carries .bb_addr_map";
    EXPECT_GT(bm, base) << "BM carries .rela";
    // Metadata binaries share the same text image.
    EXPECT_EQ(wf.metadataBinary().text, wf.baseline().text);
    EXPECT_EQ(wf.boltInputBinary().text, wf.baseline().text);
}

TEST(WorkflowBinaries, PropellerBinaryNearBaselineSize)
{
    Workflow wf(test::smallConfig(99));
    uint64_t base = wf.baseline().sizes.text;
    uint64_t po = wf.propellerBinary().sizes.text;
    EXPECT_LT(po, base * 115 / 100)
        << "PO text must stay within a few percent of baseline";
}

// ---------------------------------------------------------------------
// Crash-safe journal persistence (the fleet cache image's container)

TEST(Journal, EncodeDecodeRoundTripsGenerationAndPayload)
{
    const std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x00,
                                          0x01, 0x7f};
    std::vector<uint8_t> image = encodeJournal(41, payload);
    EXPECT_EQ(image.size(), kJournalHeaderBytes + payload.size() +
                                kJournalFooterBytes);

    uint64_t gen = 0;
    std::vector<uint8_t> out;
    ASSERT_TRUE(decodeJournal(image, &gen, &out));
    EXPECT_EQ(gen, 41u);
    EXPECT_EQ(out, payload);

    // An empty payload is a valid (if pointless) image.
    image = encodeJournal(7, {});
    ASSERT_TRUE(decodeJournal(image, &gen, &out));
    EXPECT_EQ(gen, 7u);
    EXPECT_TRUE(out.empty());
}

TEST(Journal, DecodeRejectsEveryTruncationPoint)
{
    std::vector<uint8_t> payload(64);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<uint8_t>(i * 37 + 1);
    const std::vector<uint8_t> image = encodeJournal(3, payload);

    // Every proper prefix — torn inside the header, the payload, or the
    // footer — must read as "no image", never as a short payload.
    for (size_t len = 0; len < image.size(); ++len) {
        std::vector<uint8_t> torn(image.begin(), image.begin() + len);
        uint64_t gen = 99;
        std::vector<uint8_t> out = {0xaa};
        EXPECT_FALSE(decodeJournal(torn, &gen, &out)) << "len " << len;
        EXPECT_EQ(gen, 99u) << "outputs touched at len " << len;
        EXPECT_EQ(out.size(), 1u) << "outputs touched at len " << len;
    }
}

TEST(Journal, DecodeRejectsBitDamageInEveryRegion)
{
    std::vector<uint8_t> payload(32, 0x5a);
    const std::vector<uint8_t> image = encodeJournal(12, payload);

    // One representative byte per region: magic, generation, length,
    // payload, footer checksum.
    const size_t probes[] = {0, 5, 14, kJournalHeaderBytes + 3,
                             image.size() - 2};
    for (size_t pos : probes) {
        std::vector<uint8_t> damaged = image;
        damaged[pos] ^= 0x10;
        EXPECT_FALSE(decodeJournal(damaged, nullptr, nullptr))
            << "byte " << pos;
    }
}

TEST(Journal, AtomicWriteCrashSweepNeverCorruptsExistingImage)
{
    const std::string path = "test_journal_crash.img";
    const std::string tmp = path + ".tmp";
    std::remove(path.c_str());

    std::vector<uint8_t> oldPayload(48, 0x11);
    std::vector<uint8_t> newPayload(96, 0x22);
    const std::vector<uint8_t> oldImage = encodeJournal(1, oldPayload);
    const std::vector<uint8_t> newImage = encodeJournal(2, newPayload);
    ASSERT_TRUE(atomicWriteFile(path, oldImage));

    // Kill the save at every byte boundary class of the new image:
    // inside the header, at the header/payload and payload/footer
    // boundaries, strided through the payload, inside the footer, and
    // after the last byte (written in full but never renamed).
    std::vector<long> crashes;
    for (size_t b = 0; b <= kJournalHeaderBytes; ++b)
        crashes.push_back(static_cast<long>(b));
    for (size_t b = kJournalHeaderBytes; b < newImage.size(); b += 7)
        crashes.push_back(static_cast<long>(b));
    for (size_t b = newImage.size() - kJournalFooterBytes;
         b <= newImage.size(); ++b)
        crashes.push_back(static_cast<long>(b));

    for (long crash : crashes) {
        EXPECT_FALSE(atomicWriteFile(path, newImage, crash))
            << "crash at " << crash;
        std::vector<uint8_t> file;
        ASSERT_TRUE(readFile(path, file)) << "crash at " << crash;
        uint64_t gen = 0;
        std::vector<uint8_t> out;
        ASSERT_TRUE(decodeJournal(file, &gen, &out))
            << "crash at " << crash;
        EXPECT_EQ(gen, 1u) << "crash at " << crash;
        EXPECT_EQ(out, oldPayload) << "crash at " << crash;
    }

    // The next clean save goes through and replaces the image whole.
    ASSERT_TRUE(atomicWriteFile(path, newImage));
    std::vector<uint8_t> file;
    ASSERT_TRUE(readFile(path, file));
    uint64_t gen = 0;
    std::vector<uint8_t> out;
    ASSERT_TRUE(decodeJournal(file, &gen, &out));
    EXPECT_EQ(gen, 2u);
    EXPECT_EQ(out, newPayload);

    std::remove(path.c_str());
    std::remove(tmp.c_str());
}

TEST(WorkflowCache, JournaledImageRoundTripsGeneration)
{
    const char *path = "test_wf_journal.cache";
    std::remove(path);
    workload::WorkloadConfig cfg = test::smallConfig();

    buildsys::Workflow writer(cfg);
    writer.propellerBinary();
    ASSERT_TRUE(writer.saveCacheFile(path, /*generation=*/17));

    buildsys::Workflow reader(cfg);
    uint64_t gen = 0;
    ASSERT_TRUE(reader.loadCacheFile(path, &gen));
    EXPECT_EQ(gen, 17u);
    std::remove(path);
}

TEST(WorkflowCache, TornImageColdStartsCleanly)
{
    const char *path = "test_wf_torn.cache";
    workload::WorkloadConfig cfg = test::smallConfig();

    buildsys::Workflow writer(cfg);
    writer.propellerBinary();
    ASSERT_TRUE(writer.saveCacheFile(path, 5));

    // Tear the image mid-payload: the load must report "no image" (a
    // cold start), never abort or half-load.
    std::vector<uint8_t> image;
    ASSERT_TRUE(readFile(path, image));
    image.resize(image.size() / 2);
    ASSERT_TRUE(atomicWriteFile(path, image));

    buildsys::Workflow reader(cfg);
    uint64_t gen = 99;
    EXPECT_FALSE(reader.loadCacheFile(path, &gen));
    EXPECT_EQ(gen, 99u);

    // The cold workflow still relinks and can re-persist over the torn
    // image.
    reader.propellerBinary();
    ASSERT_TRUE(reader.saveCacheFile(path, 6));
    buildsys::Workflow again(cfg);
    uint64_t gen2 = 0;
    EXPECT_TRUE(again.loadCacheFile(path, &gen2));
    EXPECT_EQ(gen2, 6u);
    std::remove(path);
    std::remove((std::string(path) + ".tmp").c_str());
}

TEST(WorkflowReports, BoltReportsPopulated)
{
    Workflow wf(test::smallConfig(66));
    wf.propellerBinary(); // Runs the WPA for the comparison below.
    bolt::BoltStats stats;
    wf.boltBinary({}, &stats);
    EXPECT_TRUE(wf.hasReport("bolt.convert"));
    EXPECT_TRUE(wf.hasReport("bolt.opt"));
    EXPECT_GT(wf.report("bolt.opt").peakActionMemory,
              wf.report("phase3.wpa").peakActionMemory)
        << "monolithic BOLT must out-consume Propeller's WPA";
}

} // namespace
} // namespace propeller::buildsys
