/**
 * @file
 * Unit tests for the distributed build system substrate: the artifact
 * cache, cost model, phase reports and caching behaviour across the
 * 4-phase workflow.
 */

#include <gtest/gtest.h>

#include "build/cache.h"
#include "build/workflow.h"
#include "test_util.h"

namespace propeller::buildsys {
namespace {

TEST(ArtifactCache, HitMissAccounting)
{
    ArtifactCache cache;
    EXPECT_EQ(cache.lookup(1), nullptr);
    cache.put(1, {1, 2, 3});
    const auto *hit = cache.lookup(1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size(), 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().storedBytes, 3u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(ArtifactCache, ContainsDoesNotCount)
{
    ArtifactCache cache;
    cache.put(9, {0});
    EXPECT_TRUE(cache.contains(9));
    EXPECT_FALSE(cache.contains(10));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ArtifactCache, LayoutTierIsIndependentOfObjectTier)
{
    ArtifactCache cache;
    cache.put(7, {1, 2});
    cache.putLayout(7, {9, 9, 9});
    const auto *obj = cache.lookup(7);
    const auto *lay = cache.lookupLayout(7);
    ASSERT_NE(obj, nullptr);
    ASSERT_NE(lay, nullptr);
    EXPECT_EQ(obj->size(), 2u);
    EXPECT_EQ(lay->size(), 3u);
    // Counters are per tier.
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.layoutStats().hits, 1u);
    EXPECT_EQ(cache.layoutStats().misses, 0u);
    EXPECT_EQ(cache.lookupLayout(8), nullptr);
    EXPECT_EQ(cache.layoutStats().misses, 1u);
    // keys() stays an object-tier view (fault injection targets it).
    EXPECT_EQ(cache.keys().size(), 1u);
    EXPECT_EQ(cache.layoutKeys().size(), 1u);
}

TEST(ArtifactCache, SerializeRoundTripsBothTiers)
{
    ArtifactCache cache;
    cache.put(1, {10, 11});
    cache.put(2, {12});
    cache.putLayout(3, {13, 14, 15});
    std::vector<uint8_t> image = cache.serialize();

    ArtifactCache copy;
    ASSERT_TRUE(copy.deserialize(image));
    const auto *a = copy.lookup(1);
    const auto *b = copy.lookup(2);
    const auto *c = copy.lookupLayout(3);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(*a, (std::vector<uint8_t>{10, 11}));
    EXPECT_EQ(*b, (std::vector<uint8_t>{12}));
    EXPECT_EQ(*c, (std::vector<uint8_t>{13, 14, 15}));
    // A second serialize of the restored cache is a fixpoint.
    EXPECT_EQ(copy.serialize(), image);
}

TEST(ArtifactCache, DeserializeRejectsDamagedImages)
{
    ArtifactCache cache;
    cache.put(1, {10, 11});
    cache.putLayout(2, {20});
    std::vector<uint8_t> image = cache.serialize();

    // Bad magic, truncation, and a payload bit flip (checksum) must all
    // be rejected, leaving the target cache empty rather than poisoned.
    for (int damage = 0; damage < 3; ++damage) {
        std::vector<uint8_t> bad = image;
        if (damage == 0)
            bad[0] ^= 0xff;
        else if (damage == 1)
            bad.resize(bad.size() / 2);
        else
            bad[bad.size() / 2] ^= 0x01;
        ArtifactCache copy;
        copy.put(42, {1});
        EXPECT_FALSE(copy.deserialize(bad)) << "damage " << damage;
        EXPECT_EQ(copy.lookup(42), nullptr) << "damage " << damage;
        EXPECT_EQ(copy.keys().size(), 0u) << "damage " << damage;
    }
}

TEST(ArtifactCache, CorruptLayoutIsEvictedNotServed)
{
    ArtifactCache cache;
    cache.putLayout(5, {1, 2, 3, 4});
    ASSERT_TRUE(cache.corruptStoredLayout(
        5, [](std::vector<uint8_t> &bytes) { bytes[0] ^= 0xff; }));
    // The tier's hash check catches the rot on lookup; the engine then
    // evicts and recomputes.
    EXPECT_EQ(cache.lookupLayout(5), nullptr);
    cache.evictCorruptLayout(5);
    EXPECT_EQ(cache.layoutKeys().size(), 0u);
    EXPECT_GE(cache.layoutStats().corruptions, 1u);
}

TEST(CostModel, MakespanCombinesParallelismAndCriticalPath)
{
    CostModel cost;
    cost.actionOverheadSec = 0.0;
    std::vector<double> costs = {10, 10, 10, 10};
    // 4 actions on 2 workers: 40/2 + max(10) = 30.
    EXPECT_DOUBLE_EQ(cost.makespan(costs, 2), 30.0);
    // Unlimited workers: dominated by the longest action.
    EXPECT_NEAR(cost.makespan(costs, 4000), 10.0, 0.1);
}

class WorkflowTest : public ::testing::Test
{
  protected:
    static Workflow &
    wf()
    {
        static Workflow instance(test::smallConfig(55));
        return instance;
    }
};

TEST_F(WorkflowTest, PhaseReportsExist)
{
    wf().baseline();
    wf().propellerBinary();
    for (const char *name :
         {"phase1", "phase2.codegen", "phase2.link", "phase3.collect",
          "phase3.wpa", "phase4.codegen", "phase4.link",
          "baseline.link"}) {
        EXPECT_TRUE(wf().hasReport(name)) << name;
        if (wf().hasReport(name)) {
            const PhaseReport &report = wf().report(name);
            EXPECT_GE(report.makespanSec, 0.0) << name;
        }
    }
}

TEST_F(WorkflowTest, Phase4HitRateMatchesColdObjects)
{
    wf().propellerBinary();
    const PhaseReport &codegen = wf().report("phase4.codegen");
    size_t modules = wf().program().modules.size();
    EXPECT_EQ(codegen.actions + codegen.cacheHits, modules);
    EXPECT_EQ(wf().coldObjects().size(), codegen.cacheHits);
    // Most objects are cold (the paper's ~10-33% hot objects).
    EXPECT_GT(codegen.cacheHits, modules / 3);
}

TEST_F(WorkflowTest, RelinkCheaperThanBaselineLink)
{
    wf().baseline();
    wf().propellerBinary();
    // Cached cold inputs stream cheaper than fresh distributed outputs.
    EXPECT_LT(wf().report("phase4.link").makespanSec,
              wf().report("baseline.link").makespanSec);
}

TEST_F(WorkflowTest, WpaWithinActionMemoryLimit)
{
    wf().propellerBinary();
    EXPECT_FALSE(wf().report("phase3.wpa").memoryLimitExceeded);
    EXPECT_FALSE(wf().report("phase4.link").memoryLimitExceeded);
}

TEST_F(WorkflowTest, InstrumentedBuildModelled)
{
    PhaseReport report = wf().instrumentedBuildReport();
    EXPECT_GT(report.makespanSec, 0.0);
    EXPECT_GT(report.actions, 0u);
}

TEST_F(WorkflowTest, CacheHitRateHighAfterFullPipeline)
{
    wf().propellerBinary();
    // Re-request everything: all lookups now hit.
    const auto &stats_before = wf().cacheStats();
    EXPECT_GT(stats_before.hits, 0u);
}

TEST(WorkflowDeterminism, IdenticalBinariesAcrossInstances)
{
    Workflow a(test::smallConfig(77));
    Workflow b(test::smallConfig(77));
    EXPECT_EQ(a.baseline().text, b.baseline().text);
    EXPECT_EQ(a.propellerBinary().text, b.propellerBinary().text);
    EXPECT_EQ(a.propellerBinary().entryAddress,
              b.propellerBinary().entryAddress);
}

TEST(WorkflowBinaries, MetadataLargerThanBaseline)
{
    Workflow wf(test::smallConfig(88));
    uint64_t base = wf.baseline().fileSize();
    uint64_t pm = wf.metadataBinary().fileSize();
    uint64_t bm = wf.boltInputBinary().fileSize();
    EXPECT_GT(pm, base) << "PM carries .bb_addr_map";
    EXPECT_GT(bm, base) << "BM carries .rela";
    // Metadata binaries share the same text image.
    EXPECT_EQ(wf.metadataBinary().text, wf.baseline().text);
    EXPECT_EQ(wf.boltInputBinary().text, wf.baseline().text);
}

TEST(WorkflowBinaries, PropellerBinaryNearBaselineSize)
{
    Workflow wf(test::smallConfig(99));
    uint64_t base = wf.baseline().sizes.text;
    uint64_t po = wf.propellerBinary().sizes.text;
    EXPECT_LT(po, base * 115 / 100)
        << "PO text must stay within a few percent of baseline";
}

TEST(WorkflowReports, BoltReportsPopulated)
{
    Workflow wf(test::smallConfig(66));
    wf.propellerBinary(); // Runs the WPA for the comparison below.
    bolt::BoltStats stats;
    wf.boltBinary({}, &stats);
    EXPECT_TRUE(wf.hasReport("bolt.convert"));
    EXPECT_TRUE(wf.hasReport("bolt.opt"));
    EXPECT_GT(wf.report("bolt.opt").peakActionMemory,
              wf.report("phase3.wpa").peakActionMemory)
        << "monolithic BOLT must out-consume Propeller's WPA";
}

} // namespace
} // namespace propeller::buildsys
