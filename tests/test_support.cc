/**
 * @file
 * Unit tests for the support library: memory metering, RNG, hashing,
 * ULEB128, unit formatting, table rendering.
 */

#include <gtest/gtest.h>

#include "support/hash.h"
#include "support/leb128.h"
#include "support/memory_meter.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/units.h"

namespace propeller {
namespace {

TEST(MemoryMeter, TracksLiveAndPeak)
{
    MemoryMeter meter;
    meter.charge(100);
    meter.charge(50);
    EXPECT_EQ(meter.live(), 150u);
    EXPECT_EQ(meter.peak(), 150u);
    meter.release(120);
    EXPECT_EQ(meter.live(), 30u);
    EXPECT_EQ(meter.peak(), 150u);
    meter.charge(10);
    EXPECT_EQ(meter.peak(), 150u) << "peak must not move below high water";
}

TEST(MemoryMeter, ResetClearsEverything)
{
    MemoryMeter meter;
    meter.charge(64);
    meter.reset();
    EXPECT_EQ(meter.live(), 0u);
    EXPECT_EQ(meter.peak(), 0u);
}

TEST(MemoryMeter, ResetPeakKeepsLive)
{
    MemoryMeter meter;
    meter.charge(80);
    meter.release(40);
    meter.resetPeak();
    EXPECT_EQ(meter.live(), 40u);
    EXPECT_EQ(meter.peak(), 40u);
}

TEST(MemoryMeter, ScopedChargeReleasesOnDestruction)
{
    MemoryMeter meter;
    {
        ScopedCharge scope(meter, 1000);
        EXPECT_EQ(meter.live(), 1000u);
        scope.add(24);
        EXPECT_EQ(meter.live(), 1024u);
    }
    EXPECT_EQ(meter.live(), 0u);
    EXPECT_EQ(meter.peak(), 1024u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SkewedFavorsSmallValues)
{
    Rng rng(13);
    uint64_t below_mid = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        uint64_t v = rng.skewed(0, 100);
        EXPECT_LE(v, 100u);
        below_mid += (v < 50);
    }
    EXPECT_GT(below_mid, static_cast<uint64_t>(n) * 6 / 10);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Hash, Fnv1aMatchesKnownVector)
{
    // FNV-1a("a") = 0xaf63dc4c8601ec8c.
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a(""), kFnvOffset);
}

TEST(Hash, SensitiveToEveryByte)
{
    EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
    EXPECT_NE(fnv1a("ab"), fnv1a("ba"));
}

TEST(Hash, CombineOrderMatters)
{
    uint64_t h = kFnvOffset;
    EXPECT_NE(hashCombine(hashCombine(h, 1), 2),
              hashCombine(hashCombine(h, 2), 1));
}

TEST(Hash, DigestIsFixedWidthHex)
{
    std::string d = hashDigest(0xabcull);
    EXPECT_EQ(d.size(), 16u);
    EXPECT_EQ(d, "0000000000000abc");
}

class Leb128Roundtrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Leb128Roundtrip, EncodesAndDecodes)
{
    uint64_t value = GetParam();
    std::vector<uint8_t> buf;
    encodeUleb128(value, buf);
    EXPECT_EQ(buf.size(), uleb128Size(value));
    size_t pos = 0;
    auto decoded = decodeUleb128(buf, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value);
    EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Values, Leb128Roundtrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           300ull, 16383ull, 16384ull,
                                           0xffffffffull,
                                           0x123456789abcdefull,
                                           UINT64_MAX));

TEST(Leb128, TruncatedInputFails)
{
    std::vector<uint8_t> buf;
    encodeUleb128(UINT64_MAX, buf);
    buf.pop_back();
    size_t pos = 0;
    EXPECT_FALSE(decodeUleb128(buf, pos).has_value());
}

TEST(Leb128, EmptyInputFails)
{
    std::vector<uint8_t> buf;
    size_t pos = 0;
    EXPECT_FALSE(decodeUleb128(buf, pos).has_value());
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(72ull * 1024 * 1024), "72 MB");
    EXPECT_EQ(formatBytes(34ull * 1024), "34 KB");
    EXPECT_EQ(formatBytes(5ull * 1024 * 1024 * 1024 / 2), "2.50 GB");
}

TEST(Units, FormatCount)
{
    EXPECT_EQ(formatCount(80), "80");
    EXPECT_EQ(formatCount(160'000), "160 K");
    EXPECT_EQ(formatCount(2'100'000), "2.10 M");
}

TEST(Units, FormatPercentDelta)
{
    EXPECT_EQ(formatPercentDelta(0.073), "+7.3%");
    EXPECT_EQ(formatPercentDelta(-0.02), "-2.0%");
}

TEST(Units, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.67), "67%");
    EXPECT_EQ(formatPercent(0.051, 1), "5.1%");
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("| Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    // Numeric cells right-align: "22" ends where "1" ends.
    size_t p1 = out.find(" 1 |");
    size_t p2 = out.find("22 |");
    EXPECT_NE(p1, std::string::npos);
    EXPECT_NE(p2, std::string::npos);
}

TEST(Table, SeparatorRows)
{
    Table t({"A"});
    t.addRow({"x"});
    t.addSeparator();
    t.addRow({"y"});
    std::string out = t.render();
    // Header sep + 2 outer seps + 1 inner = 4 separator lines.
    int seps = 0;
    for (size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
         ++pos)
        ++seps;
    EXPECT_EQ(seps, 4);
}

TEST(BarChart, ScalesToMax)
{
    BarChart chart(10);
    chart.addBar("big", 100.0, "100");
    chart.addBar("half", 50.0, "50");
    std::string out = chart.render();
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(HeatMap, RendersRowsTopDown)
{
    std::vector<std::vector<uint64_t>> cells = {{0, 0}, {9, 9}};
    std::string out = renderHeatMap(cells, "addr", "time");
    // Higher addresses (row 1) print first.
    size_t dark = out.find('@');
    size_t blank = out.find("|  |");
    EXPECT_NE(dark, std::string::npos);
    EXPECT_NE(blank, std::string::npos);
    EXPECT_LT(dark, blank);
}

} // namespace
} // namespace propeller
