/**
 * @file
 * Unit tests for the machine simulator: functional semantics, determinism,
 * layout invariance, branch bias statistics, microarchitectural component
 * models (caches, iTLB, predictor), LBR collection and heat maps.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "linker/linker.h"
#include "sim/branch_pred.h"
#include "sim/caches.h"
#include "sim/itlb.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller::sim {
namespace {

linker::Executable
linkTiny(codegen::Options copts = {},
         std::vector<std::string> order = {})
{
    ir::Program program = test::tinyProgram();
    linker::Options lopts;
    lopts.entrySymbol = "main";
    lopts.symbolOrder = std::move(order);
    return linker::link(codegen::compileProgram(program, copts), lopts);
}

MachineOptions
smallRun(uint64_t budget = 50'000)
{
    MachineOptions opts;
    opts.seed = 7;
    opts.maxInstructions = budget;
    return opts;
}

TEST(Machine, ExecutesTinyProgram)
{
    RunResult r = run(linkTiny(), smallRun());
    EXPECT_TRUE(r.startupOk);
    EXPECT_FALSE(r.fault);
    // Budget cuts can leave at most the current call depth unmatched.
    EXPECT_LE(r.counters.returns, r.counters.calls);
    EXPECT_LE(r.counters.calls - r.counters.returns, 1u);
    EXPECT_GT(r.counters.condBranches, 0u);
    EXPECT_GT(r.counters.cycles(), r.counters.instructions / 2);
}

TEST(Machine, DeterministicAcrossRuns)
{
    RunResult a = run(linkTiny(), smallRun());
    RunResult b = run(linkTiny(), smallRun());
    EXPECT_EQ(a.counters.cycles(), b.counters.cycles());
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.takenBranches, b.counters.takenBranches);
}

TEST(Machine, SeedChangesOutcomesButNotStructure)
{
    MachineOptions o1 = smallRun();
    MachineOptions o2 = smallRun();
    o2.seed = 99;
    RunResult a = run(linkTiny(), o1);
    RunResult b = run(linkTiny(), o2);
    EXPECT_EQ(a.counters.logicalInstructions,
              b.counters.logicalInstructions);
    EXPECT_NE(a.counters.condTaken, b.counters.condTaken)
        << "different input streams take different paths";
}

TEST(Machine, LayoutInvariantLogicalStream)
{
    // Same program, three different layouts: one section per function,
    // one per block, reversed symbol order.
    linker::Executable a = linkTiny();
    codegen::Options all;
    all.bbSections = codegen::BbSectionsMode::All;
    linker::Executable b = linkTiny(all);
    linker::Executable c = linkTiny({}, {"work", "main"});

    RunResult ra = run(a, smallRun());
    RunResult rb = run(b, smallRun());
    RunResult rc = run(c, smallRun());
    EXPECT_EQ(ra.counters.logicalInstructions,
              rb.counters.logicalInstructions);
    EXPECT_EQ(ra.counters.condBranches, rb.counters.condBranches);
    // Note: condTaken is NOT invariant — polarity inversion is exactly
    // how layouts trade taken branches for fall-throughs.
    EXPECT_EQ(ra.counters.calls, rb.counters.calls);
    EXPECT_EQ(ra.counters.calls, rc.counters.calls);
    EXPECT_EQ(ra.counters.returns, rc.counters.returns);
}

TEST(Machine, BranchBiasControlsFrequency)
{
    // tinyProgram's branch 1000 has bias 240/256 = 93.75% to bb1.
    RunResult r = run(linkTiny(), smallRun(200'000));
    // bb1 executes makeWork(2, 20): count via cycles is awkward; instead
    // check the cold path frequency through the branch counters: branch
    // 1000 is the only non-loop conditional, executed once per work()
    // call; bias keeps the taken path near 93.75%.
    // work() is called once per loop iteration of main (bias 250/256).
    double cond = static_cast<double>(r.counters.condBranches);
    EXPECT_GT(cond, 0);
    // Per iteration: branch 1000 in work() plus the inner latch (the
    // outer latch fires once per 255 iterations).
    EXPECT_NEAR(cond / static_cast<double>(r.counters.calls), 2.0, 0.2);
}

TEST(Machine, PeriodicBranchExactTripCount)
{
    // Build main with a periodic loop of exactly 5 trips around a call.
    using namespace ir;
    Program program;
    program.name = "p";
    program.entryFunction = "main";
    auto mod = std::make_unique<Module>();
    mod->name = "m";
    auto fn = test::makeFunction("main", 3);
    fn->blocks[0]->insts = {makeWork(0, 0), makeBr(1)};
    fn->blocks[1]->insts = {makeWork(1, 1), makeLoopBr(1, 2, 5, 1)};
    fn->blocks[2]->insts = {makeRet()};
    mod->functions.push_back(std::move(fn));
    program.modules.push_back(std::move(mod));

    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable exe =
        linker::link(codegen::compileProgram(program, {}), lopts);
    RunResult r = run(exe, smallRun(1000));
    EXPECT_TRUE(r.halted);
    // Loop body executes exactly 5 times: 4 taken back edges + 1 exit.
    EXPECT_EQ(r.counters.condBranches, 5u);
    EXPECT_EQ(r.counters.condTaken, 4u);
}

TEST(Machine, HaltsOnFinalReturn)
{
    RunResult r = run(linkTiny(), smallRun(100'000'000));
    EXPECT_TRUE(r.halted) << "main's nested loops exit after 255*255 trips";
    EXPECT_LT(r.counters.instructions, 100'000'000u);
}

TEST(Machine, IntegrityCheckFailureStopsStartup)
{
    linker::Executable exe = linkTiny();
    exe.integrityChecks.push_back({"work", 0xdeadbeefull});
    RunResult r = run(exe, smallRun());
    EXPECT_FALSE(r.startupOk);
    EXPECT_EQ(r.counters.instructions, 0u);
}

TEST(Machine, CorruptTextFaults)
{
    linker::Executable exe = linkTiny();
    // Overwrite the entry with an undefined opcode.
    exe.text[exe.entryAddress - exe.textBase] = 0x33;
    exe.integrityChecks.clear();
    RunResult r = run(exe, smallRun());
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(r.faultPc, exe.entryAddress);
}

TEST(Machine, LbrSamplesCollected)
{
    MachineOptions opts = smallRun(100'000);
    opts.collectLbr = true;
    opts.lbrSamplePeriod = 1'000;
    RunResult r = run(linkTiny(), opts);
    EXPECT_GT(r.profile.samples.size(), 50u);
    EXPECT_LT(r.profile.samples.size(), 130u);
    for (const auto &sample : r.profile.samples) {
        ASSERT_LE(sample.count, profile::kLbrDepth);
        for (unsigned i = 0; i < sample.count; ++i) {
            // Every record must point inside the text image.
            EXPECT_GE(sample.records[i].from, 0x400000u);
            EXPECT_GE(sample.records[i].to, 0x400000u);
        }
    }
}

TEST(Machine, LbrRecordsAreRealTakenBranches)
{
    MachineOptions opts = smallRun(50'000);
    opts.collectLbr = true;
    opts.lbrSamplePeriod = 500;
    linker::Executable exe = linkTiny();
    RunResult r = run(exe, opts);
    ASSERT_FALSE(r.profile.samples.empty());
    for (const auto &sample : r.profile.samples) {
        for (unsigned i = 0; i < sample.count; ++i) {
            uint64_t from = sample.records[i].from;
            auto inst = isa::decode(exe.text.data() + (from - exe.textBase),
                                    16);
            ASSERT_TRUE(inst.has_value());
            EXPECT_TRUE(inst->isControlFlow())
                << "LBR 'from' must be a control transfer";
        }
    }
}

TEST(Machine, HeatMapDimensionsAndMass)
{
    MachineOptions opts = smallRun(20'000);
    opts.recordHeatMap = true;
    opts.heatAddrBuckets = 8;
    opts.heatTimeBuckets = 4;
    RunResult r = run(linkTiny(), opts);
    ASSERT_EQ(r.heatMap.size(), 8u);
    ASSERT_EQ(r.heatMap[0].size(), 4u);
    uint64_t mass = 0;
    for (const auto &row : r.heatMap)
        for (uint64_t v : row)
            mass += v;
    EXPECT_EQ(mass, r.counters.instructions);
}

// ---- Component models ----------------------------------------------------

TEST(Caches, LruEviction)
{
    SetAssocCache cache(1, 2, 6); // 1 set, 2 ways, 64B lines.
    EXPECT_FALSE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x040));
    EXPECT_TRUE(cache.access(0x000));  // Touch A: B becomes LRU.
    EXPECT_FALSE(cache.access(0x080)); // Evicts B.
    EXPECT_TRUE(cache.access(0x000));
    EXPECT_FALSE(cache.access(0x040)) << "B was evicted";
}

TEST(Caches, SetIndexingSeparatesSets)
{
    SetAssocCache cache(2, 1, 6);
    EXPECT_FALSE(cache.access(0x000)); // Set 0.
    EXPECT_FALSE(cache.access(0x040)); // Set 1.
    EXPECT_TRUE(cache.access(0x000));
    EXPECT_TRUE(cache.access(0x040));
}

TEST(Caches, SameLineHits)
{
    SetAssocCache cache(4, 2, 6);
    EXPECT_FALSE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)) << "same 64B line";
    EXPECT_TRUE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x200));
}

TEST(Itlb, HugePagesCoverMore)
{
    Itlb tlb(4, 4, 2, 16, 4);
    // 4K pages: 5 distinct pages thrash a 4-entry TLB.
    uint64_t misses = 0;
    for (int round = 0; round < 3; ++round) {
        for (uint64_t page = 0; page < 5; ++page)
            misses += tlb.access(page << 12, false).l1Miss;
    }
    EXPECT_GT(misses, 5u);

    Itlb tlb2(4, 4, 2, 16, 4);
    // The same five 4K-page addresses fit in one 2M page.
    uint64_t huge_misses = 0;
    for (int round = 0; round < 3; ++round) {
        for (uint64_t page = 0; page < 5; ++page)
            huge_misses += tlb2.access(page << 12, true).l1Miss;
    }
    EXPECT_EQ(huge_misses, 1u);
}

TEST(Itlb, StlbCatchesL1Misses)
{
    Itlb tlb(1, 1, 1, 64, 8);
    EXPECT_TRUE(tlb.access(0x0000, false).stlbMiss) << "cold: full walk";
    tlb.access(0x1000, false); // Evicts L1 entry for page 0.
    ItlbResult r = tlb.access(0x0000, false);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_FALSE(r.stlbMiss) << "STLB still holds page 0";
}

TEST(BranchPredictor, BimodalLearnsBias)
{
    BranchPredictor bp(10, 16, 2, 8);
    uint64_t pc = 0x400100;
    for (int i = 0; i < 8; ++i)
        bp.updateConditional(pc, true);
    EXPECT_TRUE(bp.predictConditional(pc));
    for (int i = 0; i < 8; ++i)
        bp.updateConditional(pc, false);
    EXPECT_FALSE(bp.predictConditional(pc));
}

TEST(BranchPredictor, BtbMissThenHit)
{
    BranchPredictor bp(10, 16, 2, 8);
    EXPECT_FALSE(bp.btbAccess(0x400100));
    EXPECT_TRUE(bp.btbAccess(0x400100));
}

TEST(BranchPredictor, ReturnStackMatches)
{
    BranchPredictor bp(10, 16, 2, 4);
    bp.pushReturn(0x1000);
    bp.pushReturn(0x2000);
    EXPECT_TRUE(bp.popReturn(0x2000));
    EXPECT_TRUE(bp.popReturn(0x1000));
    EXPECT_FALSE(bp.popReturn(0x3000)) << "empty stack mispredicts";
}

TEST(BranchPredictor, ReturnStackOverflowWraps)
{
    BranchPredictor bp(10, 16, 2, 2);
    bp.pushReturn(0x1);
    bp.pushReturn(0x2);
    bp.pushReturn(0x3); // Overwrites 0x1.
    EXPECT_TRUE(bp.popReturn(0x3));
    EXPECT_TRUE(bp.popReturn(0x2));
    EXPECT_FALSE(bp.popReturn(0x1)) << "overwritten by wrap-around";
}

TEST(MachineCounters, HugePagesReduceItlbStalls)
{
    workload::WorkloadConfig cfg = test::smallConfig(5);
    cfg.name = "tlbtest";
    ir::Program program = workload::generate(cfg);
    auto objects = codegen::compileProgram(program, {});
    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable small_pages = linker::link(objects, lopts);
    lopts.hugePagesText = true;
    linker::Executable huge_pages = linker::link(objects, lopts);

    MachineOptions opts = smallRun(300'000);
    RunResult rs = run(small_pages, opts);
    RunResult rh = run(huge_pages, opts);
    EXPECT_LE(rh.counters.itlbMisses, rs.counters.itlbMisses);
}

} // namespace
} // namespace propeller::sim
