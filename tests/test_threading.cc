/**
 * @file
 * ThreadPool unit tests and the pipeline determinism guarantee: the
 * parallel per-function WPA loop and the per-module codegen fan-out must
 * produce byte-identical artifacts at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "build/workflow.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace propeller {
namespace {

TEST(ThreadPool, SubmitRunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&counter, i] {
            counter.fetch_add(1);
            return i * 2;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[i].get(), i * 2);
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("i37");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock)
{
    // Every worker blocks on an inner task; waitFor's helping protocol
    // must drain the queue instead of deadlocking (a plain future.get()
    // here would hang once tasks outnumber workers).
    ThreadPool pool(2);
    std::vector<std::future<int>> outer;
    for (int i = 0; i < 8; ++i) {
        outer.push_back(pool.submit([&pool, i] {
            auto inner = pool.submit([i] { return i + 100; });
            pool.waitFor(inner);
            return inner.get();
        }));
    }
    for (int i = 0; i < 8; ++i) {
        pool.waitFor(outer[i]);
        EXPECT_EQ(outer[i].get(), i + 100);
    }
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](size_t) {
        pool.parallelFor(8, [&](size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    // threads=1 must not spawn workers or touch the shared pool.
    std::vector<int> order;
    parallelFor(1, 5, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

/** WPA artifacts and the relinked binary, at a given thread count. */
struct PipelineArtifacts
{
    std::string ccProf;
    std::string ldProf;
    std::vector<uint8_t> text;
    uint64_t entryAddress = 0;
};

PipelineArtifacts
runPipeline(unsigned jobs)
{
    workload::WorkloadConfig cfg = test::smallConfig(63);
    cfg.name = "threads";
    cfg.jobs = jobs;
    buildsys::Workflow wf(cfg);
    PipelineArtifacts out;
    out.ccProf = wf.wpa().ccProf.serialize();
    out.ldProf = wf.wpa().ldProf.serialize();
    out.text = wf.propellerBinary().text;
    out.entryAddress = wf.propellerBinary().entryAddress;
    return out;
}

TEST(ThreadingDeterminism, ArtifactsIdenticalAcrossThreadCounts)
{
    PipelineArtifacts serial = runPipeline(1);
    PipelineArtifacts parallel = runPipeline(8);

    EXPECT_EQ(serial.ccProf, parallel.ccProf);
    EXPECT_EQ(serial.ldProf, parallel.ldProf);
    EXPECT_EQ(serial.entryAddress, parallel.entryAddress);
    // The whole relinked .text, byte for byte.
    ASSERT_EQ(serial.text.size(), parallel.text.size());
    EXPECT_EQ(serial.text, parallel.text);
}

TEST(ThreadingDeterminism, LayoutIdenticalAcrossThreadCounts)
{
    // Drive the layout loop directly through the ablation entry point so
    // the comparison isolates the parallel Ext-TSP stage.  Concurrency
    // is the workflow-wide jobs setting now, so each count gets its own
    // workflow over the same seed.
    workload::WorkloadConfig cfg = test::smallConfig(64);
    cfg.name = "threads2";
    cfg.jobs = 1;
    buildsys::Workflow wf1(cfg);
    cfg.jobs = 8;
    buildsys::Workflow wf8(cfg);

    core::WpaResult wpa1, wpa8;
    linker::Executable exe1 = wf1.propellerBinaryWith({}, &wpa1);
    linker::Executable exe8 = wf8.propellerBinaryWith({}, &wpa8);

    EXPECT_EQ(wpa1.ccProf.serialize(), wpa8.ccProf.serialize());
    EXPECT_EQ(wpa1.ldProf.serialize(), wpa8.ldProf.serialize());
    // Order-independent stat sums must match exactly, including the
    // floating-point Ext-TSP score (merged in function order).
    EXPECT_EQ(wpa1.stats.extTsp.finalScore, wpa8.stats.extTsp.finalScore);
    EXPECT_EQ(exe1.text, exe8.text);
}

TEST(ThreadingDeterminism, ReferenceSolverArtifactsIdenticalAtAnyThreads)
{
    // The acceptance gate for the incremental Ext-TSP solver: the lazy
    // heap and the reference full-scan retrieval must emit byte-identical
    // cc_prof/ld_prof at 1 and at 8 threads (4 combinations total).
    workload::WorkloadConfig cfg = test::smallConfig(65);
    cfg.name = "threads3";

    std::string cc_base, ld_base;
    for (unsigned threads : {1u, 8u}) {
        cfg.jobs = threads;
        buildsys::Workflow wf(cfg);
        for (bool reference : {false, true}) {
            core::LayoutOptions opts;
            opts.referenceSolver = reference;
            core::WpaResult wpa;
            wf.propellerBinaryWith(opts, &wpa);
            std::string cc = wpa.ccProf.serialize();
            std::string ld = wpa.ldProf.serialize();
            if (cc_base.empty()) {
                cc_base = cc;
                ld_base = ld;
                continue;
            }
            EXPECT_EQ(cc, cc_base)
                << "threads=" << threads << " reference=" << reference;
            EXPECT_EQ(ld, ld_base)
                << "threads=" << threads << " reference=" << reference;
        }
    }
}

} // namespace
} // namespace propeller
