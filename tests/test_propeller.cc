/**
 * @file
 * Unit tests for the Propeller core: address map indexing, profile
 * mapping, Ext-TSP, hfsort, directives and layout computation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "build/workflow.h"
#include "support/rng.h"
#include "codegen/codegen.h"
#include "linker/linker.h"
#include "propeller/addr_map_index.h"
#include "propeller/directives.h"
#include "propeller/ext_tsp.h"
#include "propeller/hfsort.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"
#include "propeller/propeller.h"
#include "sim/machine.h"
#include "test_util.h"

namespace propeller::core {
namespace {

linker::Executable
metadataTiny()
{
    ir::Program program = test::tinyProgram();
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    linker::Options lopts;
    lopts.entrySymbol = "main";
    return linker::link(codegen::compileProgram(program, copts), lopts);
}

TEST(AddrMapIndex, LookupResolvesEveryBlock)
{
    linker::Executable exe = metadataTiny();
    AddrMapIndex index(exe);
    EXPECT_EQ(index.functionNames().size(), 2u);
    EXPECT_EQ(index.blockCount(), 8u);

    for (const auto &map : exe.bbAddrMap) {
        for (const auto &block : map.blocks) {
            if (block.size == 0)
                continue;
            auto ref = index.lookup(block.address);
            ASSERT_TRUE(ref.has_value());
            EXPECT_EQ(ref->bbId, block.bbId);
            // Last byte also resolves to the same block.
            auto last = index.lookup(block.address + block.size - 1);
            ASSERT_TRUE(last.has_value());
            EXPECT_EQ(last->bbId, block.bbId);
        }
    }
    EXPECT_FALSE(index.lookup(0x100).has_value());
}

TEST(AddrMapIndex, NextWalksLayoutOrder)
{
    linker::Executable exe = metadataTiny();
    AddrMapIndex index(exe);
    // Walk from the entry of main to the end; blocks must be contiguous
    // within each section.
    auto cur = index.lookup(exe.entryAddress);
    ASSERT_TRUE(cur.has_value());
    int steps = 0;
    while (auto nxt = index.next(*cur)) {
        ++steps;
        EXPECT_GE(nxt->blockStart, cur->blockStart);
        cur = nxt;
        if (steps > 20)
            break;
    }
    EXPECT_GT(steps, 2);
}

TEST(AddrMapIndex, EntryBlocksFromPrimarySymbols)
{
    linker::Executable exe = metadataTiny();
    AddrMapIndex index(exe);
    for (size_t f = 0; f < index.functionNames().size(); ++f)
        EXPECT_EQ(index.entryBlock(static_cast<uint32_t>(f)), 0u);
}

TEST(AddrMapIndex, BlocksOfReturnsAllBlocks)
{
    linker::Executable exe = metadataTiny();
    AddrMapIndex index(exe);
    for (size_t f = 0; f < index.functionNames().size(); ++f) {
        auto blocks = index.blocksOf(static_cast<uint32_t>(f));
        EXPECT_EQ(blocks.size(), 4u);
    }
    EXPECT_TRUE(index.block(0, 2).has_value());
    EXPECT_FALSE(index.block(0, 99).has_value());
}

TEST(ProfileMapper, RecoversGroundTruthEdges)
{
    linker::Executable exe = metadataTiny();
    sim::MachineOptions opts;
    opts.seed = 3;
    opts.maxInstructions = 400'000;
    opts.collectLbr = true;
    opts.lbrSamplePeriod = 500;
    sim::RunResult run = sim::run(exe, opts);

    AddrMapIndex index(exe);
    MapperStats stats;
    WholeProgramDcfg dcfg =
        buildDcfg(profile::aggregate(run.profile), index, &stats);

    EXPECT_EQ(stats.unmappedRecords, 0u);
    ASSERT_EQ(dcfg.functions.size(), 2u);
    int work = dcfg.findFunction("work");
    ASSERT_GE(work, 0);
    const FunctionDcfg &fn = dcfg.functions[work];

    // Ground truth: bb0 -CondBr bias 240-> bb1 (93.75%) / bb2 (6.25%).
    uint64_t w01 = 0;
    uint64_t w02 = 0;
    for (const auto &edge : fn.edges) {
        uint32_t from = fn.nodes[edge.fromNode].bbId;
        uint32_t to = fn.nodes[edge.toNode].bbId;
        if (from == 0 && to == 1)
            w01 += edge.weight;
        if (from == 0 && to == 2)
            w02 += edge.weight;
    }
    EXPECT_GT(w01, 0u);
    EXPECT_GT(w02, 0u);
    double ratio = static_cast<double>(w01) /
                   static_cast<double>(w01 + w02);
    EXPECT_NEAR(ratio, 240.0 / 256.0, 0.05);

    // Call edges main -> work observed.
    EXPECT_FALSE(dcfg.callEdges.empty());
    EXPECT_GT(stats.callEdges, 0u);
}

TEST(ProfileMapper, EntryNodeAlwaysPresent)
{
    linker::Executable exe = metadataTiny();
    sim::MachineOptions opts;
    opts.collectLbr = true;
    opts.maxInstructions = 50'000;
    opts.lbrSamplePeriod = 5'000;
    sim::RunResult run = sim::run(exe, opts);
    AddrMapIndex index(exe);
    WholeProgramDcfg dcfg =
        buildDcfg(profile::aggregate(run.profile), index, nullptr);
    for (const auto &fn : dcfg.functions) {
        ASSERT_LT(fn.entryNode, fn.nodes.size());
        EXPECT_EQ(fn.nodes[fn.entryNode].bbId, 0u);
    }
}

// ---- Ext-TSP ---------------------------------------------------------

TEST(ExtTspScore, RewardsFallthroughMost)
{
    std::vector<LayoutNode> nodes = {{10, 1}, {10, 1}};
    std::vector<LayoutEdge> edges = {{0, 1, 100}};
    double adjacent = extTspScore(nodes, edges, {0, 1});
    double reversed = extTspScore(nodes, edges, {1, 0});
    EXPECT_DOUBLE_EQ(adjacent, 100.0);
    EXPECT_LT(reversed, adjacent);
    EXPECT_GT(reversed, 0.0) << "short backward jumps score a little";
}

TEST(ExtTspScore, DistanceDecaysToZero)
{
    std::vector<LayoutNode> nodes = {{10, 1}, {2000, 0}, {10, 1}};
    std::vector<LayoutEdge> edges = {{0, 2, 100}};
    // Forward jump over 2000 bytes exceeds the 1024 window.
    EXPECT_DOUBLE_EQ(extTspScore(nodes, edges, {0, 1, 2}), 0.0);
}

TEST(ExtTspOrder, ChainsLinearCfg)
{
    // 0 -> 1 -> 2 -> 3 heavy chain, scrambled initial indices.
    std::vector<LayoutNode> nodes(4, {16, 100});
    std::vector<LayoutEdge> edges = {
        {0, 1, 100}, {1, 2, 100}, {2, 3, 100}};
    auto order = extTspOrder(nodes, edges, 0);
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(ExtTspOrder, PicksHotDiamondSide)
{
    // 0 -> 1 (hot) / 0 -> 2 (cold), both -> 3.
    std::vector<LayoutNode> nodes(4, {16, 0});
    std::vector<LayoutEdge> edges = {
        {0, 1, 90}, {0, 2, 10}, {1, 3, 90}, {2, 3, 10}};
    auto order = extTspOrder(nodes, edges, 0);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u) << "hot side must follow the branch";
}

TEST(ExtTspOrder, EntryStaysFirstEvenWhenCold)
{
    std::vector<LayoutNode> nodes = {{16, 1}, {16, 1000}, {16, 1000}};
    std::vector<LayoutEdge> edges = {{1, 2, 1000}, {0, 1, 1}};
    auto order = extTspOrder(nodes, edges, 0);
    EXPECT_EQ(order[0], 0u);
}

TEST(ExtTspOrder, CoversAllNodesExactlyOnce)
{
    std::vector<LayoutNode> nodes(10, {8, 1});
    std::vector<LayoutEdge> edges = {{0, 5, 3}, {5, 2, 7}, {9, 0, 1}};
    auto order = extTspOrder(nodes, edges, 0);
    std::vector<bool> seen(10, false);
    for (uint32_t n : order) {
        ASSERT_LT(n, 10u);
        EXPECT_FALSE(seen[n]);
        seen[n] = true;
    }
    EXPECT_EQ(order.size(), 10u);
}

TEST(ExtTspOrder, HeapAndReferenceScanAgreeExactly)
{
    // Pseudo-random graph; the lazy heap and the reference full scan
    // share delta scoring and the (gain, key) tie-break, so they must
    // make identical greedy decisions — not merely equally good ones.
    Rng rng(99);
    std::vector<LayoutNode> nodes(40);
    for (auto &node : nodes)
        node = {8 + rng.below(40), rng.below(1000)};
    std::vector<LayoutEdge> edges;
    for (int i = 0; i < 120; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.below(40));
        uint32_t b = static_cast<uint32_t>(rng.below(40));
        edges.push_back({a, b, 1 + rng.below(500)});
    }
    ExtTspOptions heap_opts;
    ExtTspOptions scan_opts;
    scan_opts.referenceSolver = true;
    ExtTspStats hs;
    ExtTspStats ss;
    auto ho = extTspOrder(nodes, edges, 0, heap_opts, &hs);
    auto so = extTspOrder(nodes, edges, 0, scan_opts, &ss);
    EXPECT_EQ(ho, so);
    EXPECT_EQ(hs.finalScore, ss.finalScore);
    EXPECT_GT(hs.merges, 0u);
    EXPECT_EQ(hs.merges, ss.merges);
    EXPECT_GT(hs.heapPops, 0u);
    EXPECT_EQ(ss.heapPops, 0u) << "the reference path never pops";
}

/** Random layout problem for the property tests below. */
void
randomCfg(uint64_t seed, std::vector<LayoutNode> &nodes,
          std::vector<LayoutEdge> &edges)
{
    Rng rng(seed * 7919 + 11);
    size_t n = 2 + rng.below(60);
    nodes.assign(n, {});
    for (auto &node : nodes)
        node = {1 + rng.below(64), rng.below(1000)};
    edges.clear();
    size_t m = rng.below(4 * n);
    for (size_t e = 0; e < m; ++e) {
        edges.push_back({static_cast<uint32_t>(rng.below(n)),
                         static_cast<uint32_t>(rng.below(n)),
                         1 + rng.below(1000)});
    }
}

TEST(ExtTspProperty, HeapMatchesReferenceSolverOnRandomCfgs)
{
    // The acceptance property of the incremental solver: across >= 100
    // seeded random CFGs (with self loops, parallel edges, disconnected
    // nodes and gain ties), lazy-heap retrieval and the reference full
    // scan produce identical chain orders and final scores.
    int checked = 0;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        std::vector<LayoutNode> nodes;
        std::vector<LayoutEdge> edges;
        randomCfg(seed, nodes, edges);

        ExtTspOptions heap_opts;
        ExtTspOptions ref_opts;
        ref_opts.referenceSolver = true;
        ExtTspStats hs;
        ExtTspStats rs;
        auto ho = extTspOrder(nodes, edges, 0, heap_opts, &hs);
        auto ro = extTspOrder(nodes, edges, 0, ref_opts, &rs);
        ASSERT_EQ(ho, ro) << "divergent layout at seed " << seed;
        ASSERT_EQ(hs.finalScore, rs.finalScore) << "seed " << seed;
        ASSERT_EQ(hs.merges, rs.merges) << "seed " << seed;
        ++checked;
    }
    EXPECT_EQ(checked, 100);
}

TEST(ExtTspProperty, DeltaScoringMatchesLegacyRescoreQuality)
{
    // Delta gains equal full-rescan gains in exact arithmetic but not
    // bitwise, so near-ties may resolve differently; the resulting
    // layout quality must still match to float noise.
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        std::vector<LayoutNode> nodes;
        std::vector<LayoutEdge> edges;
        randomCfg(seed, nodes, edges);

        ExtTspOptions delta_opts;
        ExtTspOptions legacy_opts;
        legacy_opts.legacyRescore = true;
        ExtTspStats ds;
        ExtTspStats ls;
        auto dorder = extTspOrder(nodes, edges, 0, delta_opts, &ds);
        auto lorder = extTspOrder(nodes, edges, 0, legacy_opts, &ls);
        double tolerance = 1e-6 * std::max(1.0, ls.finalScore);
        EXPECT_NEAR(ds.finalScore, ls.finalScore, tolerance)
            << "seed " << seed;
        EXPECT_LE(ds.candidateEvals, ls.candidateEvals)
            << "delta scoring must never do more work; seed " << seed;
    }
}

TEST(ExtTspOrder, ImprovesOverRandomOrders)
{
    Rng rng(7);
    std::vector<LayoutNode> nodes(30);
    for (auto &node : nodes)
        node = {8 + rng.below(60), rng.below(100)};
    std::vector<LayoutEdge> edges;
    for (int i = 0; i < 80; ++i) {
        edges.push_back({static_cast<uint32_t>(rng.below(30)),
                         static_cast<uint32_t>(rng.below(30)),
                         1 + rng.below(200)});
    }
    auto order = extTspOrder(nodes, edges, 0);
    double solved = extTspScore(nodes, edges, order);
    // Identity order (a "random" baseline).
    std::vector<uint32_t> identity(30);
    for (uint32_t i = 0; i < 30; ++i)
        identity[i] = i;
    EXPECT_GE(solved, extTspScore(nodes, edges, identity));
}

TEST(ExtTspOrder, SingleNode)
{
    std::vector<LayoutNode> nodes = {{16, 1}};
    auto order = extTspOrder(nodes, {}, 0);
    EXPECT_EQ(order, (std::vector<uint32_t>{0}));
}

// ---- hfsort ----------------------------------------------------------

TEST(Hfsort, CalleeFollowsHotCaller)
{
    std::vector<HfsortNode> nodes = {
        {100, 1000}, {100, 900}, {100, 10}};
    std::vector<HfsortArc> arcs = {{0, 1, 900}, {2, 1, 5}};
    auto order = hfsortOrder(nodes, arcs);
    ASSERT_EQ(order.size(), 3u);
    // Function 1 clusters directly after its dominant caller 0.
    auto pos = [&](uint32_t f) {
        return std::find(order.begin(), order.end(), f) - order.begin();
    };
    EXPECT_EQ(pos(1), pos(0) + 1);
    EXPECT_EQ(pos(2), 2) << "cold function last";
}

TEST(Hfsort, ClusterSizeBounded)
{
    HfsortOptions opts;
    opts.maxClusterSize = 150;
    std::vector<HfsortNode> nodes = {{100, 1000}, {100, 900}, {100, 800}};
    std::vector<HfsortArc> arcs = {{0, 1, 900}, {1, 2, 800}};
    auto order = hfsortOrder(nodes, arcs, opts);
    // 0+1 merge (200 > 150 disallowed) -> actually 0+1 already exceeds:
    // each cluster is 100 bytes, merged 200 > 150, so no merges at all;
    // order is by density.
    EXPECT_EQ(order[0], 0u);
}

TEST(Hfsort, ColdFunctionsKeepIndexOrder)
{
    std::vector<HfsortNode> nodes = {{10, 0}, {10, 0}, {10, 5}};
    auto order = hfsortOrder(nodes, {});
    EXPECT_EQ(order[0], 2u);
    EXPECT_EQ(order[1], 0u);
    EXPECT_EQ(order[2], 1u);
}

// ---- Directives ------------------------------------------------------

TEST(Directives, CcProfileRoundtrip)
{
    CcProfile cc;
    codegen::ClusterSpec spec;
    spec.clusters = {{0, 3, 5}, {1}, {2, 4}};
    spec.coldIndex = 2;
    cc.clusters.emplace("foo", spec);
    codegen::ClusterSpec solo;
    solo.clusters = {{0, 1}};
    cc.clusters.emplace("bar", solo);

    CcProfile parsed;
    ASSERT_TRUE(CcProfile::parse(cc.serialize(), parsed));
    ASSERT_EQ(parsed.clusters.size(), 2u);
    EXPECT_EQ(parsed.clusters.at("foo").clusters, spec.clusters);
    EXPECT_EQ(parsed.clusters.at("foo").coldIndex, 2);
    EXPECT_EQ(parsed.clusters.at("bar").coldIndex, -1);
    EXPECT_GT(cc.sizeInBytes(), 0u);
}

TEST(Directives, CcProfileRejectsMalformed)
{
    CcProfile out;
    EXPECT_FALSE(CcProfile::parse("!!0 1\n", out)) << "cluster before fn";
    EXPECT_FALSE(CcProfile::parse("!f\n!!\n", out)) << "empty cluster";
    EXPECT_FALSE(CcProfile::parse("!f\n", out)) << "function w/o clusters";
    EXPECT_FALSE(CcProfile::parse("junk\n", out));
}

TEST(Directives, LdProfileRoundtrip)
{
    LdProfile ld;
    ld.symbolOrder = {"main", "work", "work.cold"};
    LdProfile parsed;
    ASSERT_TRUE(LdProfile::parse(ld.serialize(), parsed));
    EXPECT_EQ(parsed.symbolOrder, ld.symbolOrder);
}

TEST(Directives, CommentsIgnored)
{
    LdProfile parsed;
    ASSERT_TRUE(LdProfile::parse("# comment\nmain\n\nwork\n", parsed));
    EXPECT_EQ(parsed.symbolOrder,
              (std::vector<std::string>{"main", "work"}));
}

// ---- Whole-program analysis ----------------------------------------

class WpaTest : public ::testing::Test
{
  protected:
    static buildsys::Workflow &
    workflow()
    {
        static buildsys::Workflow wf(test::smallConfig(11));
        return wf;
    }
};

TEST_F(WpaTest, ClusterSpecsCoverEveryBlockExactlyOnce)
{
    const WpaResult &wpa = workflow().wpa();
    ASSERT_FALSE(wpa.ccProf.clusters.empty());
    for (const auto &[fn_name, spec] : wpa.ccProf.clusters) {
        const ir::Function *fn =
            workflow().program().findFunction(fn_name);
        ASSERT_NE(fn, nullptr);
        std::set<uint32_t> listed;
        size_t total = 0;
        for (const auto &cluster : spec.clusters) {
            for (uint32_t id : cluster) {
                EXPECT_TRUE(listed.insert(id).second);
                ++total;
            }
        }
        EXPECT_EQ(total, fn->blocks.size());
        EXPECT_EQ(spec.clusters[0][0], fn->entry().id);
    }
}

TEST_F(WpaTest, SplitProducesColdClusters)
{
    const WpaResult &wpa = workflow().wpa();
    int with_cold = 0;
    for (const auto &[fn, spec] : wpa.ccProf.clusters)
        with_cold += (spec.coldIndex >= 0);
    EXPECT_GT(with_cold, 0) << "splitting must find cold blocks";
}

TEST_F(WpaTest, LdProfListsHotPrimaries)
{
    const WpaResult &wpa = workflow().wpa();
    EXPECT_EQ(wpa.ldProf.symbolOrder.size(), wpa.hotFunctions.size());
    // Every listed symbol is a hot function name (intra mode lists
    // primaries only).
    std::set<std::string> hot(wpa.hotFunctions.begin(),
                              wpa.hotFunctions.end());
    for (const auto &sym : wpa.ldProf.symbolOrder)
        EXPECT_TRUE(hot.count(sym)) << sym;
}

TEST_F(WpaTest, StatsPopulated)
{
    const WpaResult &wpa = workflow().wpa();
    EXPECT_GT(wpa.stats.peakMemory, 0u);
    EXPECT_GT(wpa.stats.profileBytes, 0u);
    EXPECT_GT(wpa.stats.dcfgFootprint, 0u);
    EXPECT_EQ(wpa.stats.hotFunctions, wpa.hotFunctions.size());
    EXPECT_GT(wpa.stats.extTsp.merges, 0u);
}

TEST_F(WpaTest, NoSplitOptionKeepsOneCluster)
{
    LayoutOptions opts;
    opts.splitFunctions = false;
    WpaResult wpa = runWholeProgramAnalysis(workflow().metadataBinary(),
                                            workflow().profile(), opts);
    for (const auto &[fn, spec] : wpa.ccProf.clusters) {
        EXPECT_EQ(spec.clusters.size(), 1u);
        EXPECT_EQ(spec.coldIndex, -1);
    }
}

TEST_F(WpaTest, InterProceduralLayoutIsValidAndInterleaved)
{
    LayoutOptions opts;
    opts.interProcedural = true;
    WpaResult wpa = runWholeProgramAnalysis(workflow().metadataBinary(),
                                            workflow().profile(), opts);
    // Coverage invariant still holds.
    for (const auto &[fn_name, spec] : wpa.ccProf.clusters) {
        const ir::Function *fn =
            workflow().program().findFunction(fn_name);
        ASSERT_NE(fn, nullptr);
        std::set<uint32_t> listed;
        for (const auto &cluster : spec.clusters)
            for (uint32_t id : cluster)
                EXPECT_TRUE(listed.insert(id).second);
        EXPECT_EQ(listed.size(), fn->blocks.size());
        EXPECT_EQ(spec.clusters[0][0], fn->entry().id);
    }
    // Global order may interleave multiple functions' runs: at least as
    // many entries as hot functions.
    EXPECT_GE(wpa.ldProf.symbolOrder.size(), wpa.hotFunctions.size());

    // The interproc binary must still execute identical logical work.
    linker::Executable po = workflow().propellerBinaryWith(opts);
    sim::MachineOptions mopts =
        workload::evalOptions(workflow().config());
    sim::RunResult base = sim::run(workflow().baseline(), mopts);
    sim::RunResult inter = sim::run(po, mopts);
    ASSERT_FALSE(inter.fault);
    EXPECT_EQ(base.counters.logicalInstructions,
              inter.counters.logicalInstructions);
    EXPECT_EQ(base.counters.condBranches, inter.counters.condBranches);
}

} // namespace
} // namespace propeller::core
