/**
 * @file
 * Unit tests for the mini-IR: construction helpers, CFG queries and the
 * structural verifier (parameterized over violation cases).
 */

#include <gtest/gtest.h>

#include "ir/verifier.h"
#include "test_util.h"

namespace propeller::ir {
namespace {

TEST(IrFactories, BuildExpectedKinds)
{
    EXPECT_EQ(makeWork(1, 2).kind, InstKind::Work);
    EXPECT_EQ(makeWorkWide(1, 2).kind, InstKind::WorkWide);
    EXPECT_EQ(makeLoad(1, 2).kind, InstKind::Load);
    EXPECT_EQ(makeStore(1, 2).kind, InstKind::Store);
    EXPECT_EQ(makeCall("f").kind, InstKind::Call);
    EXPECT_EQ(makeCall("f").callee, "f");
    EXPECT_EQ(makeRet().kind, InstKind::Ret);
    EXPECT_EQ(makeBr(3).target, 3u);

    Inst cond = makeCondBr(1, 2, 128, 77);
    EXPECT_EQ(cond.trueTarget, 1u);
    EXPECT_EQ(cond.falseTarget, 2u);
    EXPECT_EQ(cond.bias, 128);
    EXPECT_EQ(cond.branchId, 77u);
    EXPECT_FALSE(cond.periodic);

    Inst loop = makeLoopBr(0, 1, 16, 78);
    EXPECT_TRUE(loop.periodic);
    EXPECT_EQ(loop.bias, 16);

    Inst degenerate = makeLoopBr(0, 1, 0, 79);
    EXPECT_GE(degenerate.bias, 2) << "trip counts below 2 are clamped";
}

TEST(IrPredicates, TerminatorDetection)
{
    EXPECT_TRUE(makeRet().isTerminator());
    EXPECT_TRUE(makeBr(0).isTerminator());
    EXPECT_TRUE(makeCondBr(0, 1, 1, 1).isTerminator());
    EXPECT_FALSE(makeWork(0, 0).isTerminator());
    EXPECT_FALSE(makeCall("f").isTerminator());
}

TEST(IrBlocks, SuccessorsFromTerminator)
{
    BasicBlock bb;
    bb.insts = {makeWork(0, 0), makeCondBr(3, 5, 10, 1)};
    EXPECT_EQ(bb.successors(), (std::vector<uint32_t>{3, 5}));
    bb.insts.back() = makeBr(9);
    EXPECT_EQ(bb.successors(), (std::vector<uint32_t>{9}));
    bb.insts.back() = makeRet();
    EXPECT_TRUE(bb.successors().empty());
}

TEST(IrProgram, QueriesOnTinyProgram)
{
    Program program = test::tinyProgram();
    EXPECT_EQ(program.functionCount(), 2u);
    EXPECT_EQ(program.blockCount(), 8u);
    EXPECT_GT(program.instCount(), 10u);
    ASSERT_NE(program.findFunction("work"), nullptr);
    EXPECT_EQ(program.findFunction("work")->blocks.size(), 4u);
    EXPECT_EQ(program.findFunction("nope"), nullptr);

    const Function *work = program.findFunction("work");
    ASSERT_NE(work->findBlock(3), nullptr);
    EXPECT_EQ(work->findBlock(3)->id, 3u);
    EXPECT_EQ(work->findBlock(99), nullptr);
    EXPECT_EQ(work->entry().id, 0u);
}

TEST(IrVerifier, AcceptsTinyProgram)
{
    Program program = test::tinyProgram();
    EXPECT_TRUE(verify(program).ok());
}

/** A mutation to apply to tinyProgram plus the expected error substring. */
struct VerifierCase
{
    const char *name;
    void (*mutate)(Program &);
    const char *expected;
};

void
dropTerminator(Program &p)
{
    p.modules[0]->functions[0]->blocks[1]->insts.pop_back();
}

void
terminatorMidBlock(Program &p)
{
    auto &insts = p.modules[0]->functions[0]->blocks[1]->insts;
    insts.insert(insts.begin(), makeRet());
}

void
branchToNowhere(Program &p)
{
    p.modules[0]->functions[0]->blocks[0]->insts.back() =
        makeCondBr(1, 42, 100, 500);
}

void
duplicateBlockId(Program &p)
{
    p.modules[0]->functions[0]->blocks[2]->id = 1;
}

void
callUnknown(Program &p)
{
    auto &insts = p.modules[0]->functions[1]->blocks[1]->insts;
    insts[0] = makeCall("ghost");
}

void
duplicateBranchId(Program &p)
{
    p.modules[0]->functions[1]->blocks[1]->insts.back() =
        makeCondBr(1, 2, 250, 1000); // 1000 already used in "work".
}

void
badEntryFunction(Program &p)
{
    p.entryFunction = "missing";
}

void
emptyBlock(Program &p)
{
    p.modules[0]->functions[0]->blocks[2]->insts.clear();
}

void
landingPadEntry(Program &p)
{
    p.modules[0]->functions[0]->blocks[0]->isLandingPad = true;
}

void
duplicateFunctionName(Program &p)
{
    p.modules[0]->functions[1]->name = "work";
}

class VerifierViolations : public ::testing::TestWithParam<VerifierCase>
{
};

TEST_P(VerifierViolations, AreReported)
{
    Program program = test::tinyProgram();
    GetParam().mutate(program);
    std::vector<support::Status> errors = verifyAll(program);
    ASSERT_FALSE(errors.empty());
    EXPECT_FALSE(verify(program).ok());
    bool found = false;
    for (const auto &error : errors) {
        EXPECT_FALSE(error.ok());
        found |= error.message().find(GetParam().expected) !=
                 std::string::npos;
    }
    EXPECT_TRUE(found) << "expected '" << GetParam().expected
                       << "', got: " << errors[0].toString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VerifierViolations,
    ::testing::Values(
        VerifierCase{"dropTerminator", dropTerminator,
                     "does not end with a terminator"},
        VerifierCase{"terminatorMidBlock", terminatorMidBlock,
                     "terminator before end"},
        VerifierCase{"branchToNowhere", branchToNowhere,
                     "branch to unknown block"},
        VerifierCase{"duplicateBlockId", duplicateBlockId,
                     "duplicate block id"},
        VerifierCase{"callUnknown", callUnknown,
                     "call to unknown function"},
        VerifierCase{"duplicateBranchId", duplicateBranchId,
                     "duplicate branch id"},
        VerifierCase{"badEntryFunction", badEntryFunction,
                     "entry function"},
        VerifierCase{"emptyBlock", emptyBlock, "empty block"},
        VerifierCase{"landingPadEntry", landingPadEntry,
                     "entry block is a landing pad"},
        VerifierCase{"duplicateFunctionName", duplicateFunctionName,
                     "duplicate function name"}),
    [](const ::testing::TestParamInfo<VerifierCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace propeller::ir
