/**
 * @file
 * Unit tests for the synthetic ISA: encoding sizes, encode/decode
 * round-trips, invalid-opcode behaviour and relaxation form mapping.
 */

#include <gtest/gtest.h>

#include "isa/isa.h"

namespace propeller::isa {
namespace {

TEST(IsaSizes, MatchDocumentedEncodings)
{
    EXPECT_EQ(Instruction::sizeOf(Opcode::Nop), 1u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Halt), 1u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Ret), 1u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::JmpShort), 2u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Alu), 3u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Load), 4u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Store), 4u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::JmpNear), 5u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::Call), 5u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::AluWide), 6u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::JccShort), 8u);
    EXPECT_EQ(Instruction::sizeOf(Opcode::JccNear), 11u);
}

/** Build a representative instruction for each opcode. */
Instruction
sample(Opcode op)
{
    Instruction inst;
    inst.op = op;
    switch (op) {
      case Opcode::Alu:
        inst.reg = 5;
        inst.imm = 0x7f;
        break;
      case Opcode::AluWide:
        inst.reg = 15;
        inst.imm = 0xdeadbeef;
        break;
      case Opcode::Load:
      case Opcode::Store:
        inst.reg = 3;
        inst.imm = 0xabcd;
        break;
      case Opcode::JmpShort:
        inst.rel = -100;
        break;
      case Opcode::JmpNear:
        inst.rel = 1 << 20;
        break;
      case Opcode::Call:
        inst.rel = -(1 << 19);
        break;
      case Opcode::Prefetch:
        inst.reg = 4;      // Lookahead.
        inst.imm = 0xbeef; // Load-site id.
        break;
      case Opcode::JccShort:
        inst.rel = 127;
        inst.flags = kJccInvert;
        inst.bias = 200;
        inst.branchId = 0x12345678;
        break;
      case Opcode::JccNear:
        inst.rel = -(1 << 24);
        inst.flags = kJccPeriodic;
        inst.bias = 17;
        inst.branchId = 0xffffffff;
        break;
      default:
        break;
    }
    return inst;
}

class IsaRoundtrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(IsaRoundtrip, EncodeDecodeIsIdentity)
{
    Instruction inst = sample(GetParam());
    std::vector<uint8_t> buf;
    inst.encode(buf);
    ASSERT_EQ(buf.size(), inst.size());
    auto decoded = decode(buf.data(), buf.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, inst);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, IsaRoundtrip,
    ::testing::Values(Opcode::Nop, Opcode::Halt, Opcode::Ret, Opcode::Alu,
                      Opcode::AluWide, Opcode::Load, Opcode::Store,
                      Opcode::JmpShort, Opcode::JmpNear, Opcode::JccShort,
                      Opcode::JccNear, Opcode::Call, Opcode::Prefetch));

TEST(IsaDecode, InvalidOpcodeFails)
{
    // 0x30..0x3f is in the undefined space used for embedded data.
    uint8_t data[4] = {0x33, 0x00, 0x00, 0x00};
    EXPECT_FALSE(decode(data, sizeof(data)).has_value());
}

TEST(IsaDecode, TruncatedEncodingFails)
{
    Instruction jcc = sample(Opcode::JccNear);
    std::vector<uint8_t> buf;
    jcc.encode(buf);
    for (size_t len = 1; len < buf.size(); ++len)
        EXPECT_FALSE(decode(buf.data(), len).has_value()) << len;
}

TEST(IsaDecode, EmptyInputFails)
{
    uint8_t byte = 0;
    EXPECT_FALSE(decode(&byte, 0).has_value());
}

TEST(IsaClassify, ControlFlowPredicates)
{
    EXPECT_TRUE(sample(Opcode::Prefetch).isPrefetch());
    EXPECT_FALSE(sample(Opcode::Prefetch).isControlFlow());
    EXPECT_TRUE(sample(Opcode::JccNear).isCondBranch());
    EXPECT_TRUE(sample(Opcode::JccShort).isCondBranch());
    EXPECT_TRUE(sample(Opcode::JmpNear).isUncondBranch());
    EXPECT_TRUE(sample(Opcode::Call).isCall());
    EXPECT_TRUE(sample(Opcode::Ret).isRet());
    EXPECT_FALSE(sample(Opcode::Alu).isControlFlow());
    EXPECT_TRUE(sample(Opcode::JmpShort).endsStream());
    EXPECT_TRUE(sample(Opcode::Ret).endsStream());
    EXPECT_FALSE(sample(Opcode::JccNear).endsStream());
    EXPECT_FALSE(sample(Opcode::Call).endsStream());
}

TEST(IsaRelax, ShortFormsOfNearBranches)
{
    EXPECT_EQ(shortFormOf(Opcode::JmpNear), Opcode::JmpShort);
    EXPECT_EQ(shortFormOf(Opcode::JccNear), Opcode::JccShort);
    EXPECT_FALSE(shortFormOf(Opcode::Call).has_value());
    EXPECT_FALSE(shortFormOf(Opcode::Alu).has_value());
}

TEST(IsaRelax, Rel8Bounds)
{
    EXPECT_TRUE(fitsRel8(127));
    EXPECT_TRUE(fitsRel8(-128));
    EXPECT_FALSE(fitsRel8(128));
    EXPECT_FALSE(fitsRel8(-129));
}

TEST(IsaToString, RendersReadably)
{
    EXPECT_EQ(sample(Opcode::Ret).toString(), "ret");
    EXPECT_NE(sample(Opcode::JccNear).toString().find("jcc"),
              std::string::npos);
    EXPECT_NE(sample(Opcode::Alu).toString().find("alu r5"),
              std::string::npos);
}

TEST(IsaEncode, NegativeDisplacementsSurvive)
{
    Instruction jmp;
    jmp.op = Opcode::JmpNear;
    jmp.rel = -1;
    std::vector<uint8_t> buf;
    jmp.encode(buf);
    auto decoded = decode(buf.data(), buf.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->rel, -1);
}

} // namespace
} // namespace propeller::isa
