/**
 * @file
 * Unit tests for the object file format: section sizing, BB address map
 * encoding, serialization round-trips and content hashing.
 */

#include <gtest/gtest.h>

#include "elf/object.h"
#include "support/leb128.h"
#include "support/rng.h"

namespace propeller::elf {
namespace {

Section
textSectionWithSites()
{
    Section sec;
    sec.name = ".text.f";
    sec.type = SectionType::Text;
    sec.alignment = 16;

    TextPiece p1;
    p1.block = BlockMark{0, kBbFallThrough};
    p1.bytes = {1, 2, 3};
    BranchSite call;
    call.op = isa::Opcode::Call;
    call.targetSymbol = "g";
    call.targetBb = kSectionStart;
    p1.site = call;
    sec.pieces.push_back(p1);

    TextPiece p2;
    p2.bytes = {4, 5};
    BranchSite jcc;
    jcc.op = isa::Opcode::JccNear;
    jcc.bias = 77;
    jcc.branchId = 9;
    jcc.targetSymbol = "f";
    jcc.targetBb = 3;
    p2.site = jcc;
    sec.pieces.push_back(p2);
    return sec;
}

TEST(Section, SizeSumsBytesAndSites)
{
    Section sec = textSectionWithSites();
    // 3 bytes + call(5) + 2 bytes + jcc near(11) = 21.
    EXPECT_EQ(sec.size(), 21u);
    EXPECT_EQ(sec.relocationCount(), 2u);
}

TEST(Section, NonTextSizeIsRawBytes)
{
    Section sec;
    sec.type = SectionType::RoData;
    sec.bytes.assign(100, 0);
    EXPECT_EQ(sec.size(), 100u);
    EXPECT_EQ(sec.relocationCount(), 0u);
}

TEST(FrameDescriptor, SizeGrowsWithSavedRegs)
{
    FrameDescriptor small{"f", 64, 1};
    FrameDescriptor big{"f", 64, 6};
    EXPECT_LT(small.byteSize(), big.byteSize());
    EXPECT_EQ(small.byteSize(), 24u + 8u + 2u);
}

TEST(SizeBreakdown, BucketsByType)
{
    ObjectFile obj;
    obj.name = "m.o";
    obj.sections.push_back(textSectionWithSites());
    obj.symbols.push_back({"f", 0, SymbolKind::Function, "f"});

    Section eh;
    eh.name = ".eh_frame";
    eh.type = SectionType::EhFrame;
    eh.bytes.assign(40, 0);
    obj.sections.push_back(eh);

    Section ro;
    ro.name = ".rodata";
    ro.type = SectionType::RoData;
    ro.bytes.assign(10, 0);
    obj.sections.push_back(ro);

    auto b = obj.sizeBreakdown();
    EXPECT_EQ(b.text, 21u);
    EXPECT_EQ(b.ehFrame, 40u);
    EXPECT_EQ(b.other, 10u);
    EXPECT_EQ(b.relocs, 2 * kRelaEntrySize);
    EXPECT_EQ(b.total(), 21u + 40u + 10u + 48u);
}

TEST(SizeBreakdown, AccumulateOperator)
{
    ObjectFile::SizeBreakdown a{10, 2, 3, 4, 5, 6};
    ObjectFile::SizeBreakdown b{1, 1, 1, 1, 1, 1};
    a += b;
    EXPECT_EQ(a.text, 11u);
    EXPECT_EQ(a.debug, 6u);
    EXPECT_EQ(a.total(), 36u);
}

TEST(BbAddrMap, EncodeDecodeRoundtrip)
{
    std::vector<FunctionAddrMap> maps;
    FunctionAddrMap fn;
    fn.functionName = "foo";
    BbRange range;
    range.sectionSymbol = "foo";
    range.blocks = {{0, 0, 12, kBbFallThrough}, {3, 12, 7, kBbReturns}};
    fn.ranges.push_back(range);
    BbRange cold;
    cold.sectionSymbol = "foo.cold";
    cold.blocks = {{7, 0, 30, kBbLandingPad}};
    fn.ranges.push_back(cold);
    maps.push_back(fn);

    bool ok = false;
    auto decoded = decodeAddrMaps(encodeAddrMaps(maps), &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(decoded, maps);
    EXPECT_EQ(decoded[0].blockCount(), 3u);
}

TEST(BbAddrMap, RandomizedRoundtrip)
{
    Rng rng(123);
    for (int iter = 0; iter < 20; ++iter) {
        std::vector<FunctionAddrMap> maps;
        uint32_t n_funcs = 1 + rng.below(5);
        for (uint32_t f = 0; f < n_funcs; ++f) {
            FunctionAddrMap fn;
            fn.functionName = "fn_" + std::to_string(rng.next() % 1000);
            uint32_t n_ranges = 1 + rng.below(3);
            for (uint32_t r = 0; r < n_ranges; ++r) {
                BbRange range;
                range.sectionSymbol =
                    fn.functionName + "." + std::to_string(r);
                uint32_t offset = 0;
                uint32_t n_blocks = 1 + rng.below(8);
                for (uint32_t b = 0; b < n_blocks; ++b) {
                    uint32_t size =
                        static_cast<uint32_t>(rng.below(100000));
                    range.blocks.push_back(
                        {static_cast<uint32_t>(rng.below(1 << 20)), offset,
                         size, static_cast<uint8_t>(rng.below(8))});
                    offset += size;
                }
                fn.ranges.push_back(std::move(range));
            }
            maps.push_back(std::move(fn));
        }
        bool ok = false;
        EXPECT_EQ(decodeAddrMaps(encodeAddrMaps(maps), &ok), maps);
        EXPECT_TRUE(ok);
    }
}

TEST(BbAddrMap, FuzzedBytesNeverCrash)
{
    Rng rng(0xf22);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<uint8_t> junk(rng.below(64));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.next());
        bool ok = true;
        auto decoded = decodeAddrMaps(junk, &ok);
        if (ok) {
            // Rarely valid by chance; must still be structurally sound.
            for (const auto &map : decoded)
                for (const auto &range : map.ranges)
                    for (size_t b = 0; b + 1 < range.blocks.size(); ++b)
                        EXPECT_EQ(range.blocks[b].offset +
                                      range.blocks[b].size,
                                  range.blocks[b + 1].offset);
        }
    }
}

TEST(BbAddrMap, HostileCountsRejected)
{
    // A ULEB-encoded astronomically large function count must fail fast
    // instead of reserving terabytes.
    std::vector<uint8_t> hostile;
    encodeUleb128(0xffffffffffffull, hostile);
    bool ok = true;
    decodeAddrMaps(hostile, &ok);
    EXPECT_FALSE(ok);
}

TEST(BbAddrMap, MalformedInputRejected)
{
    std::vector<FunctionAddrMap> maps(1);
    maps[0].functionName = "f";
    maps[0].ranges.push_back({"f", {{0, 0, 5, 0}}});
    std::vector<uint8_t> bytes = encodeAddrMaps(maps);

    bool ok = true;
    std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 2);
    decodeAddrMaps(truncated, &ok);
    EXPECT_FALSE(ok);

    ok = true;
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    decodeAddrMaps(padded, &ok);
    EXPECT_FALSE(ok) << "trailing bytes must be rejected";
}

std::vector<FunctionAddrMap>
mapsWithStaleMetadata()
{
    std::vector<FunctionAddrMap> maps(1);
    maps[0].functionName = "f";
    maps[0].functionHash = 0xfeedface12345678ull;
    BbRange range;
    range.sectionSymbol = "f";
    range.blocks = {{0, 0, 8, kBbFallThrough}, {3, 8, 13, kBbReturns}};
    range.blocks[0].hash = 0xabcdef01ull;
    range.blocks[0].succs = {3};
    range.blocks[1].hash = 0x1234ull;
    maps[0].ranges.push_back(range);
    return maps;
}

TEST(BbAddrMap, V2RoundtripPreservesStaleMetadata)
{
    std::vector<FunctionAddrMap> maps = mapsWithStaleMetadata();
    bool ok = false;
    auto decoded =
        decodeAddrMaps(encodeAddrMaps(maps, AddrMapVersion::V2), &ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(decoded, maps);
    EXPECT_EQ(decoded[0].functionHash, 0xfeedface12345678ull);
    EXPECT_EQ(decoded[0].ranges[0].blocks[0].succs,
              std::vector<uint32_t>{3});
}

TEST(BbAddrMap, V1RoundtripDropsStaleMetadata)
{
    std::vector<FunctionAddrMap> maps = mapsWithStaleMetadata();
    std::vector<uint8_t> bytes = encodeAddrMaps(maps, AddrMapVersion::V1);
    // v1 blobs are not allowed to start with the v2 escape byte.
    ASSERT_FALSE(bytes.empty());
    EXPECT_NE(bytes[0], 0u);

    bool ok = false;
    auto decoded = decodeAddrMaps(bytes, &ok);
    EXPECT_TRUE(ok);

    std::vector<FunctionAddrMap> stripped = maps;
    stripped[0].functionHash = 0;
    for (auto &range : stripped[0].ranges) {
        for (auto &block : range.blocks) {
            block.hash = 0;
            block.succs.clear();
        }
    }
    EXPECT_EQ(decoded, stripped);
}

TEST(BbAddrMap, EmptyMapsRoundtripInBothVersions)
{
    for (auto version : {AddrMapVersion::V1, AddrMapVersion::V2}) {
        bool ok = false;
        auto decoded = decodeAddrMaps(encodeAddrMaps({}, version), &ok);
        EXPECT_TRUE(ok);
        EXPECT_TRUE(decoded.empty());
    }
}

TEST(BbAddrMap, UnknownVersionRejected)
{
    std::vector<uint8_t> bytes;
    bytes.push_back(0x00); // v2 escape
    encodeUleb128(3, bytes); // version from the future
    encodeUleb128(0, bytes); // features
    encodeUleb128(0, bytes); // function count
    bool ok = true;
    decodeAddrMaps(bytes, &ok);
    EXPECT_FALSE(ok) << "unknown versions must be a decode error";
}

TEST(BbAddrMap, UnknownFeatureBitsRejected)
{
    std::vector<uint8_t> bytes;
    bytes.push_back(0x00);
    encodeUleb128(2, bytes);
    encodeUleb128(kAddrMapKnownFeatures | 0x8, bytes);
    encodeUleb128(0, bytes);
    bool ok = true;
    decodeAddrMaps(bytes, &ok);
    EXPECT_FALSE(ok) << "unknown feature bits must be a decode error";
}

ObjectFile
sampleObject()
{
    ObjectFile obj;
    obj.name = "mod_0001.o";
    obj.sections.push_back(textSectionWithSites());
    Section handasm;
    handasm.name = ".text.h";
    handasm.type = SectionType::Text;
    handasm.isHandAsm = true;
    TextPiece blob;
    blob.bytes = {0x30, 0x31, 0x32};
    handasm.pieces.push_back(blob);
    obj.sections.push_back(handasm);

    obj.symbols.push_back({"f", 0, SymbolKind::Function, "f"});
    obj.symbols.push_back({"h", 1, SymbolKind::Function, "h"});

    FunctionAddrMap map;
    map.functionName = "f";
    map.ranges.push_back({"f", {{0, 0, 8, 0}, {3, 8, 13, kBbReturns}}});
    obj.addrMaps.push_back(map);

    obj.frames.push_back({"f", 21, 3});
    obj.integrityCheckedFunctions.push_back("f");
    return obj;
}

TEST(Serialize, RoundtripPreservesEverything)
{
    ObjectFile obj = sampleObject();
    ObjectFile copy = ObjectFile::deserialize(obj.serialize());

    EXPECT_EQ(copy.name, obj.name);
    ASSERT_EQ(copy.sections.size(), obj.sections.size());
    EXPECT_EQ(copy.sections[0].name, obj.sections[0].name);
    EXPECT_EQ(copy.sections[0].size(), obj.sections[0].size());
    EXPECT_EQ(copy.sections[1].isHandAsm, true);
    ASSERT_EQ(copy.sections[0].pieces.size(), 2u);
    ASSERT_TRUE(copy.sections[0].pieces[0].block.has_value());
    EXPECT_EQ(copy.sections[0].pieces[0].block->bbId, 0u);
    ASSERT_TRUE(copy.sections[0].pieces[1].site.has_value());
    EXPECT_EQ(copy.sections[0].pieces[1].site->targetBb, 3u);
    EXPECT_EQ(copy.sections[0].pieces[1].site->bias, 77);
    ASSERT_EQ(copy.symbols.size(), 2u);
    EXPECT_EQ(copy.symbols[1].parentFunction, "h");
    EXPECT_EQ(copy.addrMaps, obj.addrMaps);
    ASSERT_EQ(copy.frames.size(), 1u);
    EXPECT_EQ(copy.frames[0].savedRegs, 3);
    EXPECT_EQ(copy.integrityCheckedFunctions, obj.integrityCheckedFunctions);
}

TEST(Serialize, ContentHashStableAndSensitive)
{
    ObjectFile obj = sampleObject();
    uint64_t h1 = obj.contentHash();
    EXPECT_EQ(h1, sampleObject().contentHash()) << "hash must be stable";
    obj.sections[0].pieces[0].bytes[0] ^= 1;
    EXPECT_NE(obj.contentHash(), h1) << "hash must see content changes";
}

TEST(Serialize, DeserializeOfSerializeIsFixpoint)
{
    ObjectFile obj = sampleObject();
    std::vector<uint8_t> once = obj.serialize();
    std::vector<uint8_t> twice = ObjectFile::deserialize(once).serialize();
    EXPECT_EQ(once, twice);
}

TEST(ObjectFile, FindSection)
{
    ObjectFile obj = sampleObject();
    EXPECT_EQ(obj.findSection(".text.f"), 0);
    EXPECT_EQ(obj.findSection(".text.h"), 1);
    EXPECT_EQ(obj.findSection(".missing"), -1);
}

TEST(ObjectFile, SizeInBytesTracksContent)
{
    ObjectFile obj = sampleObject();
    uint64_t before = obj.sizeInBytes();
    Section ro;
    ro.name = ".rodata";
    ro.type = SectionType::RoData;
    ro.bytes.assign(1000, 0);
    obj.sections.push_back(ro);
    EXPECT_GT(obj.sizeInBytes(), before + 999);
}

} // namespace
} // namespace propeller::elf
