/**
 * @file
 * Work-stealing scheduler tests: graph mechanics (release order, cycle
 * rejection, exception routing), the deterministic virtual-time model,
 * OrderedSink sequencing — and the property the whole relink engine
 * rests on: byte-identical results and identical schedule reports at
 * any worker count, over 100 randomized DAGs with forced steals.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "build/workflow.h"
#include "faultinject/faultinject.h"
#include "sched/sched.h"
#include "support/hash.h"
#include "test_util.h"

namespace propeller {
namespace {

using sched::OrderedSink;
using sched::ScheduleReport;
using sched::Scheduler;
using sched::SchedulerOptions;
using sched::TaskGraph;
using sched::TaskId;

ScheduleReport
runWith(TaskGraph &graph, unsigned threads, unsigned model_workers = 8,
        bool fifo = false)
{
    SchedulerOptions opts;
    opts.threads = threads;
    opts.modelWorkers = model_workers;
    opts.fifoQueues = fifo;
    return Scheduler(opts).run(graph);
}

TEST(TaskGraph, EdgesGateExecution)
{
    // A diamond: the join must observe both branches' writes.
    TaskGraph g;
    int a = 0, b = 0, c = 0, d = 0;
    TaskId ta = g.add([&] { a = 1; });
    TaskId tb = g.add([&] { b = a + 1; });
    TaskId tc = g.add([&] { c = a + 2; });
    TaskId td = g.add([&] { d = b + c; });
    g.addEdge(ta, tb);
    g.addEdge(ta, tc);
    g.addEdge(tb, td);
    g.addEdge(tc, td);
    ScheduleReport rep = runWith(g, 4);
    EXPECT_EQ(d, 5);
    EXPECT_EQ(rep.tasksExecuted, 4u);
}

TEST(TaskGraph, CycleIsRejected)
{
    TaskGraph g;
    TaskId ta = g.add([] {});
    TaskId tb = g.add([] {});
    g.addEdge(ta, tb);
    g.addEdge(tb, ta);
    EXPECT_THROW(runWith(g, 2), std::logic_error);
}

TEST(TaskGraph, TaskExceptionRethrownAndDependentsSkipped)
{
    TaskGraph g;
    std::atomic<bool> downstream_ran{false};
    TaskId ta = g.add([] { throw std::runtime_error("task boom"); });
    TaskId tb = g.add([&] { downstream_ran = true; });
    g.addEdge(ta, tb);
    EXPECT_THROW(runWith(g, 2), std::runtime_error);
    EXPECT_FALSE(downstream_ran.load());
}

TEST(TaskGraph, ModelIsDeterministicAcrossThreadCounts)
{
    // The virtual-time schedule depends only on graph shape and costs,
    // so two executions of the same shape at different thread counts
    // must report identical spans, makespan and critical path.
    auto build = [](TaskGraph &g) {
        std::vector<TaskId> layer;
        TaskId root = g.add([] {}, {"root", "p0", 1.0});
        for (int i = 0; i < 12; ++i) {
            TaskId t = g.add([] {}, {"mid", "p1", 0.5 + 0.25 * i});
            g.addEdge(root, t);
            layer.push_back(t);
        }
        TaskId join = g.add([] {}, {"join", "p2", 2.0});
        for (TaskId t : layer)
            g.addEdge(t, join);
    };
    TaskGraph g1, g8;
    build(g1);
    build(g8);
    ScheduleReport r1 = runWith(g1, 1);
    ScheduleReport r8 = runWith(g8, 8);

    EXPECT_DOUBLE_EQ(r1.makespanSec, r8.makespanSec);
    EXPECT_DOUBLE_EQ(r1.criticalPathSec, r8.criticalPathSec);
    EXPECT_DOUBLE_EQ(r1.totalWorkSec, r8.totalWorkSec);
    ASSERT_EQ(r1.spans.size(), r8.spans.size());
    for (size_t i = 0; i < r1.spans.size(); ++i) {
        EXPECT_DOUBLE_EQ(r1.spans[i].startSec, r8.spans[i].startSec) << i;
        EXPECT_DOUBLE_EQ(r1.spans[i].endSec, r8.spans[i].endSec) << i;
        EXPECT_EQ(r1.spans[i].worker, r8.spans[i].worker) << i;
    }
    // Critical path: root (1.0) + slowest mid (3.25) + join (2.0).
    EXPECT_DOUBLE_EQ(r1.criticalPathSec, 6.25);
    EXPECT_GE(r1.makespanSec, r1.lowerBoundSec);
}

TEST(TaskGraph, DynamicTasksAddedDuringRun)
{
    // A coordinator task that fans out work it discovers at runtime —
    // the shape the relink engine uses for per-function layout tasks:
    // children are added with deps={self} so none is released before
    // the adder finishes wiring edges to the downstream join.
    TaskGraph g;
    constexpr size_t kChildren = 24;
    std::vector<uint64_t> value(kChildren, 0);
    std::atomic<size_t> ran{0};
    uint64_t joined = 0;

    TaskId join = g.add([&] {
        uint64_t v = 0;
        for (uint64_t x : value)
            v = mix64(v, x);
        joined = v;
    });
    TaskId fan = sched::kInvalidTask;
    fan = g.add([&] {
        for (size_t i = 0; i < kChildren; ++i) {
            TaskId child = g.add(
                [&, i] {
                    value[i] = mix64(0x9e3779b97f4a7c15ull, i);
                    ran.fetch_add(1);
                },
                {"child" + std::to_string(i), "dyn", 0.25}, {fan});
            g.addEdge(child, join);
        }
    });
    g.addEdge(fan, join);

    ScheduleReport rep = runWith(g, 8);
    EXPECT_EQ(ran.load(), kChildren);
    EXPECT_EQ(rep.tasksExecuted, kChildren + 2);
    uint64_t expect = 0;
    for (size_t i = 0; i < kChildren; ++i)
        expect = mix64(expect, mix64(0x9e3779b97f4a7c15ull, i));
    EXPECT_EQ(joined, expect);
    // The model schedules dynamic tasks too: 24 x 0.25s over 8 virtual
    // workers is three full waves.
    EXPECT_DOUBLE_EQ(rep.totalWorkSec, 6.0);
    EXPECT_DOUBLE_EQ(rep.makespanSec, 0.75);
}

TEST(TaskGraph, SetCostFromTaskBodyFeedsTheModel)
{
    TaskGraph g;
    TaskId t = g.add([&g, &t] { g.setCost(t, 4.0); }, {"late", "p", 0.0});
    (void)t;
    ScheduleReport rep = runWith(g, 2);
    EXPECT_DOUBLE_EQ(rep.totalWorkSec, 4.0);
    EXPECT_DOUBLE_EQ(rep.makespanSec, 4.0);
}

TEST(TaskGraph, PhaseWindowCoversPhaseSpans)
{
    TaskGraph g;
    TaskId a = g.add([] {}, {"a", "alpha", 2.0});
    TaskId b = g.add([] {}, {"b", "beta", 3.0});
    g.addEdge(a, b);
    ScheduleReport rep = runWith(g, 2);
    ScheduleReport::Window alpha = rep.phaseWindow("alpha");
    ScheduleReport::Window beta = rep.phaseWindow("beta");
    EXPECT_TRUE(alpha.any);
    EXPECT_DOUBLE_EQ(alpha.startSec, 0.0);
    EXPECT_DOUBLE_EQ(alpha.endSec, 2.0);
    EXPECT_DOUBLE_EQ(beta.startSec, 2.0);
    EXPECT_DOUBLE_EQ(beta.endSec, 5.0);
    EXPECT_FALSE(rep.phaseWindow("gamma").any);
}

TEST(OrderedSinkTest, CommitsRunInSequenceOrderFromAnyThread)
{
    OrderedSink sink;
    std::string out;
    // Submit out of order from racing threads; the sink must serialize
    // the commits as 0,1,2,...,N-1.
    constexpr int kN = 64;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int i = t; i < kN; i += 8) {
                int seq = kN - 1 - i;
                sink.submit(static_cast<uint64_t>(seq), [&out, seq] {
                    out += std::to_string(seq) + ",";
                });
            }
        });
    }
    for (auto &th : threads)
        th.join();
    std::string expect;
    for (int i = 0; i < kN; ++i)
        expect += std::to_string(i) + ",";
    EXPECT_EQ(out, expect);
    EXPECT_EQ(sink.committed(), static_cast<uint64_t>(kN));
}

// ---- The determinism property, 100 seeds ------------------------------

/**
 * One randomized run: a DAG whose tasks carry data (a hash folded over
 * the inputs), sleep pseudo-random durations to force steals, and
 * commit attribution lines through an OrderedSink.  Returns everything
 * an engine ships: result bytes, sink transcript, schedule metrics.
 */
struct PropertyOutcome
{
    uint64_t resultHash = 0;
    std::string transcript;
    double makespanSec = 0.0;
    double criticalPathSec = 0.0;
    uint64_t tasksExecuted = 0;
};

PropertyOutcome
runRandomDag(uint64_t seed, unsigned threads, bool fifo = false)
{
    // Deterministic per-seed structure: ~36 tasks, each depending on up
    // to 3 earlier tasks.
    constexpr size_t kTasks = 36;
    TaskGraph g;
    std::vector<uint64_t> value(kTasks, 0);
    std::vector<TaskId> ids(kTasks);
    OrderedSink sink;
    std::string transcript;

    for (size_t i = 0; i < kTasks; ++i) {
        uint64_t h = mix64(seed, i);
        std::vector<size_t> deps;
        if (i > 0) {
            size_t ndeps = h % 4;
            for (size_t d = 0; d < ndeps; ++d)
                deps.push_back(mix64(h, d) % i);
        }
        unsigned sleep_us = static_cast<unsigned>(mix64(h, 99) % 40);
        ids[i] = g.add(
            [&, i, deps, sleep_us, h] {
                // Unequal task durations are what force steals: a worker
                // stuck in a long task loses the rest of its deque.
                std::this_thread::sleep_for(
                    std::chrono::microseconds(sleep_us));
                uint64_t v = h;
                for (size_t d : deps)
                    v = mix64(v, value[d]);
                value[i] = v;
                sink.submit(i, [&transcript, i, v] {
                    transcript += "task " + std::to_string(i) + " -> " +
                                  std::to_string(v % 997) + "\n";
                });
            },
            {"t" + std::to_string(i), "prop",
             0.001 * static_cast<double>(h % 100)});
        for (size_t d : deps)
            g.addEdge(ids[d], ids[i]);
    }

    ScheduleReport rep = runWith(g, threads, 8, fifo);
    PropertyOutcome out;
    out.resultHash = 0xcbf29ce484222325ull;
    for (uint64_t v : value)
        out.resultHash = mix64(out.resultHash, v);
    out.transcript = std::move(transcript);
    out.makespanSec = rep.makespanSec;
    out.criticalPathSec = rep.criticalPathSec;
    out.tasksExecuted = rep.tasksExecuted;
    return out;
}

TEST(SchedulerProperty, HundredSeedsIdenticalAcrossWorkerCounts)
{
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        PropertyOutcome base = runRandomDag(seed, 1);
        for (unsigned threads : {2u, 8u}) {
            PropertyOutcome got = runRandomDag(seed, threads);
            ASSERT_EQ(got.resultHash, base.resultHash)
                << "seed " << seed << " threads " << threads;
            ASSERT_EQ(got.transcript, base.transcript)
                << "seed " << seed << " threads " << threads;
            ASSERT_DOUBLE_EQ(got.makespanSec, base.makespanSec)
                << "seed " << seed << " threads " << threads;
            ASSERT_DOUBLE_EQ(got.criticalPathSec, base.criticalPathSec)
                << "seed " << seed << " threads " << threads;
            ASSERT_EQ(got.tasksExecuted, base.tasksExecuted);
        }
    }
}

TEST(SchedulerProperty, HundredSeedsFifoMatchesPriority)
{
    // Queue policy (critical-path priority vs FIFO) changes only the
    // real-time execution order, never the data a DAG computes, the
    // attribution transcript, or the virtual-time model.
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        PropertyOutcome pri = runRandomDag(seed, 8, /*fifo=*/false);
        for (unsigned threads : {1u, 2u, 8u}) {
            PropertyOutcome fifo = runRandomDag(seed, threads, true);
            ASSERT_EQ(fifo.resultHash, pri.resultHash)
                << "seed " << seed << " threads " << threads;
            ASSERT_EQ(fifo.transcript, pri.transcript)
                << "seed " << seed << " threads " << threads;
            ASSERT_DOUBLE_EQ(fifo.makespanSec, pri.makespanSec)
                << "seed " << seed << " threads " << threads;
            ASSERT_EQ(fifo.tasksExecuted, pri.tasksExecuted);
        }
    }
}

// ---- Workflow-level identity ------------------------------------------

/** Everything the relink engine ships, for equality comparison. */
struct EngineOutput
{
    std::vector<uint8_t> text;
    std::string verifyText;
    std::vector<std::string> codegenFailures;
    std::vector<std::string> linkFailures;
    double codegenMakespan = 0.0;
    uint32_t retries = 0;
    uint64_t cacheCorruptions = 0;
};

EngineOutput
runEngine(unsigned jobs, bool barrier, bool faults, bool fifo = false)
{
    workload::WorkloadConfig cfg = test::smallConfig(91);
    cfg.name = "schedtest";
    cfg.jobs = jobs;
    cfg.barrierScheduler = barrier;
    cfg.fifoScheduler = fifo;

    faultinject::FaultSpec spec;
    spec.seed = 23;
    spec.cacheRate = 0.4;
    spec.execFailRate = 0.2;
    faultinject::FaultInjector injector(spec);

    buildsys::Workflow wf(cfg);
    if (faults)
        wf.setFaultHooks(&injector);

    EngineOutput out;
    out.text = wf.propellerBinary().text;
    out.verifyText = wf.verifyReport().engine.renderText();
    const buildsys::PhaseReport &cg = wf.report("phase4.codegen");
    out.codegenFailures = cg.failures;
    out.codegenMakespan = cg.makespanSec;
    out.retries = cg.retries;
    out.linkFailures = wf.report("phase4.link").failures;
    out.cacheCorruptions = wf.cacheStats().corruptions;
    return out;
}

TEST(EngineIdentity, TaskGraphMatchesBarrierEngine)
{
    // The ablation contract: both engines ship the same bytes, the same
    // failure attribution and the same modelled phase accounting.
    for (bool faults : {false, true}) {
        EngineOutput graph = runEngine(4, false, faults);
        EngineOutput barrier = runEngine(4, true, faults);
        EXPECT_EQ(graph.text, barrier.text) << "faults=" << faults;
        EXPECT_EQ(graph.verifyText, barrier.verifyText);
        EXPECT_EQ(graph.codegenFailures, barrier.codegenFailures);
        EXPECT_EQ(graph.linkFailures, barrier.linkFailures);
        EXPECT_DOUBLE_EQ(graph.codegenMakespan, barrier.codegenMakespan);
        EXPECT_EQ(graph.retries, barrier.retries);
        EXPECT_EQ(graph.cacheCorruptions, barrier.cacheCorruptions);
    }
}

TEST(EngineIdentity, TaskGraphIdenticalAcrossJobCounts)
{
    // Under fault injection (cache rot + transient action failures) the
    // attribution lines and retry accounting must not depend on which
    // worker got where first.
    EngineOutput base = runEngine(1, false, true);
    for (unsigned jobs : {2u, 8u}) {
        EngineOutput got = runEngine(jobs, false, true);
        EXPECT_EQ(got.text, base.text) << "jobs " << jobs;
        EXPECT_EQ(got.verifyText, base.verifyText) << "jobs " << jobs;
        EXPECT_EQ(got.codegenFailures, base.codegenFailures);
        EXPECT_EQ(got.linkFailures, base.linkFailures);
        EXPECT_DOUBLE_EQ(got.codegenMakespan, base.codegenMakespan);
        EXPECT_EQ(got.retries, base.retries);
        EXPECT_EQ(got.cacheCorruptions, base.cacheCorruptions);
    }
}

TEST(EngineIdentity, FifoQueuesShipIdenticalArtifacts)
{
    // The scheduling-policy ablation: FIFO worker queues vs
    // critical-path priority queues must ship the same bytes and the
    // same failure attribution at every job count, with and without
    // fault injection.
    for (bool faults : {false, true}) {
        EngineOutput pri = runEngine(8, false, faults, /*fifo=*/false);
        for (unsigned jobs : {1u, 2u, 8u}) {
            EngineOutput fifo = runEngine(jobs, false, faults, true);
            EXPECT_EQ(fifo.text, pri.text)
                << "faults=" << faults << " jobs=" << jobs;
            EXPECT_EQ(fifo.verifyText, pri.verifyText);
            EXPECT_EQ(fifo.codegenFailures, pri.codegenFailures);
            EXPECT_EQ(fifo.linkFailures, pri.linkFailures);
            EXPECT_DOUBLE_EQ(fifo.codegenMakespan, pri.codegenMakespan);
            EXPECT_EQ(fifo.retries, pri.retries);
            EXPECT_EQ(fifo.cacheCorruptions, pri.cacheCorruptions);
        }
    }
}

TEST(EngineIdentity, WarmLayoutCacheRerunIsByteIdentical)
{
    // A second relink against the first run's persisted cache image
    // must hit the layout memo for every function and still ship the
    // same bytes at every job count.
    const std::string path =
        ::testing::TempDir() + "/sched_warm_cache.bin";
    std::remove(path.c_str());

    workload::WorkloadConfig cfg = test::smallConfig(91);
    cfg.name = "schedtest";
    cfg.jobs = 8;

    buildsys::Workflow cold(cfg);
    std::vector<uint8_t> cold_text = cold.propellerBinary().text;
    const buildsys::CacheStats &cold_stats = cold.layoutCacheStats();
    EXPECT_EQ(cold_stats.hits, 0u);
    EXPECT_GT(cold_stats.misses, 0u);
    ASSERT_TRUE(cold.saveCacheFile(path));

    for (unsigned jobs : {1u, 2u, 8u}) {
        workload::WorkloadConfig warm_cfg = cfg;
        warm_cfg.jobs = jobs;
        buildsys::Workflow warm(warm_cfg);
        ASSERT_TRUE(warm.loadCacheFile(path));
        EXPECT_EQ(warm.propellerBinary().text, cold_text)
            << "jobs " << jobs;
        const buildsys::CacheStats &ws = warm.layoutCacheStats();
        EXPECT_EQ(ws.misses, 0u) << "jobs " << jobs;
        EXPECT_EQ(ws.hits, cold_stats.misses) << "jobs " << jobs;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace propeller
