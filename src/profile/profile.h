#ifndef PROPELLER_PROFILE_PROFILE_H
#define PROPELLER_PROFILE_PROFILE_H

/**
 * @file
 * Hardware sample profiles.
 *
 * Substitute for perf.data with Intel Last Branch Records (paper section
 * 3.3).  The machine simulator snapshots its 32-entry LBR ring every
 * sampling period; each snapshot is the (source, destination) address pairs
 * of the most recently retired taken branches, exactly the payload Linux
 * perf delivers.  The same profile object drives both Propeller's Phase 3
 * whole-program analysis and BOLT's perf2bolt conversion, matching the
 * paper's fairness methodology (section 5).
 */

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace propeller::profile {

/** Source/destination address pair of one retired taken branch. */
struct BranchRecord
{
    uint64_t from = 0; ///< Address of the branch instruction.
    uint64_t to = 0;   ///< Address of the target instruction.

    bool operator==(const BranchRecord &) const = default;
};

/** Number of LBR entries per sample (Intel Skylake). */
constexpr unsigned kLbrDepth = 32;

/**
 * One LBR snapshot: up to 32 records ordered oldest first.  Early samples
 * taken before the ring fills carry fewer records.
 */
struct LbrSample
{
    std::array<BranchRecord, kLbrDepth> records{};
    uint8_t count = 0;
};

/** A full profiling session ("perf.data"). */
struct Profile
{
    uint64_t binaryHash = 0;    ///< Identity of the profiled binary.
    uint64_t totalRetired = 0;  ///< Instructions retired while profiling.
    std::vector<LbrSample> samples;

    /** Serialized size in bytes (what profile conversion must read). */
    uint64_t sizeInBytes() const;

    /**
     * Wire format: 4-byte magic, ULEB128 fields, and a trailing 8-byte
     * FNV-1a checksum over everything before it.  ULEB128 streams can
     * absorb bit flips silently; the checksum is what turns any
     * corruption into a *detected* rejection (ISSUE 4).
     */
    std::vector<uint8_t> serialize() const;

    /** Decode @p data; corruption is a typed error, never an abort. */
    static support::StatusOr<Profile>
    deserializeChecked(const std::vector<uint8_t> &data);

    /** Decode @p data, aborting on corruption (trusted-input paths). */
    static Profile deserialize(const std::vector<uint8_t> &data);
};

/** Outcome of salvaging a sharded profile (see loadShards()). */
struct ShardLoadStats
{
    uint32_t shardsTotal = 0;    ///< Shards presented.
    uint32_t shardsRejected = 0; ///< Shards dropped as corrupt.
    std::string firstError;      ///< Diagnostic for the first rejection.

    /**
     * Per-shard binary version stamp, parallel to the input shard list
     * (0 for rejected shards).  Every shard is a complete Profile
     * serialization carrying its own binaryHash, so a mixed-version
     * shard set can be diagnosed per shard — and routed per version by
     * the fleet service — instead of being rejected wholesale against
     * the first shard's stamp.
     */
    std::vector<uint64_t> shardVersions;

    /** Distinct nonzero version stamps among accepted shards. */
    uint32_t distinctVersions = 0;
};

/**
 * Split @p profile into independently-decodable shards of at most
 * @p samplesPerShard samples each (0 = one shard).  Every shard is a
 * complete Profile serialization carrying the session's binaryHash and
 * totalRetired, so losing any subset of shards loses only those samples.
 */
std::vector<std::vector<uint8_t>>
serializeShards(const Profile &profile, uint32_t samplesPerShard);

/**
 * Reassemble a profile from shards, dropping (and counting) corrupt
 * ones.  This is the "degrade, don't die" ingest path: a bit-flipped
 * shard costs its samples, not the run.
 */
Profile loadShards(const std::vector<std::vector<uint8_t>> &shards,
                   ShardLoadStats *stats = nullptr);

/**
 * Aggregated form: branch edge counts plus fall-through ranges.
 *
 * A fall-through range (to_i .. from_{i+1}) between consecutive LBR
 * records covers the straight-line instructions executed between two taken
 * branches; walking those ranges recovers fall-through edge counts without
 * disassembly (paper section 3.3).
 */
struct AggregatedProfile
{
    /** (from << 32 | to-offset) keyed taken-branch counts. */
    std::unordered_map<uint64_t, uint64_t> branches;

    /** (start << 32 | end-offset) keyed fall-through range counts. */
    std::unordered_map<uint64_t, uint64_t> ranges;

    uint64_t totalBranchEvents = 0;

    /** Pack two text addresses into one key (text is < 4 GiB). */
    static uint64_t
    key(uint64_t a, uint64_t b)
    {
        return (a << 32) | (b & 0xffffffffull);
    }

    static uint64_t keyFrom(uint64_t k) { return k >> 32; }
    static uint64_t keyTo(uint64_t k) { return k & 0xffffffffull; }

    /** Fold @p other's counters into this one (sharded aggregation). */
    void merge(const AggregatedProfile &other);
};

/** Options for sharded profile aggregation. */
struct AggregationOptions
{
    /** Worker threads (0 = hardware_concurrency()). */
    unsigned threads = 0;

    /**
     * Samples per aggregation shard.  Shard boundaries are a pure
     * function of the profile size — never of the thread count — and
     * shards merge serially in shard order, so the aggregated maps (and
     * everything downstream that consumes their iteration order) are
     * byte-identical at any thread count.
     */
    uint32_t samplesPerShard = 4096;
};

/** Aggregate raw LBR samples into edge and range counts. */
AggregatedProfile aggregate(const Profile &profile);

/** Sharded aggregation: per-shard counters merged once at the end. */
AggregatedProfile aggregate(const Profile &profile,
                            const AggregationOptions &opts);

/**
 * Staged aggregation, for schedulers that want each shard as its own
 * task: the number of shards is a pure function of the profile size
 * and `opts.samplesPerShard` (never of the thread count), each shard
 * aggregates independently into its slot, and `mergeAggregationShards`
 * folds the slots serially in shard order — byte-identical to
 * `aggregate(profile, opts)` under any execution order of the shards.
 */
size_t aggregationShardCount(const Profile &profile,
                             const AggregationOptions &opts);

/** Aggregate shard @p shard (of aggregationShardCount) into @p out. */
void aggregateShardInto(const Profile &profile,
                        const AggregationOptions &opts, size_t shard,
                        AggregatedProfile &out);

/** Serial shard-order merge of per-shard slots (slot 0 is the base). */
AggregatedProfile
mergeAggregationShards(std::vector<AggregatedProfile> &slots);

/**
 * Recency-weighted rolling aggregate for the continuous-profiling loop:
 * the last `window` epochs of integer counters are retained and an
 * epoch observed d epochs ago contributes with weight decay^d (decay in
 * (0, 1]) — older epochs never outweigh newer ones at equal counts, and
 * epochs older than the window stop contributing entirely.
 *
 * Truncating the exponential tail is what makes steady state *exact*:
 * once the window holds identical epochs, every quantize() call runs
 * the same arithmetic on the same integers and emits byte-identical
 * results — whereas an untruncated rolling sum R = R*decay + E carries
 * a forever-shrinking residue from before the mix stabilized, and its
 * rounded snapshots keep flickering for dozens of epochs.  Downstream
 * consumers that key caches on the quantized counts (the fleet
 * service's layout-fingerprint reuse) depend on this.
 *
 * Each key's weighted value folds in fixed window order from integer
 * per-epoch counts, never map iteration order, and the accumulation map
 * is ordered, so quantize() emits keys in sorted order — the whole
 * state is byte-deterministic for a deterministic epoch sequence
 * regardless of shard arrival order inside an epoch (the epoch counters
 * come from the order-invariant sharded aggregation above).
 */
class DecayedAggregate
{
public:
    explicit DecayedAggregate(uint32_t window = 8);

    /** Append one epoch's counters as the newest window entry.  The
     *  decay factor must be identical across every fold. */
    void fold(const AggregatedProfile &epoch, double decay);

    /**
     * Merge @p late into the window entry observed @p age epochs ago
     * (0 = the newest fold) — the landing path for profile shards that
     * arrive epochs after they were emitted: a laggy machine's samples
     * belong to the epoch it *ran*, not the epoch the wire delivered
     * them, so they join that epoch's slot and decay on its clock.
     * Returns false (and folds nothing) when the slot already slid out
     * of the window — samples that old no longer influence the mix.
     */
    bool addAt(uint32_t age, const AggregatedProfile &late);

    /**
     * Integer snapshot of the windowed state (llround per key); keys
     * whose weighted count rounds to zero are dropped.
     *
     * With @p scaleTo nonzero the snapshot is rescaled so the heaviest
     * branch key lands exactly on @p scaleTo before rounding.  The
     * common geometric factor of the window cancels *before* any
     * rounding, so at a constant epoch mix the scaled snapshot is
     * exactly stable — the normalization the fleet service relies on
     * for warm layout-fingerprint hits.
     */
    AggregatedProfile quantize(uint64_t scaleTo = 0) const;

    /** Epochs folded so far (including sample-free epochs). */
    uint64_t epochs() const { return epochs_; }

    /** Decay-weighted branch-event mass over the window (the fleet
     *  service's cross-version mixing weight). */
    double totalBranchWeight() const;

    /** True when no window epoch carries any samples (a binary version
     *  whose machines have all migrated away ages out like this). */
    bool empty() const;

private:
    std::vector<AggregatedProfile> window_; ///< Newest first.
    uint32_t windowSize_ = 8;
    double decay_ = 0.0; ///< Fixed by the first fold().
    uint64_t epochs_ = 0;
};

/**
 * PEBS-style data-cache miss profile (for the paper's section 3.5
 * software-prefetch extension): sampled miss counts per load site.
 */
struct MissProfile
{
    std::unordered_map<uint16_t, uint64_t> siteMisses;
    uint64_t totalSamples = 0;

    uint64_t
    sizeInBytes() const
    {
        return 32 + siteMisses.size() * 10ull;
    }
};

} // namespace propeller::profile

#endif // PROPELLER_PROFILE_PROFILE_H
