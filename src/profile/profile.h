#ifndef PROPELLER_PROFILE_PROFILE_H
#define PROPELLER_PROFILE_PROFILE_H

/**
 * @file
 * Hardware sample profiles.
 *
 * Substitute for perf.data with Intel Last Branch Records (paper section
 * 3.3).  The machine simulator snapshots its 32-entry LBR ring every
 * sampling period; each snapshot is the (source, destination) address pairs
 * of the most recently retired taken branches, exactly the payload Linux
 * perf delivers.  The same profile object drives both Propeller's Phase 3
 * whole-program analysis and BOLT's perf2bolt conversion, matching the
 * paper's fairness methodology (section 5).
 */

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.h"

namespace propeller::profile {

/** Source/destination address pair of one retired taken branch. */
struct BranchRecord
{
    uint64_t from = 0; ///< Address of the branch instruction.
    uint64_t to = 0;   ///< Address of the target instruction.

    bool operator==(const BranchRecord &) const = default;
};

/** Number of LBR entries per sample (Intel Skylake). */
constexpr unsigned kLbrDepth = 32;

/**
 * One LBR snapshot: up to 32 records ordered oldest first.  Early samples
 * taken before the ring fills carry fewer records.
 */
struct LbrSample
{
    std::array<BranchRecord, kLbrDepth> records{};
    uint8_t count = 0;
};

/** A full profiling session ("perf.data"). */
struct Profile
{
    uint64_t binaryHash = 0;    ///< Identity of the profiled binary.
    uint64_t totalRetired = 0;  ///< Instructions retired while profiling.
    std::vector<LbrSample> samples;

    /** Serialized size in bytes (what profile conversion must read). */
    uint64_t sizeInBytes() const;

    /**
     * Wire format: 4-byte magic, ULEB128 fields, and a trailing 8-byte
     * FNV-1a checksum over everything before it.  ULEB128 streams can
     * absorb bit flips silently; the checksum is what turns any
     * corruption into a *detected* rejection (ISSUE 4).
     */
    std::vector<uint8_t> serialize() const;

    /** Decode @p data; corruption is a typed error, never an abort. */
    static support::StatusOr<Profile>
    deserializeChecked(const std::vector<uint8_t> &data);

    /** Decode @p data, aborting on corruption (trusted-input paths). */
    static Profile deserialize(const std::vector<uint8_t> &data);
};

/** Outcome of salvaging a sharded profile (see loadShards()). */
struct ShardLoadStats
{
    uint32_t shardsTotal = 0;    ///< Shards presented.
    uint32_t shardsRejected = 0; ///< Shards dropped as corrupt.
    std::string firstError;      ///< Diagnostic for the first rejection.
};

/**
 * Split @p profile into independently-decodable shards of at most
 * @p samplesPerShard samples each (0 = one shard).  Every shard is a
 * complete Profile serialization carrying the session's binaryHash and
 * totalRetired, so losing any subset of shards loses only those samples.
 */
std::vector<std::vector<uint8_t>>
serializeShards(const Profile &profile, uint32_t samplesPerShard);

/**
 * Reassemble a profile from shards, dropping (and counting) corrupt
 * ones.  This is the "degrade, don't die" ingest path: a bit-flipped
 * shard costs its samples, not the run.
 */
Profile loadShards(const std::vector<std::vector<uint8_t>> &shards,
                   ShardLoadStats *stats = nullptr);

/**
 * Aggregated form: branch edge counts plus fall-through ranges.
 *
 * A fall-through range (to_i .. from_{i+1}) between consecutive LBR
 * records covers the straight-line instructions executed between two taken
 * branches; walking those ranges recovers fall-through edge counts without
 * disassembly (paper section 3.3).
 */
struct AggregatedProfile
{
    /** (from << 32 | to-offset) keyed taken-branch counts. */
    std::unordered_map<uint64_t, uint64_t> branches;

    /** (start << 32 | end-offset) keyed fall-through range counts. */
    std::unordered_map<uint64_t, uint64_t> ranges;

    uint64_t totalBranchEvents = 0;

    /** Pack two text addresses into one key (text is < 4 GiB). */
    static uint64_t
    key(uint64_t a, uint64_t b)
    {
        return (a << 32) | (b & 0xffffffffull);
    }

    static uint64_t keyFrom(uint64_t k) { return k >> 32; }
    static uint64_t keyTo(uint64_t k) { return k & 0xffffffffull; }

    /** Fold @p other's counters into this one (sharded aggregation). */
    void merge(const AggregatedProfile &other);
};

/** Options for sharded profile aggregation. */
struct AggregationOptions
{
    /** Worker threads (0 = hardware_concurrency()). */
    unsigned threads = 0;

    /**
     * Samples per aggregation shard.  Shard boundaries are a pure
     * function of the profile size — never of the thread count — and
     * shards merge serially in shard order, so the aggregated maps (and
     * everything downstream that consumes their iteration order) are
     * byte-identical at any thread count.
     */
    uint32_t samplesPerShard = 4096;
};

/** Aggregate raw LBR samples into edge and range counts. */
AggregatedProfile aggregate(const Profile &profile);

/** Sharded aggregation: per-shard counters merged once at the end. */
AggregatedProfile aggregate(const Profile &profile,
                            const AggregationOptions &opts);

/**
 * Staged aggregation, for schedulers that want each shard as its own
 * task: the number of shards is a pure function of the profile size
 * and `opts.samplesPerShard` (never of the thread count), each shard
 * aggregates independently into its slot, and `mergeAggregationShards`
 * folds the slots serially in shard order — byte-identical to
 * `aggregate(profile, opts)` under any execution order of the shards.
 */
size_t aggregationShardCount(const Profile &profile,
                             const AggregationOptions &opts);

/** Aggregate shard @p shard (of aggregationShardCount) into @p out. */
void aggregateShardInto(const Profile &profile,
                        const AggregationOptions &opts, size_t shard,
                        AggregatedProfile &out);

/** Serial shard-order merge of per-shard slots (slot 0 is the base). */
AggregatedProfile
mergeAggregationShards(std::vector<AggregatedProfile> &slots);

/**
 * PEBS-style data-cache miss profile (for the paper's section 3.5
 * software-prefetch extension): sampled miss counts per load site.
 */
struct MissProfile
{
    std::unordered_map<uint16_t, uint64_t> siteMisses;
    uint64_t totalSamples = 0;

    uint64_t
    sizeInBytes() const
    {
        return 32 + siteMisses.size() * 10ull;
    }
};

} // namespace propeller::profile

#endif // PROPELLER_PROFILE_PROFILE_H
