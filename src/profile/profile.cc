#include "profile/profile.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/check.h"
#include "support/hash.h"
#include "support/leb128.h"
#include "support/thread_pool.h"

namespace propeller::profile {

namespace {

using support::ErrorCode;
using support::makeError;
using support::StatusOr;

/** Leading magic of a serialized profile ("perf.data" file id). */
constexpr uint8_t kProfileMagic[4] = {'L', 'B', 'R', '1'};

/** Append @p v as 8 little-endian bytes. */
void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Read 8 little-endian bytes at @p p. */
uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

uint64_t
Profile::sizeInBytes() const
{
    // Header + per-sample payload; LBR records are 16 bytes each in the
    // perf ring buffer format.
    uint64_t bytes = 64;
    for (const auto &sample : samples)
        bytes += 8 + sample.count * 16ull;
    return bytes;
}

std::vector<uint8_t>
Profile::serialize() const
{
    std::vector<uint8_t> out;
    out.insert(out.end(), std::begin(kProfileMagic), std::end(kProfileMagic));
    encodeUleb128(binaryHash, out);
    encodeUleb128(totalRetired, out);
    encodeUleb128(samples.size(), out);
    for (const auto &sample : samples) {
        out.push_back(sample.count);
        for (unsigned i = 0; i < sample.count; ++i) {
            encodeUleb128(sample.records[i].from, out);
            encodeUleb128(sample.records[i].to, out);
        }
    }
    put64(out, fnv1a(out.data(), out.size()));
    return out;
}

StatusOr<Profile>
Profile::deserializeChecked(const std::vector<uint8_t> &data)
{
    constexpr size_t kMinSize = sizeof(kProfileMagic) + 3 + 8;
    if (data.size() < kMinSize)
        return makeError(ErrorCode::kTruncated,
                         "profile shorter than header + checksum (" +
                             std::to_string(data.size()) + " bytes)");
    if (!std::equal(std::begin(kProfileMagic), std::end(kProfileMagic),
                    data.begin()))
        return makeError(ErrorCode::kMalformed, "bad profile magic");

    size_t payload_end = data.size() - 8;
    uint64_t want = get64(data.data() + payload_end);
    uint64_t got = fnv1a(data.data(), payload_end);
    if (want != got)
        return makeError(ErrorCode::kChecksumMismatch,
                         "profile content checksum does not verify");

    Profile p;
    size_t pos = sizeof(kProfileMagic);
    auto next = [&](const char *what) -> StatusOr<uint64_t> {
        auto v = decodeUleb128(data, pos);
        if (!v || pos > payload_end)
            return makeError(ErrorCode::kTruncated,
                             std::string("truncated ") + what);
        return *v;
    };
    PROPELLER_ASSIGN_OR_RETURN(p.binaryHash, next("binary hash"));
    PROPELLER_ASSIGN_OR_RETURN(p.totalRetired, next("retired count"));
    PROPELLER_ASSIGN_OR_RETURN(uint64_t n, next("sample count"));
    // Every sample needs at least one byte, so a larger count is corrupt
    // input (guards the reserve() below against fuzzed bytes).
    if (n > payload_end - pos)
        return makeError(ErrorCode::kMalformed,
                         "sample count " + std::to_string(n) +
                             " exceeds payload size");
    p.samples.reserve(n);
    for (uint64_t s = 0; s < n; ++s) {
        LbrSample sample;
        if (pos >= payload_end)
            return makeError(ErrorCode::kTruncated,
                             "sample " + std::to_string(s) +
                                 ": missing record count");
        sample.count = data[pos++];
        if (sample.count > kLbrDepth)
            return makeError(ErrorCode::kMalformed,
                             "sample " + std::to_string(s) + ": " +
                                 std::to_string(sample.count) +
                                 " records exceeds LBR depth");
        for (unsigned i = 0; i < sample.count; ++i) {
            PROPELLER_ASSIGN_OR_RETURN(sample.records[i].from,
                                       next("branch source"));
            PROPELLER_ASSIGN_OR_RETURN(sample.records[i].to,
                                       next("branch target"));
        }
        p.samples.push_back(sample);
    }
    if (pos != payload_end)
        return makeError(ErrorCode::kMalformed,
                         "trailing bytes after last sample");
    return p;
}

Profile
Profile::deserialize(const std::vector<uint8_t> &data)
{
    auto p = deserializeChecked(data);
    PROPELLER_CHECK(p.ok(), "truncated profile");
    return std::move(p).value();
}

std::vector<std::vector<uint8_t>>
serializeShards(const Profile &profile, uint32_t samplesPerShard)
{
    size_t n = profile.samples.size();
    size_t per = samplesPerShard == 0 ? std::max<size_t>(n, 1)
                                      : samplesPerShard;
    size_t shards = std::max<size_t>((n + per - 1) / per, 1);
    std::vector<std::vector<uint8_t>> out;
    out.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
        Profile shard;
        shard.binaryHash = profile.binaryHash;
        shard.totalRetired = profile.totalRetired;
        size_t begin = s * per;
        size_t end = std::min(n, begin + per);
        shard.samples.assign(profile.samples.begin() + begin,
                             profile.samples.begin() + end);
        out.push_back(shard.serialize());
    }
    return out;
}

Profile
loadShards(const std::vector<std::vector<uint8_t>> &shards,
           ShardLoadStats *stats)
{
    Profile merged;
    bool have_header = false;
    ShardLoadStats local;
    local.shardsTotal = static_cast<uint32_t>(shards.size());
    local.shardVersions.assign(shards.size(), 0);
    for (size_t s = 0; s < shards.size(); ++s) {
        auto decoded = Profile::deserializeChecked(shards[s]);
        if (!decoded.ok()) {
            ++local.shardsRejected;
            if (local.firstError.empty())
                local.firstError = ("shard " + std::to_string(s) + ": ") +
                                   decoded.status().toString();
            continue;
        }
        local.shardVersions[s] = decoded->binaryHash;
        if (!have_header) {
            merged.binaryHash = decoded->binaryHash;
            merged.totalRetired = decoded->totalRetired;
            have_header = true;
        }
        merged.samples.insert(merged.samples.end(),
                              decoded->samples.begin(),
                              decoded->samples.end());
    }
    std::vector<uint64_t> seen;
    for (uint64_t v : local.shardVersions)
        if (v != 0 && std::find(seen.begin(), seen.end(), v) == seen.end())
            seen.push_back(v);
    local.distinctVersions = static_cast<uint32_t>(seen.size());
    if (stats)
        *stats = local;
    return merged;
}

void
AggregatedProfile::merge(const AggregatedProfile &other)
{
    for (const auto &[key, count] : other.branches)
        branches[key] += count;
    for (const auto &[key, count] : other.ranges)
        ranges[key] += count;
    totalBranchEvents += other.totalBranchEvents;
}

namespace {

/** Aggregate the sample window [begin, end) into @p agg. */
void
aggregateRange(const Profile &profile, size_t begin, size_t end,
               AggregatedProfile &agg)
{
    for (size_t s = begin; s < end; ++s) {
        const LbrSample &sample = profile.samples[s];
        for (unsigned i = 0; i < sample.count; ++i) {
            const BranchRecord &rec = sample.records[i];
            ++agg.branches[AggregatedProfile::key(rec.from, rec.to)];
            ++agg.totalBranchEvents;
            if (i + 1 < sample.count) {
                // Straight-line execution between this branch's target and
                // the next branch's source.
                const BranchRecord &next = sample.records[i + 1];
                if (next.from >= rec.to) {
                    ++agg.ranges[AggregatedProfile::key(rec.to, next.from)];
                }
            }
        }
    }
}

} // namespace

AggregatedProfile
aggregate(const Profile &profile)
{
    return aggregate(profile, AggregationOptions{});
}

size_t
aggregationShardCount(const Profile &profile,
                      const AggregationOptions &opts)
{
    size_t n = profile.samples.size();
    size_t per = std::max<uint32_t>(opts.samplesPerShard, 1);
    return std::max<size_t>((n + per - 1) / per, 1);
}

void
aggregateShardInto(const Profile &profile,
                   const AggregationOptions &opts, size_t shard,
                   AggregatedProfile &out)
{
    size_t n = profile.samples.size();
    size_t per = std::max<uint32_t>(opts.samplesPerShard, 1);
    aggregateRange(profile, shard * per,
                   std::min(n, (shard + 1) * per), out);
}

AggregatedProfile
mergeAggregationShards(std::vector<AggregatedProfile> &slots)
{
    AggregatedProfile agg =
        slots.empty() ? AggregatedProfile{} : std::move(slots[0]);
    for (size_t s = 1; s < slots.size(); ++s)
        agg.merge(slots[s]);
    return agg;
}

namespace {

/**
 * Accumulate one window epoch into an ordered weighted map.  Each key's
 * value folds in fixed window order from integer counts, so the result
 * never depends on the epochs' hash-map iteration order.
 */
void
weighMap(std::map<uint64_t, double> &acc, double weight,
         const std::unordered_map<uint64_t, uint64_t> &epoch)
{
    for (const auto &[key, count] : epoch)
        acc[key] += weight * static_cast<double>(count);
}

/** Round an ordered weighted map, dropping keys that round to zero. */
void
quantizeMap(const std::map<uint64_t, double> &acc, double scale,
            std::unordered_map<uint64_t, uint64_t> &out)
{
    for (const auto &[key, weight] : acc) {
        auto q = static_cast<uint64_t>(std::llround(weight * scale));
        if (q > 0)
            out.emplace(key, q);
    }
}

} // namespace

DecayedAggregate::DecayedAggregate(uint32_t window)
    : windowSize_(window < 1 ? 1 : window)
{
}

void
DecayedAggregate::fold(const AggregatedProfile &epoch, double decay)
{
    PROPELLER_CHECK(decay > 0.0 && decay <= 1.0,
                    "decay factor outside (0, 1]");
    PROPELLER_CHECK(decay_ == 0.0 || decay == decay_,
                    "decay factor changed between folds");
    decay_ = decay;
    window_.insert(window_.begin(), epoch);
    if (window_.size() > windowSize_)
        window_.pop_back();
    ++epochs_;
}

bool
DecayedAggregate::addAt(uint32_t age, const AggregatedProfile &late)
{
    if (age >= window_.size())
        return false;
    window_[age].merge(late);
    return true;
}

AggregatedProfile
DecayedAggregate::quantize(uint64_t scaleTo) const
{
    std::map<uint64_t, double> branches;
    std::map<uint64_t, double> ranges;
    double weight = 1.0;
    for (const AggregatedProfile &epoch : window_) {
        weighMap(branches, weight, epoch.branches);
        weighMap(ranges, weight, epoch.ranges);
        weight *= decay_;
    }

    double scale = 1.0;
    if (scaleTo > 0) {
        double max_branch = 0.0;
        for (const auto &[key, w] : branches)
            max_branch = std::max(max_branch, w);
        if (max_branch <= 0.0)
            return {};
        scale = static_cast<double>(scaleTo) / max_branch;
    }

    AggregatedProfile out;
    quantizeMap(branches, scale, out.branches);
    quantizeMap(ranges, scale, out.ranges);
    for (const auto &[key, count] : out.branches)
        out.totalBranchEvents += count;
    return out;
}

double
DecayedAggregate::totalBranchWeight() const
{
    double total = 0.0;
    double weight = 1.0;
    for (const AggregatedProfile &epoch : window_) {
        total += weight * static_cast<double>(epoch.totalBranchEvents);
        weight *= decay_;
    }
    return total;
}

bool
DecayedAggregate::empty() const
{
    for (const AggregatedProfile &epoch : window_) {
        if (epoch.totalBranchEvents > 0 || !epoch.branches.empty() ||
            !epoch.ranges.empty())
            return false;
    }
    return true;
}

AggregatedProfile
aggregate(const Profile &profile, const AggregationOptions &opts)
{
    // The shard partition depends only on the profile and the shard size:
    // per-shard maps are built by one worker each, then merged serially
    // in shard order, so the result — down to the hash maps' iteration
    // order — is independent of how many threads ran the shards.
    size_t shards = aggregationShardCount(profile, opts);
    std::vector<AggregatedProfile> slots(shards);
    if (shards <= 1) {
        aggregateShardInto(profile, opts, 0, slots[0]);
        return std::move(slots[0]);
    }
    parallelFor(opts.threads, shards, [&](size_t s) {
        aggregateShardInto(profile, opts, s, slots[s]);
    });
    return mergeAggregationShards(slots);
}

} // namespace propeller::profile
