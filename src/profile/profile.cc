#include "profile/profile.h"

#include <algorithm>
#include <cassert>

#include "support/leb128.h"
#include "support/thread_pool.h"

namespace propeller::profile {

uint64_t
Profile::sizeInBytes() const
{
    // Header + per-sample payload; LBR records are 16 bytes each in the
    // perf ring buffer format.
    uint64_t bytes = 64;
    for (const auto &sample : samples)
        bytes += 8 + sample.count * 16ull;
    return bytes;
}

std::vector<uint8_t>
Profile::serialize() const
{
    std::vector<uint8_t> out;
    encodeUleb128(binaryHash, out);
    encodeUleb128(totalRetired, out);
    encodeUleb128(samples.size(), out);
    for (const auto &sample : samples) {
        out.push_back(sample.count);
        for (unsigned i = 0; i < sample.count; ++i) {
            encodeUleb128(sample.records[i].from, out);
            encodeUleb128(sample.records[i].to, out);
        }
    }
    return out;
}

Profile
Profile::deserialize(const std::vector<uint8_t> &data)
{
    Profile p;
    size_t pos = 0;
    auto next = [&]() {
        auto v = decodeUleb128(data, pos);
        assert(v && "truncated profile");
        return *v;
    };
    p.binaryHash = next();
    p.totalRetired = next();
    uint64_t n = next();
    p.samples.reserve(n);
    for (uint64_t s = 0; s < n; ++s) {
        LbrSample sample;
        assert(pos < data.size());
        sample.count = data[pos++];
        assert(sample.count <= kLbrDepth);
        for (unsigned i = 0; i < sample.count; ++i) {
            sample.records[i].from = next();
            sample.records[i].to = next();
        }
        p.samples.push_back(sample);
    }
    assert(pos == data.size());
    return p;
}

void
AggregatedProfile::merge(const AggregatedProfile &other)
{
    for (const auto &[key, count] : other.branches)
        branches[key] += count;
    for (const auto &[key, count] : other.ranges)
        ranges[key] += count;
    totalBranchEvents += other.totalBranchEvents;
}

namespace {

/** Aggregate the sample window [begin, end) into @p agg. */
void
aggregateRange(const Profile &profile, size_t begin, size_t end,
               AggregatedProfile &agg)
{
    for (size_t s = begin; s < end; ++s) {
        const LbrSample &sample = profile.samples[s];
        for (unsigned i = 0; i < sample.count; ++i) {
            const BranchRecord &rec = sample.records[i];
            ++agg.branches[AggregatedProfile::key(rec.from, rec.to)];
            ++agg.totalBranchEvents;
            if (i + 1 < sample.count) {
                // Straight-line execution between this branch's target and
                // the next branch's source.
                const BranchRecord &next = sample.records[i + 1];
                if (next.from >= rec.to) {
                    ++agg.ranges[AggregatedProfile::key(rec.to, next.from)];
                }
            }
        }
    }
}

} // namespace

AggregatedProfile
aggregate(const Profile &profile)
{
    return aggregate(profile, AggregationOptions{});
}

AggregatedProfile
aggregate(const Profile &profile, const AggregationOptions &opts)
{
    // The shard partition depends only on the profile and the shard size:
    // per-shard maps are built by one worker each, then merged serially
    // in shard order, so the result — down to the hash maps' iteration
    // order — is independent of how many threads ran the shards.
    size_t n = profile.samples.size();
    size_t per = std::max<uint32_t>(opts.samplesPerShard, 1);
    size_t shards = (n + per - 1) / per;
    if (shards <= 1) {
        AggregatedProfile agg;
        aggregateRange(profile, 0, n, agg);
        return agg;
    }
    std::vector<AggregatedProfile> slots(shards);
    parallelFor(opts.threads, shards, [&](size_t s) {
        aggregateRange(profile, s * per, std::min(n, (s + 1) * per),
                       slots[s]);
    });
    AggregatedProfile agg = std::move(slots[0]);
    for (size_t s = 1; s < shards; ++s)
        agg.merge(slots[s]);
    return agg;
}

} // namespace propeller::profile
