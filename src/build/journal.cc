#include "build/journal.h"

#include <cstdio>

#include "support/hash.h"

namespace propeller::buildsys {

namespace {

constexpr char kMagic[4] = {'P', 'F', 'J', '1'};

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t
getU64(const std::vector<uint8_t> &in, size_t pos)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
    return v;
}

} // namespace

std::vector<uint8_t>
encodeJournal(uint64_t generation, const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> out;
    out.reserve(kJournalHeaderBytes + payload.size() +
                kJournalFooterBytes);
    out.insert(out.end(), kMagic, kMagic + 4);
    putU64(out, generation);
    putU64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    putU64(out, fnv1a(out.data(), out.size()));
    return out;
}

bool
decodeJournal(const std::vector<uint8_t> &file, uint64_t *generation,
              std::vector<uint8_t> *payload)
{
    if (file.size() < kJournalHeaderBytes + kJournalFooterBytes)
        return false;
    for (int i = 0; i < 4; ++i)
        if (file[i] != static_cast<uint8_t>(kMagic[i]))
            return false;
    uint64_t gen = getU64(file, 4);
    uint64_t size = getU64(file, 12);
    // The declared length must tile the file exactly: anything shorter
    // is a torn write, anything longer is trailing garbage.
    if (size != file.size() - kJournalHeaderBytes - kJournalFooterBytes)
        return false;
    size_t tail = file.size() - kJournalFooterBytes;
    if (fnv1a(file.data(), tail) != getU64(file, tail))
        return false;
    if (generation)
        *generation = gen;
    if (payload)
        payload->assign(file.begin() +
                            static_cast<long>(kJournalHeaderBytes),
                        file.begin() + static_cast<long>(tail));
    return true;
}

bool
atomicWriteFile(const std::string &path, const std::vector<uint8_t> &bytes,
                long crashAtByte)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    size_t toWrite = bytes.size();
    if (crashAtByte >= 0)
        toWrite = std::min(toWrite, static_cast<size_t>(crashAtByte));
    size_t written =
        toWrite == 0 ? 0 : std::fwrite(bytes.data(), 1, toWrite, f);
    bool ok = written == toWrite;
    ok = std::fclose(f) == 0 && ok;
    if (crashAtByte >= 0)
        return false; // Crashed mid-save: the torn temp file stays put.
    if (!ok)
        return false;
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool
readFile(const std::string &path, std::vector<uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    uint8_t buf[1 << 16];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    std::fclose(f);
    return true;
}

} // namespace propeller::buildsys
