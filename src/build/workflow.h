#ifndef PROPELLER_BUILD_WORKFLOW_H
#define PROPELLER_BUILD_WORKFLOW_H

/**
 * @file
 * The distributed build system and the 4-phase Propeller workflow driver
 * (paper Figure 1 / section 3):
 *
 *   Phase 1  build optimized IR, cache it (modelled);
 *   Phase 2  distributed backends with basic-block-address-map metadata,
 *            link the metadata binaries (PM with .bb_addr_map for
 *            Propeller, BM with --emit-relocs for BOLT) and the plain
 *            baseline binary — all three share one text image;
 *   Phase 3  run the metadata binary under load collecting LBR samples,
 *            then profile conversion + whole-program analysis producing
 *            cc_prof / ld_prof;
 *   Phase 4  re-run backends for *hot* modules only (cluster
 *            directives changed their action fingerprint); every cold
 *            module is a content-cache hit streamed into the relink.
 *
 * Times are modelled with a deterministic makespan cost model (work
 * divided over workers plus the critical path — the standard bound for
 * list scheduling) and memory with the modelled MemoryMeter, because
 * host wall-clock and RSS neither scale like the real system nor stay
 * deterministic.  Local parallelism, however, is real: per-module
 * backend actions fan out over worker threads (WorkloadConfig::jobs),
 * and results merge in module order so binaries are byte-identical at
 * any thread count.
 *
 * The relink chain (Phase 3 WPA -> Phase 4 codegen -> link -> Phase 5
 * verify) runs, by default, as ONE fine-grained task graph on the
 * work-stealing scheduler of src/sched: per-function Ext-TSP layouts,
 * per-module codegen, per-object link assembly and per-range
 * verification are tasks with real data dependencies, so a module's
 * backend re-runs the moment its last hot function's layout lands and
 * verification overlaps the tail of linking — no phase barriers.
 * Order-sensitive side effects (cache population, retry accounting,
 * failure attribution) commit through an OrderedSink in module order,
 * so artifacts, reports and cache statistics are byte-identical to the
 * barrier engine (kept behind WorkloadConfig::barrierScheduler for
 * ablation) at any thread count.  relinkSchedule() exposes the modelled
 * schedule: critical path, makespan, parallel efficiency, steals.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "bolt/bolt.h"
#include "build/cache.h"
#include "codegen/codegen.h"
#include "elf/object.h"
#include "ir/ir.h"
#include "linker/executable.h"
#include "linker/linker.h"
#include "profile/profile.h"
#include "propeller/prefetch.h"
#include "propeller/propeller.h"
#include "sched/sched.h"
#include "workload/workload.h"

namespace propeller::buildsys {

/**
 * Per-action resource limits of the build system (the paper's production
 * constraint: every action must fit the ~12 GB RAM of a standard worker;
 * scaled ~1/100 like the workloads).
 */
struct BuildLimits
{
    /** RAM ceiling per build action (link, WPA, codegen). */
    uint64_t ramPerAction = 120ull << 20;

    /** Concurrent workers executing actions. */
    uint32_t workers = 8;

    /**
     * Transient-failure retries per action beyond the first attempt.
     * Remote executors flake; a bounded retry with deterministic
     * exponential backoff absorbs that without hanging the build.
     */
    uint32_t maxActionRetries = 2;

    /** Backoff before retry k is retryBackoffSec * 2^(k-1) seconds. */
    double retryBackoffSec = 1.0;

    /**
     * Samples per serialized profile shard on the collection wire path
     * (taken only when fault hooks are attached; see Workflow::profile).
     */
    uint32_t profileShardSamples = 128;
};

/**
 * Deterministic makespan model for a batch of build actions.
 *
 * makespan = sum(cost_i + overhead) / workers + max(cost_i + overhead):
 * the classic list-scheduling bound combining the parallel work term
 * with the critical path.  Per-action costs are derived from modelled
 * quantities (instructions compiled, bytes fetched/linked), calibrated
 * so phase *ratios* match the paper's Table 5 / Figure 9 shape.
 */
struct CostModel
{
    /** Scheduling + sandbox setup overhead per action, seconds. */
    double actionOverheadSec = 0.5;

    // ---- Calibration constants (modelled seconds) -------------------
    double irGenSecPerInst = 2e-4;      ///< Phase 1 per IR instruction.
    double backendSecPerInst = 6e-4;    ///< Codegen per IR instruction.
    double instrumentFactor = 1.45;     ///< Instrumented-build slowdown.
    double linkSecPerByte = 8e-6;       ///< Link work per input byte.
    double fetchFreshSecPerByte = 25e-6; ///< Stream a just-built object.
    double fetchCachedSecPerByte = 3e-6; ///< Stream a cache-hit object.
    double wpaSecPerProfileByte = 2e-5; ///< Profile conversion rate.
    double wpaSecPerHotFunction = 0.02; ///< Layout per hot function.
    double boltSecPerInst = 2e-5;       ///< BOLT disassembly+rewrite.
    double verifySecPerByte = 4e-6;     ///< Phase 5 disassembly+checks.

    /** Makespan of @p costs (seconds each) on @p workers workers. */
    double makespan(const std::vector<double> &costs,
                    uint32_t workers) const;
};

/** Modelled outcome of one build phase. */
struct PhaseReport
{
    std::string phase;

    double makespanSec = 0.0;
    uint32_t actions = 0;    ///< Actions actually executed.
    uint32_t cacheHits = 0;  ///< Actions served from the artifact cache.

    /** Peak modelled memory of the largest single action. */
    uint64_t peakActionMemory = 0;

    /** The largest action exceeded BuildLimits::ramPerAction. */
    bool memoryLimitExceeded = false;

    /** Failed action attempts that were retried (transient failures). */
    uint32_t retries = 0;

    /** Cache entries found corrupt while serving this phase. */
    uint32_t cacheCorruptions = 0;

    /**
     * Inputs this phase degraded instead of dying on: functions dropped
     * to baseline layout, profile shards rejected, addr-map metadata
     * discarded.
     */
    uint32_t quarantined = 0;

    /** Human-readable failure summary, one line per degraded item. */
    std::vector<std::string> failures;

    double makespanMinutes() const { return makespanSec / 60.0; }
};

/**
 * Fault-injection seams of the Workflow (src/faultinject drives these;
 * tests may subclass directly).  Every hook is a no-op by default, and a
 * Workflow without hooks attached takes none of the code paths below —
 * the zero-fault pipeline stays byte-identical.
 *
 * Hooks run on the coordinating thread at deterministic points, so a
 * seeded harness produces the same faults at any thread count.
 */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /** After a compile batch stores its outputs into the cache. */
    virtual void onCachePopulated(ArtifactCache &) {}

    /**
     * On the serialized profile shards between collection and reload
     * (the wire/disk window where profile bytes can rot).
     */
    virtual void onProfileShards(std::vector<std::vector<uint8_t>> &) {}

    /** On the Phase 2 objects before any of them are linked. */
    virtual void onPhase2Objects(std::vector<elf::ObjectFile> &) {}

    /**
     * Return true to fail attempt @p attempt (1-based) of the codegen
     * action for @p module_name — a modelled transient executor fault.
     */
    virtual bool
    failAction(const std::string &module_name, uint32_t attempt)
    {
        (void)module_name;
        (void)attempt;
        return false;
    }
};

/**
 * The 4-phase Propeller workflow over one workload.
 *
 * All products are lazy and memoized; any entry point (baseline(),
 * propellerBinary(), wpa(), ...) pulls exactly the phases it needs, in
 * order, and records their PhaseReports.  Everything is deterministic in
 * the workload config — two Workflow instances over the same config
 * produce byte-identical binaries, at any thread count.
 */
class Workflow
{
  public:
    explicit Workflow(workload::WorkloadConfig config);

    const workload::WorkloadConfig &config() const { return config_; }
    const BuildLimits &limits() const { return limits_; }
    const CostModel &costModel() const { return cost_; }

    /**
     * Override the build-system limits (worker count, RAM ceiling).
     * Must be called before the first product is pulled: limits feed
     * every phase's cost model and the scheduler's virtual workers.
     */
    void setBuildLimits(const BuildLimits &limits) { limits_ = limits; }

    /** The relink chain runs on the task-graph scheduler (default). */
    bool usesTaskGraph() const { return !config_.barrierScheduler; }

    /** The program IR (Phase 1 product; generated on first use). */
    const ir::Program &program();

    /** Baseline binary: Phase 2 objects linked without metadata. */
    const linker::Executable &baseline();

    /** PM: the Propeller metadata binary (.bb_addr_map kept). */
    const linker::Executable &metadataBinary();

    /** BM: the BOLT metadata binary (--emit-relocs). */
    const linker::Executable &boltInputBinary();

    /** Phase 3 LBR profile, collected running PM under load. */
    const profile::Profile &profile();

    /** Phase 3 whole-program analysis products (cc_prof / ld_prof). */
    const core::WpaResult &wpa();

    /** PO: the Propeller-optimized binary (Phase 4 relink). */
    const linker::Executable &propellerBinary();

    /**
     * Phase 5 (optional): statically verify the shipped Propeller
     * binary.  PO links with stripped addr maps, so the verifier runs
     * over a metadata-keeping twin relinked from the exact Phase 4
     * objects — text is checked byte-identical to PO, making every
     * machine-code finding a finding about the shipped bits.  Also
     * lints the applied Phase 3 artifacts (cc_prof / ld_prof, profile
     * flow) and records a "phase5.verify" PhaseReport with one failure
     * line per diagnostic, attributed to the offending function.
     */
    const analysis::VerifyReport &verifyReport();

    /** The metadata-keeping verification twin of propellerBinary(). */
    const linker::Executable &verifiedBinary();

    /**
     * A Propeller binary under non-default layout options (ablations:
     * splitting off, inter-procedural, ...).  Runs a fresh WPA and a
     * Phase-4-style cached rebuild without disturbing the canonical
     * pipeline's memoized products or reports.
     * @param wpa_out optional: receives the ablation's WPA result.
     */
    linker::Executable propellerBinaryWith(const core::LayoutOptions &opts,
                                           core::WpaResult *wpa_out =
                                               nullptr);

    /**
     * The section 3.5 extension: profile PO's data-cache misses, compute
     * prefetch directives, and re-run backends for the affected modules
     * only (report "prefetch.codegen"; unaffected modules stay cache
     * hits).
     * @param directives_out optional: receives the prefetch directives.
     */
    linker::Executable propellerBinaryWithPrefetch(
        core::PrefetchMap *directives_out = nullptr);

    /**
     * Second Propeller round (section 4.6 closing note): re-profile the
     * optimized binary and relink once more.
     */
    linker::Executable iterativePropellerBinary();

    /** BO: the BOLT-rewritten binary (reports "bolt.convert"/"bolt.opt"). */
    linker::Executable boltBinary(const bolt::BoltOptions &opts = {},
                                  bolt::BoltStats *stats = nullptr);

    /**
     * Run the static verifier over the BOLT-path output, so both
     * backends share one oracle: the same disassemble-and-cross-check
     * pass that guards the Propeller relink inspects the rewritten
     * binary (symbols, machine CFG, eh_frame coverage, startup
     * integrity hashes).  BOLT strips .bb_addr_map, so the
     * metadata-dependent checks skip; what remains are machine-level
     * findings about the shipped bits.  Records a "bolt.verify"
     * PhaseReport with one failure line per diagnostic.
     */
    analysis::VerifyReport verifyBoltBinary(const bolt::BoltOptions &opts =
                                                {},
                                            bolt::BoltStats *stats =
                                                nullptr);

    /**
     * The modelled schedule of the most recent task-graph relink run:
     * per-task spans, makespan vs the critical-path/work lower bound,
     * parallel efficiency, real steal counters.  Deterministic in the
     * workload config (virtual-time simulation on limits().workers
     * model workers); only valid after a product pulled the graph.
     */
    const sched::ScheduleReport &relinkSchedule() const;
    bool hasRelinkSchedule() const { return schedule_.has_value(); }

    /**
     * Modelled cost of one instrumented-PGO build of this program (the
     * Table 5 comparison: instrumentation slows every backend action and
     * the binary it produces runs the full load test).
     */
    PhaseReport instrumentedBuildReport();

    bool hasReport(const std::string &phase) const;
    const PhaseReport &report(const std::string &phase) const;

    /**
     * Attach fault-injection hooks (not owned; may be nullptr to
     * detach).  Must be set before the first product is pulled — hooks
     * attached mid-pipeline only affect phases not yet memoized.
     */
    void setFaultHooks(FaultHooks *hooks) { hooks_ = hooks; }

    /**
     * Integrity sweep over every cached artifact (the end-of-build
     * verification pass): evicts corrupt entries, counting them in
     * cacheStats().corruptions.
     * @return entries evicted.
     */
    uint64_t scrubCache() { return cache_.scrub(); }

    /** Names of the Phase 4 cache-hit objects (e.g. "mod_003.o"). */
    const std::vector<std::string> &coldObjects();

    const CacheStats &cacheStats() const { return cache_.stats(); }

    /** Layout-memoization tier accounting (hit rate = the fraction of
     *  per-function layouts served without re-running Ext-TSP). */
    const CacheStats &layoutCacheStats() const
    {
        return cache_.layoutStats();
    }

    /**
     * Seed the artifact cache (both tiers) from a journaled image on
     * disk — the cross-process warm-rerun path.  Returns false if the
     * file is absent, torn (a crash mid-save), fails the journal or
     * whole-image checksum, or decodes structurally damaged; the cache
     * is left empty in every failure case and the run proceeds cold.
     * Must be called before the first product is pulled.
     * @p generation receives the image's generation stamp when non-null.
     */
    bool loadCacheFile(const std::string &path,
                       uint64_t *generation = nullptr);

    /**
     * Persist the artifact cache image to @p path (for a later
     * loadCacheFile): the image is wrapped in a generation-stamped,
     * checksummed journal container and written atomically (full temp
     * file + rename), so a crash mid-save leaves the previous image
     * intact and never a torn one.  Returns false on I/O failure.
     * @p crashAtByte is the crash-point test seam (see
     * buildsys::atomicWriteFile).
     */
    bool saveCacheFile(const std::string &path, uint64_t generation = 0,
                       long crashAtByte = -1) const;

    /**
     * Replace the Phase 3 profile with @p prof (drift-injection seam
     * for incremental-relink experiments).  Must be called before the
     * profile is first pulled; later calls are rejected.
     */
    void overrideProfile(profile::Profile prof);

    /**
     * Supply the Phase 1 program instead of generating it from the
     * workload config — the fleet service's seam for relinking a
     * specific (drifted) binary version.  Must be called before the
     * program is first pulled.
     */
    void overrideProgram(ir::Program prog);

    /**
     * Replace the WPA DCFG: the relink's layout runs over @p dcfg
     * instead of the DCFG mapped from the profile (see
     * core::WpaPipeline::overrideDcfg).  The fleet service injects its
     * rolling multi-version aggregate here — already expressed in the
     * target's block-id space — paired with overrideProfile() carrying
     * only the identity stamp.  Must be called before the WPA runs.
     */
    void overrideDcfg(core::WholeProgramDcfg dcfg);

    /**
     * Functions eligible for *primed* layout-cache lookups: on an exact
     * memo-key miss for a function named here, the relink additionally
     * probes the layout tier by input digest (ArtifactCache::
     * lookupLayoutPrimed) before recomputing Ext-TSP.  The fleet
     * service fills this with the stale matcher's drifted-but-matched
     * function-hash map; primed hits land in layoutCacheStats().
     */
    void setLayoutPrimeFunctions(std::set<std::string> functions);

  private:
    /** One per-module compile batch over the content cache. */
    struct CompileBatch
    {
        std::vector<elf::ObjectFile> objects; ///< In module order.
        std::vector<std::string> cachedNames; ///< Cache-hit object names.
        uint32_t actions = 0;
        uint32_t cacheHits = 0;
        double makespanSec = 0.0;
        uint64_t peakActionMemory = 0;
        uint32_t retries = 0;          ///< Failed attempts retried.
        uint32_t cacheCorruptions = 0; ///< Corrupt hits evicted + rebuilt.
        uint32_t quarantined = 0;      ///< Cluster directives dropped.
        std::vector<std::string> failures; ///< Failure summary lines.
    };

    /** Fingerprint of one codegen action (module + directives). */
    uint64_t actionKey(size_t module_index,
                       const codegen::ClusterMap *clusters,
                       const core::PrefetchMap *prefetches,
                       bool emit_addr_map) const;

    /**
     * Compile every module, serving unchanged actions from the cache.
     * Misses compile in parallel (jobs threads) and are stored back.
     */
    CompileBatch compileModules(const codegen::ClusterMap *clusters,
                                const core::PrefetchMap *prefetches);

    /** Record a codegen-batch report under @p phase. */
    void recordCodegenReport(const std::string &phase,
                             const CompileBatch &batch);

    /** The link-phase report (same formula for both engines). */
    PhaseReport makeLinkReport(
        const std::string &phase,
        const std::vector<elf::ObjectFile> &objects,
        const linker::LinkStats &stats,
        const std::vector<std::string> &cached_names) const;

    /** Record "phase3.wpa" from the memoized WPA stats. */
    void recordWpaReport();

    /** Record "phase5.verify" from a merged verification report. */
    void recordVerifyReport(const analysis::VerifyReport &rep);

    /** Link with cost accounting; records a report under @p phase. */
    linker::Executable linkWithReport(
        const std::vector<elf::ObjectFile> &objects,
        const linker::Options &opts, const std::string &phase,
        const std::vector<std::string> &cached_names);

    const std::vector<elf::ObjectFile> &phase2Objects();
    void ensurePhase4();
    void ensureVerify();

    /** How deep into the relink chain a task-graph run must reach. */
    enum class RelinkStage { Wpa, Link, Verify };

    /**
     * Build and run one task graph covering every unmemoized relink
     * stage up to @p target (WPA layout fan-out, per-module codegen,
     * link assembly, per-range verification), then record the classic
     * PhaseReports — with the same barrier formulas, so reports are
     * mode-identical — plus "relink.graph" and the ScheduleReport.
     */
    void runRelinkGraph(RelinkStage target);
    core::LayoutOptions defaultLayoutOptions() const;
    linker::Options linkOptions();
    uint64_t moduleHash(size_t module_index) const;

    workload::WorkloadConfig config_;
    BuildLimits limits_;
    CostModel cost_;
    FaultHooks *hooks_ = nullptr;
    mutable ArtifactCache cache_;
    std::map<std::string, PhaseReport> reports_;

    std::optional<ir::Program> program_;
    mutable std::vector<uint64_t> moduleHashes_;
    std::optional<std::vector<elf::ObjectFile>> phase2Objects_;
    std::optional<linker::Executable> baseline_;
    std::optional<linker::Executable> metadataBinary_;
    std::optional<linker::Executable> boltInputBinary_;
    std::optional<profile::Profile> profile_;
    std::optional<core::WpaResult> wpa_;
    std::optional<linker::Executable> propellerBinary_;
    std::optional<std::vector<elf::ObjectFile>> phase4Objects_;
    std::optional<analysis::VerifyReport> verify_;
    std::optional<linker::Executable> verifyTwin_;
    std::optional<linker::Executable> iterative_;
    std::vector<std::string> coldObjects_;
    std::optional<sched::ScheduleReport> schedule_;
    std::optional<core::WholeProgramDcfg> dcfgOverride_;
    std::set<std::string> primeFns_;
};

} // namespace propeller::buildsys

#endif // PROPELLER_BUILD_WORKFLOW_H
