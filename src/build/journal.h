#ifndef PROPELLER_BUILD_JOURNAL_H
#define PROPELLER_BUILD_JOURNAL_H

/**
 * @file
 * Crash-safe persistence for cache images (and any other byte payload
 * the build system wants to survive a mid-write crash).
 *
 * The continuous-relink loop persists the ArtifactCache across relinks
 * and service restarts; a crash during that save must never leave an
 * image a later cold start trips over.  Two mechanisms compose:
 *
 *  1. A *journal container* wrapping the payload: fixed magic, a
 *     generation stamp (which relink generation wrote this image), the
 *     payload length, and a trailing FNV-1a checksum over everything
 *     before it.  Any torn or bit-damaged file — truncated inside the
 *     header, the payload or the footer, or mutated anywhere — fails
 *     decodeJournal() and reads as "no image": the caller cold-starts
 *     instead of aborting or half-loading.
 *
 *  2. An *atomic write*: the image is written to `<path>.tmp` in full
 *     and rename(2)d over the destination, so the destination always
 *     holds either the previous complete image or the new complete
 *     image, never a prefix of the new one.  A crash between write and
 *     rename leaves only a stale `.tmp` the next save overwrites.
 *
 * atomicWriteFile() exposes a crash seam (`crashAtByte`) so the
 * crash-point sweep tests can kill the save at every byte boundary
 * class and prove both properties without process-level fault tools.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace propeller::buildsys {

/** Journal container framing overhead: magic + generation + length
 *  header, plus the trailing checksum footer. */
constexpr size_t kJournalHeaderBytes = 4 + 8 + 8;
constexpr size_t kJournalFooterBytes = 8;

/** Wrap @p payload in a journal container stamped @p generation. */
std::vector<uint8_t> encodeJournal(uint64_t generation,
                                   const std::vector<uint8_t> &payload);

/**
 * Decode a journal container.  Returns false — without touching the
 * outputs — on any structural damage: short file, wrong magic, length
 * mismatch (a torn write), or footer checksum mismatch (bit damage).
 * @p generation and @p payload may be nullptr when not wanted.
 */
bool decodeJournal(const std::vector<uint8_t> &file, uint64_t *generation,
                   std::vector<uint8_t> *payload);

/**
 * Write @p bytes to @p path atomically: the full image goes to
 * `<path>.tmp` first and is renamed over @p path only once complete, so
 * a reader never observes a prefix.  Returns false on any I/O failure
 * (the destination is untouched in that case).
 *
 * @p crashAtByte is the crash-point seam: when >= 0 the write "crashes"
 * after that many bytes reached the temp file — the function returns
 * false, the destination is untouched, and the torn temp file is left
 * behind exactly as a killed process would leave it.
 */
bool atomicWriteFile(const std::string &path,
                     const std::vector<uint8_t> &bytes,
                     long crashAtByte = -1);

/** Read @p path fully; returns false if it cannot be opened. */
bool readFile(const std::string &path, std::vector<uint8_t> &out);

} // namespace propeller::buildsys

#endif // PROPELLER_BUILD_JOURNAL_H
