#ifndef PROPELLER_BUILD_CACHE_H
#define PROPELLER_BUILD_CACHE_H

/**
 * @file
 * The content-addressed artifact cache of the distributed build system.
 *
 * Substitute for the remote action cache the paper's Phase 4 leans on
 * (section 3.4): code generation actions are pure functions of their
 * inputs, so an action whose input fingerprint is unchanged — a *cold*
 * module whose cluster directives are empty — is never re-executed; its
 * serialized object file streams straight out of the cache into the
 * relink.  This is what makes relinking a whole warehouse-scale binary
 * cheaper than a full build: only the hot modules (10-33% of objects)
 * pay for backends again.
 *
 * Keys are 64-bit content fingerprints (FNV-1a over the module IR plus
 * the layout/prefetch directives that affect it — see
 * Workflow's action fingerprinting).  Values are serialized
 * elf::ObjectFile byte images.
 *
 * Integrity: every entry stores a content hash of its bytes, computed at
 * put() time.  lookup() re-hashes the stored bytes and treats a mismatch
 * as storage corruption: the entry is evicted, CacheStats::corruptions
 * is bumped, and the lookup reports a miss so the caller re-executes the
 * action.  A cache must never serve bytes it cannot vouch for — a stale
 * or bit-flipped artifact silently linked into the binary is the worst
 * failure mode a relinking optimizer can have.
 *
 * Thread safety: all operations serialize on an internal mutex, which
 * models the real system (the action cache is a remote service with its
 * own serialization point).  The task-graph relink engine performs
 * lookups and insertions from concurrent codegen tasks; accounting
 * stays deterministic because every task addresses a distinct key, so
 * hit/miss/corruption totals are order-independent sums.  Returned byte
 * pointers stay valid under concurrent inserts of *other* keys
 * (unordered_map never moves values), and no two tasks touch the same
 * key concurrently.
 */

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/hash.h"

namespace propeller::buildsys {

/** Hit/miss accounting for one cache instance. */
struct CacheStats
{
    uint64_t hits = 0;     ///< lookup() calls that found a valid entry.
    uint64_t misses = 0;   ///< lookup() calls that found nothing usable.
    uint64_t entries = 0;  ///< Artifacts currently stored.
    uint64_t storedBytes = 0; ///< Total serialized bytes stored.

    /**
     * Entries whose stored bytes no longer matched their content hash
     * (detected at lookup() or scrub() time) and were evicted.
     */
    uint64_t corruptions = 0;

    /**
     * Layout tier only: lookups served through the input-digest alias
     * index after the primary (exact memo key) lookup missed — a
     * stale-matcher-primed reuse of a layout computed against an older
     * binary version (see ArtifactCache::lookupLayoutPrimed).  A primed
     * hit does not count toward hits/misses: the primary lookup already
     * recorded its miss, and hitRate() keeps meaning "exact memo key
     * hit rate".
     */
    uint64_t primedHits = 0;

    /** Fraction of lookups that hit; 0 when nothing was looked up. */
    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Content-keyed object artifact cache with integrity verification. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Look up an artifact by content key, verifying its integrity hash.
     * A verified entry counts a hit.  An entry whose bytes fail
     * verification is evicted, counts a corruption *and* a miss, and the
     * lookup returns nullptr so the caller rebuilds the action.
     *
     * @return the stored bytes, or nullptr if absent or corrupt.  The
     *         pointer stays valid until the entry is overwritten.
     */
    const std::vector<uint8_t> *
    lookup(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierLookup(entries_, stats_, key);
    }

    /** Store (or replace) an artifact under @p key. */
    void
    put(uint64_t key, std::vector<uint8_t> bytes)
    {
        std::lock_guard<std::mutex> lock(mu_);
        tierPut(entries_, stats_, key, std::move(bytes));
    }

    /**
     * Layout memoization tier: per-function Ext-TSP results keyed on
     * (CFG hash, profile-count digest, layout-options fingerprint) —
     * see WpaPipeline::layoutFingerprint.  Kept separate from the
     * object tier so hit-rate accounting (the incremental-relink
     * headline metric) and fault-injection key enumeration stay
     * per-tier; integrity rules are identical, and scrub() sweeps both.
     */
    const std::vector<uint8_t> *
    lookupLayout(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierLookup(layoutEntries_, layoutStats_, key);
    }

    /**
     * Store (or replace) a layout artifact under @p key.  A nonzero
     * @p digest (the function's layoutInputDigest, see layout.h)
     * additionally registers the entry in the digest alias index so
     * lookupLayoutPrimed() can find it after the function's exact memo
     * key changed; the newest entry for a digest wins.
     */
    void
    putLayout(uint64_t key, std::vector<uint8_t> bytes,
              uint64_t digest = 0)
    {
        std::lock_guard<std::mutex> lock(mu_);
        tierPut(layoutEntries_, layoutStats_, key, std::move(bytes),
                digest);
        if (digest != 0)
            layoutAlias_[digest] = key;
    }

    /**
     * Primed lookup for the layout tier: find an entry whose *input
     * digest* matches — the exact memo key may belong to a different
     * (older) binary version, but equal digests mean the layout pass
     * would read identical inputs, so the cached result is reusable
     * verbatim.  Counts CacheStats::primedHits on success and never
     * touches hits/misses (callers only try this after the primary
     * lookup already counted its miss).
     *
     * @return the stored bytes, or nullptr if no (valid) entry carries
     *         @p digest.  Corrupt entries are evicted and counted as
     *         with lookupLayout().
     */
    const std::vector<uint8_t> *
    lookupLayoutPrimed(uint64_t digest)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto alias = layoutAlias_.find(digest);
        if (alias == layoutAlias_.end())
            return nullptr;
        auto it = layoutEntries_.find(alias->second);
        if (it == layoutEntries_.end()) {
            // Dangling alias: the entry was evicted since registration.
            layoutAlias_.erase(alias);
            return nullptr;
        }
        if (fnv1a(it->second.bytes.data(), it->second.bytes.size()) !=
            it->second.hash) {
            eraseEntry(layoutEntries_, layoutStats_, it);
            ++layoutStats_.corruptions;
            return nullptr;
        }
        ++layoutStats_.primedHits;
        return &it->second.bytes;
    }

    /** evictCorrupt for the layout tier (decode-level damage). */
    void
    evictCorruptLayout(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = layoutEntries_.find(key);
        if (it == layoutEntries_.end())
            return;
        eraseEntry(layoutEntries_, layoutStats_, it);
        ++layoutStats_.corruptions;
    }

    /**
     * Evict @p key as corrupt, counting a corruption.  Used by callers
     * whose *structural* validation (e.g. object deserialization) caught
     * damage the byte hash could not — an artifact poisoned before it
     * was stored hashes consistently but still must not be served again.
     */
    void
    evictCorrupt(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            return;
        eraseEntry(entries_, stats_, it);
        ++stats_.corruptions;
    }

    /**
     * Verify every stored entry in both tiers, evicting (and counting)
     * corrupt ones.  Does not touch hit/miss statistics.
     * @return the number of entries evicted.
     */
    uint64_t
    scrub()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierScrub(entries_, stats_) +
               tierScrub(layoutEntries_, layoutStats_);
    }

    /**
     * Mutate the *stored* bytes of @p key in place without updating the
     * integrity hash — the fault-injection seam modelling silent storage
     * corruption (the hash describes what was stored; the bytes no
     * longer match it).  With @p rehash the hash is recomputed after the
     * mutation, modelling an artifact poisoned *before* it reached the
     * store: hash verification then passes and only structural
     * validation of the artifact can catch it.
     *
     * @return false if @p key is absent.
     */
    template <typename Mutator>
    bool
    corruptStored(uint64_t key, Mutator &&mutate, bool rehash = false)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierCorrupt(entries_, stats_, key,
                           std::forward<Mutator>(mutate), rehash);
    }

    /** corruptStored for the layout tier (scrub-path integrity tests). */
    template <typename Mutator>
    bool
    corruptStoredLayout(uint64_t key, Mutator &&mutate,
                        bool rehash = false)
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierCorrupt(layoutEntries_, layoutStats_, key,
                           std::forward<Mutator>(mutate), rehash);
    }

    /** Presence test; does not count toward hit/miss statistics. */
    bool
    contains(uint64_t key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.count(key) != 0;
    }

    /**
     * All stored object-tier keys, sorted (deterministic iteration for
     * faults; the fault injector's cached-object corruption class
     * targets exactly this tier).
     */
    std::vector<uint64_t>
    keys() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierKeys(entries_);
    }

    /** All stored layout-tier keys, sorted. */
    std::vector<uint64_t>
    layoutKeys() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tierKeys(layoutEntries_);
    }

    const CacheStats &stats() const { return stats_; }
    const CacheStats &layoutStats() const { return layoutStats_; }

    /** Zero the layout tier's hit/miss/primed counters (per-run
     *  accounting over a long-lived cache). */
    void
    resetLayoutCounters()
    {
        std::lock_guard<std::mutex> lock(mu_);
        layoutStats_.hits = 0;
        layoutStats_.misses = 0;
        layoutStats_.primedHits = 0;
    }

    /**
     * Byte image of both tiers for cross-process warm reruns: magic
     * "PAC2", per-tier entry counts, entries in sorted key order (each
     * carrying its digest alias key, so the primed index survives the
     * round trip), and a trailing FNV-1a checksum over everything
     * before it, so a damaged file is rejected as a whole rather than
     * silently half-loaded (individual entries additionally carry their
     * own content hashes, which lookup/scrub keep verifying after
     * load).  Pre-digest "PAC1" images are rejected — a cold rebuild,
     * not a correctness hazard.
     */
    std::vector<uint8_t>
    serialize() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<uint8_t> out;
        out.push_back('P');
        out.push_back('A');
        out.push_back('C');
        out.push_back('2');
        putU64(out, entries_.size());
        putU64(out, layoutEntries_.size());
        tierSerialize(entries_, out);
        tierSerialize(layoutEntries_, out);
        putU64(out, fnv1a(out.data(), out.size()));
        return out;
    }

    /**
     * Replace this cache's contents with a serialized image.  Returns
     * false (leaving the cache empty) on any structural damage or
     * checksum mismatch.  Statistics count the loaded entries but keep
     * zero hit/miss history.
     */
    bool
    deserialize(const std::vector<uint8_t> &data)
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.clear();
        layoutEntries_.clear();
        layoutAlias_.clear();
        stats_ = CacheStats{};
        layoutStats_ = CacheStats{};
        if (data.size() < 4 + 8 * 3 || data[0] != 'P' ||
            data[1] != 'A' || data[2] != 'C' || data[3] != '2')
            return false;
        uint64_t checksum = 0;
        size_t tail = data.size() - 8;
        for (int i = 0; i < 8; ++i)
            checksum |= static_cast<uint64_t>(data[tail + i]) << (8 * i);
        if (fnv1a(data.data(), tail) != checksum)
            return false;
        size_t pos = 4;
        uint64_t nObjects = 0;
        uint64_t nLayouts = 0;
        if (!getU64(data, tail, pos, nObjects) ||
            !getU64(data, tail, pos, nLayouts))
            return false;
        if (!tierDeserialize(data, tail, pos, nObjects, entries_,
                             stats_) ||
            !tierDeserialize(data, tail, pos, nLayouts, layoutEntries_,
                             layoutStats_) ||
            pos != tail) {
            entries_.clear();
            layoutEntries_.clear();
            stats_ = CacheStats{};
            layoutStats_ = CacheStats{};
            return false;
        }
        for (const auto &[key, entry] : layoutEntries_)
            if (entry.digest != 0)
                layoutAlias_[entry.digest] = key;
        return true;
    }

  private:
    struct Entry
    {
        std::vector<uint8_t> bytes;
        uint64_t hash = 0;   ///< fnv1a(bytes) at store time.
        uint64_t digest = 0; ///< Layout-input digest alias key (0 = none).
    };
    using EntryMap = std::unordered_map<uint64_t, Entry>;

    static const std::vector<uint8_t> *
    tierLookup(EntryMap &map, CacheStats &stats, uint64_t key)
    {
        auto it = map.find(key);
        if (it == map.end()) {
            ++stats.misses;
            return nullptr;
        }
        if (fnv1a(it->second.bytes.data(), it->second.bytes.size()) !=
            it->second.hash) {
            eraseEntry(map, stats, it);
            ++stats.corruptions;
            ++stats.misses;
            return nullptr;
        }
        ++stats.hits;
        return &it->second.bytes;
    }

    static void
    tierPut(EntryMap &map, CacheStats &stats, uint64_t key,
            std::vector<uint8_t> bytes, uint64_t digest = 0)
    {
        uint64_t hash = fnv1a(bytes.data(), bytes.size());
        auto it = map.find(key);
        if (it != map.end()) {
            stats.storedBytes -= it->second.bytes.size();
            stats.storedBytes += bytes.size();
            it->second.bytes = std::move(bytes);
            it->second.hash = hash;
            it->second.digest = digest;
            return;
        }
        stats.storedBytes += bytes.size();
        ++stats.entries;
        map.emplace(key, Entry{std::move(bytes), hash, digest});
    }

    static uint64_t
    tierScrub(EntryMap &map, CacheStats &stats)
    {
        uint64_t evicted = 0;
        for (auto it = map.begin(); it != map.end();) {
            if (fnv1a(it->second.bytes.data(),
                      it->second.bytes.size()) != it->second.hash) {
                it = eraseEntry(map, stats, it);
                ++stats.corruptions;
                ++evicted;
            } else {
                ++it;
            }
        }
        return evicted;
    }

    template <typename Mutator>
    static bool
    tierCorrupt(EntryMap &map, CacheStats &stats, uint64_t key,
                Mutator &&mutate, bool rehash)
    {
        auto it = map.find(key);
        if (it == map.end())
            return false;
        uint64_t before = it->second.bytes.size();
        mutate(it->second.bytes);
        stats.storedBytes += it->second.bytes.size();
        stats.storedBytes -= before;
        if (rehash)
            it->second.hash =
                fnv1a(it->second.bytes.data(), it->second.bytes.size());
        return true;
    }

    static std::vector<uint64_t>
    tierKeys(const EntryMap &map)
    {
        std::vector<uint64_t> out;
        out.reserve(map.size());
        for (const auto &[key, entry] : map)
            out.push_back(key);
        std::sort(out.begin(), out.end());
        return out;
    }

    static void
    putU64(std::vector<uint8_t> &out, uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    static bool
    getU64(const std::vector<uint8_t> &in, size_t limit, size_t &pos,
           uint64_t &v)
    {
        if (pos + 8 > limit)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
        pos += 8;
        return true;
    }

    static void
    tierSerialize(const EntryMap &map, std::vector<uint8_t> &out)
    {
        for (uint64_t key : tierKeys(map)) {
            const Entry &entry = map.at(key);
            putU64(out, key);
            putU64(out, entry.digest);
            putU64(out, entry.hash);
            putU64(out, entry.bytes.size());
            out.insert(out.end(), entry.bytes.begin(),
                       entry.bytes.end());
        }
    }

    static bool
    tierDeserialize(const std::vector<uint8_t> &data, size_t limit,
                    size_t &pos, uint64_t count, EntryMap &map,
                    CacheStats &stats)
    {
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t key = 0;
            uint64_t digest = 0;
            uint64_t hash = 0;
            uint64_t size = 0;
            if (!getU64(data, limit, pos, key) ||
                !getU64(data, limit, pos, digest) ||
                !getU64(data, limit, pos, hash) ||
                !getU64(data, limit, pos, size) ||
                size > limit - pos)
                return false;
            Entry entry;
            entry.bytes.assign(data.begin() + static_cast<long>(pos),
                               data.begin() +
                                   static_cast<long>(pos + size));
            entry.hash = hash;
            entry.digest = digest;
            pos += size;
            stats.storedBytes += entry.bytes.size();
            ++stats.entries;
            map.emplace(key, std::move(entry));
        }
        return true;
    }

    static EntryMap::iterator
    eraseEntry(EntryMap &map, CacheStats &stats,
               EntryMap::iterator it)
    {
        stats.storedBytes -= it->second.bytes.size();
        --stats.entries;
        return map.erase(it);
    }

    mutable std::mutex mu_;
    EntryMap entries_;
    EntryMap layoutEntries_;

    /**
     * digest -> primary layout key.  Rebuilt on deserialize; entries
     * evicted later leave dangling aliases that lookupLayoutPrimed()
     * lazily prunes.  When two entries carry the same digest their
     * bytes are identical by construction (equal layout inputs produce
     * equal encoded layouts), so which one the alias resolves to never
     * changes what gets served.
     */
    std::unordered_map<uint64_t, uint64_t> layoutAlias_;

    CacheStats stats_;
    CacheStats layoutStats_;
};

} // namespace propeller::buildsys

#endif // PROPELLER_BUILD_CACHE_H
