#ifndef PROPELLER_BUILD_CACHE_H
#define PROPELLER_BUILD_CACHE_H

/**
 * @file
 * The content-addressed artifact cache of the distributed build system.
 *
 * Substitute for the remote action cache the paper's Phase 4 leans on
 * (section 3.4): code generation actions are pure functions of their
 * inputs, so an action whose input fingerprint is unchanged — a *cold*
 * module whose cluster directives are empty — is never re-executed; its
 * serialized object file streams straight out of the cache into the
 * relink.  This is what makes relinking a whole warehouse-scale binary
 * cheaper than a full build: only the hot modules (10-33% of objects)
 * pay for backends again.
 *
 * Keys are 64-bit content fingerprints (FNV-1a over the module IR plus
 * the layout/prefetch directives that affect it — see
 * Workflow's action fingerprinting).  Values are serialized
 * elf::ObjectFile byte images.
 *
 * Integrity: every entry stores a content hash of its bytes, computed at
 * put() time.  lookup() re-hashes the stored bytes and treats a mismatch
 * as storage corruption: the entry is evicted, CacheStats::corruptions
 * is bumped, and the lookup reports a miss so the caller re-executes the
 * action.  A cache must never serve bytes it cannot vouch for — a stale
 * or bit-flipped artifact silently linked into the binary is the worst
 * failure mode a relinking optimizer can have.
 *
 * Thread safety: all operations serialize on an internal mutex, which
 * models the real system (the action cache is a remote service with its
 * own serialization point).  The task-graph relink engine performs
 * lookups and insertions from concurrent codegen tasks; accounting
 * stays deterministic because every task addresses a distinct key, so
 * hit/miss/corruption totals are order-independent sums.  Returned byte
 * pointers stay valid under concurrent inserts of *other* keys
 * (unordered_map never moves values), and no two tasks touch the same
 * key concurrently.
 */

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/hash.h"

namespace propeller::buildsys {

/** Hit/miss accounting for one cache instance. */
struct CacheStats
{
    uint64_t hits = 0;     ///< lookup() calls that found a valid entry.
    uint64_t misses = 0;   ///< lookup() calls that found nothing usable.
    uint64_t entries = 0;  ///< Artifacts currently stored.
    uint64_t storedBytes = 0; ///< Total serialized bytes stored.

    /**
     * Entries whose stored bytes no longer matched their content hash
     * (detected at lookup() or scrub() time) and were evicted.
     */
    uint64_t corruptions = 0;

    /** Fraction of lookups that hit; 0 when nothing was looked up. */
    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Content-keyed object artifact cache with integrity verification. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Look up an artifact by content key, verifying its integrity hash.
     * A verified entry counts a hit.  An entry whose bytes fail
     * verification is evicted, counts a corruption *and* a miss, and the
     * lookup returns nullptr so the caller rebuilds the action.
     *
     * @return the stored bytes, or nullptr if absent or corrupt.  The
     *         pointer stays valid until the entry is overwritten.
     */
    const std::vector<uint8_t> *
    lookup(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        if (fnv1a(it->second.bytes.data(), it->second.bytes.size()) !=
            it->second.hash) {
            eraseEntry(it);
            ++stats_.corruptions;
            ++stats_.misses;
            return nullptr;
        }
        ++stats_.hits;
        return &it->second.bytes;
    }

    /** Store (or replace) an artifact under @p key. */
    void
    put(uint64_t key, std::vector<uint8_t> bytes)
    {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t hash = fnv1a(bytes.data(), bytes.size());
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            stats_.storedBytes -= it->second.bytes.size();
            stats_.storedBytes += bytes.size();
            it->second.bytes = std::move(bytes);
            it->second.hash = hash;
            return;
        }
        stats_.storedBytes += bytes.size();
        ++stats_.entries;
        entries_.emplace(key, Entry{std::move(bytes), hash});
    }

    /**
     * Evict @p key as corrupt, counting a corruption.  Used by callers
     * whose *structural* validation (e.g. object deserialization) caught
     * damage the byte hash could not — an artifact poisoned before it
     * was stored hashes consistently but still must not be served again.
     */
    void
    evictCorrupt(uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            return;
        eraseEntry(it);
        ++stats_.corruptions;
    }

    /**
     * Verify every stored entry, evicting (and counting) corrupt ones.
     * Does not touch hit/miss statistics.
     * @return the number of entries evicted.
     */
    uint64_t
    scrub()
    {
        std::lock_guard<std::mutex> lock(mu_);
        uint64_t evicted = 0;
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (fnv1a(it->second.bytes.data(), it->second.bytes.size()) !=
                it->second.hash) {
                it = eraseEntry(it);
                ++stats_.corruptions;
                ++evicted;
            } else {
                ++it;
            }
        }
        return evicted;
    }

    /**
     * Mutate the *stored* bytes of @p key in place without updating the
     * integrity hash — the fault-injection seam modelling silent storage
     * corruption (the hash describes what was stored; the bytes no
     * longer match it).  With @p rehash the hash is recomputed after the
     * mutation, modelling an artifact poisoned *before* it reached the
     * store: hash verification then passes and only structural
     * validation of the artifact can catch it.
     *
     * @return false if @p key is absent.
     */
    template <typename Mutator>
    bool
    corruptStored(uint64_t key, Mutator &&mutate, bool rehash = false)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end())
            return false;
        uint64_t before = it->second.bytes.size();
        mutate(it->second.bytes);
        stats_.storedBytes += it->second.bytes.size();
        stats_.storedBytes -= before;
        if (rehash)
            it->second.hash =
                fnv1a(it->second.bytes.data(), it->second.bytes.size());
        return true;
    }

    /** Presence test; does not count toward hit/miss statistics. */
    bool
    contains(uint64_t key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.count(key) != 0;
    }

    /** All stored keys, sorted (deterministic iteration for faults). */
    std::vector<uint64_t>
    keys() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<uint64_t> out;
        out.reserve(entries_.size());
        for (const auto &[key, entry] : entries_)
            out.push_back(key);
        std::sort(out.begin(), out.end());
        return out;
    }

    const CacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        std::vector<uint8_t> bytes;
        uint64_t hash = 0; ///< fnv1a(bytes) at store time.
    };

    std::unordered_map<uint64_t, Entry>::iterator
    eraseEntry(std::unordered_map<uint64_t, Entry>::iterator it)
    {
        stats_.storedBytes -= it->second.bytes.size();
        --stats_.entries;
        return entries_.erase(it);
    }

    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_;
    CacheStats stats_;
};

} // namespace propeller::buildsys

#endif // PROPELLER_BUILD_CACHE_H
