#ifndef PROPELLER_BUILD_CACHE_H
#define PROPELLER_BUILD_CACHE_H

/**
 * @file
 * The content-addressed artifact cache of the distributed build system.
 *
 * Substitute for the remote action cache the paper's Phase 4 leans on
 * (section 3.4): code generation actions are pure functions of their
 * inputs, so an action whose input fingerprint is unchanged — a *cold*
 * module whose cluster directives are empty — is never re-executed; its
 * serialized object file streams straight out of the cache into the
 * relink.  This is what makes relinking a whole warehouse-scale binary
 * cheaper than a full build: only the hot modules (10-33% of objects)
 * pay for backends again.
 *
 * Keys are 64-bit content fingerprints (FNV-1a over the module IR plus
 * the layout/prefetch directives that affect it — see
 * Workflow's action fingerprinting).  Values are serialized
 * elf::ObjectFile byte images.
 *
 * The cache is deliberately not thread-safe: the Workflow performs all
 * lookups and insertions on the coordinating thread and only fans the
 * *compilations* out to workers, which both models the real system (the
 * action cache is a remote service with its own serialization point) and
 * keeps hit/miss accounting deterministic.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace propeller::buildsys {

/** Hit/miss accounting for one cache instance. */
struct CacheStats
{
    uint64_t hits = 0;     ///< lookup() calls that found an entry.
    uint64_t misses = 0;   ///< lookup() calls that found nothing.
    uint64_t entries = 0;  ///< Artifacts currently stored.
    uint64_t storedBytes = 0; ///< Total serialized bytes stored.

    /** Fraction of lookups that hit; 0 when nothing was looked up. */
    double
    hitRate() const
    {
        uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Content-keyed object artifact cache. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Look up an artifact by content key.  Counts a hit or a miss.
     * @return the stored bytes, or nullptr if absent.  The pointer stays
     *         valid until the entry is overwritten.
     */
    const std::vector<uint8_t> *
    lookup(uint64_t key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        ++stats_.hits;
        return &it->second;
    }

    /** Store (or replace) an artifact under @p key. */
    void
    put(uint64_t key, std::vector<uint8_t> bytes)
    {
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            stats_.storedBytes -= it->second.size();
            stats_.storedBytes += bytes.size();
            it->second = std::move(bytes);
            return;
        }
        stats_.storedBytes += bytes.size();
        ++stats_.entries;
        entries_.emplace(key, std::move(bytes));
    }

    /** Presence test; does not count toward hit/miss statistics. */
    bool contains(uint64_t key) const { return entries_.count(key) != 0; }

    const CacheStats &stats() const { return stats_; }

  private:
    std::unordered_map<uint64_t, std::vector<uint8_t>> entries_;
    CacheStats stats_;
};

} // namespace propeller::buildsys

#endif // PROPELLER_BUILD_CACHE_H
