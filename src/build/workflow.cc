#include "build/workflow.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_map>

#include "build/journal.h"
#include "linker/linker.h"
#include "propeller/addr_map_index.h"
#include "propeller/profile_mapper.h"
#include "sim/machine.h"
#include "support/check.h"
#include "support/hash.h"
#include "support/thread_pool.h"

namespace propeller::buildsys {

namespace {

/** Fingerprint one IR instruction into a running hash. */
uint64_t
hashInst(uint64_t h, const ir::Inst &inst)
{
    h = hashCombine(h, static_cast<uint64_t>(inst.kind));
    h = hashCombine(h, inst.reg);
    h = hashCombine(h, inst.imm);
    h = fnv1a(inst.callee, h);
    h = hashCombine(h, inst.trueTarget);
    h = hashCombine(h, inst.falseTarget);
    h = hashCombine(h, inst.bias);
    h = hashCombine(h, inst.branchId);
    h = hashCombine(h, inst.periodic ? 1 : 0);
    h = hashCombine(h, inst.target);
    return h;
}

/** Total IR instructions in a module (the codegen cost driver). */
uint64_t
moduleInsts(const ir::Module &mod)
{
    uint64_t insts = 0;
    for (const auto &fn : mod.functions)
        insts += fn->instCount();
    return insts;
}

/** Modelled peak memory of one backend action. */
uint64_t
codegenActionMemory(uint64_t insts, uint64_t object_bytes)
{
    // Lowering state per instruction plus the in-flight object image.
    return insts * 200 + object_bytes * 3;
}

} // namespace

// ---- CostModel ------------------------------------------------------

double
CostModel::makespan(const std::vector<double> &costs,
                    uint32_t workers) const
{
    if (costs.empty() || workers == 0)
        return 0.0;
    double total = 0.0;
    double longest = 0.0;
    for (double cost : costs) {
        double with_overhead = cost + actionOverheadSec;
        total += with_overhead;
        longest = std::max(longest, with_overhead);
    }
    return total / static_cast<double>(workers) + longest;
}

// ---- Workflow -------------------------------------------------------

Workflow::Workflow(workload::WorkloadConfig config)
    : config_(std::move(config))
{
    limits_.workers = config_.distributedBuild ? 40 : 8;
}

const ir::Program &
Workflow::program()
{
    if (!program_)
        program_ = workload::generate(config_);
    return *program_;
}

uint64_t
Workflow::moduleHash(size_t module_index) const
{
    assert(program_ && "program() must be generated first");
    if (moduleHashes_.empty()) {
        moduleHashes_.reserve(program_->modules.size());
        for (const auto &mod : program_->modules) {
            uint64_t h = fnv1a(mod->name);
            h = hashCombine(h, mod->rodataBytes);
            for (const auto &fn : mod->functions) {
                h = fnv1a(fn->name, h);
                h = hashCombine(h, fn->isHandAsm ? 1 : 0);
                h = hashCombine(h, fn->hasIntegrityCheck ? 1 : 0);
                for (const auto &bb : fn->blocks) {
                    h = hashCombine(h, bb->id);
                    h = hashCombine(h, bb->isLandingPad ? 1 : 0);
                    for (const auto &inst : bb->insts)
                        h = hashInst(h, inst);
                }
            }
            moduleHashes_.push_back(h);
        }
    }
    return moduleHashes_[module_index];
}

uint64_t
Workflow::actionKey(size_t module_index,
                    const codegen::ClusterMap *clusters,
                    const core::PrefetchMap *prefetches,
                    bool emit_addr_map) const
{
    const ir::Module &mod = *program_->modules[module_index];
    uint64_t key = moduleHash(module_index);
    key = hashCombine(key, emit_addr_map ? 1 : 0);

    // Only the directives that *apply to this module* enter the
    // fingerprint.  A module none of whose functions have cluster
    // directives (and none of whose load sites are prefetch targets)
    // keeps its Phase 2 fingerprint — that is the content-cache property
    // Phase 4 relies on.
    if (clusters) {
        for (const auto &fn : mod.functions) {
            auto it = clusters->find(fn->name);
            if (it == clusters->end())
                continue;
            key = fnv1a(fn->name, key);
            key = hashCombine(key, it->second.coldIndex);
            for (const auto &cluster : it->second.clusters) {
                key = hashCombine(key, cluster.size());
                for (uint32_t id : cluster)
                    key = hashCombine(key, id);
            }
        }
    }
    if (prefetches) {
        for (const auto &fn : mod.functions) {
            for (const auto &bb : fn->blocks) {
                for (const auto &inst : bb->insts) {
                    if (inst.kind != ir::InstKind::Load)
                        continue;
                    auto it = prefetches->find(
                        static_cast<uint16_t>(inst.imm));
                    if (it == prefetches->end())
                        continue;
                    key = hashCombine(key, it->first);
                    key = hashCombine(key, it->second);
                }
            }
        }
    }
    return key;
}

Workflow::CompileBatch
Workflow::compileModules(const codegen::ClusterMap *clusters,
                         const core::PrefetchMap *prefetches)
{
    const ir::Program &prog = program();
    size_t n = prog.modules.size();

    CompileBatch batch;

    // Corrupt WPA directives must degrade to per-function fallback, not
    // abort the backend.  Sanitation is a no-op (and the copy identical)
    // on honest input, so zero-fault action fingerprints are unchanged.
    codegen::ClusterMap sanitized;
    if (clusters) {
        sanitized = *clusters;
        std::vector<std::string> dropped =
            codegen::sanitizeClusterMap(prog, sanitized);
        for (const auto &name : dropped)
            batch.failures.push_back("cluster directive dropped: " + name);
        batch.quarantined = static_cast<uint32_t>(dropped.size());
        clusters = &sanitized;
    }

    codegen::Options copts;
    copts.emitAddrMapSection = true;
    if (clusters) {
        copts.bbSections = codegen::BbSectionsMode::Clusters;
        copts.clusters = clusters;
    }
    copts.prefetches = prefetches;

    // Cache lookups run on the coordinating thread, in module order, so
    // hit/miss accounting is deterministic.  A hit must survive both the
    // cache's byte-hash check (lookup returns nullptr on mismatch) and
    // structural deserialization; either failure evicts the entry and
    // the action re-executes as a miss.
    batch.objects.resize(n);
    std::vector<size_t> misses;
    uint64_t corruptions_before = cache_.stats().corruptions;
    for (size_t i = 0; i < n; ++i) {
        uint64_t key = actionKey(i, clusters, prefetches, true);
        const std::vector<uint8_t> *hit = cache_.lookup(key);
        if (hit) {
            auto obj = elf::ObjectFile::deserializeChecked(*hit);
            if (obj.ok()) {
                batch.objects[i] = std::move(obj).value();
                batch.cachedNames.push_back(batch.objects[i].name);
                ++batch.cacheHits;
                continue;
            }
            cache_.evictCorrupt(key);
            batch.failures.push_back("cache artifact rejected (" +
                                     prog.modules[i]->name +
                                     "): " + obj.status().toString());
        }
        misses.push_back(i);
    }
    batch.cacheCorruptions = static_cast<uint32_t>(
        cache_.stats().corruptions - corruptions_before);

    // Only the missing actions execute; they fan out over the local
    // thread pool.  Results land in per-module slots, so the output is
    // byte-identical at any thread count.
    parallelFor(config_.jobs, misses.size(), [&](size_t m) {
        size_t i = misses[m];
        batch.objects[i] =
            codegen::compileModule(*prog.modules[i], copts);
    });

    std::vector<double> costs;
    for (size_t i : misses) {
        cache_.put(actionKey(i, clusters, prefetches, true),
                   batch.objects[i].serialize());
        uint64_t insts = moduleInsts(*prog.modules[i]);
        double base_cost =
            static_cast<double>(insts) * cost_.backendSecPerInst;

        // Transient executor failures (injected via hooks) are retried
        // with deterministic exponential backoff; each failed attempt
        // pays the action cost again plus the backoff.  An action that
        // exhausts its budget falls back to the coordinator — the build
        // degrades in makespan, never in output.
        double cost = base_cost;
        if (hooks_) {
            const std::string &name = prog.modules[i]->name;
            uint32_t attempts = limits_.maxActionRetries + 1;
            uint32_t attempt = 1;
            while (attempt <= attempts &&
                   hooks_->failAction(name, attempt)) {
                cost += base_cost +
                        limits_.retryBackoffSec *
                            static_cast<double>(1u << (attempt - 1));
                ++batch.retries;
                ++attempt;
            }
            if (attempt > attempts) {
                batch.failures.push_back(
                    "retries exhausted, ran on coordinator: " + name);
                cost += base_cost;
            }
        }
        costs.push_back(cost);
        batch.peakActionMemory = std::max(
            batch.peakActionMemory,
            codegenActionMemory(insts, batch.objects[i].sizeInBytes()));
    }
    batch.actions = static_cast<uint32_t>(misses.size());
    batch.makespanSec = cost_.makespan(costs, limits_.workers);

    if (hooks_)
        hooks_->onCachePopulated(cache_);
    return batch;
}

void
Workflow::recordCodegenReport(const std::string &phase,
                              const CompileBatch &batch)
{
    PhaseReport report;
    report.phase = phase;
    report.makespanSec = batch.makespanSec;
    report.actions = batch.actions;
    report.cacheHits = batch.cacheHits;
    report.peakActionMemory = batch.peakActionMemory;
    report.memoryLimitExceeded =
        batch.peakActionMemory > limits_.ramPerAction;
    report.retries = batch.retries;
    report.cacheCorruptions = batch.cacheCorruptions;
    report.quarantined = batch.quarantined;
    report.failures = batch.failures;
    reports_[phase] = std::move(report);
}

PhaseReport
Workflow::makeLinkReport(const std::string &phase,
                         const std::vector<elf::ObjectFile> &objects,
                         const linker::LinkStats &stats,
                         const std::vector<std::string> &cached_names)
    const
{
    std::set<std::string> cached(cached_names.begin(),
                                 cached_names.end());
    double cost = 0.0;
    for (const auto &obj : objects) {
        double bytes = static_cast<double>(obj.sizeInBytes());
        // Cold cache hits stream from the content store; fresh
        // outputs must be gathered from the workers that built them.
        cost += bytes * (cached.count(obj.name)
                             ? cost_.fetchCachedSecPerByte
                             : cost_.fetchFreshSecPerByte);
        cost += bytes * cost_.linkSecPerByte;
    }
    PhaseReport report;
    report.phase = phase;
    report.makespanSec = cost_.makespan({cost}, 1);
    report.actions = 1;
    report.peakActionMemory = stats.peakMemory;
    report.memoryLimitExceeded = stats.peakMemory > limits_.ramPerAction;
    report.quarantined = stats.quarantinedFunctions +
                         stats.addrMapsRejected;
    for (const auto &name : stats.quarantined)
        report.failures.push_back("function quarantined: " + name);
    for (const auto &obj : stats.rejectedAddrMapObjects)
        report.failures.push_back(".bb_addr_map rejected: " + obj);
    return report;
}

linker::Executable
Workflow::linkWithReport(const std::vector<elf::ObjectFile> &objects,
                         const linker::Options &opts,
                         const std::string &phase,
                         const std::vector<std::string> &cached_names)
{
    linker::LinkStats stats;
    linker::Executable exe = linker::link(objects, opts, &stats);
    if (!phase.empty())
        reports_[phase] = makeLinkReport(phase, objects, stats,
                                         cached_names);
    return exe;
}

linker::Options
Workflow::linkOptions()
{
    linker::Options opts;
    opts.outputName = config_.name;
    opts.entrySymbol = program().entryFunction;
    opts.hugePagesText = config_.hugePages;
    return opts;
}

core::LayoutOptions
Workflow::defaultLayoutOptions() const
{
    // Concurrency is not a layout option: WorkloadConfig::jobs is passed
    // to every parallel stage explicitly.
    return core::LayoutOptions{};
}

const std::vector<elf::ObjectFile> &
Workflow::phase2Objects()
{
    if (!phase2Objects_) {
        const ir::Program &prog = program();

        // Phase 1 (modelled): build and cache the optimized IR.
        {
            std::vector<double> costs;
            uint64_t peak = 0;
            for (const auto &mod : prog.modules) {
                uint64_t insts = moduleInsts(*mod);
                costs.push_back(static_cast<double>(insts) *
                                cost_.irGenSecPerInst);
                peak = std::max(peak, insts * 96);
            }
            PhaseReport report;
            report.phase = "phase1";
            report.makespanSec = cost_.makespan(costs, limits_.workers);
            report.actions = static_cast<uint32_t>(prog.modules.size());
            report.peakActionMemory = peak;
            report.memoryLimitExceeded = peak > limits_.ramPerAction;
            reports_["phase1"] = std::move(report);
        }

        // Phase 2: every backend runs (the cache is empty), with BB
        // address map metadata attached.
        CompileBatch batch = compileModules(nullptr, nullptr);
        recordCodegenReport("phase2.codegen", batch);
        phase2Objects_ = std::move(batch.objects);

        // Fault seam: damage object metadata between codegen and the
        // links — the window where objects sit on distributed storage.
        if (hooks_)
            hooks_->onPhase2Objects(*phase2Objects_);
    }
    return *phase2Objects_;
}

const linker::Executable &
Workflow::baseline()
{
    if (!baseline_) {
        linker::Options opts = linkOptions();
        opts.outputName = config_.name + ".base";
        opts.stripAddrMaps = true;
        baseline_ =
            linkWithReport(phase2Objects(), opts, "baseline.link", {});
    }
    return *baseline_;
}

const linker::Executable &
Workflow::metadataBinary()
{
    if (!metadataBinary_) {
        linker::Options opts = linkOptions();
        opts.outputName = config_.name + ".pm";
        metadataBinary_ =
            linkWithReport(phase2Objects(), opts, "phase2.link", {});
    }
    return *metadataBinary_;
}

const linker::Executable &
Workflow::boltInputBinary()
{
    if (!boltInputBinary_) {
        linker::Options opts = linkOptions();
        opts.outputName = config_.name + ".bm";
        opts.stripAddrMaps = true;
        opts.emitRelocs = true;
        boltInputBinary_ =
            linkWithReport(phase2Objects(), opts, "phase2.link.bm", {});
    }
    return *boltInputBinary_;
}

void
Workflow::overrideProfile(profile::Profile prof)
{
    PROPELLER_CHECK(!profile_,
                    "overrideProfile after the profile was pulled");
    profile_ = std::move(prof);

    // The collection phase never ran; record a zero-cost stand-in so
    // report("phase3.collect") stays well-defined for consumers.
    PhaseReport report;
    report.phase = "phase3.collect";
    report.actions = 1;
    reports_["phase3.collect"] = std::move(report);
}

void
Workflow::overrideProgram(ir::Program prog)
{
    PROPELLER_CHECK(!program_,
                    "overrideProgram after the program was pulled");
    program_ = std::move(prog);
}

void
Workflow::overrideDcfg(core::WholeProgramDcfg dcfg)
{
    PROPELLER_CHECK(!wpa_, "overrideDcfg after the WPA ran");
    dcfgOverride_ = std::move(dcfg);
}

void
Workflow::setLayoutPrimeFunctions(std::set<std::string> functions)
{
    PROPELLER_CHECK(!wpa_,
                    "setLayoutPrimeFunctions after the WPA ran");
    primeFns_ = std::move(functions);
}

bool
Workflow::loadCacheFile(const std::string &path, uint64_t *generation)
{
    std::vector<uint8_t> file;
    if (!readFile(path, file))
        return false;
    // A torn or bit-damaged journal is "no image": the run proceeds
    // cold instead of aborting or half-loading.
    std::vector<uint8_t> payload;
    uint64_t gen = 0;
    if (!decodeJournal(file, &gen, &payload))
        return false;
    if (!cache_.deserialize(payload))
        return false;
    if (generation)
        *generation = gen;
    return true;
}

bool
Workflow::saveCacheFile(const std::string &path, uint64_t generation,
                        long crashAtByte) const
{
    return atomicWriteFile(path,
                           encodeJournal(generation, cache_.serialize()),
                           crashAtByte);
}

const profile::Profile &
Workflow::profile()
{
    if (!profile_) {
        sim::RunResult run = sim::run(metadataBinary(),
                                      workload::profileOptions(config_));
        profile_ = std::move(run.profile);

        PhaseReport report;
        report.phase = "phase3.collect";
        // Profiles come from a timed load test, not a compute action.
        report.makespanSec = config_.propTrainMinutes * 60.0;
        report.actions = 1;
        report.peakActionMemory = profile_->sizeInBytes() + (1u << 20);

        // With hooks attached the profile takes the wire path the real
        // system takes — serialized into shards, exposed to faults,
        // reloaded with per-shard validation.  Corrupt shards are
        // dropped and their samples lost; the analysis degrades
        // gracefully instead of consuming damaged counts.
        if (hooks_) {
            std::vector<std::vector<uint8_t>> shards =
                profile::serializeShards(*profile_,
                                         limits_.profileShardSamples);
            hooks_->onProfileShards(shards);
            profile::ShardLoadStats sstats;
            profile_ = profile::loadShards(shards, &sstats);
            report.quarantined = sstats.shardsRejected;
            if (sstats.shardsRejected > 0)
                report.failures.push_back(
                    "profile shards rejected: " +
                    std::to_string(sstats.shardsRejected) + "/" +
                    std::to_string(sstats.shardsTotal) + " (" +
                    sstats.firstError + ")");
            if (sstats.distinctVersions > 1)
                report.failures.push_back(
                    "profile shards span " +
                    std::to_string(sstats.distinctVersions) +
                    " binary versions; route per-version through the "
                    "stale matcher (fleet serve) instead of merging "
                    "by address");
        }
        reports_["phase3.collect"] = std::move(report);
    }
    return *profile_;
}

void
Workflow::recordWpaReport()
{
    PhaseReport report;
    report.phase = "phase3.wpa";
    report.makespanSec = cost_.makespan(
        {static_cast<double>(wpa_->stats.profileBytes) *
             cost_.wpaSecPerProfileByte +
         static_cast<double>(wpa_->stats.hotFunctions) *
             cost_.wpaSecPerHotFunction},
        1);
    report.actions = 1;
    report.peakActionMemory = wpa_->stats.peakMemory;
    report.memoryLimitExceeded =
        wpa_->stats.peakMemory > limits_.ramPerAction;
    report.quarantined = wpa_->stats.quarantined;
    for (const auto &name : wpa_->stats.quarantinedFunctions)
        report.failures.push_back("addr map quarantined: " + name);
    reports_["phase3.wpa"] = std::move(report);
}

const core::WpaResult &
Workflow::wpa()
{
    if (!wpa_) {
        if (usesTaskGraph()) {
            runRelinkGraph(RelinkStage::Wpa);
        } else if (dcfgOverride_) {
            // Barrier engine with an injected DCFG: run the same staged
            // pipeline the default path wraps, substituting the DCFG at
            // applyDcfg() (intra-procedural only, like the fan-out
            // below).
            core::WpaPipeline pipeline(metadataBinary(), profile(),
                                       defaultLayoutOptions(),
                                       config_.jobs);
            pipeline.overrideDcfg(std::move(*dcfgOverride_));
            dcfgOverride_.reset();
            pipeline.build();
            std::vector<core::FunctionLayout> slots(
                pipeline.functionCount());
            parallelFor(config_.jobs, slots.size(), [&](size_t f) {
                slots[f] = pipeline.layoutFunction(f);
            });
            wpa_ = pipeline.finish(std::move(slots),
                                   pipeline.globalOrder());
            recordWpaReport();
        } else {
            wpa_ = core::runWholeProgramAnalysis(
                metadataBinary(), profile(), defaultLayoutOptions(),
                config_.jobs);
            recordWpaReport();
        }
    }
    return *wpa_;
}

void
Workflow::ensurePhase4()
{
    if (propellerBinary_)
        return;
    if (usesTaskGraph()) {
        runRelinkGraph(RelinkStage::Link);
        return;
    }

    CompileBatch batch = compileModules(&wpa().ccProf.clusters, nullptr);
    recordCodegenReport("phase4.codegen", batch);
    coldObjects_ = batch.cachedNames;

    linker::Options opts = linkOptions();
    opts.outputName = config_.name + ".po";
    opts.symbolOrder = wpa().ldProf.symbolOrder;
    opts.stripAddrMaps = true;
    propellerBinary_ = linkWithReport(batch.objects, opts, "phase4.link",
                                      batch.cachedNames);
    phase4Objects_ = std::move(batch.objects);
}

const linker::Executable &
Workflow::propellerBinary()
{
    ensurePhase4();
    return *propellerBinary_;
}

void
Workflow::recordVerifyReport(const analysis::VerifyReport &rep)
{
    PhaseReport report;
    report.phase = "phase5.verify";
    report.makespanSec = cost_.makespan(
        {static_cast<double>(rep.bytesVerified) * cost_.verifySecPerByte},
        1);
    report.actions = 1;
    // Decoded instruction stream plus the per-range bookkeeping.
    report.peakActionMemory =
        rep.instructionsDecoded * 56 + rep.rangesDecoded * 96;
    report.memoryLimitExceeded =
        report.peakActionMemory > limits_.ramPerAction;
    report.quarantined =
        static_cast<uint32_t>(rep.engine.affectedFunctions().size());
    for (const auto &diag : rep.engine.diagnostics())
        report.failures.push_back(diag.render());
    reports_["phase5.verify"] = std::move(report);
}

void
Workflow::ensureVerify()
{
    if (verify_)
        return;
    if (usesTaskGraph()) {
        runRelinkGraph(RelinkStage::Verify);
        return;
    }
    ensurePhase4();

    // PO ships with .bb_addr_map stripped, so relink a metadata-keeping
    // twin from the same Phase 4 objects under the same options.
    // Stripping only drops metadata — it never moves text — so the twin
    // must be byte-identical to PO; checking that makes every finding
    // below a finding about the shipped image.
    linker::Options opts = linkOptions();
    opts.outputName = config_.name + ".po-verify";
    opts.symbolOrder = wpa().ldProf.symbolOrder;
    verifyTwin_ = linker::link(*phase4Objects_, opts, nullptr);
    PROPELLER_CHECK(verifyTwin_->text == propellerBinary_->text,
                    "verification twin text diverged from PO");

    analysis::VerifyOptions vopts;
    vopts.expectedOrder = &wpa().ldProf;
    // Functions deliberately degraded upstream sit at input order, not
    // profile order; exempting them keeps PV015 about real link bugs.
    for (const auto &name : wpa().stats.quarantinedFunctions)
        vopts.exemptFunctions.insert(name);
    const std::string kQuarantinePrefix = "function quarantined: ";
    for (const auto &line : report("phase4.link").failures)
        if (line.rfind(kQuarantinePrefix, 0) == 0)
            vopts.exemptFunctions.insert(
                line.substr(kQuarantinePrefix.size()));

    analysis::VerifyReport rep = analysis::verifyExecutable(*verifyTwin_,
                                                            vopts);
    rep.merge(analysis::lintDirectives(wpa().ccProf, wpa().ldProf,
                                       metadataBinary(), vopts));
    {
        profile::AggregationOptions agg_opts;
        agg_opts.threads = config_.jobs;
        profile::AggregatedProfile agg =
            profile::aggregate(profile(), agg_opts);
        core::AddrMapIndex index(metadataBinary());
        core::WholeProgramDcfg dcfg = core::buildDcfg(agg, index);
        rep.merge(analysis::lintProfileFlow(dcfg, vopts));
    }

    recordVerifyReport(rep);
    verify_ = std::move(rep);
}

void
Workflow::runRelinkGraph(RelinkStage target)
{
    // Serial upstream phases (memoized; not part of the relink graph).
    const linker::Executable &pm = metadataBinary();
    const profile::Profile &prof = profile();
    const ir::Program &prog = program();
    const size_t nmod = prog.modules.size();

    const bool need_wpa = !wpa_;
    const bool need_link =
        target != RelinkStage::Wpa && !propellerBinary_;
    const bool need_verify = target == RelinkStage::Verify && !verify_;
    if (!need_wpa && !need_link && !need_verify)
        return;

    sched::TaskGraph graph;

    // ---- Phase 3: staged profile ingestion + per-function layout --------
    //
    // Ingestion runs as first-class graph tasks (prepare -> aggregation
    // shards -> merge; prepare -> index; -> map setup -> resolution
    // shards -> apply), so decoding the profile overlaps whatever else
    // the graph holds.  The per-function fan-out's *shape* depends on
    // the DCFG the apply task produces, so the apply task adds the
    // layout tasks dynamically — listing itself as their dependency so
    // none is released until all successor edges are wired — and every
    // codegen task takes a static edge from it.
    std::optional<core::WpaPipeline> pipe;
    std::vector<core::FunctionLayout> slots;
    std::vector<codegen::ClusterSpec> specs;
    core::LdProfile order;
    std::unordered_map<std::string, size_t> dcfgIndex;
    std::vector<sched::TaskId> layoutTask;
    sched::TaskId applyTask = sched::kInvalidTask;
    sched::TaskId orderTask = sched::kInvalidTask;
    sched::TaskId mergeTask = sched::kInvalidTask;
    const bool use_slots = need_wpa;
    std::vector<sched::TaskId> codegenTask;
    const uint64_t opts_fp =
        core::layoutOptionsFingerprint(defaultLayoutOptions());

    if (need_wpa) {
        pipe.emplace(pm, prof, defaultLayoutOptions(), config_.jobs);
        if (dcfgOverride_) {
            pipe->overrideDcfg(std::move(*dcfgOverride_));
            dcfgOverride_.reset();
        }

        // The modelled profile-conversion cost, split across the
        // ingestion stages in proportion to their real work so the
        // stage sum matches the barrier engine's single formula.  The
        // shard counts are pure functions of the profile and the
        // worker count, never of the schedule.
        profile::AggregationOptions agg_probe;
        agg_probe.threads = config_.jobs;
        const size_t agg_shards =
            profile::aggregationShardCount(prof, agg_probe);
        const size_t resolve_shards =
            std::max<size_t>(1, limits_.workers * 4);
        const double dcfg_cost =
            static_cast<double>(prof.sizeInBytes()) *
            cost_.wpaSecPerProfileByte;

        sched::TaskId prepareTask = graph.add(
            [&] { pipe->prepare(); },
            {"dcfg.prepare", "phase3.wpa", 0.0});

        std::vector<sched::TaskId> aggTask(agg_shards);
        for (size_t s = 0; s < agg_shards; ++s) {
            aggTask[s] = graph.add(
                [&, s] { pipe->aggregateShard(s); },
                {"agg#" + std::to_string(s), "phase3.wpa",
                 dcfg_cost * 0.002 / static_cast<double>(agg_shards)});
            graph.addEdge(prepareTask, aggTask[s]);
        }

        sched::TaskId aggMergeTask = graph.add(
            [&] { pipe->mergeAggregation(); },
            {"agg.merge", "phase3.wpa", 0.0});
        for (size_t s = 0; s < agg_shards; ++s)
            graph.addEdge(aggTask[s], aggMergeTask);

        sched::TaskId indexTask = graph.add(
            [&] { pipe->buildIndex(); },
            {"addrmap.index", "phase3.wpa", dcfg_cost * 0.010});
        graph.addEdge(prepareTask, indexTask);

        sched::TaskId mapSetupTask = graph.add(
            [&] { pipe->beginMapping(); },
            {"map.setup", "phase3.wpa", 0.0});
        graph.addEdge(aggMergeTask, mapSetupTask);
        graph.addEdge(indexTask, mapSetupTask);

        std::vector<sched::TaskId> resolveTask(resolve_shards);
        for (size_t k = 0; k < resolve_shards; ++k) {
            resolveTask[k] = graph.add(
                [&, k, resolve_shards] {
                    pipe->resolveShard(k, resolve_shards);
                },
                {"resolve#" + std::to_string(k), "phase3.wpa",
                 dcfg_cost * 0.983 /
                     static_cast<double>(resolve_shards)});
            graph.addEdge(mapSetupTask, resolveTask[k]);
        }

        orderTask = graph.add(
            [&] {
                graph.setCost(
                    orderTask,
                    cost_.wpaSecPerHotFunction *
                        static_cast<double>(pipe->functionCount()) *
                        0.1);
                order = pipe->globalOrder();
            },
            {"order", "phase3.wpa", 0.0});

        mergeTask = graph.add(
            [&] { wpa_ = pipe->finish(std::move(slots),
                                      std::move(order)); },
            {"wpa.merge", "phase3.wpa", 0.0});
        graph.addEdge(orderTask, mergeTask);

        applyTask = graph.add(
            [&] {
                pipe->applyDcfg();
                const size_t nfn = pipe->functionCount();
                slots.resize(nfn);
                specs.resize(nfn);
                layoutTask.resize(nfn);

                uint64_t total_nodes = 0;
                for (size_t f = 0; f < nfn; ++f) {
                    const core::FunctionDcfg &fn =
                        pipe->dcfg().functions[f];
                    dcfgIndex.emplace(fn.function, f);
                    total_nodes += fn.nodes.size();
                }

                for (size_t f = 0; f < nfn; ++f) {
                    const core::FunctionDcfg &fn =
                        pipe->dcfg().functions[f];
                    double share =
                        total_nodes == 0
                            ? 0.0
                            : static_cast<double>(fn.nodes.size()) /
                                  static_cast<double>(total_nodes);
                    // The memo key: the function's CFG hash + profile
                    // counts (layoutFingerprint) and the layout
                    // options.  A warm hit decodes the cached layout —
                    // byte-identical to recomputing it — and re-costs
                    // the task as a cache fetch; a decode failure
                    // evicts and recomputes.
                    layoutTask[f] = graph.add(
                        [&, f] {
                            const uint64_t key = hashCombine(
                                pipe->layoutFingerprint(f), opts_fp);
                            const uint64_t digest = hashCombine(
                                pipe->layoutInputDigest(f), opts_fp);
                            bool hit = false;
                            if (const std::vector<uint8_t> *bytes =
                                    cache_.lookupLayout(key)) {
                                core::FunctionLayout fl;
                                if (core::decodeFunctionLayout(*bytes,
                                                               fl)) {
                                    graph.setCost(
                                        layoutTask[f],
                                        static_cast<double>(
                                            bytes->size()) *
                                            cost_
                                                .fetchCachedSecPerByte);
                                    // Codegen tasks read the spec while
                                    // the merge task consumes the slot,
                                    // so the spec gets stable storage of
                                    // its own before either successor is
                                    // released.
                                    specs[f] = fl.spec;
                                    slots[f] = std::move(fl);
                                    hit = true;
                                } else {
                                    cache_.evictCorruptLayout(key);
                                }
                            }
                            // Primed fallback: the exact memo key
                            // changed (code drift), but the stale
                            // matcher vouched for this function and an
                            // entry with identical *layout inputs*
                            // exists — reuse it and re-home it under
                            // the new key so the next run hits
                            // primary.
                            if (!hit &&
                                primeFns_.count(pipe->dcfg()
                                                    .functions[f]
                                                    .function) != 0) {
                                const std::vector<uint8_t> *bytes =
                                    cache_.lookupLayoutPrimed(digest);
                                core::FunctionLayout fl;
                                if (bytes != nullptr &&
                                    core::decodeFunctionLayout(*bytes,
                                                               fl)) {
                                    graph.setCost(
                                        layoutTask[f],
                                        static_cast<double>(
                                            bytes->size()) *
                                            cost_
                                                .fetchCachedSecPerByte);
                                    std::vector<uint8_t> copy = *bytes;
                                    cache_.putLayout(key,
                                                     std::move(copy),
                                                     digest);
                                    specs[f] = fl.spec;
                                    slots[f] = std::move(fl);
                                    hit = true;
                                }
                            }
                            if (!hit) {
                                core::FunctionLayout fl =
                                    pipe->layoutFunction(f);
                                cache_.putLayout(
                                    key,
                                    core::encodeFunctionLayout(fl),
                                    digest);
                                specs[f] = fl.spec;
                                slots[f] = std::move(fl);
                            }
                        },
                        {"layout:" + fn.function, "phase3.wpa",
                         cost_.wpaSecPerHotFunction *
                             static_cast<double>(nfn) * share},
                        {applyTask});
                    graph.addEdge(layoutTask[f], mergeTask);
                }

                // The tentpole edges: a module's backend re-runs the
                // moment its last sampled function's layout lands.
                // Wired here — the tasks exist only now — while every
                // codegen task is still held by its static edge from
                // this task.
                for (size_t i = 0; i < codegenTask.size(); ++i) {
                    for (const auto &fn : prog.modules[i]->functions) {
                        auto it = dcfgIndex.find(fn->name);
                        if (it != dcfgIndex.end())
                            graph.addEdge(layoutTask[it->second],
                                          codegenTask[i]);
                    }
                }
            },
            {"dcfg.apply", "phase3.wpa", dcfg_cost * 0.005});
        for (size_t k = 0; k < resolve_shards; ++k)
            graph.addEdge(resolveTask[k], applyTask);
        graph.addEdge(applyTask, orderTask);
    }

    // ---- Phase 4: per-module codegen + per-object link assembly ---------
    CompileBatch batch;
    std::vector<char> isHit;
    std::vector<uint64_t> objBytes;
    std::vector<std::vector<std::string>> droppedByModule;
    std::vector<std::string> rejectLines;
    std::vector<std::string> retryLines;
    std::vector<double> missCosts;
    sched::OrderedSink sink;
    std::vector<sched::TaskId> assembleTask;
    sched::TaskId poLink = sched::kInvalidTask;
    linker::LinkStats poStats;
    std::optional<linker::Executable> po;
    const uint64_t corruptionsBefore = cache_.stats().corruptions;

    if (need_link) {
        batch.objects.resize(nmod);
        isHit.assign(nmod, 0);
        objBytes.assign(nmod, 0);
        droppedByModule.resize(nmod);
        codegenTask.resize(nmod);
        assembleTask.resize(nmod);

        for (size_t i = 0; i < nmod; ++i) {
            codegenTask[i] = graph.add(
                [&, i] {
                    const ir::Module &mod = *prog.modules[i];

                    // This module's restriction of the cluster map.
                    // Sanitation validates entries independently, so the
                    // sanitized restriction equals the restriction of
                    // the sanitized full map, and action keys (which
                    // read only the module's own entries) match the
                    // barrier engine exactly.
                    codegen::ClusterMap submap;
                    if (use_slots) {
                        for (const auto &fn : mod.functions) {
                            auto it = dcfgIndex.find(fn->name);
                            if (it != dcfgIndex.end())
                                submap.emplace(fn->name,
                                               specs[it->second]);
                        }
                    } else {
                        const codegen::ClusterMap &full =
                            wpa_->ccProf.clusters;
                        for (const auto &fn : mod.functions) {
                            auto it = full.find(fn->name);
                            if (it != full.end())
                                submap.emplace(fn->name, it->second);
                        }
                    }
                    droppedByModule[i] =
                        codegen::sanitizeClusterMap(prog, submap);
                    const uint64_t key =
                        actionKey(i, &submap, nullptr, true);

                    bool hit = false;
                    std::string reject;
                    if (const std::vector<uint8_t> *bytes =
                            cache_.lookup(key)) {
                        auto obj =
                            elf::ObjectFile::deserializeChecked(*bytes);
                        if (obj.ok()) {
                            batch.objects[i] = std::move(obj).value();
                            hit = true;
                        } else {
                            cache_.evictCorrupt(key);
                            reject = "cache artifact rejected (" +
                                     mod.name +
                                     "): " + obj.status().toString();
                        }
                    }
                    if (!hit) {
                        codegen::Options copts;
                        copts.emitAddrMapSection = true;
                        copts.bbSections =
                            codegen::BbSectionsMode::Clusters;
                        copts.clusters = &submap;
                        batch.objects[i] =
                            codegen::compileModule(mod, copts);
                    }
                    isHit[i] = hit ? 1 : 0;
                    objBytes[i] = batch.objects[i].sizeInBytes();

                    const uint64_t insts = moduleInsts(mod);
                    std::vector<uint8_t> stored =
                        hit ? std::vector<uint8_t>()
                            : batch.objects[i].serialize();

                    // Order-sensitive side effects (cache population,
                    // retry accounting, failure attribution, cost-model
                    // inputs) commit in module order regardless of
                    // which worker finished first.
                    sink.submit(i, [&, i, key, hit, insts, reject,
                                    stored =
                                        std::move(stored)]() mutable {
                        if (!reject.empty())
                            rejectLines.push_back(reject);
                        if (hit) {
                            batch.cachedNames.push_back(
                                batch.objects[i].name);
                            ++batch.cacheHits;
                            graph.setCost(codegenTask[i], 0.0);
                            return;
                        }
                        cache_.put(key, std::move(stored));
                        double base = static_cast<double>(insts) *
                                      cost_.backendSecPerInst;
                        double c = base;
                        if (hooks_) {
                            const std::string &name =
                                prog.modules[i]->name;
                            uint32_t attempts =
                                limits_.maxActionRetries + 1;
                            uint32_t attempt = 1;
                            while (attempt <= attempts &&
                                   hooks_->failAction(name, attempt)) {
                                c += base +
                                     limits_.retryBackoffSec *
                                         static_cast<double>(
                                             1u << (attempt - 1));
                                ++batch.retries;
                                ++attempt;
                            }
                            if (attempt > attempts) {
                                retryLines.push_back(
                                    "retries exhausted, ran on "
                                    "coordinator: " +
                                    name);
                                c += base;
                            }
                        }
                        missCosts.push_back(c);
                        ++batch.actions;
                        batch.peakActionMemory = std::max(
                            batch.peakActionMemory,
                            codegenActionMemory(
                                insts, batch.objects[i].sizeInBytes()));
                        graph.setCost(codegenTask[i],
                                      c + cost_.actionOverheadSec);
                    });
                },
                {"codegen:" + prog.modules[i]->name, "phase4.codegen",
                 0.0});

            // When this run computes WPA, every codegen task waits for
            // the DCFG apply task: its submap reads dcfgIndex/specs,
            // whose contents exist only after apply.  The apply task
            // also wires the fine-grained layout -> codegen release
            // edges (the tentpole: a module's backend re-runs the
            // moment its last sampled function's layout lands), so a
            // module starts as soon as those land — never behind
            // unrelated functions' layouts.
            if (need_wpa)
                graph.addEdge(applyTask, codegenTask[i]);
        }

        for (size_t i = 0; i < nmod; ++i) {
            assembleTask[i] = graph.add(
                [&, i] {
                    // Stream this object toward the link and copy its
                    // sections into the output image — both per-object
                    // parallel (linkers write disjoint output ranges
                    // concurrently).  Fetch cost depends on whether the
                    // object was a cache hit; only symbol resolution
                    // and layout finalization stay on the link task.
                    graph.setCost(
                        assembleTask[i],
                        static_cast<double>(objBytes[i]) *
                            ((isHit[i] ? cost_.fetchCachedSecPerByte
                                       : cost_.fetchFreshSecPerByte) +
                             cost_.linkSecPerByte));
                },
                {"assemble:" + prog.modules[i]->name, "phase4.link",
                 0.0});
            graph.addEdge(codegenTask[i], assembleTask[i]);
        }

        poLink = graph.add(
            [&] {
                // The hook point the barrier engine fires after a batch
                // stores its outputs: every codegen commit has run by
                // now (this task depends on all of them).
                if (hooks_)
                    hooks_->onCachePopulated(cache_);
                linker::Options opts = linkOptions();
                opts.outputName = config_.name + ".po";
                opts.symbolOrder = wpa_->ldProf.symbolOrder;
                opts.stripAddrMaps = true;
                po = linker::link(batch.objects, opts, &poStats);
            },
            {"link:po", "phase4.link", cost_.actionOverheadSec});
        for (size_t i = 0; i < nmod; ++i)
            graph.addEdge(assembleTask[i], poLink);
        if (mergeTask != sched::kInvalidTask)
            graph.addEdge(mergeTask, poLink);
    }

    // ---- Phase 5: per-range verification --------------------------------
    std::optional<linker::Executable> twin;
    std::optional<analysis::VerifyOptions> vopts;
    std::unique_ptr<analysis::ExecutableVerifier> verifier;
    std::optional<analysis::VerifyReport> vrep;
    std::optional<core::AddrMapIndex> flowIndex;
    std::optional<core::WholeProgramDcfg> flowDcfg;
    const size_t chunks = std::max<size_t>(1, limits_.workers * 2);
    std::vector<sched::TaskId> decodeTask;
    std::vector<sched::TaskId> checkTask;

    if (need_verify) {
        vopts.emplace();
        const std::vector<elf::ObjectFile> *vobjects =
            need_link ? &batch.objects : &*phase4Objects_;

        sched::TaskId twinTask = graph.add(
            [&, vobjects] {
                linker::Options opts = linkOptions();
                opts.outputName = config_.name + ".po-verify";
                opts.symbolOrder = wpa_->ldProf.symbolOrder;
                twin = linker::link(*vobjects, opts, nullptr);
            },
            {"link:twin", "phase5.verify", 0.0});
        if (need_link) {
            for (size_t i = 0; i < nmod; ++i)
                graph.addEdge(assembleTask[i], twinTask);
            if (mergeTask != sched::kInvalidTask)
                graph.addEdge(mergeTask, twinTask);
        }

        sched::TaskId setupTask = graph.add(
            [&] {
                // PV001-PV003 run in the ctor; ranges come after.
                verifier =
                    std::make_unique<analysis::ExecutableVerifier>(
                        *twin, *vopts);
            },
            {"verify.setup", "phase5.verify", 0.0});
        graph.addEdge(twinTask, setupTask);

        decodeTask.resize(chunks);
        checkTask.resize(chunks);
        for (size_t c = 0; c < chunks; ++c) {
            decodeTask[c] = graph.add(
                [&, c] {
                    size_t nr = verifier->rangeCount();
                    uint64_t bytes = 0;
                    for (size_t r = c * nr / chunks;
                         r < (c + 1) * nr / chunks; ++r) {
                        verifier->decodeRange(r);
                        bytes += verifier->rangeBytes(r);
                    }
                    graph.setCost(decodeTask[c],
                                  static_cast<double>(bytes) *
                                      cost_.verifySecPerByte * 0.7);
                },
                {"decode#" + std::to_string(c), "phase5.verify", 0.0});
            graph.addEdge(setupTask, decodeTask[c]);
        }

        sched::TaskId indexTask = graph.add(
            [&] { verifier->buildIndex(); },
            {"verify.index", "phase5.verify", 0.0});
        for (size_t c = 0; c < chunks; ++c)
            graph.addEdge(decodeTask[c], indexTask);

        for (size_t c = 0; c < chunks; ++c) {
            checkTask[c] = graph.add(
                [&, c] {
                    size_t nr = verifier->rangeCount();
                    uint64_t bytes = 0;
                    for (size_t r = c * nr / chunks;
                         r < (c + 1) * nr / chunks; ++r) {
                        verifier->checkRange(r);
                        bytes += verifier->rangeBytes(r);
                    }
                    graph.setCost(checkTask[c],
                                  static_cast<double>(bytes) *
                                      cost_.verifySecPerByte * 0.3);
                },
                {"check#" + std::to_string(c), "phase5.verify", 0.0});
            graph.addEdge(indexTask, checkTask[c]);
        }

        sched::TaskId finishTask = graph.add(
            [&] {
                // Metadata-wide checks read the applied order and every
                // upstream quarantine decision, including the just-run
                // link's overflow quarantine.
                vopts->expectedOrder = &wpa_->ldProf;
                for (const auto &name :
                     wpa_->stats.quarantinedFunctions)
                    vopts->exemptFunctions.insert(name);
                if (need_link) {
                    for (const auto &name : poStats.quarantined)
                        vopts->exemptFunctions.insert(name);
                } else {
                    const std::string kPrefix =
                        "function quarantined: ";
                    for (const auto &line :
                         report("phase4.link").failures)
                        if (line.rfind(kPrefix, 0) == 0)
                            vopts->exemptFunctions.insert(
                                line.substr(kPrefix.size()));
                }
                vrep = verifier->finish();
            },
            {"verify.finish", "phase5.verify", 0.0});
        for (size_t c = 0; c < chunks; ++c)
            graph.addEdge(checkTask[c], finishTask);
        if (need_link)
            graph.addEdge(poLink, finishTask);

        // The profile-flow lint rebuilds its own DCFG; that build has no
        // dependencies and overlaps the whole graph.  The lint itself
        // runs in the coordinator finalize (it reads the verify options
        // the finish task mutates).
        graph.add(
            [&] {
                profile::AggregationOptions agg_opts;
                agg_opts.threads = config_.jobs;
                profile::AggregatedProfile agg =
                    profile::aggregate(prof, agg_opts);
                flowIndex.emplace(pm);
                flowDcfg = core::buildDcfg(agg, *flowIndex);
            },
            {"lint.flow.dcfg", "phase5.verify", 0.0});
    }

    // ---- Execute --------------------------------------------------------
    sched::SchedulerOptions sopts;
    sopts.threads = config_.jobs;
    sopts.modelWorkers = limits_.workers;
    sopts.fifoQueues = config_.fifoScheduler;
    sched::ScheduleReport sreport = sched::Scheduler(sopts).run(graph);

    // ---- Coordinator finalize: memoize + mode-identical reports ---------
    //
    // The classic PhaseReports use the same barrier formulas as the
    // barrier engine (inputs are identical by construction), so every
    // consumer sees identical accounting; the graph's overlap story
    // lives in relinkSchedule() and the "relink.graph" report.
    schedule_ = std::move(sreport);
    {
        PhaseReport report;
        report.phase = "relink.graph";
        report.makespanSec = schedule_->makespanSec;
        report.actions = schedule_->tasksExecuted;
        reports_["relink.graph"] = std::move(report);
    }

    if (need_wpa)
        recordWpaReport();

    if (need_link) {
        std::vector<std::string> dropped;
        for (const auto &names : droppedByModule)
            dropped.insert(dropped.end(), names.begin(), names.end());
        // The barrier engine sanitizes one full map and reports drops in
        // map order; sorting the per-module drops reproduces that order.
        std::sort(dropped.begin(), dropped.end());
        batch.quarantined = static_cast<uint32_t>(dropped.size());
        for (const auto &name : dropped)
            batch.failures.push_back("cluster directive dropped: " +
                                     name);
        batch.failures.insert(batch.failures.end(), rejectLines.begin(),
                              rejectLines.end());
        batch.failures.insert(batch.failures.end(), retryLines.begin(),
                              retryLines.end());
        batch.cacheCorruptions = static_cast<uint32_t>(
            cache_.stats().corruptions - corruptionsBefore);
        batch.makespanSec = cost_.makespan(missCosts, limits_.workers);
        recordCodegenReport("phase4.codegen", batch);
        coldObjects_ = batch.cachedNames;
        reports_["phase4.link"] = makeLinkReport(
            "phase4.link", batch.objects, poStats, batch.cachedNames);
        propellerBinary_ = std::move(po);
        phase4Objects_ = std::move(batch.objects);
    }

    if (need_verify) {
        PROPELLER_CHECK(twin->text == propellerBinary_->text,
                        "verification twin text diverged from PO");
        analysis::VerifyReport rep = std::move(*vrep);
        rep.merge(analysis::lintDirectives(wpa_->ccProf, wpa_->ldProf,
                                           pm, *vopts));
        rep.merge(analysis::lintProfileFlow(*flowDcfg, *vopts));
        recordVerifyReport(rep);
        verify_ = std::move(rep);
        verifyTwin_ = std::move(twin);
    }
}

const analysis::VerifyReport &
Workflow::verifyReport()
{
    ensureVerify();
    return *verify_;
}

const linker::Executable &
Workflow::verifiedBinary()
{
    ensureVerify();
    return *verifyTwin_;
}

const std::vector<std::string> &
Workflow::coldObjects()
{
    ensurePhase4();
    return coldObjects_;
}

linker::Executable
Workflow::propellerBinaryWith(const core::LayoutOptions &opts,
                              core::WpaResult *wpa_out)
{
    core::WpaResult result = core::runWholeProgramAnalysis(
        metadataBinary(), profile(), opts, config_.jobs);

    // A Phase-4-style rebuild that shares the content cache but leaves
    // the canonical pipeline's reports untouched.
    CompileBatch batch =
        compileModules(&result.ccProf.clusters, nullptr);
    linker::Options lopts = linkOptions();
    lopts.outputName = config_.name + ".po-ablation";
    lopts.symbolOrder = result.ldProf.symbolOrder;
    lopts.stripAddrMaps = true;
    linker::Executable exe =
        linkWithReport(batch.objects, lopts, "", batch.cachedNames);
    if (wpa_out)
        *wpa_out = std::move(result);
    return exe;
}

linker::Executable
Workflow::propellerBinaryWithPrefetch(core::PrefetchMap *directives_out)
{
    // Collect a PEBS-style miss profile running the optimized binary.
    sim::MachineOptions mopts = workload::evalOptions(config_);
    mopts.modelDataCache = true;
    mopts.collectMissProfile = true;
    sim::RunResult run = sim::run(propellerBinary(), mopts);

    core::PrefetchMap directives =
        core::computePrefetchDirectives(run.missProfile);

    // Re-run backends: only modules containing targeted load sites have
    // a changed action fingerprint; everything else is a cache hit
    // (including the Phase 4 hot objects, stored under their
    // directive-carrying keys).
    CompileBatch batch =
        compileModules(&wpa().ccProf.clusters, &directives);
    recordCodegenReport("prefetch.codegen", batch);

    linker::Options lopts = linkOptions();
    lopts.outputName = config_.name + ".po-prefetch";
    lopts.symbolOrder = wpa().ldProf.symbolOrder;
    lopts.stripAddrMaps = true;
    linker::Executable exe = linkWithReport(
        batch.objects, lopts, "prefetch.link", batch.cachedNames);
    if (directives_out)
        *directives_out = std::move(directives);
    return exe;
}

linker::Executable
Workflow::iterativePropellerBinary()
{
    if (iterative_)
        return *iterative_;
    ensurePhase4();

    // Round 2 metadata binary: the Phase 4 objects, address maps kept.
    linker::Options pm2_opts = linkOptions();
    pm2_opts.outputName = config_.name + ".pm2";
    pm2_opts.symbolOrder = wpa().ldProf.symbolOrder;
    linker::Executable pm2 =
        linkWithReport(*phase4Objects_, pm2_opts, "", {});

    sim::RunResult run =
        sim::run(pm2, workload::profileOptions(config_));
    core::WpaResult wpa2 = core::runWholeProgramAnalysis(
        pm2, run.profile, defaultLayoutOptions(), config_.jobs);

    CompileBatch batch = compileModules(&wpa2.ccProf.clusters, nullptr);
    linker::Options po2_opts = linkOptions();
    po2_opts.outputName = config_.name + ".po2";
    po2_opts.symbolOrder = wpa2.ldProf.symbolOrder;
    po2_opts.stripAddrMaps = true;
    iterative_ =
        linkWithReport(batch.objects, po2_opts, "", batch.cachedNames);
    return *iterative_;
}

linker::Executable
Workflow::boltBinary(const bolt::BoltOptions &opts, bolt::BoltStats *stats)
{
    bolt::BoltStats local;
    bolt::BoltProfile bolt_profile = bolt::convertProfile(
        boltInputBinary(), profile(), &local, nullptr, opts.lite);
    linker::Executable exe =
        bolt::optimize(boltInputBinary(), bolt_profile, opts, &local);

    {
        PhaseReport report;
        report.phase = "bolt.convert";
        report.makespanSec = cost_.makespan(
            {static_cast<double>(profile().sizeInBytes()) *
                 cost_.wpaSecPerProfileByte +
             static_cast<double>(local.disassembledInsts) *
                 cost_.boltSecPerInst * 0.4},
            1);
        report.actions = 1;
        report.peakActionMemory = local.convertPeakMemory;
        report.memoryLimitExceeded =
            local.convertPeakMemory > limits_.ramPerAction;
        reports_["bolt.convert"] = std::move(report);
    }
    {
        PhaseReport report;
        report.phase = "bolt.opt";
        // One monolithic action: disassemble, reorder and rewrite the
        // whole binary on a single machine.
        report.makespanSec = cost_.makespan(
            {static_cast<double>(local.disassembledInsts) *
                 cost_.boltSecPerInst +
             static_cast<double>(local.newTextBytes) *
                 cost_.linkSecPerByte},
            1);
        report.actions = 1;
        report.peakActionMemory = local.optPeakMemory;
        report.memoryLimitExceeded =
            local.optPeakMemory > limits_.ramPerAction;
        reports_["bolt.opt"] = std::move(report);
    }
    if (stats)
        *stats = local;
    return exe;
}

analysis::VerifyReport
Workflow::verifyBoltBinary(const bolt::BoltOptions &opts,
                           bolt::BoltStats *stats)
{
    linker::Executable exe = boltBinary(opts, stats);

    // BOLT's rewrite strips .bb_addr_map and owns its own layout, so the
    // metadata-vs-machine cross-checks no-op; the machine-level passes
    // (symbol bounds, decode, control flow, eh_frame, startup integrity)
    // run in full, turning the paper's section 5 crash classes into
    // machine-checked findings on this path too.
    analysis::VerifyOptions vopts;
    analysis::VerifyReport rep = analysis::verifyExecutable(exe, vopts);

    PhaseReport report;
    report.phase = "bolt.verify";
    report.makespanSec = cost_.makespan(
        {static_cast<double>(rep.bytesVerified) * cost_.verifySecPerByte},
        1);
    report.actions = 1;
    report.peakActionMemory =
        rep.instructionsDecoded * 56 + rep.rangesDecoded * 96;
    report.memoryLimitExceeded =
        report.peakActionMemory > limits_.ramPerAction;
    report.quarantined =
        static_cast<uint32_t>(rep.engine.affectedFunctions().size());
    for (const auto &diag : rep.engine.diagnostics())
        report.failures.push_back(diag.render());
    reports_["bolt.verify"] = std::move(report);
    return rep;
}

const sched::ScheduleReport &
Workflow::relinkSchedule() const
{
    assert(schedule_ && "no task-graph relink has run");
    return *schedule_;
}

PhaseReport
Workflow::instrumentedBuildReport()
{
    const ir::Program &prog = program();
    std::vector<double> costs;
    uint64_t total_bytes = 0;
    uint64_t peak = 0;
    for (const auto &mod : prog.modules) {
        uint64_t insts = moduleInsts(*mod);
        // Instrumentation bloats every backend action; counters and
        // value-profiling tables compile alongside the real code.
        costs.push_back(static_cast<double>(insts) *
                        cost_.backendSecPerInst *
                        cost_.instrumentFactor);
        total_bytes += insts * 6;
        peak = std::max(peak, codegenActionMemory(insts, insts * 6));
    }
    // Plus the instrumented link (all outputs fresh, bloated inputs).
    double link_cost =
        static_cast<double>(total_bytes) *
        (cost_.fetchFreshSecPerByte + cost_.linkSecPerByte) * 1.3;
    costs.push_back(link_cost);

    PhaseReport report;
    report.phase = "pgo.instrumented";
    report.makespanSec = cost_.makespan(costs, limits_.workers);
    report.actions = static_cast<uint32_t>(costs.size());
    report.peakActionMemory = peak;
    report.memoryLimitExceeded = peak > limits_.ramPerAction;
    return report;
}

bool
Workflow::hasReport(const std::string &phase) const
{
    return reports_.count(phase) != 0;
}

const PhaseReport &
Workflow::report(const std::string &phase) const
{
    auto it = reports_.find(phase);
    assert(it != reports_.end() && "phase report not yet produced");
    return it->second;
}

} // namespace propeller::buildsys
