#ifndef PROPELLER_ANALYSIS_DIAGNOSTICS_H
#define PROPELLER_ANALYSIS_DIAGNOSTICS_H

/**
 * @file
 * Diagnostics engine for the post-link static verifier.
 *
 * Every check the verifier performs has a *stable* identifier (PV001,
 * PV002, ...) so that suppression lists, CI gates and dashboards keep
 * working as checks are added.  Diagnostics carry a severity, the
 * function they are attributed to, the offending address (when there is
 * one), and a human-readable message; the engine renders them as text
 * (one diagnostic per line, compiler style) or JSON (CI artifacts).
 *
 * Suppression happens at report time: a suppressed check id is counted
 * but never stored, so a clean-with-suppressions run is distinguishable
 * from a genuinely clean one.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace propeller::analysis {

/**
 * Stable check identifiers.  Never renumber; retired checks keep their
 * id reserved.  The catalogue is documented in DESIGN.md ("Static
 * verification").
 */
enum class CheckId : uint16_t {
    PV001 = 1,  ///< Symbol range outside the text image or empty.
    PV002 = 2,  ///< Overlapping symbol ranges.
    PV003 = 3,  ///< Entry address is not a primary function entry.
    PV004 = 4,  ///< Disassembly failure (embedded data / truncation).
    PV005 = 5,  ///< Branch or call target not at an instruction boundary.
    PV006 = 6,  ///< Terminator disagrees with addr-map successor list.
    PV007 = 7,  ///< Fall-through escapes the owning function.
    PV008 = 8,  ///< Call target is not a function entry.
    PV009 = 9,  ///< Addr-map block address off any instruction boundary.
    PV010 = 10, ///< Addr-map blocks do not tile their symbol range.
    PV011 = 11, ///< .eh_frame coverage gap or length mismatch.
    PV012 = 12, ///< Startup integrity-check hash mismatch.
    PV013 = 13, ///< Invalid cc_prof cluster directive.
    PV014 = 14, ///< Invalid ld_prof symbol-order directive.
    PV015 = 15, ///< Final layout does not honor the symbol order.
    PV016 = 16, ///< Profile flow-conservation anomaly.
};

/** "PV001" etc.; stable, parseable in suppression lists. */
const char *checkName(CheckId id);

/** One-line description of the check (for catalogues and renderers). */
const char *checkTitle(CheckId id);

/** Parse "PV004" into a CheckId; false on unknown names. */
bool parseCheckId(const std::string &name, CheckId &out);

enum class Severity : uint8_t {
    Note,    ///< Informational; never fails a gate.
    Warning, ///< Suspicious but not provably wrong.
    Error,   ///< The binary (or directive set) is provably malformed.
};

const char *severityName(Severity severity);

/** One verifier finding. */
struct Diagnostic
{
    CheckId id = CheckId::PV001;
    Severity severity = Severity::Error;
    std::string function; ///< Attributed function ("" = whole binary).
    uint64_t address = 0; ///< Offending address; 0 when not address-like.
    std::string message;

    /** Compiler-style one-liner: "error[PV004] fn_0012@0x4010: ...". */
    std::string render() const;
};

/**
 * Collects diagnostics, applies suppressions, renders reports.
 */
class DiagnosticEngine
{
  public:
    /** Suppress a check id (its reports are counted, not stored). */
    void suppress(CheckId id);

    /**
     * Parse a comma-separated suppression list ("PV004,PV011").
     * @return false on any unknown id (valid prefix still applies).
     */
    bool parseSuppressions(const std::string &csv);

    /** Report a finding (dropped and counted if suppressed). */
    void report(CheckId id, Severity severity, std::string function,
                uint64_t address, std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    uint32_t errorCount() const { return errors_; }
    uint32_t warningCount() const { return warnings_; }
    uint32_t noteCount() const { return notes_; }
    uint32_t suppressedCount() const { return suppressed_; }

    /** No stored errors or warnings (notes alone stay "clean"). */
    bool clean() const { return errors_ == 0 && warnings_ == 0; }

    /** Sorted unique names of functions with stored diagnostics. */
    std::vector<std::string> affectedFunctions() const;

    /** One diagnostic per line plus a trailing summary line. */
    std::string renderText() const;

    /** JSON object: counts plus a "diagnostics" array. */
    std::string renderJson() const;

  private:
    std::vector<Diagnostic> diags_;
    uint64_t suppressMask_ = 0; ///< Bit (id-1) set = suppressed.
    uint32_t errors_ = 0;
    uint32_t warnings_ = 0;
    uint32_t notes_ = 0;
    uint32_t suppressed_ = 0;
};

} // namespace propeller::analysis

#endif // PROPELLER_ANALYSIS_DIAGNOSTICS_H
