#ifndef PROPELLER_ANALYSIS_VERIFIER_H
#define PROPELLER_ANALYSIS_VERIFIER_H

/**
 * @file
 * Post-link static verification of relinked binaries (the correctness
 * closing of the loop for paper section 2.4).
 *
 * Propeller's bet is that relinking from compiler-emitted metadata is
 * safer than BOLT-style binary rewriting — this verifier *proves* it per
 * binary, by turning BOLT's own disassembler into an adversarial
 * checker: independently decode the final text image, reconstruct the
 * machine CFG, and cross-check it against every piece of metadata the
 * pipeline claims to have honored (symbols, .bb_addr_map, v2 successor
 * lists, .eh_frame coverage, startup integrity hashes, and the applied
 * ld_prof ordering).  Pre-link lints validate the Phase 3 directive
 * artifacts (cc_prof / ld_prof) and profile flow conservation before
 * they reach the backends.
 *
 * All findings flow through the DiagnosticEngine with stable PV0xx ids;
 * see DESIGN.md "Static verification" for the catalogue.
 */

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "analysis/diagnostics.h"
#include "linker/executable.h"
#include "propeller/dcfg.h"
#include "propeller/directives.h"

namespace propeller::analysis {

/** Knobs for one verification pass. */
struct VerifyOptions
{
    /** Comma-separated check ids to suppress ("PV004,PV011"). */
    std::string suppress;

    bool checkAddrMap = true;   ///< PV006/PV009/PV010 (needs metadata).
    bool checkEhFrame = true;   ///< PV011 (skipped if frames are absent).
    bool checkIntegrity = true; ///< PV012.

    /**
     * When set, PV015 checks that the symbols of this ordering appear at
     * strictly increasing addresses in the image.
     */
    const core::LdProfile *expectedOrder = nullptr;

    /**
     * Functions legitimately degraded upstream (linker overflow
     * quarantine, WPA addr-map quarantine): exempt from PV015 — their
     * sections were deliberately re-laid out at input order.
     */
    std::set<std::string> exemptFunctions;

    /** PV016: flag |in|/|out| imbalance beyond this factor... */
    double flowTolerance = 8.0;

    /** ...when the larger side is at least this heavy. */
    uint64_t flowMinWeight = 256;
};

/** Outcome of one verification pass. */
struct VerifyReport
{
    DiagnosticEngine engine;

    uint32_t functionsChecked = 0;
    uint32_t rangesDecoded = 0;
    uint32_t handAsmSkipped = 0;
    uint64_t instructionsDecoded = 0;
    uint64_t bytesVerified = 0;

    /** No errors and no warnings. */
    bool clean() const { return engine.clean(); }

    /** Fold @p other's findings and counters into this report. */
    void merge(const VerifyReport &other);
};

/**
 * Disassemble @p exe and cross-check the machine CFG against its
 * metadata (checks PV001-PV012, PV015).
 */
VerifyReport verifyExecutable(const linker::Executable &exe,
                              const VerifyOptions &opts = {});

/**
 * verifyExecutable decomposed into schedulable stages so the task-graph
 * relink engine can overlap per-range decoding and control-flow checks
 * with the tail of linking:
 *
 *   ctor            — symbol/entry checks (PV001-PV003), serial;
 *   decodeRange(r)  — disassemble one range (PV004); thread-safe
 *                     across distinct r;
 *   buildIndex()    — instruction-boundary index over all decoded
 *                     ranges; serial barrier, required before checks;
 *   checkRange(r)   — control-flow checks (PV005/PV007/PV008) for one
 *                     range; thread-safe across distinct r;
 *   finish()        — metadata-wide checks (addr map, eh_frame,
 *                     integrity, symbol order) plus the deterministic
 *                     merge: per-range findings re-emit in range order,
 *                     so the final report is byte-identical to the
 *                     monolithic pass at any thread count.
 *
 * @p exe and @p opts must outlive the verifier.
 */
class ExecutableVerifier
{
  public:
    ExecutableVerifier(const linker::Executable &exe,
                       const VerifyOptions &opts);
    ~ExecutableVerifier();
    ExecutableVerifier(const ExecutableVerifier &) = delete;
    ExecutableVerifier &operator=(const ExecutableVerifier &) = delete;

    /** Symbol ranges, sorted by start address. */
    size_t rangeCount() const;

    /** Byte size of range @p r (cost-model input for task sizing). */
    uint64_t rangeBytes(size_t r) const;

    void decodeRange(size_t r);
    void buildIndex();
    void checkRange(size_t r);
    VerifyReport finish();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Pre-link lint of the Phase 3 directive artifacts against the metadata
 * binary's block universe (PV013, PV014).  Mirrors exactly what
 * codegen::sanitizeClusterMap accepts, so a lint-clean cc_prof is never
 * quarantined downstream.
 */
VerifyReport lintDirectives(const core::CcProfile &cc,
                            const core::LdProfile &ld,
                            const linker::Executable &metadata_exe,
                            const VerifyOptions &opts = {});

/**
 * Pre-link lint of profile flow conservation over the DCFG (PV016):
 * interior nodes whose in-flow and out-flow disagree beyond
 * VerifyOptions::flowTolerance indicate corrupted or mis-mapped counts.
 */
VerifyReport lintProfileFlow(const core::WholeProgramDcfg &dcfg,
                             const VerifyOptions &opts = {});

} // namespace propeller::analysis

#endif // PROPELLER_ANALYSIS_VERIFIER_H
