#include "analysis/verifier.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bolt/disassembler.h"
#include "elf/bb_addr_map.h"
#include "support/hash.h"

namespace propeller::analysis {

using linker::ExecBlock;
using linker::ExecFuncMap;
using linker::Executable;
using linker::FuncRange;


namespace {

std::string
hex(uint64_t value)
{
    char buf[32];
    snprintf(buf, sizeof buf, "0x%llx",
             static_cast<unsigned long long>(value));
    return buf;
}

/** One symbol range plus its independent disassembly. */
struct RangeInfo
{
    const FuncRange *sym = nullptr;
    bolt::RangeDisassembly dis;
    bool valid = true;   ///< Passed the PV001 image-bounds check.
    bool decoded = false; ///< Fully disassembled (hand-asm never is).
};

/** Shared state of one verifyExecutable pass. */
struct ExeVerifier
{
    const Executable &exe;
    const VerifyOptions &opts;
    VerifyReport &report;

    std::vector<RangeInfo> ranges; ///< Sorted by start address.
    std::unordered_set<uint64_t> boundaries; ///< Decoded inst addresses.
    std::unordered_map<uint64_t, const FuncRange *> primaryStarts;
    std::unordered_map<std::string, const FuncRange *> rangeByName;

    void
    diag(CheckId id, Severity sev, const std::string &fn, uint64_t addr,
         std::string msg)
    {
        report.engine.report(id, sev, fn, addr, std::move(msg));
    }

    /** Range whose [start, end) contains @p addr; nullptr if none. */
    const RangeInfo *
    ownerOf(uint64_t addr) const
    {
        auto it = std::upper_bound(
            ranges.begin(), ranges.end(), addr,
            [](uint64_t a, const RangeInfo &r) { return a < r.sym->start; });
        if (it == ranges.begin())
            return nullptr;
        --it;
        if (!it->valid || addr >= it->sym->end)
            return nullptr;
        return &*it;
    }

    void checkSymbols();
    void checkEntry();
    void decodeRange(RangeInfo &info, VerifyReport &rep);
    void indexBoundaries();
    void checkControlFlowRange(const RangeInfo &info, VerifyReport &rep);
    void checkAddrMap();
    void checkEhFrame();
    void checkIntegrity();
    void checkSymbolOrder();
};

void
ExeVerifier::checkSymbols()
{
    ranges.reserve(exe.symbols.size());
    for (const auto &sym : exe.symbols)
        ranges.push_back(RangeInfo{&sym, {}, true, false});
    std::sort(ranges.begin(), ranges.end(),
              [](const RangeInfo &a, const RangeInfo &b) {
                  return a.sym->start < b.sym->start;
              });

    std::unordered_set<std::string> functions;
    for (auto &info : ranges) {
        const FuncRange &sym = *info.sym;
        functions.insert(sym.parentFunction);
        rangeByName.emplace(sym.name, &sym);
        if (sym.isPrimary)
            primaryStarts.emplace(sym.start, &sym);
        if (sym.start >= sym.end || !exe.containsText(sym.start) ||
            sym.end > exe.textEnd()) {
            info.valid = false;
            diag(CheckId::PV001, Severity::Error, sym.parentFunction,
                 sym.start,
                 "symbol '" + sym.name + "' range [" + hex(sym.start) +
                     ", " + hex(sym.end) + ") is empty or outside the " +
                     "text image [" + hex(exe.textBase) + ", " +
                     hex(exe.textEnd()) + ")");
        }
    }
    report.functionsChecked = static_cast<uint32_t>(functions.size());

    const RangeInfo *prev = nullptr;
    for (const auto &info : ranges) {
        if (!info.valid)
            continue;
        if (prev && info.sym->start < prev->sym->end) {
            diag(CheckId::PV002, Severity::Error,
                 info.sym->parentFunction, info.sym->start,
                 "symbol '" + info.sym->name + "' overlaps '" +
                     prev->sym->name + "' ending at " +
                     hex(prev->sym->end));
        }
        if (!prev || info.sym->end > prev->sym->end)
            prev = &info;
    }
}

void
ExeVerifier::checkEntry()
{
    if (exe.symbols.empty())
        return;
    auto it = primaryStarts.find(exe.entryAddress);
    if (it == primaryStarts.end()) {
        diag(CheckId::PV003, Severity::Error, "", exe.entryAddress,
             "entry address " + hex(exe.entryAddress) +
                 " is not the start of any primary function symbol");
    }
}

void
ExeVerifier::decodeRange(RangeInfo &info, VerifyReport &rep)
{
    // Writes only to this range's slot and @p rep: safe to run
    // concurrently across distinct ranges.  The shared boundary index
    // is built afterwards by indexBoundaries().
    if (!info.valid)
        return;
    if (info.sym->isHandAsm) {
        ++rep.handAsmSkipped;
        return;
    }
    info.dis =
        bolt::disassembleRange(exe, info.sym->start, info.sym->end);
    ++rep.rangesDecoded;
    rep.instructionsDecoded += info.dis.insts.size();
    if (info.dis.ok()) {
        info.decoded = true;
        rep.bytesVerified += info.sym->end - info.sym->start;
    } else {
        rep.engine.report(CheckId::PV004, Severity::Error,
                          info.sym->parentFunction, info.dis.errorAddr,
                          std::string("cannot disassemble symbol '") +
                              info.sym->name + "': " +
                              bolt::decodeErrorName(info.dis.error) +
                              " at " + hex(info.dis.errorAddr));
    }
}

void
ExeVerifier::indexBoundaries()
{
    for (const auto &info : ranges)
        for (const auto &bi : info.dis.insts)
            boundaries.insert(bi.addr);
}

void
ExeVerifier::checkControlFlowRange(const RangeInfo &info,
                                   VerifyReport &rep)
{
    // Reads only shared immutable state (ranges, boundaries,
    // primaryStarts — all frozen after indexBoundaries); reports into
    // @p rep.  Safe to run concurrently across distinct ranges.
    if (!info.decoded)
        return;
    auto diag = [&](CheckId id, Severity sev, const std::string &fn,
                    uint64_t addr, std::string msg) {
        rep.engine.report(id, sev, fn, addr, std::move(msg));
    };
    {
        const FuncRange &sym = *info.sym;
        for (const auto &bi : info.dis.insts) {
            const isa::Instruction &inst = bi.inst;
            bool branch = inst.isCondBranch() || inst.isUncondBranch();
            if (!branch && !inst.isCall())
                continue;
            uint64_t target = bi.addr + inst.size() +
                              static_cast<int64_t>(inst.rel);
            if (!exe.containsText(target)) {
                diag(CheckId::PV005, Severity::Error, sym.parentFunction,
                     bi.addr,
                     std::string(inst.isCall() ? "call" : "branch") +
                         " target " + hex(target) +
                         " is outside the text image");
                continue;
            }
            if (inst.isCall()) {
                if (!primaryStarts.count(target)) {
                    diag(CheckId::PV008, Severity::Error,
                         sym.parentFunction, bi.addr,
                         "call target " + hex(target) +
                             " is not a function entry");
                }
                continue;
            }
            const RangeInfo *owner = ownerOf(target);
            if (!owner) {
                diag(CheckId::PV005, Severity::Error, sym.parentFunction,
                     bi.addr,
                     "branch target " + hex(target) +
                         " lands in padding outside every symbol");
                continue;
            }
            if (owner->sym->parentFunction != sym.parentFunction) {
                diag(CheckId::PV007, Severity::Error, sym.parentFunction,
                     bi.addr,
                     "branch target " + hex(target) + " is inside '" +
                         owner->sym->name + "' of a different function");
                continue;
            }
            // Hand-asm ranges are opaque; a failed-decode range already
            // produced PV004 and its boundary set is incomplete.
            if (owner->sym->isHandAsm || !owner->decoded)
                continue;
            if (!boundaries.count(target)) {
                diag(CheckId::PV005, Severity::Error, sym.parentFunction,
                     bi.addr,
                     "branch target " + hex(target) +
                         " is not at an instruction boundary");
            }
        }

        // A range whose last instruction can fall through must be
        // followed, byte-adjacent, by a range of the same function (the
        // linker only deletes fall-through jumps to adjacent targets).
        const isa::Instruction &last = info.dis.insts.back().inst;
        if (!last.endsStream()) {
            const RangeInfo *next = ownerOf(sym.end);
            bool same_function =
                next && next->sym->start == sym.end &&
                next->sym->parentFunction == sym.parentFunction;
            if (!same_function) {
                diag(CheckId::PV007, Severity::Error, sym.parentFunction,
                     sym.end,
                     "symbol '" + sym.name +
                         "' can fall through its end at " + hex(sym.end) +
                         " without an adjacent range of the same "
                         "function");
            }
        }
    }
}

/** Run the decomposed passes back to back (the monolithic shape). */
void
runSerialRangePasses(ExeVerifier &v)
{
    for (auto &info : v.ranges)
        v.decodeRange(info, v.report);
    v.indexBoundaries();
    for (const auto &info : v.ranges)
        v.checkControlFlowRange(info, v.report);
}

void
ExeVerifier::checkAddrMap()
{
    // Function name -> its valid ranges, sorted by address.
    std::unordered_map<std::string, std::vector<const RangeInfo *>>
        fn_ranges;
    for (const auto &info : ranges) {
        if (info.valid)
            fn_ranges[info.sym->parentFunction].push_back(&info);
    }

    // Block start address -> (function, bbId), for successor checks.
    std::unordered_map<uint64_t, std::pair<const ExecFuncMap *, uint32_t>>
        block_at;
    for (const auto &map : exe.bbAddrMap) {
        for (const auto &block : map.blocks) {
            if (block.size > 0)
                block_at.emplace(block.address,
                                 std::make_pair(&map, block.bbId));
        }
    }

    for (const auto &map : exe.bbAddrMap) {
        auto fit = fn_ranges.find(map.function);
        if (fit == fn_ranges.end()) {
            diag(CheckId::PV009, Severity::Error, map.function, 0,
                 "address map for function without any symbol range");
            continue;
        }
        const std::vector<const RangeInfo *> &fn_rs = fit->second;

        // Assign each block to the range containing it; a zero-size
        // block (everything in it was relaxed away) may sit exactly at
        // its range's end.
        std::unordered_map<const RangeInfo *, std::vector<const ExecBlock *>>
            per_range;
        for (const auto &block : map.blocks) {
            const RangeInfo *owner = nullptr;
            for (const RangeInfo *r : fn_rs) {
                if (block.address >= r->sym->start &&
                    (block.address < r->sym->end ||
                     (block.size == 0 && block.address == r->sym->end))) {
                    owner = r;
                    break;
                }
            }
            if (!owner) {
                diag(CheckId::PV009, Severity::Error, map.function,
                     block.address,
                     "block bb" + std::to_string(block.bbId) + " at " +
                         hex(block.address) +
                         " lies outside every range of its function");
                continue;
            }
            if (owner->decoded && !boundaries.count(block.address) &&
                !(block.size == 0 && block.address == owner->sym->end)) {
                diag(CheckId::PV009, Severity::Error, map.function,
                     block.address,
                     "block bb" + std::to_string(block.bbId) + " at " +
                         hex(block.address) +
                         " is not at an instruction boundary");
            }
            per_range[owner].push_back(&block);
        }

        // Tiling: within each range the assigned blocks must cover it
        // exactly, in address order, with no gaps or overlaps.
        for (const RangeInfo *r : fn_rs) {
            auto pit = per_range.find(r);
            if (pit == per_range.end())
                continue;
            std::vector<const ExecBlock *> &blocks = pit->second;
            std::stable_sort(blocks.begin(), blocks.end(),
                             [](const ExecBlock *a, const ExecBlock *b) {
                                 return a->address < b->address;
                             });
            uint64_t cursor = r->sym->start;
            for (const ExecBlock *block : blocks) {
                // A landing-pad section begins with a nop prefix so the
                // pad lands at a nonzero offset (codegen, paper 4.5):
                // tolerate a nop-only gap before the range's first block.
                if (block == blocks.front() && block->address > cursor) {
                    bool all_nops = true;
                    for (uint64_t a = cursor; a < block->address; ++a)
                        all_nops =
                            all_nops &&
                            exe.text[a - exe.textBase] ==
                                static_cast<uint8_t>(isa::Opcode::Nop);
                    if (all_nops)
                        cursor = block->address;
                }
                if (block->address != cursor) {
                    diag(CheckId::PV010, Severity::Error, map.function,
                         block->address,
                         "block bb" + std::to_string(block->bbId) +
                             " at " + hex(block->address) +
                             (block->address > cursor
                                  ? " leaves a gap from "
                                  : " overlaps back to ") +
                             hex(cursor) + " in '" + r->sym->name + "'");
                }
                cursor = block->address + block->size;
            }
            if (cursor != r->sym->end) {
                diag(CheckId::PV010, Severity::Error, map.function,
                     cursor,
                     "blocks of '" + r->sym->name + "' end at " +
                         hex(cursor) + ", range ends at " +
                         hex(r->sym->end));
            }
        }

        // Successor cross-check (v2 metadata only): the decoded
        // terminator of each block must transfer to blocks the compiler
        // declared as successors.
        bool has_v2 = map.functionHash != 0;
        for (const auto &block : map.blocks)
            has_v2 = has_v2 || block.hash != 0;
        if (!has_v2)
            continue;
        std::unordered_map<uint32_t, uint64_t> addr_of;
        for (const auto &block : map.blocks)
            addr_of.emplace(block.bbId, block.address);
        for (const auto &block : map.blocks) {
            if (block.size == 0 || block.succs.empty())
                continue;
            const RangeInfo *owner = ownerOf(block.address);
            if (!owner || !owner->decoded)
                continue;
            uint64_t block_end = block.address + block.size;
            // Last instruction starting inside [address, end).
            const bolt::BoltInst *last = nullptr;
            for (const auto &bi : owner->dis.insts) {
                if (bi.addr >= block_end)
                    break;
                if (bi.addr >= block.address)
                    last = &bi;
            }
            if (!last)
                continue;

            auto check_edge = [&](uint64_t target, const char *what) {
                auto bit = block_at.find(target);
                // Transfers out of this function's blocks are judged by
                // the control-flow checks, not the successor list.
                if (bit == block_at.end() || bit->second.first != &map)
                    return;
                // Match successors by address, not id: a declared
                // successor relaxed down to zero bytes sits at the same
                // address as the block physically reached through it.
                for (uint32_t s : block.succs)
                    if (addr_of.count(s) && addr_of.at(s) == target)
                        return;
                {
                    diag(CheckId::PV006, Severity::Error, map.function,
                         last->addr,
                         std::string(what) + " of bb" +
                             std::to_string(block.bbId) + " reaches bb" +
                             std::to_string(bit->second.second) +
                             " at " + hex(target) +
                             ", which is not a declared successor");
                }
            };

            const isa::Instruction &inst = last->inst;
            uint64_t inst_end = last->addr + inst.size();
            if (inst.isCondBranch() || inst.isUncondBranch()) {
                check_edge(inst_end + static_cast<int64_t>(inst.rel),
                           "branch");
            }
            if (!inst.endsStream())
                check_edge(inst_end, "fall-through");
        }
    }
}

void
ExeVerifier::checkEhFrame()
{
    if (exe.frames.empty())
        return; // Rewritten binary without regenerated unwind metadata.

    std::unordered_map<std::string, const linker::FrameCoverage *> by_sym;
    for (const auto &frame : exe.frames) {
        if (!by_sym.emplace(frame.sectionSymbol, &frame).second) {
            diag(CheckId::PV011, Severity::Error, frame.sectionSymbol,
                 frame.start,
                 "duplicate unwind coverage for symbol '" +
                     frame.sectionSymbol + "'");
        }
        if (!rangeByName.count(frame.sectionSymbol)) {
            diag(CheckId::PV011, Severity::Error, frame.sectionSymbol,
                 frame.start,
                 "unwind coverage for unknown symbol '" +
                     frame.sectionSymbol + "'");
        }
    }
    for (const auto &info : ranges) {
        if (!info.valid)
            continue;
        const FuncRange &sym = *info.sym;
        auto it = by_sym.find(sym.name);
        if (it == by_sym.end()) {
            diag(CheckId::PV011, Severity::Error, sym.parentFunction,
                 sym.start,
                 "symbol '" + sym.name + "' [" + hex(sym.start) + ", " +
                     hex(sym.end) + ") has no unwind coverage");
            continue;
        }
        if (it->second->start != sym.start || it->second->end != sym.end) {
            diag(CheckId::PV011, Severity::Error, sym.parentFunction,
                 sym.start,
                 "unwind coverage [" + hex(it->second->start) + ", " +
                     hex(it->second->end) + ") does not match symbol '" +
                     sym.name + "' [" + hex(sym.start) + ", " +
                     hex(sym.end) + ")");
        }
    }
}

void
ExeVerifier::checkIntegrity()
{
    for (const auto &check : exe.integrityChecks) {
        const FuncRange *primary = nullptr;
        for (const auto &sym : exe.symbols) {
            if (sym.parentFunction == check.function && sym.isPrimary)
                primary = &sym;
        }
        if (!primary || primary->start >= primary->end ||
            !exe.containsText(primary->start) ||
            primary->end > exe.textEnd()) {
            continue; // PV001/PV003 cover missing or bogus ranges.
        }
        uint64_t actual =
            fnv1a(exe.text.data() + (primary->start - exe.textBase),
                  primary->end - primary->start);
        if (actual != check.expectedHash) {
            diag(CheckId::PV012, Severity::Error, check.function,
                 primary->start,
                 "startup integrity hash mismatch: baked-in " +
                     hex(check.expectedHash) + ", code hashes to " +
                     hex(actual) + " — this binary aborts at startup");
        }
    }
}

void
ExeVerifier::checkSymbolOrder()
{
    if (!opts.expectedOrder)
        return;
    const FuncRange *prev = nullptr;
    for (const auto &name : opts.expectedOrder->symbolOrder) {
        auto it = rangeByName.find(name);
        if (it == rangeByName.end())
            continue; // PV014 lints unknown names pre-link.
        const FuncRange *cur = it->second;
        if (opts.exemptFunctions.count(cur->parentFunction))
            continue; // Deliberately degraded to input order upstream.
        if (prev && cur->start <= prev->start) {
            diag(CheckId::PV015, Severity::Error, cur->parentFunction,
                 cur->start,
                 "symbol '" + cur->name + "' at " + hex(cur->start) +
                     " is ordered after '" + prev->name + "' at " +
                     hex(prev->start) +
                     " but the profile ordering places it later");
        }
        prev = cur;
    }
}

} // namespace

void
VerifyReport::merge(const VerifyReport &other)
{
    for (const auto &d : other.engine.diagnostics())
        engine.report(d.id, d.severity, d.function, d.address, d.message);
    functionsChecked += other.functionsChecked;
    rangesDecoded += other.rangesDecoded;
    handAsmSkipped += other.handAsmSkipped;
    instructionsDecoded += other.instructionsDecoded;
    bytesVerified += other.bytesVerified;
}

VerifyReport
verifyExecutable(const Executable &exe, const VerifyOptions &opts)
{
    VerifyReport report;
    report.engine.parseSuppressions(opts.suppress);

    ExeVerifier v{exe, opts, report, {}, {}, {}, {}};
    v.checkSymbols();
    v.checkEntry();
    runSerialRangePasses(v);
    if (opts.checkAddrMap)
        v.checkAddrMap();
    if (opts.checkEhFrame)
        v.checkEhFrame();
    if (opts.checkIntegrity)
        v.checkIntegrity();
    v.checkSymbolOrder();
    return report;
}

struct ExecutableVerifier::Impl
{
    VerifyReport main;
    ExeVerifier v;
    std::vector<VerifyReport> decodeSlots;
    std::vector<VerifyReport> checkSlots;

    Impl(const Executable &exe, const VerifyOptions &opts)
        : v{exe, opts, main, {}, {}, {}, {}}
    {
        main.engine.parseSuppressions(opts.suppress);
        v.checkSymbols();
        v.checkEntry();
        decodeSlots.resize(v.ranges.size());
        checkSlots.resize(v.ranges.size());
    }
};

ExecutableVerifier::ExecutableVerifier(const linker::Executable &exe,
                                       const VerifyOptions &opts)
    : impl_(std::make_unique<Impl>(exe, opts))
{
}

ExecutableVerifier::~ExecutableVerifier() = default;

size_t
ExecutableVerifier::rangeCount() const
{
    return impl_->v.ranges.size();
}

uint64_t
ExecutableVerifier::rangeBytes(size_t r) const
{
    const FuncRange &sym = *impl_->v.ranges[r].sym;
    return sym.end > sym.start ? sym.end - sym.start : 0;
}

void
ExecutableVerifier::decodeRange(size_t r)
{
    impl_->v.decodeRange(impl_->v.ranges[r], impl_->decodeSlots[r]);
}

void
ExecutableVerifier::buildIndex()
{
    impl_->v.indexBoundaries();
}

void
ExecutableVerifier::checkRange(size_t r)
{
    impl_->v.checkControlFlowRange(impl_->v.ranges[r],
                                   impl_->checkSlots[r]);
}

VerifyReport
ExecutableVerifier::finish()
{
    // Deterministic merge: per-range findings re-emit in range order
    // through the main engine (which owns the suppression set), exactly
    // matching the monolithic pass's diagnostic order.
    for (const auto &slot : impl_->decodeSlots)
        impl_->main.merge(slot);
    for (const auto &slot : impl_->checkSlots)
        impl_->main.merge(slot);
    if (impl_->v.opts.checkAddrMap)
        impl_->v.checkAddrMap();
    if (impl_->v.opts.checkEhFrame)
        impl_->v.checkEhFrame();
    if (impl_->v.opts.checkIntegrity)
        impl_->v.checkIntegrity();
    impl_->v.checkSymbolOrder();
    return std::move(impl_->main);
}

VerifyReport
lintDirectives(const core::CcProfile &cc, const core::LdProfile &ld,
               const Executable &metadata_exe, const VerifyOptions &opts)
{
    VerifyReport report;
    report.engine.parseSuppressions(opts.suppress);
    auto diag = [&](CheckId id, const std::string &fn, std::string msg) {
        report.engine.report(id, Severity::Error, fn, 0, std::move(msg));
    };

    // Block universe per function, from the metadata binary's addr map
    // (identical to the IR universe codegen::sanitizeClusterMap uses).
    std::unordered_map<std::string, const ExecFuncMap *> map_of;
    for (const auto &map : metadata_exe.bbAddrMap)
        map_of.emplace(map.function, &map);

    // ---- cc_prof (PV013): mirror sanitizeClusterMap exactly ------------
    for (const auto &[fn_name, spec] : cc.clusters) {
        ++report.functionsChecked;
        auto mit = map_of.find(fn_name);
        if (mit == map_of.end()) {
            diag(CheckId::PV013, fn_name,
                 "cluster directive for unknown function");
            continue;
        }
        const ExecFuncMap &map = *mit->second;
        if (spec.clusters.empty() || spec.clusters[0].empty()) {
            diag(CheckId::PV013, fn_name,
                 "cluster directive with an empty primary cluster");
            continue;
        }
        if (spec.coldIndex >= static_cast<int>(spec.clusters.size())) {
            diag(CheckId::PV013, fn_name,
                 "cold cluster index " + std::to_string(spec.coldIndex) +
                     " out of range (only " +
                     std::to_string(spec.clusters.size()) + " clusters)");
        }
        std::unordered_set<uint32_t> universe;
        for (const auto &block : map.blocks)
            universe.insert(block.bbId);
        if (!map.blocks.empty() &&
            spec.clusters[0][0] != map.blocks[0].bbId) {
            diag(CheckId::PV013, fn_name,
                 "primary cluster starts with bb" +
                     std::to_string(spec.clusters[0][0]) +
                     " instead of the entry block bb" +
                     std::to_string(map.blocks[0].bbId));
        }
        std::unordered_set<uint32_t> seen;
        size_t listed = 0;
        for (const auto &cluster : spec.clusters) {
            for (uint32_t id : cluster) {
                if (!universe.count(id)) {
                    diag(CheckId::PV013, fn_name,
                         "cluster references unknown block bb" +
                             std::to_string(id));
                } else if (!seen.insert(id).second) {
                    diag(CheckId::PV013, fn_name,
                         "block bb" + std::to_string(id) +
                             " appears in more than one cluster");
                } else {
                    ++listed;
                }
            }
        }
        if (listed < universe.size()) {
            diag(CheckId::PV013, fn_name,
                 "clusters cover " + std::to_string(listed) + " of " +
                     std::to_string(universe.size()) +
                     " blocks (missing blocks would be dropped)");
        }
    }

    // ---- ld_prof (PV014) -----------------------------------------------
    std::unordered_set<std::string> functions;
    for (const auto &sym : metadata_exe.symbols)
        functions.insert(sym.parentFunction);

    std::unordered_set<std::string> seen_symbols;
    for (const auto &name : ld.symbolOrder) {
        if (!seen_symbols.insert(name).second) {
            diag(CheckId::PV014, name,
                 "symbol listed more than once in the ordering");
            continue;
        }
        // Derive "fn" / "fn.cold" / "fn.N" back to the base function.
        std::string base = name;
        int cluster_index = -1;
        bool is_cold = false;
        size_t dot = name.find_last_of('.');
        if (dot != std::string::npos && dot + 1 < name.size()) {
            std::string suffix = name.substr(dot + 1);
            if (suffix == "cold") {
                base = name.substr(0, dot);
                is_cold = true;
            } else if (suffix.find_first_not_of("0123456789") ==
                       std::string::npos) {
                base = name.substr(0, dot);
                cluster_index = std::stoi(suffix);
            }
        }
        if (!functions.count(base)) {
            diag(CheckId::PV014, name,
                 "ordering references unknown function '" + base + "'");
            continue;
        }
        auto cit = cc.clusters.find(base);
        if (cluster_index >= 0 || is_cold) {
            if (cit == cc.clusters.end()) {
                diag(CheckId::PV014, name,
                     "cluster symbol without a cluster directive for '" +
                         base + "'");
            } else if (is_cold && cit->second.coldIndex < 0) {
                diag(CheckId::PV014, name,
                     "cold symbol but '" + base +
                         "' declares no cold cluster");
            } else if (cluster_index >= 0 &&
                       static_cast<size_t>(cluster_index) >=
                           cit->second.clusters.size()) {
                diag(CheckId::PV014, name,
                     "cluster index " + std::to_string(cluster_index) +
                         " out of range for '" + base + "' (" +
                         std::to_string(cit->second.clusters.size()) +
                         " clusters)");
            }
        }
    }
    return report;
}

VerifyReport
lintProfileFlow(const core::WholeProgramDcfg &dcfg,
                const VerifyOptions &opts)
{
    VerifyReport report;
    report.engine.parseSuppressions(opts.suppress);

    for (const auto &fn : dcfg.functions) {
        ++report.functionsChecked;
        std::vector<uint64_t> inflow(fn.nodes.size(), 0);
        std::vector<uint64_t> outflow(fn.nodes.size(), 0);
        std::vector<uint32_t> in_deg(fn.nodes.size(), 0);
        std::vector<uint32_t> out_deg(fn.nodes.size(), 0);
        for (const auto &edge : fn.edges) {
            if (edge.fromNode >= fn.nodes.size() ||
                edge.toNode >= fn.nodes.size())
                continue;
            outflow[edge.fromNode] += edge.weight;
            ++out_deg[edge.fromNode];
            inflow[edge.toNode] += edge.weight;
            ++in_deg[edge.toNode];
        }
        for (size_t n = 0; n < fn.nodes.size(); ++n) {
            if (n == fn.entryNode)
                continue; // Fed by calls, which are not intra-fn edges.
            if (fn.nodes[n].flags & elf::kBbLandingPad)
                continue; // Fed by unwinds.
            if (in_deg[n] == 0 || out_deg[n] == 0)
                continue; // Returns / partially sampled fringes.
            uint64_t hi = std::max(inflow[n], outflow[n]);
            uint64_t lo = std::min(inflow[n], outflow[n]);
            if (hi >= opts.flowMinWeight &&
                static_cast<double>(hi) >
                    opts.flowTolerance * static_cast<double>(lo)) {
                report.engine.report(
                    CheckId::PV016, Severity::Warning, fn.function, 0,
                    "bb" + std::to_string(fn.nodes[n].bbId) +
                        ": in-flow " + std::to_string(inflow[n]) +
                        " vs out-flow " + std::to_string(outflow[n]) +
                        " exceeds the conservation tolerance");
            }
        }
    }
    return report;
}

} // namespace propeller::analysis
