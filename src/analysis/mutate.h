#ifndef PROPELLER_ANALYSIS_MUTATE_H
#define PROPELLER_ANALYSIS_MUTATE_H

/**
 * @file
 * Seeded defect injection for mutation-testing the static verifier.
 *
 * Each DefectClass models one way a buggy relinker (or a bit flip the
 * fault-tolerance layer missed) could corrupt a shipped binary or its
 * Phase 3 artifacts, keyed to the single PV0xx check that *must* catch
 * it.  bench_verify injects every class at several seeds and gates CI on
 * 100% detection — the verifier's own test oracle, in the spirit of
 * src/faultinject (which mutation-tests the *pipeline*'s fault paths;
 * this harness mutation-tests the *checker*).
 *
 * All site selection is keyed-RNG deterministic: the same (class, seed)
 * over the same inputs always mutates the same site.
 */

#include <cstdint>
#include <string>

#include "analysis/diagnostics.h"
#include "linker/executable.h"
#include "propeller/dcfg.h"
#include "propeller/directives.h"

namespace propeller::analysis {

/** One seedable defect class; see expectedCheck() for the PV pairing. */
enum class DefectClass : uint8_t {
    BranchDisplacement,  ///< Branch retargeted off any boundary (PV005).
    SwappedFallThrough,  ///< Terminator sent to a non-successor (PV006).
    AddrMapAddress,      ///< Addr-map block address skew (PV009).
    AddrMapSize,         ///< Addr-map block size skew (PV010).
    EhFrameGap,          ///< One FDE's coverage dropped (PV011).
    OverlappingCode,     ///< Symbol range grown over its neighbor (PV002).
    BadClusterDirective, ///< cc_prof duplicate/missing/unknown (PV013).
    BadOrderDirective,   ///< ld_prof references a phantom symbol (PV014).
    BadSymbolOrder,      ///< ld_prof entries swapped post-link (PV015).
    EmbeddedData,        ///< Invalid opcode byte planted in code (PV004).
    TruncatedFunction,   ///< Symbol end cut mid-instruction (PV004).
    EntrySkew,           ///< Entry address nudged off entry (PV003).
    IntegritySkew,       ///< Startup integrity hash corrupted (PV012).
    FlowAnomaly,         ///< One DCFG edge weight blown up (PV016).
};

/** Number of defect classes (they are dense from 0). */
constexpr size_t kDefectClassCount = 14;

/** Stable name for reports ("branch-displacement", ...). */
const char *defectName(DefectClass cls);

/** The check id that must fire when this class is injected. */
CheckId expectedCheck(DefectClass cls);

/** All classes, for sweeping. */
const DefectClass *allDefectClasses();

/**
 * The mutable pipeline products a defect can land in.  Classes touching
 * a null target report "no eligible site".
 */
struct MutationTarget
{
    linker::Executable *exe = nullptr;
    core::CcProfile *cc = nullptr;
    core::LdProfile *ld = nullptr;
    core::WholeProgramDcfg *dcfg = nullptr;
};

/**
 * Inject one @p cls defect at a @p seed -keyed site into @p target.
 * @return a description of the mutated site, or "" when the target has
 *         no eligible site for this class (nothing was modified).
 */
std::string injectDefect(DefectClass cls, uint64_t seed,
                         const MutationTarget &target);

} // namespace propeller::analysis

#endif // PROPELLER_ANALYSIS_MUTATE_H
