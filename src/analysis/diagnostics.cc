#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace propeller::analysis {

namespace {

struct CheckInfo
{
    CheckId id;
    const char *name;
    const char *title;
};

constexpr CheckInfo kChecks[] = {
    {CheckId::PV001, "PV001", "symbol range outside the text image"},
    {CheckId::PV002, "PV002", "overlapping symbol ranges"},
    {CheckId::PV003, "PV003", "entry address is not a function entry"},
    {CheckId::PV004, "PV004", "disassembly failure in non-asm code"},
    {CheckId::PV005, "PV005", "branch target off instruction boundary"},
    {CheckId::PV006, "PV006", "terminator disagrees with successor list"},
    {CheckId::PV007, "PV007", "fall-through escapes the owning function"},
    {CheckId::PV008, "PV008", "call target is not a function entry"},
    {CheckId::PV009, "PV009", "addr-map block off instruction boundary"},
    {CheckId::PV010, "PV010", "addr-map blocks do not tile their range"},
    {CheckId::PV011, "PV011", "eh_frame coverage gap"},
    {CheckId::PV012, "PV012", "integrity-check hash mismatch"},
    {CheckId::PV013, "PV013", "invalid cluster directive"},
    {CheckId::PV014, "PV014", "invalid symbol-order directive"},
    {CheckId::PV015, "PV015", "layout does not honor the symbol order"},
    {CheckId::PV016, "PV016", "profile flow-conservation anomaly"},
};

const CheckInfo *
infoOf(CheckId id)
{
    for (const auto &info : kChecks) {
        if (info.id == id)
            return &info;
    }
    return nullptr;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    out += '"';
}

std::string
hex(uint64_t value)
{
    char buf[32];
    snprintf(buf, sizeof buf, "0x%llx",
             static_cast<unsigned long long>(value));
    return buf;
}

} // namespace

const char *
checkName(CheckId id)
{
    const CheckInfo *info = infoOf(id);
    return info ? info->name : "PV???";
}

const char *
checkTitle(CheckId id)
{
    const CheckInfo *info = infoOf(id);
    return info ? info->title : "unknown check";
}

bool
parseCheckId(const std::string &name, CheckId &out)
{
    for (const auto &info : kChecks) {
        if (name == info.name) {
            out = info.id;
            return true;
        }
    }
    return false;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "error";
}

std::string
Diagnostic::render() const
{
    std::string out = severityName(severity);
    out += '[';
    out += checkName(id);
    out += "] ";
    if (!function.empty()) {
        out += function;
        if (address != 0)
            out += '@' + hex(address);
        out += ": ";
    } else if (address != 0) {
        out += hex(address) + ": ";
    }
    out += message;
    return out;
}

void
DiagnosticEngine::suppress(CheckId id)
{
    suppressMask_ |= 1ull << (static_cast<uint16_t>(id) - 1);
}

bool
DiagnosticEngine::parseSuppressions(const std::string &csv)
{
    bool all_known = true;
    size_t pos = 0;
    while (pos <= csv.size()) {
        size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string token = csv.substr(pos, comma - pos);
        // Trim surrounding spaces.
        size_t first = token.find_first_not_of(' ');
        size_t last = token.find_last_not_of(' ');
        if (first != std::string::npos)
            token = token.substr(first, last - first + 1);
        else
            token.clear();
        if (!token.empty()) {
            CheckId id;
            if (parseCheckId(token, id))
                suppress(id);
            else
                all_known = false;
        }
        pos = comma + 1;
    }
    return all_known;
}

void
DiagnosticEngine::report(CheckId id, Severity severity,
                         std::string function, uint64_t address,
                         std::string message)
{
    if (suppressMask_ & (1ull << (static_cast<uint16_t>(id) - 1))) {
        ++suppressed_;
        return;
    }
    switch (severity) {
      case Severity::Note:
        ++notes_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      case Severity::Error:
        ++errors_;
        break;
    }
    diags_.push_back(Diagnostic{id, severity, std::move(function), address,
                                std::move(message)});
}

std::vector<std::string>
DiagnosticEngine::affectedFunctions() const
{
    std::set<std::string> names;
    for (const auto &d : diags_) {
        if (!d.function.empty())
            names.insert(d.function);
    }
    return {names.begin(), names.end()};
}

std::string
DiagnosticEngine::renderText() const
{
    std::string out;
    for (const auto &d : diags_) {
        out += d.render();
        out += '\n';
    }
    out += "verify: " + std::to_string(errors_) + " error(s), " +
           std::to_string(warnings_) + " warning(s), " +
           std::to_string(notes_) + " note(s)";
    if (suppressed_ != 0)
        out += ", " + std::to_string(suppressed_) + " suppressed";
    out += '\n';
    return out;
}

std::string
DiagnosticEngine::renderJson() const
{
    std::string out = "{\n";
    out += "  \"errors\": " + std::to_string(errors_) + ",\n";
    out += "  \"warnings\": " + std::to_string(warnings_) + ",\n";
    out += "  \"notes\": " + std::to_string(notes_) + ",\n";
    out += "  \"suppressed\": " + std::to_string(suppressed_) + ",\n";
    out += "  \"diagnostics\": [";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"id\": ";
        appendJsonString(out, checkName(d.id));
        out += ", \"severity\": ";
        appendJsonString(out, severityName(d.severity));
        out += ", \"function\": ";
        appendJsonString(out, d.function);
        out += ", \"address\": " + std::to_string(d.address);
        out += ", \"message\": ";
        appendJsonString(out, d.message);
        out += '}';
    }
    out += diags_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace propeller::analysis
