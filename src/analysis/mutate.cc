#include "analysis/mutate.h"

#include "analysis/verifier.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "bolt/disassembler.h"
#include "elf/bb_addr_map.h"
#include "support/rng.h"

namespace propeller::analysis {

using linker::Executable;
using linker::FuncRange;

namespace {

constexpr DefectClass kAllClasses[kDefectClassCount] = {
    DefectClass::BranchDisplacement, DefectClass::SwappedFallThrough,
    DefectClass::AddrMapAddress,     DefectClass::AddrMapSize,
    DefectClass::EhFrameGap,         DefectClass::OverlappingCode,
    DefectClass::BadClusterDirective, DefectClass::BadOrderDirective,
    DefectClass::BadSymbolOrder,     DefectClass::EmbeddedData,
    DefectClass::TruncatedFunction,  DefectClass::EntrySkew,
    DefectClass::IntegritySkew,      DefectClass::FlowAnomaly,
};

std::string
hex(uint64_t value)
{
    char buf[32];
    snprintf(buf, sizeof buf, "0x%llx",
             static_cast<unsigned long long>(value));
    return buf;
}

/** Overwrite the encoding of @p inst at @p addr inside the text image. */
void
patchInstruction(Executable &exe, uint64_t addr,
                 const isa::Instruction &inst)
{
    std::vector<uint8_t> bytes;
    inst.encode(bytes);
    std::copy(bytes.begin(), bytes.end(),
              exe.text.begin() + (addr - exe.textBase));
}

/** All decodable (non-hand-asm, in-image) ranges with their code. */
struct DecodedRange
{
    FuncRange *sym;
    bolt::RangeDisassembly dis;
};

std::vector<DecodedRange>
decodeRanges(Executable &exe)
{
    std::vector<DecodedRange> out;
    for (auto &sym : exe.symbols) {
        if (sym.isHandAsm || sym.start >= sym.end ||
            !exe.containsText(sym.start) || sym.end > exe.textEnd())
            continue;
        bolt::RangeDisassembly dis =
            bolt::disassembleRange(exe, sym.start, sym.end);
        if (dis.ok())
            out.push_back(DecodedRange{&sym, std::move(dis)});
    }
    return out;
}

std::unordered_set<uint64_t>
boundarySet(const std::vector<DecodedRange> &ranges)
{
    std::unordered_set<uint64_t> boundaries;
    for (const auto &r : ranges) {
        for (const auto &bi : r.dis.insts)
            boundaries.insert(bi.addr);
    }
    return boundaries;
}

std::string
injectBranchDisplacement(Executable &exe, Rng &rng)
{
    std::vector<DecodedRange> ranges = decodeRanges(exe);
    struct Site
    {
        uint64_t addr;
        isa::Instruction inst;
        std::string function;
    };
    std::vector<Site> sites;
    for (const auto &r : ranges) {
        for (const auto &bi : r.dis.insts) {
            if (bi.inst.isCondBranch() || bi.inst.isUncondBranch())
                sites.push_back({bi.addr, bi.inst, r.sym->parentFunction});
        }
    }
    if (sites.empty())
        return "";
    Site site = sites[rng.below(sites.size())];
    // Point the branch one byte into its own encoding: never an
    // instruction boundary, always inside the owning function.
    site.inst.rel =
        1 - static_cast<int32_t>(site.inst.size());
    patchInstruction(exe, site.addr, site.inst);
    return "branch at " + hex(site.addr) + " in " + site.function +
           " retargeted to " + hex(site.addr + 1);
}

std::string
injectSwappedFallThrough(Executable &exe, Rng &rng)
{
    std::vector<DecodedRange> ranges = decodeRanges(exe);
    struct Site
    {
        uint64_t instAddr;
        isa::Instruction inst;
        uint64_t newTarget;
        uint32_t fromBb, toBb;
        std::string function;
    };
    std::vector<Site> sites;
    for (const auto &map : exe.bbAddrMap) {
        bool has_v2 = map.functionHash != 0;
        for (const auto &block : map.blocks)
            has_v2 = has_v2 || block.hash != 0;
        if (!has_v2)
            continue;
        for (const auto &block : map.blocks) {
            if (block.size == 0 || block.succs.empty())
                continue;
            const DecodedRange *owner = nullptr;
            for (const auto &r : ranges) {
                if (block.address >= r.sym->start &&
                    block.address < r.sym->end)
                    owner = &r;
            }
            if (!owner)
                continue;
            const bolt::BoltInst *last = nullptr;
            for (const auto &bi : owner->dis.insts) {
                if (bi.addr >= block.address + block.size)
                    break;
                if (bi.addr >= block.address)
                    last = &bi;
            }
            if (!last || (!last->inst.isCondBranch() &&
                          !last->inst.isUncondBranch()))
                continue;
            // The verifier matches successors by address (zero-size
            // successors alias the next block), so exclude victims at
            // any declared successor's address, not just by id.
            std::unordered_set<uint64_t> succ_addrs;
            for (uint32_t s : block.succs)
                for (const auto &b2 : map.blocks)
                    if (b2.bbId == s)
                        succ_addrs.insert(b2.address);
            uint64_t inst_end = last->addr + last->inst.size();
            uint64_t old_target =
                inst_end + static_cast<int64_t>(last->inst.rel);
            for (const auto &victim : map.blocks) {
                if (victim.size == 0 ||
                    succ_addrs.count(victim.address) ||
                    victim.address == old_target)
                    continue;
                int64_t rel = static_cast<int64_t>(victim.address) -
                              static_cast<int64_t>(inst_end);
                bool short_form =
                    last->inst.op == isa::Opcode::JmpShort ||
                    last->inst.op == isa::Opcode::JccShort;
                if (short_form && !isa::fitsRel8(rel))
                    continue;
                sites.push_back({last->addr, last->inst, victim.address,
                                 block.bbId, victim.bbId, map.function});
            }
        }
    }
    if (sites.empty())
        return "";
    Site site = sites[rng.below(sites.size())];
    site.inst.rel = static_cast<int32_t>(
        static_cast<int64_t>(site.newTarget) -
        static_cast<int64_t>(site.instAddr + site.inst.size()));
    patchInstruction(exe, site.instAddr, site.inst);
    return "terminator of bb" + std::to_string(site.fromBb) + " in " +
           site.function + " swapped to non-successor bb" +
           std::to_string(site.toBb);
}

std::string
injectAddrMapAddress(Executable &exe, Rng &rng)
{
    std::unordered_set<uint64_t> boundaries =
        boundarySet(decodeRanges(exe));
    struct Site
    {
        linker::ExecBlock *block;
        uint64_t delta;
        std::string function;
    };
    std::vector<Site> sites;
    for (auto &map : exe.bbAddrMap) {
        for (auto &block : map.blocks) {
            if (block.size == 0)
                continue;
            for (uint64_t delta = 1; delta <= 3; ++delta) {
                if (!boundaries.count(block.address + delta)) {
                    sites.push_back({&block, delta, map.function});
                    break;
                }
            }
        }
    }
    if (sites.empty())
        return "";
    const Site &site = sites[rng.below(sites.size())];
    site.block->address += site.delta;
    return "addr-map bb" + std::to_string(site.block->bbId) + " of " +
           site.function + " skewed by +" + std::to_string(site.delta) +
           " to " + hex(site.block->address);
}

std::string
injectAddrMapSize(Executable &exe, Rng &rng)
{
    struct Site
    {
        linker::ExecBlock *block;
        std::string function;
    };
    std::vector<Site> sites;
    for (auto &map : exe.bbAddrMap) {
        for (auto &block : map.blocks)
            sites.push_back({&block, map.function});
    }
    if (sites.empty())
        return "";
    const Site &site = sites[rng.below(sites.size())];
    uint32_t delta = 1 + static_cast<uint32_t>(rng.below(3));
    site.block->size += delta;
    return "addr-map bb" + std::to_string(site.block->bbId) + " of " +
           site.function + " grown by " + std::to_string(delta) +
           " bytes";
}

std::string
injectEhFrameGap(Executable &exe, Rng &rng)
{
    if (exe.frames.empty())
        return "";
    size_t idx = rng.below(exe.frames.size());
    std::string victim = exe.frames[idx].sectionSymbol;
    exe.frames.erase(exe.frames.begin() + idx);
    return "unwind coverage for '" + victim + "' dropped";
}

std::string
injectOverlappingCode(Executable &exe, Rng &rng)
{
    std::vector<FuncRange *> sorted;
    for (auto &sym : exe.symbols) {
        if (sym.start < sym.end && exe.containsText(sym.start) &&
            sym.end <= exe.textEnd())
            sorted.push_back(&sym);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const FuncRange *a, const FuncRange *b) {
                  return a->start < b->start;
              });
    if (sorted.size() < 2)
        return "";
    size_t i = rng.below(sorted.size() - 1);
    FuncRange *cur = sorted[i];
    FuncRange *next = sorted[i + 1];
    uint64_t new_end =
        next->start + std::max<uint64_t>(1, (next->end - next->start) / 2);
    cur->end = new_end;
    return "symbol '" + cur->name + "' grown to " + hex(new_end) +
           ", overlapping '" + next->name + "'";
}

std::string
injectBadClusterDirective(core::CcProfile &cc, Rng &rng)
{
    if (cc.clusters.empty())
        return "";
    auto it = cc.clusters.begin();
    std::advance(it, rng.below(cc.clusters.size()));
    codegen::ClusterSpec &spec = it->second;
    if (spec.clusters.empty() || spec.clusters[0].empty())
        return "";
    switch (rng.below(3)) {
      case 0:
        spec.clusters.back().push_back(spec.clusters[0][0]);
        return "cluster directive for " + it->first +
               ": entry block duplicated";
      case 1:
        spec.clusters.back().pop_back();
        return "cluster directive for " + it->first +
               ": last block dropped";
      default:
        spec.clusters.back().push_back(0xDEAD);
        return "cluster directive for " + it->first +
               ": unknown block bb57005 appended";
    }
}

std::string
injectBadOrderDirective(core::LdProfile &ld, Rng &rng)
{
    if (ld.symbolOrder.empty())
        return "";
    size_t idx = rng.below(ld.symbolOrder.size());
    std::string old = ld.symbolOrder[idx];
    ld.symbolOrder[idx] = "phantom_" + old;
    return "ordering entry '" + old + "' replaced with 'phantom_" + old +
           "'";
}

std::string
injectBadSymbolOrder(const Executable &exe, core::LdProfile &ld,
                     Rng &rng)
{
    size_t n = ld.symbolOrder.size();
    if (n < 2)
        return "";
    size_t start = rng.below(n - 1);
    for (size_t k = 0; k < n - 1; ++k) {
        size_t i = (start + k) % (n - 1);
        const std::string &a = ld.symbolOrder[i];
        const std::string &b = ld.symbolOrder[i + 1];
        const FuncRange *ra = exe.findSymbol(a);
        const FuncRange *rb = exe.findSymbol(b);
        if (!ra || !rb || ra->start == rb->start)
            continue;
        std::swap(ld.symbolOrder[i], ld.symbolOrder[i + 1]);
        return "ordering entries '" + b + "' and '" + a + "' swapped";
    }
    return "";
}

std::string
injectEmbeddedData(Executable &exe, Rng &rng)
{
    std::vector<DecodedRange> ranges = decodeRanges(exe);
    struct Site
    {
        uint64_t addr;
        std::string symbol;
    };
    std::vector<Site> sites;
    for (const auto &r : ranges) {
        for (size_t i = 1; i < r.dis.insts.size(); ++i)
            sites.push_back({r.dis.insts[i].addr, r.sym->name});
    }
    if (sites.empty())
        return "";
    const Site &site = sites[rng.below(sites.size())];
    exe.text[site.addr - exe.textBase] = 0x00; // Not a defined opcode.
    return "embedded-data byte planted at " + hex(site.addr) + " in '" +
           site.symbol + "'";
}

std::string
injectTruncatedFunction(Executable &exe, Rng &rng)
{
    std::vector<DecodedRange> ranges = decodeRanges(exe);
    struct Site
    {
        FuncRange *sym;
        uint64_t cutAt;
    };
    std::vector<Site> sites;
    for (auto &r : ranges) {
        const bolt::BoltInst *last_wide = nullptr;
        for (const auto &bi : r.dis.insts) {
            if (bi.inst.size() >= 2)
                last_wide = &bi;
        }
        if (last_wide)
            sites.push_back({r.sym, last_wide->addr + 1});
    }
    if (sites.empty())
        return "";
    const Site &site = sites[rng.below(sites.size())];
    site.sym->end = site.cutAt;
    return "symbol '" + site.sym->name + "' truncated mid-instruction at " +
           hex(site.cutAt);
}

std::string
injectEntrySkew(Executable &exe, Rng &rng)
{
    std::unordered_set<uint64_t> primary_starts;
    for (const auto &sym : exe.symbols) {
        if (sym.isPrimary)
            primary_starts.insert(sym.start);
    }
    uint64_t base_delta = 1 + rng.below(7);
    for (uint64_t k = 0; k < 16; ++k) {
        uint64_t delta = base_delta + k;
        if (!primary_starts.count(exe.entryAddress + delta)) {
            exe.entryAddress += delta;
            return "entry address skewed by +" + std::to_string(delta) +
                   " to " + hex(exe.entryAddress);
        }
    }
    return "";
}

std::string
injectIntegritySkew(Executable &exe, Rng &rng)
{
    if (exe.integrityChecks.empty())
        return "";
    auto &check =
        exe.integrityChecks[rng.below(exe.integrityChecks.size())];
    check.expectedHash ^= rng.next() | 1;
    return "integrity hash for " + check.function + " corrupted";
}

std::string
injectFlowAnomaly(core::WholeProgramDcfg &dcfg, Rng &rng,
                  double tolerance, uint64_t min_weight)
{
    struct Site
    {
        core::FunctionDcfg *fn;
        size_t edge;
    };
    std::vector<Site> sites;
    for (auto &fn : dcfg.functions) {
        std::vector<uint64_t> inflow(fn.nodes.size(), 0);
        std::vector<uint64_t> outflow(fn.nodes.size(), 0);
        std::vector<uint32_t> out_deg(fn.nodes.size(), 0);
        for (const auto &edge : fn.edges) {
            if (edge.fromNode >= fn.nodes.size() ||
                edge.toNode >= fn.nodes.size())
                continue;
            outflow[edge.fromNode] += edge.weight;
            ++out_deg[edge.fromNode];
            inflow[edge.toNode] += edge.weight;
        }
        for (size_t e = 0; e < fn.edges.size(); ++e) {
            const core::DcfgEdge &edge = fn.edges[e];
            uint32_t to = edge.toNode;
            // Self-loops inflate both sides of the node's balance, so
            // they can never trip the conservation predicate.
            if (to >= fn.nodes.size() || to == fn.entryNode ||
                edge.fromNode == to ||
                (fn.nodes[to].flags & elf::kBbLandingPad) ||
                out_deg[to] == 0 || edge.weight == 0)
                continue;
            // Will the ×100 blow-up provably trip the conservation
            // check?  Mirror lintProfileFlow's predicate exactly.
            uint64_t in_new = inflow[to] + 99 * edge.weight;
            uint64_t hi = std::max(in_new, outflow[to]);
            uint64_t lo = std::min(in_new, outflow[to]);
            if (hi >= min_weight &&
                static_cast<double>(hi) >
                    tolerance * static_cast<double>(lo))
                sites.push_back({&fn, e});
        }
    }
    if (sites.empty())
        return "";
    const Site &site = sites[rng.below(sites.size())];
    core::DcfgEdge &edge = site.fn->edges[site.edge];
    edge.weight *= 100;
    return "edge bb-node " + std::to_string(edge.fromNode) + "->" +
           std::to_string(edge.toNode) + " in " + site.fn->function +
           " inflated 100x";
}

} // namespace

const char *
defectName(DefectClass cls)
{
    switch (cls) {
      case DefectClass::BranchDisplacement:
        return "branch-displacement";
      case DefectClass::SwappedFallThrough:
        return "swapped-fall-through";
      case DefectClass::AddrMapAddress:
        return "addr-map-address-skew";
      case DefectClass::AddrMapSize:
        return "addr-map-size-skew";
      case DefectClass::EhFrameGap:
        return "eh-frame-gap";
      case DefectClass::OverlappingCode:
        return "overlapping-code";
      case DefectClass::BadClusterDirective:
        return "bad-cluster-directive";
      case DefectClass::BadOrderDirective:
        return "bad-order-directive";
      case DefectClass::BadSymbolOrder:
        return "bad-symbol-order";
      case DefectClass::EmbeddedData:
        return "embedded-data";
      case DefectClass::TruncatedFunction:
        return "truncated-function";
      case DefectClass::EntrySkew:
        return "entry-skew";
      case DefectClass::IntegritySkew:
        return "integrity-skew";
      case DefectClass::FlowAnomaly:
        return "flow-anomaly";
    }
    return "unknown";
}

CheckId
expectedCheck(DefectClass cls)
{
    switch (cls) {
      case DefectClass::BranchDisplacement:
        return CheckId::PV005;
      case DefectClass::SwappedFallThrough:
        return CheckId::PV006;
      case DefectClass::AddrMapAddress:
        return CheckId::PV009;
      case DefectClass::AddrMapSize:
        return CheckId::PV010;
      case DefectClass::EhFrameGap:
        return CheckId::PV011;
      case DefectClass::OverlappingCode:
        return CheckId::PV002;
      case DefectClass::BadClusterDirective:
        return CheckId::PV013;
      case DefectClass::BadOrderDirective:
        return CheckId::PV014;
      case DefectClass::BadSymbolOrder:
        return CheckId::PV015;
      case DefectClass::EmbeddedData:
        return CheckId::PV004;
      case DefectClass::TruncatedFunction:
        return CheckId::PV004;
      case DefectClass::EntrySkew:
        return CheckId::PV003;
      case DefectClass::IntegritySkew:
        return CheckId::PV012;
      case DefectClass::FlowAnomaly:
        return CheckId::PV016;
    }
    return CheckId::PV001;
}

const DefectClass *
allDefectClasses()
{
    return kAllClasses;
}

std::string
injectDefect(DefectClass cls, uint64_t seed, const MutationTarget &target)
{
    Rng rng(
        mix64(seed, static_cast<uint64_t>(cls) + 0x5eedull));
    switch (cls) {
      case DefectClass::BranchDisplacement:
        return target.exe ? injectBranchDisplacement(*target.exe, rng)
                          : "";
      case DefectClass::SwappedFallThrough:
        return target.exe ? injectSwappedFallThrough(*target.exe, rng)
                          : "";
      case DefectClass::AddrMapAddress:
        return target.exe ? injectAddrMapAddress(*target.exe, rng) : "";
      case DefectClass::AddrMapSize:
        return target.exe ? injectAddrMapSize(*target.exe, rng) : "";
      case DefectClass::EhFrameGap:
        return target.exe ? injectEhFrameGap(*target.exe, rng) : "";
      case DefectClass::OverlappingCode:
        return target.exe ? injectOverlappingCode(*target.exe, rng) : "";
      case DefectClass::BadClusterDirective:
        return target.cc ? injectBadClusterDirective(*target.cc, rng)
                         : "";
      case DefectClass::BadOrderDirective:
        return target.ld ? injectBadOrderDirective(*target.ld, rng) : "";
      case DefectClass::BadSymbolOrder:
        return target.exe && target.ld
                   ? injectBadSymbolOrder(*target.exe, *target.ld, rng)
                   : "";
      case DefectClass::EmbeddedData:
        return target.exe ? injectEmbeddedData(*target.exe, rng) : "";
      case DefectClass::TruncatedFunction:
        return target.exe ? injectTruncatedFunction(*target.exe, rng)
                          : "";
      case DefectClass::EntrySkew:
        return target.exe ? injectEntrySkew(*target.exe, rng) : "";
      case DefectClass::IntegritySkew:
        return target.exe ? injectIntegritySkew(*target.exe, rng) : "";
      case DefectClass::FlowAnomaly:
        return target.dcfg
                   ? injectFlowAnomaly(*target.dcfg, rng,
                                       VerifyOptions{}.flowTolerance,
                                       VerifyOptions{}.flowMinWeight)
                   : "";
    }
    return "";
}

} // namespace propeller::analysis
