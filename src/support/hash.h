#ifndef PROPELLER_SUPPORT_HASH_H
#define PROPELLER_SUPPORT_HASH_H

/**
 * @file
 * Content hashing for the distributed build cache.
 *
 * The build system substrate (src/build) keys artifacts by content hash,
 * mirroring the content-addressed caching the paper's distributed build
 * system relies on.  FNV-1a/64 is sufficient for our artifact counts and is
 * fully deterministic.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace propeller {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** FNV-1a over a byte range, chained from @p seed. */
inline uint64_t
fnv1a(const void *data, size_t len, uint64_t seed = kFnvOffset)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a over a string view. */
inline uint64_t
fnv1a(std::string_view s, uint64_t seed = kFnvOffset)
{
    return fnv1a(s.data(), s.size(), seed);
}

/** FNV-1a over a byte vector. */
inline uint64_t
fnv1a(const std::vector<uint8_t> &v, uint64_t seed = kFnvOffset)
{
    return fnv1a(v.data(), v.size(), seed);
}

/** Chain a 64-bit value into a running hash. */
inline uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    return fnv1a(&v, sizeof(v), h);
}

/** Render a hash as a fixed-width hex digest for cache keys. */
inline std::string
hashDigest(uint64_t h)
{
    static const char *digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[i] = digits[h & 0xf];
        h >>= 4;
    }
    return s;
}

} // namespace propeller

#endif // PROPELLER_SUPPORT_HASH_H
