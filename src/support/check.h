#ifndef PROPELLER_SUPPORT_CHECK_H
#define PROPELLER_SUPPORT_CHECK_H

/**
 * @file
 * Always-on structural checks.
 *
 * `assert` vanishes under -DNDEBUG, which turns producer-bug guards into
 * silent corruption in standard Release builds (the failure mode ISSUE 4
 * closes).  PROPELLER_CHECK is the always-on replacement for *invariants* —
 * conditions that only a bug in this codebase can violate.  Conditions
 * that external *input* can violate (truncated profiles, corrupt cached
 * artifacts, malformed metadata) must not abort at all: they return a
 * support::Status instead (see support/status.h).
 */

#include <cstdio>
#include <cstdlib>

namespace propeller {

[[noreturn]] inline void
checkFailed(const char *condition, const char *file, int line,
            const char *message)
{
    std::fprintf(stderr, "%s:%d: check failed: %s (%s)\n", file, line,
                 message, condition);
    std::fflush(stderr);
    std::abort();
}

} // namespace propeller

/** Abort (in every build type) with @p msg unless @p cond holds. */
#define PROPELLER_CHECK(cond, msg)                                         \
    ((cond) ? static_cast<void>(0)                                         \
            : ::propeller::checkFailed(#cond, __FILE__, __LINE__, (msg)))

#endif // PROPELLER_SUPPORT_CHECK_H
