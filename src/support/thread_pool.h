#ifndef PROPELLER_SUPPORT_THREAD_POOL_H
#define PROPELLER_SUPPORT_THREAD_POOL_H

/**
 * @file
 * A small work-stealing-free thread pool for the parallelizable stages of
 * the pipeline: the per-function Ext-TSP loop of the whole-program
 * analysis and the per-module Phase 2/4 code generation fan-out.
 *
 * Design constraints, in order:
 *
 *  1. **Determinism.**  parallelFor() hands out indices from an atomic
 *     counter and callers write results into per-index slots, so the
 *     *merge* order is always the index order regardless of which worker
 *     ran which index.  Byte-identical output at any thread count is a
 *     hard requirement (the relink must be reproducible).
 *
 *  2. **No deadlocks on nested use.**  parallelFor() never blocks a
 *     worker: the calling thread participates in the loop and drains the
 *     remaining indices itself, so an inner parallelFor issued from
 *     inside an outer one completes even when every pool worker is busy
 *     (the enqueued helpers then find the counter exhausted and return).
 *     waitFor() lets a task block on a future safely by helping: it runs
 *     queued tasks while the future is not ready.
 *
 *  3. **Graceful degradation.**  With one hardware thread (or an
 *     explicit threads=1 request) everything runs inline on the caller;
 *     no worker threads are created for a pool of size 1.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace propeller {

/** Resolve a thread-count request: 0 means "all hardware threads". */
inline unsigned
resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware_concurrency(). */
    explicit ThreadPool(unsigned threads = 0)
    {
        unsigned n = resolveThreadCount(threads);
        // The caller participates in parallelFor, so a pool of size N
        // keeps N-1 dedicated workers.
        workers_.reserve(n > 0 ? n - 1 : 0);
        for (unsigned i = 1; i < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads this pool brings to bear (workers + caller). */
    size_t threadCount() const { return workers_.size() + 1; }

    /** Process-wide pool sized to the hardware. */
    static ThreadPool &
    shared()
    {
        static ThreadPool pool;
        return pool;
    }

    /** Enqueue @p fn; returns a future for its result. */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Block on @p future without risking pool starvation: while it is not
     * ready, run queued tasks on this thread.  Safe to call from inside a
     * pool task (the nested-submit case).
     */
    template <typename T>
    void
    waitFor(std::future<T> &future)
    {
        while (future.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!runOne())
                std::this_thread::yield();
        }
    }

    /**
     * Run fn(i) for every i in [0, n), on up to @p maxThreads threads
     * (capped by the pool size; 0 = use the whole pool).  The calling
     * thread participates.  Indices are claimed dynamically; determinism
     * is the caller's: write results to slot i and merge in index order.
     * The first exception thrown by any fn(i) is rethrown on the caller
     * after the loop fully drains.
     */
    template <typename Fn>
    void
    parallelFor(size_t n, Fn &&fn, unsigned maxThreads = 0)
    {
        if (n == 0)
            return;
        size_t threads = maxThreads == 0 ? threadCount()
                                         : std::min<size_t>(
                                               maxThreads, threadCount());
        threads = std::min(threads, n);

        auto state = std::make_shared<LoopState>();
        state->n = n;
        auto drain = [state, &fn] {
            while (true) {
                size_t i =
                    state->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= state->n)
                    break;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->errMutex);
                    if (!state->error)
                        state->error = std::current_exception();
                }
            }
        };

        // Helpers are plain queued tasks; they never block, so nesting is
        // safe.  The caller's own drain() below guarantees completion
        // even if no helper ever runs.
        std::vector<std::future<void>> helpers;
        for (size_t t = 1; t < threads; ++t)
            helpers.push_back(submit(drain));

        drain();
        for (auto &helper : helpers)
            waitFor(helper);

        if (state->error)
            std::rethrow_exception(state->error);
    }

  private:
    struct LoopState
    {
        std::atomic<size_t> next{0};
        size_t n = 0;
        std::mutex errMutex;
        std::exception_ptr error;
    };

    /** Pop and run one queued task; false if the queue was empty. */
    bool
    runOne()
    {
        std::function<void()> task;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (queue_.empty())
                return false;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        return true;
    }

    void
    workerLoop()
    {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
                if (stopping_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Convenience: run fn(i) for i in [0, n) on the shared pool with at most
 * @p threads threads (0 = hardware_concurrency).  threads=1 runs inline.
 */
template <typename Fn>
inline void
parallelFor(unsigned threads, size_t n, Fn &&fn)
{
    unsigned resolved = resolveThreadCount(threads);
    if (resolved <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool::shared().parallelFor(n, std::forward<Fn>(fn), resolved);
}

} // namespace propeller

#endif // PROPELLER_SUPPORT_THREAD_POOL_H
