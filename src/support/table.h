#ifndef PROPELLER_SUPPORT_TABLE_H
#define PROPELLER_SUPPORT_TABLE_H

/**
 * @file
 * ASCII table and bar-chart rendering for the bench harness.
 *
 * Every bench binary regenerates one table or figure of the paper; these
 * helpers render them in a consistent, diff-friendly form.
 */

#include <string>
#include <vector>

namespace propeller {

/**
 * Simple column-aligned ASCII table.
 *
 * Usage:
 *   Table t({"Benchmark", "Text", "#Funcs"});
 *   t.addRow({"Clang", "72 MB", "160 K"});
 *   std::cout << t.render();
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to a string, right-aligning numeric-ish cells. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Horizontal bar chart: one labelled bar per entry, scaled to the maximum
 * value.  Used for the figure benches (e.g. peak-memory comparisons).
 */
class BarChart
{
  public:
    /** @param width maximum bar width in characters. */
    explicit BarChart(int width = 50) : width_(width) {}

    /** Add one bar; @p display is the text shown after the bar. */
    void addBar(std::string label, double value, std::string display);

    std::string render() const;

  private:
    struct Bar
    {
        std::string label;
        double value;
        std::string display;
    };

    int width_;
    std::vector<Bar> bars_;
};

/**
 * ASCII heat map (address-bucket rows x time-bucket columns) used by the
 * Figure 7 bench to render instruction-access heat maps.
 */
std::string renderHeatMap(const std::vector<std::vector<uint64_t>> &cells,
                          const std::string &y_label,
                          const std::string &x_label);

} // namespace propeller

#endif // PROPELLER_SUPPORT_TABLE_H
