#include "support/units.h"

#include <cmath>
#include <cstdio>

namespace propeller {

namespace {

std::string
scaled(double value, const char *suffix)
{
    char buf[64];
    if (value >= 100.0 || std::floor(value) == value) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffix);
    } else if (value >= 10.0) {
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, suffix);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
    }
    return buf;
}

} // namespace

std::string
formatBytes(uint64_t bytes)
{
    constexpr double kKb = 1024.0;
    constexpr double kMb = kKb * 1024.0;
    constexpr double kGb = kMb * 1024.0;
    double b = static_cast<double>(bytes);
    if (b >= kGb)
        return scaled(b / kGb, "GB");
    if (b >= kMb)
        return scaled(b / kMb, "MB");
    if (b >= kKb)
        return scaled(b / kKb, "KB");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
    return buf;
}

std::string
formatCount(uint64_t count)
{
    double c = static_cast<double>(count);
    if (c >= 1e6)
        return scaled(c / 1e6, "M");
    if (c >= 1e3)
        return scaled(c / 1e3, "K");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
    return buf;
}

std::string
formatPercentDelta(double ratio)
{
    char buf[32];
    double pct = ratio * 100.0;
    std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatFixed(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace propeller
