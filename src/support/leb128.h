#ifndef PROPELLER_SUPPORT_LEB128_H
#define PROPELLER_SUPPORT_LEB128_H

/**
 * @file
 * ULEB128 variable-length integer encoding.
 *
 * The real SHT_LLVM_BB_ADDR_MAP section encodes offsets and sizes as
 * ULEB128; our .bb_addr_map section (src/elf/bb_addr_map.h) does the same so
 * that the binary-size numbers in Figure 6 have realistic metadata overhead.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace propeller {

/** Append the ULEB128 encoding of @p value to @p out. */
inline void
encodeUleb128(uint64_t value, std::vector<uint8_t> &out)
{
    do {
        uint8_t byte = value & 0x7f;
        value >>= 7;
        if (value != 0)
            byte |= 0x80;
        out.push_back(byte);
    } while (value != 0);
}

/**
 * Decode a ULEB128 value from @p data starting at @p pos.
 *
 * On success advances @p pos past the encoded bytes and returns the value;
 * returns std::nullopt on truncated or oversized input.
 */
inline std::optional<uint64_t>
decodeUleb128(const std::vector<uint8_t> &data, size_t &pos)
{
    uint64_t result = 0;
    unsigned shift = 0;
    while (pos < data.size()) {
        uint8_t byte = data[pos++];
        if (shift >= 64)
            return std::nullopt;
        result |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return result;
        shift += 7;
    }
    return std::nullopt;
}

/** Size in bytes of the ULEB128 encoding of @p value. */
inline size_t
uleb128Size(uint64_t value)
{
    size_t n = 1;
    while (value >>= 7)
        ++n;
    return n;
}

} // namespace propeller

#endif // PROPELLER_SUPPORT_LEB128_H
