#ifndef PROPELLER_SUPPORT_MEMORY_METER_H
#define PROPELLER_SUPPORT_MEMORY_METER_H

/**
 * @file
 * Modelled memory accounting.
 *
 * The paper evaluates peak resident memory of each optimization phase
 * (Figures 4 and 5).  Host RSS is noisy and does not scale the way the real
 * tools scale, so every major data structure in this reproduction reports a
 * deterministic footprint in bytes and charges it to a MemoryMeter.  Peak
 * charges per named phase are what the benches report.
 */

#include <atomic>
#include <cstdint>
#include <string>

namespace propeller {

/**
 * Tracks modelled live and peak memory in bytes.
 *
 * Components charge() bytes when they materialize a data structure and
 * release() them when it is destroyed.  The meter records the high-water
 * mark.  ScopedCharge provides RAII charging for temporaries.
 *
 * Thread-safe: charge/release are atomic and the peak is maintained with a
 * monotonic compare-exchange loop, so workers of the parallel WPA loop can
 * meter against one shared instance without races.
 */
class MemoryMeter
{
  public:
    MemoryMeter() = default;

    /** Charge @p bytes of modelled memory. */
    void
    charge(uint64_t bytes)
    {
        uint64_t live =
            live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
        uint64_t peak = peak_.load(std::memory_order_relaxed);
        while (live > peak &&
               !peak_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
            // peak was reloaded by the failed exchange; retry while ours
            // is still higher.
        }
    }

    /** Release @p bytes previously charged. */
    void release(uint64_t bytes);

    /** Currently live modelled bytes. */
    uint64_t live() const { return live_.load(std::memory_order_relaxed); }

    /** High-water mark of modelled bytes. */
    uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

    /** Reset live and peak counts to zero (not concurrency-safe). */
    void
    reset()
    {
        live_.store(0, std::memory_order_relaxed);
        peak_.store(0, std::memory_order_relaxed);
    }

    /**
     * Forget the recorded peak but keep the live charge.  Useful when one
     * meter tracks several consecutive phases (not concurrency-safe).
     */
    void resetPeak() { peak_.store(live(), std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> live_{0};
    std::atomic<uint64_t> peak_{0};
};

/** RAII charge on a MemoryMeter; releases on destruction. */
class ScopedCharge
{
  public:
    ScopedCharge(MemoryMeter &meter, uint64_t bytes)
        : meter_(meter), bytes_(bytes)
    {
        meter_.charge(bytes_);
    }

    ~ScopedCharge() { meter_.release(bytes_); }

    ScopedCharge(const ScopedCharge &) = delete;
    ScopedCharge &operator=(const ScopedCharge &) = delete;

    /** Grow the scoped charge by @p extra bytes. */
    void
    add(uint64_t extra)
    {
        meter_.charge(extra);
        bytes_ += extra;
    }

  private:
    MemoryMeter &meter_;
    uint64_t bytes_;
};

} // namespace propeller

#endif // PROPELLER_SUPPORT_MEMORY_METER_H
