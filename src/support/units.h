#ifndef PROPELLER_SUPPORT_UNITS_H
#define PROPELLER_SUPPORT_UNITS_H

/**
 * @file
 * Human-readable formatting of byte counts, large counts and percentages
 * for the bench harness tables.
 */

#include <cstdint>
#include <string>

namespace propeller {

/** Format bytes as "413 MB", "2.6 GB", "34 KB" etc. (paper-style units). */
std::string formatBytes(uint64_t bytes);

/** Format a count as "1.7 M", "160 K", "80". */
std::string formatCount(uint64_t count);

/** Format a ratio as a signed percentage, e.g. "+7.3%" / "-2.0%". */
std::string formatPercentDelta(double ratio);

/** Format a fraction (0..1) as "67%". */
std::string formatPercent(double fraction, int decimals = 0);

/** Format a double with fixed decimals. */
std::string formatFixed(double value, int decimals);

} // namespace propeller

#endif // PROPELLER_SUPPORT_UNITS_H
