#include "support/table.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdint>
#include <sstream>

namespace propeller {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size() && "row arity must match header");
    rows_.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

namespace {

// A cell is right-aligned if it looks like a number (possibly with sign,
// percent, or unit suffix).
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char c = s[0];
    return std::isdigit(static_cast<unsigned char>(c)) || c == '+' ||
           c == '-' || c == '~';
}

} // namespace

std::string
Table::render() const
{
    size_t ncols = header_.size();
    std::vector<size_t> widths(ncols);
    for (size_t i = 0; i < ncols; ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        for (size_t i = 0; i < ncols; ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto renderRow = [&](const std::vector<std::string> &row,
                         std::ostringstream &os) {
        os << "|";
        for (size_t i = 0; i < ncols; ++i) {
            const std::string &cell = row[i];
            size_t pad = widths[i] - cell.size();
            os << ' ';
            if (looksNumeric(cell) && i > 0) {
                os << std::string(pad, ' ') << cell;
            } else {
                os << cell << std::string(pad, ' ');
            }
            os << " |";
        }
        os << "\n";
    };

    auto renderSep = [&](std::ostringstream &os) {
        os << "+";
        for (size_t i = 0; i < ncols; ++i)
            os << std::string(widths[i] + 2, '-') << "+";
        os << "\n";
    };

    std::ostringstream os;
    renderSep(os);
    renderRow(header_, os);
    renderSep(os);
    for (const auto &row : rows_) {
        if (row.empty()) {
            renderSep(os);
        } else {
            renderRow(row, os);
        }
    }
    renderSep(os);
    return os.str();
}

void
BarChart::addBar(std::string label, double value, std::string display)
{
    bars_.push_back({std::move(label), value, std::move(display)});
}

std::string
BarChart::render() const
{
    size_t label_w = 0;
    double max_v = 0.0;
    for (const auto &b : bars_) {
        label_w = std::max(label_w, b.label.size());
        max_v = std::max(max_v, b.value);
    }
    std::ostringstream os;
    for (const auto &b : bars_) {
        int len = 0;
        if (max_v > 0.0)
            len = static_cast<int>(b.value / max_v * width_ + 0.5);
        os << "  " << b.label << std::string(label_w - b.label.size(), ' ')
           << " |" << std::string(len, '#') << " " << b.display << "\n";
    }
    return os.str();
}

std::string
renderHeatMap(const std::vector<std::vector<uint64_t>> &cells,
              const std::string &y_label, const std::string &x_label)
{
    static const char *shades = " .:-=+*#%@";
    uint64_t max_v = 0;
    for (const auto &row : cells)
        for (uint64_t v : row)
            max_v = std::max(max_v, v);

    std::ostringstream os;
    os << "  (" << y_label << " rows, " << x_label
       << " columns; darker = more accesses)\n";
    // Print highest addresses first, like the paper's figures.
    for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
        os << "  |";
        for (uint64_t v : *it) {
            int idx = 0;
            if (max_v > 0 && v > 0) {
                // Log-ish scale so sparse accesses remain visible.
                double f = static_cast<double>(v) / static_cast<double>(max_v);
                idx = 1 + static_cast<int>(f * 8.0 + 0.5);
                idx = std::min(idx, 9);
            }
            os << shades[idx];
        }
        os << "|\n";
    }
    return os.str();
}

} // namespace propeller
