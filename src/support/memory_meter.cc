#include "support/memory_meter.h"

#include <cassert>

namespace propeller {

void
MemoryMeter::release(uint64_t bytes)
{
    uint64_t before = live_.fetch_sub(bytes, std::memory_order_relaxed);
    (void)before;
    assert(bytes <= before &&
           "releasing more modelled memory than is live");
}

} // namespace propeller
