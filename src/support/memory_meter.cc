#include "support/memory_meter.h"

#include <cassert>

namespace propeller {

void
MemoryMeter::release(uint64_t bytes)
{
    assert(bytes <= live_ && "releasing more modelled memory than is live");
    live_ -= bytes;
}

} // namespace propeller
