#ifndef PROPELLER_SUPPORT_STATUS_H
#define PROPELLER_SUPPORT_STATUS_H

/**
 * @file
 * Typed, exception-free error propagation.
 *
 * The deployment contract of a relinking optimizer is "degrade, don't
 * die" (paper section 3/6): malformed inputs — truncated profiles,
 * bit-flipped cache artifacts, corrupt .bb_addr_map payloads — must be
 * *diagnosable rejections*, never aborts and never silent acceptance.
 * Status carries an error code plus a human-readable context chain built
 * up as the error propagates outward ("object mod_003.o: function #7:
 * truncated block list"), so a failure seen at the workflow layer still
 * names the byte-level cause.
 *
 * StatusOr<T> is the value-or-error return type of the checked decode
 * paths.  Neither type ever throws.
 */

#include <string>
#include <utility>

#include "support/check.h"

namespace propeller::support {

/** Machine-readable failure category. */
enum class ErrorCode : uint8_t {
    kOk = 0,
    kTruncated,          ///< Input ended before the structure did.
    kMalformed,          ///< Structurally invalid input.
    kChecksumMismatch,   ///< Content checksum did not verify.
    kUnknownVersion,     ///< Wire version from the future.
    kUnsupportedFeature, ///< Unknown feature bits set.
    kUnresolved,         ///< A reference names a missing entity.
    kOutOfRange,         ///< A value exceeds a representable limit.
    kExhausted,          ///< A bounded retry/repair budget ran out.
};

/** Short stable name of @p code (for logs and reports). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:
        return "ok";
      case ErrorCode::kTruncated:
        return "truncated";
      case ErrorCode::kMalformed:
        return "malformed";
      case ErrorCode::kChecksumMismatch:
        return "checksum-mismatch";
      case ErrorCode::kUnknownVersion:
        return "unknown-version";
      case ErrorCode::kUnsupportedFeature:
        return "unsupported-feature";
      case ErrorCode::kUnresolved:
        return "unresolved";
      case ErrorCode::kOutOfRange:
        return "out-of-range";
      case ErrorCode::kExhausted:
        return "exhausted";
    }
    return "unknown";
}

/** An error code plus an outward-growing context chain.  Never throws. */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "checksum-mismatch: shard 2: bad trailer" style rendering. */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

    /** Prepend @p context as the error travels outward. */
    Status &&
    withContext(const std::string &context) &&
    {
        if (!ok())
            message_ = context + ": " + message_;
        return std::move(*this);
    }

    bool operator==(const Status &) const = default;

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
};

inline Status
okStatus()
{
    return Status();
}

inline Status
makeError(ErrorCode code, std::string message)
{
    return Status(code, std::move(message));
}

/** A T or the Status explaining why there is none. */
template <typename T> class [[nodiscard]] StatusOr
{
  public:
    StatusOr(Status status) : status_(std::move(status))
    {
        PROPELLER_CHECK(!status_.ok(),
                        "StatusOr constructed from an ok Status");
    }

    StatusOr(T value) : status_(), value_(std::move(value)), has_value_(true)
    {
    }

    bool ok() const { return has_value_; }
    const Status &status() const { return status_; }

    const T &
    value() const &
    {
        PROPELLER_CHECK(has_value_, status_.toString().c_str());
        return value_;
    }

    T &
    value() &
    {
        PROPELLER_CHECK(has_value_, status_.toString().c_str());
        return value_;
    }

    T &&
    value() &&
    {
        PROPELLER_CHECK(has_value_, status_.toString().c_str());
        return std::move(value_);
    }

    const T &operator*() const & { return value(); }
    T &operator*() & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    const T *operator->() const { return &value(); }
    T *operator->() { return &value(); }

  private:
    Status status_;
    T value_{};
    bool has_value_ = false;
};

} // namespace propeller::support

/** Propagate a non-ok Status to the caller. */
#define PROPELLER_RETURN_IF_ERROR(expr)                                    \
    do {                                                                   \
        ::propeller::support::Status status_macro_tmp_ = (expr);           \
        if (!status_macro_tmp_.ok())                                       \
            return status_macro_tmp_;                                      \
    } while (0)

#define PROPELLER_STATUS_CONCAT_INNER_(a, b) a##b
#define PROPELLER_STATUS_CONCAT_(a, b) PROPELLER_STATUS_CONCAT_INNER_(a, b)

/** `PROPELLER_ASSIGN_OR_RETURN(auto x, makeX())` — unwrap or propagate. */
#define PROPELLER_ASSIGN_OR_RETURN(lhs, expr)                              \
    PROPELLER_ASSIGN_OR_RETURN_IMPL_(                                      \
        PROPELLER_STATUS_CONCAT_(status_or_tmp_, __COUNTER__), lhs, expr)

#define PROPELLER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)                   \
    auto tmp = (expr);                                                     \
    if (!tmp.ok())                                                         \
        return tmp.status();                                               \
    lhs = std::move(tmp).value()

#endif // PROPELLER_SUPPORT_STATUS_H
