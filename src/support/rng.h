#ifndef PROPELLER_SUPPORT_RNG_H
#define PROPELLER_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this reproduction must be bit-reproducible across runs and
 * hosts, so we use our own SplitMix64-based generators instead of
 * std::mt19937 (whose distributions are implementation-defined).
 */

#include <cstdint>

namespace propeller {

/** One round of the SplitMix64 output mix; a good stateless 64-bit mixer. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Mix two 64-bit values into one; used for keyed decisions. */
inline uint64_t
mix64(uint64_t a, uint64_t b)
{
    return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ull));
}

/** Mix three 64-bit values into one. */
inline uint64_t
mix64(uint64_t a, uint64_t b, uint64_t c)
{
    return mix64(mix64(a, b), c);
}

/**
 * Small, fast, deterministic PRNG (SplitMix64 stream).
 *
 * Not cryptographic; statistically fine for workload synthesis and
 * sampling jitter.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(mix64(seed)) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        uint64_t x = state_;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for our bounds.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish heavy-tailed draw in [lo, hi]: smaller values are more
     * likely.  Used to synthesize realistic size distributions (most
     * functions are small, a few are huge).
     */
    uint64_t
    skewed(uint64_t lo, uint64_t hi)
    {
        double u = uniform();
        // Square the uniform draw twice to skew the mass toward lo.
        double s = u * u;
        return lo + static_cast<uint64_t>(s * static_cast<double>(hi - lo));
    }

  private:
    uint64_t state_;
};

} // namespace propeller

#endif // PROPELLER_SUPPORT_RNG_H
