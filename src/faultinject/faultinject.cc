#include "faultinject/faultinject.h"

#include <algorithm>
#include <cstdlib>

#include "support/hash.h"

namespace propeller::faultinject {

using support::ErrorCode;
using support::makeError;
using support::StatusOr;

namespace {

// Site tags keying the per-decision RNG streams: the fault for one shard
// / key / object depends only on (seed, site, identity), never on how
// many hooks fired before it.
constexpr uint64_t kSiteProfile = 0x70726f66; // 'prof'
constexpr uint64_t kSiteCache = 0x63616368;   // 'cach'
constexpr uint64_t kSiteAddrMap = 0x62626d70; // 'bbmp'
constexpr uint64_t kSiteExec = 0x65786563;    // 'exec'

void
flipBit(std::vector<uint8_t> &bytes, Rng &rng, FaultStats *stats)
{
    uint64_t pos = rng.below(bytes.size());
    bytes[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
    if (stats)
        ++stats->bitFlips;
}

} // namespace

void
mutateBytes(std::vector<uint8_t> &bytes, Rng &rng, FaultStats *stats)
{
    if (bytes.empty())
        return;
    switch (rng.below(3)) {
      case 0:
        flipBit(bytes, rng, stats);
        return;
      case 1: {
        // Truncation keeps at least 2 bytes: a one-byte 0x00 remnant is
        // the *valid* legacy v1 encoding of "no address maps" (see
        // bb_addr_map.h), which would turn an injected fault into an
        // undetectable format ambiguity rather than a corruption.
        if (bytes.size() <= 2) {
            flipBit(bytes, rng, stats);
            return;
        }
        bytes.resize(rng.range(2, bytes.size() - 1));
        if (stats)
            ++stats->truncations;
        return;
      }
      default: {
        uint64_t start = rng.below(bytes.size());
        uint64_t len = rng.range(
            1, std::min<uint64_t>(16, bytes.size() - start));
        bool changed = false;
        for (uint64_t i = start; i < start + len; ++i) {
            changed = changed || bytes[i] != 0;
            bytes[i] = 0;
        }
        if (!changed) {
            // The run was already zero; fall back to a flip so the
            // mutation is guaranteed to take effect.
            flipBit(bytes, rng, stats);
            return;
        }
        if (stats)
            ++stats->zeroRuns;
        return;
      }
    }
}

StatusOr<FaultSpec>
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string pair = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return makeError(ErrorCode::kMalformed,
                             "fault spec entry '" + pair +
                                 "' is not key=value");
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        char *end = nullptr;
        if (key == "seed") {
            unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                return makeError(ErrorCode::kMalformed,
                                 "seed '" + value + "' is not an integer");
            spec.seed = seed;
            continue;
        }
        double rate = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || rate < 0.0 ||
            rate > 1.0)
            return makeError(ErrorCode::kMalformed,
                             "rate '" + value + "' for key '" + key +
                                 "' is not in [0, 1]");
        if (key == "profile")
            spec.profileRate = rate;
        else if (key == "cache")
            spec.cacheRate = rate;
        else if (key == "addrmap")
            spec.addrMapRate = rate;
        else if (key == "exec")
            spec.execFailRate = rate;
        else
            return makeError(ErrorCode::kMalformed,
                             "unknown fault spec key '" + key + "'");
    }
    return spec;
}

void
FaultInjector::onProfileShards(std::vector<std::vector<uint8_t>> &shards)
{
    if (spec_.profileRate <= 0.0)
        return;
    for (size_t i = 0; i < shards.size(); ++i) {
        Rng rng(mix64(spec_.seed, kSiteProfile, i));
        if (shards[i].empty() || !rng.chance(spec_.profileRate))
            continue;
        mutateBytes(shards[i], rng, &stats_);
        ++stats_.profileShardsCorrupted;
        stats_.corruptedShardIndices.push_back(i);
    }
}

void
FaultInjector::onCachePopulated(buildsys::ArtifactCache &cache)
{
    if (spec_.cacheRate <= 0.0)
        return;
    // Each key is corrupted at most once over the workflow's lifetime:
    // an evicted-and-rebuilt artifact is not re-corrupted, so injected
    // and detected counts can be compared exactly.
    for (uint64_t key : cache.keys()) {
        if (corruptedKeys_.count(key))
            continue;
        Rng rng(mix64(spec_.seed, kSiteCache, key));
        if (!rng.chance(spec_.cacheRate))
            continue;
        corruptedKeys_.insert(key);
        bool mutated = cache.corruptStored(
            key,
            [&](std::vector<uint8_t> &bytes) {
                mutateBytes(bytes, rng, &stats_);
            },
            /*rehash=*/false);
        if (mutated) {
            ++stats_.cacheEntriesCorrupted;
            stats_.corruptedCacheKeys.push_back(key);
        }
    }
}

void
FaultInjector::onPhase2Objects(std::vector<elf::ObjectFile> &objects)
{
    if (spec_.addrMapRate <= 0.0)
        return;
    for (auto &obj : objects) {
        int sect = obj.findSection(".bb_addr_map");
        if (sect < 0 || obj.sections[sect].bytes.empty())
            continue;
        Rng rng(mix64(spec_.seed, kSiteAddrMap, fnv1a(obj.name)));
        if (!rng.chance(spec_.addrMapRate))
            continue;
        mutateBytes(obj.sections[sect].bytes, rng, &stats_);
        ++stats_.addrMapsCorrupted;
        stats_.corruptedObjectNames.push_back(obj.name);
    }
}

bool
FaultInjector::failAction(const std::string &module_name, uint32_t attempt)
{
    if (spec_.execFailRate <= 0.0)
        return false;
    Rng rng(mix64(spec_.seed, mix64(kSiteExec, fnv1a(module_name)),
                  attempt));
    if (!rng.chance(spec_.execFailRate))
        return false;
    ++stats_.actionFailures;
    return true;
}

} // namespace propeller::faultinject
