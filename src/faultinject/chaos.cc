#include "faultinject/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "faultinject/faultinject.h"
#include "support/hash.h"

namespace propeller::faultinject {

using support::ErrorCode;
using support::makeError;
using support::StatusOr;

namespace {

// Site tags keying the per-decision RNG streams.
constexpr uint64_t kSiteWire = 0x77697265;    // 'wire'
constexpr uint64_t kSiteReorder = 0x72657264; // 'rerd'
constexpr uint64_t kSiteRelink = 0x726c6e6b;  // 'rlnk'

/** At most one fault per shard. */
enum class Fate : uint8_t { kNone, kDrop, kDup, kDelay, kCorrupt };

} // namespace

StatusOr<ChaosSpec>
parseChaosSpec(const std::string &text)
{
    ChaosSpec spec;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string pair = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            return makeError(ErrorCode::kMalformed,
                             "chaos spec entry '" + pair +
                                 "' is not key=value");
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        char *end = nullptr;
        if (key == "seed" || key == "maxdelay" || key == "start" ||
            key == "end") {
            unsigned long long n = std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                return makeError(ErrorCode::kMalformed,
                                 "value '" + value + "' for key '" + key +
                                     "' is not an integer");
            if (key == "seed")
                spec.seed = n;
            else if (key == "maxdelay")
                spec.maxDelayEpochs = static_cast<uint32_t>(n);
            else if (key == "start")
                spec.chaosStartEpoch = static_cast<uint32_t>(n);
            else
                spec.chaosEndEpoch = static_cast<uint32_t>(n);
            continue;
        }
        if (key == "blackout") {
            size_t p = 0;
            while (p < value.size()) {
                size_t colon = value.find(':', p);
                if (colon == std::string::npos)
                    colon = value.size();
                std::string item = value.substr(p, colon - p);
                p = colon + 1;
                unsigned long long e =
                    std::strtoull(item.c_str(), &end, 10);
                if (item.empty() || end == item.c_str() || *end != '\0')
                    return makeError(ErrorCode::kMalformed,
                                     "blackout epoch '" + item +
                                         "' is not an integer");
                spec.relinkBlackoutEpochs.insert(
                    static_cast<uint32_t>(e));
            }
            continue;
        }
        double rate = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || rate < 0.0 ||
            rate > 1.0)
            return makeError(ErrorCode::kMalformed,
                             "rate '" + value + "' for key '" + key +
                                 "' is not in [0, 1]");
        if (key == "drop")
            spec.dropRate = rate;
        else if (key == "dup")
            spec.dupRate = rate;
        else if (key == "delay")
            spec.delayRate = rate;
        else if (key == "corrupt")
            spec.corruptRate = rate;
        else if (key == "reorder")
            spec.reorderRate = rate;
        else if (key == "relinkfail")
            spec.relinkFailRate = rate;
        else
            return makeError(ErrorCode::kMalformed,
                             "unknown chaos spec key '" + key + "'");
    }
    if (spec.maxDelayEpochs == 0 && spec.delayRate > 0.0)
        return makeError(ErrorCode::kMalformed,
                         "delay rate set but maxdelay is 0");
    return spec;
}

void
ChaosSchedule::onWireShards(uint32_t epoch,
                            std::vector<fleet::WireShard> &wire)
{
    if (epoch >= spec_.chaosStartEpoch && epoch <= spec_.chaosEndEpoch)
        injectWireFaults(epoch, wire);

    // Count the inversions present in the delivered stream with the
    // service's own algorithm — its detection counter must land on
    // exactly this total.  Runs outside the chaos window too: the
    // service's own arrival shuffle contributes inversions every epoch,
    // identically on both sides.
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> maxSeq;
    for (const fleet::WireShard &ws : wire) {
        if (ws.deliverEpoch != epoch)
            continue;
        auto [it, fresh] =
            maxSeq.try_emplace({ws.machine, ws.emitEpoch}, ws.seq);
        if (!fresh) {
            if (ws.seq < it->second)
                ++stats_.arrivalInversions;
            else
                it->second = ws.seq;
        }
    }
}

void
ChaosSchedule::injectWireFaults(uint32_t epoch,
                                std::vector<fleet::WireShard> &wire)
{
    stats_.shardsSeen += wire.size();

    // Keyed per-shard fate: the fault for one shard depends only on
    // (seed, site, machine/epoch/sequence), never on stream position.
    std::vector<Fate> fate(wire.size(), Fate::kNone);
    std::vector<uint32_t> delayBy(wire.size(), 0);
    std::map<std::pair<uint32_t, uint32_t>, std::vector<size_t>> batches;
    for (size_t i = 0; i < wire.size(); ++i) {
        const fleet::WireShard &ws = wire[i];
        batches[{ws.machine, ws.emitEpoch}].push_back(i);
        Rng rng(mix64(spec_.seed, kSiteWire,
                      mix64(ws.machine, ws.emitEpoch, ws.seq)));
        if (rng.chance(spec_.dropRate)) {
            fate[i] = Fate::kDrop;
        } else if (rng.chance(spec_.dupRate)) {
            fate[i] = Fate::kDup;
        } else if (spec_.maxDelayEpochs > 0 &&
                   rng.chance(spec_.delayRate)) {
            fate[i] = Fate::kDelay;
            delayBy[i] = static_cast<uint32_t>(
                rng.range(1, spec_.maxDelayEpochs));
        } else if (rng.chance(spec_.corruptRate)) {
            fate[i] = Fate::kCorrupt;
        }
    }

    // Keep every batch observable: if chaos decided to drop a whole
    // (machine, epoch) batch, the lowest sequence survives — the batch
    // manifest still arrives, so the other drops become *detectable*
    // losses instead of silently unknowable ones.
    for (const auto &[key, idxs] : batches) {
        size_t minIdx = idxs.front();
        bool allDropped = true;
        for (size_t i : idxs) {
            if (fate[i] != Fate::kDrop) {
                allDropped = false;
                break;
            }
            if (wire[i].seq < wire[minIdx].seq)
                minIdx = i;
        }
        if (allDropped)
            fate[minIdx] = Fate::kNone;
    }

    std::vector<fleet::WireShard> out;
    out.reserve(wire.size() + wire.size() / 4);
    for (size_t i = 0; i < wire.size(); ++i) {
        fleet::WireShard &ws = wire[i];
        switch (fate[i]) {
          case Fate::kDrop:
            ++stats_.shardsDropped;
            continue;
          case Fate::kDup:
            ++stats_.shardsDuplicated;
            out.push_back(ws); // Retransmit: the copy...
            out.push_back(std::move(ws)); // ...and the original.
            continue;
          case Fate::kDelay:
            ++stats_.shardsDelayed;
            stats_.maxDelayInjected =
                std::max(stats_.maxDelayInjected, delayBy[i]);
            ws.deliverEpoch = epoch + delayBy[i];
            out.push_back(std::move(ws));
            continue;
          case Fate::kCorrupt: {
            Rng rng(mix64(spec_.seed, mix64(kSiteWire, 0x726f74 /*rot*/),
                          mix64(ws.machine, ws.emitEpoch, ws.seq)));
            mutateBytes(ws.bytes, rng);
            ++stats_.shardsCorrupted;
            out.push_back(std::move(ws));
            continue;
          }
          case Fate::kNone:
            out.push_back(std::move(ws));
            continue;
        }
    }

    // Adversarial churn on top of the service's own arrival shuffle:
    // keyed swaps among the shards delivered this epoch (delayed shards
    // are re-sorted canonically at delivery, so swapping them is moot).
    if (spec_.reorderRate > 0.0) {
        std::vector<size_t> nowIdx;
        for (size_t i = 0; i < out.size(); ++i) {
            if (out[i].deliverEpoch == epoch)
                nowIdx.push_back(i);
        }
        const auto swaps = static_cast<uint64_t>(
            spec_.reorderRate * static_cast<double>(nowIdx.size()));
        for (uint64_t s = 0; s < swaps && nowIdx.size() >= 2; ++s) {
            Rng rng(mix64(spec_.seed, kSiteReorder, mix64(epoch, s)));
            size_t a = nowIdx[rng.below(nowIdx.size())];
            size_t b = nowIdx[rng.below(nowIdx.size())];
            if (a != b) {
                std::swap(out[a], out[b]);
                ++stats_.reorderSwaps;
            }
        }
    }

    wire = std::move(out);
}

bool
ChaosSchedule::failRelink(uint32_t epoch, uint32_t attempt)
{
    bool fail = false;
    if (spec_.relinkBlackoutEpochs.count(epoch) != 0) {
        fail = true;
    } else if (spec_.relinkFailRate > 0.0) {
        Rng rng(mix64(spec_.seed, kSiteRelink, mix64(epoch, attempt)));
        fail = rng.chance(spec_.relinkFailRate);
    }
    if (fail)
        ++stats_.relinkFaults;
    return fail;
}

} // namespace propeller::faultinject
