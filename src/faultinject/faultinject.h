#ifndef PROPELLER_FAULTINJECT_FAULTINJECT_H
#define PROPELLER_FAULTINJECT_FAULTINJECT_H

/**
 * @file
 * Deterministic seeded fault injection for the relink pipeline.
 *
 * Warehouse-scale reality: profile shards rot on distributed storage,
 * cached objects get bit flips from flaky disks, remote executors flake
 * mid-action.  Propeller's deployment contract (paper section 6) is that
 * none of this may ever ship a broken binary — corruption must be
 * *detected* (checksums, structural validation), *attributed* (counters,
 * failure summaries) and *absorbed* (quarantine to baseline layout,
 * cache eviction + rebuild, bounded retry).
 *
 * This harness drives the buildsys::FaultHooks seams with three
 * mutation primitives — bit flip, truncate, zero run — applied to
 * profile shards, cached artifacts, and `.bb_addr_map` section payloads.
 * Every decision is *keyed*, not drawn from a sequential stream: the
 * fault for shard i or cache key k depends only on (seed, site, i/k), so
 * an injection run is reproducible at any thread count and regardless of
 * how many times a hook fires.
 *
 * Driven by `propeller-cli run --fault-inject <spec>` and the
 * bench_faults gate.
 */

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "build/workflow.h"
#include "support/rng.h"
#include "support/status.h"

namespace propeller::faultinject {

/** What to corrupt, how often, under which seed. */
struct FaultSpec
{
    uint64_t seed = 1;

    /** Fraction of serialized profile shards corrupted. */
    double profileRate = 0.0;

    /** Fraction of cached artifacts corrupted (silent storage rot). */
    double cacheRate = 0.0;

    /** Fraction of objects whose .bb_addr_map payload is corrupted. */
    double addrMapRate = 0.0;

    /** Probability a codegen action attempt fails transiently. */
    double execFailRate = 0.0;

    bool
    any() const
    {
        return profileRate > 0.0 || cacheRate > 0.0 || addrMapRate > 0.0 ||
               execFailRate > 0.0;
    }
};

/**
 * Parse a spec string: comma-separated `key=value` pairs with keys
 * `seed` (integer) and `profile`/`cache`/`addrmap`/`exec` (rates in
 * [0, 1]).  Example: "seed=7,profile=0.25,cache=0.25,addrmap=0.25".
 */
support::StatusOr<FaultSpec> parseFaultSpec(const std::string &text);

/** What the harness actually injected (ground truth for the gates). */
struct FaultStats
{
    uint32_t profileShardsCorrupted = 0;
    uint32_t cacheEntriesCorrupted = 0;
    uint32_t addrMapsCorrupted = 0;
    uint32_t actionFailures = 0; ///< Transient executor faults injected.

    // By mutation primitive.
    uint32_t bitFlips = 0;
    uint32_t truncations = 0;
    uint32_t zeroRuns = 0;

    // Identities of what was hit — the ground truth the gates compare
    // detection counters and quarantine lists against.
    std::vector<std::string> corruptedObjectNames;
    std::vector<size_t> corruptedShardIndices;
    std::vector<uint64_t> corruptedCacheKeys;

    /** Total byte-level corruptions injected (excludes exec faults). */
    uint32_t
    corruptions() const
    {
        return profileShardsCorrupted + cacheEntriesCorrupted +
               addrMapsCorrupted;
    }
};

/**
 * Apply one randomly chosen mutation (bit flip / truncate / zero run) to
 * @p bytes, guaranteeing the bytes actually change; no-op only when
 * empty.  Exposed for the fuzz property tests.
 */
void mutateBytes(std::vector<uint8_t> &bytes, Rng &rng,
                 FaultStats *stats = nullptr);

/** The FaultHooks implementation a Workflow runs under injection. */
class FaultInjector : public buildsys::FaultHooks
{
  public:
    explicit FaultInjector(const FaultSpec &spec) : spec_(spec) {}

    void onCachePopulated(buildsys::ArtifactCache &cache) override;
    void onProfileShards(
        std::vector<std::vector<uint8_t>> &shards) override;
    void onPhase2Objects(std::vector<elf::ObjectFile> &objects) override;
    bool failAction(const std::string &module_name,
                    uint32_t attempt) override;

    const FaultSpec &spec() const { return spec_; }
    const FaultStats &stats() const { return stats_; }

  private:
    FaultSpec spec_;
    FaultStats stats_;
    std::set<uint64_t> corruptedKeys_; ///< Cache keys hit (once each).
};

} // namespace propeller::faultinject

#endif // PROPELLER_FAULTINJECT_FAULTINJECT_H
