#ifndef PROPELLER_FAULTINJECT_CHAOS_H
#define PROPELLER_FAULTINJECT_CHAOS_H

/**
 * @file
 * Seeded chaos schedule for the fleet service's transport and relink
 * seams (fleet::FleetChaosHooks).
 *
 * Where FaultInjector (faultinject.h) rots bytes inside one relink,
 * ChaosSchedule attacks the *service* around it: wire shards in flight
 * from fleet machines are dropped, duplicated, reordered, delayed whole
 * epochs, and corrupted; relink attempts are crashed mid-flight, or
 * blacked out entirely to force the last-good rollback path.  Every
 * decision is keyed on (seed, site, shard identity) — never a
 * sequential stream — so a chaos run is reproducible shard-for-shard
 * regardless of arrival order or thread count.
 *
 * Fault classes are disjoint (at most one fault per shard), and the
 * schedule keeps every (machine, epoch) batch observable by delivering
 * at least one of its shards — exactly as a real transport's batch
 * manifest still arrives when payloads are lost — so the service's
 * detection counters can be compared *exactly* against the injected
 * ground truth:
 *
 *   dropped   == losses finalized at the lag horizon
 *   duplicated== duplicate arrivals deduplicated
 *   corrupted == shards rejected by checksum decode
 *   delayed   == late + expired arrivals   (after a drain period)
 *   inversions: counted here on every epoch's delivered stream (wire
 *               faults stay inside the chaos window, but the service's
 *               own arrival shuffle contributes inversions every epoch)
 *               with the same algorithm the service uses — a
 *               transport-consistency check, not an injection count
 *
 * The delay/drop equalities need the run to outlive the chaos window:
 * keep `chaosEndEpoch` at least (maxDelayEpochs + the service's decay
 * window) epochs before the end of the run, and keep `maxDelayEpochs`
 * at most the decay window so a delayed shard is classified (late or
 * expired) rather than double-attributed (expired *and* lost).
 *
 * Driven by `propeller-cli serve --chaos <spec>` and the bench_chaos
 * gate.
 */

#include <cstdint>
#include <set>
#include <string>

#include "service/fleet.h"
#include "support/rng.h"
#include "support/status.h"

namespace propeller::faultinject {

/** What to do to the fleet's transport and relinks, under which seed. */
struct ChaosSpec
{
    uint64_t seed = 1;

    double dropRate = 0.0;    ///< Fraction of wire shards dropped.
    double dupRate = 0.0;     ///< Fraction retransmitted (duplicated).
    double delayRate = 0.0;   ///< Fraction delayed whole epochs.
    double corruptRate = 0.0; ///< Fraction with payload rot.

    /** Delay drawn uniformly from [1, maxDelayEpochs].  Keep at most
     *  the service's decay window (see file comment). */
    uint32_t maxDelayEpochs = 2;

    /** Extra keyed swaps applied to the delivered stream, as a fraction
     *  of its size (the arrival shuffle already reorders; this adds
     *  adversarial churn on top). */
    double reorderRate = 0.0;

    /** Probability each relink attempt crashes mid-flight. */
    double relinkFailRate = 0.0;

    /** Epochs whose relinks fail on *every* attempt — the deterministic
     *  way to force retry exhaustion, quarantine and last-good serving. */
    std::set<uint32_t> relinkBlackoutEpochs;

    /** Wire faults only fire in [chaosStartEpoch, chaosEndEpoch]. */
    uint32_t chaosStartEpoch = 0;
    uint32_t chaosEndEpoch = 0xffffffffu;

    bool
    any() const
    {
        return dropRate > 0.0 || dupRate > 0.0 || delayRate > 0.0 ||
               corruptRate > 0.0 || reorderRate > 0.0 ||
               relinkFailRate > 0.0 || !relinkBlackoutEpochs.empty();
    }
};

/**
 * Parse a spec string: comma-separated `key=value` pairs with keys
 * `seed` (integer), `drop`/`dup`/`delay`/`corrupt`/`reorder`/
 * `relinkfail` (rates in [0, 1]), `maxdelay` (epochs), `start`/`end`
 * (the chaos window), and `blackout` (colon-separated epoch list).
 * Example: "seed=7,drop=0.1,delay=0.2,maxdelay=2,blackout=4:5".
 */
support::StatusOr<ChaosSpec> parseChaosSpec(const std::string &text);

/** What the schedule actually injected (ground truth for the gates). */
struct ChaosStats
{
    uint64_t shardsSeen = 0;      ///< Wire shards presented in-window.
    uint64_t shardsDropped = 0;
    uint64_t shardsDuplicated = 0;
    uint64_t shardsDelayed = 0;
    uint64_t shardsCorrupted = 0;
    uint32_t maxDelayInjected = 0; ///< Largest delay actually drawn.
    uint64_t reorderSwaps = 0;     ///< Extra swaps applied.

    /** Inversions present in every epoch's delivered stream, counted
     *  with the service's own algorithm (the consistency-check twin of
     *  fleet::FaultDetection::inversions; not windowed). */
    uint64_t arrivalInversions = 0;

    uint64_t relinkFaults = 0; ///< Relink attempts crashed.
};

/** The FleetChaosHooks implementation a FleetService runs under. */
class ChaosSchedule : public fleet::FleetChaosHooks
{
  public:
    explicit ChaosSchedule(const ChaosSpec &spec) : spec_(spec) {}

    void onWireShards(uint32_t epoch,
                      std::vector<fleet::WireShard> &wire) override;
    bool failRelink(uint32_t epoch, uint32_t attempt) override;

    const ChaosSpec &spec() const { return spec_; }
    const ChaosStats &stats() const { return stats_; }

  private:
    void injectWireFaults(uint32_t epoch,
                          std::vector<fleet::WireShard> &wire);

    ChaosSpec spec_;
    ChaosStats stats_;
};

} // namespace propeller::faultinject

#endif // PROPELLER_FAULTINJECT_CHAOS_H
