#ifndef PROPELLER_BOLT_BOLT_H
#define PROPELLER_BOLT_BOLT_H

/**
 * @file
 * The BOLT-style monolithic post-link optimizer (paper baseline).
 *
 * Pipeline, mirroring llvm-bolt with the paper's evaluation options
 * (-reorder-blocks=cache+ -reorder-functions=hfsort -split-functions
 * -split-all-cold, plus -lite=0 for performance runs):
 *
 *  1. perf2bolt — disassemble the binary, convert raw LBR samples to
 *     per-block counts (Figure 4's comparison point);
 *  2. reconstruct CFGs, reorder blocks with Ext-TSP ("cache+"), split
 *     cold blocks, reorder functions with hfsort;
 *  3. rewrite: emit optimized functions into a new 2 MiB-aligned text
 *     segment, retaining the original .text (the Figure 6 size cost);
 *     functions whose disassembly failed stay in place.
 *
 * The rewriter copies application data verbatim — including startup
 * integrity-check constants it cannot know how to regenerate — which is
 * how rewritten binaries of checked applications crash at startup
 * (section 5.8 / Table 3).
 */

#include <cstdint>

#include "bolt/disassembler.h"
#include "profile/profile.h"
#include "support/memory_meter.h"

namespace propeller::bolt {

/** BOLT options (subset of the paper's evaluation flags). */
struct BoltOptions
{
    /**
     * lite mode: only functions with samples are optimized (Lightning
     * BOLT's memory-saving mode); -lite=0 processes everything.
     */
    bool lite = false;

    bool reorderBlocks = true;    ///< -reorder-blocks=cache+ (Ext-TSP).
    bool splitFunctions = true;   ///< -split-functions -split-all-cold.
    bool reorderFunctions = true; ///< -reorder-functions=hfsort.

    /** Align the new text segment to 2 MiB (default; Figure 6 note). */
    bool alignTextTo2M = true;
};

/** Statistics for Figures 4, 5, 6 and 9. */
struct BoltStats
{
    uint64_t convertPeakMemory = 0; ///< perf2bolt modelled peak.
    uint64_t optPeakMemory = 0;     ///< llvm-bolt modelled peak.
    uint32_t functionsProcessed = 0;
    uint32_t functionsSkipped = 0; ///< Disassembly failures / multi-range.
    uint64_t newTextBytes = 0;
    uint64_t disassembledInsts = 0;
};

/** Converted profile: per-(from,to) branch counts plus ranges. */
struct BoltProfile
{
    profile::AggregatedProfile agg;
};

/**
 * perf2bolt: convert a raw LBR profile against @p exe.
 *
 * Requires a full disassembly of the binary to resolve addresses, which
 * is why its memory scales with binary size (Figure 4).
 *
 * @param selective Lightning-BOLT-style selective processing (the
 *        improvement the paper's section 5.1 says would reduce this
 *        step's memory): discover which functions have samples using the
 *        symbol table alone, then disassemble only those.
 */
BoltProfile convertProfile(const linker::Executable &exe,
                           const profile::Profile &prof,
                           BoltStats *stats = nullptr,
                           MemoryMeter *meter = nullptr,
                           bool selective = false);

/** Run the full optimizer and produce the rewritten binary. */
linker::Executable optimize(const linker::Executable &exe,
                            const BoltProfile &profile,
                            const BoltOptions &opts = {},
                            BoltStats *stats = nullptr,
                            MemoryMeter *meter = nullptr);

} // namespace propeller::bolt

#endif // PROPELLER_BOLT_BOLT_H
