#include "bolt/bolt.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "propeller/ext_tsp.h"
#include "propeller/hfsort.h"

namespace propeller::bolt {

namespace {

using core::ExtTspOptions;
using core::LayoutEdge;
using core::LayoutNode;
using isa::Instruction;
using isa::Opcode;

constexpr uint64_t kHugePage = 2 * 1024 * 1024;

/** Modelled MCPlus annotation bytes per instruction during rewriting. */
constexpr uint64_t kAnnotationBytesPerInst = 48;

uint64_t
alignUp(uint64_t value, uint64_t alignment)
{
    return (value + alignment - 1) / alignment * alignment;
}

/** Per-function profile attribution. */
struct FuncProfile
{
    std::vector<uint64_t> blockFreq;
    // (fromBlock << 32 | toBlock) -> weight, intra-function branches.
    std::unordered_map<uint64_t, uint64_t> edges;
    uint64_t totalSamples = 0;
};

/** Locate the function containing an address via sorted starts. */
class FunctionIndex
{
  public:
    explicit FunctionIndex(const std::vector<BoltFunction> &funcs)
    {
        for (size_t i = 0; i < funcs.size(); ++i)
            starts_.push_back({funcs[i].start, funcs[i].end,
                               static_cast<uint32_t>(i)});
        std::sort(starts_.begin(), starts_.end());
    }

    int
    at(uint64_t addr) const
    {
        auto it = std::upper_bound(
            starts_.begin(), starts_.end(),
            std::tuple<uint64_t, uint64_t, uint32_t>{addr, UINT64_MAX,
                                                     UINT32_MAX});
        if (it == starts_.begin())
            return -1;
        --it;
        if (addr >= std::get<1>(*it))
            return -1;
        return static_cast<int>(std::get<2>(*it));
    }

    /** Function whose body starts exactly at @p addr; -1 otherwise. */
    int
    startingAt(uint64_t addr) const
    {
        auto it = std::lower_bound(
            starts_.begin(), starts_.end(),
            std::tuple<uint64_t, uint64_t, uint32_t>{addr, 0, 0});
        if (it == starts_.end() || std::get<0>(*it) != addr)
            return -1;
        return static_cast<int>(std::get<2>(*it));
    }

  private:
    std::vector<std::tuple<uint64_t, uint64_t, uint32_t>> starts_;
};

/** Attribute aggregated LBR counts to blocks and intra-function edges. */
std::vector<FuncProfile>
attributeProfile(const std::vector<BoltFunction> &funcs,
                 const FunctionIndex &index,
                 const profile::AggregatedProfile &agg)
{
    std::vector<FuncProfile> profiles(funcs.size());
    for (size_t i = 0; i < funcs.size(); ++i)
        profiles[i].blockFreq.assign(funcs[i].blocks.size(), 0);

    std::vector<std::unordered_map<uint64_t, uint64_t>> in(funcs.size());
    std::vector<std::unordered_map<uint64_t, uint64_t>> out(funcs.size());

    auto addFlow = [&](int f, int block, uint64_t w, bool incoming) {
        auto &map = incoming ? in[f] : out[f];
        map[block] += w;
    };

    for (const auto &[key, weight] : agg.branches) {
        uint64_t from = profile::AggregatedProfile::keyFrom(key);
        uint64_t to = profile::AggregatedProfile::keyTo(key);
        int ff = index.at(from);
        int ft = index.at(to);
        if (ff < 0 || ft < 0 || !funcs[ff].ok || !funcs[ft].ok)
            continue;
        int bf = funcs[ff].blockAt(from);
        int bt = funcs[ft].blockAt(to);
        if (bf < 0 || bt < 0)
            continue;
        if (ff == ft && funcs[ft].blocks[bt].start == to) {
            profiles[ff].edges[(static_cast<uint64_t>(bf) << 32) | bt] +=
                weight;
            addFlow(ff, bf, weight, false);
            addFlow(ft, bt, weight, true);
        } else if (ff != ft) {
            // Call or return; counts toward hotness of both endpoints.
            addFlow(ff, bf, weight, false);
            addFlow(ft, bt, weight, true);
        }
    }

    for (const auto &[key, weight] : agg.ranges) {
        uint64_t start = profile::AggregatedProfile::keyFrom(key);
        uint64_t end = profile::AggregatedProfile::keyTo(key);
        int f = index.at(start);
        if (f < 0 || !funcs[f].ok || end < start)
            continue;
        int b = funcs[f].blockAt(start);
        if (b < 0)
            continue;
        addFlow(f, b, weight, true);
        int steps = 0;
        while (static_cast<size_t>(b) + 1 < funcs[f].blocks.size() &&
               end >= funcs[f].blocks[b].end && ++steps < 512) {
            int nb = b + 1;
            if (funcs[f].blocks[nb].start != funcs[f].blocks[b].end)
                break;
            profiles[f].edges[(static_cast<uint64_t>(b) << 32) | nb] +=
                weight;
            addFlow(f, b, weight, false);
            addFlow(f, nb, weight, true);
            b = nb;
        }
    }

    for (size_t f = 0; f < funcs.size(); ++f) {
        for (size_t b = 0; b < funcs[f].blocks.size(); ++b) {
            uint64_t wi = 0;
            uint64_t wo = 0;
            if (auto it = in[f].find(b); it != in[f].end())
                wi = it->second;
            if (auto it = out[f].find(b); it != out[f].end())
                wo = it->second;
            profiles[f].blockFreq[b] = std::max(wi, wo);
            profiles[f].totalSamples += profiles[f].blockFreq[b];
        }
    }
    return profiles;
}

} // namespace

BoltProfile
convertProfile(const linker::Executable &exe, const profile::Profile &prof,
               BoltStats *stats_out, MemoryMeter *meter, bool selective)
{
    BoltStats stats;
    MemoryMeter local;

    // Raw profile buffered and decoded.
    local.charge(prof.sizeInBytes() * 2);

    // The binary itself plus function-oriented linear disassembly —
    // required just to resolve sample addresses (paper section 5.1).
    local.charge(exe.text.size());
    {
        std::vector<BoltFunction> funcs;
        if (selective) {
            // Lightning-BOLT-style selective processing: find the
            // functions containing sample addresses with the symbol
            // table alone, then disassemble only those.
            std::vector<uint64_t> sampled_addrs;
            for (const auto &sample : prof.samples) {
                for (unsigned i = 0; i < sample.count; ++i)
                    sampled_addrs.push_back(sample.records[i].from);
            }
            std::sort(sampled_addrs.begin(), sampled_addrs.end());

            linker::Executable view = exe;
            view.symbols.clear();
            for (const auto &sym : exe.symbols) {
                if (!sym.isPrimary)
                    continue;
                auto it = std::lower_bound(sampled_addrs.begin(),
                                           sampled_addrs.end(), sym.start);
                if (it != sampled_addrs.end() && *it < sym.end)
                    view.symbols.push_back(sym);
            }
            funcs = disassembleBinary(view);
        } else {
            funcs = disassembleBinary(exe);
        }

        uint64_t disasm_bytes = 0;
        for (const auto &fn : funcs) {
            disasm_bytes += fn.footprint();
            stats.disassembledInsts += fn.insts.size();
            if (fn.ok)
                ++stats.functionsProcessed;
            else
                ++stats.functionsSkipped;
        }
        local.charge(disasm_bytes);

        BoltProfile out;
        out.agg = profile::aggregate(prof);
        local.charge((out.agg.branches.size() + out.agg.ranges.size()) *
                     48);

        stats.convertPeakMemory = local.peak();
        if (meter) {
            meter->charge(stats.convertPeakMemory);
            meter->release(stats.convertPeakMemory);
        }
        if (stats_out)
            *stats_out = stats;
        return out;
    }
}

linker::Executable
optimize(const linker::Executable &exe, const BoltProfile &profile,
         const BoltOptions &opts, BoltStats *stats_out, MemoryMeter *meter)
{
    BoltStats stats;
    MemoryMeter local;

    local.charge(exe.text.size()); // Input binary buffered.

    std::vector<BoltFunction> funcs = disassembleBinary(exe);
    FunctionIndex index(funcs);
    uint64_t disasm_bytes = 0;
    for (const auto &fn : funcs) {
        disasm_bytes += fn.footprint();
        stats.disassembledInsts += fn.insts.size();
    }
    local.charge(disasm_bytes);
    // MCPlus annotations for every instruction being rewritten.
    local.charge(stats.disassembledInsts * kAnnotationBytesPerInst);

    std::vector<FuncProfile> profiles =
        attributeProfile(funcs, index, profile.agg);
    {
        uint64_t edge_bytes = 0;
        for (const auto &p : profiles)
            edge_bytes += p.edges.size() * 48 + p.blockFreq.size() * 8;
        local.charge(edge_bytes);
    }

    // ---- Select and order the functions to rewrite ----------------------
    std::vector<uint32_t> processed;
    for (uint32_t f = 0; f < funcs.size(); ++f) {
        if (!funcs[f].ok) {
            ++stats.functionsSkipped;
            continue;
        }
        if (opts.lite && profiles[f].totalSamples == 0)
            continue;
        processed.push_back(f);
    }
    stats.functionsProcessed = static_cast<uint32_t>(processed.size());

    std::vector<uint32_t> order = processed;
    if (opts.reorderFunctions) {
        std::vector<core::HfsortNode> nodes(processed.size());
        std::unordered_map<uint32_t, uint32_t> local_of;
        for (uint32_t i = 0; i < processed.size(); ++i) {
            uint32_t f = processed[i];
            nodes[i].size =
                std::max<uint64_t>(funcs[f].end - funcs[f].start, 1);
            nodes[i].samples = profiles[f].totalSamples;
            local_of[f] = i;
        }
        std::vector<core::HfsortArc> arcs;
        for (const auto &[key, weight] : profile.agg.branches) {
            uint64_t from = profile::AggregatedProfile::keyFrom(key);
            uint64_t to = profile::AggregatedProfile::keyTo(key);
            int ff = index.at(from);
            int ft = index.startingAt(to);
            if (ff < 0 || ft < 0 || ff == ft)
                continue;
            auto itf = local_of.find(ff);
            auto itt = local_of.find(ft);
            if (itf == local_of.end() || itt == local_of.end())
                continue;
            arcs.push_back({itf->second, itt->second, weight});
        }
        std::vector<uint32_t> perm = core::hfsortOrder(nodes, arcs);
        order.clear();
        for (uint32_t p : perm)
            order.push_back(processed[p]);
    }

    // ---- Per-function block layout ---------------------------------------
    // For each processed function: ordered hot blocks + cold block list.
    std::vector<std::vector<uint32_t>> hot_layout(funcs.size());
    std::vector<std::vector<uint32_t>> cold_layout(funcs.size());

    for (uint32_t f : processed) {
        const BoltFunction &fn = funcs[f];
        const FuncProfile &fp = profiles[f];
        size_t nblocks = fn.blocks.size();
        if (fp.totalSamples == 0 || !opts.reorderBlocks) {
            for (uint32_t b = 0; b < nblocks; ++b)
                hot_layout[f].push_back(b);
            continue;
        }
        std::vector<char> hot(nblocks, 0);
        for (size_t b = 0; b < nblocks; ++b)
            hot[b] = fp.blockFreq[b] > 0;
        hot[0] = 1; // Entry block anchors the function.
        std::vector<LayoutNode> lnodes;
        std::vector<int> lindex(nblocks, -1);
        std::vector<uint32_t> lblock;
        for (uint32_t b = 0; b < nblocks; ++b) {
            if (!hot[b])
                continue;
            lindex[b] = static_cast<int>(lnodes.size());
            lnodes.push_back(
                {std::max<uint64_t>(fn.blocks[b].end - fn.blocks[b].start,
                                    1),
                 fp.blockFreq[b]});
            lblock.push_back(b);
        }
        std::vector<LayoutEdge> ledges;
        for (const auto &[key, weight] : fp.edges) {
            int a = lindex[key >> 32];
            int b = lindex[key & 0xffffffff];
            if (a >= 0 && b >= 0) {
                ledges.push_back({static_cast<uint32_t>(a),
                                  static_cast<uint32_t>(b), weight});
            }
        }
        std::vector<uint32_t> horder = core::extTspOrder(
            lnodes, ledges, static_cast<uint32_t>(lindex[0]),
            ExtTspOptions{});
        for (uint32_t i : horder)
            hot_layout[f].push_back(lblock[i]);
        for (uint32_t b = 0; b < nblocks; ++b) {
            if (!hot[b]) {
                if (opts.splitFunctions)
                    cold_layout[f].push_back(b);
                else
                    hot_layout[f].push_back(b);
            }
        }
    }

    // ---- Emission ---------------------------------------------------------
    struct EmitBlock
    {
        uint32_t func;
        uint32_t block;
        bool firstOfFunc = false;
        // Terminator decision (computed in the sizing pass).
        uint64_t size = 0;
        bool emitJcc = false;
        bool invertJcc = false;
        uint64_t jccTarget = 0; ///< Old address of the Jcc target block.
        bool emitJmp = false;
        uint64_t jmpTarget = 0; ///< Old address of the trailing jump target.
    };

    std::vector<EmitBlock> emit;
    for (uint32_t f : order) {
        bool first = true;
        for (uint32_t b : hot_layout[f]) {
            emit.push_back({f, b, first});
            first = false;
        }
    }
    // Cold zone after all hot parts.
    for (uint32_t f : order) {
        bool first = true;
        for (uint32_t b : cold_layout[f]) {
            emit.push_back({f, b, first});
            first = false;
        }
    }

    // Sizing pass: decide terminator encodings from emission adjacency.
    for (size_t e = 0; e < emit.size(); ++e) {
        EmitBlock &eb = emit[e];
        const BoltFunction &fn = funcs[eb.func];
        const BoltBlock &block = fn.blocks[eb.block];

        uint64_t next_old_start = 0;
        bool has_next_same_func = false;
        if (e + 1 < emit.size() && emit[e + 1].func == eb.func) {
            has_next_same_func = true;
            next_old_start = fn.blocks[emit[e + 1].block].start;
        }

        uint64_t body = 0;
        bool ends_with_branch = false;
        const BoltInst *last = nullptr;
        for (uint32_t i = 0; i < block.numInsts; ++i) {
            const BoltInst &bi = fn.insts[block.firstInst + i];
            bool is_last = (i + 1 == block.numInsts);
            if (is_last && (bi.inst.isCondBranch() ||
                            bi.inst.isUncondBranch())) {
                ends_with_branch = true;
                last = &bi;
            } else {
                body += bi.inst.size();
            }
        }
        eb.size = body;

        if (ends_with_branch && last->inst.isCondBranch()) {
            uint64_t t = last->addr + last->inst.size() +
                         static_cast<int64_t>(last->inst.rel);
            uint64_t fthru = block.end;
            if (has_next_same_func && next_old_start == fthru) {
                eb.emitJcc = true;
                eb.invertJcc = false;
                eb.jccTarget = t;
            } else if (has_next_same_func && next_old_start == t) {
                eb.emitJcc = true;
                eb.invertJcc = true;
                eb.jccTarget = fthru;
            } else {
                eb.emitJcc = true;
                eb.invertJcc = false;
                eb.jccTarget = t;
                eb.emitJmp = true;
                eb.jmpTarget = fthru;
            }
            eb.size += Instruction::sizeOf(Opcode::JccNear);
            if (eb.emitJmp)
                eb.size += Instruction::sizeOf(Opcode::JmpNear);
        } else if (ends_with_branch) {
            uint64_t t = last->addr + last->inst.size() +
                         static_cast<int64_t>(last->inst.rel);
            if (!(has_next_same_func && next_old_start == t)) {
                eb.emitJmp = true;
                eb.jmpTarget = t;
                eb.size += Instruction::sizeOf(Opcode::JmpNear);
            }
        } else {
            // Block falls through (ends at a leader boundary or a
            // ret/halt); returns and halts are part of the body.
            const BoltInst &bi = fn.insts[block.firstInst +
                                          block.numInsts - 1];
            bool terminal = bi.inst.isRet() || bi.inst.op == Opcode::Halt;
            if (!terminal &&
                !(has_next_same_func && next_old_start == block.end)) {
                eb.emitJmp = true;
                eb.jmpTarget = block.end;
                eb.size += Instruction::sizeOf(Opcode::JmpNear);
            }
        }
    }

    // Address assignment.
    uint64_t new_base =
        alignUp(exe.textEnd(), opts.alignTextTo2M ? kHugePage : 4096);
    // Old block address -> new block address, per function.
    std::unordered_map<uint64_t, uint64_t> new_addr;
    uint64_t cursor = new_base;
    for (auto &eb : emit) {
        if (eb.firstOfFunc)
            cursor = alignUp(cursor, 16);
        new_addr[funcs[eb.func].blocks[eb.block].start] = cursor;
        cursor += eb.size;
    }
    uint64_t new_end = cursor;
    stats.newTextBytes = new_end - new_base;
    local.charge(stats.newTextBytes); // Output buffer.

    // New primary entry per processed function.
    std::unordered_map<uint32_t, uint64_t> func_new_start;
    std::unordered_map<uint32_t, uint64_t> func_new_end;
    for (const auto &eb : emit) {
        const BoltFunction &fn = funcs[eb.func];
        uint64_t na = new_addr[fn.blocks[eb.block].start];
        // The primary range covers the hot part only; track its extent.
        bool is_hot_part = false;
        for (uint32_t b : hot_layout[eb.func])
            is_hot_part |= (b == eb.block);
        if (is_hot_part) {
            auto [it, inserted] = func_new_start.emplace(eb.func, na);
            if (!inserted)
                it->second = std::min(it->second, na);
            auto [it2, ins2] = func_new_end.emplace(eb.func, na + eb.size);
            if (!ins2)
                it2->second = std::max(it2->second, na + eb.size);
        }
    }

    auto resolveCall = [&](uint64_t old_target) -> uint64_t {
        int callee = index.startingAt(old_target);
        if (callee < 0)
            return old_target;
        auto it = func_new_start.find(static_cast<uint32_t>(callee));
        if (it == func_new_start.end())
            return old_target; // Skipped function: stays in old text.
        return it->second;
    };

    auto resolveBlock = [&](uint64_t old_block_start) -> uint64_t {
        auto it = new_addr.find(old_block_start);
        assert(it != new_addr.end() && "branch to un-emitted block");
        return it->second;
    };

    // Encoding pass.
    linker::Executable out;
    out.name = exe.name + ".bolt";
    out.textBase = exe.textBase;
    out.hugePagesText = exe.hugePagesText;
    out.text = exe.text;
    out.text.resize(new_end - exe.textBase,
                    static_cast<uint8_t>(Opcode::Nop));

    std::vector<uint8_t> scratch;
    for (const auto &eb : emit) {
        const BoltFunction &fn = funcs[eb.func];
        const BoltBlock &block = fn.blocks[eb.block];
        uint64_t pc = new_addr[block.start];

        auto emitInst = [&](Instruction inst) {
            scratch.clear();
            inst.encode(scratch);
            std::copy(scratch.begin(), scratch.end(),
                      out.text.begin() + (pc - out.textBase));
            pc += scratch.size();
        };

        for (uint32_t i = 0; i < block.numInsts; ++i) {
            const BoltInst &bi = fn.insts[block.firstInst + i];
            bool is_last = (i + 1 == block.numInsts);
            if (is_last &&
                (bi.inst.isCondBranch() || bi.inst.isUncondBranch())) {
                break; // Terminator re-emitted below.
            }
            Instruction inst = bi.inst;
            if (inst.isCall()) {
                uint64_t old_target = bi.addr + inst.size() +
                                      static_cast<int64_t>(inst.rel);
                uint64_t target = resolveCall(old_target);
                inst.rel = static_cast<int32_t>(
                    static_cast<int64_t>(target) -
                    static_cast<int64_t>(pc + inst.size()));
            }
            emitInst(inst);
        }

        if (eb.emitJcc) {
            const BoltInst &last =
                fn.insts[block.firstInst + block.numInsts - 1];
            Instruction jcc = last.inst;
            jcc.op = Opcode::JccNear;
            if (eb.invertJcc)
                jcc.flags ^= isa::kJccInvert;
            uint64_t target = resolveBlock(eb.jccTarget);
            jcc.rel = static_cast<int32_t>(
                static_cast<int64_t>(target) -
                static_cast<int64_t>(pc + jcc.size()));
            emitInst(jcc);
        }
        if (eb.emitJmp) {
            Instruction jmp;
            jmp.op = Opcode::JmpNear;
            uint64_t target = resolveBlock(eb.jmpTarget);
            jmp.rel = static_cast<int32_t>(
                static_cast<int64_t>(target) -
                static_cast<int64_t>(pc + jmp.size()));
            emitInst(jmp);
        }
        assert(pc == new_addr[block.start] + eb.size);
    }

    // ---- Symbols, entry, sizes -------------------------------------------
    for (const auto &sym : exe.symbols) {
        linker::FuncRange range = sym;
        int f = index.startingAt(sym.start);
        if (f >= 0 && sym.isPrimary) {
            auto it = func_new_start.find(static_cast<uint32_t>(f));
            if (it != func_new_start.end()) {
                range.start = it->second;
                range.end = func_new_end[static_cast<uint32_t>(f)];
            }
        }
        out.symbols.push_back(std::move(range));
    }
    // Cold-zone ranges.
    for (uint32_t f : order) {
        if (cold_layout[f].empty())
            continue;
        uint64_t lo = UINT64_MAX;
        uint64_t hi = 0;
        for (const auto &eb : emit) {
            if (eb.func != f)
                continue;
            bool is_cold = false;
            for (uint32_t b : cold_layout[f])
                is_cold |= (b == eb.block);
            if (!is_cold)
                continue;
            uint64_t na = new_addr[funcs[f].blocks[eb.block].start];
            lo = std::min(lo, na);
            hi = std::max(hi, na + eb.size);
        }
        if (lo < hi) {
            out.symbols.push_back({funcs[f].name + ".bolt.cold",
                                   funcs[f].name, lo, hi, false, false});
        }
    }

    int entry_func = index.at(exe.entryAddress);
    assert(entry_func >= 0);
    auto eit = func_new_start.find(static_cast<uint32_t>(entry_func));
    out.entryAddress =
        eit != func_new_start.end() ? eit->second : exe.entryAddress;

    // Integrity-check constants are application data the rewriter cannot
    // regenerate; copied verbatim (section 5.8).
    out.integrityChecks = exe.integrityChecks;

    out.sizes = exe.sizes;
    out.sizes.text = out.text.size();
    out.sizes.relocs = 0; // Consumed during rewriting.
    // Split functions need extra FDEs for their cold fragments (-split-eh).
    uint32_t split_funcs = 0;
    for (uint32_t f : order) {
        if (!cold_layout[f].empty())
            ++split_funcs;
    }
    out.sizes.ehFrame = exe.sizes.ehFrame + split_funcs * 32ull;

    stats.optPeakMemory = local.peak();
    if (meter) {
        meter->charge(stats.optPeakMemory);
        meter->release(stats.optPeakMemory);
    }
    if (stats_out)
        *stats_out = stats;
    return out;
}

} // namespace propeller::bolt
