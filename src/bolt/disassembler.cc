#include "bolt/disassembler.h"

#include <algorithm>
#include <map>
#include <set>

namespace propeller::bolt {

int
BoltFunction::blockAt(uint64_t addr) const
{
    auto it = std::upper_bound(
        blocks.begin(), blocks.end(), addr,
        [](uint64_t a, const BoltBlock &b) { return a < b.start; });
    if (it == blocks.begin())
        return -1;
    --it;
    if (addr >= it->end)
        return -1;
    return static_cast<int>(it - blocks.begin());
}

const char *
decodeErrorName(DecodeError error)
{
    switch (error) {
      case DecodeError::None:
        return "none";
      case DecodeError::InvalidOpcode:
        return "invalid-opcode";
      case DecodeError::Truncated:
        return "truncated";
    }
    return "none";
}

RangeDisassembly
disassembleRange(const linker::Executable &exe, uint64_t start,
                 uint64_t end)
{
    RangeDisassembly out;
    if (start < exe.textBase || end > exe.textEnd() || start > end) {
        out.error = DecodeError::Truncated;
        out.errorAddr = start;
        return out;
    }
    uint64_t pc = start;
    while (pc < end) {
        uint64_t offset = pc - exe.textBase;
        auto inst = isa::decode(exe.text.data() + offset, end - pc);
        if (!inst) {
            // A defined opcode that would not fit the remaining bytes is
            // a truncated encoding; anything else is embedded data.
            out.error = isa::isValidOpcode(exe.text[offset])
                            ? DecodeError::Truncated
                            : DecodeError::InvalidOpcode;
            out.errorAddr = pc;
            return out;
        }
        out.insts.push_back({pc, *inst});
        pc += inst->size();
    }
    return out;
}

namespace {

void
buildBlocks(BoltFunction &fn)
{
    // Leaders: function start, branch targets, instructions after
    // control transfers.
    std::set<uint64_t> leaders;
    leaders.insert(fn.start);
    for (const auto &bi : fn.insts) {
        const isa::Instruction &inst = bi.inst;
        if (inst.isCondBranch() || inst.isUncondBranch()) {
            uint64_t target = bi.addr + inst.size() +
                              static_cast<int64_t>(inst.rel);
            if (target >= fn.start && target < fn.end)
                leaders.insert(target);
            leaders.insert(bi.addr + inst.size());
        } else if (inst.isRet() || inst.op == isa::Opcode::Halt) {
            leaders.insert(bi.addr + inst.size());
        }
    }

    uint32_t inst_idx = 0;
    std::vector<uint64_t> sorted(leaders.begin(), leaders.end());
    for (size_t l = 0; l < sorted.size(); ++l) {
        uint64_t start = sorted[l];
        uint64_t end = (l + 1 < sorted.size()) ? sorted[l + 1] : fn.end;
        if (start >= fn.end)
            break;
        BoltBlock block;
        block.start = start;
        block.end = end;
        while (inst_idx < fn.insts.size() &&
               fn.insts[inst_idx].addr < start) {
            ++inst_idx;
        }
        block.firstInst = inst_idx;
        uint32_t n = 0;
        while (inst_idx + n < fn.insts.size() &&
               fn.insts[inst_idx + n].addr < end) {
            ++n;
        }
        block.numInsts = n;
        fn.blocks.push_back(block);
    }
}

} // namespace

std::vector<BoltFunction>
disassembleBinary(const linker::Executable &exe)
{
    // Group symbol ranges by function; BOLT-style processing assumes one
    // contiguous range per function.
    std::map<std::string, std::vector<const linker::FuncRange *>> by_func;
    for (const auto &sym : exe.symbols)
        by_func[sym.parentFunction].push_back(&sym);

    std::vector<BoltFunction> functions;
    functions.reserve(by_func.size());
    for (const auto &[name, ranges] : by_func) {
        const linker::FuncRange *primary = nullptr;
        for (const auto *range : ranges) {
            if (range->isPrimary)
                primary = range;
        }
        if (!primary)
            continue;
        BoltFunction fn;
        fn.name = name;
        fn.start = primary->start;
        fn.end = primary->end;
        if (ranges.size() > 1 || primary->isHandAsm) {
            // Split functions and hand-written assembly are not safely
            // rewritable from disassembly.
            fn.ok = false;
        } else {
            RangeDisassembly dis = disassembleRange(exe, fn.start, fn.end);
            fn.ok = dis.ok();
            fn.error = dis.error;
            fn.errorAddr = dis.errorAddr;
            if (fn.ok)
                fn.insts = std::move(dis.insts);
        }
        if (fn.ok)
            buildBlocks(fn);
        functions.push_back(std::move(fn));
    }
    return functions;
}

} // namespace propeller::bolt
