#ifndef PROPELLER_BOLT_DISASSEMBLER_H
#define PROPELLER_BOLT_DISASSEMBLER_H

/**
 * @file
 * Disassembly-driven binary analysis — the BOLT-style approach Propeller
 * is compared against (paper sections 2.4, 5).
 *
 * Function discovery walks the symbol table; each function body is then
 * linearly disassembled and its CFG reconstructed from branch targets.
 * Every decoded instruction materializes an MCInst-like record, which is
 * the memory cost that scales with *total* binary size rather than hot
 * code size (Figure 4/5).  Functions containing embedded data (hand-
 * written assembly) fail to decode and are marked non-optimizable — the
 * "disassembly is an inexact science" failure mode of section 1.1.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "linker/executable.h"

namespace propeller::bolt {

/** One decoded instruction at its address. */
struct BoltInst
{
    uint64_t addr = 0;
    isa::Instruction inst;
};

/** A reconstructed basic block. */
struct BoltBlock
{
    uint64_t start = 0;
    uint64_t end = 0;
    uint32_t firstInst = 0; ///< Index into BoltFunction::insts.
    uint32_t numInsts = 0;
    uint64_t freq = 0; ///< Filled by profile attribution.
};

/** Why linear disassembly of a range stopped early. */
enum class DecodeError : uint8_t {
    None,          ///< The whole range decoded.
    InvalidOpcode, ///< Byte is not a defined opcode (embedded data).
    Truncated,     ///< Valid opcode, encoding runs past the range end.
};

const char *decodeErrorName(DecodeError error);

/**
 * Result of linearly disassembling one address range.  On failure,
 * @ref insts holds everything decoded *before* @ref errorAddr — the
 * prefix is still useful to the static verifier for boundary analysis.
 */
struct RangeDisassembly
{
    std::vector<BoltInst> insts;
    DecodeError error = DecodeError::None;
    uint64_t errorAddr = 0; ///< First undecodable address (on failure).

    bool ok() const { return error == DecodeError::None; }
};

/**
 * Linear disassembly of [start, end) within @p exe's text image.
 * The range must lie inside the image (checked).
 */
RangeDisassembly disassembleRange(const linker::Executable &exe,
                                  uint64_t start, uint64_t end);

/** A discovered and (possibly) disassembled function. */
struct BoltFunction
{
    std::string name;
    uint64_t start = 0;
    uint64_t end = 0;

    /** False when disassembly failed (embedded data / hand-asm). */
    bool ok = true;

    /** Why decode failed (None for hand-asm/multi-range skips). */
    DecodeError error = DecodeError::None;
    uint64_t errorAddr = 0; ///< First undecodable address, if any.

    std::vector<BoltInst> insts;
    std::vector<BoltBlock> blocks;

    /** Block index containing @p addr; -1 if none. */
    int blockAt(uint64_t addr) const;

    /** Modelled memory for the MCInst-like representation. */
    uint64_t
    footprint() const
    {
        return 96 + insts.size() * 56 + blocks.size() * 48;
    }
};

/**
 * Discover and disassemble all functions of @p exe (primary symbol ranges;
 * multi-range functions and hand-written assembly are marked !ok).
 */
std::vector<BoltFunction> disassembleBinary(const linker::Executable &exe);

} // namespace propeller::bolt

#endif // PROPELLER_BOLT_DISASSEMBLER_H
