#include "ir/verifier.h"

#include <unordered_map>
#include <unordered_set>

namespace propeller::ir {

using support::ErrorCode;
using support::Status;

namespace {

void
verifyFunction(const Function &fn, const std::string &mod_name,
               const std::unordered_set<std::string> &all_functions,
               std::unordered_set<uint32_t> &branch_ids,
               std::vector<Status> &errors)
{
    auto err = [&](ErrorCode code, const std::string &msg) {
        errors.push_back(
            Status(code, mod_name + "/" + fn.name + ": " + msg));
    };

    if (fn.blocks.empty()) {
        err(ErrorCode::kMalformed, "function has no blocks");
        return;
    }
    if (fn.entry().isLandingPad)
        err(ErrorCode::kMalformed, "entry block is a landing pad");

    std::unordered_set<uint32_t> ids;
    for (const auto &bb : fn.blocks) {
        if (!ids.insert(bb->id).second) {
            err(ErrorCode::kMalformed,
                "duplicate block id " + std::to_string(bb->id));
        }
    }

    for (const auto &bb : fn.blocks) {
        const std::string where = "bb" + std::to_string(bb->id);
        if (bb->insts.empty()) {
            err(ErrorCode::kMalformed, where + ": empty block");
            continue;
        }
        for (size_t i = 0; i + 1 < bb->insts.size(); ++i) {
            if (bb->insts[i].isTerminator()) {
                err(ErrorCode::kMalformed,
                    where + ": terminator before end of block");
            }
        }
        const Inst &term = bb->insts.back();
        if (!term.isTerminator()) {
            err(ErrorCode::kMalformed,
                where + ": block does not end with a terminator");
            continue;
        }
        for (uint32_t succ : bb->successors()) {
            if (!ids.count(succ)) {
                err(ErrorCode::kUnresolved,
                    where + ": branch to unknown block " +
                        std::to_string(succ));
            }
        }
        if (term.kind == InstKind::CondBr) {
            if (!branch_ids.insert(term.branchId).second) {
                err(ErrorCode::kMalformed,
                    where + ": duplicate branch id " +
                        std::to_string(term.branchId));
            }
        }
        for (const Inst &inst : bb->insts) {
            if (inst.kind == InstKind::Call &&
                !all_functions.count(inst.callee)) {
                err(ErrorCode::kUnresolved,
                    where + ": call to unknown function '" + inst.callee +
                        "'");
            }
        }
    }
}

} // namespace

std::vector<Status>
verifyAll(const Program &program)
{
    std::vector<Status> errors;

    std::unordered_set<std::string> function_names;
    std::unordered_set<std::string> module_names;
    for (const auto &mod : program.modules) {
        if (mod->name.empty())
            errors.push_back(
                Status(ErrorCode::kMalformed, "unnamed module"));
        if (!module_names.insert(mod->name).second) {
            errors.push_back(Status(ErrorCode::kMalformed,
                                    "duplicate module name '" + mod->name +
                                        "'"));
        }
        for (const auto &fn : mod->functions) {
            if (fn->name.empty()) {
                errors.push_back(Status(ErrorCode::kMalformed,
                                        mod->name + ": unnamed function"));
            }
            if (!function_names.insert(fn->name).second) {
                errors.push_back(Status(ErrorCode::kMalformed,
                                        "duplicate function name '" +
                                            fn->name + "'"));
            }
        }
    }

    std::unordered_set<uint32_t> branch_ids;
    for (const auto &mod : program.modules) {
        for (const auto &fn : mod->functions)
            verifyFunction(*fn, mod->name, function_names, branch_ids,
                           errors);
    }

    if (!function_names.count(program.entryFunction)) {
        errors.push_back(Status(ErrorCode::kUnresolved,
                                "entry function '" +
                                    program.entryFunction +
                                    "' not found"));
    }
    return errors;
}

Status
verify(const Program &program)
{
    std::vector<Status> errors = verifyAll(program);
    if (errors.empty())
        return Status();
    Status first = std::move(errors.front());
    if (errors.size() > 1) {
        return std::move(first).withContext(
            std::to_string(errors.size()) + " violations, first");
    }
    return first;
}

} // namespace propeller::ir
