#include "ir/verifier.h"

#include <unordered_map>
#include <unordered_set>

namespace propeller::ir {

namespace {

void
verifyFunction(const Function &fn, const std::string &mod_name,
               const std::unordered_set<std::string> &all_functions,
               std::unordered_set<uint32_t> &branch_ids,
               std::vector<std::string> &errors)
{
    auto err = [&](const std::string &msg) {
        errors.push_back(mod_name + "/" + fn.name + ": " + msg);
    };

    if (fn.blocks.empty()) {
        err("function has no blocks");
        return;
    }
    if (fn.entry().isLandingPad)
        err("entry block is a landing pad");

    std::unordered_set<uint32_t> ids;
    for (const auto &bb : fn.blocks) {
        if (!ids.insert(bb->id).second)
            err("duplicate block id " + std::to_string(bb->id));
    }

    for (const auto &bb : fn.blocks) {
        const std::string where = "bb" + std::to_string(bb->id);
        if (bb->insts.empty()) {
            err(where + ": empty block");
            continue;
        }
        for (size_t i = 0; i + 1 < bb->insts.size(); ++i) {
            if (bb->insts[i].isTerminator())
                err(where + ": terminator before end of block");
        }
        const Inst &term = bb->insts.back();
        if (!term.isTerminator()) {
            err(where + ": block does not end with a terminator");
            continue;
        }
        for (uint32_t succ : bb->successors()) {
            if (!ids.count(succ)) {
                err(where + ": branch to unknown block " +
                    std::to_string(succ));
            }
        }
        if (term.kind == InstKind::CondBr) {
            if (!branch_ids.insert(term.branchId).second) {
                err(where + ": duplicate branch id " +
                    std::to_string(term.branchId));
            }
        }
        for (const Inst &inst : bb->insts) {
            if (inst.kind == InstKind::Call &&
                !all_functions.count(inst.callee)) {
                err(where + ": call to unknown function '" + inst.callee +
                    "'");
            }
        }
    }
}

} // namespace

std::vector<std::string>
verify(const Program &program)
{
    std::vector<std::string> errors;

    std::unordered_set<std::string> function_names;
    std::unordered_set<std::string> module_names;
    for (const auto &mod : program.modules) {
        if (mod->name.empty())
            errors.push_back("unnamed module");
        if (!module_names.insert(mod->name).second)
            errors.push_back("duplicate module name '" + mod->name + "'");
        for (const auto &fn : mod->functions) {
            if (fn->name.empty())
                errors.push_back(mod->name + ": unnamed function");
            if (!function_names.insert(fn->name).second) {
                errors.push_back("duplicate function name '" + fn->name +
                                 "'");
            }
        }
    }

    std::unordered_set<uint32_t> branch_ids;
    for (const auto &mod : program.modules) {
        for (const auto &fn : mod->functions)
            verifyFunction(*fn, mod->name, function_names, branch_ids,
                           errors);
    }

    if (!function_names.count(program.entryFunction)) {
        errors.push_back("entry function '" + program.entryFunction +
                         "' not found");
    }
    return errors;
}

} // namespace propeller::ir
