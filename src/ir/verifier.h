#ifndef PROPELLER_IR_VERIFIER_H
#define PROPELLER_IR_VERIFIER_H

/**
 * @file
 * Structural validation of IR programs.
 *
 * The workload generator, the examples and the tests all construct IR; the
 * verifier guarantees the invariants codegen and the simulator rely on.
 */

#include <vector>

#include "ir/ir.h"
#include "support/status.h"

namespace propeller::ir {

/**
 * Verify structural invariants of @p program.
 *
 * Checked invariants:
 *  - every module and function is named; names are unique program-wide;
 *  - every function has at least one block; the entry block is not a
 *    landing pad;
 *  - block ids are unique within each function;
 *  - every block ends with exactly one terminator, and no terminator
 *    appears before the end;
 *  - branch targets reference existing blocks in the same function;
 *  - every call resolves to a function in the program;
 *  - conditional-branch ids are unique program-wide;
 *  - the entry function exists.
 *
 * Violations are typed: dangling references (branches, calls, the entry
 * function) carry ErrorCode::kUnresolved; structural breakage carries
 * ErrorCode::kMalformed.
 *
 * @return every violation found; empty means valid.
 */
std::vector<support::Status> verifyAll(const Program &program);

/**
 * Single-status form of verifyAll(): ok() when the program is valid,
 * otherwise the first violation with the total count appended as
 * context.
 */
support::Status verify(const Program &program);

} // namespace propeller::ir

#endif // PROPELLER_IR_VERIFIER_H
