#ifndef PROPELLER_IR_IR_H
#define PROPELLER_IR_IR_H

/**
 * @file
 * The mini intermediate representation (IR).
 *
 * Substitute for optimized LLVM IR (paper Phase 1).  A Program is a set of
 * Modules (translation units — the unit of distributed build actions); each
 * Module holds Functions made of BasicBlocks with explicit control flow.
 *
 * The IR is already "optimized": Propeller never transforms IR semantics,
 * it only re-runs code generation with different *layout* directives, so
 * the IR here is the stable cached artifact the paper's Phase 4 retrieves
 * from the distributed build cache.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace propeller::ir {

/** IR instruction kinds; lowered 1:1 to ISA instructions by codegen. */
enum class InstKind : uint8_t {
    Work,     ///< Generic ALU work (3-byte encoding).
    WorkWide, ///< Generic wide ALU work (6-byte encoding).
    Load,     ///< Memory read.
    Store,    ///< Memory write.
    Call,     ///< Direct call to another function.
    CondBr,   ///< Two-way conditional terminator.
    Br,       ///< Unconditional terminator.
    Ret,      ///< Return terminator.
};

/**
 * One IR instruction.  A flat struct rather than a class hierarchy: the IR
 * is generated and consumed by machines, and millions of instances exist
 * for the warehouse-scale workloads, so compactness matters.
 */
struct Inst
{
    InstKind kind = InstKind::Work;
    uint8_t reg = 0;  ///< Register operand for work/memory ops.
    uint32_t imm = 0; ///< Immediate / displacement for work/memory ops.

    /** Call: index of the callee in Program::functionIndex ordering. */
    std::string callee;

    // --- CondBr fields -----------------------------------------------
    uint32_t trueTarget = 0;  ///< BB id taken with probability bias/256.
    uint32_t falseTarget = 0; ///< BB id taken otherwise.
    uint8_t bias = 0;         ///< P(trueTarget) in 1/256 units.
    uint32_t branchId = 0;    ///< Program-unique, layout-invariant id.

    /**
     * Deterministic loop-style direction: trueTarget on all but every
     * bias-th execution (bias is the trip count, >= 2).
     */
    bool periodic = false;

    // --- Br field -----------------------------------------------------
    uint32_t target = 0; ///< BB id of the unconditional successor.

    bool
    isTerminator() const
    {
        return kind == InstKind::CondBr || kind == InstKind::Br ||
               kind == InstKind::Ret;
    }
};

/** Factory helpers for readable construction code. */
Inst makeWork(uint8_t reg, uint32_t imm);
Inst makeWorkWide(uint8_t reg, uint32_t imm);
Inst makeLoad(uint8_t reg, uint32_t disp);
Inst makeStore(uint8_t reg, uint32_t disp);
Inst makeCall(std::string callee);
Inst makeCondBr(uint32_t true_target, uint32_t false_target, uint8_t bias,
                uint32_t branch_id);

/** Loop back-edge: trueTarget on all but every trip_count-th execution. */
Inst makeLoopBr(uint32_t true_target, uint32_t false_target,
                uint8_t trip_count, uint32_t branch_id);
Inst makeBr(uint32_t target);
Inst makeRet();

/**
 * A basic block: straight-line instructions ending in one terminator.
 *
 * The id is stable across all code layouts — it is the identity carried
 * through the BB address map so that hardware profile addresses can be
 * mapped back to machine basic blocks (paper section 3.2).
 */
struct BasicBlock
{
    uint32_t id = 0;
    std::vector<Inst> insts;

    /** Landing-pad blocks get the section 4.5 treatment in codegen. */
    bool isLandingPad = false;

    const Inst &terminator() const { return insts.back(); }

    /** BB ids this block can transfer control to (excluding calls). */
    std::vector<uint32_t> successors() const;
};

/**
 * A function: an ordered list of basic blocks; the first block is the
 * entry.  Block order is the *original* (compiler-chosen) layout, which is
 * what the baseline binary uses.
 */
struct Function
{
    std::string name;
    std::vector<std::unique_ptr<BasicBlock>> blocks;

    /**
     * Hand-written assembly marker (paper sections 1.1/5.8): codegen emits
     * this function as a raw blob with embedded data, which disassembly
     * driven optimizers mis-parse.
     */
    bool isHandAsm = false;

    /**
     * Subject to startup integrity checking (FIPS-140-2 analogue, paper
     * section 5.8): the build registers a content hash of this function's
     * final bytes, and the machine verifies it at startup.  Binary
     * rewriting that moves the code without re-registering breaks it.
     */
    bool hasIntegrityCheck = false;

    BasicBlock &entry() { return *blocks.front(); }
    const BasicBlock &entry() const { return *blocks.front(); }

    /** Find a block by id; nullptr if absent. */
    const BasicBlock *findBlock(uint32_t id) const;

    /** Total instruction count across all blocks. */
    size_t instCount() const;
};

/** A translation unit: the granularity of build actions and caching. */
struct Module
{
    std::string name;
    std::vector<std::unique_ptr<Function>> functions;

    /** Bytes of read-only data this module contributes ("other" in Fig 6). */
    uint64_t rodataBytes = 0;
};

/** A whole program: the input to the 4-phase Propeller workflow. */
struct Program
{
    std::string name;
    std::vector<std::unique_ptr<Module>> modules;
    std::string entryFunction;

    /** Find a function by name anywhere in the program; nullptr if absent. */
    const Function *findFunction(const std::string &name) const;

    size_t functionCount() const;
    size_t blockCount() const;
    size_t instCount() const;
};

} // namespace propeller::ir

#endif // PROPELLER_IR_IR_H
