#include "ir/ir.h"

namespace propeller::ir {

Inst
makeWork(uint8_t reg, uint32_t imm)
{
    Inst i;
    i.kind = InstKind::Work;
    i.reg = reg;
    i.imm = imm;
    return i;
}

Inst
makeWorkWide(uint8_t reg, uint32_t imm)
{
    Inst i;
    i.kind = InstKind::WorkWide;
    i.reg = reg;
    i.imm = imm;
    return i;
}

Inst
makeLoad(uint8_t reg, uint32_t disp)
{
    Inst i;
    i.kind = InstKind::Load;
    i.reg = reg;
    i.imm = disp;
    return i;
}

Inst
makeStore(uint8_t reg, uint32_t disp)
{
    Inst i;
    i.kind = InstKind::Store;
    i.reg = reg;
    i.imm = disp;
    return i;
}

Inst
makeCall(std::string callee)
{
    Inst i;
    i.kind = InstKind::Call;
    i.callee = std::move(callee);
    return i;
}

Inst
makeCondBr(uint32_t true_target, uint32_t false_target, uint8_t bias,
           uint32_t branch_id)
{
    Inst i;
    i.kind = InstKind::CondBr;
    i.trueTarget = true_target;
    i.falseTarget = false_target;
    i.bias = bias;
    i.branchId = branch_id;
    return i;
}

Inst
makeLoopBr(uint32_t true_target, uint32_t false_target, uint8_t trip_count,
           uint32_t branch_id)
{
    Inst i = makeCondBr(true_target, false_target,
                        trip_count < 2 ? 2 : trip_count, branch_id);
    i.periodic = true;
    return i;
}

Inst
makeBr(uint32_t target)
{
    Inst i;
    i.kind = InstKind::Br;
    i.target = target;
    return i;
}

Inst
makeRet()
{
    Inst i;
    i.kind = InstKind::Ret;
    return i;
}

std::vector<uint32_t>
BasicBlock::successors() const
{
    const Inst &term = terminator();
    switch (term.kind) {
      case InstKind::CondBr:
        return {term.trueTarget, term.falseTarget};
      case InstKind::Br:
        return {term.target};
      default:
        return {};
    }
}

const BasicBlock *
Function::findBlock(uint32_t id) const
{
    for (const auto &bb : blocks) {
        if (bb->id == id)
            return bb.get();
    }
    return nullptr;
}

size_t
Function::instCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks)
        n += bb->insts.size();
    return n;
}

const Function *
Program::findFunction(const std::string &name) const
{
    for (const auto &mod : modules) {
        for (const auto &fn : mod->functions) {
            if (fn->name == name)
                return fn.get();
        }
    }
    return nullptr;
}

size_t
Program::functionCount() const
{
    size_t n = 0;
    for (const auto &mod : modules)
        n += mod->functions.size();
    return n;
}

size_t
Program::blockCount() const
{
    size_t n = 0;
    for (const auto &mod : modules)
        for (const auto &fn : mod->functions)
            n += fn->blocks.size();
    return n;
}

size_t
Program::instCount() const
{
    size_t n = 0;
    for (const auto &mod : modules)
        for (const auto &fn : mod->functions)
            n += fn->instCount();
    return n;
}

} // namespace propeller::ir
