#include "sim/machine.h"

#include <cassert>

#include "isa/isa.h"
#include "sim/branch_pred.h"
#include "sim/caches.h"
#include "sim/itlb.h"
#include "support/hash.h"
#include "support/rng.h"

namespace propeller::sim {

namespace {

using isa::Instruction;
using isa::Opcode;

/** 32-entry LBR ring buffer. */
class LbrRing
{
  public:
    void
    record(uint64_t from, uint64_t to)
    {
        entries_[head_] = {from, to};
        head_ = (head_ + 1) % profile::kLbrDepth;
        if (filled_ < profile::kLbrDepth)
            ++filled_;
    }

    /** Snapshot into a sample, oldest record first. */
    profile::LbrSample
    snapshot() const
    {
        profile::LbrSample sample;
        sample.count = static_cast<uint8_t>(filled_);
        unsigned start =
            (head_ + profile::kLbrDepth - filled_) % profile::kLbrDepth;
        for (unsigned i = 0; i < filled_; ++i)
            sample.records[i] =
                entries_[(start + i) % profile::kLbrDepth];
        return sample;
    }

  private:
    profile::BranchRecord entries_[profile::kLbrDepth] = {};
    unsigned head_ = 0;
    unsigned filled_ = 0;
};

bool
verifyIntegrity(const linker::Executable &exe)
{
    for (const auto &check : exe.integrityChecks) {
        const linker::FuncRange *range = nullptr;
        for (const auto &sym : exe.symbols) {
            if (sym.isPrimary && sym.name == check.function) {
                range = &sym;
                break;
            }
        }
        if (!range)
            return false;
        uint64_t hash = fnv1a(exe.text.data() + (range->start - exe.textBase),
                              range->end - range->start);
        if (hash != check.expectedHash)
            return false;
    }
    return true;
}

} // namespace

RunResult
run(const linker::Executable &exe, const MachineOptions &opts)
{
    RunResult result;

    // ---- Startup: FIPS-style known-answer integrity checks -------------
    if (!verifyIntegrity(exe)) {
        result.startupOk = false;
        return result;
    }

    const UarchConfig &uc = opts.uarch;
    SetAssocCache l1i(uc.l1iSets, uc.l1iWays, 6);
    SetAssocCache l2(uc.l2Sets, uc.l2Ways, 6);
    Itlb itlb(uc.itlb4kEntries, uc.itlb4kWays, uc.itlb2mEntries,
              uc.stlbEntries, uc.stlbWays);
    BranchPredictor bp(uc.ghistBits, uc.btbSets, uc.btbWays, uc.rasDepth);
    SetAssocCache dsb(uc.dsbSets, uc.dsbWays, 5);
    SetAssocCache l1d(uc.l1dSets, uc.l1dWays, 6);

    // Per-load-site occurrence counters drive deterministic, layout-
    // invariant data address streams: some sites stream through memory
    // (prefetchable), others are cache-resident.
    std::vector<uint32_t> site_occurrence(65536, 0);
    auto siteStride = [](uint16_t site) -> uint64_t {
        uint64_t r = mix64(site ^ 0xd47aull) & 7;
        if (r == 0)
            return 64; // Streaming: a new cache line every access.
        if (r == 1)
            return 8; // Strided: a new line every 8 accesses.
        return 0; // Resident.
    };
    auto dataAddress = [&](uint16_t site, uint64_t occ) {
        return (static_cast<uint64_t>(site) << 24) +
               siteStride(site) * occ;
    };

    LbrRing lbr;
    // Identity of the profiled binary (text content + section layout,
    // computed by the linker); Phase 3 compares it against the binary it
    // is optimizing to detect stale profiles.
    result.profile.binaryHash = exe.identityHash;
    uint64_t next_sample = opts.lbrSamplePeriod;
    Rng sample_jitter(opts.seed ^ 0x5a5a5a5a5a5a5a5aull);

    if (opts.recordHeatMap) {
        result.heatMap.assign(
            opts.heatAddrBuckets,
            std::vector<uint64_t>(opts.heatTimeBuckets, 0));
    }
    uint64_t heat_addr_div =
        exe.text.empty()
            ? 1
            : (exe.text.size() + opts.heatAddrBuckets - 1) /
                  opts.heatAddrBuckets;
    uint64_t heat_time_div =
        (opts.maxInstructions + opts.heatTimeBuckets - 1) /
        opts.heatTimeBuckets;

    Counters &ctr = result.counters;
    std::vector<uint64_t> call_stack;
    call_stack.reserve(256);

    // Per-branch occurrence counters indexed by branch id.
    std::vector<uint32_t> branch_occurrence;
    auto occurrence = [&](uint32_t id) -> uint32_t & {
        if (id >= branch_occurrence.size())
            branch_occurrence.resize(id + 1024, 0);
        return branch_occurrence[id];
    };

    uint64_t pc = exe.entryAddress;
    const uint64_t base = exe.textBase;
    const uint8_t *text = exe.text.data();
    const uint64_t text_size = exe.text.size();

    auto fault = [&](uint64_t at) {
        result.fault = true;
        result.faultPc = at;
    };

    // Decode cache, indexed by text offset (0: not seen, 1: cached,
    // 2: invalid).  A hot loop re-executes the same few offsets for the
    // whole run, so this removes decode from the per-instruction path.
    constexpr uint64_t kMaxCachedText = 64ull << 20;
    const bool use_decode_cache =
        opts.decodeCache && text_size > 0 && text_size <= kMaxCachedText;
    std::vector<Instruction> decoded_at;
    std::vector<uint8_t> decode_state;
    if (use_decode_cache) {
        decoded_at.resize(text_size);
        decode_state.assign(text_size, 0);
    }

    while (ctr.logicalInstructions < opts.maxInstructions) {
        if (pc < base || pc >= base + text_size) {
            fault(pc);
            break;
        }
        uint64_t offset = pc - base;
        Instruction inst;
        if (use_decode_cache) {
            uint8_t &state = decode_state[offset];
            if (state == 0) {
                auto decoded =
                    isa::decode(text + offset, text_size - offset);
                if (decoded) {
                    decoded_at[offset] = *decoded;
                    state = 1;
                } else {
                    state = 2;
                }
            }
            if (state == 2) {
                fault(pc);
                break;
            }
            inst = decoded_at[offset];
        } else {
            auto decoded = isa::decode(text + offset, text_size - offset);
            if (!decoded) {
                fault(pc);
                break;
            }
            inst = *decoded;
        }
        const uint64_t len = inst.size();

        // ---- Frontend model ---------------------------------------------
        ++ctr.instructions;
        if (inst.op != Opcode::Nop && !inst.isUncondBranch() &&
            !inst.isPrefetch()) {
            ++ctr.logicalInstructions;
        }
        ctr.quarterCycles += uc.baseQuarterCyclesPerInst;

        if (opts.recordHeatMap) {
            uint64_t ab = offset / heat_addr_div;
            uint64_t tb = (ctr.logicalInstructions > 0
                               ? ctr.logicalInstructions - 1
                               : 0) /
                          heat_time_div;
            if (ab < opts.heatAddrBuckets && tb < opts.heatTimeBuckets)
                ++result.heatMap[ab][tb];
        }

        ++ctr.dsbAccesses;
        if (!dsb.access(pc)) {
            ++ctr.dsbMisses;
            ctr.quarterCycles += uc.dsbMissPenalty;
        }

        if (!l1i.access(pc)) {
            ++ctr.l1iMisses;
            if (l2.access(pc)) {
                ctr.quarterCycles += uc.l2HitPenalty;
                ctr.fetchStallQC += uc.l2HitPenalty;
            } else {
                ++ctr.l2CodeMisses;
                ctr.quarterCycles += uc.memPenalty;
                ctr.fetchStallQC += uc.memPenalty;
            }
        }
        // An instruction straddling a cache line touches the next line too.
        if ((pc & 63) + len > 64 && !l1i.access(pc + len - 1)) {
            ++ctr.l1iMisses;
            if (l2.access(pc + len - 1)) {
                ctr.quarterCycles += uc.l2HitPenalty;
                ctr.fetchStallQC += uc.l2HitPenalty;
            } else {
                ++ctr.l2CodeMisses;
                ctr.quarterCycles += uc.memPenalty;
                ctr.fetchStallQC += uc.memPenalty;
            }
        }

        ItlbResult tlb = itlb.access(pc, exe.hugePagesText);
        if (tlb.l1Miss) {
            ++ctr.itlbMisses;
            if (tlb.stlbMiss) {
                ++ctr.itlbStallMisses;
                ctr.quarterCycles += uc.walkPenalty;
                ctr.fetchStallQC += uc.walkPenalty;
            } else {
                ctr.quarterCycles += uc.stlbHitPenalty;
            }
        }

        // ---- Execute ----------------------------------------------------
        uint64_t next_pc = pc + len;
        bool taken_transfer = false;
        uint64_t transfer_target = 0;

        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::Alu:
          case Opcode::AluWide:
            break;
          case Opcode::Load:
          case Opcode::Store: {
            if (!opts.modelDataCache)
                break;
            uint16_t site = static_cast<uint16_t>(inst.imm);
            uint64_t occ = site_occurrence[site]++;
            ++ctr.dcacheAccesses;
            if (!l1d.access(dataAddress(site, occ))) {
                ++ctr.dcacheMisses;
                ctr.quarterCycles += uc.dcacheMissPenalty;
                ctr.dataStallQC += uc.dcacheMissPenalty;
                if (opts.collectMissProfile && inst.op == Opcode::Load &&
                    ctr.dcacheMisses % opts.missSamplePeriod == 0) {
                    ++result.missProfile.siteMisses[site];
                    ++result.missProfile.totalSamples;
                }
            }
            break;
          }
          case Opcode::Prefetch: {
            ++ctr.prefetchesIssued;
            if (opts.modelDataCache) {
                // Warm the line the site will touch `reg` accesses from
                // now; non-blocking, no stall.
                uint16_t site = static_cast<uint16_t>(inst.imm);
                l1d.access(dataAddress(
                    site, site_occurrence[site] + inst.reg));
            }
            break;
          }
          case Opcode::Halt:
            result.halted = true;
            break;
          case Opcode::Ret: {
            ++ctr.returns;
            if (call_stack.empty()) {
                result.halted = true;
                break;
            }
            transfer_target = call_stack.back();
            call_stack.pop_back();
            taken_transfer = true;
            // Return stack prediction; misses behave like mispredicts.
            if (!bp.popReturn(transfer_target)) {
                ++ctr.mispredicts;
                ctr.quarterCycles += uc.mispredictPenalty;
            }
            break;
          }
          case Opcode::Call: {
            ++ctr.calls;
            transfer_target = pc + len + static_cast<int64_t>(inst.rel);
            taken_transfer = true;
            call_stack.push_back(pc + len);
            bp.pushReturn(pc + len);
            if (!bp.btbAccess(pc)) {
                ++ctr.baclears;
                ctr.quarterCycles += uc.baclearPenalty;
            }
            break;
          }
          case Opcode::JmpShort:
          case Opcode::JmpNear: {
            ++ctr.jumpsRetired;
            transfer_target = pc + len + static_cast<int64_t>(inst.rel);
            taken_transfer = true;
            if (!bp.btbAccess(pc)) {
                ++ctr.baclears;
                ctr.quarterCycles += uc.baclearPenalty;
            }
            break;
          }
          case Opcode::JccShort:
          case Opcode::JccNear: {
            ++ctr.condBranches;
            uint32_t &occ = occurrence(inst.branchId);
            bool logical;
            if (inst.flags & isa::kJccPeriodic) {
                // Deterministic loop: taken on all but every bias-th trip.
                uint32_t period = inst.bias < 2 ? 2 : inst.bias;
                logical = (occ + 1) % period != 0;
            } else {
                logical = (mix64(inst.branchId, occ, opts.seed) & 0xff) <
                          inst.bias;
            }
            ++occ;
            bool taken = logical ^ ((inst.flags & isa::kJccInvert) != 0);

            bool predicted = bp.predictConditional(pc);
            if (predicted != taken) {
                ++ctr.mispredicts;
                ctr.quarterCycles += uc.mispredictPenalty;
            }
            bp.updateConditional(pc, taken);

            if (taken) {
                ++ctr.condTaken;
                transfer_target =
                    pc + len + static_cast<int64_t>(inst.rel);
                taken_transfer = true;
                if (!bp.btbAccess(pc)) {
                    ++ctr.baclears;
                    ctr.quarterCycles += uc.baclearPenalty;
                }
            }
            break;
          }
        }

        if (taken_transfer) {
            ++ctr.takenBranches;
            if (opts.collectLbr)
                lbr.record(pc, transfer_target);
            next_pc = transfer_target;
        }

        if (result.halted)
            break;
        pc = next_pc;

        // ---- Sampling -----------------------------------------------------
        if (opts.collectLbr && ctr.logicalInstructions >= next_sample) {
            result.profile.samples.push_back(lbr.snapshot());
            next_sample = ctr.logicalInstructions + opts.lbrSamplePeriod +
                          sample_jitter.below(opts.lbrSamplePeriod / 8 + 1);
        }
    }

    result.profile.totalRetired = ctr.instructions;
    return result;
}

} // namespace propeller::sim
