#include "sim/itlb.h"

namespace propeller::sim {

namespace {

constexpr uint32_t kPageShift4k = 12;
constexpr uint32_t kPageShift2m = 21;

uint32_t
setsFor(uint32_t entries, uint32_t ways)
{
    uint32_t sets = entries / ways;
    return sets == 0 ? 1 : sets;
}

} // namespace

Itlb::Itlb(uint32_t entries4k, uint32_t ways4k, uint32_t entries2m,
           uint32_t stlb_entries, uint32_t stlb_ways)
    : tlb4k_(setsFor(entries4k, ways4k), ways4k, kPageShift4k),
      // The 2 MiB array is small and fully associative.
      tlb2m_(1, entries2m, kPageShift2m),
      stlb4k_(setsFor(stlb_entries, stlb_ways), stlb_ways, kPageShift4k),
      // STLB holds a limited number of 2 MiB entries too.
      stlb2m_(1, 16, kPageShift2m)
{
}

ItlbResult
Itlb::access(uint64_t addr, bool huge_page)
{
    ItlbResult result;
    SetAssocCache &l1 = huge_page ? tlb2m_ : tlb4k_;
    SetAssocCache &l2 = huge_page ? stlb2m_ : stlb4k_;
    if (l1.access(addr))
        return result;
    result.l1Miss = true;
    if (!l2.access(addr))
        result.stlbMiss = true;
    return result;
}

void
Itlb::reset()
{
    tlb4k_.reset();
    tlb2m_.reset();
    stlb4k_.reset();
    stlb2m_.reset();
}

} // namespace propeller::sim
