#ifndef PROPELLER_SIM_ITLB_H
#define PROPELLER_SIM_ITLB_H

/**
 * @file
 * Instruction TLB hierarchy: first-level iTLB (separate 4 KiB and 2 MiB
 * entry arrays, as on Skylake) backed by a shared second-level STLB.
 *
 * Huge-page text (the Search benchmark in the paper's section 5.5) maps
 * code with 2 MiB pages: 8 entries then cover 16 MiB of code, which is why
 * hot-text shrinking by Propeller/BOLT nearly eliminates stalled iTLB
 * misses (T2) there.
 */

#include <cstdint>

#include "sim/caches.h"

namespace propeller::sim {

/** Result of one iTLB lookup. */
struct ItlbResult
{
    bool l1Miss = false;   ///< Missed the first-level iTLB (event T1).
    bool stlbMiss = false; ///< Also missed the STLB: page walk (event T2).
};

/** Two-level instruction TLB. */
class Itlb
{
  public:
    /**
     * @param entries4k  first-level 4 KiB-page entries.
     * @param ways4k     associativity of the 4 KiB array.
     * @param entries2m  first-level 2 MiB-page entries (fully associative).
     * @param stlb_entries second-level TLB entries.
     * @param stlb_ways    second-level TLB associativity.
     */
    Itlb(uint32_t entries4k, uint32_t ways4k, uint32_t entries2m,
         uint32_t stlb_entries, uint32_t stlb_ways);

    /**
     * Translate the page of @p addr.
     * @param huge_page text is mapped with 2 MiB pages.
     */
    ItlbResult access(uint64_t addr, bool huge_page);

    void reset();

  private:
    SetAssocCache tlb4k_;
    SetAssocCache tlb2m_;
    SetAssocCache stlb4k_;
    SetAssocCache stlb2m_;
};

} // namespace propeller::sim

#endif // PROPELLER_SIM_ITLB_H
