#ifndef PROPELLER_SIM_CACHES_H
#define PROPELLER_SIM_CACHES_H

/**
 * @file
 * Generic set-associative cache with LRU replacement.
 *
 * Used for the L1 instruction cache, the unified L2 (code accesses only —
 * this simulator models the frontend), and the DSB-style decoded-uop cache
 * (32-byte windows).  Sized like Intel Skylake by default; see
 * UarchConfig in machine.h.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace propeller::sim {

/** Set-associative cache with true-LRU replacement and presence tags. */
class SetAssocCache
{
  public:
    /**
     * @param sets number of sets (power of two).
     * @param ways associativity.
     * @param block_shift log2 of the block size in bytes.
     */
    SetAssocCache(uint32_t sets, uint32_t ways, uint32_t block_shift)
        : sets_(sets), ways_(ways), blockShift_(block_shift),
          lines_(static_cast<size_t>(sets) * ways)
    {
    }

    /**
     * Access the block containing @p addr.  Inserts on miss.
     * @return true on hit.
     */
    bool
    access(uint64_t addr)
    {
        uint64_t block = addr >> blockShift_;
        uint32_t set = static_cast<uint32_t>(block & (sets_ - 1));
        Line *base = &lines_[static_cast<size_t>(set) * ways_];
        ++tick_;
        Line *victim = base;
        for (uint32_t w = 0; w < ways_; ++w) {
            Line &line = base[w];
            if (line.valid && line.tag == block) {
                line.lru = tick_;
                return true;
            }
            if (!line.valid) {
                victim = &line;
            } else if (victim->valid && line.lru < victim->lru) {
                victim = &line;
            }
        }
        victim->valid = true;
        victim->tag = block;
        victim->lru = tick_;
        return false;
    }

    /** Probe without inserting or touching LRU state. */
    bool
    contains(uint64_t addr) const
    {
        uint64_t block = addr >> blockShift_;
        uint32_t set = static_cast<uint32_t>(block & (sets_ - 1));
        const Line *base = &lines_[static_cast<size_t>(set) * ways_];
        for (uint32_t w = 0; w < ways_; ++w) {
            if (base[w].valid && base[w].tag == block)
                return true;
        }
        return false;
    }

    void
    reset()
    {
        for (auto &line : lines_)
            line.valid = false;
        tick_ = 0;
    }

    uint32_t blockShift() const { return blockShift_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
    };

    uint32_t sets_;
    uint32_t ways_;
    uint32_t blockShift_;
    std::vector<Line> lines_;
    uint64_t tick_ = 0;
};

} // namespace propeller::sim

#endif // PROPELLER_SIM_CACHES_H
