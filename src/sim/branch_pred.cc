#include "sim/branch_pred.h"

namespace propeller::sim {

BranchPredictor::BranchPredictor(uint32_t ghist_bits, uint32_t btb_sets,
                                 uint32_t btb_ways, uint32_t ras_depth)
    : mask_((1u << ghist_bits) - 1), pht_(1u << ghist_bits, 1),
      // BTB is indexed at instruction granularity (block shift 0).
      btb_(btb_sets, btb_ways, 0), ras_(ras_depth, 0), rasDepth_(ras_depth)
{
}

bool
BranchPredictor::predictConditional(uint64_t pc) const
{
    return pht_[phtIndex(pc)] >= 2;
}

void
BranchPredictor::updateConditional(uint64_t pc, bool taken)
{
    uint8_t &ctr = pht_[phtIndex(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

bool
BranchPredictor::btbAccess(uint64_t pc)
{
    return btb_.access(pc);
}

void
BranchPredictor::pushReturn(uint64_t addr)
{
    ras_[rasTop_ % rasDepth_] = addr;
    ++rasTop_;
}

bool
BranchPredictor::popReturn(uint64_t actual)
{
    if (rasTop_ == 0)
        return false;
    --rasTop_;
    return ras_[rasTop_ % rasDepth_] == actual;
}

void
BranchPredictor::reset()
{
    std::fill(pht_.begin(), pht_.end(), 1);
    btb_.reset();
    rasTop_ = 0;
}

} // namespace propeller::sim
