#ifndef PROPELLER_SIM_BRANCH_PRED_H
#define PROPELLER_SIM_BRANCH_PRED_H

/**
 * @file
 * Branch prediction: a gshare direction predictor, a branch target buffer,
 * and a return stack buffer.
 *
 * Code layout interacts with branch prediction in the ways the paper
 * measures (section 5.5): taken branches occupy BTB entries while
 * fall-through (not-taken) branches do not, so layouts that convert taken
 * branches to fall-throughs reduce BTB pressure and front-end resteers
 * (BACLEARS, event B1) and shrink retired taken branches (event B2).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/caches.h"

namespace propeller::sim {

/**
 * Direction predictor (bimodal) + BTB + return stack.
 *
 * A per-PC bimodal table stands in for a modern TAGE-class predictor: the
 * per-branch steady-state accuracy is what matters for layout comparisons,
 * and a global-history predictor's sensitivity to the taken-bit *stream*
 * would add layout-correlated noise that real predictors do not show.
 */
class BranchPredictor
{
  public:
    /**
     * @param ghist_bits   log2 of the direction table size.
     * @param btb_sets     BTB sets.
     * @param btb_ways     BTB associativity.
     * @param ras_depth    return stack depth.
     */
    BranchPredictor(uint32_t ghist_bits, uint32_t btb_sets,
                    uint32_t btb_ways, uint32_t ras_depth);

    /** Predict the direction of the conditional branch at @p pc. */
    bool predictConditional(uint64_t pc) const;

    /** Train the direction predictor and shift global history. */
    void updateConditional(uint64_t pc, bool taken);

    /**
     * Look up the taken-branch target for @p pc, inserting on miss.
     * @return true if the BTB tracked this branch (no resteer).
     */
    bool btbAccess(uint64_t pc);

    /** Push a return address on a call. */
    void pushReturn(uint64_t addr);

    /**
     * Pop and check the return stack.
     * @return true if the prediction matches @p actual.
     */
    bool popReturn(uint64_t actual);

    void reset();

  private:
    uint32_t
    phtIndex(uint64_t pc) const
    {
        return static_cast<uint32_t>((pc ^ (pc >> 15)) & mask_);
    }

    uint32_t mask_;
    std::vector<uint8_t> pht_; ///< 2-bit saturating counters.
    SetAssocCache btb_;
    std::vector<uint64_t> ras_;
    size_t rasTop_ = 0;
    uint32_t rasDepth_;
};

} // namespace propeller::sim

#endif // PROPELLER_SIM_BRANCH_PRED_H
