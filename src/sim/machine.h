#ifndef PROPELLER_SIM_MACHINE_H
#define PROPELLER_SIM_MACHINE_H

/**
 * @file
 * The machine: functional execution plus a frontend-accurate
 * microarchitecture model with LBR-based hardware profiling.
 *
 * Substitute for an Intel Skylake server running the workload under Linux
 * perf (paper section 3.3 / 5.5).  The machine:
 *
 *  - executes the linked binary instruction by instruction;
 *  - derives conditional branch directions from the layout-invariant
 *    branch ids embedded in the encoding, so two binaries with different
 *    code layouts retire the *identical* logical instruction stream and
 *    their cycle counts are directly comparable;
 *  - models L1i / L2 code caches, the two-level iTLB with optional 2 MiB
 *    huge pages, a gshare+BTB+RAS branch predictor and a DSB-style decoded
 *    uop cache, accumulating the exact counter set of the paper's Table 4;
 *  - snapshots a 32-entry LBR ring on a sampling period to produce the
 *    hardware profile consumed by Propeller's Phase 3 and by perf2bolt;
 *  - verifies startup code-integrity checks (the mechanism by which
 *    rewritten-but-not-relinked binaries crash at startup, section 5.8);
 *  - optionally records the Figure 7 instruction-access heat map.
 */

#include <cstdint>
#include <vector>

#include "linker/executable.h"
#include "profile/profile.h"

namespace propeller::sim {

/**
 * Microarchitecture parameters.
 *
 * Defaults are Skylake structures scaled down by roughly the same factor
 * (~1/4 to 1/16) as the synthetic workloads are scaled from the paper's
 * applications (~1/100 in code size), so cache/TLB pressure relative to
 * hot-code footprint matches the paper's regime.  Skylake-sized values are
 * given in the comments.
 */
struct UarchConfig
{
    // L1 instruction cache: 8 KiB, 8-way, 64 B lines (Skylake: 32 KiB).
    uint32_t l1iSets = 16;
    uint32_t l1iWays = 8;
    // L2 (code side): 256 KiB, 16-way (Skylake: 1 MiB).
    uint32_t l2Sets = 256;
    uint32_t l2Ways = 16;
    // iTLB: 48 x 4 KiB entries 4-way (Skylake: 128 x 8-way);
    // 4 x 2 MiB entries (Skylake: 8).
    uint32_t itlb4kEntries = 48;
    uint32_t itlb4kWays = 4;
    uint32_t itlb2mEntries = 2;
    // STLB: 256 entries, 8-way (Skylake: 1536 x 12-way).
    uint32_t stlbEntries = 256;
    uint32_t stlbWays = 8;
    // Branch prediction (Skylake: ~4K-entry BTB, TAGE-class predictor).
    uint32_t ghistBits = 14; ///< log2 of the direction table.
    uint32_t btbSets = 128;
    uint32_t btbWays = 4;
    uint32_t rasDepth = 32;
    // DSB: 32 B windows, 32 sets, 4 ways (Skylake: ~1.5K uops).
    uint32_t dsbSets = 32;
    uint32_t dsbWays = 4;
    // L1 data cache (only modelled when MachineOptions::modelDataCache is
    // set; the paper's evaluation is frontend-only): 16 KiB, 8-way.
    uint32_t l1dSets = 32;
    uint32_t l1dWays = 8;

    // Timing, in quarter cycles.
    uint32_t baseQuarterCyclesPerInst = 2; ///< Base CPI of 0.5.
    uint32_t l2HitPenalty = 40;            ///< L1i miss, L2 hit: 10 cycles.
    uint32_t memPenalty = 200;             ///< L2 miss: 50 cycles.
    uint32_t stlbHitPenalty = 28;          ///< iTLB miss, STLB hit.
    uint32_t walkPenalty = 120;            ///< Page walk: 30 cycles.
    uint32_t dsbMissPenalty = 4;           ///< Legacy decode path.
    uint32_t mispredictPenalty = 56;       ///< 14 cycles.
    uint32_t baclearPenalty = 20;          ///< Front-end resteer: 5 cycles.
    uint32_t dcacheMissPenalty = 60;       ///< Data miss: 15 cycles.
};

/** Run options. */
struct MachineOptions
{
    uint64_t seed = 1;

    /** Budget in *logical* instructions (see Counters). */
    uint64_t maxInstructions = 5'000'000;

    bool collectLbr = false;
    uint64_t lbrSamplePeriod = 20'000; ///< Retired insts between samples.

    bool recordHeatMap = false;
    uint32_t heatAddrBuckets = 40;
    uint32_t heatTimeBuckets = 64;

    /**
     * Model the data side (loads/stores access an L1d; Prefetch warms
     * it).  Off by default: the paper's evaluation is frontend-bound and
     * the section 3.5 prefetch extension is a separate experiment.
     */
    bool modelDataCache = false;

    /** Collect a PEBS-style load-miss profile (needs modelDataCache). */
    bool collectMissProfile = false;

    /** Record every Nth data-cache miss into the miss profile. */
    uint32_t missSamplePeriod = 8;

    /**
     * Cache decoded instructions by text offset.  The text is immutable
     * for the whole run and decoding is a pure function of the bytes at
     * an offset, so caching cannot change any architectural or modelled
     * behavior — it only stops profile collection from re-decoding the
     * same hot PCs millions of times.  (Disabled automatically for texts
     * too large for an offset-indexed table.)
     */
    bool decodeCache = true;

    UarchConfig uarch;
};

/** Hardware performance counters; labels match the paper's Table 4. */
struct Counters
{
    uint64_t instructions = 0;

    /**
     * Instructions excluding unconditional jumps and nops.  Code layout
     * adds or removes exactly those, so the logical count is invariant
     * across layouts of the same program — run budgets and cross-binary
     * comparisons use it.
     */
    uint64_t logicalInstructions = 0;

    uint64_t quarterCycles = 0;

    uint64_t l1iMisses = 0;      ///< I1: L1 i-cache misses causing stalls.
    uint64_t l2CodeMisses = 0;   ///< I2: L2 code read misses.
    uint64_t fetchStallQC = 0;   ///< I3: i-fetch stall quarter-cycles.
    uint64_t itlbMisses = 0;     ///< T1: iTLB (first level) misses.
    uint64_t itlbStallMisses = 0;///< T2: iTLB misses that required a walk.
    uint64_t baclears = 0;       ///< B1: front-end resteers (BTB misses).
    uint64_t takenBranches = 0;  ///< B2: retired taken branches.
    uint64_t dsbMisses = 0;      ///< DSB (uop cache) misses.
    uint64_t dsbAccesses = 0;

    uint64_t dcacheAccesses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t prefetchesIssued = 0;
    uint64_t dataStallQC = 0;   ///< Data-miss stall quarter-cycles.

    uint64_t condBranches = 0;
    uint64_t condTaken = 0;   ///< Taken conditional branches.
    uint64_t jumpsRetired = 0;///< Unconditional jumps executed.
    uint64_t mispredicts = 0;
    uint64_t calls = 0;
    uint64_t returns = 0;

    uint64_t cycles() const { return quarterCycles / 4; }
};

/** Outcome of one machine run. */
struct RunResult
{
    Counters counters;

    bool startupOk = true; ///< Integrity checks passed.
    bool fault = false;    ///< Decoded an invalid instruction / wild jump.
    uint64_t faultPc = 0;
    bool halted = false;   ///< Reached Halt / final return before budget.

    profile::Profile profile; ///< LBR samples (if collectLbr).

    /** Load-site miss samples (if collectMissProfile). */
    profile::MissProfile missProfile;

    /** Heat map cells [addrBucket][timeBucket] (if recordHeatMap). */
    std::vector<std::vector<uint64_t>> heatMap;
};

/** Execute @p exe under @p opts. */
RunResult run(const linker::Executable &exe, const MachineOptions &opts);

} // namespace propeller::sim

#endif // PROPELLER_SIM_MACHINE_H
