#include "service/fleet.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "build/workflow.h"
#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"
#include "sim/machine.h"
#include "stale/stale.h"
#include "support/check.h"
#include "support/hash.h"

namespace propeller::fleet {

namespace {

/** splitmix64 step, the arrival-shuffle PRNG. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** One decoded shard, waiting for the epoch fold. */
struct Arrival
{
    uint32_t machine = 0;
    uint32_t seq = 0;
    profile::Profile prof;
};

/**
 * Outstanding (machine, emission epoch) batch: which sequences have
 * arrived (the dedupe set) and how many the emitter said to expect.
 * Batches are finalized — gaps becoming counted losses — once the lag
 * horizon (the decay window) passes and no useful arrival can remain
 * in flight.  A batch whose every shard was dropped leaves no tracker
 * and no loss count; chaos schedules therefore always deliver at least
 * one shard (possibly corrupt) per batch, exactly as a real transport's
 * batch manifest would still arrive.
 */
struct BatchTracker
{
    uint32_t batchSize = 0;
    std::set<uint32_t> seen;
};

} // namespace

// ir::Program is move-only, and deterministic regeneration is cheaper to
// reason about than a deep clone — every caller gets a byte-identical
// program.
ir::Program
makeVersionProgram(const FleetOptions &opts, uint32_t v)
{
    ir::Program prog = workload::generate(opts.base);
    for (uint32_t k = 1; k <= v; ++k) {
        workload::DriftSpec spec;
        spec.seed = opts.base.seed * 7919 + k;
        spec.rate = opts.interVersionDrift;
        workload::applyDrift(prog, spec);
    }
    return prog;
}

std::map<std::pair<std::string, uint32_t>, double>
blockDistribution(const core::WholeProgramDcfg &dcfg, bool weightBySize)
{
    std::map<std::pair<std::string, uint32_t>, double> dist;
    double total = 0.0;
    for (const core::FunctionDcfg &fn : dcfg.functions) {
        for (const core::DcfgNode &n : fn.nodes) {
            double w = static_cast<double>(n.freq);
            if (weightBySize)
                w *= static_cast<double>(std::max<uint32_t>(n.size, 1));
            total += w;
        }
    }
    if (total <= 0.0)
        return dist;
    for (const core::FunctionDcfg &fn : dcfg.functions) {
        for (const core::DcfgNode &n : fn.nodes) {
            double w = static_cast<double>(n.freq);
            if (weightBySize)
                w *= static_cast<double>(std::max<uint32_t>(n.size, 1));
            dist[{fn.function, n.bbId}] += w / total;
        }
    }
    return dist;
}

double
totalVariation(const std::map<std::pair<std::string, uint32_t>, double> &a,
               const std::map<std::pair<std::string, uint32_t>, double> &b)
{
    if (a.empty() && b.empty())
        return 0.0;
    if (a.empty() || b.empty())
        return 1.0;
    double sum = 0.0;
    auto bit = b.begin();
    for (const auto &[key, p] : a) {
        while (bit != b.end() && bit->first < key) {
            sum += bit->second;
            ++bit;
        }
        if (bit != b.end() && bit->first == key) {
            sum += std::fabs(p - bit->second);
            ++bit;
        } else {
            sum += p;
        }
    }
    for (; bit != b.end(); ++bit)
        sum += bit->second;
    return 0.5 * sum;
}

/** Per-binary-version service state. */
struct VersionState
{
    ir::Program program;
    linker::Executable exe; ///< Metadata binary (with .bb_addr_map).
    std::unique_ptr<core::AddrMapIndex> index;
    profile::Profile fullProfile; ///< Steady-state load profile.
    profile::DecayedAggregate agg;
};

struct FleetService::Impl
{
    FleetOptions opts;

    std::vector<VersionState> versions;
    std::vector<bool> retired; ///< Parallel to `versions`.
    std::vector<uint32_t> machineVersion; ///< Machine -> version index.
    uint32_t target = 0;

    uint32_t epochsRun = 0;
    uint32_t crossings = 0;

    FleetChaosHooks *chaos = nullptr; ///< Not owned; may be null.

    std::vector<EpochStats> history;
    std::vector<RelinkRecord> relinkLog;

    /** Delayed wire shards, keyed by the epoch that delivers them. */
    std::map<uint32_t, std::vector<WireShard>> pendingWire;

    /** Outstanding (machine, emit epoch) batches awaiting the horizon. */
    std::map<std::pair<uint32_t, uint32_t>, BatchTracker> batches;

    std::map<uint32_t, MachineHealth> health;
    FaultDetection det;

    /** Rolling state rebuilt every epoch. */
    core::WholeProgramDcfg combined;
    bool combinedValid = false;
    std::set<std::string> primeFns;

    /** Per-(function, block) shares at the last successful relink:
     *  byte-size weighted and unweighted (the ablation twin). */
    std::map<std::pair<std::string, uint32_t>, double> snapshotW;
    std::map<std::pair<std::string, uint32_t>, double> snapshotU;

    /** Layout keys/digests this service has written to the cache image
     *  (the lower bound for warm-hit accounting; the image on disk may
     *  hold more if it predates this service). */
    std::set<uint64_t> knownLayoutKeys;
    std::set<uint64_t> knownLayoutDigests;

    /** Rollback state machine. */
    uint64_t generation = 0;
    bool degraded = false;
    bool pendingRelink = false;

    /** Last *successful* relink products (the last-good artifact). */
    linker::Executable shipped;
    bool haveShipped = false;
    core::WholeProgramDcfg lastDcfg;
    core::WpaResult lastWpa;
    std::set<std::string> lastPrime;

    explicit Impl(FleetOptions o);

    int versionOfHash(uint64_t hash) const;
    uint32_t newestLive() const;
    uint32_t addVersion();
    void retireVersion(uint32_t v);
    void stepEpoch();
    profile::AggregatedProfile
    canonAggregate(uint32_t v, std::vector<Arrival> &arrivals) const;
    void rebuildCombined();
    double activeMetric() const;
    void relink(uint32_t epoch, double metric, bool forced);
};

FleetService::Impl::Impl(FleetOptions o) : opts(std::move(o))
{
    opts.machines = std::max<uint32_t>(opts.machines, 1);
    opts.versions = std::max<uint32_t>(opts.versions, 1);
    opts.upgradesPerEpoch = std::max<uint32_t>(opts.upgradesPerEpoch, 1);
    opts.decayWindow = std::max<uint32_t>(opts.decayWindow, 1);
    if (opts.cachePath.empty())
        opts.cachePath = opts.base.name + ".fleet.cache";

    // The version chain: v0 is the pristine build; each later version
    // accumulates one more drift episode on top of the previous one.
    versions.reserve(opts.versions);
    for (uint32_t v = 0; v < opts.versions; ++v)
        addVersion();

    // Initial mix: machines spread over every version but the newest,
    // which ships at releaseEpoch.
    machineVersion.assign(opts.machines, 0);
    if (opts.versions > 1) {
        for (uint32_t m = 0; m < opts.machines; ++m)
            machineVersion[m] = m % (opts.versions - 1);
    }
    target = opts.versions >= 2 ? opts.versions - 2 : 0;

    for (uint32_t m = 0; m < opts.machines; ++m)
        health[m];
}

uint32_t
FleetService::Impl::addVersion()
{
    const auto v = static_cast<uint32_t>(versions.size());
    VersionState vs;
    vs.program = makeVersionProgram(opts, v);
    buildsys::Workflow wf(opts.base);
    wf.overrideProgram(makeVersionProgram(opts, v));
    vs.exe = wf.metadataBinary();
    vs.fullProfile =
        sim::run(vs.exe, workload::profileOptions(opts.base)).profile;
    PROPELLER_CHECK(vs.fullProfile.binaryHash == vs.exe.identityHash,
                    "profiler stamped the wrong binary identity");
    vs.agg = profile::DecayedAggregate(opts.decayWindow);
    versions.push_back(std::move(vs));
    versions.back().index =
        std::make_unique<core::AddrMapIndex>(versions.back().exe);
    retired.push_back(false);
    return v;
}

uint32_t
FleetService::Impl::newestLive() const
{
    for (uint32_t v = static_cast<uint32_t>(versions.size()); v-- > 0;) {
        if (!retired[v])
            return v;
    }
    PROPELLER_CHECK(false, "no live versions remain");
    return 0;
}

void
FleetService::Impl::retireVersion(uint32_t v)
{
    PROPELLER_CHECK(v < versions.size(),
                    "retireVersion: no such version");
    PROPELLER_CHECK(!retired[v], "retireVersion: already retired");
    uint32_t live = 0;
    for (uint32_t i = 0; i < versions.size(); ++i) {
        if (!retired[i] && i != v)
            ++live;
    }
    PROPELLER_CHECK(live >= 1, "cannot retire the last live version");

    retired[v] = true;
    if (target == v)
        target = newestLive(); // Canary rollback: revert the target.
    for (uint32_t m = 0; m < opts.machines; ++m) {
        if (machineVersion[m] == v)
            machineVersion[m] = target;
    }
}

int
FleetService::Impl::versionOfHash(uint64_t hash) const
{
    for (uint32_t v = 0; v < versions.size(); ++v) {
        if (versions[v].exe.identityHash == hash)
            return static_cast<int>(v);
    }
    return -1;
}

profile::AggregatedProfile
FleetService::Impl::canonAggregate(uint32_t v,
                                   std::vector<Arrival> &arrivals) const
{
    // Canonicalize by (machine, sequence) — this is what makes the fold
    // arrival-order independent.
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  return std::tie(a.machine, a.seq) <
                         std::tie(b.machine, b.seq);
              });
    profile::Profile canon;
    canon.binaryHash = versions[v].exe.identityHash;
    for (Arrival &a : arrivals) {
        canon.totalRetired += a.prof.totalRetired;
        canon.samples.insert(canon.samples.end(), a.prof.samples.begin(),
                             a.prof.samples.end());
    }
    profile::AggregationOptions ao;
    ao.threads = opts.base.jobs;
    return profile::aggregate(canon, ao);
}

void
FleetService::Impl::stepEpoch()
{
    const uint32_t epoch = epochsRun;
    EpochStats es;
    es.epoch = epoch;

    // Release: the newest live version becomes the relink target
    // *before* any machine migrates, so the release-epoch relink remaps
    // an unchanged sample mix onto the new binary.
    if (versions.size() >= 2 && epoch == opts.releaseEpoch)
        target = newestLive();
    if (versions.size() >= 2 && epoch > opts.releaseEpoch) {
        uint32_t moved = 0;
        for (uint32_t m = 0;
             m < opts.machines && moved < opts.upgradesPerEpoch; ++m) {
            if (machineVersion[m] != target) {
                machineVersion[m] = target;
                ++moved;
            }
        }
    }

    // Each machine emits its slice of its version's steady-state load
    // profile as wire shards stamped with that version's identity and
    // this epoch's emission metadata (batch size, sequence).
    std::vector<WireShard> wire;
    for (uint32_t m = 0; m < opts.machines; ++m) {
        const VersionState &vs = versions[machineVersion[m]];
        profile::Profile slice;
        slice.binaryHash = vs.fullProfile.binaryHash;
        slice.totalRetired = vs.fullProfile.totalRetired / opts.machines;
        for (size_t i = m; i < vs.fullProfile.samples.size();
             i += opts.machines)
            slice.samples.push_back(vs.fullProfile.samples[i]);
        std::vector<std::vector<uint8_t>> shards =
            profile::serializeShards(slice, opts.shardSamples);
        const auto batch = static_cast<uint32_t>(shards.size());
        for (uint32_t s = 0; s < shards.size(); ++s) {
            WireShard ws;
            ws.machine = m;
            ws.emitEpoch = epoch;
            ws.seq = s;
            ws.batchSize = batch;
            ws.deliverEpoch = epoch;
            ws.bytes = std::move(shards[s]);
            wire.push_back(std::move(ws));
        }
    }

    // Seeded arrival shuffle: shard order on the wire is arbitrary and
    // the fold below must not depend on it.
    uint64_t rng =
        mix64(opts.arrivalShuffleSeed ^
              (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(epoch) + 1)));
    for (size_t i = wire.size(); i > 1; --i) {
        rng = mix64(rng);
        std::swap(wire[i - 1], wire[rng % i]);
    }

    // Chaos on the emission stream: drops, duplicates, reorders,
    // delays, corruption.
    if (chaos != nullptr)
        chaos->onWireShards(epoch, wire);

    // Delayed shards park until their delivery epoch; earlier epochs'
    // delayed shards join this epoch's stream in canonical order (the
    // canonical sort keeps the merged stream independent of the map's
    // insertion history).
    std::vector<WireShard> now;
    now.reserve(wire.size());
    for (WireShard &ws : wire) {
        if (ws.deliverEpoch > epoch)
            pendingWire[ws.deliverEpoch].push_back(std::move(ws));
        else
            now.push_back(std::move(ws));
    }
    auto pit = pendingWire.find(epoch);
    if (pit != pendingWire.end()) {
        std::sort(pit->second.begin(), pit->second.end(),
                  [](const WireShard &a, const WireShard &b) {
                      return std::tie(a.machine, a.emitEpoch, a.seq) <
                             std::tie(b.machine, b.emitEpoch, b.seq);
                  });
        for (WireShard &ws : pit->second)
            now.push_back(std::move(ws));
        pendingWire.erase(pit);
    }

    // Shard-at-a-time ingest: track transport consistency, dedupe,
    // decode, diagnose, classify lag, route by the *shard's* version
    // stamp.  A shard from last week's binary is not an error — it
    // feeds that version's bucket and reaches the target through the
    // stale matcher.
    std::map<std::pair<uint32_t, uint32_t>, std::vector<Arrival>> groups;
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> stepMaxSeq;
    for (WireShard &ws : now) {
        MachineHealth &mh = health[ws.machine];
        const std::pair<uint32_t, uint32_t> key{ws.machine, ws.emitEpoch};

        // Arrival inversions: a same-batch sequence arriving below the
        // step's running maximum.  Counted on the delivered stream, so
        // a chaos schedule counting its own output sees the same total.
        auto [mit, fresh] = stepMaxSeq.try_emplace(key, ws.seq);
        if (!fresh) {
            if (ws.seq < mit->second) {
                ++es.arrivalInversions;
                ++det.inversions;
            } else {
                mit->second = ws.seq;
            }
        }

        // Batch manifest + dedupe.  Envelope metadata is valid even
        // when the payload is corrupt, so a corrupt shard still marks
        // its sequence seen — fault classes stay disjoint (a corrupt
        // shard is never also finalized as a loss).
        BatchTracker &bt = batches[key];
        bt.batchSize = std::max(bt.batchSize, ws.batchSize);
        if (!bt.seen.insert(ws.seq).second) {
            ++es.shardsDuplicated;
            ++mh.duplicates;
            ++det.duplicates;
            continue;
        }

        profile::ShardLoadStats ss;
        profile::Profile p = profile::loadShards({ws.bytes}, &ss);
        if (ss.shardsRejected > 0) {
            ++es.shardsRejected;
            ++mh.corrupt;
            ++det.corrupt;
            continue;
        }

        // Lag is measured against the emission stamp, never the wire's
        // delivery instruction.
        const uint32_t lag = epoch - ws.emitEpoch;
        es.shardLagPeak = std::max(es.shardLagPeak, lag);
        mh.lagPeakEpochs = std::max(mh.lagPeakEpochs, lag);
        if (lag >= opts.decayWindow) {
            ++es.shardsExpired;
            ++mh.expired;
            ++det.expired;
            continue;
        }
        if (lag > 0) {
            ++es.shardsLate;
            ++mh.late;
            ++det.late;
        }

        int v = versionOfHash(p.binaryHash);
        PROPELLER_CHECK(v >= 0,
                        "shard stamped with an unknown binary version");
        ++es.shardsIngested;
        ++mh.shardsIngested;
        es.samplesByVersion[static_cast<uint32_t>(v)] += p.samples.size();
        groups[{static_cast<uint32_t>(v), lag}].push_back(
            {ws.machine, ws.seq, std::move(p)});
    }

    // Fold one epoch into every version's rolling state (versions with
    // no samples fold an empty epoch and age out), then land the late
    // arrivals in the window slot of the epoch they were emitted in —
    // a laggy machine's samples decay on its run clock.
    for (uint32_t v = 0; v < versions.size(); ++v) {
        profile::AggregatedProfile epochAgg;
        auto it = groups.find({v, 0u});
        if (it != groups.end())
            epochAgg = canonAggregate(v, it->second);
        versions[v].agg.fold(epochAgg, opts.decay);
    }
    for (auto &[key, arrivals] : groups) {
        const auto &[v, lag] = key;
        if (lag == 0)
            continue;
        profile::AggregatedProfile lateAgg = canonAggregate(v, arrivals);
        PROPELLER_CHECK(versions[v].agg.addAt(lag, lateAgg),
                        "late shard fell outside the decay window");
    }

    // Finalize batches past the lag horizon: any sequence still missing
    // can no longer contribute and is counted lost.
    for (auto it = batches.begin(); it != batches.end();) {
        const auto &[m, emitEpoch] = it->first;
        if (epoch - emitEpoch >= opts.decayWindow) {
            const BatchTracker &bt = it->second;
            const auto seen = static_cast<uint32_t>(bt.seen.size());
            const uint32_t lost =
                bt.batchSize > seen ? bt.batchSize - seen : 0;
            es.shardsLost += lost;
            health[m].losses += lost;
            det.losses += lost;
            it = batches.erase(it);
        } else {
            ++it;
        }
    }

    for (uint32_t m = 0; m < opts.machines; ++m)
        ++es.machinesByVersion[machineVersion[m]];

    rebuildCombined();
    es.driftMetricUnweighted =
        totalVariation(blockDistribution(combined, false), snapshotU);
    if (opts.weightedDrift) {
        es.driftMetric =
            totalVariation(blockDistribution(combined, true), snapshotW);
    } else {
        es.driftMetric = es.driftMetricUnweighted;
    }
    es.relinked = es.driftMetric > opts.driftThreshold;
    es.relinkRetried = !es.relinked && pendingRelink && combinedValid;

    history.push_back(es);
    ++epochsRun;
    if (es.relinked) {
        ++crossings;
        relink(epoch, es.driftMetric, /*forced=*/false);
    } else if (es.relinkRetried) {
        // Quarantined relink: re-attempt every epoch until one ships,
        // whether or not the metric crosses again.
        relink(epoch, es.driftMetric, /*forced=*/false);
    }
}

void
FleetService::Impl::rebuildCombined()
{
    combined = {};
    combinedValid = false;
    primeFns.clear();

    double totalWeight = 0.0;
    for (const VersionState &vs : versions) {
        if (!vs.agg.empty())
            totalWeight += vs.agg.totalBranchWeight();
    }
    if (totalWeight <= 0.0)
        return;

    const core::AddrMapIndex &tindex = *versions[target].index;

    struct NodeAcc
    {
        uint64_t freq = 0;
        uint32_t size = 0;
        uint8_t flags = 0;
    };
    struct FnAcc
    {
        std::map<uint32_t, NodeAcc> nodes;
        std::map<std::tuple<uint32_t, uint32_t, uint8_t>, uint64_t> edges;
        uint32_t entryBb = 0;
        bool haveEntry = false;
    };
    std::map<std::string, FnAcc> fns;
    std::map<std::tuple<std::string, uint32_t, std::string>, uint64_t>
        calls;

    for (uint32_t v = 0; v < versions.size(); ++v) {
        VersionState &vs = versions[v];
        if (vs.agg.empty())
            continue;

        // Normalize this version's rolling counts by its decayed weight
        // share, with the window's geometric factor cancelled before
        // rounding (DecayedAggregate::quantize) — at a constant fleet
        // mix the per-version counts are exactly stable, which is what
        // keeps layout fingerprints warm across steady-state relinks.
        double share = vs.agg.totalBranchWeight() / totalWeight;
        auto scale_to = static_cast<uint64_t>(std::llround(
            static_cast<double>(opts.freqResolution) * share));
        profile::AggregatedProfile quant =
            vs.agg.quantize(std::max<uint64_t>(scale_to, 1));
        if (quant.branches.empty() && quant.ranges.empty())
            continue;

        core::WholeProgramDcfg dcfg = core::buildDcfg(
            quant, *vs.index, nullptr, opts.base.jobs ? opts.base.jobs : 1);

        // Into the target's block-id space: identity for the target
        // version itself, fingerprint matching + count inference for
        // every older (or newer) one.
        stale::StaleMatchResult match =
            stale::matchStaleProfile(dcfg, *vs.index, tindex);
        stale::inferStaleCounts(match, tindex);

        for (const auto &fh : match.functionHashes) {
            if (fh.profiledHash != fh.targetHash)
                primeFns.insert(fh.function);
        }

        for (const core::FunctionDcfg &fn : match.dcfg.functions) {
            FnAcc &acc = fns[fn.function];
            if (!acc.haveEntry && fn.entryNode < fn.nodes.size()) {
                acc.entryBb = fn.nodes[fn.entryNode].bbId;
                acc.haveEntry = true;
            }
            for (const core::DcfgNode &n : fn.nodes) {
                NodeAcc &na = acc.nodes[n.bbId];
                na.freq += n.freq;
                na.size = n.size;
                na.flags = n.flags;
            }
            for (const core::DcfgEdge &e : fn.edges) {
                acc.edges[{fn.nodes[e.fromNode].bbId,
                           fn.nodes[e.toNode].bbId,
                           static_cast<uint8_t>(e.kind)}] += e.weight;
            }
        }
        for (const core::CallEdge &ce : match.dcfg.callEdges) {
            const core::FunctionDcfg &caller =
                match.dcfg.functions[ce.callerDcfg];
            const core::FunctionDcfg &callee =
                match.dcfg.functions[ce.calleeDcfg];
            calls[{caller.function, caller.nodes[ce.callerNode].bbId,
                   callee.function}] += ce.weight;
        }
    }

    // Emit the merged DCFG in fully sorted order (functions by name,
    // nodes by block id, edges by endpoint key): deterministic, and
    // stable epoch-over-epoch whenever the accumulators are.
    std::map<std::string, uint32_t> fnIndex;
    for (auto &[name, acc] : fns) {
        core::FunctionDcfg fn;
        fn.function = name;
        PROPELLER_CHECK(acc.haveEntry &&
                            acc.nodes.find(acc.entryBb) != acc.nodes.end(),
                        "combined DCFG lost a function's entry block");
        std::map<uint32_t, uint32_t> nodeIndex;
        for (const auto &[bb, na] : acc.nodes) {
            nodeIndex[bb] = static_cast<uint32_t>(fn.nodes.size());
            fn.nodes.push_back({bb, na.size, na.freq, na.flags});
        }
        fn.entryNode = nodeIndex[acc.entryBb];
        for (const auto &[key, weight] : acc.edges) {
            const auto &[fromBb, toBb, kind] = key;
            fn.edges.push_back({nodeIndex[fromBb], nodeIndex[toBb], weight,
                                static_cast<core::EdgeKind>(kind)});
        }
        fnIndex[name] = static_cast<uint32_t>(combined.functions.size());
        combined.functions.push_back(std::move(fn));
    }
    for (const auto &[key, weight] : calls) {
        const auto &[callerName, callerBb, calleeName] = key;
        uint32_t callerIdx = fnIndex[callerName];
        uint32_t calleeIdx = fnIndex[calleeName];
        const core::FunctionDcfg &caller = combined.functions[callerIdx];
        uint32_t callerNode = 0;
        for (uint32_t i = 0; i < caller.nodes.size(); ++i) {
            if (caller.nodes[i].bbId == callerBb) {
                callerNode = i;
                break;
            }
        }
        combined.callEdges.push_back(
            {callerIdx, callerNode, calleeIdx, weight});
    }
    combinedValid = !combined.functions.empty();
}

double
FleetService::Impl::activeMetric() const
{
    if (opts.weightedDrift) {
        return totalVariation(blockDistribution(combined, true),
                              snapshotW);
    }
    return totalVariation(blockDistribution(combined, false), snapshotU);
}

void
FleetService::Impl::relink(uint32_t epoch, double metric, bool forced)
{
    PROPELLER_CHECK(combinedValid,
                    "relink requested before any samples were ingested");
    const VersionState &tv = versions[target];

    RelinkRecord rec;
    rec.epoch = epoch;
    rec.metric = metric;
    rec.forced = forced;

    const uint32_t maxAttempts = 1 + opts.maxRelinkRetries;
    bool shippedNew = false;
    for (uint32_t attempt = 1; attempt <= maxAttempts && !shippedNew;
         ++attempt) {
        rec.attempts = attempt;
        if (attempt > 1) {
            // Deterministic exponential backoff in modelled seconds.
            rec.backoffSec += opts.relinkBackoffSec *
                              static_cast<double>(1u << (attempt - 2));
        }

        // A modelled mid-relink crash: the attempt produces nothing.
        // Nothing was persisted either — the cache image is only ever
        // written after an artifact is accepted.
        if (chaos != nullptr && chaos->failRelink(epoch, attempt)) {
            ++rec.failedAttempts;
            ++det.relinkFailures;
            continue;
        }

        buildsys::Workflow wf(opts.base);
        wf.overrideProgram(makeVersionProgram(opts, target));

        // The profile seam carries only the identity stamp: the layout
        // input is the injected combined DCFG, already in the target's
        // block-id space.
        profile::Profile stamp;
        stamp.binaryHash = tv.exe.identityHash;
        stamp.totalRetired = 1;
        wf.overrideProfile(std::move(stamp));
        wf.overrideDcfg(core::WholeProgramDcfg(combined));
        wf.setLayoutPrimeFunctions(primeFns);

        uint64_t imageGen = 0;
        bool loaded = wf.loadCacheFile(opts.cachePath, &imageGen);
        // A restarted service resumes the persisted generation sequence
        // instead of restarting from zero.
        if (loaded && imageGen > generation)
            generation = imageGen;

        // Warm-hit accounting: every layout key this service wrote to
        // the image in an earlier relink must be served warm — exactly,
        // or through the primed digest alias for drifted-but-matched
        // functions.  Computed with the same free fingerprint functions
        // the relink engine uses, so the expectation is key-for-key
        // honest.
        const uint64_t opts_fp =
            core::layoutOptionsFingerprint(core::LayoutOptions{});
        uint64_t expected_hits = 0;
        uint64_t expected_primed = 0;
        std::vector<std::pair<uint64_t, uint64_t>> keys;
        keys.reserve(combined.functions.size());
        for (const core::FunctionDcfg &fn : combined.functions) {
            int fi = tv.index->findFunction(fn.function);
            uint64_t key = hashCombine(
                core::layoutMemoFingerprint(fn, *tv.index, fi), opts_fp);
            uint64_t dkey = hashCombine(
                core::layoutInputDigest(fn, *tv.index, fi), opts_fp);
            keys.emplace_back(key, dkey);
            if (!loaded)
                continue;
            if (knownLayoutKeys.count(key) != 0)
                ++expected_hits;
            else if (primeFns.count(fn.function) != 0 &&
                     knownLayoutDigests.count(dkey) != 0)
                ++expected_primed;
        }

        const linker::Executable &po = wf.propellerBinary();

        // Acceptance gate: never ship an artifact the static verifier
        // rejects.  A dirty report fails the attempt exactly like a
        // crashed one — the last-good binary keeps serving.
        if (opts.verifyRelinks && !wf.verifyReport().clean()) {
            ++rec.failedAttempts;
            ++det.relinkFailures;
            continue;
        }

        ++generation;
        PROPELLER_CHECK(wf.saveCacheFile(opts.cachePath, generation),
                        "failed to persist the fleet cache image");

        const buildsys::CacheStats &ls = wf.layoutCacheStats();
        PROPELLER_CHECK(ls.hits + ls.primedHits >=
                            expected_hits + expected_primed,
                        "persisted layout entries failed to serve warm");

        rec.cacheLoaded = loaded;
        rec.layoutHits = ls.hits;
        rec.layoutMisses = ls.misses;
        rec.layoutPrimedHits = ls.primedHits;
        rec.objectHits = wf.cacheStats().hits;
        rec.expectedHits = expected_hits;
        rec.expectedPrimedHits = expected_primed;
        rec.primedFunctions = primeFns.size();
        rec.verifierClean = opts.verifyRelinks;
        if (wf.hasRelinkSchedule())
            rec.schedule = wf.relinkSchedule();

        shipped = po;
        haveShipped = true;
        lastDcfg = combined;
        lastWpa = wf.wpa();
        lastPrime = primeFns;
        snapshotW = blockDistribution(combined, true);
        snapshotU = blockDistribution(combined, false);
        for (const auto &[key, dkey] : keys) {
            knownLayoutKeys.insert(key);
            knownLayoutDigests.insert(dkey);
        }
        shippedNew = true;
    }

    rec.generation = generation;
    rec.quarantined = !shippedNew;
    degraded = !shippedNew;
    pendingRelink = !shippedNew;
    relinkLog.push_back(std::move(rec));
}

FleetService::FleetService(FleetOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

FleetService::~FleetService() = default;

const FleetOptions &
FleetService::options() const
{
    return impl_->opts;
}

void
FleetService::setChaosHooks(FleetChaosHooks *hooks)
{
    impl_->chaos = hooks;
}

void
FleetService::stepEpoch()
{
    impl_->stepEpoch();
}

void
FleetService::run(uint32_t epochs)
{
    for (uint32_t e = 0; e < epochs; ++e)
        impl_->stepEpoch();
}

void
FleetService::relinkNow()
{
    impl_->relink(impl_->epochsRun, impl_->activeMetric(),
                  /*forced=*/true);
}

uint32_t
FleetService::addVersion()
{
    return impl_->addVersion();
}

void
FleetService::setTargetVersion(uint32_t v)
{
    PROPELLER_CHECK(v < impl_->versions.size(),
                    "setTargetVersion: no such version");
    PROPELLER_CHECK(!impl_->retired[v],
                    "setTargetVersion: version is retired");
    impl_->target = v;
}

void
FleetService::retireVersion(uint32_t v)
{
    impl_->retireVersion(v);
}

bool
FleetService::versionRetired(uint32_t v) const
{
    PROPELLER_CHECK(v < impl_->versions.size(),
                    "versionRetired: no such version");
    return impl_->retired[v];
}

uint32_t
FleetService::versionCount() const
{
    return static_cast<uint32_t>(impl_->versions.size());
}

uint32_t
FleetService::epochsRun() const
{
    return impl_->epochsRun;
}

uint32_t
FleetService::targetVersion() const
{
    return impl_->target;
}

uint32_t
FleetService::driftCrossings() const
{
    return impl_->crossings;
}

bool
FleetService::degraded() const
{
    return impl_->degraded;
}

uint64_t
FleetService::generation() const
{
    return impl_->generation;
}

const std::vector<EpochStats> &
FleetService::history() const
{
    return impl_->history;
}

const std::vector<RelinkRecord> &
FleetService::relinks() const
{
    return impl_->relinkLog;
}

const std::map<uint32_t, MachineHealth> &
FleetService::machineHealth() const
{
    return impl_->health;
}

const FaultDetection &
FleetService::detection() const
{
    return impl_->det;
}

const linker::Executable &
FleetService::shippedBinary() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->shipped;
}

const core::WholeProgramDcfg &
FleetService::lastRelinkDcfg() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->lastDcfg;
}

const core::WpaResult &
FleetService::lastRelinkWpa() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->lastWpa;
}

const std::set<std::string> &
FleetService::lastPrimeFunctions() const
{
    return impl_->lastPrime;
}

const linker::Executable &
FleetService::versionBinary(uint32_t v) const
{
    return impl_->versions.at(v).exe;
}

const ir::Program &
FleetService::versionProgram(uint32_t v) const
{
    return impl_->versions.at(v).program;
}

} // namespace propeller::fleet
