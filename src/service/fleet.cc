#include "service/fleet.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "build/workflow.h"
#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"
#include "sim/machine.h"
#include "stale/stale.h"
#include "support/check.h"
#include "support/hash.h"

namespace propeller::fleet {

namespace {

/** splitmix64 step, the arrival-shuffle PRNG. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** One wire shard in flight from a machine to the service. */
struct Envelope
{
    uint32_t machine = 0;
    uint32_t seq = 0; ///< Shard sequence within the machine's emission.
    std::vector<uint8_t> bytes;
};

/** One decoded shard, waiting for the epoch fold. */
struct Arrival
{
    uint32_t machine = 0;
    uint32_t seq = 0;
    profile::Profile prof;
};

} // namespace

// ir::Program is move-only, and deterministic regeneration is cheaper to
// reason about than a deep clone — every caller gets a byte-identical
// program.
ir::Program
makeVersionProgram(const FleetOptions &opts, uint32_t v)
{
    ir::Program prog = workload::generate(opts.base);
    for (uint32_t k = 1; k <= v; ++k) {
        workload::DriftSpec spec;
        spec.seed = opts.base.seed * 7919 + k;
        spec.rate = opts.interVersionDrift;
        workload::applyDrift(prog, spec);
    }
    return prog;
}

/** Per-binary-version service state. */
struct VersionState
{
    ir::Program program;
    linker::Executable exe; ///< Metadata binary (with .bb_addr_map).
    std::unique_ptr<core::AddrMapIndex> index;
    profile::Profile fullProfile; ///< Steady-state load profile.
    profile::DecayedAggregate agg;
};

struct FleetService::Impl
{
    FleetOptions opts;

    std::vector<VersionState> versions;
    std::vector<uint32_t> machineVersion; ///< Machine -> version index.
    uint32_t target = 0;

    uint32_t epochsRun = 0;
    uint32_t crossings = 0;

    std::vector<EpochStats> history;
    std::vector<RelinkRecord> relinkLog;

    /** Rolling state rebuilt every epoch. */
    core::WholeProgramDcfg combined;
    bool combinedValid = false;
    std::set<std::string> primeFns;

    /** Per-(function, block) frequency shares at the last relink. */
    std::map<std::pair<std::string, uint32_t>, double> snapshot;

    /** Layout keys/digests this service has written to the cache image
     *  (the lower bound for warm-hit accounting; the image on disk may
     *  hold more if it predates this service). */
    std::set<uint64_t> knownLayoutKeys;
    std::set<uint64_t> knownLayoutDigests;

    /** Last relink products. */
    linker::Executable shipped;
    bool haveShipped = false;
    core::WholeProgramDcfg lastDcfg;
    core::WpaResult lastWpa;
    std::set<std::string> lastPrime;

    explicit Impl(FleetOptions o);

    int versionOfHash(uint64_t hash) const;
    void stepEpoch();
    void rebuildCombined();
    std::map<std::pair<std::string, uint32_t>, double>
    distribution() const;
    double driftMetric() const;
    void relink(uint32_t epoch, double metric, bool forced);
};

FleetService::Impl::Impl(FleetOptions o) : opts(std::move(o))
{
    opts.machines = std::max<uint32_t>(opts.machines, 1);
    opts.versions = std::max<uint32_t>(opts.versions, 1);
    opts.upgradesPerEpoch = std::max<uint32_t>(opts.upgradesPerEpoch, 1);
    if (opts.cachePath.empty())
        opts.cachePath = opts.base.name + ".fleet.cache";

    // The version chain: v0 is the pristine build; each later version
    // accumulates one more drift episode on top of the previous one.
    versions.reserve(opts.versions);
    for (uint32_t v = 0; v < opts.versions; ++v) {
        VersionState vs;
        vs.program = makeVersionProgram(opts, v);
        buildsys::Workflow wf(opts.base);
        wf.overrideProgram(makeVersionProgram(opts, v));
        vs.exe = wf.metadataBinary();
        vs.fullProfile =
            sim::run(vs.exe, workload::profileOptions(opts.base)).profile;
        PROPELLER_CHECK(vs.fullProfile.binaryHash == vs.exe.identityHash,
                        "profiler stamped the wrong binary identity");
        vs.agg = profile::DecayedAggregate(opts.decayWindow);
        versions.push_back(std::move(vs));
        versions.back().index =
            std::make_unique<core::AddrMapIndex>(versions.back().exe);
    }

    // Initial mix: machines spread over every version but the newest,
    // which ships at releaseEpoch.
    machineVersion.assign(opts.machines, 0);
    if (opts.versions > 1) {
        for (uint32_t m = 0; m < opts.machines; ++m)
            machineVersion[m] = m % (opts.versions - 1);
    }
    target = opts.versions >= 2 ? opts.versions - 2 : 0;
}

int
FleetService::Impl::versionOfHash(uint64_t hash) const
{
    for (uint32_t v = 0; v < versions.size(); ++v) {
        if (versions[v].exe.identityHash == hash)
            return static_cast<int>(v);
    }
    return -1;
}

void
FleetService::Impl::stepEpoch()
{
    const uint32_t epoch = epochsRun;
    EpochStats es;
    es.epoch = epoch;

    // Release: the newest version becomes the relink target *before*
    // any machine migrates, so the release-epoch relink remaps an
    // unchanged sample mix onto the new binary.
    if (opts.versions >= 2 && epoch == opts.releaseEpoch)
        target = opts.versions - 1;
    if (opts.versions >= 2 && epoch > opts.releaseEpoch) {
        uint32_t moved = 0;
        for (uint32_t m = 0;
             m < opts.machines && moved < opts.upgradesPerEpoch; ++m) {
            if (machineVersion[m] != target) {
                machineVersion[m] = target;
                ++moved;
            }
        }
    }

    // Each machine emits its slice of its version's steady-state load
    // profile as wire shards stamped with that version's identity.
    std::vector<Envelope> wire;
    for (uint32_t m = 0; m < opts.machines; ++m) {
        const VersionState &vs = versions[machineVersion[m]];
        profile::Profile slice;
        slice.binaryHash = vs.fullProfile.binaryHash;
        slice.totalRetired = vs.fullProfile.totalRetired / opts.machines;
        for (size_t i = m; i < vs.fullProfile.samples.size();
             i += opts.machines)
            slice.samples.push_back(vs.fullProfile.samples[i]);
        std::vector<std::vector<uint8_t>> shards =
            profile::serializeShards(slice, opts.shardSamples);
        for (uint32_t s = 0; s < shards.size(); ++s)
            wire.push_back({m, s, std::move(shards[s])});
    }

    // Seeded arrival shuffle: shard order on the wire is arbitrary and
    // the fold below must not depend on it.
    uint64_t rng =
        mix64(opts.arrivalShuffleSeed ^
              (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(epoch) + 1)));
    for (size_t i = wire.size(); i > 1; --i) {
        rng = mix64(rng);
        std::swap(wire[i - 1], wire[rng % i]);
    }

    es.shardLagPeak = static_cast<uint32_t>(wire.size());

    // Shard-at-a-time ingest: decode, diagnose, route by the *shard's*
    // version stamp.  A shard from last week's binary is not an error —
    // it feeds that version's bucket and reaches the target through the
    // stale matcher.
    std::map<uint32_t, std::vector<Arrival>> byVersion;
    for (Envelope &env : wire) {
        profile::ShardLoadStats ss;
        profile::Profile p = profile::loadShards({env.bytes}, &ss);
        if (ss.shardsRejected > 0) {
            ++es.shardsRejected;
            continue;
        }
        int v = versionOfHash(p.binaryHash);
        PROPELLER_CHECK(v >= 0,
                        "shard stamped with an unknown binary version");
        ++es.shardsIngested;
        es.samplesByVersion[static_cast<uint32_t>(v)] += p.samples.size();
        byVersion[static_cast<uint32_t>(v)].push_back(
            {env.machine, env.seq, std::move(p)});
    }

    // Canonicalize each version's arrivals by (machine, sequence) —
    // this is what makes the fold arrival-order independent — then
    // aggregate and fold one epoch into every version's rolling state
    // (versions with no samples fold an empty epoch and age out).
    for (uint32_t v = 0; v < opts.versions; ++v) {
        profile::AggregatedProfile epochAgg;
        auto it = byVersion.find(v);
        if (it != byVersion.end()) {
            std::sort(it->second.begin(), it->second.end(),
                      [](const Arrival &a, const Arrival &b) {
                          return std::tie(a.machine, a.seq) <
                                 std::tie(b.machine, b.seq);
                      });
            profile::Profile canon;
            canon.binaryHash = versions[v].exe.identityHash;
            for (Arrival &a : it->second) {
                canon.totalRetired += a.prof.totalRetired;
                canon.samples.insert(canon.samples.end(),
                                     a.prof.samples.begin(),
                                     a.prof.samples.end());
            }
            profile::AggregationOptions ao;
            ao.threads = opts.base.jobs;
            epochAgg = profile::aggregate(canon, ao);
        }
        versions[v].agg.fold(epochAgg, opts.decay);
    }

    for (uint32_t m = 0; m < opts.machines; ++m)
        ++es.machinesByVersion[machineVersion[m]];

    rebuildCombined();
    es.driftMetric = driftMetric();
    es.relinked = es.driftMetric > opts.driftThreshold;

    history.push_back(es);
    ++epochsRun;
    if (es.relinked) {
        ++crossings;
        relink(epoch, es.driftMetric, /*forced=*/false);
    }
}

void
FleetService::Impl::rebuildCombined()
{
    combined = {};
    combinedValid = false;
    primeFns.clear();

    double totalWeight = 0.0;
    for (const VersionState &vs : versions) {
        if (!vs.agg.empty())
            totalWeight += vs.agg.totalBranchWeight();
    }
    if (totalWeight <= 0.0)
        return;

    const core::AddrMapIndex &tindex = *versions[target].index;

    struct NodeAcc
    {
        uint64_t freq = 0;
        uint32_t size = 0;
        uint8_t flags = 0;
    };
    struct FnAcc
    {
        std::map<uint32_t, NodeAcc> nodes;
        std::map<std::tuple<uint32_t, uint32_t, uint8_t>, uint64_t> edges;
        uint32_t entryBb = 0;
        bool haveEntry = false;
    };
    std::map<std::string, FnAcc> fns;
    std::map<std::tuple<std::string, uint32_t, std::string>, uint64_t>
        calls;

    for (uint32_t v = 0; v < opts.versions; ++v) {
        VersionState &vs = versions[v];
        if (vs.agg.empty())
            continue;

        // Normalize this version's rolling counts by its decayed weight
        // share, with the window's geometric factor cancelled before
        // rounding (DecayedAggregate::quantize) — at a constant fleet
        // mix the per-version counts are exactly stable, which is what
        // keeps layout fingerprints warm across steady-state relinks.
        double share = vs.agg.totalBranchWeight() / totalWeight;
        auto scale_to = static_cast<uint64_t>(std::llround(
            static_cast<double>(opts.freqResolution) * share));
        profile::AggregatedProfile quant =
            vs.agg.quantize(std::max<uint64_t>(scale_to, 1));
        if (quant.branches.empty() && quant.ranges.empty())
            continue;

        core::WholeProgramDcfg dcfg = core::buildDcfg(
            quant, *vs.index, nullptr, opts.base.jobs ? opts.base.jobs : 1);

        // Into the target's block-id space: identity for the target
        // version itself, fingerprint matching + count inference for
        // every older (or newer) one.
        stale::StaleMatchResult match =
            stale::matchStaleProfile(dcfg, *vs.index, tindex);
        stale::inferStaleCounts(match, tindex);

        for (const auto &fh : match.functionHashes) {
            if (fh.profiledHash != fh.targetHash)
                primeFns.insert(fh.function);
        }

        for (const core::FunctionDcfg &fn : match.dcfg.functions) {
            FnAcc &acc = fns[fn.function];
            if (!acc.haveEntry && fn.entryNode < fn.nodes.size()) {
                acc.entryBb = fn.nodes[fn.entryNode].bbId;
                acc.haveEntry = true;
            }
            for (const core::DcfgNode &n : fn.nodes) {
                NodeAcc &na = acc.nodes[n.bbId];
                na.freq += n.freq;
                na.size = n.size;
                na.flags = n.flags;
            }
            for (const core::DcfgEdge &e : fn.edges) {
                acc.edges[{fn.nodes[e.fromNode].bbId,
                           fn.nodes[e.toNode].bbId,
                           static_cast<uint8_t>(e.kind)}] += e.weight;
            }
        }
        for (const core::CallEdge &ce : match.dcfg.callEdges) {
            const core::FunctionDcfg &caller =
                match.dcfg.functions[ce.callerDcfg];
            const core::FunctionDcfg &callee =
                match.dcfg.functions[ce.calleeDcfg];
            calls[{caller.function, caller.nodes[ce.callerNode].bbId,
                   callee.function}] += ce.weight;
        }
    }

    // Emit the merged DCFG in fully sorted order (functions by name,
    // nodes by block id, edges by endpoint key): deterministic, and
    // stable epoch-over-epoch whenever the accumulators are.
    std::map<std::string, uint32_t> fnIndex;
    for (auto &[name, acc] : fns) {
        core::FunctionDcfg fn;
        fn.function = name;
        PROPELLER_CHECK(acc.haveEntry &&
                            acc.nodes.find(acc.entryBb) != acc.nodes.end(),
                        "combined DCFG lost a function's entry block");
        std::map<uint32_t, uint32_t> nodeIndex;
        for (const auto &[bb, na] : acc.nodes) {
            nodeIndex[bb] = static_cast<uint32_t>(fn.nodes.size());
            fn.nodes.push_back({bb, na.size, na.freq, na.flags});
        }
        fn.entryNode = nodeIndex[acc.entryBb];
        for (const auto &[key, weight] : acc.edges) {
            const auto &[fromBb, toBb, kind] = key;
            fn.edges.push_back({nodeIndex[fromBb], nodeIndex[toBb], weight,
                                static_cast<core::EdgeKind>(kind)});
        }
        fnIndex[name] = static_cast<uint32_t>(combined.functions.size());
        combined.functions.push_back(std::move(fn));
    }
    for (const auto &[key, weight] : calls) {
        const auto &[callerName, callerBb, calleeName] = key;
        uint32_t callerIdx = fnIndex[callerName];
        uint32_t calleeIdx = fnIndex[calleeName];
        const core::FunctionDcfg &caller = combined.functions[callerIdx];
        uint32_t callerNode = 0;
        for (uint32_t i = 0; i < caller.nodes.size(); ++i) {
            if (caller.nodes[i].bbId == callerBb) {
                callerNode = i;
                break;
            }
        }
        combined.callEdges.push_back(
            {callerIdx, callerNode, calleeIdx, weight});
    }
    combinedValid = !combined.functions.empty();
}

std::map<std::pair<std::string, uint32_t>, double>
FleetService::Impl::distribution() const
{
    std::map<std::pair<std::string, uint32_t>, double> dist;
    uint64_t total = 0;
    for (const core::FunctionDcfg &fn : combined.functions) {
        for (const core::DcfgNode &n : fn.nodes)
            total += n.freq;
    }
    if (total == 0)
        return dist;
    for (const core::FunctionDcfg &fn : combined.functions) {
        for (const core::DcfgNode &n : fn.nodes) {
            dist[{fn.function, n.bbId}] +=
                static_cast<double>(n.freq) / static_cast<double>(total);
        }
    }
    return dist;
}

double
FleetService::Impl::driftMetric() const
{
    // Total-variation distance between the combined DCFG's per-block
    // frequency shares and the snapshot taken at the last relink:
    // 0 = the shipped layout still matches the fleet's behavior,
    // 1 = completely disjoint (including "never relinked yet").
    std::map<std::pair<std::string, uint32_t>, double> cur =
        distribution();
    if (snapshot.empty())
        return cur.empty() ? 0.0 : 1.0;
    if (cur.empty())
        return 1.0;
    double sum = 0.0;
    auto snap_it = snapshot.begin();
    for (const auto &[key, p] : cur) {
        while (snap_it != snapshot.end() && snap_it->first < key) {
            sum += snap_it->second;
            ++snap_it;
        }
        if (snap_it != snapshot.end() && snap_it->first == key) {
            sum += std::fabs(p - snap_it->second);
            ++snap_it;
        } else {
            sum += p;
        }
    }
    for (; snap_it != snapshot.end(); ++snap_it)
        sum += snap_it->second;
    return 0.5 * sum;
}

void
FleetService::Impl::relink(uint32_t epoch, double metric, bool forced)
{
    PROPELLER_CHECK(combinedValid,
                    "relink requested before any samples were ingested");
    const VersionState &tv = versions[target];

    buildsys::Workflow wf(opts.base);
    wf.overrideProgram(makeVersionProgram(opts, target));

    // The profile seam carries only the identity stamp: the layout
    // input is the injected combined DCFG, already in the target's
    // block-id space.
    profile::Profile stamp;
    stamp.binaryHash = tv.exe.identityHash;
    stamp.totalRetired = 1;
    wf.overrideProfile(std::move(stamp));
    wf.overrideDcfg(core::WholeProgramDcfg(combined));
    wf.setLayoutPrimeFunctions(primeFns);

    bool loaded = wf.loadCacheFile(opts.cachePath);

    // Warm-hit accounting: every layout key this service wrote to the
    // image in an earlier relink must be served warm — exactly, or
    // through the primed digest alias for drifted-but-matched
    // functions.  Computed with the same free fingerprint functions the
    // relink engine uses, so the expectation is key-for-key honest.
    const uint64_t opts_fp =
        core::layoutOptionsFingerprint(core::LayoutOptions{});
    uint64_t expected_hits = 0;
    uint64_t expected_primed = 0;
    std::vector<std::pair<uint64_t, uint64_t>> keys;
    keys.reserve(combined.functions.size());
    for (const core::FunctionDcfg &fn : combined.functions) {
        int fi = tv.index->findFunction(fn.function);
        uint64_t key = hashCombine(
            core::layoutMemoFingerprint(fn, *tv.index, fi), opts_fp);
        uint64_t dkey = hashCombine(
            core::layoutInputDigest(fn, *tv.index, fi), opts_fp);
        keys.emplace_back(key, dkey);
        if (!loaded)
            continue;
        if (knownLayoutKeys.count(key) != 0)
            ++expected_hits;
        else if (primeFns.count(fn.function) != 0 &&
                 knownLayoutDigests.count(dkey) != 0)
            ++expected_primed;
    }

    const linker::Executable &po = wf.propellerBinary();
    PROPELLER_CHECK(wf.saveCacheFile(opts.cachePath),
                    "failed to persist the fleet cache image");

    const buildsys::CacheStats &ls = wf.layoutCacheStats();
    PROPELLER_CHECK(ls.hits + ls.primedHits >=
                        expected_hits + expected_primed,
                    "persisted layout entries failed to serve warm");

    RelinkRecord rec;
    rec.epoch = epoch;
    rec.metric = metric;
    rec.forced = forced;
    rec.cacheLoaded = loaded;
    rec.layoutHits = ls.hits;
    rec.layoutMisses = ls.misses;
    rec.layoutPrimedHits = ls.primedHits;
    rec.objectHits = wf.cacheStats().hits;
    rec.expectedHits = expected_hits;
    rec.expectedPrimedHits = expected_primed;
    rec.primedFunctions = primeFns.size();
    if (wf.hasRelinkSchedule())
        rec.schedule = wf.relinkSchedule();
    relinkLog.push_back(std::move(rec));

    shipped = po;
    haveShipped = true;
    lastDcfg = combined;
    lastWpa = wf.wpa();
    lastPrime = primeFns;
    snapshot = distribution();

    for (const auto &[key, dkey] : keys) {
        knownLayoutKeys.insert(key);
        knownLayoutDigests.insert(dkey);
    }
}

FleetService::FleetService(FleetOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

FleetService::~FleetService() = default;

const FleetOptions &
FleetService::options() const
{
    return impl_->opts;
}

void
FleetService::stepEpoch()
{
    impl_->stepEpoch();
}

void
FleetService::run(uint32_t epochs)
{
    for (uint32_t e = 0; e < epochs; ++e)
        impl_->stepEpoch();
}

void
FleetService::relinkNow()
{
    impl_->relink(impl_->epochsRun, impl_->driftMetric(), /*forced=*/true);
}

uint32_t
FleetService::epochsRun() const
{
    return impl_->epochsRun;
}

uint32_t
FleetService::targetVersion() const
{
    return impl_->target;
}

uint32_t
FleetService::driftCrossings() const
{
    return impl_->crossings;
}

const std::vector<EpochStats> &
FleetService::history() const
{
    return impl_->history;
}

const std::vector<RelinkRecord> &
FleetService::relinks() const
{
    return impl_->relinkLog;
}

const linker::Executable &
FleetService::shippedBinary() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->shipped;
}

const core::WholeProgramDcfg &
FleetService::lastRelinkDcfg() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->lastDcfg;
}

const core::WpaResult &
FleetService::lastRelinkWpa() const
{
    PROPELLER_CHECK(impl_->haveShipped, "no relink has shipped yet");
    return impl_->lastWpa;
}

const std::set<std::string> &
FleetService::lastPrimeFunctions() const
{
    return impl_->lastPrime;
}

const linker::Executable &
FleetService::versionBinary(uint32_t v) const
{
    return impl_->versions.at(v).exe;
}

const ir::Program &
FleetService::versionProgram(uint32_t v) const
{
    return impl_->versions.at(v).program;
}

} // namespace propeller::fleet
