#ifndef PROPELLER_SERVICE_FLEET_H
#define PROPELLER_SERVICE_FLEET_H

/**
 * @file
 * Continuous-profiling fleet service (the warehouse-scale deployment
 * loop of paper section 2: profiles stream in from production machines
 * continuously, and the optimized binary is *relinked*, not rebuilt,
 * whenever the profile has drifted far enough from the one that
 * produced the shipped layout).
 *
 * The service simulates a fleet of N machines spread over a chain of
 * binary versions (v0 is the pristine build; each later version is the
 * previous one plus one week of synthetic drift, workload::applyDrift).
 * Every epoch, each machine runs its version under load and emits its
 * share of LBR samples as wire-format profile shards, stamped with the
 * version's identity hash.  Ingestion is shard-at-a-time,
 * arrival-order independent, and chaos-tolerant:
 *
 *  - each shard decodes independently (corrupt shards are dropped and
 *    counted, never fatal) and is routed to its *version's* bucket by
 *    the per-shard identity stamp — samples from an old binary version
 *    are remapped through the stale matcher (src/stale) rather than
 *    being rejected against the newest version's hash;
 *  - arrivals are deduplicated by (machine, emission epoch, sequence),
 *    so a retransmitting network path never double-counts samples;
 *  - a shard delayed on the wire folds into the decay-window slot of
 *    the epoch it was *emitted* in (DecayedAggregate::addAt), so laggy
 *    machines age on their run clock, not their delivery clock; shards
 *    older than the window are expired, not mis-folded;
 *  - every envelope names its batch size, so gaps in a machine's
 *    sequence space are detected as losses once the lag horizon (the
 *    decay window) passes, and per-machine health counters attribute
 *    duplicates, losses, corruption, lag and reorder per emitter;
 *  - per-version epoch counters fold into a recency-weighted rolling
 *    aggregate (profile::DecayedAggregate); the per-version aggregates
 *    are normalized by decayed weight share, mapped onto the *target*
 *    version's block-id space through matchStaleProfile +
 *    inferStaleCounts, and merged — by function name, block id and
 *    edge key, in sorted order — into one combined whole-program DCFG.
 *
 * A drift metric (total-variation distance between the combined DCFG's
 * per-block frequency distribution and the snapshot taken at the last
 * relink; optionally weighted by block byte size, FleetOptions::
 * weightedDrift) is evaluated every epoch; when it crosses the
 * configured threshold the service triggers an incremental relink: a
 * fresh buildsys::Workflow over the target version with the combined
 * DCFG injected (overrideDcfg), the persisted artifact-cache image
 * loaded from disk, and the stale matcher's drifted-but-matched
 * function set priming the layout tier (setLayoutPrimeFunctions).
 *
 * Relinks are guarded by a last-good rollback state machine: a failed
 * attempt (an injected executor fault, or an artifact the static
 * verifier rejects) is retried with bounded deterministic backoff; on
 * persistent failure the relink is quarantined — the service keeps
 * serving the previous generation's verifier-clean artifact, flags
 * degraded mode in statusz, and re-attempts at the next epoch whether
 * or not the metric crosses again.  Every *served* artifact carries a
 * generation stamp and passed analysis::verifyExecutable; the cache
 * image is persisted through a generation-stamped, checksummed journal
 * with atomic temp-file+rename writes (src/build/journal.h), so a
 * crash mid-save cold-starts cleanly instead of serving a torn image.
 *
 * Everything is deterministic in FleetOptions (and the chaos seed, when
 * chaos hooks are attached): machine upgrade order, shard emission, the
 * (seeded) arrival shuffle, aggregation, matching, merging and the
 * relink itself — two services with the same options produce
 * byte-identical shipped binaries and drift histories.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "linker/executable.h"
#include "propeller/dcfg.h"
#include "propeller/propeller.h"
#include "sched/sched.h"
#include "support/status.h"
#include "workload/workload.h"

namespace propeller::fleet {

/** Parameters of one simulated fleet. */
struct FleetOptions
{
    /** The application every machine runs (v0's generator config).
     *  `base.jobs` is the worker-thread count for every parallel stage
     *  of ingestion and relinking. */
    workload::WorkloadConfig base;

    /** Fleet machines emitting profile shards. */
    uint32_t machines = 8;

    /** Binary versions in the drift chain (>= 1). */
    uint32_t versions = 3;

    /** Drift rate applied between consecutive versions. */
    double interVersionDrift = 0.10;

    /** Relink when the drift metric exceeds this (strictly). */
    double driftThreshold = 0.15;

    /** Per-epoch decay of older epochs' sample weight, in (0, 1]. */
    double decay = 0.5;

    /** Epochs of history kept per version (DecayedAggregate window).
     *  Doubles as the lag horizon: a shard older than this is useless
     *  to the mix, so outstanding batch gaps older than the window are
     *  finalized as losses. */
    uint32_t decayWindow = 4;

    /**
     * Epoch at which the newest version becomes the relink target.  The
     * flip precedes any machine migration, so the release-epoch relink
     * sees an unchanged sample mix remapped onto the new binary — the
     * case layout-tier priming exists for.
     */
    uint32_t releaseEpoch = 2;

    /** Machines migrated to the target per epoch after the release. */
    uint32_t upgradesPerEpoch = 2;

    /** Scale the combined DCFG's heaviest branch count to this. */
    uint64_t freqResolution = 1'000'000;

    /**
     * Seed for the per-epoch shard arrival shuffle.  Ingestion
     * canonicalizes by (machine, emission epoch, shard sequence) before
     * folding, so the service's outputs are identical for every seed —
     * the knob exists so tests can prove that.
     */
    uint64_t arrivalShuffleSeed = 0;

    /** Samples per emitted wire shard. */
    uint32_t shardSamples = 64;

    /** Artifact-cache image persisted across relinks (and across
     *  service restarts).  Empty = "<base.name>.fleet.cache". */
    std::string cachePath;

    /**
     * Weight the total-variation drift metric by block byte size: a hot
     * 200-byte block shifting its share moves the metric 100x more than
     * a hot 2-byte block, matching the i-cache/iTLB footprint the
     * relink actually reorganizes.  The unweighted metric is always
     * computed alongside (EpochStats::driftMetricUnweighted) for
     * ablation.
     */
    bool weightedDrift = false;

    /** Relink attempts retried beyond the first, per trigger. */
    uint32_t maxRelinkRetries = 2;

    /** Backoff before relink retry k is relinkBackoffSec * 2^(k-1)
     *  modelled seconds (accumulated in RelinkRecord::backoffSec). */
    double relinkBackoffSec = 30.0;

    /**
     * Run the static verifier (analysis::verifyExecutable, through the
     * Workflow's phase-5 twin) over every relink output and treat a
     * diagnostic as a failed attempt — the "never ship an unverified
     * binary" contract.  On by default; tests that only exercise
     * ingestion may turn it off for speed.
     */
    bool verifyRelinks = true;
};

/**
 * One profile shard in flight from a machine to the service, as the
 * chaos seams see it: transport metadata (which machine, which epoch's
 * emission, sequence within that emission and the emission's batch
 * size) plus the opaque serialized profile bytes.
 *
 * Chaos hooks mutate a wire batch in place: erase envelopes to model
 * drops, copy them to model retransmit duplicates, permute them to
 * model reordering, raise `deliverEpoch` to model multi-epoch lag, and
 * corrupt `bytes` to model payload rot.  Ingestion never reads
 * `deliverEpoch` for detection — lag is measured against `emitEpoch`,
 * exactly as a real pipeline timestamps at emission.
 */
struct WireShard
{
    uint32_t machine = 0;
    uint32_t emitEpoch = 0;  ///< Epoch the emitting machine ran in.
    uint32_t seq = 0;        ///< Sequence within the machine's emission.
    uint32_t batchSize = 0;  ///< Shards in this (machine, epoch) batch.
    uint32_t deliverEpoch = 0; ///< Epoch the wire delivers it (>= emit).
    std::vector<uint8_t> bytes;
};

/**
 * Chaos-injection seams of the fleet service (src/faultinject's
 * ChaosSchedule drives these; tests may subclass directly).  Every hook
 * is a no-op by default and a service without hooks attached takes none
 * of the degraded paths — the chaos-free loop stays byte-identical.
 */
class FleetChaosHooks
{
  public:
    virtual ~FleetChaosHooks() = default;

    /**
     * On the wire batch of @p epoch, after the service's own arrival
     * shuffle and before ingestion.  May drop, duplicate, reorder,
     * delay (set deliverEpoch > epoch) or corrupt envelopes.
     */
    virtual void onWireShards(uint32_t epoch,
                              std::vector<WireShard> &wire)
    {
        (void)epoch;
        (void)wire;
    }

    /**
     * Return true to fail attempt @p attempt (1-based) of the relink
     * triggered at @p epoch — a modelled mid-relink executor crash.
     */
    virtual bool
    failRelink(uint32_t epoch, uint32_t attempt)
    {
        (void)epoch;
        (void)attempt;
        return false;
    }
};

/** Cumulative ingest health of one emitting machine. */
struct MachineHealth
{
    uint64_t shardsIngested = 0;  ///< Decoded, unique, in-window.
    uint64_t duplicates = 0;      ///< (machine, epoch, seq) re-arrivals.
    uint64_t losses = 0;          ///< Batch gaps finalized as lost.
    uint64_t corrupt = 0;         ///< Payload rejected by decode.
    uint64_t late = 0;            ///< Arrived after their emit epoch.
    uint64_t expired = 0;         ///< Late beyond the decay window.
    uint32_t lagPeakEpochs = 0;   ///< Worst arrival lag seen.

    bool operator==(const MachineHealth &) const = default;
};

/** Service-wide fault-detection totals (the chaos gate's counters). */
struct FaultDetection
{
    uint64_t corrupt = 0;    ///< Shards rejected as corrupt.
    uint64_t duplicates = 0; ///< Shards dropped as duplicates.
    uint64_t losses = 0;     ///< Shards finalized as lost.
    uint64_t late = 0;       ///< Shards folded into a past window slot.
    uint64_t expired = 0;    ///< Late shards beyond the window, dropped.
    uint64_t inversions = 0; ///< Same-batch out-of-sequence arrivals.
    uint64_t relinkFailures = 0; ///< Relink attempts that failed.

    bool operator==(const FaultDetection &) const = default;
};

/** What one epoch ingested and decided. */
struct EpochStats
{
    uint32_t epoch = 0;

    uint32_t shardsIngested = 0; ///< Wire shards folded into the mix.
    uint32_t shardsRejected = 0; ///< Wire shards dropped as corrupt.
    uint32_t shardsDuplicated = 0; ///< Dropped as duplicate arrivals.
    uint32_t shardsLate = 0;     ///< Folded into a past window slot.
    uint32_t shardsExpired = 0;  ///< Too old for the window, dropped.
    uint32_t shardsLost = 0;     ///< Batch gaps finalized this epoch.
    uint32_t arrivalInversions = 0; ///< Out-of-sequence arrivals.

    /** Peak arrival lag among this epoch's arrivals, in epochs
     *  (0 = every shard arrived in its emission epoch). */
    uint32_t shardLagPeak = 0;

    /** Version index -> samples ingested this epoch. */
    std::map<uint32_t, uint64_t> samplesByVersion;

    /** Version index -> machines running it when the epoch ended. */
    std::map<uint32_t, uint32_t> machinesByVersion;

    /** Active drift metric vs the last-relink snapshot, in [0, 1]
     *  (byte-size weighted iff FleetOptions::weightedDrift). */
    double driftMetric = 0.0;

    /** The unweighted metric, always computed (ablation twin). */
    double driftMetricUnweighted = 0.0;

    bool relinked = false; ///< The metric crossed the threshold.

    /** A quarantined relink was re-attempted this epoch. */
    bool relinkRetried = false;
};

/** One relink of the shipped binary. */
struct RelinkRecord
{
    uint32_t epoch = 0;    ///< Epoch that triggered it.
    double metric = 0.0;   ///< Drift metric at the trigger.
    bool forced = false;   ///< relinkNow(), not a threshold crossing.

    bool cacheLoaded = false; ///< The persisted image seeded the run.

    uint64_t layoutHits = 0;       ///< Layout tier: exact-key hits.
    uint64_t layoutMisses = 0;     ///< Layout tier: Ext-TSP reruns.
    uint64_t layoutPrimedHits = 0; ///< Layout tier: digest-alias hits.
    uint64_t objectHits = 0;       ///< Object tier: codegen cache hits.

    /**
     * Warm hits this service *knows* the persisted image must serve
     * (keys it wrote in earlier relinks).  Actual hits may exceed this
     * when the image predates the service; they must never fall short —
     * the service checks that invariant on every relink.
     */
    uint64_t expectedHits = 0;
    uint64_t expectedPrimedHits = 0;

    /** Functions primed for digest-alias lookups this relink. */
    uint64_t primedFunctions = 0;

    // ---- Rollback state machine ------------------------------------
    uint32_t attempts = 1;       ///< Attempts run (1 = clean first try).
    uint32_t failedAttempts = 0; ///< Attempts that failed.
    double backoffSec = 0.0;     ///< Modelled retry backoff accumulated.

    /** All attempts failed: the last-good artifact keeps serving and
     *  the service re-attempts next epoch (degraded mode). */
    bool quarantined = false;

    /** The shipped artifact passed the static verifier (always true on
     *  success when FleetOptions::verifyRelinks; false when
     *  quarantined — nothing new shipped). */
    bool verifierClean = false;

    /** Generation stamp of the artifact serving *after* this relink
     *  (unchanged from the previous record when quarantined). */
    uint64_t generation = 0;

    /** Modelled schedule of the relink task graph. */
    sched::ScheduleReport schedule;
};

/**
 * The long-running service.  Construction builds the version chain and
 * collects each version's steady-state load profile; stepEpoch() then
 * advances the deterministic clock one epoch at a time.
 */
class FleetService
{
  public:
    explicit FleetService(FleetOptions opts);
    ~FleetService();
    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    const FleetOptions &options() const;

    /**
     * Attach chaos hooks (not owned; nullptr detaches).  Hooks attached
     * mid-run only affect epochs not yet stepped.
     */
    void setChaosHooks(FleetChaosHooks *hooks);

    /** Ingest one epoch of fleet shards; relink on a threshold cross
     *  (or re-attempt a quarantined relink). */
    void stepEpoch();

    /** stepEpoch() @p epochs times. */
    void run(uint32_t epochs);

    /**
     * Relink now regardless of the drift metric (flagged `forced` in
     * the record, excluded from driftCrossings()).  Requires at least
     * one epoch of ingested samples.
     */
    void relinkNow();

    // ---- Runtime fleet configuration --------------------------------

    /**
     * Extend the version chain by one drift episode on top of the
     * current newest version (canary rollout seam: push a new build to
     * a live fleet).  Returns the new version's index.  The new version
     * emits no shards until machines migrate to it — follow with
     * setTargetVersion() to start the canary.
     */
    uint32_t addVersion();

    /**
     * Retarget relinks (and post-release machine migration) at version
     * @p v.  The version must not be retired.
     */
    void setTargetVersion(uint32_t v);

    /**
     * Retire version @p v: its machines migrate off immediately (to the
     * target, or — when @p v *is* the target, the canary-rollback case
     * — to the newest non-retired version, which becomes the target).
     * The version stops emitting; its in-flight and decaying samples
     * still route through the stale matcher until they age out.  At
     * least one version must remain.
     */
    void retireVersion(uint32_t v);

    bool versionRetired(uint32_t v) const;

    /** Versions in the chain, including retired ones. */
    uint32_t versionCount() const;

    uint32_t epochsRun() const;
    uint32_t targetVersion() const;

    /** Epochs whose drift metric exceeded the threshold. */
    uint32_t driftCrossings() const;

    /**
     * Degraded mode: the most recent relink was quarantined after
     * exhausting its retries, and the service is serving the last-good
     * generation while re-attempting each epoch.
     */
    bool degraded() const;

    /** Generation stamp of the currently served artifact (0 = none
     *  shipped yet; bumped only by successful, verified relinks). */
    uint64_t generation() const;

    const std::vector<EpochStats> &history() const;
    const std::vector<RelinkRecord> &relinks() const;

    /** Cumulative per-machine ingest health. */
    const std::map<uint32_t, MachineHealth> &machineHealth() const;

    /** Service-wide fault-detection totals. */
    const FaultDetection &detection() const;

    /** The last *successful* relink's output binary (the last-good
     *  artifact during quarantine).  Requires >= 1 shipped relink. */
    const linker::Executable &shippedBinary() const;

    /** The combined DCFG the last successful relink was driven by. */
    const core::WholeProgramDcfg &lastRelinkDcfg() const;

    /** The last successful relink's WPA artifacts (cc_prof/ld_prof). */
    const core::WpaResult &lastRelinkWpa() const;

    /** Function names primed for digest-alias layout lookups at the
     *  last relink (drifted-but-matched per the stale matcher). */
    const std::set<std::string> &lastPrimeFunctions() const;

    /** Version @p v's metadata binary (profiling target). */
    const linker::Executable &versionBinary(uint32_t v) const;

    /** Version @p v's generated-then-drifted program. */
    const ir::Program &versionProgram(uint32_t v) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Regenerate version @p v's program: v0 is the pristine build of
 * `opts.base`, each later version replays one more drift episode — the
 * exact recipe the service uses internally (including for versions
 * added at runtime), so callers comparing against a service's relinks
 * get byte-identical programs.
 */
ir::Program makeVersionProgram(const FleetOptions &opts, uint32_t v);

/** Per-(function, block) frequency shares of @p dcfg, optionally
 *  weighted by block byte size (the drift metric's distribution). */
std::map<std::pair<std::string, uint32_t>, double>
blockDistribution(const core::WholeProgramDcfg &dcfg, bool weightBySize);

/** Total-variation distance between two share distributions, in
 *  [0, 1]; an empty side counts as completely disjoint. */
double
totalVariation(const std::map<std::pair<std::string, uint32_t>, double> &a,
               const std::map<std::pair<std::string, uint32_t>, double> &b);

/** Multi-line human-readable statusz page. */
std::string renderStatuszText(const FleetService &service);

/** The same page as a JSON document (the CI/monitoring form). */
std::string renderStatuszJson(const FleetService &service);

/**
 * Render the JSON statusz page to @p path.  A malformed or unwritable
 * path is a typed usage error, never a silent failure or an abort.
 */
support::Status writeStatuszFile(const FleetService &service,
                                 const std::string &path);

} // namespace propeller::fleet

#endif // PROPELLER_SERVICE_FLEET_H
