#ifndef PROPELLER_SERVICE_FLEET_H
#define PROPELLER_SERVICE_FLEET_H

/**
 * @file
 * Continuous-profiling fleet service (the warehouse-scale deployment
 * loop of paper section 2: profiles stream in from production machines
 * continuously, and the optimized binary is *relinked*, not rebuilt,
 * whenever the profile has drifted far enough from the one that
 * produced the shipped layout).
 *
 * The service simulates a fleet of N machines spread over a chain of
 * binary versions (v0 is the pristine build; each later version is the
 * previous one plus one week of synthetic drift, workload::applyDrift).
 * Every epoch, each machine runs its version under load and emits its
 * share of LBR samples as wire-format profile shards, stamped with the
 * version's identity hash.  Ingestion is shard-at-a-time and
 * arrival-order independent:
 *
 *  - each shard decodes independently (corrupt shards are dropped and
 *    counted, never fatal) and is routed to its *version's* bucket by
 *    the per-shard identity stamp — samples from an old binary version
 *    are remapped through the stale matcher (src/stale) rather than
 *    being rejected against the newest version's hash;
 *  - per-version epoch counters fold into a recency-weighted rolling
 *    aggregate (profile::DecayedAggregate), so machines that migrated
 *    away age their old version's samples out of the mix;
 *  - the per-version aggregates are normalized by their decayed weight
 *    share, mapped onto the *target* version's block-id space through
 *    matchStaleProfile + inferStaleCounts, and merged — by function
 *    name, block id and edge key, in sorted order — into one combined
 *    whole-program DCFG.  The merge is integer arithmetic over ordered
 *    maps, so the combined DCFG is byte-identical at any shard arrival
 *    order and any thread count.
 *
 * A drift metric (total-variation distance between the combined DCFG's
 * per-block frequency distribution and the snapshot taken at the last
 * relink) is evaluated every epoch; when it crosses the configured
 * threshold the service triggers an incremental relink: a fresh
 * buildsys::Workflow over the target version with the combined DCFG
 * injected (overrideDcfg), the persisted artifact-cache image loaded
 * from disk, and the stale matcher's drifted-but-matched function set
 * priming the layout tier (setLayoutPrimeFunctions).  The relink runs
 * on the work-stealing task graph; its modelled ScheduleReport, cache
 * tier counters and expected-vs-actual warm-hit accounting are recorded
 * per relink and exposed through the statusz renderers (statusz.cc).
 *
 * Everything is deterministic in FleetOptions: machine upgrade order,
 * shard emission, the (seeded) arrival shuffle, aggregation, matching,
 * merging and the relink itself — two services with the same options
 * produce byte-identical shipped binaries and drift histories.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "linker/executable.h"
#include "propeller/dcfg.h"
#include "propeller/propeller.h"
#include "sched/sched.h"
#include "workload/workload.h"

namespace propeller::fleet {

/** Parameters of one simulated fleet. */
struct FleetOptions
{
    /** The application every machine runs (v0's generator config).
     *  `base.jobs` is the worker-thread count for every parallel stage
     *  of ingestion and relinking. */
    workload::WorkloadConfig base;

    /** Fleet machines emitting profile shards. */
    uint32_t machines = 8;

    /** Binary versions in the drift chain (>= 1). */
    uint32_t versions = 3;

    /** Drift rate applied between consecutive versions. */
    double interVersionDrift = 0.10;

    /** Relink when the drift metric exceeds this (strictly). */
    double driftThreshold = 0.15;

    /** Per-epoch decay of older epochs' sample weight, in (0, 1]. */
    double decay = 0.5;

    /** Epochs of history kept per version (DecayedAggregate window). */
    uint32_t decayWindow = 4;

    /**
     * Epoch at which the newest version becomes the relink target.  The
     * flip precedes any machine migration, so the release-epoch relink
     * sees an unchanged sample mix remapped onto the new binary — the
     * case layout-tier priming exists for.
     */
    uint32_t releaseEpoch = 2;

    /** Machines migrated to the target per epoch after the release. */
    uint32_t upgradesPerEpoch = 2;

    /** Scale the combined DCFG's heaviest branch count to this. */
    uint64_t freqResolution = 1'000'000;

    /**
     * Seed for the per-epoch shard arrival shuffle.  Ingestion
     * canonicalizes by (machine, shard sequence) before folding, so the
     * service's outputs are identical for every seed — the knob exists
     * so tests can prove that.
     */
    uint64_t arrivalShuffleSeed = 0;

    /** Samples per emitted wire shard. */
    uint32_t shardSamples = 64;

    /** Artifact-cache image persisted across relinks (and across
     *  service restarts).  Empty = "<base.name>.fleet.cache". */
    std::string cachePath;
};

/** What one epoch ingested and decided. */
struct EpochStats
{
    uint32_t epoch = 0;

    uint32_t shardsIngested = 0; ///< Wire shards decoded successfully.
    uint32_t shardsRejected = 0; ///< Wire shards dropped as corrupt.

    /** Shards queued ahead of the fold (the ingest backlog peak). */
    uint32_t shardLagPeak = 0;

    /** Version index -> samples ingested this epoch. */
    std::map<uint32_t, uint64_t> samplesByVersion;

    /** Version index -> machines running it when the epoch ended. */
    std::map<uint32_t, uint32_t> machinesByVersion;

    /** Drift metric vs the last-relink snapshot, in [0, 1]. */
    double driftMetric = 0.0;

    bool relinked = false; ///< The metric crossed the threshold.
};

/** One relink of the shipped binary. */
struct RelinkRecord
{
    uint32_t epoch = 0;    ///< Epoch that triggered it.
    double metric = 0.0;   ///< Drift metric at the trigger.
    bool forced = false;   ///< relinkNow(), not a threshold crossing.

    bool cacheLoaded = false; ///< The persisted image seeded the run.

    uint64_t layoutHits = 0;       ///< Layout tier: exact-key hits.
    uint64_t layoutMisses = 0;     ///< Layout tier: Ext-TSP reruns.
    uint64_t layoutPrimedHits = 0; ///< Layout tier: digest-alias hits.
    uint64_t objectHits = 0;       ///< Object tier: codegen cache hits.

    /**
     * Warm hits this service *knows* the persisted image must serve
     * (keys it wrote in earlier relinks).  Actual hits may exceed this
     * when the image predates the service; they must never fall short —
     * the service checks that invariant on every relink.
     */
    uint64_t expectedHits = 0;
    uint64_t expectedPrimedHits = 0;

    /** Functions primed for digest-alias lookups this relink. */
    uint64_t primedFunctions = 0;

    /** Modelled schedule of the relink task graph. */
    sched::ScheduleReport schedule;
};

/**
 * The long-running service.  Construction builds the version chain and
 * collects each version's steady-state load profile; stepEpoch() then
 * advances the deterministic clock one epoch at a time.
 */
class FleetService
{
  public:
    explicit FleetService(FleetOptions opts);
    ~FleetService();
    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    const FleetOptions &options() const;

    /** Ingest one epoch of fleet shards; relink on a threshold cross. */
    void stepEpoch();

    /** stepEpoch() @p epochs times. */
    void run(uint32_t epochs);

    /**
     * Relink now regardless of the drift metric (flagged `forced` in
     * the record, excluded from driftCrossings()).  Requires at least
     * one epoch of ingested samples.
     */
    void relinkNow();

    uint32_t epochsRun() const;
    uint32_t targetVersion() const;

    /** Epochs whose drift metric exceeded the threshold. */
    uint32_t driftCrossings() const;

    const std::vector<EpochStats> &history() const;
    const std::vector<RelinkRecord> &relinks() const;

    /** The last relink's output binary.  Requires >= 1 relink. */
    const linker::Executable &shippedBinary() const;

    /** The combined DCFG the last relink was driven by. */
    const core::WholeProgramDcfg &lastRelinkDcfg() const;

    /** The last relink's WPA artifacts (cc_prof / ld_prof). */
    const core::WpaResult &lastRelinkWpa() const;

    /** Function names primed for digest-alias layout lookups at the
     *  last relink (drifted-but-matched per the stale matcher). */
    const std::set<std::string> &lastPrimeFunctions() const;

    /** Version @p v's metadata binary (profiling target). */
    const linker::Executable &versionBinary(uint32_t v) const;

    /** Version @p v's generated-then-drifted program. */
    const ir::Program &versionProgram(uint32_t v) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Regenerate version @p v's program: v0 is the pristine build of
 * `opts.base`, each later version replays one more drift episode — the
 * exact recipe the service uses internally, so callers comparing against
 * a service's relinks get byte-identical programs.
 */
ir::Program makeVersionProgram(const FleetOptions &opts, uint32_t v);

/** Multi-line human-readable statusz page. */
std::string renderStatuszText(const FleetService &service);

/** The same page as a JSON document (the CI/monitoring form). */
std::string renderStatuszJson(const FleetService &service);

} // namespace propeller::fleet

#endif // PROPELLER_SERVICE_FLEET_H
