#include "service/fleet.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <string>

namespace propeller::fleet {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list args;
    va_start(args, format);
    vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** Indent every line of a multi-line block. */
std::string
indent(const std::string &block, const char *prefix)
{
    std::string out;
    size_t pos = 0;
    while (pos < block.size()) {
        size_t eol = block.find('\n', pos);
        if (eol == std::string::npos)
            eol = block.size();
        out += prefix;
        out.append(block, pos, eol - pos);
        out += '\n';
        pos = eol + 1;
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
renderStatuszText(const FleetService &service)
{
    const FleetOptions &opts = service.options();
    std::ostringstream os;

    os << "=== fleet statusz: " << opts.base.name << " ===\n";
    os << fmt("machines %u  versions %u  target v%u  epochs run %u\n",
              opts.machines, opts.versions, service.targetVersion(),
              service.epochsRun());
    os << fmt("drift threshold %.4f  decay %.3f (window %u)  "
              "release epoch %u\n",
              opts.driftThreshold, opts.decay, opts.decayWindow,
              opts.releaseEpoch);
    os << "cache image: " << opts.cachePath << "\n";

    const std::vector<EpochStats> &hist = service.history();
    if (!hist.empty()) {
        const EpochStats &last = hist.back();
        os << "\n--- current mix (epoch " << last.epoch << ") ---\n";
        for (const auto &[v, machines] : last.machinesByVersion) {
            uint64_t samples = 0;
            auto it = last.samplesByVersion.find(v);
            if (it != last.samplesByVersion.end())
                samples = it->second;
            os << fmt("  v%u: %u machine(s), %" PRIu64
                      " sample(s) this epoch%s\n",
                      v, machines, samples,
                      v == service.targetVersion() ? "  [target]" : "");
        }
    }

    os << "\n--- drift history ---\n";
    os << "  epoch  shards  rejected  lag-peak   metric  relinked\n";
    for (const EpochStats &es : hist) {
        os << fmt("  %5u  %6u  %8u  %8u  %7.4f  %s\n", es.epoch,
                  es.shardsIngested, es.shardsRejected, es.shardLagPeak,
                  es.driftMetric, es.relinked ? "yes" : "no");
    }
    os << fmt("  threshold crossings: %u\n", service.driftCrossings());

    os << "\n--- relinks ---\n";
    const std::vector<RelinkRecord> &relinks = service.relinks();
    if (relinks.empty())
        os << "  (none yet)\n";
    for (const RelinkRecord &r : relinks) {
        os << fmt("  epoch %u  metric %.4f%s%s\n", r.epoch, r.metric,
                  r.forced ? "  [forced]" : "",
                  r.cacheLoaded ? "  [cache image loaded]" : "");
        os << fmt("    layout tier: %" PRIu64 " hit(s), %" PRIu64
                  " primed hit(s), %" PRIu64 " miss(es)"
                  "  (expected warm >= %" PRIu64 "+%" PRIu64 ")\n",
                  r.layoutHits, r.layoutPrimedHits, r.layoutMisses,
                  r.expectedHits, r.expectedPrimedHits);
        os << fmt("    object tier: %" PRIu64 " hit(s);  primed "
                  "functions: %" PRIu64 "\n",
                  r.objectHits, r.primedFunctions);
        if (r.schedule.tasksExecuted > 0)
            os << indent(sched::summarizeSchedule(r.schedule), "    ");
    }
    return os.str();
}

std::string
renderStatuszJson(const FleetService &service)
{
    const FleetOptions &opts = service.options();
    std::ostringstream os;

    os << "{\n";
    os << "  \"workload\": \"" << jsonEscape(opts.base.name) << "\",\n";
    os << fmt("  \"machines\": %u,\n", opts.machines);
    os << fmt("  \"versions\": %u,\n", opts.versions);
    os << fmt("  \"target_version\": %u,\n", service.targetVersion());
    os << fmt("  \"epochs_run\": %u,\n", service.epochsRun());
    os << fmt("  \"drift_threshold\": %.6f,\n", opts.driftThreshold);
    os << fmt("  \"drift_crossings\": %u,\n", service.driftCrossings());

    os << "  \"epochs\": [\n";
    const std::vector<EpochStats> &hist = service.history();
    for (size_t i = 0; i < hist.size(); ++i) {
        const EpochStats &es = hist[i];
        os << "    {";
        os << fmt("\"epoch\": %u, \"shards_ingested\": %u, "
                  "\"shards_rejected\": %u, \"shard_lag_peak\": %u, "
                  "\"drift_metric\": %.6f, \"relinked\": %s, ",
                  es.epoch, es.shardsIngested, es.shardsRejected,
                  es.shardLagPeak, es.driftMetric,
                  es.relinked ? "true" : "false");
        os << "\"samples_by_version\": {";
        bool first = true;
        for (const auto &[v, n] : es.samplesByVersion) {
            os << fmt("%s\"%u\": %" PRIu64, first ? "" : ", ", v, n);
            first = false;
        }
        os << "}, \"machines_by_version\": {";
        first = true;
        for (const auto &[v, n] : es.machinesByVersion) {
            os << fmt("%s\"%u\": %u", first ? "" : ", ", v, n);
            first = false;
        }
        os << "}}";
        os << (i + 1 < hist.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    os << "  \"relinks\": [\n";
    const std::vector<RelinkRecord> &relinks = service.relinks();
    for (size_t i = 0; i < relinks.size(); ++i) {
        const RelinkRecord &r = relinks[i];
        os << "    {";
        os << fmt("\"epoch\": %u, \"metric\": %.6f, \"forced\": %s, "
                  "\"cache_loaded\": %s, \"layout_hits\": %" PRIu64
                  ", \"layout_primed_hits\": %" PRIu64
                  ", \"layout_misses\": %" PRIu64
                  ", \"object_hits\": %" PRIu64
                  ", \"expected_hits\": %" PRIu64
                  ", \"expected_primed_hits\": %" PRIu64
                  ", \"primed_functions\": %" PRIu64
                  ", \"schedule_makespan_sec\": %.6f"
                  ", \"schedule_tasks\": %u}",
                  r.epoch, r.metric, r.forced ? "true" : "false",
                  r.cacheLoaded ? "true" : "false", r.layoutHits,
                  r.layoutPrimedHits, r.layoutMisses, r.objectHits,
                  r.expectedHits, r.expectedPrimedHits,
                  r.primedFunctions, r.schedule.makespanSec,
                  r.schedule.tasksExecuted);
        os << (i + 1 < relinks.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace propeller::fleet
