#include "service/fleet.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <string>

namespace propeller::fleet {

namespace {

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list args;
    va_start(args, format);
    vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** Indent every line of a multi-line block. */
std::string
indent(const std::string &block, const char *prefix)
{
    std::string out;
    size_t pos = 0;
    while (pos < block.size()) {
        size_t eol = block.find('\n', pos);
        if (eol == std::string::npos)
            eol = block.size();
        out += prefix;
        out.append(block, pos, eol - pos);
        out += '\n';
        pos = eol + 1;
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
renderStatuszText(const FleetService &service)
{
    const FleetOptions &opts = service.options();
    std::ostringstream os;

    os << "=== fleet statusz: " << opts.base.name << " ===\n";
    os << fmt("machines %u  versions %u  target v%u  epochs run %u\n",
              opts.machines, service.versionCount(),
              service.targetVersion(), service.epochsRun());
    os << fmt("drift threshold %.4f (%s)  decay %.3f (window %u)  "
              "release epoch %u\n",
              opts.driftThreshold,
              opts.weightedDrift ? "size-weighted" : "unweighted",
              opts.decay, opts.decayWindow, opts.releaseEpoch);
    os << "cache image: " << opts.cachePath << "\n";
    os << fmt("serving generation %" PRIu64 "%s\n", service.generation(),
              service.degraded() ? "  [DEGRADED: last-good artifact]"
                                 : "");

    const std::vector<EpochStats> &hist = service.history();
    if (!hist.empty()) {
        const EpochStats &last = hist.back();
        os << "\n--- current mix (epoch " << last.epoch << ") ---\n";
        for (const auto &[v, machines] : last.machinesByVersion) {
            uint64_t samples = 0;
            auto it = last.samplesByVersion.find(v);
            if (it != last.samplesByVersion.end())
                samples = it->second;
            os << fmt("  v%u: %u machine(s), %" PRIu64
                      " sample(s) this epoch%s%s\n",
                      v, machines, samples,
                      v == service.targetVersion() ? "  [target]" : "",
                      service.versionRetired(v) ? "  [retired]" : "");
        }
    }

    os << "\n--- drift history ---\n";
    os << "  epoch  shards  rejected  lag-peak   metric  relinked\n";
    for (const EpochStats &es : hist) {
        os << fmt("  %5u  %6u  %8u  %8u  %7.4f  %s%s\n", es.epoch,
                  es.shardsIngested, es.shardsRejected, es.shardLagPeak,
                  es.driftMetric, es.relinked ? "yes" : "no",
                  es.relinkRetried ? " (retry)" : "");
    }
    os << fmt("  threshold crossings: %u\n", service.driftCrossings());

    const FaultDetection &det = service.detection();
    os << "\n--- transport health ---\n";
    os << fmt("  detected: %" PRIu64 " corrupt, %" PRIu64
              " duplicate(s), %" PRIu64 " lost, %" PRIu64
              " late, %" PRIu64 " expired, %" PRIu64
              " inversion(s), %" PRIu64 " relink failure(s)\n",
              det.corrupt, det.duplicates, det.losses, det.late,
              det.expired, det.inversions, det.relinkFailures);
    for (const auto &[m, mh] : service.machineHealth()) {
        os << fmt("  machine %u: %" PRIu64 " ingested, %" PRIu64
                  " dup, %" PRIu64 " lost, %" PRIu64 " corrupt, %" PRIu64
                  " late, %" PRIu64 " expired, lag peak %u\n",
                  m, mh.shardsIngested, mh.duplicates, mh.losses,
                  mh.corrupt, mh.late, mh.expired, mh.lagPeakEpochs);
    }

    os << "\n--- relinks ---\n";
    const std::vector<RelinkRecord> &relinks = service.relinks();
    if (relinks.empty())
        os << "  (none yet)\n";
    for (const RelinkRecord &r : relinks) {
        os << fmt("  epoch %u  metric %.4f  gen %" PRIu64 "%s%s%s\n",
                  r.epoch, r.metric, r.generation,
                  r.forced ? "  [forced]" : "",
                  r.cacheLoaded ? "  [cache image loaded]" : "",
                  r.quarantined ? "  [QUARANTINED]" : "");
        if (r.attempts > 1 || r.failedAttempts > 0) {
            os << fmt("    attempts: %u (%u failed), backoff %.1f s\n",
                      r.attempts, r.failedAttempts, r.backoffSec);
        }
        if (r.quarantined)
            continue;
        os << fmt("    layout tier: %" PRIu64 " hit(s), %" PRIu64
                  " primed hit(s), %" PRIu64 " miss(es)"
                  "  (expected warm >= %" PRIu64 "+%" PRIu64 ")\n",
                  r.layoutHits, r.layoutPrimedHits, r.layoutMisses,
                  r.expectedHits, r.expectedPrimedHits);
        os << fmt("    object tier: %" PRIu64 " hit(s);  primed "
                  "functions: %" PRIu64 ";  verifier %s\n",
                  r.objectHits, r.primedFunctions,
                  r.verifierClean ? "clean" : "not run");
        if (r.schedule.tasksExecuted > 0)
            os << indent(sched::summarizeSchedule(r.schedule), "    ");
    }
    return os.str();
}

std::string
renderStatuszJson(const FleetService &service)
{
    const FleetOptions &opts = service.options();
    std::ostringstream os;

    os << "{\n";
    os << "  \"workload\": \"" << jsonEscape(opts.base.name) << "\",\n";
    os << fmt("  \"machines\": %u,\n", opts.machines);
    os << fmt("  \"versions\": %u,\n", service.versionCount());
    os << fmt("  \"target_version\": %u,\n", service.targetVersion());
    os << fmt("  \"epochs_run\": %u,\n", service.epochsRun());
    os << fmt("  \"drift_threshold\": %.6f,\n", opts.driftThreshold);
    os << fmt("  \"weighted_drift\": %s,\n",
              opts.weightedDrift ? "true" : "false");
    os << fmt("  \"drift_crossings\": %u,\n", service.driftCrossings());
    os << fmt("  \"generation\": %" PRIu64 ",\n", service.generation());
    os << fmt("  \"degraded\": %s,\n",
              service.degraded() ? "true" : "false");

    const FaultDetection &det = service.detection();
    os << fmt("  \"detection\": {\"corrupt\": %" PRIu64
              ", \"duplicates\": %" PRIu64 ", \"losses\": %" PRIu64
              ", \"late\": %" PRIu64 ", \"expired\": %" PRIu64
              ", \"inversions\": %" PRIu64
              ", \"relink_failures\": %" PRIu64 "},\n",
              det.corrupt, det.duplicates, det.losses, det.late,
              det.expired, det.inversions, det.relinkFailures);

    os << "  \"machine_health\": {";
    {
        bool first = true;
        for (const auto &[m, mh] : service.machineHealth()) {
            os << fmt("%s\"%u\": {\"ingested\": %" PRIu64
                      ", \"duplicates\": %" PRIu64 ", \"losses\": %" PRIu64
                      ", \"corrupt\": %" PRIu64 ", \"late\": %" PRIu64
                      ", \"expired\": %" PRIu64 ", \"lag_peak\": %u}",
                      first ? "" : ", ", m, mh.shardsIngested,
                      mh.duplicates, mh.losses, mh.corrupt, mh.late,
                      mh.expired, mh.lagPeakEpochs);
            first = false;
        }
    }
    os << "},\n";

    os << "  \"epochs\": [\n";
    const std::vector<EpochStats> &hist = service.history();
    for (size_t i = 0; i < hist.size(); ++i) {
        const EpochStats &es = hist[i];
        os << "    {";
        os << fmt("\"epoch\": %u, \"shards_ingested\": %u, "
                  "\"shards_rejected\": %u, \"shards_duplicated\": %u, "
                  "\"shards_late\": %u, \"shards_expired\": %u, "
                  "\"shards_lost\": %u, \"arrival_inversions\": %u, "
                  "\"shard_lag_peak\": %u, "
                  "\"drift_metric\": %.6f, "
                  "\"drift_metric_unweighted\": %.6f, "
                  "\"relinked\": %s, \"relink_retried\": %s, ",
                  es.epoch, es.shardsIngested, es.shardsRejected,
                  es.shardsDuplicated, es.shardsLate, es.shardsExpired,
                  es.shardsLost, es.arrivalInversions, es.shardLagPeak,
                  es.driftMetric, es.driftMetricUnweighted,
                  es.relinked ? "true" : "false",
                  es.relinkRetried ? "true" : "false");
        os << "\"samples_by_version\": {";
        bool first = true;
        for (const auto &[v, n] : es.samplesByVersion) {
            os << fmt("%s\"%u\": %" PRIu64, first ? "" : ", ", v, n);
            first = false;
        }
        os << "}, \"machines_by_version\": {";
        first = true;
        for (const auto &[v, n] : es.machinesByVersion) {
            os << fmt("%s\"%u\": %u", first ? "" : ", ", v, n);
            first = false;
        }
        os << "}}";
        os << (i + 1 < hist.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    os << "  \"relinks\": [\n";
    const std::vector<RelinkRecord> &relinks = service.relinks();
    for (size_t i = 0; i < relinks.size(); ++i) {
        const RelinkRecord &r = relinks[i];
        os << "    {";
        os << fmt("\"epoch\": %u, \"metric\": %.6f, \"forced\": %s, "
                  "\"cache_loaded\": %s, \"layout_hits\": %" PRIu64
                  ", \"layout_primed_hits\": %" PRIu64
                  ", \"layout_misses\": %" PRIu64
                  ", \"object_hits\": %" PRIu64
                  ", \"expected_hits\": %" PRIu64
                  ", \"expected_primed_hits\": %" PRIu64
                  ", \"primed_functions\": %" PRIu64
                  ", \"attempts\": %u, \"failed_attempts\": %u"
                  ", \"backoff_sec\": %.3f, \"quarantined\": %s"
                  ", \"verifier_clean\": %s, \"generation\": %" PRIu64
                  ", \"schedule_makespan_sec\": %.6f"
                  ", \"schedule_tasks\": %u}",
                  r.epoch, r.metric, r.forced ? "true" : "false",
                  r.cacheLoaded ? "true" : "false", r.layoutHits,
                  r.layoutPrimedHits, r.layoutMisses, r.objectHits,
                  r.expectedHits, r.expectedPrimedHits,
                  r.primedFunctions, r.attempts, r.failedAttempts,
                  r.backoffSec, r.quarantined ? "true" : "false",
                  r.verifierClean ? "true" : "false", r.generation,
                  r.schedule.makespanSec, r.schedule.tasksExecuted);
        os << (i + 1 < relinks.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

support::Status
writeStatuszFile(const FleetService &service, const std::string &path)
{
    if (path.empty()) {
        return support::makeError(support::ErrorCode::kMalformed,
                                  "statusz output path is empty");
    }
    FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return support::makeError(support::ErrorCode::kUnresolved,
                                  "cannot open statusz output path '" +
                                      path + "' for writing");
    }
    const std::string json = renderStatuszJson(service);
    const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (wrote != json.size() || !closed) {
        return support::makeError(support::ErrorCode::kTruncated,
                                  "short write to statusz output path '" +
                                      path + "'");
    }
    return support::okStatus();
}

} // namespace propeller::fleet
