#include "propeller/layout.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "propeller/hfsort.h"
#include "support/hash.h"
#include "support/thread_pool.h"

namespace propeller::core {

namespace {

/** Hot node indices of one function under the hotness threshold. */
std::vector<char>
hotMask(const FunctionDcfg &fn, const LayoutOptions &opts)
{
    uint64_t max_freq = 0;
    for (const auto &node : fn.nodes)
        max_freq = std::max(max_freq, node.freq);
    uint64_t threshold = static_cast<uint64_t>(
        opts.hotThresholdFraction * static_cast<double>(max_freq));
    std::vector<char> hot(fn.nodes.size(), 0);
    for (size_t i = 0; i < fn.nodes.size(); ++i)
        hot[i] = fn.nodes[i].freq > threshold ||
                 (fn.nodes[i].freq > 0 && threshold == 0);
    hot[fn.entryNode] = 1; // The entry block anchors the primary cluster.
    return hot;
}

void
accumulate(ExtTspStats &total, const ExtTspStats &one)
{
    total.merges += one.merges;
    total.candidateEvals += one.candidateEvals;
    total.retrievals += one.retrievals;
    total.heapPops += one.heapPops;
    total.staleSkips += one.staleSkips;
    total.finalScore += one.finalScore;
}

/** Shared context for both strategies. */
struct Ctx
{
    const WholeProgramDcfg &dcfg;
    const AddrMapIndex &index;
    const LayoutOptions &opts;
    std::unordered_map<std::string, uint32_t> funcIndexByName;

    explicit Ctx(const WholeProgramDcfg &d, const AddrMapIndex &i,
                 const LayoutOptions &o)
        : dcfg(d), index(i), opts(o)
    {
        for (size_t f = 0; f < i.functionNames().size(); ++f)
            funcIndexByName.emplace(i.functionNames()[f],
                                    static_cast<uint32_t>(f));
    }

    /** Cold block ids of @p fn, in original (address) order. */
    std::vector<uint32_t>
    coldBlocks(const FunctionDcfg &fn, const std::vector<char> &hot) const
    {
        std::unordered_set<uint32_t> hot_ids;
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            if (hot[i])
                hot_ids.insert(fn.nodes[i].bbId);
        }
        std::vector<uint32_t> cold;
        uint32_t func_index = funcIndexByName.at(fn.function);
        for (const auto &ref : index.blocksOf(func_index)) {
            if (!hot_ids.count(ref.bbId))
                cold.push_back(ref.bbId);
        }
        return cold;
    }
};

/** Lay out one function's hot subgraph (intra-procedural strategy). */
FunctionLayout
layoutOneFunction(const Ctx &ctx, size_t f)
{
    const FunctionDcfg &fn = ctx.dcfg.functions[f];
    FunctionLayout out;
    {
        std::vector<char> hot = hotMask(fn, ctx.opts);

        // Build the hot-subgraph layout problem.
        std::vector<LayoutNode> nodes;
        std::vector<uint32_t> node_bb;
        std::vector<int> hot_index(fn.nodes.size(), -1);
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            if (!hot[i])
                continue;
            hot_index[i] = static_cast<int>(nodes.size());
            nodes.push_back({std::max<uint64_t>(fn.nodes[i].size, 1),
                             fn.nodes[i].freq});
            node_bb.push_back(fn.nodes[i].bbId);
        }
        std::vector<LayoutEdge> edges;
        for (const auto &edge : fn.edges) {
            int a = hot_index[edge.fromNode];
            int b = hot_index[edge.toNode];
            if (a >= 0 && b >= 0) {
                edges.push_back({static_cast<uint32_t>(a),
                                 static_cast<uint32_t>(b), edge.weight});
            }
        }

        std::vector<uint32_t> hot_order_idx;
        if (ctx.opts.reorderBlocks) {
            hot_order_idx = extTspOrder(
                nodes, edges,
                static_cast<uint32_t>(hot_index[fn.entryNode]),
                ctx.opts.extTsp, &out.stats);
        } else {
            // Keep original (address) order of the hot blocks.
            uint32_t func_index = ctx.funcIndexByName.at(fn.function);
            std::unordered_map<uint32_t, uint32_t> idx_of_bb;
            for (size_t i = 0; i < node_bb.size(); ++i)
                idx_of_bb.emplace(node_bb[i], static_cast<uint32_t>(i));
            // Entry first, then address order.
            hot_order_idx.push_back(hot_index[fn.entryNode]);
            for (const auto &ref : ctx.index.blocksOf(func_index)) {
                auto it = idx_of_bb.find(ref.bbId);
                if (it == idx_of_bb.end())
                    continue;
                if (it->second ==
                    static_cast<uint32_t>(hot_index[fn.entryNode]))
                    continue;
                hot_order_idx.push_back(it->second);
            }
        }

        std::vector<uint32_t> hot_order;
        hot_order.reserve(hot_order_idx.size());
        for (uint32_t i : hot_order_idx)
            hot_order.push_back(node_bb[i]);
        assert(!hot_order.empty() &&
               hot_order.front() == fn.nodes[fn.entryNode].bbId);

        std::vector<uint32_t> cold = ctx.coldBlocks(fn, hot);

        if (!cold.empty() && ctx.opts.splitFunctions) {
            out.spec.clusters.push_back(std::move(hot_order));
            out.spec.coldIndex = 1;
            out.spec.clusters.push_back(std::move(cold));
        } else {
            hot_order.insert(hot_order.end(), cold.begin(), cold.end());
            out.spec.clusters.push_back(std::move(hot_order));
        }
    }
    return out;
}

/** Global order: C3 over the hot function call graph. */
LdProfile
globalHfsortOrder(const Ctx &ctx)
{
    LdProfile ldProf;
    std::vector<HfsortNode> fnodes(ctx.dcfg.functions.size());
    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        const FunctionDcfg &fn = ctx.dcfg.functions[f];
        uint64_t hot_size = 0;
        uint64_t samples = 0;
        for (const auto &node : fn.nodes) {
            if (node.freq > 0) {
                hot_size += node.size;
                samples += node.freq;
            }
        }
        fnodes[f].size = std::max<uint64_t>(hot_size, 1);
        fnodes[f].samples = samples;
    }
    std::vector<HfsortArc> arcs;
    for (const auto &call : ctx.dcfg.callEdges)
        arcs.push_back({call.callerDcfg, call.calleeDcfg, call.weight});

    for (uint32_t f : hfsortOrder(fnodes, arcs)) {
        ldProf.symbolOrder.push_back(ctx.dcfg.functions[f].function);
    }
    // Cold clusters stay unlisted: the linker leaves them in input order,
    // far from the hot text placed first.
    return ldProf;
}

/** Merge per-function slots + order, in function order (deterministic). */
void
mergeIntraLayout(const Ctx &ctx, std::vector<FunctionLayout> slots,
                 LdProfile order, LayoutResult &result)
{
    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        const FunctionDcfg &fn = ctx.dcfg.functions[f];
        accumulate(result.extTspStats, slots[f].stats);
        result.ccProf.clusters.emplace(fn.function,
                                       std::move(slots[f].spec));
        result.hotFunctions.push_back(fn.function);
    }
    result.ldProf = std::move(order);
}

void
intraProceduralLayout(const Ctx &ctx, unsigned jobs, LayoutResult &result)
{
    // Each function's layout problem is independent (this is the paper's
    // memory/parallelism argument for WPA vs BOLT), so the loop fans out
    // over the thread pool.  Results land in per-function slots and merge
    // in function order, keeping cc_prof/ld_prof — including the
    // floating-point Ext-TSP score sum — byte-identical at any thread
    // count.
    std::vector<FunctionLayout> slots(ctx.dcfg.functions.size());
    parallelFor(jobs, ctx.dcfg.functions.size(),
                [&](size_t f) { slots[f] = layoutOneFunction(ctx, f); });
    mergeIntraLayout(ctx, std::move(slots), globalHfsortOrder(ctx),
                     result);
}

void
interProceduralLayout(const Ctx &ctx, LayoutResult &result)
{
    // ---- Build the whole-program layout problem -------------------------
    struct GlobalNode
    {
        uint32_t dcfgIdx;
        uint32_t nodeIdx;
    };
    std::vector<LayoutNode> nodes;
    std::vector<GlobalNode> origin;
    std::vector<std::vector<int>> global_index(ctx.dcfg.functions.size());
    std::vector<std::vector<char>> hot_masks(ctx.dcfg.functions.size());

    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        const FunctionDcfg &fn = ctx.dcfg.functions[f];
        hot_masks[f] = hotMask(fn, ctx.opts);
        global_index[f].assign(fn.nodes.size(), -1);
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            if (!hot_masks[f][i])
                continue;
            global_index[f][i] = static_cast<int>(nodes.size());
            nodes.push_back({std::max<uint64_t>(fn.nodes[i].size, 1),
                             fn.nodes[i].freq});
            origin.push_back({static_cast<uint32_t>(f),
                              static_cast<uint32_t>(i)});
        }
    }

    std::vector<LayoutEdge> edges;
    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        for (const auto &edge : ctx.dcfg.functions[f].edges) {
            int a = global_index[f][edge.fromNode];
            int b = global_index[f][edge.toNode];
            if (a >= 0 && b >= 0) {
                edges.push_back({static_cast<uint32_t>(a),
                                 static_cast<uint32_t>(b), edge.weight});
            }
        }
    }
    for (const auto &call : ctx.dcfg.callEdges) {
        int a = global_index[call.callerDcfg][call.callerNode];
        int b = global_index[call.calleeDcfg]
                            [ctx.dcfg.functions[call.calleeDcfg].entryNode];
        if (a >= 0 && b >= 0) {
            // Call edges are damped: a call's locality benefit is weaker
            // than a fall-through's (the return path goes the other way),
            // and undamped call weights over-fragment functions.
            edges.push_back({static_cast<uint32_t>(a),
                             static_cast<uint32_t>(b),
                             std::max<uint64_t>(call.weight / 2, 1)});
        }
    }

    // Pin the program entry ("main" when sampled, else hottest function).
    int entry_global = -1;
    int main_dcfg = ctx.dcfg.findFunction("main");
    if (main_dcfg >= 0) {
        entry_global =
            global_index[main_dcfg]
                        [ctx.dcfg.functions[main_dcfg].entryNode];
    }
    if (entry_global < 0) {
        uint64_t best = 0;
        for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
            const FunctionDcfg &fn = ctx.dcfg.functions[f];
            uint64_t w = fn.totalWeight();
            int g = global_index[f][fn.entryNode];
            if (g >= 0 && (entry_global < 0 || w > best)) {
                best = w;
                entry_global = g;
            }
        }
    }
    assert(entry_global >= 0 && "no hot entry block in the whole program");

    ExtTspStats stats;
    std::vector<uint32_t> order =
        extTspOrder(nodes, edges, static_cast<uint32_t>(entry_global),
                    ctx.opts.extTsp, &stats);
    accumulate(result.extTspStats, stats);

    // ---- Cut the global chain into per-function runs --------------------
    struct Run
    {
        uint32_t dcfgIdx;
        std::vector<uint32_t> bbIds;
        bool dead = false;
    };
    std::vector<Run> runs;
    for (uint32_t g : order) {
        const GlobalNode &gn = origin[g];
        uint32_t bb = ctx.dcfg.functions[gn.dcfgIdx].nodes[gn.nodeIdx].bbId;
        if (runs.empty() || runs.back().dcfgIdx != gn.dcfgIdx)
            runs.push_back({gn.dcfgIdx, {}, false});
        runs.back().bbIds.push_back(bb);
    }

    // Per function: locate the primary run (contains the entry block) and
    // list the other runs in global order.
    std::vector<int> primary_run(ctx.dcfg.functions.size(), -1);
    for (size_t r = 0; r < runs.size(); ++r) {
        const FunctionDcfg &fn = ctx.dcfg.functions[runs[r].dcfgIdx];
        uint32_t entry_bb = fn.nodes[fn.entryNode].bbId;
        for (uint32_t bb : runs[r].bbIds) {
            if (bb == entry_bb) {
                primary_run[runs[r].dcfgIdx] = static_cast<int>(r);
                break;
            }
        }
    }

    // Splitting a function is only worth a section when the fragment has
    // substance (paper 3.4: extra clusters are created "when profitable"):
    // fold singleton runs back into their function's primary run.
    for (size_t r = 0; r < runs.size(); ++r) {
        Run &run = runs[r];
        if (static_cast<int>(r) == primary_run[run.dcfgIdx] ||
            run.bbIds.size() >= ctx.opts.interProcMinRunBlocks) {
            continue;
        }
        Run &primary = runs[primary_run[run.dcfgIdx]];
        primary.bbIds.insert(primary.bbIds.end(), run.bbIds.begin(),
                             run.bbIds.end());
        run.dead = true;
    }

    // Build cluster specs; non-primary runs are numbered in global order,
    // matching codegen's cluster symbol naming.
    std::vector<std::string> run_symbol(runs.size());
    std::vector<size_t> numeric_counter(ctx.dcfg.functions.size(), 0);
    std::vector<codegen::ClusterSpec> specs(ctx.dcfg.functions.size());

    // First pass: primaries (entry moved to the front of its run).
    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        const FunctionDcfg &fn = ctx.dcfg.functions[f];
        uint32_t entry_bb = fn.nodes[fn.entryNode].bbId;
        assert(primary_run[f] >= 0 && "hot function lost its entry run");
        Run &run = runs[primary_run[f]];
        auto it = std::find(run.bbIds.begin(), run.bbIds.end(), entry_bb);
        std::rotate(run.bbIds.begin(), it, it + 1);
        specs[f].clusters.push_back(run.bbIds);
        run_symbol[primary_run[f]] = fn.function;
    }
    // Second pass: secondary runs in global order.
    for (size_t r = 0; r < runs.size(); ++r) {
        uint32_t f = runs[r].dcfgIdx;
        if (runs[r].dead || static_cast<int>(r) == primary_run[f])
            continue;
        specs[f].clusters.push_back(runs[r].bbIds);
        run_symbol[r] = ctx.dcfg.functions[f].function + "." +
                        std::to_string(++numeric_counter[f]);
    }
    // Cold clusters last.
    for (size_t f = 0; f < ctx.dcfg.functions.size(); ++f) {
        const FunctionDcfg &fn = ctx.dcfg.functions[f];
        std::vector<uint32_t> cold = ctx.coldBlocks(fn, hot_masks[f]);
        if (!cold.empty() && ctx.opts.splitFunctions) {
            specs[f].coldIndex = static_cast<int>(specs[f].clusters.size());
            specs[f].clusters.push_back(std::move(cold));
        } else if (!cold.empty()) {
            auto &primary = specs[f].clusters.front();
            primary.insert(primary.end(), cold.begin(), cold.end());
        }
        result.ccProf.clusters.emplace(fn.function, std::move(specs[f]));
        result.hotFunctions.push_back(fn.function);
    }

    // Global symbol order: every surviving run in chain order.
    for (size_t r = 0; r < runs.size(); ++r) {
        if (!runs[r].dead)
            result.ldProf.symbolOrder.push_back(run_symbol[r]);
    }
}

} // namespace

struct LayoutContext::Impl
{
    LayoutOptions effective;
    Ctx ctx;

    static LayoutOptions
    fold(LayoutOptions opts)
    {
        opts.extTsp.referenceSolver |= opts.referenceSolver;
        return opts;
    }

    Impl(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
         const LayoutOptions &opts)
        : effective(fold(opts)), ctx(dcfg, index, effective)
    {
    }
};

LayoutContext::LayoutContext(const WholeProgramDcfg &dcfg,
                             const AddrMapIndex &index,
                             const LayoutOptions &opts)
    : impl_(std::make_unique<Impl>(dcfg, index, opts))
{
    assert(!opts.interProcedural &&
           "LayoutContext decomposes the intra-procedural strategy only");
}

LayoutContext::~LayoutContext() = default;

size_t
LayoutContext::functionCount() const
{
    return impl_->ctx.dcfg.functions.size();
}

FunctionLayout
LayoutContext::layoutFunction(size_t f) const
{
    return layoutOneFunction(impl_->ctx, f);
}

LdProfile
LayoutContext::globalOrder() const
{
    return globalHfsortOrder(impl_->ctx);
}

LayoutResult
LayoutContext::merge(std::vector<FunctionLayout> slots,
                     LdProfile order) const
{
    LayoutResult result;
    mergeIntraLayout(impl_->ctx, std::move(slots), std::move(order),
                     result);
    return result;
}

LayoutResult
computeLayout(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
              const LayoutOptions &opts, unsigned jobs)
{
    LayoutResult result;
    LayoutOptions effective = opts;
    effective.extTsp.referenceSolver |= opts.referenceSolver;
    Ctx ctx(dcfg, index, effective);
    if (opts.interProcedural) {
        interProceduralLayout(ctx, result);
    } else {
        intraProceduralLayout(ctx, jobs, result);
    }
    return result;
}

namespace {

uint64_t
doubleBits(double d)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

bool
getU64(const std::vector<uint8_t> &in, size_t &pos, uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
    pos += 8;
    return true;
}

} // namespace

uint64_t
layoutOptionsFingerprint(const LayoutOptions &opts)
{
    uint64_t h = kFnvOffset;
    h = hashCombine(h, opts.splitFunctions ? 1 : 0);
    h = hashCombine(h, doubleBits(opts.hotThresholdFraction));
    h = hashCombine(h, opts.interProcedural ? 1 : 0);
    h = hashCombine(h, opts.interProcMinRunBlocks);
    h = hashCombine(h, opts.reorderBlocks ? 1 : 0);
    // The solver knobs change the search, and therefore the stats a
    // memoized layout must reproduce, even where the final order ties.
    h = hashCombine(h, opts.referenceSolver ? 1 : 0);
    h = hashCombine(h, opts.extTsp.referenceSolver ? 1 : 0);
    h = hashCombine(h, opts.extTsp.legacyRescore ? 1 : 0);
    h = hashCombine(h, opts.extTsp.maxSplitChainLen);
    h = hashCombine(h, doubleBits(opts.extTsp.fallthroughWeight));
    h = hashCombine(h, doubleBits(opts.extTsp.forwardWeight));
    h = hashCombine(h, doubleBits(opts.extTsp.backwardWeight));
    h = hashCombine(h, opts.extTsp.forwardDistance);
    h = hashCombine(h, opts.extTsp.backwardDistance);
    return h;
}

uint64_t
layoutMemoFingerprint(const FunctionDcfg &fn, const AddrMapIndex &index,
                      int funcIndex)
{
    // The name keeps keys distinct across structurally identical
    // functions, so cold-run miss accounting is schedule-independent
    // (a shared key would hit or miss depending on which function's
    // layout landed in the cache first).
    uint64_t h = fnv1a(fn.function);
    if (funcIndex >= 0) {
        auto fi = static_cast<uint32_t>(funcIndex);
        // The v2 whole-function CFG hash (0 for v1 metadata) plus the
        // block list the cluster sanitizer checks against.
        h = hashCombine(h, index.functionHash(fi));
        h = hashCombine(h, index.entryBlock(fi));
        for (const BlockRef &b : index.blocksOf(fi)) {
            h = hashCombine(h, b.bbId);
            h = hashCombine(h, b.blockEnd - b.blockStart);
            h = hashCombine(h, b.flags);
        }
    }
    // The function's DCFG: shape plus the profile counts (the
    // "profile-count digest" leg of the memo key).
    h = hashCombine(h, fn.entryNode);
    h = hashCombine(h, fn.nodes.size());
    for (const DcfgNode &n : fn.nodes) {
        h = hashCombine(h, n.bbId);
        h = hashCombine(h, n.size);
        h = hashCombine(h, n.freq);
        h = hashCombine(h, n.flags);
    }
    h = hashCombine(h, fn.edges.size());
    for (const DcfgEdge &e : fn.edges) {
        h = hashCombine(h, e.fromNode);
        h = hashCombine(h, e.toNode);
        h = hashCombine(h, e.weight);
        h = hashCombine(h, static_cast<uint64_t>(e.kind));
    }
    return h;
}

uint64_t
layoutInputDigest(const FunctionDcfg &fn, const AddrMapIndex &index,
                  int funcIndex)
{
    // Only what layoutOneFunction() actually consumes: hotMask reads
    // node frequencies, the solver reads node sizes and edge weights,
    // and the cold/no-reorder paths read the address map's block-id
    // sequence.  Whole-function hashes, block byte sizes and flags are
    // layout-invariant, so they stay out — that is what lets a digest
    // survive a code edit confined to blocks layout never looks at.
    uint64_t h = fnv1a(fn.function);
    h = hashCombine(h, fn.entryNode);
    h = hashCombine(h, fn.nodes.size());
    for (const DcfgNode &n : fn.nodes) {
        h = hashCombine(h, n.bbId);
        h = hashCombine(h, n.size);
        h = hashCombine(h, n.freq);
    }
    h = hashCombine(h, fn.edges.size());
    for (const DcfgEdge &e : fn.edges) {
        h = hashCombine(h, e.fromNode);
        h = hashCombine(h, e.toNode);
        h = hashCombine(h, e.weight);
    }
    if (funcIndex >= 0) {
        auto fi = static_cast<uint32_t>(funcIndex);
        std::vector<BlockRef> blocks = index.blocksOf(fi);
        h = hashCombine(h, blocks.size());
        for (const BlockRef &b : blocks)
            h = hashCombine(h, b.bbId);
    }
    return h;
}

std::vector<uint8_t>
encodeFunctionLayout(const FunctionLayout &layout)
{
    std::vector<uint8_t> out;
    putU64(out, layout.spec.clusters.size());
    for (const auto &cluster : layout.spec.clusters) {
        putU64(out, cluster.size());
        for (uint32_t bb : cluster)
            putU64(out, bb);
    }
    putU64(out, static_cast<uint64_t>(
                    static_cast<int64_t>(layout.spec.coldIndex)));
    putU64(out, layout.stats.merges);
    putU64(out, layout.stats.candidateEvals);
    putU64(out, layout.stats.retrievals);
    putU64(out, layout.stats.heapPops);
    putU64(out, layout.stats.staleSkips);
    putU64(out, doubleBits(layout.stats.finalScore));
    return out;
}

bool
decodeFunctionLayout(const std::vector<uint8_t> &bytes,
                     FunctionLayout &out)
{
    FunctionLayout decoded;
    size_t pos = 0;
    uint64_t nclusters = 0;
    if (!getU64(bytes, pos, nclusters) ||
        nclusters > bytes.size() / 8)
        return false;
    decoded.spec.clusters.resize(nclusters);
    for (auto &cluster : decoded.spec.clusters) {
        uint64_t n = 0;
        if (!getU64(bytes, pos, n) || n > bytes.size() / 8)
            return false;
        cluster.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t bb = 0;
            if (!getU64(bytes, pos, bb) ||
                bb > std::numeric_limits<uint32_t>::max())
                return false;
            cluster.push_back(static_cast<uint32_t>(bb));
        }
    }
    uint64_t cold = 0;
    if (!getU64(bytes, pos, cold))
        return false;
    decoded.spec.coldIndex =
        static_cast<int>(static_cast<int64_t>(cold));
    uint64_t score_bits = 0;
    if (!getU64(bytes, pos, decoded.stats.merges) ||
        !getU64(bytes, pos, decoded.stats.candidateEvals) ||
        !getU64(bytes, pos, decoded.stats.retrievals) ||
        !getU64(bytes, pos, decoded.stats.heapPops) ||
        !getU64(bytes, pos, decoded.stats.staleSkips) ||
        !getU64(bytes, pos, score_bits))
        return false;
    std::memcpy(&decoded.stats.finalScore, &score_bits,
                sizeof(score_bits));
    if (pos != bytes.size())
        return false;
    out = std::move(decoded);
    return true;
}

} // namespace propeller::core
