#ifndef PROPELLER_PROPELLER_PROPELLER_H
#define PROPELLER_PROPELLER_PROPELLER_H

/**
 * @file
 * Phase 3: profile conversion and whole-program analysis (paper 3.3).
 *
 * This is the standalone tool of Table 1 ("create_llvm_prof" in the real
 * system): it consumes the metadata binary's BB address map and the raw
 * LBR profile, builds the whole-program dynamic CFG, computes code layout
 * and emits cc_prof / ld_prof plus the list of hot functions whose objects
 * Phase 4 must regenerate.  Peak memory is the quantity Figure 4 compares
 * against BOLT's perf2bolt.
 */

#include "linker/executable.h"
#include "profile/profile.h"
#include "propeller/layout.h"
#include "propeller/profile_mapper.h"
#include "support/memory_meter.h"

namespace propeller::core {

/** Whole-program-analysis statistics (Figure 4 inputs). */
struct WpaStats
{
    uint64_t peakMemory = 0;      ///< Modelled peak bytes of Phase 3.
    uint64_t profileBytes = 0;    ///< Raw profile size read.
    uint64_t dcfgFootprint = 0;   ///< In-memory DCFG bytes.
    uint64_t indexFootprint = 0;  ///< Address map index bytes.
    uint32_t hotFunctions = 0;
    MapperStats mapper;
    ExtTspStats extTsp;

    /**
     * Functions whose address-map metadata failed sanitation and were
     * dropped from the index: their samples go unmapped and they keep
     * their baseline layout ("degrade, don't die" — ISSUE 4).
     */
    uint32_t quarantined = 0;
    std::vector<std::string> quarantinedFunctions; ///< Their names, sorted.

    /**
     * The profile's binary identity does not match the binary being
     * analyzed: the samples were collected on a *different* build, and the
     * address-based mapping this pass performed is unsound.  Callers must
     * reject the result or re-run through the stale matcher (src/stale).
     */
    bool profileMismatch = false;
};

/** Phase 3 outputs. */
struct WpaResult
{
    CcProfile ccProf;
    LdProfile ldProf;
    std::vector<std::string> hotFunctions;
    WpaStats stats;
};

/**
 * Phase 3 decomposed into schedulable stages, shared by the barrier
 * entry point below and the task-graph relink engine so both produce
 * byte-identical artifacts and identical stats by construction:
 *
 *   build()                  — aggregate profile, index, DCFG (serial);
 *   layoutFunction(f)        — per-function Ext-TSP, any thread/order;
 *   globalOrder()            — hfsort, concurrent with the fan-out;
 *   finish(slots, order)     — ordered merge + memory accounting.
 *
 * build() itself decomposes further for the task graph — profile
 * ingestion as dependency-ordered stages instead of one serial prelude:
 *
 *   prepare()                — identity check, shard plan;
 *   aggregateShard(s)        — per-shard counters, any thread/order;
 *   mergeAggregation()       — serial shard-order fold;
 *   buildIndex()             — BB address map index (independent of the
 *                              aggregation shards);
 *   beginMapping()           — snapshot records into mapper slots;
 *   resolveShard(k, n)       — read-only record resolution slices;
 *   applyDcfg()              — serial application, entry nodes, freqs.
 *
 * The MemoryMeter charge sequence matches the monolithic path exactly
 * (charges are monotonic within a phase, so the peak is order
 * independent), and every parallel stage writes disjoint slots, so
 * peakMemory and the DCFG are identical however the stages are
 * scheduled.
 */
class WpaPipeline
{
  public:
    WpaPipeline(const linker::Executable &metadata_exe,
                const profile::Profile &prof, const LayoutOptions &opts,
                unsigned jobs);
    ~WpaPipeline();
    WpaPipeline(const WpaPipeline &) = delete;
    WpaPipeline &operator=(const WpaPipeline &) = delete;

    /** Aggregate + index + DCFG. Must run before any other stage. */
    void build();

    /** Shard plan for the staged ingestion path. */
    struct IngestPlan
    {
        /** Number of independent aggregation shard stages. */
        size_t aggregationShards = 0;
    };

    /** Staged ingestion, stage 1: identity check + shard plan. */
    IngestPlan prepare();
    /** Aggregate one shard; thread-safe across distinct shards. */
    void aggregateShard(size_t shard);
    /** Serial shard-order fold of the aggregation slots. */
    void mergeAggregation();
    /** Build the BB address map index (independent of aggregation). */
    void buildIndex();
    /** Snapshot aggregated records into resolution slots; needs
     *  mergeAggregation() and buildIndex(). */
    void beginMapping();
    /** Resolve record slice @p shard of @p shardCount; thread-safe
     *  across distinct shards. */
    void resolveShard(size_t shard, size_t shardCount);
    /** Serial DCFG application; after this the pipeline is in the same
     *  state build() leaves it. */
    void applyDcfg();

    /**
     * Replace the mapper-built DCFG: the next applyDcfg() installs
     * @p dcfg instead of resolving the profile's records (the fleet
     * service's injection seam — its rolling multi-version aggregate is
     * already a DCFG in the target's block-id space, so re-deriving it
     * from synthetic samples would be lossy).  Ingestion still runs and
     * the profile's identity is still checked; only the mapper's output
     * is substituted.  Must be called before applyDcfg().
     */
    void overrideDcfg(WholeProgramDcfg dcfg);

    /**
     * layoutInputDigest() for function @p f (DCFG index) against this
     * pipeline's address-map index — the alias key for primed
     * layout-cache lookups (see layout.h).
     */
    uint64_t layoutInputDigest(size_t f) const;

    /**
     * Layout memoization key material for function @p f (DCFG index):
     * folds the function's .bb_addr_map v2 CFG hash, its DCFG shape
     * and profile counts, and the block list the cluster sanitizer
     * sees.  Combined with layoutOptionsFingerprint this keys a cached
     * FunctionLayout: equal fingerprints reproduce layoutFunction(f)
     * exactly.
     */
    uint64_t layoutFingerprint(size_t f) const;

    const WholeProgramDcfg &dcfg() const;
    size_t functionCount() const;

    /** Lay out one function. Thread-safe across distinct @p f. */
    FunctionLayout layoutFunction(size_t f) const;

    /** Global symbol order; independent of per-function layouts. */
    LdProfile globalOrder() const;

    /** Merge + stats; consumes the pipeline. */
    WpaResult finish(std::vector<FunctionLayout> slots, LdProfile order,
                     MemoryMeter *meter = nullptr);

    /**
     * Inter-procedural fallback: run the monolithic layout instead of
     * the per-function stages (the global chain cannot be decomposed).
     */
    WpaResult finishMonolithic(MemoryMeter *meter = nullptr);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Run profile conversion + whole-program analysis.
 *
 * @param metadata_exe the Phase 2 binary with BB address map metadata.
 * @param prof         LBR samples collected while running it.
 * @param opts         layout strategy.
 * @param jobs         worker threads for parallel stages (0 = hardware).
 * @param meter        optional external phase meter (pulsed with the peak).
 */
WpaResult runWholeProgramAnalysis(const linker::Executable &metadata_exe,
                                  const profile::Profile &prof,
                                  const LayoutOptions &opts = {},
                                  unsigned jobs = 0,
                                  MemoryMeter *meter = nullptr);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_PROPELLER_H
