#include "propeller/profile_mapper.h"

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/thread_pool.h"

namespace propeller::core {

namespace {

/** Incremental DCFG builder keyed by (function, block id). */
class DcfgBuilder
{
  public:
    explicit DcfgBuilder(const AddrMapIndex &index) : index_(index) {}

    uint32_t
    dcfgOf(uint32_t func_index)
    {
        auto [it, inserted] =
            dcfgIndex_.emplace(func_index, graph_.functions.size());
        if (inserted) {
            FunctionDcfg dcfg;
            dcfg.function = index_.functionNames()[func_index];
            graph_.functions.push_back(std::move(dcfg));
        }
        return static_cast<uint32_t>(it->second);
    }

    uint32_t
    nodeOf(uint32_t dcfg_index, const BlockRef &ref)
    {
        uint64_t key = (static_cast<uint64_t>(dcfg_index) << 32) | ref.bbId;
        auto [it, inserted] =
            nodeIndex_.emplace(key, graph_.functions[dcfg_index].nodes.size());
        if (inserted) {
            DcfgNode node;
            node.bbId = ref.bbId;
            node.size = static_cast<uint32_t>(ref.blockEnd - ref.blockStart);
            node.flags = ref.flags;
            graph_.functions[dcfg_index].nodes.push_back(node);
        }
        return static_cast<uint32_t>(it->second);
    }

    void
    addEdge(uint32_t dcfg_index, uint32_t from, uint32_t to, uint64_t w,
            EdgeKind kind)
    {
        uint64_t key = (static_cast<uint64_t>(dcfg_index) << 40) |
                       (static_cast<uint64_t>(from) << 20) | to;
        auto [it, inserted] =
            edgeIndex_.emplace(key, graph_.functions[dcfg_index].edges.size());
        if (inserted) {
            graph_.functions[dcfg_index].edges.push_back(
                DcfgEdge{from, to, w, kind});
        } else {
            graph_.functions[dcfg_index].edges[it->second].weight += w;
        }
    }

    /**
     * Extra node flow from call/return records.  Blocks whose only
     * taken-branch activity is calls (e.g. straight-line dispatchers)
     * would otherwise have no intra-function edges and be misclassified
     * as cold.
     */
    void
    addExtraFlow(uint32_t dcfg_index, uint32_t node, uint64_t w,
                 bool incoming)
    {
        uint64_t key = (static_cast<uint64_t>(dcfg_index) << 32) | node;
        (incoming ? extraIn_ : extraOut_)[key] += w;
    }

    uint64_t
    extraFlow(uint32_t dcfg_index, uint32_t node, bool incoming) const
    {
        uint64_t key = (static_cast<uint64_t>(dcfg_index) << 32) | node;
        const auto &map = incoming ? extraIn_ : extraOut_;
        auto it = map.find(key);
        return it == map.end() ? 0 : it->second;
    }

    void
    addCallEdge(uint32_t caller_dcfg, uint32_t caller_node,
                uint32_t callee_dcfg, uint64_t w)
    {
        uint64_t key = (static_cast<uint64_t>(caller_dcfg) << 40) |
                       (static_cast<uint64_t>(caller_node) << 20) |
                       callee_dcfg;
        auto [it, inserted] =
            callIndex_.emplace(key, graph_.callEdges.size());
        if (inserted) {
            graph_.callEdges.push_back(
                CallEdge{caller_dcfg, caller_node, callee_dcfg, w});
        } else {
            graph_.callEdges[it->second].weight += w;
        }
    }

    WholeProgramDcfg take() { return std::move(graph_); }

  private:
    const AddrMapIndex &index_;
    WholeProgramDcfg graph_;
    std::unordered_map<uint32_t, size_t> dcfgIndex_;
    std::unordered_map<uint64_t, size_t> nodeIndex_;
    std::unordered_map<uint64_t, size_t> edgeIndex_;
    std::unordered_map<uint64_t, size_t> callIndex_;
    std::unordered_map<uint64_t, uint64_t> extraIn_;
    std::unordered_map<uint64_t, uint64_t> extraOut_;
};

} // namespace

struct DcfgMapper::Impl
{
    const AddrMapIndex &index;

    struct BranchSlot
    {
        uint64_t key = 0;
        uint64_t weight = 0;
        uint64_t to = 0;
        std::optional<BlockRef> rf;
        std::optional<BlockRef> rt;
    };
    std::vector<BranchSlot> branches;

    struct RangeSlot
    {
        uint64_t key = 0;
        uint64_t weight = 0;
        bool unmapped = false;
        bool truncated = false;
        std::vector<std::pair<BlockRef, BlockRef>> hops;
    };
    std::vector<RangeSlot> ranges;

    explicit Impl(const AddrMapIndex &idx) : index(idx) {}
};

DcfgMapper::DcfgMapper(const profile::AggregatedProfile &agg,
                       const AddrMapIndex &index)
    : impl_(std::make_unique<Impl>(index))
{
    // Snapshot the maps' iteration order: the serial application phase
    // replays the slots in exactly this sequence, which is what makes
    // first-touch node numbering independent of resolution scheduling.
    impl_->branches.reserve(agg.branches.size());
    for (const auto &[key, weight] : agg.branches) {
        Impl::BranchSlot slot;
        slot.key = key;
        slot.weight = weight;
        impl_->branches.push_back(std::move(slot));
    }
    impl_->ranges.reserve(agg.ranges.size());
    for (const auto &[key, weight] : agg.ranges) {
        Impl::RangeSlot slot;
        slot.key = key;
        slot.weight = weight;
        impl_->ranges.push_back(std::move(slot));
    }
}

DcfgMapper::~DcfgMapper() = default;

size_t
DcfgMapper::branchCount() const
{
    return impl_->branches.size();
}

size_t
DcfgMapper::rangeCount() const
{
    return impl_->ranges.size();
}

void
DcfgMapper::resolveBranches(size_t begin, size_t end)
{
    for (size_t i = begin; i < end && i < impl_->branches.size(); ++i) {
        Impl::BranchSlot &slot = impl_->branches[i];
        uint64_t from = profile::AggregatedProfile::keyFrom(slot.key);
        slot.to = profile::AggregatedProfile::keyTo(slot.key) |
                  (from & 0xffffffff00000000ull);
        slot.rf = impl_->index.lookup(from);
        slot.rt = impl_->index.lookup(slot.to);
    }
}

void
DcfgMapper::resolveRanges(size_t begin, size_t end)
{
    constexpr int kMaxWalk = 512;
    for (size_t i = begin; i < end && i < impl_->ranges.size(); ++i) {
        Impl::RangeSlot &slot = impl_->ranges[i];
        uint64_t start = profile::AggregatedProfile::keyFrom(slot.key);
        uint64_t end_addr = profile::AggregatedProfile::keyTo(slot.key) |
                            (start & 0xffffffff00000000ull);
        auto cur = impl_->index.lookup(start);
        if (!cur || end_addr < start) {
            slot.unmapped = true;
            continue;
        }
        int steps = 0;
        while (end_addr >= cur->blockEnd) {
            if (++steps > kMaxWalk) {
                slot.truncated = true;
                break;
            }
            auto nxt = impl_->index.next(*cur);
            if (!nxt || nxt->funcIndex != cur->funcIndex ||
                nxt->blockStart != cur->blockEnd) {
                // Gap or function boundary: inconsistent range (e.g.
                // the sample raced a migration); drop the rest.
                slot.truncated = true;
                break;
            }
            slot.hops.emplace_back(*cur, *nxt);
            cur = nxt;
        }
    }
}

void
DcfgMapper::resolveShard(size_t shard, size_t shardCount)
{
    if (shardCount == 0)
        return;
    size_t nb = impl_->branches.size();
    size_t nr = impl_->ranges.size();
    resolveBranches(shard * nb / shardCount,
                    (shard + 1) * nb / shardCount);
    resolveRanges(shard * nr / shardCount,
                  (shard + 1) * nr / shardCount);
}

WholeProgramDcfg
DcfgMapper::apply(MapperStats *stats_out)
{
    const AddrMapIndex &index = impl_->index;
    MapperStats stats;
    DcfgBuilder builder(index);

    // ---- Taken-branch records -> branch and call edges ------------------
    for (const Impl::BranchSlot &slot : impl_->branches) {
        uint64_t weight = slot.weight;
        uint64_t to = slot.to;
        const std::optional<BlockRef> &rf = slot.rf;
        const std::optional<BlockRef> &rt = slot.rt;
        if (!rf || !rt) {
            ++stats.unmappedRecords;
            continue;
        }
        if (rf->funcIndex == rt->funcIndex) {
            if (to == rt->blockStart) {
                uint32_t d = builder.dcfgOf(rf->funcIndex);
                builder.addEdge(d, builder.nodeOf(d, *rf),
                                builder.nodeOf(d, *rt), weight,
                                EdgeKind::Branch);
                stats.branchEdges += weight;
            } else {
                // Only returns land mid-block within one function.
                stats.returnRecords += weight;
            }
        } else if (to == rt->blockStart &&
                   rt->bbId == index.entryBlock(rt->funcIndex)) {
            uint32_t caller = builder.dcfgOf(rf->funcIndex);
            uint32_t callee = builder.dcfgOf(rt->funcIndex);
            uint32_t caller_node = builder.nodeOf(caller, *rf);
            builder.addCallEdge(caller, caller_node, callee, weight);
            builder.addExtraFlow(caller, caller_node, weight, false);
            stats.callEdges += weight;
        } else {
            // Cross-function return (to the instruction after a call):
            // credits the returning block's out-flow and the call-site
            // block's in-flow, so call-heavy straight-line blocks are
            // recognized as hot.
            uint32_t from_d = builder.dcfgOf(rf->funcIndex);
            uint32_t to_d = builder.dcfgOf(rt->funcIndex);
            builder.addExtraFlow(from_d, builder.nodeOf(from_d, *rf),
                                 weight, false);
            builder.addExtraFlow(to_d, builder.nodeOf(to_d, *rt), weight,
                                 true);
            stats.returnRecords += weight;
        }
    }

    // ---- Fall-through ranges -> fall-through edges -----------------------
    for (const Impl::RangeSlot &slot : impl_->ranges) {
        if (slot.unmapped) {
            ++stats.unmappedRecords;
            continue;
        }
        for (const auto &[cur, nxt] : slot.hops) {
            uint32_t d = builder.dcfgOf(cur.funcIndex);
            builder.addEdge(d, builder.nodeOf(d, cur),
                            builder.nodeOf(d, nxt), slot.weight,
                            EdgeKind::FallThrough);
            stats.fallThroughEdges += slot.weight;
        }
        if (slot.truncated)
            ++stats.rangeWalkTruncated;
    }

    WholeProgramDcfg graph = builder.take();

    // ---- Entry nodes -----------------------------------------------------
    // Resolve each sampled function's entry node, inserting it if the
    // entry block itself never appeared in a record (sparse sampling).
    std::unordered_map<std::string, uint32_t> func_index_by_name;
    for (size_t i = 0; i < index.functionNames().size(); ++i)
        func_index_by_name.emplace(index.functionNames()[i],
                                   static_cast<uint32_t>(i));
    for (auto &fn : graph.functions) {
        uint32_t func_index = func_index_by_name.at(fn.function);
        uint32_t entry_bb = index.entryBlock(func_index);
        int entry_node = -1;
        for (size_t n = 0; n < fn.nodes.size(); ++n) {
            if (fn.nodes[n].bbId == entry_bb) {
                entry_node = static_cast<int>(n);
                break;
            }
        }
        if (entry_node < 0) {
            auto ref = index.block(func_index, entry_bb);
            DcfgNode node;
            node.bbId = entry_bb;
            if (ref)
                node.size =
                    static_cast<uint32_t>(ref->blockEnd - ref->blockStart);
            entry_node = static_cast<int>(fn.nodes.size());
            fn.nodes.push_back(node);
        }
        fn.entryNode = static_cast<uint32_t>(entry_node);
    }

    // ---- Node frequencies -------------------------------------------------
    for (size_t d = 0; d < graph.functions.size(); ++d) {
        FunctionDcfg &fn = graph.functions[d];
        std::vector<uint64_t> in(fn.nodes.size(), 0);
        std::vector<uint64_t> out(fn.nodes.size(), 0);
        for (const auto &edge : fn.edges) {
            out[edge.fromNode] += edge.weight;
            in[edge.toNode] += edge.weight;
        }
        for (size_t i = 0; i < fn.nodes.size(); ++i) {
            uint32_t di = static_cast<uint32_t>(d);
            uint32_t ni = static_cast<uint32_t>(i);
            in[i] += builder.extraFlow(di, ni, true);
            out[i] += builder.extraFlow(di, ni, false);
            fn.nodes[i].freq = std::max(in[i], out[i]);
        }
    }
    // Entry nodes execute at least as often as they are called.
    for (const auto &call : graph.callEdges) {
        FunctionDcfg &callee = graph.functions[call.calleeDcfg];
        DcfgNode &entry = callee.nodes[callee.entryNode];
        entry.freq = std::max(entry.freq, call.weight);
    }

    if (stats_out)
        *stats_out = stats;
    return graph;
}

WholeProgramDcfg
buildDcfg(const profile::AggregatedProfile &agg, const AddrMapIndex &index,
          MapperStats *stats_out, unsigned threads)
{
    // The mapper splits each record kind into a read-only resolution
    // phase (address lookups, range walks) that fans out over the thread
    // pool into per-record slots, and a serial application phase that
    // feeds the mutable builder in the aggregation maps' iteration order
    // — the same order the fully serial mapper used, so the DCFG (whose
    // node numbering is first-touch order) is identical at any thread
    // count.
    DcfgMapper mapper(agg, index);
    parallelFor(threads, mapper.branchCount(),
                [&](size_t i) { mapper.resolveBranches(i, i + 1); });
    parallelFor(threads, mapper.rangeCount(),
                [&](size_t i) { mapper.resolveRanges(i, i + 1); });
    return mapper.apply(stats_out);
}

} // namespace propeller::core
