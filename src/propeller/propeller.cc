#include "propeller/propeller.h"

namespace propeller::core {

WpaResult
runWholeProgramAnalysis(const linker::Executable &metadata_exe,
                        const profile::Profile &prof,
                        const LayoutOptions &opts, MemoryMeter *meter)
{
    WpaResult result;
    MemoryMeter local;

    // Identity check: a profile collected on a different build must not be
    // silently mis-mapped by address.  (Profiles without identity — e.g.
    // hand-built in tests — are accepted as-is.)
    result.stats.profileMismatch =
        prof.binaryHash != 0 &&
        prof.binaryHash != metadata_exe.identityHash;

    // Reading and decoding the raw profile (chunked reading could lower
    // this, as the paper notes in section 5.1).
    result.stats.profileBytes = prof.sizeInBytes();
    local.charge(result.stats.profileBytes * 2);

    // Aggregation maps (branch and fall-through counts), built per shard
    // on the thread pool and merged once in shard order.
    profile::AggregationOptions agg_opts;
    agg_opts.threads = opts.threads;
    profile::AggregatedProfile agg = profile::aggregate(prof, agg_opts);
    local.charge((agg.branches.size() + agg.ranges.size()) * 48);

    // The BB address map interval index (sanitizing construction:
    // functions with inconsistent metadata drop out here).
    AddrMapIndex index(metadata_exe);
    result.stats.indexFootprint = index.footprint();
    result.stats.quarantinedFunctions = index.quarantined();
    result.stats.quarantined =
        static_cast<uint32_t>(index.quarantined().size());
    local.charge(result.stats.indexFootprint);

    // The whole-program DCFG: proportional to *sampled* code only — this
    // is the design property that bounds Phase 3 memory (section 3.5).
    WholeProgramDcfg dcfg =
        buildDcfg(agg, index, &result.stats.mapper, opts.threads);
    result.stats.dcfgFootprint = dcfg.footprint();
    local.charge(result.stats.dcfgFootprint);

    // Layout computation working set (chains, pairs, heap).
    uint64_t hot_nodes = 0;
    for (const auto &fn : dcfg.functions)
        hot_nodes += fn.nodes.size();
    {
        ScopedCharge working(local, hot_nodes * 160);
        LayoutResult layout = computeLayout(dcfg, index, opts);
        result.ccProf = std::move(layout.ccProf);
        result.ldProf = std::move(layout.ldProf);
        result.hotFunctions = std::move(layout.hotFunctions);
        result.stats.extTsp = layout.extTspStats;
    }

    result.stats.hotFunctions =
        static_cast<uint32_t>(result.hotFunctions.size());
    result.stats.peakMemory = local.peak();
    if (meter) {
        meter->charge(result.stats.peakMemory);
        meter->release(result.stats.peakMemory);
    }
    return result;
}

} // namespace propeller::core
