#include "propeller/propeller.h"

#include <optional>
#include <unordered_map>

#include "propeller/addr_map_index.h"
#include "support/hash.h"
#include "support/thread_pool.h"

namespace propeller::core {

/**
 * Stage state shared by build/layout/finish.  The memory-meter charge
 * sequence below is the same one the original monolithic function
 * performed, in the same order, so peakMemory stays bit-identical no
 * matter how the middle stages are scheduled.
 */
struct WpaPipeline::Impl
{
    const linker::Executable &exe;
    const profile::Profile &prof;
    LayoutOptions opts;
    unsigned jobs;

    MemoryMeter local;
    WpaResult result;
    std::optional<AddrMapIndex> index;
    std::optional<WholeProgramDcfg> dcfg;
    std::optional<LayoutContext> layout;
    uint64_t hotNodes = 0;

    // Staged-ingestion state (alive between prepare() and applyDcfg()).
    profile::AggregationOptions aggOpts;
    std::vector<profile::AggregatedProfile> aggSlots;
    std::optional<profile::AggregatedProfile> agg;
    std::optional<DcfgMapper> mapper;
    std::unordered_map<std::string, uint32_t> funcIndexByName;

    // Injected DCFG (fleet service seam): consumed by applyDcfg() in
    // place of the mapper's output.
    std::optional<WholeProgramDcfg> pendingDcfg;

    Impl(const linker::Executable &e, const profile::Profile &p,
         const LayoutOptions &o, unsigned j)
        : exe(e), prof(p), opts(o), jobs(j)
    {
    }

    WpaPipeline::IngestPlan
    prepare()
    {
        // Identity check: a profile collected on a different build must
        // not be silently mis-mapped by address.  (Profiles without
        // identity — e.g. hand-built in tests — are accepted as-is.)
        result.stats.profileMismatch =
            prof.binaryHash != 0 && prof.binaryHash != exe.identityHash;

        // Reading and decoding the raw profile (chunked reading could
        // lower this, as the paper notes in section 5.1).
        result.stats.profileBytes = prof.sizeInBytes();
        local.charge(result.stats.profileBytes * 2);

        aggOpts.threads = jobs;
        WpaPipeline::IngestPlan plan;
        plan.aggregationShards =
            profile::aggregationShardCount(prof, aggOpts);
        aggSlots.resize(plan.aggregationShards);
        return plan;
    }

    void
    aggregateShard(size_t shard)
    {
        profile::aggregateShardInto(prof, aggOpts, shard,
                                    aggSlots[shard]);
    }

    void
    mergeAggregation()
    {
        // Serial shard-order fold: the aggregation maps' iteration
        // order — which everything downstream consumes — depends only
        // on the profile and the shard size, never the schedule.
        agg.emplace(profile::mergeAggregationShards(aggSlots));
        aggSlots.clear();
        aggSlots.shrink_to_fit();
        local.charge((agg->branches.size() + agg->ranges.size()) * 48);
    }

    void
    buildIndex()
    {
        // The BB address map interval index (sanitizing construction:
        // functions with inconsistent metadata drop out here).
        // Independent of the aggregation shards, so the schedule may
        // overlap the two; the meter's charges are monotonic within the
        // build, so the recorded peak is order independent.
        index.emplace(exe);
        result.stats.indexFootprint = index->footprint();
        result.stats.quarantinedFunctions = index->quarantined();
        result.stats.quarantined =
            static_cast<uint32_t>(index->quarantined().size());
        local.charge(result.stats.indexFootprint);
        for (size_t i = 0; i < index->functionNames().size(); ++i)
            funcIndexByName.emplace(index->functionNames()[i],
                                    static_cast<uint32_t>(i));
    }

    void
    beginMapping()
    {
        mapper.emplace(*agg, *index);
    }

    void
    applyDcfg()
    {
        // The whole-program DCFG: proportional to *sampled* code only —
        // this is the design property that bounds Phase 3 memory
        // (section 3.5).
        if (pendingDcfg) {
            dcfg.emplace(std::move(*pendingDcfg));
            pendingDcfg.reset();
        } else {
            dcfg.emplace(mapper->apply(&result.stats.mapper));
        }
        mapper.reset();
        agg.reset();
        result.stats.dcfgFootprint = dcfg->footprint();
        local.charge(result.stats.dcfgFootprint);

        for (const auto &fn : dcfg->functions)
            hotNodes += fn.nodes.size();
        if (!opts.interProcedural)
            layout.emplace(*dcfg, *index, opts);
    }

    void
    build()
    {
        WpaPipeline::IngestPlan plan = prepare();
        parallelFor(jobs, plan.aggregationShards,
                    [&](size_t s) { aggregateShard(s); });
        mergeAggregation();
        buildIndex();
        beginMapping();
        parallelFor(jobs, mapper->branchCount(), [&](size_t i) {
            mapper->resolveBranches(i, i + 1);
        });
        parallelFor(jobs, mapper->rangeCount(), [&](size_t i) {
            mapper->resolveRanges(i, i + 1);
        });
        applyDcfg();
    }

    /** The function's index in the address map, or -1 if absent. */
    int
    addrMapIndexOf(const FunctionDcfg &fn) const
    {
        auto it = funcIndexByName.find(fn.function);
        return it == funcIndexByName.end() ? -1
                                           : static_cast<int>(it->second);
    }

    uint64_t
    layoutFingerprint(size_t f) const
    {
        const FunctionDcfg &fn = dcfg->functions[f];
        return layoutMemoFingerprint(fn, *index, addrMapIndexOf(fn));
    }

    uint64_t
    layoutInputDigest(size_t f) const
    {
        const FunctionDcfg &fn = dcfg->functions[f];
        return core::layoutInputDigest(fn, *index, addrMapIndexOf(fn));
    }

    WpaResult
    assemble(LayoutResult layoutResult, MemoryMeter *meter)
    {
        result.ccProf = std::move(layoutResult.ccProf);
        result.ldProf = std::move(layoutResult.ldProf);
        result.hotFunctions = std::move(layoutResult.hotFunctions);
        result.stats.extTsp = layoutResult.extTspStats;
        result.stats.hotFunctions =
            static_cast<uint32_t>(result.hotFunctions.size());
        result.stats.peakMemory = local.peak();
        if (meter) {
            meter->charge(result.stats.peakMemory);
            meter->release(result.stats.peakMemory);
        }
        return std::move(result);
    }
};

WpaPipeline::WpaPipeline(const linker::Executable &metadata_exe,
                         const profile::Profile &prof,
                         const LayoutOptions &opts, unsigned jobs)
    : impl_(std::make_unique<Impl>(metadata_exe, prof, opts, jobs))
{
}

WpaPipeline::~WpaPipeline() = default;

void
WpaPipeline::build()
{
    impl_->build();
}

WpaPipeline::IngestPlan
WpaPipeline::prepare()
{
    return impl_->prepare();
}

void
WpaPipeline::aggregateShard(size_t shard)
{
    impl_->aggregateShard(shard);
}

void
WpaPipeline::mergeAggregation()
{
    impl_->mergeAggregation();
}

void
WpaPipeline::buildIndex()
{
    impl_->buildIndex();
}

void
WpaPipeline::beginMapping()
{
    impl_->beginMapping();
}

void
WpaPipeline::resolveShard(size_t shard, size_t shardCount)
{
    impl_->mapper->resolveShard(shard, shardCount);
}

void
WpaPipeline::applyDcfg()
{
    impl_->applyDcfg();
}

uint64_t
WpaPipeline::layoutFingerprint(size_t f) const
{
    return impl_->layoutFingerprint(f);
}

uint64_t
WpaPipeline::layoutInputDigest(size_t f) const
{
    return impl_->layoutInputDigest(f);
}

void
WpaPipeline::overrideDcfg(WholeProgramDcfg dcfg)
{
    impl_->pendingDcfg.emplace(std::move(dcfg));
}

const WholeProgramDcfg &
WpaPipeline::dcfg() const
{
    return *impl_->dcfg;
}

size_t
WpaPipeline::functionCount() const
{
    return impl_->dcfg->functions.size();
}

FunctionLayout
WpaPipeline::layoutFunction(size_t f) const
{
    return impl_->layout->layoutFunction(f);
}

LdProfile
WpaPipeline::globalOrder() const
{
    return impl_->layout->globalOrder();
}

WpaResult
WpaPipeline::finish(std::vector<FunctionLayout> slots, LdProfile order,
                    MemoryMeter *meter)
{
    // Layout computation working set (chains, pairs, heap).  The charge
    // brackets the merge just as the monolithic path bracketed the full
    // computeLayout call; peak accounting is identical because nothing
    // is released between build() and here.
    LayoutResult merged;
    {
        ScopedCharge working(impl_->local, impl_->hotNodes * 160);
        merged =
            impl_->layout->merge(std::move(slots), std::move(order));
    }
    return impl_->assemble(std::move(merged), meter);
}

WpaResult
WpaPipeline::finishMonolithic(MemoryMeter *meter)
{
    LayoutResult merged;
    {
        ScopedCharge working(impl_->local, impl_->hotNodes * 160);
        merged = computeLayout(*impl_->dcfg, *impl_->index, impl_->opts,
                               impl_->jobs);
    }
    return impl_->assemble(std::move(merged), meter);
}

WpaResult
runWholeProgramAnalysis(const linker::Executable &metadata_exe,
                        const profile::Profile &prof,
                        const LayoutOptions &opts, unsigned jobs,
                        MemoryMeter *meter)
{
    WpaPipeline pipeline(metadata_exe, prof, opts, jobs);
    pipeline.build();
    if (opts.interProcedural)
        return pipeline.finishMonolithic(meter);

    // The barrier path: fan the per-function loop over the thread pool,
    // merge in function order.  Byte-identical to the task-graph path,
    // which runs the same stages as graph tasks.
    std::vector<FunctionLayout> slots(pipeline.functionCount());
    parallelFor(jobs, slots.size(),
                [&](size_t f) { slots[f] = pipeline.layoutFunction(f); });
    return pipeline.finish(std::move(slots), pipeline.globalOrder(),
                           meter);
}

} // namespace propeller::core
