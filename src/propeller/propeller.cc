#include "propeller/propeller.h"

#include <optional>

#include "propeller/addr_map_index.h"
#include "support/thread_pool.h"

namespace propeller::core {

/**
 * Stage state shared by build/layout/finish.  The memory-meter charge
 * sequence below is the same one the original monolithic function
 * performed, in the same order, so peakMemory stays bit-identical no
 * matter how the middle stages are scheduled.
 */
struct WpaPipeline::Impl
{
    const linker::Executable &exe;
    const profile::Profile &prof;
    LayoutOptions opts;
    unsigned jobs;

    MemoryMeter local;
    WpaResult result;
    std::optional<AddrMapIndex> index;
    std::optional<WholeProgramDcfg> dcfg;
    std::optional<LayoutContext> layout;
    uint64_t hotNodes = 0;

    Impl(const linker::Executable &e, const profile::Profile &p,
         const LayoutOptions &o, unsigned j)
        : exe(e), prof(p), opts(o), jobs(j)
    {
    }

    void
    build()
    {
        // Identity check: a profile collected on a different build must
        // not be silently mis-mapped by address.  (Profiles without
        // identity — e.g. hand-built in tests — are accepted as-is.)
        result.stats.profileMismatch =
            prof.binaryHash != 0 && prof.binaryHash != exe.identityHash;

        // Reading and decoding the raw profile (chunked reading could
        // lower this, as the paper notes in section 5.1).
        result.stats.profileBytes = prof.sizeInBytes();
        local.charge(result.stats.profileBytes * 2);

        // Aggregation maps (branch and fall-through counts), built per
        // shard on the thread pool and merged once in shard order.
        profile::AggregationOptions agg_opts;
        agg_opts.threads = jobs;
        profile::AggregatedProfile agg = profile::aggregate(prof, agg_opts);
        local.charge((agg.branches.size() + agg.ranges.size()) * 48);

        // The BB address map interval index (sanitizing construction:
        // functions with inconsistent metadata drop out here).
        index.emplace(exe);
        result.stats.indexFootprint = index->footprint();
        result.stats.quarantinedFunctions = index->quarantined();
        result.stats.quarantined =
            static_cast<uint32_t>(index->quarantined().size());
        local.charge(result.stats.indexFootprint);

        // The whole-program DCFG: proportional to *sampled* code only —
        // this is the design property that bounds Phase 3 memory
        // (section 3.5).
        dcfg.emplace(buildDcfg(agg, *index, &result.stats.mapper, jobs));
        result.stats.dcfgFootprint = dcfg->footprint();
        local.charge(result.stats.dcfgFootprint);

        for (const auto &fn : dcfg->functions)
            hotNodes += fn.nodes.size();
        if (!opts.interProcedural)
            layout.emplace(*dcfg, *index, opts);
    }

    WpaResult
    assemble(LayoutResult layoutResult, MemoryMeter *meter)
    {
        result.ccProf = std::move(layoutResult.ccProf);
        result.ldProf = std::move(layoutResult.ldProf);
        result.hotFunctions = std::move(layoutResult.hotFunctions);
        result.stats.extTsp = layoutResult.extTspStats;
        result.stats.hotFunctions =
            static_cast<uint32_t>(result.hotFunctions.size());
        result.stats.peakMemory = local.peak();
        if (meter) {
            meter->charge(result.stats.peakMemory);
            meter->release(result.stats.peakMemory);
        }
        return std::move(result);
    }
};

WpaPipeline::WpaPipeline(const linker::Executable &metadata_exe,
                         const profile::Profile &prof,
                         const LayoutOptions &opts, unsigned jobs)
    : impl_(std::make_unique<Impl>(metadata_exe, prof, opts, jobs))
{
}

WpaPipeline::~WpaPipeline() = default;

void
WpaPipeline::build()
{
    impl_->build();
}

const WholeProgramDcfg &
WpaPipeline::dcfg() const
{
    return *impl_->dcfg;
}

size_t
WpaPipeline::functionCount() const
{
    return impl_->dcfg->functions.size();
}

FunctionLayout
WpaPipeline::layoutFunction(size_t f) const
{
    return impl_->layout->layoutFunction(f);
}

LdProfile
WpaPipeline::globalOrder() const
{
    return impl_->layout->globalOrder();
}

WpaResult
WpaPipeline::finish(std::vector<FunctionLayout> slots, LdProfile order,
                    MemoryMeter *meter)
{
    // Layout computation working set (chains, pairs, heap).  The charge
    // brackets the merge just as the monolithic path bracketed the full
    // computeLayout call; peak accounting is identical because nothing
    // is released between build() and here.
    LayoutResult merged;
    {
        ScopedCharge working(impl_->local, impl_->hotNodes * 160);
        merged =
            impl_->layout->merge(std::move(slots), std::move(order));
    }
    return impl_->assemble(std::move(merged), meter);
}

WpaResult
WpaPipeline::finishMonolithic(MemoryMeter *meter)
{
    LayoutResult merged;
    {
        ScopedCharge working(impl_->local, impl_->hotNodes * 160);
        merged = computeLayout(*impl_->dcfg, *impl_->index, impl_->opts,
                               impl_->jobs);
    }
    return impl_->assemble(std::move(merged), meter);
}

WpaResult
runWholeProgramAnalysis(const linker::Executable &metadata_exe,
                        const profile::Profile &prof,
                        const LayoutOptions &opts, unsigned jobs,
                        MemoryMeter *meter)
{
    WpaPipeline pipeline(metadata_exe, prof, opts, jobs);
    pipeline.build();
    if (opts.interProcedural)
        return pipeline.finishMonolithic(meter);

    // The barrier path: fan the per-function loop over the thread pool,
    // merge in function order.  Byte-identical to the task-graph path,
    // which runs the same stages as graph tasks.
    std::vector<FunctionLayout> slots(pipeline.functionCount());
    parallelFor(jobs, slots.size(),
                [&](size_t f) { slots[f] = pipeline.layoutFunction(f); });
    return pipeline.finish(std::move(slots), pipeline.globalOrder(),
                           meter);
}

} // namespace propeller::core
