#ifndef PROPELLER_PROPELLER_DCFG_H
#define PROPELLER_PROPELLER_DCFG_H

/**
 * @file
 * Dynamic control flow graphs (paper section 3.3).
 *
 * A DCFG is built *incrementally from profile samples* — one node per
 * machine basic block observed in (or adjacent to) LBR records, one edge
 * per observed branch or inferred fall-through.  Reconstructing control
 * flow this way requires no disassembly: block identity and extent come
 * from the BB address map.  Keeping only sampled (hot) blocks is what
 * bounds Propeller's whole-program-analysis memory (Figure 4).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace propeller::core {

/** One machine basic block observed in the profile. */
struct DcfgNode
{
    uint32_t bbId = 0;
    uint32_t size = 0;    ///< Byte size from the BB address map.
    uint64_t freq = 0;    ///< Execution count estimate.
    uint8_t flags = 0;    ///< elf::BbFlags.
};

/** Edge kinds distinguished by the mapper. */
enum class EdgeKind : uint8_t {
    Branch,      ///< Observed taken branch (LBR record).
    FallThrough, ///< Inferred from an LBR fall-through range.
    Inferred,    ///< Reconstructed by stale-profile count inference.
};

/** A weighted intra-function control flow edge. */
struct DcfgEdge
{
    uint32_t fromNode = 0; ///< Index into FunctionDcfg::nodes.
    uint32_t toNode = 0;
    uint64_t weight = 0;
    EdgeKind kind = EdgeKind::Branch;
};

/** Per-function dynamic CFG. */
struct FunctionDcfg
{
    std::string function;
    std::vector<DcfgNode> nodes;
    std::vector<DcfgEdge> edges;
    uint32_t entryNode = 0; ///< Index of the entry block's node.

    /** Total sampled events in this function. */
    uint64_t totalWeight() const;

    /** Modelled in-memory footprint in bytes. */
    uint64_t
    footprint() const
    {
        return 64 + function.size() + nodes.size() * sizeof(DcfgNode) +
               edges.size() * sizeof(DcfgEdge);
    }
};

/** A weighted inter-procedural call edge. */
struct CallEdge
{
    uint32_t callerDcfg = 0; ///< Index into WholeProgramDcfg::functions.
    uint32_t callerNode = 0; ///< Node index inside the caller's DCFG.
    uint32_t calleeDcfg = 0;
    uint64_t weight = 0;
};

/** The whole-program dynamic CFG. */
struct WholeProgramDcfg
{
    std::vector<FunctionDcfg> functions;
    std::vector<CallEdge> callEdges;

    /** Find a function's DCFG index by name; -1 if not sampled. */
    int findFunction(const std::string &name) const;

    /** Modelled in-memory footprint in bytes. */
    uint64_t footprint() const;
};

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_DCFG_H
