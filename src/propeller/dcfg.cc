#include "propeller/dcfg.h"

namespace propeller::core {

uint64_t
FunctionDcfg::totalWeight() const
{
    uint64_t total = 0;
    for (const auto &edge : edges)
        total += edge.weight;
    return total;
}

int
WholeProgramDcfg::findFunction(const std::string &name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].function == name)
            return static_cast<int>(i);
    }
    return -1;
}

uint64_t
WholeProgramDcfg::footprint() const
{
    uint64_t bytes = 64 + callEdges.size() * sizeof(CallEdge);
    for (const auto &fn : functions)
        bytes += fn.footprint();
    return bytes;
}

} // namespace propeller::core
