#ifndef PROPELLER_PROPELLER_PREFETCH_H
#define PROPELLER_PROPELLER_PREFETCH_H

/**
 * @file
 * Profile-guided post-link software prefetch insertion — the extension
 * the paper sketches in section 3.5:
 *
 *   "The whole-program analysis of cache miss profiles determine prefetch
 *    insertion points.  A summary-based directive can then drive the
 *    distributed code generation actions that modify the objects and
 *    insert prefetch instructions."
 *
 * The whole-program part ranks load sites by sampled data-cache misses
 * and emits a summary directive file (pf_prof.txt); the distributed part
 * is codegen::Options::prefetches, which makes each affected backend
 * action emit a Prefetch instruction ahead of the targeted loads.  Only
 * objects containing targeted sites change, so the content cache keeps
 * every other object.
 */

#include <cstdint>
#include <map>
#include <string>

#include "profile/profile.h"

namespace propeller::core {

/** Directive set: load-site id -> prefetch lookahead (in accesses). */
using PrefetchMap = std::map<uint16_t, uint8_t>;

/** Whole-program prefetch selection options. */
struct PrefetchOptions
{
    /** Ignore sites with fewer sampled misses than this. */
    uint64_t minMissSamples = 4;

    /** Insert prefetches for at most this many (hottest) sites. */
    uint32_t maxSites = 128;

    /** Lookahead distance, in site accesses. */
    uint8_t lookahead = 4;
};

/** Rank miss sites and produce the prefetch directives. */
PrefetchMap computePrefetchDirectives(const profile::MissProfile &misses,
                                      const PrefetchOptions &opts = {});

/** pf_prof.txt: one "site lookahead" pair per line. */
std::string serializePrefetchDirectives(const PrefetchMap &map);

/** Parse the text form; returns false on malformed input. */
bool parsePrefetchDirectives(const std::string &text, PrefetchMap &out);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_PREFETCH_H
