#ifndef PROPELLER_PROPELLER_HFSORT_H
#define PROPELLER_PROPELLER_HFSORT_H

/**
 * @file
 * C3 (call-chain clustering) function ordering — the "hfsort" algorithm
 * BOLT uses for -reorder-functions=hfsort, also used by Propeller to order
 * hot function primary sections in the global symbol order.
 */

#include <cstdint>
#include <vector>

namespace propeller::core {

/** A function in the call-graph ordering problem. */
struct HfsortNode
{
    uint64_t size = 1;    ///< Bytes of hot text.
    uint64_t samples = 0; ///< Execution frequency.
};

/** A directed caller->callee arc with call count. */
struct HfsortArc
{
    uint32_t caller = 0;
    uint32_t callee = 0;
    uint64_t weight = 0;
};

/** Options for C3 clustering. */
struct HfsortOptions
{
    /** Stop growing a cluster past this many bytes (page-locality bound). */
    uint64_t maxClusterSize = 4096;
    /** Ignore arcs lighter than this fraction of the callee's samples. */
    double arcThreshold = 0.1;
};

/**
 * Order functions by C3: process functions by decreasing hotness, merging
 * each into its hottest caller's cluster when profitable; emit clusters by
 * decreasing density.
 *
 * @return a permutation of node indices (hot first).
 */
std::vector<uint32_t> hfsortOrder(const std::vector<HfsortNode> &nodes,
                                  const std::vector<HfsortArc> &arcs,
                                  const HfsortOptions &opts = {});

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_HFSORT_H
