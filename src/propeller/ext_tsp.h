#ifndef PROPELLER_PROPELLER_EXT_TSP_H
#define PROPELLER_PROPELLER_EXT_TSP_H

/**
 * @file
 * The Ext-TSP basic block reordering algorithm (Newell & Pupyrev,
 * "Improved Basic Block Reordering"), used by Propeller's whole-program
 * analysis to approximate the optimal block layout (paper section 3.3) and
 * by the inter-procedural layout of section 4.7.
 *
 * The objective rewards placing a branch's target close after its source:
 *
 *   score(edge u->v, weight w) =
 *     w * 1.0                      if v starts exactly at u's end
 *     w * 0.1 * (1 - d / 1024)     for forward jumps of distance d <= 1024
 *     w * 0.1 * (1 - d / 640)      for backward jumps of distance d <= 640
 *
 * The solver greedily merges chains of blocks by the highest-gain merge.
 * Retrieval of the most profitable merge uses a lazy max-heap — the
 * "logarithmic time retrieval" improvement the paper says was necessary to
 * scale to whole-program CFGs — with a linear-scan variant retained for
 * the ablation bench (bench_exttsp).
 */

#include <cstdint>
#include <vector>

namespace propeller::core {

/** A code unit to lay out (a basic block, or a whole function). */
struct LayoutNode
{
    uint64_t size = 1; ///< Byte size.
    uint64_t freq = 0; ///< Execution frequency (used for tie ordering).
};

/** A weighted directed edge (branch or fall-through). */
struct LayoutEdge
{
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t weight = 0;
};

/** Algorithm options. */
struct ExtTspOptions
{
    /** Use the lazy max-heap (true) or linear scans (ablation). */
    bool useLazyHeap = true;

    /** Try split-merges only for chains up to this length. */
    uint32_t maxSplitChainLen = 96;

    double fallthroughWeight = 1.0;
    double forwardWeight = 0.1;
    double backwardWeight = 0.1;
    uint32_t forwardDistance = 1024;
    uint32_t backwardDistance = 640;
};

/** Solver statistics, reported by bench_exttsp. */
struct ExtTspStats
{
    uint64_t merges = 0;
    uint64_t candidateEvals = 0; ///< Merge orders scored.
    uint64_t retrievals = 0;     ///< Heap pops or full scans.
    double finalScore = 0.0;
};

/** Score a complete layout @p order under the Ext-TSP objective. */
double extTspScore(const std::vector<LayoutNode> &nodes,
                   const std::vector<LayoutEdge> &edges,
                   const std::vector<uint32_t> &order,
                   const ExtTspOptions &opts = {});

/**
 * Compute a block order approximately maximizing the Ext-TSP score.
 *
 * @param entry node index pinned to the first position.
 * @return a permutation of all node indices with @p entry first.
 */
std::vector<uint32_t> extTspOrder(const std::vector<LayoutNode> &nodes,
                                  const std::vector<LayoutEdge> &edges,
                                  uint32_t entry,
                                  const ExtTspOptions &opts = {},
                                  ExtTspStats *stats = nullptr);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_EXT_TSP_H
