#ifndef PROPELLER_PROPELLER_EXT_TSP_H
#define PROPELLER_PROPELLER_EXT_TSP_H

/**
 * @file
 * The Ext-TSP basic block reordering algorithm (Newell & Pupyrev,
 * "Improved Basic Block Reordering"), used by Propeller's whole-program
 * analysis to approximate the optimal block layout (paper section 3.3) and
 * by the inter-procedural layout of section 4.7.
 *
 * The objective rewards placing a branch's target close after its source:
 *
 *   score(edge u->v, weight w) =
 *     w * 1.0                      if v starts exactly at u's end
 *     w * 0.1 * (1 - d / 1024)     for forward jumps of distance d <= 1024
 *     w * 0.1 * (1 - d / 640)      for backward jumps of distance d <= 640
 *
 * The solver greedily merges chains of blocks by the highest-gain merge.
 * Candidate merges are scored *incrementally*: because edgeScore depends
 * only on the distance (dst_start - src_end), concatenating two chains
 * leaves every internal edge's score unchanged, so the merge gain is the
 * sum over cross edges alone; for split merges only the internal edges
 * that span the split point change, each by a split-independent delta, so
 * all split positions of a chain are scored in one O(length + edges)
 * sweep.  Retrieval of the most profitable merge uses a versioned
 * lazy-deletion max-heap — the "logarithmic time retrieval" improvement
 * the paper says was necessary to scale to whole-program CFGs.  A
 * full-scan reference retrieval with the identical (gain, key) tie-break
 * is retained for the property tests, and the pre-incremental full-rescan
 * evaluator for the ablation bench (bench_exttsp).
 */

#include <cstdint>
#include <vector>

namespace propeller::core {

/** A code unit to lay out (a basic block, or a whole function). */
struct LayoutNode
{
    uint64_t size = 1; ///< Byte size.
    uint64_t freq = 0; ///< Execution frequency (used for tie ordering).
};

/** A weighted directed edge (branch or fall-through). */
struct LayoutEdge
{
    uint32_t from = 0;
    uint32_t to = 0;
    uint64_t weight = 0;
};

/** Algorithm options. */
struct ExtTspOptions
{
    /**
     * Select the best merge by a full scan over all pairs instead of the
     * lazy heap.  Both paths use the same delta scoring and the same
     * (gain, pair-key) tie-break, so they must produce identical layouts;
     * the scan exists as the reference the property tests compare the
     * heap against.
     */
    bool referenceSolver = false;

    /**
     * Score candidates by fully rescanning both chains' internal edges
     * (the pre-incremental evaluator).  Ablation knob for bench_exttsp;
     * gains are computed with different floating-point associations than
     * the delta path, so layouts may differ on near-ties.
     */
    bool legacyRescore = false;

    /**
     * Try split-merges only for chains up to this length.  The windowed
     * split sweep makes splits O(length + edges) per evaluation, so the
     * default is far higher than the pre-incremental solver's 96.
     */
    uint32_t maxSplitChainLen = 256;

    double fallthroughWeight = 1.0;
    double forwardWeight = 0.1;
    double backwardWeight = 0.1;
    uint32_t forwardDistance = 1024;
    uint32_t backwardDistance = 640;
};

/** Solver statistics, reported by bench_exttsp. */
struct ExtTspStats
{
    uint64_t merges = 0;
    /** Edge scorings performed while evaluating candidate merges (the
     *  solver's unit of work; what the incremental scoring reduces). */
    uint64_t candidateEvals = 0;
    uint64_t retrievals = 0; ///< Heap pops or full scans.
    uint64_t heapPops = 0;   ///< Lazy-heap entries popped (incl. stale).
    uint64_t staleSkips = 0; ///< Popped entries discarded as stale.
    double finalScore = 0.0;
};

/** Score a complete layout @p order under the Ext-TSP objective. */
double extTspScore(const std::vector<LayoutNode> &nodes,
                   const std::vector<LayoutEdge> &edges,
                   const std::vector<uint32_t> &order,
                   const ExtTspOptions &opts = {});

/**
 * Compute a block order approximately maximizing the Ext-TSP score.
 *
 * @param entry node index pinned to the first position.
 * @return a permutation of all node indices with @p entry first.
 */
std::vector<uint32_t> extTspOrder(const std::vector<LayoutNode> &nodes,
                                  const std::vector<LayoutEdge> &edges,
                                  uint32_t entry,
                                  const ExtTspOptions &opts = {},
                                  ExtTspStats *stats = nullptr);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_EXT_TSP_H
