#include "propeller/addr_map_index.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace propeller::core {

namespace {

/**
 * True if the function's combined block list (across all of its maps) is
 * internally consistent and fits the text image.
 */
bool
mapIsSane(const std::vector<const linker::ExecBlock *> &blocks,
          uint64_t text_start, uint64_t text_end)
{
    std::unordered_set<uint32_t> ids;
    std::vector<std::pair<uint64_t, uint64_t>> extents;
    for (const auto *block : blocks) {
        if (!ids.insert(block->bbId).second)
            return false; // Duplicate block id.
        uint64_t end = block->address + block->size;
        if (block->address < text_start || end > text_end ||
            end < block->address)
            return false; // Outside the text image (or size wraps).
        if (block->size > 0)
            extents.emplace_back(block->address, end);
    }
    std::sort(extents.begin(), extents.end());
    for (size_t i = 1; i < extents.size(); ++i) {
        if (extents[i - 1].second > extents[i].first)
            return false; // Overlapping blocks.
    }
    return true;
}

} // namespace

BlockRef
AddrMapIndex::toRef(const Interval &iv)
{
    BlockRef ref;
    ref.funcIndex = iv.funcIndex;
    ref.bbId = iv.bbId;
    ref.blockStart = iv.start;
    ref.blockEnd = iv.end;
    ref.flags = iv.flags;
    ref.hash = iv.hash;
    return ref;
}

AddrMapIndex::AddrMapIndex(const linker::Executable &exe)
{
    // Sanitation pass: group blocks per function (a function may carry
    // several maps) and quarantine inconsistent ones before indexing.
    std::unordered_map<std::string, std::vector<const linker::ExecBlock *>>
        blocks_of;
    for (const auto &map : exe.bbAddrMap) {
        auto &blocks = blocks_of[map.function];
        for (const auto &block : map.blocks)
            blocks.push_back(&block);
    }
    std::set<std::string> bad;
    uint64_t text_start = exe.textBase;
    uint64_t text_end = exe.textBase + exe.text.size();
    for (const auto &[name, blocks] : blocks_of) {
        if (!mapIsSane(blocks, text_start, text_end))
            bad.insert(name);
    }
    quarantined_.assign(bad.begin(), bad.end());

    std::unordered_map<std::string, uint32_t> func_index;
    for (const auto &map : exe.bbAddrMap) {
        if (bad.count(map.function))
            continue;
        auto [it, inserted] = func_index.emplace(
            map.function, static_cast<uint32_t>(functionNames_.size()));
        if (inserted) {
            functionNames_.push_back(map.function);
            entryBlocks_.push_back(0);
            functionHashes_.push_back(map.functionHash);
            funcSuccs_.emplace_back();
        }
        for (const auto &block : map.blocks) {
            intervals_.push_back({block.address, block.address + block.size,
                                  it->second, block.bbId, block.flags,
                                  block.hash});
            if (!block.succs.empty())
                funcSuccs_[it->second].emplace(block.bbId, block.succs);
        }
    }
    // Stable sort: zero-size blocks (fall-through-only blocks whose
    // encoding is empty) share their successor's address and must keep
    // their layout order so range walks traverse them deterministically.
    std::stable_sort(intervals_.begin(), intervals_.end(),
                     [](const Interval &a, const Interval &b) {
                         return a.start < b.start;
                     });

    funcIntervals_.resize(functionNames_.size());
    for (uint32_t i = 0; i < intervals_.size(); ++i)
        funcIntervals_[intervals_[i].funcIndex].push_back(i);

    // The entry block of each function sits at its primary symbol address
    // (the primary cluster begins with the entry block; a landing-pad nop
    // prefix never applies to it).  The entry block may have an empty
    // encoding (a lone fall-through branch), so take the *first* block in
    // layout order at that address rather than the containing interval.
    for (const auto &sym : exe.symbols) {
        if (!sym.isPrimary)
            continue;
        auto it = func_index.find(sym.parentFunction);
        if (it == func_index.end())
            continue;
        for (uint32_t idx : funcIntervals_[it->second]) {
            if (intervals_[idx].start == sym.start) {
                entryBlocks_[it->second] = intervals_[idx].bbId;
                break;
            }
        }
    }
}

std::optional<BlockRef>
AddrMapIndex::lookup(uint64_t addr) const
{
    auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), addr,
        [](uint64_t a, const Interval &iv) { return a < iv.start; });
    if (it == intervals_.begin())
        return std::nullopt;
    --it;
    // Ties put zero-size blocks before the non-empty block at the same
    // address, so it-1 is the block that actually contains addr.
    if (addr >= it->end)
        return std::nullopt;
    BlockRef ref = toRef(*it);
    ref.intervalIndex = static_cast<uint32_t>(it - intervals_.begin());
    return ref;
}

std::optional<BlockRef>
AddrMapIndex::next(const BlockRef &ref) const
{
    uint32_t idx = ref.intervalIndex + 1;
    if (idx >= intervals_.size())
        return std::nullopt;
    BlockRef out = toRef(intervals_[idx]);
    out.intervalIndex = idx;
    return out;
}

std::vector<BlockRef>
AddrMapIndex::blocksOf(uint32_t func_index) const
{
    std::vector<BlockRef> blocks;
    blocks.reserve(funcIntervals_[func_index].size());
    for (uint32_t i : funcIntervals_[func_index]) {
        BlockRef ref = toRef(intervals_[i]);
        ref.intervalIndex = i;
        blocks.push_back(ref);
    }
    return blocks;
}

int
AddrMapIndex::findFunction(const std::string &name) const
{
    for (size_t i = 0; i < functionNames_.size(); ++i) {
        if (functionNames_[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

const std::vector<uint32_t> &
AddrMapIndex::successors(uint32_t func_index, uint32_t bb_id) const
{
    static const std::vector<uint32_t> kEmpty;
    const auto &succs = funcSuccs_[func_index];
    auto it = succs.find(bb_id);
    return it != succs.end() ? it->second : kEmpty;
}

std::optional<BlockRef>
AddrMapIndex::block(uint32_t func_index, uint32_t bb_id) const
{
    for (uint32_t i : funcIntervals_[func_index]) {
        if (intervals_[i].bbId == bb_id) {
            BlockRef ref = toRef(intervals_[i]);
            ref.intervalIndex = i;
            return ref;
        }
    }
    return std::nullopt;
}

} // namespace propeller::core
