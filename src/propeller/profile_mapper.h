#ifndef PROPELLER_PROPELLER_PROFILE_MAPPER_H
#define PROPELLER_PROPELLER_PROFILE_MAPPER_H

/**
 * @file
 * Mapping aggregated LBR profiles onto machine basic blocks (section 3.3).
 *
 * Taken-branch records become branch edges; the straight-line gaps between
 * consecutive LBR records are walked block-by-block through the address
 * map to recover fall-through edge counts.  Cross-function records whose
 * destination is a function entry become call edges.  Everything is done
 * through the BB address map — no instruction bytes are inspected.
 */

#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/dcfg.h"

namespace propeller::core {

/** Mapper statistics (also used for memory accounting). */
struct MapperStats
{
    uint64_t branchEdges = 0;
    uint64_t fallThroughEdges = 0;
    uint64_t callEdges = 0;
    uint64_t returnRecords = 0;   ///< Records mapped to returns (ignored).
    uint64_t unmappedRecords = 0; ///< Records outside the address map.
    uint64_t rangeWalkTruncated = 0;
};

/**
 * Build the whole-program DCFG from an aggregated profile.
 *
 * @param threads workers for the read-only record-resolution phase
 *        (address lookups and fall-through range walks); 0 = all hardware
 *        threads.  Resolved records land in per-record slots and the
 *        mutable DCFG builder consumes them serially in record order, so
 *        the graph is byte-identical at any thread count.
 */
WholeProgramDcfg buildDcfg(const profile::AggregatedProfile &agg,
                           const AddrMapIndex &index,
                           MapperStats *stats = nullptr,
                           unsigned threads = 1);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_PROFILE_MAPPER_H
