#ifndef PROPELLER_PROPELLER_PROFILE_MAPPER_H
#define PROPELLER_PROPELLER_PROFILE_MAPPER_H

/**
 * @file
 * Mapping aggregated LBR profiles onto machine basic blocks (section 3.3).
 *
 * Taken-branch records become branch edges; the straight-line gaps between
 * consecutive LBR records are walked block-by-block through the address
 * map to recover fall-through edge counts.  Cross-function records whose
 * destination is a function entry become call edges.  Everything is done
 * through the BB address map — no instruction bytes are inspected.
 */

#include <memory>

#include "profile/profile.h"
#include "propeller/addr_map_index.h"
#include "propeller/dcfg.h"

namespace propeller::core {

/** Mapper statistics (also used for memory accounting). */
struct MapperStats
{
    uint64_t branchEdges = 0;
    uint64_t fallThroughEdges = 0;
    uint64_t callEdges = 0;
    uint64_t returnRecords = 0;   ///< Records mapped to returns (ignored).
    uint64_t unmappedRecords = 0; ///< Records outside the address map.
    uint64_t rangeWalkTruncated = 0;
};

/**
 * Staged profile-to-DCFG mapper, for schedulers that want record
 * resolution as independent tasks.
 *
 * The constructor snapshots the aggregation maps' iteration order into
 * per-record slots; `resolveBranches` / `resolveRanges` (or the
 * convenience `resolveShard`, which slices both arrays by fraction) do
 * the read-only address lookups and fall-through range walks and may
 * run concurrently over disjoint slices; `apply` then feeds the
 * mutable DCFG builder serially in slot order.  Because node numbering
 * is first-touch order over that fixed sequence, the resulting graph
 * is byte-identical no matter how the resolution work was scheduled.
 */
class DcfgMapper
{
  public:
    DcfgMapper(const profile::AggregatedProfile &agg,
               const AddrMapIndex &index);
    ~DcfgMapper();
    DcfgMapper(const DcfgMapper &) = delete;
    DcfgMapper &operator=(const DcfgMapper &) = delete;

    size_t branchCount() const;
    size_t rangeCount() const;

    /** Resolve branch record slots [begin, end); thread-safe across
     *  disjoint slices. */
    void resolveBranches(size_t begin, size_t end);

    /** Resolve fall-through range slots [begin, end); thread-safe
     *  across disjoint slices. */
    void resolveRanges(size_t begin, size_t end);

    /** Resolve shard @p shard of @p shardCount fraction slices of both
     *  record arrays. */
    void resolveShard(size_t shard, size_t shardCount);

    /** Serial application: all slots must be resolved. Call once. */
    WholeProgramDcfg apply(MapperStats *stats = nullptr);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Build the whole-program DCFG from an aggregated profile.
 *
 * @param threads workers for the read-only record-resolution phase
 *        (address lookups and fall-through range walks); 0 = all hardware
 *        threads.  Resolved records land in per-record slots and the
 *        mutable DCFG builder consumes them serially in record order, so
 *        the graph is byte-identical at any thread count.
 */
WholeProgramDcfg buildDcfg(const profile::AggregatedProfile &agg,
                           const AddrMapIndex &index,
                           MapperStats *stats = nullptr,
                           unsigned threads = 1);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_PROFILE_MAPPER_H
