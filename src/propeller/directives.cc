#include "propeller/directives.h"

#include <sstream>

namespace propeller::core {

std::string
CcProfile::serialize() const
{
    std::ostringstream os;
    for (const auto &[fn, spec] : clusters) {
        os << "!" << fn << "\n";
        for (size_t c = 0; c < spec.clusters.size(); ++c) {
            os << "!!";
            if (static_cast<int>(c) == spec.coldIndex)
                os << "cold";
            bool first = static_cast<int>(c) != spec.coldIndex;
            for (uint32_t id : spec.clusters[c]) {
                if (first) {
                    os << id;
                    first = false;
                } else {
                    os << " " << id;
                }
            }
            os << "\n";
        }
    }
    return os.str();
}

bool
CcProfile::parse(const std::string &text, CcProfile &out)
{
    CcProfile result;
    std::istringstream is(text);
    std::string line;
    std::string current;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (line.rfind("!!", 0) == 0) {
            if (current.empty())
                return false;
            codegen::ClusterSpec &spec = result.clusters[current];
            std::string payload = line.substr(2);
            bool cold = payload.rfind("cold", 0) == 0;
            if (cold)
                payload = payload.substr(4);
            std::istringstream ls(payload);
            std::vector<uint32_t> ids;
            uint32_t id;
            while (ls >> id)
                ids.push_back(id);
            if (ids.empty())
                return false;
            if (cold)
                spec.coldIndex = static_cast<int>(spec.clusters.size());
            spec.clusters.push_back(std::move(ids));
        } else if (line[0] == '!') {
            current = line.substr(1);
            if (current.empty())
                return false;
            result.clusters[current]; // Create the (possibly empty) entry.
        } else {
            return false;
        }
    }
    // Reject functions with no clusters.
    for (const auto &[fn, spec] : result.clusters) {
        if (spec.clusters.empty())
            return false;
    }
    out = std::move(result);
    return true;
}

std::string
LdProfile::serialize() const
{
    std::ostringstream os;
    for (const auto &sym : symbolOrder)
        os << sym << "\n";
    return os.str();
}

bool
LdProfile::parse(const std::string &text, LdProfile &out)
{
    LdProfile result;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        result.symbolOrder.push_back(line);
    }
    out = std::move(result);
    return true;
}

} // namespace propeller::core
